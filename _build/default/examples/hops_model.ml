(* Paper Fig. 3: the same two low-level checkers validate a program under
   two different persistency models. Under x86 the ordering comes from
   clwb+sfence; under HOPS the lightweight ofence orders without forcing
   durability, and only dfence makes data durable.

   Run with:  dune exec examples/hops_model.exe *)

open Pmtest_model
open Pmtest_trace
module Engine = Pmtest_core.Engine
module Report = Pmtest_core.Report

let a = 0x100
let b = 0x200

let checkers =
  [
    Event.make (Event.Checker (Event.Is_ordered_before { a_addr = a; a_size = 8; b_addr = b; b_size = 8 }));
    Event.make (Event.Checker (Event.Is_persist { addr = a; size = 8 }));
    Event.make (Event.Checker (Event.Is_persist { addr = b; size = 8 }));
  ]

let x86_trace =
  [
    Event.make (Event.Op (Model.Write { addr = a; size = 8 }));
    Event.make (Event.Op (Model.Clwb { addr = a; size = 8 }));
    Event.make (Event.Op Model.Sfence);
    Event.make (Event.Op (Model.Write { addr = b; size = 8 }));
    Event.make (Event.Op (Model.Clwb { addr = b; size = 8 }));
    Event.make (Event.Op Model.Sfence);
  ]
  @ checkers

let hops_trace =
  [
    Event.make (Event.Op (Model.Write { addr = a; size = 8 }));
    Event.make (Event.Op Model.Ofence);
    Event.make (Event.Op (Model.Write { addr = b; size = 8 }));
    Event.make (Event.Op Model.Dfence);
  ]
  @ checkers

(* The broken variants: drop the ordering point between A and B. *)
let x86_broken =
  [
    Event.make (Event.Op (Model.Write { addr = a; size = 8 }));
    Event.make (Event.Op (Model.Clwb { addr = a; size = 8 }));
    Event.make (Event.Op (Model.Write { addr = b; size = 8 }));
    Event.make (Event.Op (Model.Clwb { addr = b; size = 8 }));
    Event.make (Event.Op Model.Sfence);
  ]
  @ checkers

let hops_broken =
  [
    Event.make (Event.Op (Model.Write { addr = a; size = 8 }));
    Event.make (Event.Op (Model.Write { addr = b; size = 8 }));
    Event.make (Event.Op Model.Dfence);
  ]
  @ checkers

let show name model trace =
  let report = Engine.check ~model (Array.of_list trace) in
  Fmt.pr "%-28s %a@." name Report.pp report

let () =
  Fmt.pr "=== Fig. 3: one checker API, two persistency models ===@.@.";
  show "x86, ordered:" Model.X86 x86_trace;
  show "x86, missing fence:" Model.X86 x86_broken;
  show "HOPS, ofence+dfence:" Model.Hops hops_trace;
  show "HOPS, missing ofence:" Model.Hops hops_broken;
  Fmt.pr "@.The same isOrderedBefore/isPersist checkers apply under both models;@.";
  Fmt.pr "only the engine's checking rules differ (paper section 5.2).@."
