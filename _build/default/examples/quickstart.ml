(* Quickstart: the paper's running example (Fig. 1a).

   A crash-consistent array update via undo backup: back the old value up,
   mark the backup valid, persist, update in place, invalidate the backup.
   The buggy version misses two persist_barriers; the low-level checkers
   isOrderedBefore/isPersist pinpoint both.

   Run with:  dune exec examples/quickstart.exe *)

module Machine = Pmtest_pmem.Machine
module Instr = Pmtest_pmem.Instr
module Pmtest = Pmtest_core.Pmtest
module Report = Pmtest_core.Report
module Event = Pmtest_trace.Event

(* Persistent layout: each field on its own cache line, as a C struct
   annotated with alignas(64) would be. *)
let backup_val = 0x000
let backup_valid = 0x040
let array_base = 0x080
let slot i = array_base + (8 * i)

let array_update instr ~fixed ~index ~value =
  let line = if fixed then 100 else 200 in
  (* 1. Back up the old value. *)
  let old = Instr.load_i64 instr ~addr:(slot index) in
  Instr.store_i64 instr ~line ~addr:backup_val old;
  (* The fix: the backup data must be durable before the valid flag. *)
  if fixed then Instr.persist_barrier instr ~line:(line + 1) ~addr:backup_val ~size:8;
  Instr.store_i64 instr ~line:(line + 2) ~addr:backup_valid 1L;
  Instr.persist_barrier instr ~line:(line + 3) ~addr:backup_valid ~size:8;
  (* Checker: did the backup really persist before it was declared valid? *)
  Instr.checker instr ~line:(line + 4)
    Event.(Is_ordered_before { a_addr = backup_val; a_size = 8; b_addr = backup_valid; b_size = 8 });
  (* 2. Update in place. *)
  Instr.store_i64 instr ~line:(line + 5) ~addr:(slot index) value;
  (* The fix: the new value must be durable before the backup is dropped. *)
  if fixed then Instr.persist_barrier instr ~line:(line + 6) ~addr:(slot index) ~size:8;
  Instr.store_i64 instr ~line:(line + 7) ~addr:backup_valid 0L;
  Instr.persist_barrier instr ~line:(line + 8) ~addr:backup_valid ~size:8;
  Instr.checker instr ~line:(line + 9)
    Event.(
      Is_ordered_before { a_addr = slot index; a_size = 8; b_addr = backup_valid; b_size = 8 });
  Instr.checker instr ~line:(line + 10) Event.(Is_persist { addr = slot index; size = 8 })

let run ~fixed =
  let session = Pmtest.init ~workers:1 () in
  let machine = Machine.create ~size:4096 () in
  let instr = Instr.make ~machine ~sink:(Pmtest.sink session) ~file:"examples/quickstart.ml" in
  array_update instr ~fixed ~index:3 ~value:42L;
  Pmtest.send_trace session;
  Pmtest.finish session

let () =
  Fmt.pr "=== PMTest quickstart: Fig. 1a array update ===@.@.";
  Fmt.pr "--- Buggy version (two persist_barriers missing) ---@.";
  let buggy = run ~fixed:false in
  Fmt.pr "%a@.@." Report.pp buggy;
  Fmt.pr "--- Fixed version ---@.";
  let fixed = run ~fixed:true in
  Fmt.pr "%a@.@." Report.pp fixed;
  if Report.has_fail buggy && Report.is_clean fixed then
    Fmt.pr "PMTest caught the missing barriers and accepts the fix.@."
  else begin
    Fmt.pr "unexpected outcome!@.";
    exit 1
  end
