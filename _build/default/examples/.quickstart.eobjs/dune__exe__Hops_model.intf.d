examples/hops_model.mli:
