examples/hops_model.ml: Array Event Fmt Model Pmtest_core Pmtest_model Pmtest_trace
