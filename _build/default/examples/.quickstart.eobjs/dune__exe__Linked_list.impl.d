examples/linked_list.ml: Fmt List Pmtest_core Pmtest_pmdk
