examples/quickstart.ml: Fmt Pmtest_core Pmtest_pmem Pmtest_trace
