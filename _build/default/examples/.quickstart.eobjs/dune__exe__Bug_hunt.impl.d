examples/bug_hunt.ml: Case Catalog Fmt List Pmtest_bugdb Pmtest_core
