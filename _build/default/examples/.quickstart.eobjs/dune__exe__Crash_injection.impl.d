examples/crash_injection.ml: Bytes Ctree_map Fmt Int64 List Pmtest_core Pmtest_crashtest Pmtest_pmdk Pmtest_pmem Pmtest_trace Pool Printf
