examples/quickstart.mli:
