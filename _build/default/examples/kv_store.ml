(* End-to-end: a persistent key-value store on the Mnemosyne substrate,
   tested online with PMTest while it serves traffic, then crashed and
   recovered.

   Run with:  dune exec examples/kv_store.exe *)

open Pmtest_util
module Region = Pmtest_mnemosyne.Region
module Pmap = Pmtest_mnemosyne.Pmap
module Machine = Pmtest_pmem.Machine
module Pmtest = Pmtest_core.Pmtest
module Report = Pmtest_core.Report

let () =
  Fmt.pr "=== Persistent KV store (Mnemosyne) under PMTest ===@.@.";
  let session = Pmtest.init ~workers:2 () in
  let region = Region.create ~track_versions:true ~sink:(Pmtest.sink session) () in
  let store = Pmap.create ~buckets:128 ~value_cap:48 region in
  (* Serve a mixed workload; send a trace section every few requests so
     the checking pool works while the store keeps serving. *)
  let rng = Rng.create 2024 in
  for i = 0 to 499 do
    let key = Int64.of_int (Rng.int rng 100) in
    if Rng.int rng 100 < 40 then Pmap.set store ~key ~value:(Printf.sprintf "value-%d" i)
    else ignore (Pmap.get store ~key);
    if i mod 10 = 0 then Pmtest.send_trace session
  done;
  Pmtest.send_trace session;
  let report = Pmtest.get_result session in
  Fmt.pr "online checking: %a@." Report.pp report;
  Fmt.pr "store holds %d keys@.@." (Pmap.cardinal store);
  ignore (Pmtest.finish session);

  (* Power failure: all that survives is the media image. *)
  Fmt.pr "-- simulated power failure --@.";
  let crash_image = Machine.media_image (Region.machine region) in
  let booted = Machine.of_image crash_image in
  let recovered_region = Region.of_machine ~machine:booted ~sink:Pmtest_trace.Sink.null in
  let recovered = Pmap.open_ recovered_region ~root:(Pmap.root_off store) in
  (match Pmap.check_consistent recovered with
  | Ok () -> Fmt.pr "recovered store is structurally consistent@."
  | Error e ->
    Fmt.pr "recovered store corrupt: %s@." e;
    exit 1);
  Fmt.pr "recovered %d keys after the crash@." (Pmap.cardinal recovered);
  (* Every committed value must read back identically. *)
  let mismatches = ref 0 in
  Pmap.iter recovered (fun key v ->
      match Pmap.get store ~key with
      | Some v' when v = v' -> ()
      | _ -> incr mismatches);
  if !mismatches = 0 && Report.is_clean report then
    Fmt.pr "all recovered values match the pre-crash store; PMTest saw no violations.@."
  else begin
    Fmt.pr "unexpected outcome (%d mismatches)!@." !mismatches;
    exit 1
  end
