(* Crash injection: ground truth behind PMTest's verdicts.

   The same ctree workload runs twice under the crash-injection harness,
   which models a power failure after every few PM operations, boots each
   reachable durable image, runs recovery and validates the structure:

   - the correct version survives every injected crash;
   - with the unlogged-root-slot bug (the Table-6 rbtree/btree pattern),
     some crash window leaves a state recovery cannot repair — the same
     bug PMTest flags as FAIL [missing-log] from the trace alone, without
     executing a single crash.

   Run with:  dune exec examples/crash_injection.exe *)

open Pmtest_pmdk
module Crashtest = Pmtest_crashtest.Crashtest
module Machine = Pmtest_pmem.Machine
module Pmtest = Pmtest_core.Pmtest
module Report = Pmtest_core.Report
module Sink = Pmtest_trace.Sink

let steps = 10

let crash_run ~bug =
  let committed = ref [] in
  let target = ref Sink.null in
  let sink = { Sink.emit = (fun k l -> !target.Sink.emit k l) } in
  let pool = Pool.create ~track_versions:true ~size:(1 lsl 21) ~sink () in
  let m = Ctree_map.create pool in
  let root = Ctree_map.root_off m in
  let recover image =
    let booted = Machine.of_image image in
    let pool = Pool.of_machine ~machine:booted ~sink:Sink.null in
    let m = Ctree_map.open_ pool ~root in
    match Ctree_map.check_consistent m with
    | Error e -> Error ("inconsistent after recovery: " ^ e)
    | Ok () ->
      if List.for_all (fun (k, v) -> Ctree_map.lookup m ~key:k = Some v) !committed then Ok ()
      else Error "a committed key was lost"
  in
  let live, crash_sink = Crashtest.attach ~machine:(Pool.machine pool) ~recover () in
  target := crash_sink;
  for i = 0 to steps - 1 do
    let key = Int64.of_int i in
    let value = Bytes.of_string (Printf.sprintf "v%d" i) in
    Ctree_map.insert ?bug m ~key ~value;
    committed := (key, value) :: !committed
  done;
  Crashtest.live_verdict live

let pmtest_run ~bug =
  let session = Pmtest.init ~workers:0 () in
  let pool = Pool.create ~size:(1 lsl 21) ~sink:(Pmtest.sink session) () in
  let m = Ctree_map.create pool in
  for i = 0 to steps - 1 do
    Pool.tx_checker_start pool;
    Ctree_map.insert ?bug m ~key:(Int64.of_int i) ~value:(Bytes.of_string "v");
    Pool.tx_checker_end pool;
    Pmtest.send_trace session
  done;
  Pmtest.finish session

let () =
  Fmt.pr "=== Crash injection vs. PMTest on the same workload ===@.@.";
  Fmt.pr "--- Correct ctree ---@.";
  let ok_verdict = crash_run ~bug:None in
  Fmt.pr "crash injection: %a@." Crashtest.pp_verdict ok_verdict;
  Fmt.pr "PMTest:          %a@.@." Report.pp (pmtest_run ~bug:None);
  Fmt.pr "--- ctree with an unlogged root-slot update ---@.";
  let bug = Some Ctree_map.Skip_log_root in
  let bad_verdict = crash_run ~bug in
  Fmt.pr "crash injection: %a@." Crashtest.pp_verdict bad_verdict;
  let report = pmtest_run ~bug in
  Fmt.pr "PMTest:          %a@.@." Report.pp_summary report;
  if
    Crashtest.survived ok_verdict
    && (not (Crashtest.survived bad_verdict))
    && Report.count Report.Missing_log report > 0
  then
    Fmt.pr
      "PMTest reached the crash-injection verdict from one trace pass —@.no crash states were \
       enumerated.@."
  else begin
    Fmt.pr "unexpected outcome!@.";
    exit 1
  end
