(* Replays the six real bugs of the paper's Table 6 — three known from
   the PMFS/PMDK commit histories and three PMTest found — and prints
   PMTest's diagnosis of each.

   Run with:  dune exec examples/bug_hunt.exe *)

open Pmtest_bugdb
module Report = Pmtest_core.Report

let provenance_string = function
  | Case.Synthetic -> "synthetic"
  | Case.Reproduced src -> "known bug, " ^ src
  | Case.New_bug src -> "NEW bug, " ^ src

let () =
  Fmt.pr "=== Table 6: real bugs PMTest reproduces and detects ===@.@.";
  let all_ok = ref true in
  List.iter
    (fun case ->
      let outcome = Case.execute case in
      let verdict = if outcome.Case.detected then "DETECTED" else "MISSED" in
      if not outcome.Case.detected then all_ok := false;
      Fmt.pr "[%s] %-12s (%s)@." verdict case.Case.id (provenance_string case.Case.provenance);
      Fmt.pr "    %s@." case.Case.description;
      (match outcome.Case.report.Report.diagnostics with
      | d :: _ -> Fmt.pr "    first diagnostic: %a@." Report.pp_diagnostic d
      | [] -> ());
      Fmt.pr "@.")
    Catalog.table6;
  if !all_ok then Fmt.pr "All six Table-6 bugs detected.@."
  else begin
    Fmt.pr "Some bugs were missed!@.";
    exit 1
  end
