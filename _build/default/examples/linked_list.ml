(* The paper's Fig. 1b: appending to a persistent linked list inside a
   PMDK-style transaction, but forgetting to TX_ADD the length field.
   The high-level transaction checkers catch it automatically.

   Run with:  dune exec examples/linked_list.exe *)

module Pool = Pmtest_pmdk.Pool
module Pmtest = Pmtest_core.Pmtest
module Report = Pmtest_core.Report

(* List header: [0]=head offset, [8]=length. Node: [0]=value, [8]=next. *)

let make_list pool =
  let hdr = Pool.alloc pool 16 in
  Pool.set_root pool hdr;
  hdr

let append_list pool hdr ~buggy value =
  Pool.tx_checker_start pool;
  Pool.tx pool (fun () ->
      let node = Pool.alloc pool 16 in
      Pool.store_i64 ~line:4 pool ~off:node value;
      Pool.store_int ~line:5 pool ~off:(node + 8) (Pool.load_int pool ~off:hdr);
      (* TX_ADD(list.head) — the programmer remembered this one. *)
      Pool.tx_add_once ~line:6 pool ~off:hdr ~size:8;
      Pool.store_int ~line:7 pool ~off:hdr node;
      (* list.length++ — Fig. 1b forgets TX_ADD(&list.length). *)
      if not buggy then Pool.tx_add_once ~line:8 pool ~off:(hdr + 8) ~size:8;
      Pool.store_int ~line:9 pool ~off:(hdr + 8) (Pool.load_int pool ~off:(hdr + 8) + 1));
  Pool.tx_checker_end pool

let length pool hdr = Pool.load_int pool ~off:(hdr + 8)

let values pool hdr =
  let rec go node acc =
    if node = 0 then List.rev acc
    else go (Pool.load_int pool ~off:(node + 8)) (Pool.load_i64 pool ~off:node :: acc)
  in
  go (Pool.load_int pool ~off:hdr) []

let run ~buggy =
  let session = Pmtest.init ~workers:1 () in
  let pool = Pool.create ~sink:(Pmtest.sink session) () in
  let hdr = make_list pool in
  List.iter (fun v -> append_list pool hdr ~buggy v; Pmtest.send_trace session) [ 10L; 20L; 30L ];
  let report = Pmtest.finish session in
  assert (values pool hdr = [ 30L; 20L; 10L ]);
  (report, length pool hdr)

let () =
  Fmt.pr "=== Fig. 1b: linked-list append with a missing TX_ADD ===@.@.";
  Fmt.pr "--- Buggy version (length not backed up) ---@.";
  let buggy_report, len = run ~buggy:true in
  Fmt.pr "%a@." Report.pp buggy_report;
  Fmt.pr "(volatile list length after 3 appends: %d)@.@." len;
  Fmt.pr "--- Fixed version ---@.";
  let fixed_report, _ = run ~buggy:false in
  Fmt.pr "%a@.@." Report.pp fixed_report;
  if Report.count Report.Missing_log buggy_report > 0 && Report.is_clean fixed_report then
    Fmt.pr "The transaction checker flagged the unlogged length field.@."
  else begin
    Fmt.pr "unexpected outcome!@.";
    exit 1
  end
