(* The Pmemcheck-model baseline and the Yat exhaustive tester. *)

open Pmtest_model
open Pmtest_trace
module Pmemcheck = Pmtest_baseline.Pmemcheck
module Yat = Pmtest_baseline.Yat
module Report = Pmtest_core.Report

let w addr size = Event.make (Event.Op (Model.Write { addr; size }))
let clwb addr size = Event.make (Event.Op (Model.Clwb { addr; size }))
let sfence = Event.make (Event.Op Model.Sfence)

let feed pc entries =
  let sink = Pmemcheck.sink pc in
  List.iter (fun (e : Event.t) -> sink.Sink.emit e.Event.kind e.Event.loc) entries

let test_pmemcheck_clean () =
  let pc = Pmemcheck.create ~size:1024 in
  feed pc [ w 0x100 8; clwb 0x100 8; sfence ];
  Alcotest.(check bool) "clean" true (Report.is_clean (Pmemcheck.result pc))

let test_pmemcheck_unflushed_store () =
  let pc = Pmemcheck.create ~size:1024 in
  feed pc [ w 0x100 8 ];
  let r = Pmemcheck.result pc in
  Alcotest.(check int) "one not-persisted" 1 (Report.count Report.Not_persisted r)

let test_pmemcheck_flushed_unfenced () =
  let pc = Pmemcheck.create ~size:1024 in
  feed pc [ w 0x100 8; clwb 0x100 8 ];
  let r = Pmemcheck.result pc in
  Alcotest.(check int) "flushed but not fenced" 1 (Report.count Report.Not_persisted r)

let test_pmemcheck_redundant_flush () =
  let pc = Pmemcheck.create ~size:1024 in
  feed pc [ w 0x100 8; clwb 0x100 8; clwb 0x100 8; sfence ];
  let r = Pmemcheck.result pc in
  Alcotest.(check int) "redundant flush warned" 1 (Report.count Report.Duplicate_writeback r)

let test_pmemcheck_flush_clean_bytes () =
  let pc = Pmemcheck.create ~size:1024 in
  feed pc [ clwb 0x100 8; sfence ];
  let r = Pmemcheck.result pc in
  Alcotest.(check int) "unneeded flush warned" 1 (Report.count Report.Unnecessary_writeback r)

let test_pmemcheck_tx_store_without_log () =
  let pc = Pmemcheck.create ~size:1024 in
  feed pc
    [
      Event.make (Event.Tx Event.Tx_begin);
      w 0x100 8;
      Event.make (Event.Tx Event.Tx_commit);
      clwb 0x100 8;
      sfence;
    ];
  let r = Pmemcheck.result pc in
  Alcotest.(check int) "missing log" 1 (Report.count Report.Missing_log r)

let test_pmemcheck_tx_logged_ok () =
  let pc = Pmemcheck.create ~size:1024 in
  feed pc
    [
      Event.make (Event.Tx Event.Tx_begin);
      Event.make (Event.Tx (Event.Tx_add { addr = 0x100; size = 8 }));
      w 0x100 8;
      Event.make (Event.Tx Event.Tx_commit);
      clwb 0x100 8;
      sfence;
    ];
  Alcotest.(check bool) "clean" true (Report.is_clean (Pmemcheck.result pc))

(* --- Yat ------------------------------------------------------------------ *)

let test_yat_detects_ordering_violation () =
  (* Valid flag (line 1) may persist before the data (line 0): some crash
     state has valid=1 with stale data. The consistency predicate mirrors
     the paper's Fig. 1a invariant. *)
  let trace =
    [|
      w 0 8 (* data *);
      w 64 1 (* valid flag, own cache line *);
      clwb 0 8; clwb 64 1; sfence;
    |]
  in
  let check img =
    (* If the valid flag is set, the data must be fully new (0xff). *)
    if Bytes.get img 64 = '\xff' then
      Bytes.for_all (fun c -> c = '\xff') (Bytes.sub img 0 8)
    else true
  in
  let outcome = Yat.run ~size:256 ~check trace in
  Alcotest.(check bool) "found violation" true (outcome.Yat.violations > 0);
  Alcotest.(check bool) "exhaustive" true outcome.Yat.exhaustive

let test_yat_accepts_ordered_protocol () =
  (* Persist data first, then set valid: no reachable bad state. *)
  let trace =
    [|
      w 0 8; clwb 0 8; sfence;
      w 64 1; clwb 64 1; sfence;
    |]
  in
  let check img =
    if Bytes.get img 64 = '\xff' then
      Bytes.for_all (fun c -> c = '\xff') (Bytes.sub img 0 8)
    else true
  in
  let outcome = Yat.run ~size:256 ~check trace in
  Alcotest.(check int) "no violations" 0 outcome.Yat.violations;
  Alcotest.(check bool) "tested several states" true (outcome.Yat.states_tested > 0)

let test_yat_search_space_explodes () =
  (* Each unfenced dirty line doubles the space: the §2.2 blow-up. *)
  let mk n =
    Array.init n (fun i -> w (i * 64) 8)
  in
  let small = Yat.estimated_states ~size:4096 (mk 4) in
  let large = Yat.estimated_states ~size:4096 (mk 12) in
  Alcotest.(check bool) "exponential growth" true (large >= 200.0 *. small)

let test_yat_live_attachment () =
  let machine = Pmtest_pmem.Machine.create ~track_versions:true ~size:1024 () in
  let seen_bad = ref false in
  let check img = if Bytes.get img 0 = 'X' && Bytes.get img 64 <> 'X' then (seen_bad := true; false) else true in
  let live, sink = Yat.attach ~machine ~check () in
  (* Write two lines, flush both, fence: during enumeration at the fence,
     some state has line0 new but line1 old -> the predicate rejects. *)
  Pmtest_pmem.Machine.store machine ~addr:0 (Bytes.of_string "X");
  Sink.write sink ~addr:0 ~size:1 ();
  Pmtest_pmem.Machine.store machine ~addr:64 (Bytes.of_string "X");
  Sink.write sink ~addr:64 ~size:1 ();
  Pmtest_pmem.Machine.clwb machine ~addr:0 ~size:128;
  Sink.clwb sink ~addr:0 ~size:128 ();
  Pmtest_pmem.Machine.sfence machine;
  Sink.sfence sink ();
  let outcome = Yat.live_outcome live in
  Alcotest.(check bool) "saw the unordered state" true !seen_bad;
  Alcotest.(check bool) "counted violations" true (outcome.Yat.violations > 0)

(* --- Naive engine (differential twin) ---------------------------------------- *)

module Naive = Pmtest_baseline.Naive_engine
module Engine = Pmtest_core.Engine

(* Rich random traces: ops, checkers, transactions, exclusions. *)
let gen_trace =
  let module G = QCheck2.Gen in
  let addr = G.map (fun i -> i * 16) (G.int_range 0 15) in
  let size = G.oneofl [ 8; 16; 32 ] in
  let entry =
    G.oneof
      [
        G.map2 (fun a s -> Event.make (Event.Op (Model.Write { addr = a; size = s }))) addr size;
        G.map2 (fun a s -> Event.make (Event.Op (Model.Clwb { addr = a; size = s }))) addr size;
        G.return sfence;
        G.map2 (fun a s -> Event.make (Event.Checker (Event.Is_persist { addr = a; size = s }))) addr size;
        G.map2
          (fun a b ->
            Event.make
              (Event.Checker (Event.Is_ordered_before { a_addr = a; a_size = 8; b_addr = b; b_size = 8 })))
          addr addr;
        G.return (Event.make (Event.Tx Event.Tx_begin));
        G.map2 (fun a s -> Event.make (Event.Tx (Event.Tx_add { addr = a; size = s }))) addr size;
        G.return (Event.make (Event.Tx Event.Tx_commit));
        G.return (Event.make (Event.Tx Event.Tx_checker_start));
        G.return (Event.make (Event.Tx Event.Tx_checker_end));
        G.map2 (fun a s -> Event.make (Event.Control (Event.Exclude { addr = a; size = s }))) addr size;
        G.map2 (fun a s -> Event.make (Event.Control (Event.Include { addr = a; size = s }))) addr size;
      ]
  in
  G.map Array.of_list (G.list_size (G.int_range 0 40) entry)

let kind_multiset report =
  List.sort compare (List.map (fun d -> Report.kind_string d.Report.kind) report.Report.diagnostics)

let prop_naive_agrees =
  QCheck2.Test.make ~name:"interval-map engine agrees with the naive list engine" ~count:500
    gen_trace (fun trace ->
      kind_multiset (Engine.check trace) = kind_multiset (Naive.check trace))

let prop_naive_agrees_hops =
  let module G = QCheck2.Gen in
  let hops_trace =
    G.map
      (Array.map (fun (e : Event.t) ->
           match e.Event.kind with
           | Event.Op (Model.Clwb _) -> Event.make (Event.Op Model.Ofence)
           | Event.Op Model.Sfence -> Event.make (Event.Op Model.Dfence)
           | _ -> e))
      gen_trace
  in
  QCheck2.Test.make ~name:"engines agree under HOPS too" ~count:300 hops_trace (fun trace ->
      kind_multiset (Engine.check ~model:Model.Hops trace)
      = kind_multiset (Naive.check ~model:Model.Hops trace))

let prop_naive_agrees_eadr =
  QCheck2.Test.make ~name:"engines agree under eADR too" ~count:300 gen_trace (fun trace ->
      kind_multiset (Engine.check ~model:Model.Eadr trace)
      = kind_multiset (Naive.check ~model:Model.Eadr trace))

let () =
  Alcotest.run "baseline"
    [
      ( "pmemcheck",
        [
          Alcotest.test_case "clean run" `Quick test_pmemcheck_clean;
          Alcotest.test_case "unflushed store reported" `Quick test_pmemcheck_unflushed_store;
          Alcotest.test_case "flushed-unfenced reported" `Quick test_pmemcheck_flushed_unfenced;
          Alcotest.test_case "redundant flush warned" `Quick test_pmemcheck_redundant_flush;
          Alcotest.test_case "flush of clean bytes warned" `Quick test_pmemcheck_flush_clean_bytes;
          Alcotest.test_case "tx store without log" `Quick test_pmemcheck_tx_store_without_log;
          Alcotest.test_case "tx store with log is clean" `Quick test_pmemcheck_tx_logged_ok;
        ] );
      ( "naive-engine",
        List.map QCheck_alcotest.to_alcotest
          [ prop_naive_agrees; prop_naive_agrees_hops; prop_naive_agrees_eadr ] );
      ( "yat",
        [
          Alcotest.test_case "detects ordering violations" `Quick
            test_yat_detects_ordering_violation;
          Alcotest.test_case "accepts the ordered protocol" `Quick test_yat_accepts_ordered_protocol;
          Alcotest.test_case "search space explodes" `Quick test_yat_search_space_explodes;
          Alcotest.test_case "live attachment to a machine" `Quick test_yat_live_attachment;
        ] );
    ]
