(* The bug-injection suite: every Table-5 and Table-6 case must be
   detected with the expected diagnosis, and its bug-free twin must run
   clean (no false positives). This is the repository's Table 5/6
   validation, also exercised by `bench/main.exe table5`. *)

open Pmtest_bugdb

let test_catalog_shape () =
  let counts =
    List.map
      (fun (cat, cs) -> (Case.category_name cat, List.length cs))
      (Catalog.by_category Catalog.synthetic)
  in
  Alcotest.(check (list (pair string int)))
    "Table 5 category counts"
    [
      ("ordering", 4);
      ("writeback", 6);
      ("performance (writeback)", 2);
      ("backup", 19);
      ("completion", 7);
      ("performance (log)", 4);
    ]
    counts;
  Alcotest.(check int) "42 synthetic cases" 42 (List.length Catalog.synthetic);
  Alcotest.(check int) "6 real bugs" 6 (List.length Catalog.table6);
  (* Unique ids. *)
  let ids = List.map (fun c -> c.Case.id) Catalog.all in
  Alcotest.(check int) "ids unique" (List.length ids) (List.length (List.sort_uniq compare ids))

let check_case case () =
  let outcome = Case.execute case in
  if not outcome.Case.detected then
    Alcotest.failf "%s (%s) NOT detected; report: %s" case.Case.id case.Case.description
      (Case.Report.to_string outcome.Case.report);
  if not outcome.Case.clean then
    Alcotest.failf "%s: clean twin reported diagnostics (false positive)" case.Case.id

let () =
  let case_tests cases =
    List.map
      (fun c -> Alcotest.test_case (c.Case.id ^ ": " ^ c.Case.description) `Quick (check_case c))
      cases
  in
  Alcotest.run "bugdb"
    [
      ("catalog", [ Alcotest.test_case "shape matches Table 5" `Quick test_catalog_shape ]);
      ("table5", case_tests Catalog.synthetic);
      ("table6", case_tests Catalog.table6);
      ("extended", case_tests Catalog.extended);
    ]
