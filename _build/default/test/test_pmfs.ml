(* The simulated PMFS: file operations, journaled crash recovery, the
   historical bug switches, and PMTest integration. *)

open Pmtest_util
module Fs = Pmtest_pmfs.Fs
module Machine = Pmtest_pmem.Machine
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest
module Sink = Pmtest_trace.Sink

let mkfs ?(track = false) () = Fs.mkfs ~track_versions:track ~sink:Sink.null ()

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e

let test_create_lookup () =
  let fs = mkfs () in
  let ino = ok (Fs.create fs "hello") in
  Alcotest.(check (option int)) "lookup finds it" (Some ino) (Fs.lookup fs "hello");
  Alcotest.(check (option int)) "missing file" None (Fs.lookup fs "nope");
  (match Fs.create fs "hello" with
  | Error "file exists" -> ()
  | _ -> Alcotest.fail "duplicate create must fail");
  Alcotest.(check (list (pair string int))) "readdir" [ ("hello", ino) ] (Fs.readdir fs)

let test_write_read () =
  let fs = mkfs () in
  let ino = ok (Fs.create fs "data") in
  ok (Fs.write fs ~ino ~off:0 "hello world");
  Alcotest.(check string) "read back" "hello world" (ok (Fs.read fs ~ino ~off:0 ~len:64));
  Alcotest.(check int) "size" 11 (Fs.file_size fs ~ino);
  (* Cross-block write. *)
  let big = String.init 1500 (fun i -> Char.chr (Char.code 'a' + (i mod 26))) in
  ok (Fs.write fs ~ino ~off:100 big);
  Alcotest.(check string) "cross-block read" big (ok (Fs.read fs ~ino ~off:100 ~len:1500));
  Alcotest.(check int) "extended size" 1600 (Fs.file_size fs ~ino);
  match Fs.check_consistent fs with Ok () -> () | Error e -> Alcotest.fail e

let test_sparse_read () =
  let fs = mkfs () in
  let ino = ok (Fs.create fs "sparse") in
  ok (Fs.write fs ~ino ~off:1000 "end");
  let s = ok (Fs.read fs ~ino ~off:0 ~len:1003) in
  Alcotest.(check int) "length clipped to size" 1003 (String.length s);
  Alcotest.(check char) "hole reads as zero" '\000' s.[10];
  Alcotest.(check string) "tail data" "end" (String.sub s 1000 3)

let test_unlink_frees_blocks () =
  let fs = mkfs () in
  let ino = ok (Fs.create fs "victim") in
  ok (Fs.write fs ~ino ~off:0 (String.make 2000 'z'));
  ok (Fs.unlink fs "victim");
  Alcotest.(check (option int)) "gone" None (Fs.lookup fs "victim");
  (match Fs.check_consistent fs with Ok () -> () | Error e -> Alcotest.fail e);
  (* Blocks must be reusable: fill a new file of the same size. *)
  let ino2 = ok (Fs.create fs "reuse") in
  ok (Fs.write fs ~ino:ino2 ~off:0 (String.make 2000 'y'));
  match Fs.check_consistent fs with Ok () -> () | Error e -> Alcotest.fail e

let test_many_files () =
  let fs = mkfs () in
  for i = 0 to 30 do
    ignore (ok (Fs.create fs (Printf.sprintf "file%02d" i)))
  done;
  Alcotest.(check int) "all listed" 31 (List.length (Fs.readdir fs));
  match Fs.check_consistent fs with Ok () -> () | Error e -> Alcotest.fail e

let test_crash_recovery_consistent () =
  (* Crash at the media image after a burst of operations; remount must
     give a consistent file system with all committed files present. *)
  let fs = Fs.mkfs ~track_versions:true ~sink:Sink.null () in
  for i = 0 to 9 do
    let name = Printf.sprintf "f%d" i in
    ignore (ok (Fs.create fs name));
    match Fs.lookup fs name with
    | Some ino -> ok (Fs.write fs ~ino ~off:0 (String.make 100 'q'))
    | None -> ()
  done;
  let booted = Machine.of_image (Machine.media_image (Fs.machine fs)) in
  let fs2 = Fs.mount ~machine:booted ~sink:Sink.null in
  (match Fs.check_consistent fs2 with Ok () -> () | Error e -> Alcotest.failf "after crash: %s" e);
  for i = 0 to 9 do
    let name = Printf.sprintf "f%d" i in
    match Fs.lookup fs2 name with
    | Some ino ->
      Alcotest.(check string) (name ^ " contents") (String.make 100 'q')
        (ok (Fs.read fs2 ~ino ~off:0 ~len:100))
    | None -> Alcotest.failf "committed file %s lost" name
  done

let test_recovery_rolls_back_open_journal () =
  (* Forge the crash window: journal entry durable, in-place change half
     applied. Mount must restore the old bytes. *)
  let fs = Fs.mkfs ~track_versions:true ~sink:Sink.null () in
  ignore (ok (Fs.create fs "steady"));
  Machine.persist_all (Fs.machine fs);
  let m = Fs.machine fs in
  let image = Machine.media_image m in
  (* Journal offset is stored in the superblock at 32. *)
  let journal_off = Int64.to_int (Bytes.get_int64_le image 32) in
  let itable_off = Int64.to_int (Bytes.get_int64_le image 40) in
  (* Entry 0: undo record for inode 5's first 16 bytes (old value zero). *)
  let le = journal_off + 64 in
  let target = itable_off + (5 * 128) in
  Bytes.set_int64_le image le (Int64.of_int target);
  Bytes.set_int64_le image (le + 8) 16L;
  (* old data: all zeros — already zero in the image *)
  Bytes.set_int64_le image journal_off 1L;
  (* Simulate the torn in-place update. *)
  Bytes.set_int64_le image target 1L;
  let booted = Machine.of_image image in
  let fs2 = Fs.mount ~machine:booted ~sink:Sink.null in
  Alcotest.(check int) "one entry rolled back" 1 (Fs.recovered_entries fs2);
  let restored = Pmtest_pmem.Access.get_i64 booted target in
  Alcotest.(check int64) "old bytes restored" 0L restored;
  match Fs.check_consistent fs2 with Ok () -> () | Error e -> Alcotest.fail e

(* --- PMTest integration ------------------------------------------------------ *)

let run_ops fault =
  let session = Pmtest.init ~workers:0 () in
  let fs = Fs.mkfs ~sink:(Pmtest.sink session) () in
  Fs.set_fault fs fault;
  ignore (Fs.create fs "a");
  Pmtest.send_trace session;
  (match Fs.lookup fs "a" with
  | Some ino ->
    ignore (Fs.write fs ~ino ~off:0 (String.make 600 'x'));
    Pmtest.send_trace session;
    ignore (Fs.read fs ~ino ~off:0 ~len:32);
    Pmtest.send_trace session
  | None -> ());
  ignore (Fs.unlink fs "a");
  Pmtest.send_trace session;
  Pmtest.finish session

let test_clean_run_passes () =
  let report = run_ops None in
  if not (Report.is_clean report) then Alcotest.failf "expected clean: %s" (Report.to_string report)

let test_fault_detection () =
  let expect name kind fault =
    let report = run_ops (Some fault) in
    if Report.count kind report = 0 then
      Alcotest.failf "%s: expected %s, got %s" name (Report.kind_string kind)
        (Report.to_string report)
  in
  expect "journal double flush (journal.c:632)" Report.Duplicate_writeback Fs.Journal_double_flush;
  expect "data double flush (xips.c)" Report.Duplicate_writeback Fs.Data_double_flush;
  expect "flush of unmapped buffer (files.c:232)" Report.Unnecessary_writeback Fs.Flush_unmapped;
  expect "journal entries unpersisted" Report.Not_ordered Fs.Skip_journal_flush;
  expect "commit unfenced" Report.Not_persisted Fs.Skip_commit_fence

let test_fs_workload_random () =
  (* Random op soup stays consistent (no tool attached). *)
  let fs = mkfs () in
  let rng = Rng.create 99 in
  let ops = Pmtest_workloads.Clients.filebench ~ops:300 ~files:12 rng in
  Pmtest_workloads.Pmfs_app.run fs ops;
  match Fs.check_consistent fs with Ok () -> () | Error e -> Alcotest.fail e

let () =
  Alcotest.run "pmfs"
    [
      ( "operations",
        [
          Alcotest.test_case "create and lookup" `Quick test_create_lookup;
          Alcotest.test_case "write and read" `Quick test_write_read;
          Alcotest.test_case "sparse files" `Quick test_sparse_read;
          Alcotest.test_case "unlink frees blocks" `Quick test_unlink_frees_blocks;
          Alcotest.test_case "many files" `Quick test_many_files;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "crash image mounts consistent" `Quick test_crash_recovery_consistent;
          Alcotest.test_case "open journal rolled back" `Quick
            test_recovery_rolls_back_open_journal;
        ] );
      ( "pmtest-integration",
        [
          Alcotest.test_case "clean run passes" `Quick test_clean_run_passes;
          Alcotest.test_case "all faults detected" `Quick test_fault_detection;
          Alcotest.test_case "random workload stays consistent" `Quick test_fs_workload_random;
        ] );
    ]
