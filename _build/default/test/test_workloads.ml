(* The WHISPER-style workloads: client generators, the sharded memcached
   server, the redis-like cache, and their behaviour under PMTest. *)

open Pmtest_util
open Pmtest_workloads
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest
module Sink = Pmtest_trace.Sink

(* --- Client generators -------------------------------------------------------- *)

let count_sets ops =
  Array.fold_left (fun n op -> match op with Clients.Set _ -> n + 1 | Clients.Get _ -> n) 0 ops

let test_memslap_mix () =
  let ops = Clients.memslap ~ops:10000 ~keys:100 (Rng.create 1) in
  let sets = count_sets ops in
  (* 5% sets, generously bounded. *)
  Alcotest.(check bool) "set ratio near 5%" true (sets > 300 && sets < 700)

let test_ycsb_mix_and_skew () =
  let ops = Clients.ycsb ~ops:10000 ~keys:1000 (Rng.create 2) in
  let sets = count_sets ops in
  Alcotest.(check bool) "update ratio near 50%" true (sets > 4500 && sets < 5500);
  (* Zipfian skew: the most popular key should dwarf the uniform share. *)
  let freq = Hashtbl.create 64 in
  Array.iter
    (fun op ->
      let k = match op with Clients.Get k | Clients.Set (k, _) -> k in
      Hashtbl.replace freq k (1 + Option.value ~default:0 (Hashtbl.find_opt freq k)))
    ops;
  let top = Hashtbl.fold (fun _ n acc -> max n acc) freq 0 in
  Alcotest.(check bool) "skewed popularity" true (top > 300)

let test_generators_deterministic () =
  let a = Clients.memslap ~ops:500 ~keys:50 (Rng.create 7) in
  let b = Clients.memslap ~ops:500 ~keys:50 (Rng.create 7) in
  Alcotest.(check bool) "same seed, same stream" true (a = b)

let test_filebench_creates_before_use () =
  let ops = Clients.filebench ~ops:500 ~files:10 (Rng.create 3) in
  (* Every write/read/delete of a file must come after its create (the
     generator tracks existence). *)
  let live = Hashtbl.create 16 in
  Array.iter
    (fun op ->
      match op with
      | Clients.Create n -> Hashtbl.replace live n true
      | Clients.Delete n ->
        Alcotest.(check bool) "delete of live file" true (Hashtbl.mem live n);
        Hashtbl.remove live n
      | Clients.Write { name; _ } | Clients.Read { name; _ } | Clients.Fsync name ->
        Alcotest.(check bool) "op on live file" true (Hashtbl.mem live name))
    ops

(* --- Memcached ----------------------------------------------------------------- *)

let test_memcached_single_shard () =
  let mc = Memcached.create ~shards:1 ~sink_of:(fun _ -> Sink.null) () in
  let streams = [| Clients.memslap ~ops:500 ~keys:64 (Rng.create 4) |] in
  Memcached.run mc ~streams;
  (match Memcached.check_consistent mc with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check bool) "entries stored" true (Memcached.total_entries mc > 0)

let test_memcached_partition_routes_by_key () =
  let mc = Memcached.create ~shards:4 ~sink_of:(fun _ -> Sink.null) () in
  let ops = Clients.memslap ~ops:400 ~keys:64 (Rng.create 5) in
  let streams = Memcached.partition mc ops in
  Array.iteri
    (fun shard stream ->
      Array.iter
        (fun op ->
          let k = match op with Clients.Get k | Clients.Set (k, _) -> k in
          Alcotest.(check int) "routed to owner" shard (Memcached.shard_of mc k))
        stream)
    streams

let test_memcached_multithreaded_under_pmtest () =
  let session = Pmtest.init ~workers:2 () in
  let shards = 4 in
  List.iter (fun i -> Pmtest.thread_init session ~thread:i) (List.init shards Fun.id);
  let mc = Memcached.create ~shards ~sink_of:(fun i -> Pmtest.sink ~thread:i session) () in
  let mk i = Clients.ycsb ~ops:200 ~keys:64 (Rng.create (100 + i)) in
  let streams = Memcached.partition mc (Array.concat (List.init shards (fun i -> Array.to_list (mk i) |> Array.of_list))) in
  Memcached.run mc ~section_every:8 ~on_section:(fun shard -> Pmtest.send_trace ~thread:shard session) ~streams;
  let report = Pmtest.finish session in
  if not (Report.is_clean report) then Alcotest.failf "expected clean: %s" (Report.to_string report);
  match Memcached.check_consistent mc with Ok () -> () | Error e -> Alcotest.fail e

let test_memcached_get_after_set () =
  let mc = Memcached.create ~shards:2 ~sink_of:(fun _ -> Sink.null) () in
  let key = 42L in
  let shard = Memcached.shard_of mc key in
  Memcached.apply mc ~shard (Clients.Set (key, "payload"));
  let pmap = Memcached.pmap mc shard in
  Alcotest.(check (option string)) "stored" (Some "payload")
    (Pmtest_mnemosyne.Pmap.get pmap ~key)

(* --- Redis ----------------------------------------------------------------------- *)

let test_redis_set_get_del () =
  let r = Redis.create ~capacity:64 ~sink:Sink.null () in
  Redis.set r ~key:1L ~value:(Bytes.of_string "one");
  Alcotest.(check bool) "get hits" true (Redis.get r ~key:1L = Some (Bytes.of_string "one"));
  Alcotest.(check bool) "del removes" true (Redis.del r ~key:1L);
  Alcotest.(check bool) "get misses" true (Redis.get r ~key:1L = None)

let test_redis_lru_eviction () =
  let r = Redis.create ~capacity:16 ~sink:Sink.null () in
  for i = 0 to 63 do
    Redis.set r ~key:(Int64.of_int i) ~value:(Bytes.of_string "v")
  done;
  Alcotest.(check bool) "capacity respected" true (Redis.cardinal r <= 16);
  Alcotest.(check bool) "evictions happened" true (Redis.evictions r >= 48);
  (* The most recent keys survive. *)
  Alcotest.(check bool) "hot key resident" true (Redis.get r ~key:63L <> None);
  match Redis.check_consistent r with Ok () -> () | Error e -> Alcotest.fail e

let test_redis_clean_under_pmtest () =
  let session = Pmtest.init ~workers:0 () in
  let r = Redis.create ~capacity:32 ~sink:(Pmtest.sink session) () in
  let ops = Clients.redis_lru ~ops:200 ~keys:128 (Rng.create 6) in
  Array.iteri
    (fun i op ->
      Redis.apply r op;
      if i mod 8 = 0 then Pmtest.send_trace session)
    ops;
  Pmtest.send_trace session;
  let report = Pmtest.finish session in
  if not (Report.is_clean report) then Alcotest.failf "expected clean: %s" (Report.to_string report)

(* --- Vacation ---------------------------------------------------------------- *)

let test_vacation_reserve_release () =
  let v = Vacation.create ~resources:8 ~annotate:false ~sink:Sink.null () in
  Alcotest.(check bool) "reserve ok" true (Vacation.reserve v ~customer:1L Vacation.Car ~id:0L);
  Alcotest.(check int) "used bumped" 1 (Vacation.used v Vacation.Car ~id:0L);
  Alcotest.(check int) "customer holds one" 1 (Vacation.reservations v ~customer:1L);
  Alcotest.(check bool) "delete releases" true (Vacation.delete_customer v ~customer:1L);
  Alcotest.(check int) "used back to zero" 0 (Vacation.used v Vacation.Car ~id:0L);
  Alcotest.(check int) "customer gone" 0 (Vacation.reservations v ~customer:1L);
  match Vacation.check_consistent v with Ok () -> () | Error e -> Alcotest.fail e

let test_vacation_capacity_limit () =
  let v = Vacation.create ~resources:4 ~annotate:false ~sink:Sink.null () in
  let cap = Vacation.total v Vacation.Room ~id:2L in
  for c = 0 to cap - 1 do
    Alcotest.(check bool) "reserve within capacity" true
      (Vacation.reserve v ~customer:(Int64.of_int c) Vacation.Room ~id:2L)
  done;
  Alcotest.(check bool) "fully booked" false (Vacation.reserve v ~customer:99L Vacation.Room ~id:2L);
  Vacation.add_capacity v Vacation.Room ~id:2L 1;
  Alcotest.(check bool) "capacity growth admits one more" true
    (Vacation.reserve v ~customer:99L Vacation.Room ~id:2L);
  match Vacation.check_consistent v with Ok () -> () | Error e -> Alcotest.fail e

let test_vacation_random_mix_conserves () =
  let v = Vacation.create ~resources:16 ~annotate:false ~sink:Sink.null () in
  Vacation.run v (Vacation.client ~ops:600 ~customers:48 ~resources:16 (Rng.create 77));
  match Vacation.check_consistent v with Ok () -> () | Error e -> Alcotest.fail e

let test_vacation_clean_under_pmtest () =
  let session = Pmtest.init ~workers:1 () in
  let v = Vacation.create ~resources:16 ~sink:(Pmtest.sink session) () in
  Vacation.run v
    ~on_section:(fun () -> Pmtest.send_trace session)
    (Vacation.client ~ops:300 ~customers:32 ~resources:16 (Rng.create 78));
  let report = Pmtest.finish session in
  if not (Report.is_clean report) then Alcotest.failf "expected clean: %s" (Report.to_string report)

let test_vacation_commit_fault_detected () =
  let session = Pmtest.init ~workers:0 () in
  let v = Vacation.create ~resources:8 ~sink:(Pmtest.sink session) () in
  Pmtest_pmdk.Pool.set_fault (Vacation.pool v) (Some Pmtest_pmdk.Pool.Skip_commit_writeback);
  Vacation.run v
    ~on_section:(fun () -> Pmtest.send_trace session)
    (Vacation.client ~ops:60 ~customers:8 ~resources:8 (Rng.create 79));
  let report = Pmtest.finish session in
  Alcotest.(check bool) "incomplete transactions reported" true
    (Report.count Report.Incomplete_tx report > 0)

let () =
  Alcotest.run "workloads"
    [
      ( "clients",
        [
          Alcotest.test_case "memslap mix" `Quick test_memslap_mix;
          Alcotest.test_case "ycsb mix and skew" `Quick test_ycsb_mix_and_skew;
          Alcotest.test_case "generators are deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "filebench op legality" `Quick test_filebench_creates_before_use;
        ] );
      ( "memcached",
        [
          Alcotest.test_case "single shard serves a stream" `Quick test_memcached_single_shard;
          Alcotest.test_case "partition routes by key" `Quick test_memcached_partition_routes_by_key;
          Alcotest.test_case "multithreaded run is clean under PMTest" `Quick
            test_memcached_multithreaded_under_pmtest;
          Alcotest.test_case "get after set" `Quick test_memcached_get_after_set;
        ] );
      ( "vacation",
        [
          Alcotest.test_case "reserve and release conserve" `Quick test_vacation_reserve_release;
          Alcotest.test_case "capacity limits respected" `Quick test_vacation_capacity_limit;
          Alcotest.test_case "random mix conserves" `Quick test_vacation_random_mix_conserves;
          Alcotest.test_case "clean under PMTest" `Quick test_vacation_clean_under_pmtest;
          Alcotest.test_case "commit fault detected" `Quick test_vacation_commit_fault_detected;
        ] );
      ( "redis",
        [
          Alcotest.test_case "set/get/del" `Quick test_redis_set_get_del;
          Alcotest.test_case "LRU eviction" `Quick test_redis_lru_eviction;
          Alcotest.test_case "clean under PMTest" `Quick test_redis_clean_under_pmtest;
        ] );
    ]
