(* The simulated PMDK: pool transactions and recovery, the five map
   structures (functional correctness vs. a reference model, consistency
   invariants, crash recovery), and bug-switch detection by PMTest. *)

open Pmtest_util
open Pmtest_pmdk
module Machine = Pmtest_pmem.Machine
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest
module Sink = Pmtest_trace.Sink

let value_of i = Bytes.of_string (Printf.sprintf "value-%d" i)

(* --- Pool ----------------------------------------------------------------- *)

let test_pool_tx_commit_durable () =
  let pool = Pool.create ~track_versions:true ~size:(1 lsl 20) ~sink:Sink.null () in
  let off = Pool.alloc pool 64 in
  Pool.tx pool (fun () ->
      Pool.tx_add pool ~off ~size:8;
      Pool.store_i64 pool ~off 42L);
  (* After commit the update must be in the media image. *)
  let booted = Machine.of_image (Machine.media_image (Pool.machine pool)) in
  Alcotest.(check int64) "durable after commit" 42L (Pmtest_pmem.Access.get_i64 booted off)

let test_pool_tx_abort_rolls_back () =
  let pool = Pool.create ~size:(1 lsl 20) ~sink:Sink.null () in
  let off = Pool.alloc pool 64 in
  Pool.store_i64 pool ~off 1L;
  Pool.persist pool ~off ~size:8;
  (try
     Pool.tx pool (fun () ->
         Pool.tx_add pool ~off ~size:8;
         Pool.store_i64 pool ~off 99L;
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int64) "volatile rolled back" 1L (Pool.load_i64 pool ~off)

let test_pool_recovery_rolls_back_open_tx () =
  let pool = Pool.create ~track_versions:true ~size:(1 lsl 20) ~sink:Sink.null () in
  let off = Pool.alloc pool 64 in
  Pool.store_i64 pool ~off 7L;
  Pool.persist pool ~off ~size:8;
  (* Open a transaction, log, modify, and crash before commit: the crash
     image is the media; recovery must restore the logged bytes. *)
  Pool.tx_begin pool;
  Pool.tx_add pool ~off ~size:8;
  Pool.store_i64 pool ~off 1234L;
  (* Simulate the in-flight store having reached PM (worst case). *)
  Pool.persist pool ~off ~size:8;
  let crash_image = Machine.media_image (Pool.machine pool) in
  let booted = Machine.of_image crash_image in
  let recovered = Pool.of_machine ~machine:booted ~sink:Sink.null in
  Alcotest.(check bool) "log entries replayed" true (Pool.recovered_entries recovered >= 1);
  Alcotest.(check int64) "old value restored" 7L (Pool.load_i64 recovered ~off)

let test_pool_recovery_clean_after_commit () =
  let pool = Pool.create ~size:(1 lsl 20) ~sink:Sink.null () in
  let off = Pool.alloc pool 64 in
  Pool.tx pool (fun () ->
      Pool.tx_add pool ~off ~size:8;
      Pool.store_i64 pool ~off 5L);
  let booted = Machine.of_image (Machine.media_image (Pool.machine pool)) in
  let recovered = Pool.of_machine ~machine:booted ~sink:Sink.null in
  Alcotest.(check int) "no log entries" 0 (Pool.recovered_entries recovered);
  Alcotest.(check int64) "committed value" 5L (Pool.load_i64 recovered ~off)

let test_pool_alloc_reuse () =
  let pool = Pool.create ~size:(1 lsl 20) ~sink:Sink.null () in
  let a = Pool.alloc pool 64 in
  Pool.free pool ~off:a ~size:64;
  let b = Pool.alloc pool 64 in
  Alcotest.(check int) "free block reused" a b

let test_pool_edge_cases () =
  let pool = Pool.create ~size:(1 lsl 20) ~sink:Sink.null () in
  (* Transactional calls outside a transaction are programming errors. *)
  Alcotest.check_raises "tx_add outside tx"
    (Invalid_argument "Pool.tx_add: no active transaction") (fun () ->
      Pool.tx_add pool ~off:(Pool.heap_start pool) ~size:8);
  Alcotest.check_raises "commit outside tx"
    (Invalid_argument "Pool.tx_commit: no active transaction") (fun () -> Pool.tx_commit pool);
  (* Nested depth bookkeeping. *)
  Pool.tx_begin pool;
  Pool.tx_begin pool;
  Alcotest.(check int) "depth 2" 2 (Pool.tx_depth pool);
  Pool.tx_commit pool;
  Alcotest.(check bool) "still active" true (Pool.tx_active pool);
  Pool.tx_commit pool;
  Alcotest.(check bool) "closed" false (Pool.tx_active pool);
  (* Heap exhaustion surfaces as Out_of_memory. *)
  Alcotest.check_raises "alloc too large" Out_of_memory (fun () ->
      ignore (Pool.alloc pool (1 lsl 21)))

let test_pool_undo_log_capacity () =
  (* The undo log holds a large but bounded number of snapshots; a
     transaction exceeding it fails loudly rather than corrupting. *)
  let pool = Pool.create ~size:(1 lsl 22) ~sink:Sink.null () in
  let base = Pool.alloc pool (1 lsl 19) in
  Pool.tx_begin pool;
  Alcotest.check_raises "log full" (Failure "Pool: undo log full") (fun () ->
      for i = 0 to 100_000 do
        Pool.tx_add pool ~off:(base + (8 * i)) ~size:8
      done);
  Pool.tx_abort pool

let test_exclusions_survive_sections () =
  (* The session re-announces exclusions at every section boundary, so a
     range excluded in section 1 stays out of scope in section 2. *)
  let session = Pmtest.init ~workers:0 () in
  let sink = Pmtest.sink session in
  Pmtest.exclude session ~addr:0x100 ~size:8;
  Pmtest.send_trace session;
  Sink.write sink ~addr:0x100 ~size:8 ();
  Pmtest.is_persist session ~addr:0x100 ~size:8;
  Pmtest.send_trace session;
  let r = Pmtest.finish session in
  Alcotest.(check bool) "excluded across sections" true (Report.is_clean r)

(* --- Structure round trips ------------------------------------------------ *)

type ops = {
  insert : key:int64 -> value:bytes -> unit;
  lookup : key:int64 -> bytes option;
  cardinal : unit -> int;
  iter : (int64 -> bytes -> unit) -> unit;
  check : unit -> (unit, string) result;
}

let structures : (string * (Pool.t -> ops)) list =
  [
    ( "ctree",
      fun pool ->
        let m = Ctree_map.create pool in
        {
          insert = (fun ~key ~value -> Ctree_map.insert m ~key ~value);
          lookup = (fun ~key -> Ctree_map.lookup m ~key);
          cardinal = (fun () -> Ctree_map.cardinal m);
          iter = (fun f -> Ctree_map.iter m f);
          check = (fun () -> Ctree_map.check_consistent m);
        } );
    ( "btree",
      fun pool ->
        let m = Btree_map.create pool in
        {
          insert = (fun ~key ~value -> Btree_map.insert m ~key ~value);
          lookup = (fun ~key -> Btree_map.lookup m ~key);
          cardinal = (fun () -> Btree_map.cardinal m);
          iter = (fun f -> Btree_map.iter m f);
          check = (fun () -> Btree_map.check_consistent m);
        } );
    ( "rbtree",
      fun pool ->
        let m = Rbtree_map.create pool in
        {
          insert = (fun ~key ~value -> Rbtree_map.insert m ~key ~value);
          lookup = (fun ~key -> Rbtree_map.lookup m ~key);
          cardinal = (fun () -> Rbtree_map.cardinal m);
          iter = (fun f -> Rbtree_map.iter m f);
          check = (fun () -> Rbtree_map.check_consistent m);
        } );
    ( "hashmap_tx",
      fun pool ->
        let m = Hashmap_tx.create ~buckets:64 pool in
        {
          insert = (fun ~key ~value -> Hashmap_tx.insert m ~key ~value);
          lookup = (fun ~key -> Hashmap_tx.lookup m ~key);
          cardinal = (fun () -> Hashmap_tx.cardinal m);
          iter = (fun f -> Hashmap_tx.iter m f);
          check = (fun () -> Hashmap_tx.check_consistent m);
        } );
    ( "hashmap_atomic",
      fun pool ->
        let m = Hashmap_atomic.create ~buckets:64 pool in
        {
          insert = (fun ~key ~value -> ignore (Hashmap_atomic.insert m ~key ~value));
          lookup = (fun ~key -> Hashmap_atomic.lookup m ~key);
          cardinal = (fun () -> Hashmap_atomic.cardinal m);
          iter = (fun f -> Hashmap_atomic.iter m f);
          check = (fun () -> Hashmap_atomic.check_consistent m);
        } );
  ]

let round_trip_test name make () =
  let pool = Pool.create ~size:(1 lsl 22) ~sink:Sink.null () in
  let { insert; lookup; cardinal; iter; check } = make pool in
  let reference = Hashtbl.create 64 in
  let rng = Rng.create 7 in
  for i = 0 to 299 do
    let key = Int64.of_int (Rng.int rng 120) in
    let value = value_of i in
    insert ~key ~value;
    Hashtbl.replace reference key value
  done;
  Alcotest.(check int) (name ^ " cardinal") (Hashtbl.length reference) (cardinal ());
  Hashtbl.iter
    (fun key value ->
      match lookup ~key with
      | None -> Alcotest.failf "%s: key %Ld missing" name key
      | Some got ->
        if not (Bytes.equal got value) then Alcotest.failf "%s: key %Ld wrong value" name key)
    reference;
  Alcotest.(check (option bytes)) "absent key" None (lookup ~key:99999L);
  let seen = ref 0 in
  iter (fun _ _ -> incr seen);
  Alcotest.(check int) (name ^ " iter count") (Hashtbl.length reference) !seen;
  match check () with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s inconsistent: %s" name msg

let test_tree_iteration_sorted () =
  List.iter
    (fun which ->
      let pool = Pool.create ~size:(1 lsl 22) ~sink:Sink.null () in
      let keys = ref [] in
      (match which with
      | `Btree ->
        let m = Btree_map.create pool in
        for i = 0 to 199 do
          Btree_map.insert m ~key:(Int64.of_int ((i * 37) mod 211)) ~value:(value_of i)
        done;
        Btree_map.iter m (fun k _ -> keys := k :: !keys)
      | `Rbtree ->
        let m = Rbtree_map.create pool in
        for i = 0 to 199 do
          Rbtree_map.insert m ~key:(Int64.of_int ((i * 37) mod 211)) ~value:(value_of i)
        done;
        Rbtree_map.iter m (fun k _ -> keys := k :: !keys)
      | `Ctree ->
        let m = Ctree_map.create pool in
        for i = 0 to 199 do
          Ctree_map.insert m ~key:(Int64.of_int ((i * 37) mod 211)) ~value:(value_of i)
        done;
        Ctree_map.iter m (fun k _ -> keys := k :: !keys));
      let ks = List.rev !keys in
      let sorted = List.sort compare ks in
      if ks <> sorted then Alcotest.fail "iteration out of order")
    [ `Btree; `Rbtree; `Ctree ]

let test_remove () =
  let pool = Pool.create ~size:(1 lsl 22) ~sink:Sink.null () in
  let m = Ctree_map.create pool in
  for i = 0 to 63 do
    Ctree_map.insert m ~key:(Int64.of_int i) ~value:(value_of i)
  done;
  for i = 0 to 63 do
    if i mod 2 = 0 then
      Alcotest.(check bool) "removed" true (Ctree_map.remove m ~key:(Int64.of_int i))
  done;
  Alcotest.(check bool) "remove absent" false (Ctree_map.remove m ~key:1000L);
  Alcotest.(check int) "half left" 32 (Ctree_map.cardinal m);
  (match Ctree_map.check_consistent m with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  let h = Hashmap_tx.create ~buckets:16 pool in
  for i = 0 to 63 do
    Hashmap_tx.insert h ~key:(Int64.of_int i) ~value:(value_of i)
  done;
  for i = 0 to 31 do
    ignore (Hashmap_tx.remove h ~key:(Int64.of_int i))
  done;
  Alcotest.(check int) "hashmap half left" 32 (Hashmap_tx.cardinal h);
  (match Hashmap_tx.check_consistent h with Ok () -> () | Error e -> Alcotest.fail e);
  let rb = Rbtree_map.create pool in
  for i = 0 to 127 do
    Rbtree_map.insert rb ~key:(Int64.of_int i) ~value:(value_of i)
  done;
  let rng = Rng.create 3 in
  let removed = ref 0 in
  for _ = 0 to 63 do
    let k = Int64.of_int (Rng.int rng 128) in
    if Rbtree_map.remove rb ~key:k then incr removed
  done;
  Alcotest.(check int) "rbtree count tracks removals" (128 - !removed) (Rbtree_map.cardinal rb);
  match Rbtree_map.check_consistent rb with Ok () -> () | Error e -> Alcotest.fail e

(* --- Crash recovery end-to-end -------------------------------------------- *)

let test_structure_crash_recovery () =
  (* Insert under version tracking, crash at the media image mid-run,
     recover, and require structural consistency. *)
  let pool = Pool.create ~track_versions:true ~size:(1 lsl 22) ~sink:Sink.null () in
  let m = Ctree_map.create pool in
  for i = 0 to 40 do
    Ctree_map.insert m ~key:(Int64.of_int i) ~value:(value_of i)
  done;
  (* Crash now: simulate power loss with only the media contents. *)
  let booted = Machine.of_image (Machine.media_image (Pool.machine pool)) in
  let recovered_pool = Pool.of_machine ~machine:booted ~sink:Sink.null in
  let m' = Ctree_map.open_ recovered_pool ~root:(Pool.root recovered_pool) in
  (match Ctree_map.check_consistent m' with
  | Ok () -> ()
  | Error e -> Alcotest.failf "inconsistent after recovery: %s" e);
  (* Committed transactions must all be visible: the last committed insert
     is i=40 or i=39 depending on log truncation timing; at minimum the
     first 39 must be present. *)
  for i = 0 to 38 do
    match Ctree_map.lookup m' ~key:(Int64.of_int i) with
    | Some v -> Alcotest.(check bytes) "value preserved" (value_of i) v
    | None -> Alcotest.failf "committed key %d lost" i
  done

(* --- Bug switches are detected by PMTest ----------------------------------- *)

let run_annotated ~insert_twice f =
  (* Run [f pool] with the transaction checkers around each insert, under
     a synchronous PMTest session; return the report. *)
  let session = Pmtest.init ~workers:0 () in
  let pool = Pool.create ~size:(1 lsl 22) ~sink:(Pmtest.sink session) () in
  let wrap body =
    Pool.tx_checker_start pool;
    body ();
    Pool.tx_checker_end pool;
    Pmtest.send_trace session
  in
  f pool wrap;
  ignore insert_twice;
  Pmtest.finish session

let expect_kind name kind report =
  if Report.count kind report = 0 then
    Alcotest.failf "%s: expected %s, got: %s" name (Report.kind_string kind)
      (Report.to_string report)

let expect_clean name report =
  if not (Report.is_clean report) then
    Alcotest.failf "%s: expected clean, got: %s" name (Report.to_string report)

let test_ctree_bugs () =
  let run bug =
    run_annotated ~insert_twice:false (fun pool wrap ->
        let m = Ctree_map.create pool in
        wrap (fun () -> Ctree_map.insert ?bug m ~key:1L ~value:(value_of 1));
        wrap (fun () -> Ctree_map.insert ?bug m ~key:2L ~value:(value_of 2)))
  in
  expect_clean "ctree no bug" (run None);
  expect_kind "ctree skip log root" Report.Missing_log (run (Some Ctree_map.Skip_log_root));
  expect_kind "ctree duplicate log" Report.Duplicate_log (run (Some Ctree_map.Duplicate_log));
  expect_kind "ctree no tx" Report.Incomplete_tx (run (Some Ctree_map.No_tx))

let test_ctree_skip_log_leaf () =
  let report =
    run_annotated ~insert_twice:false (fun pool wrap ->
        let m = Ctree_map.create pool in
        wrap (fun () -> Ctree_map.insert m ~key:1L ~value:(value_of 1));
        (* Updating an existing key without logging the leaf. *)
        wrap (fun () ->
            Ctree_map.insert ~bug:Ctree_map.Skip_log_leaf m ~key:1L ~value:(value_of 99)))
  in
  expect_kind "ctree skip log leaf" Report.Missing_log report

let test_btree_bugs () =
  let run bug n =
    run_annotated ~insert_twice:false (fun pool wrap ->
        let m = Btree_map.create pool in
        for i = 0 to n - 1 do
          wrap (fun () -> Btree_map.insert ?bug m ~key:(Int64.of_int i) ~value:(value_of i))
        done)
  in
  expect_clean "btree no bug" (run None 40);
  (* 40 sorted inserts force splits, so the unlogged split-node shows. *)
  expect_kind "btree skip log split" Report.Missing_log (run (Some Btree_map.Skip_log_split_node) 40);
  expect_kind "btree duplicate log" Report.Duplicate_log (run (Some Btree_map.Duplicate_log_insert) 4);
  expect_kind "btree missing log on leaf" Report.Missing_log (run (Some Btree_map.Skip_log_leaf_insert) 4);
  expect_kind "btree no commit" Report.Incomplete_tx (run (Some Btree_map.No_commit) 2)

let test_rbtree_bugs () =
  let run bug n =
    run_annotated ~insert_twice:false (fun pool wrap ->
        let m = Rbtree_map.create pool in
        for i = 0 to n - 1 do
          wrap (fun () -> Rbtree_map.insert ?bug m ~key:(Int64.of_int i) ~value:(value_of i))
        done)
  in
  expect_clean "rbtree no bug" (run None 60);
  expect_kind "rbtree unlogged rotation" Report.Missing_log (run (Some Rbtree_map.Skip_log_fixup) 60);
  expect_kind "rbtree unlogged parent" Report.Missing_log (run (Some Rbtree_map.Skip_log_insert) 8);
  expect_kind "rbtree duplicate log" Report.Duplicate_log (run (Some Rbtree_map.Duplicate_log) 4)

let test_hashmap_tx_bugs () =
  let run bug n =
    run_annotated ~insert_twice:false (fun pool wrap ->
        let m = Hashmap_tx.create ~buckets:32 pool in
        for i = 0 to n - 1 do
          wrap (fun () -> Hashmap_tx.insert ?bug m ~key:(Int64.of_int i) ~value:(value_of i))
        done)
  in
  expect_clean "hashmap_tx no bug" (run None 20);
  expect_kind "hashmap_tx unlogged bucket" Report.Missing_log (run (Some Hashmap_tx.Skip_log_bucket) 8);
  expect_kind "hashmap_tx unlogged count" Report.Missing_log (run (Some Hashmap_tx.Skip_log_count) 8);
  expect_kind "hashmap_tx duplicate log" Report.Duplicate_log (run (Some Hashmap_tx.Duplicate_log) 8);
  expect_kind "hashmap_tx no commit" Report.Incomplete_tx (run (Some Hashmap_tx.No_commit) 2)

let test_hashmap_atomic_bugs () =
  (* The low-level structure carries its own isPersist/isOrderedBefore
     annotations; no tx checkers needed. *)
  let run bug n =
    let session = Pmtest.init ~workers:0 () in
    let pool = Pool.create ~size:(1 lsl 22) ~sink:(Pmtest.sink session) () in
    let m = Hashmap_atomic.create ~buckets:32 pool in
    for i = 0 to n - 1 do
      ignore (Hashmap_atomic.insert ?bug m ~key:(Int64.of_int i) ~value:(value_of i));
      Pmtest.send_trace session
    done;
    Pmtest.finish session
  in
  expect_clean "atomic no bug" (run None 10);
  expect_kind "missing entry flush" Report.Not_ordered (run (Some Hashmap_atomic.Missing_flush_entry) 4);
  expect_kind "missing entry fence" Report.Not_ordered (run (Some Hashmap_atomic.Missing_fence_entry) 4);
  expect_kind "missing slot flush" Report.Not_persisted (run (Some Hashmap_atomic.Missing_flush_slot) 4);
  expect_kind "missing slot fence" Report.Not_persisted (run (Some Hashmap_atomic.Missing_fence_slot) 4);
  expect_kind "misplaced fence" Report.Not_ordered (run (Some Hashmap_atomic.Misplaced_fence_entry) 4);
  expect_kind "partial entry flush" Report.Not_ordered (run (Some Hashmap_atomic.Misplaced_flush_entry) 4);
  expect_kind "duplicate flush" Report.Duplicate_writeback (run (Some Hashmap_atomic.Duplicate_flush_entry) 4);
  expect_kind "flush of unmodified" Report.Unnecessary_writeback (run (Some Hashmap_atomic.Flush_unmodified) 4);
  expect_kind "count never persisted" Report.Not_persisted (run (Some Hashmap_atomic.Missing_count_flush) 4)

let test_pool_commit_faults () =
  let run fault =
    run_annotated ~insert_twice:false (fun pool wrap ->
        Pool.set_fault pool fault;
        let m = Hashmap_tx.create ~buckets:8 pool in
        wrap (fun () -> Hashmap_tx.insert m ~key:5L ~value:(value_of 5)))
  in
  expect_clean "no fault" (run None);
  expect_kind "commit skips writeback" Report.Incomplete_tx (run (Some Pool.Skip_commit_writeback));
  expect_kind "commit skips fence" Report.Incomplete_tx (run (Some Pool.Skip_commit_fence))

(* --- HOPS persistency model (paper Fig. 2b: PMDK over HOPS) --------------- *)

let run_hops ?fault ?bug n =
  let session = Pmtest.init ~model:Pmtest_model.Model.Hops ~workers:0 () in
  let pool =
    Pool.create ~model:Pmtest_model.Model.Hops ~size:(1 lsl 22) ~sink:(Pmtest.sink session) ()
  in
  Pool.set_fault pool fault;
  let m = Hashmap_tx.create ~buckets:32 pool in
  for i = 0 to n - 1 do
    Pool.tx_checker_start pool;
    Hashmap_tx.insert ?bug m ~key:(Int64.of_int i) ~value:(value_of i);
    Pool.tx_checker_end pool;
    Pmtest.send_trace session
  done;
  (Pmtest.finish session, m)

let test_hops_clean () =
  let report, m = run_hops 20 in
  if not (Report.is_clean report) then Alcotest.failf "expected clean: %s" (Report.to_string report);
  (match Hashmap_tx.check_consistent m with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check int) "all inserted" 20 (Hashmap_tx.cardinal m)

let test_hops_detects_faults () =
  let report, _ = run_hops ~fault:Pool.Skip_commit_writeback 4 in
  expect_kind "HOPS commit without dfence" Report.Incomplete_tx report;
  let report, _ = run_hops ~bug:Hashmap_tx.Skip_log_bucket 4 in
  expect_kind "HOPS unlogged bucket" Report.Missing_log report

let test_hops_atomic_ordering () =
  (* hashmap_atomic's low-level checkers under HOPS semantics. *)
  let session = Pmtest.init ~model:Pmtest_model.Model.Hops ~workers:0 () in
  let pool =
    Pool.create ~model:Pmtest_model.Model.Hops ~size:(1 lsl 22) ~sink:(Pmtest.sink session) ()
  in
  let m = Hashmap_atomic.create ~buckets:16 pool in
  for i = 0 to 7 do
    ignore (Hashmap_atomic.insert m ~key:(Int64.of_int i) ~value:(value_of i));
    Pmtest.send_trace session
  done;
  let report = Pmtest.finish session in
  if not (Report.is_clean report) then
    Alcotest.failf "expected clean under HOPS: %s" (Report.to_string report);
  (* And the missing-ordering bug is still caught: no fence between the
     entry and its publication means both land in the same HOPS epoch. *)
  let session = Pmtest.init ~model:Pmtest_model.Model.Hops ~workers:0 () in
  let pool =
    Pool.create ~model:Pmtest_model.Model.Hops ~size:(1 lsl 22) ~sink:(Pmtest.sink session) ()
  in
  let m = Hashmap_atomic.create ~buckets:16 pool in
  for i = 0 to 3 do
    ignore
      (Hashmap_atomic.insert ~bug:Hashmap_atomic.Missing_fence_entry m ~key:(Int64.of_int i)
         ~value:(value_of i));
    Pmtest.send_trace session
  done;
  expect_kind "HOPS missing ordering point" Report.Not_ordered (Pmtest.finish session)

let () =
  let structure_cases =
    List.map
      (fun (name, make) -> Alcotest.test_case (name ^ " round trip") `Quick (round_trip_test name make))
      structures
  in
  Alcotest.run "pmdk"
    [
      ( "pool",
        [
          Alcotest.test_case "commit makes updates durable" `Quick test_pool_tx_commit_durable;
          Alcotest.test_case "abort rolls back" `Quick test_pool_tx_abort_rolls_back;
          Alcotest.test_case "recovery rolls back open tx" `Quick
            test_pool_recovery_rolls_back_open_tx;
          Alcotest.test_case "recovery after clean commit" `Quick
            test_pool_recovery_clean_after_commit;
          Alcotest.test_case "allocator reuses freed blocks" `Quick test_pool_alloc_reuse;
          Alcotest.test_case "edge cases raise cleanly" `Quick test_pool_edge_cases;
          Alcotest.test_case "undo log capacity bounded" `Quick test_pool_undo_log_capacity;
          Alcotest.test_case "exclusions survive trace sections" `Quick
            test_exclusions_survive_sections;
        ] );
      ("round-trips", structure_cases);
      ( "structure-behaviour",
        [
          Alcotest.test_case "tree iteration is sorted" `Quick test_tree_iteration_sorted;
          Alcotest.test_case "removals" `Quick test_remove;
          Alcotest.test_case "crash recovery keeps committed data" `Quick
            test_structure_crash_recovery;
        ] );
      ( "bug-detection",
        [
          Alcotest.test_case "ctree bug switches" `Quick test_ctree_bugs;
          Alcotest.test_case "ctree unlogged leaf update" `Quick test_ctree_skip_log_leaf;
          Alcotest.test_case "btree bug switches" `Quick test_btree_bugs;
          Alcotest.test_case "rbtree bug switches" `Quick test_rbtree_bugs;
          Alcotest.test_case "hashmap_tx bug switches" `Quick test_hashmap_tx_bugs;
          Alcotest.test_case "hashmap_atomic bug switches" `Quick test_hashmap_atomic_bugs;
          Alcotest.test_case "pool commit faults" `Quick test_pool_commit_faults;
        ] );
      ( "hops-model",
        [
          Alcotest.test_case "clean run under HOPS" `Quick test_hops_clean;
          Alcotest.test_case "faults detected under HOPS" `Quick test_hops_detects_faults;
          Alcotest.test_case "low-level checkers under HOPS" `Quick test_hops_atomic_ordering;
        ] );
    ]
