(* Persist-interval algebra and persistency-model classification. *)

open Pmtest_model

let test_open_close () =
  let i = Interval.make_open 3 in
  Alcotest.(check bool) "open" true (Interval.is_open i);
  Alcotest.(check bool) "never ends" false (Interval.ends_by i 1000);
  let c = Interval.close i 5 in
  Alcotest.(check bool) "closed" false (Interval.is_open c);
  Alcotest.(check bool) "ends by 5" true (Interval.ends_by c 5);
  Alcotest.(check bool) "not by 4" false (Interval.ends_by c 4);
  (* Closing again keeps the first bound. *)
  let c2 = Interval.close c 99 in
  Alcotest.(check bool) "first close binds" true (Interval.equal c c2)

let test_overlap_adjacent () =
  let a = Interval.make ~lo:1 ~hi:2 in
  let b = Interval.make_open 2 in
  Alcotest.(check bool) "adjacent do not overlap" false (Interval.overlaps a b);
  Alcotest.(check bool) "ordered" true (Interval.ordered_before a b);
  let c = Interval.make_open 1 in
  Alcotest.(check bool) "same-epoch opens overlap" true (Interval.overlaps b c || Interval.overlaps c b)

let test_overlap_open () =
  let a = Interval.make_open 0 in
  let b = Interval.make ~lo:1 ~hi:3 in
  Alcotest.(check bool) "open overlaps later closed" true (Interval.overlaps a b);
  Alcotest.(check bool) "not ordered" false (Interval.ordered_before a b)

let test_hops_rule () =
  let a = Interval.make ~lo:0 ~hi:2 in
  let b = Interval.make ~lo:1 ~hi:2 in
  Alcotest.(check bool) "earlier epoch starts before" true (Interval.starts_before a b);
  Alcotest.(check bool) "same epoch does not" false (Interval.starts_before b b)

let test_invalid_intervals () =
  Alcotest.check_raises "make with hi<=lo" (Invalid_argument "Interval.make: hi must exceed lo")
    (fun () -> ignore (Interval.make ~lo:3 ~hi:3));
  Alcotest.check_raises "close at lo" (Invalid_argument "Interval.close: bound must exceed lo")
    (fun () -> ignore (Interval.close (Interval.make_open 3) 3))

let test_model_validity () =
  let w = Model.Write { addr = 0; size = 8 } in
  Alcotest.(check bool) "write ok everywhere" true
    (Model.valid_op Model.X86 w && Model.valid_op Model.Hops w);
  Alcotest.(check bool) "clwb only x86" true
    (Model.valid_op Model.X86 (Model.Clwb { addr = 0; size = 8 })
    && not (Model.valid_op Model.Hops (Model.Clwb { addr = 0; size = 8 })));
  Alcotest.(check bool) "sfence only x86" true
    (Model.valid_op Model.X86 Model.Sfence && not (Model.valid_op Model.Hops Model.Sfence));
  Alcotest.(check bool) "ofence/dfence only hops" true
    (Model.valid_op Model.Hops Model.Ofence
    && Model.valid_op Model.Hops Model.Dfence
    && (not (Model.valid_op Model.X86 Model.Ofence))
    && not (Model.valid_op Model.X86 Model.Dfence))

let test_line_span () =
  Alcotest.(check (pair int int)) "within one line" (0, 0) (Model.line_span ~addr:0 ~size:64);
  Alcotest.(check (pair int int)) "straddles" (0, 1) (Model.line_span ~addr:60 ~size:8);
  Alcotest.(check (pair int int)) "many lines" (1, 4) (Model.line_span ~addr:64 ~size:256)

let test_kind_round_trip () =
  Alcotest.(check (option string))
    "x86" (Some "x86")
    (Option.map Model.kind_name (Model.kind_of_string "x86"));
  Alcotest.(check (option string))
    "hops" (Some "hops")
    (Option.map Model.kind_name (Model.kind_of_string "HOPS"));
  Alcotest.(check bool) "unknown" true (Model.kind_of_string "arm" = None)

let prop_overlap_symmetric =
  let gen =
    QCheck2.Gen.(
      let interval =
        int_range 0 10 >>= fun lo ->
        oneof [ return None; int_range (lo + 1) 12 >|= Option.some ] >|= fun hi ->
        match hi with None -> Interval.make_open lo | Some h -> Interval.make ~lo ~hi:h
      in
      pair interval interval)
  in
  QCheck2.Test.make ~name:"overlap is symmetric" ~count:500 gen (fun (a, b) ->
      Interval.overlaps a b = Interval.overlaps b a)

let prop_ordered_excludes_overlap =
  let gen =
    QCheck2.Gen.(
      let interval =
        int_range 0 10 >>= fun lo ->
        oneof [ return None; int_range (lo + 1) 12 >|= Option.some ] >|= fun hi ->
        match hi with None -> Interval.make_open lo | Some h -> Interval.make ~lo ~hi:h
      in
      pair interval interval)
  in
  QCheck2.Test.make ~name:"ordered_before implies no overlap" ~count:500 gen (fun (a, b) ->
      (not (Interval.ordered_before a b)) || not (Interval.overlaps a b))

let () =
  Alcotest.run "model"
    [
      ( "interval",
        [
          Alcotest.test_case "open/close lifecycle" `Quick test_open_close;
          Alcotest.test_case "adjacent intervals do not overlap" `Quick test_overlap_adjacent;
          Alcotest.test_case "open interval overlaps" `Quick test_overlap_open;
          Alcotest.test_case "HOPS starts_before is strict" `Quick test_hops_rule;
          Alcotest.test_case "invalid constructions raise" `Quick test_invalid_intervals;
        ] );
      ( "model",
        [
          Alcotest.test_case "per-model op validity" `Quick test_model_validity;
          Alcotest.test_case "cache-line spans" `Quick test_line_span;
          Alcotest.test_case "kind parsing" `Quick test_kind_round_trip;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_overlap_symmetric; prop_ordered_excludes_overlap ]
      );
    ]
