(* The NOVA-style log-structured file system: operations, log replay on
   mount, PMTest detection of the commit-protocol bugs, and crash
   injection. *)

module Nova = Pmtest_nova.Nova
module Crashtest = Pmtest_crashtest.Crashtest
module Machine = Pmtest_pmem.Machine
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest
module Sink = Pmtest_trace.Sink

let ok = function Ok v -> v | Error e -> Alcotest.failf "unexpected error: %s" e
let page s = s ^ String.make (Nova.page_size - String.length s) '\000'

let test_create_write_read () =
  let fs = Nova.mkfs ~sink:Sink.null () in
  let ino = ok (Nova.create fs "notes") in
  ok (Nova.write fs ~ino ~pgoff:0 "hello nova");
  ok (Nova.write fs ~ino ~pgoff:3 "sparse page");
  Alcotest.(check string) "page 0" (page "hello nova") (ok (Nova.read fs ~ino ~pgoff:0));
  Alcotest.(check string) "page 3" (page "sparse page") (ok (Nova.read fs ~ino ~pgoff:3));
  Alcotest.(check string) "hole" (String.make Nova.page_size '\000') (ok (Nova.read fs ~ino ~pgoff:1));
  Alcotest.(check int) "two pages" 2 (Nova.file_pages fs ~ino);
  (* Copy-on-write overwrite: partial write overlays the old page. *)
  ok (Nova.write fs ~ino ~pgoff:0 "HELLO");
  Alcotest.(check string) "overlay" (page "HELLO nova") (ok (Nova.read fs ~ino ~pgoff:0));
  match Nova.check_consistent fs with Ok () -> () | Error e -> Alcotest.fail e

let test_namespace () =
  let fs = Nova.mkfs ~sink:Sink.null () in
  let a = ok (Nova.create fs "a") in
  let b = ok (Nova.create fs "b") in
  Alcotest.(check (list (pair string int))) "readdir" [ ("a", a); ("b", b) ] (Nova.readdir fs);
  (match Nova.create fs "a" with Error "file exists" -> () | _ -> Alcotest.fail "dup create");
  ok (Nova.unlink fs "a");
  Alcotest.(check (option int)) "gone" None (Nova.lookup fs "a");
  (* The name can be reused; a fresh inode is allocated. *)
  let a2 = ok (Nova.create fs "a") in
  Alcotest.(check bool) "inode reused or fresh" true (a2 > 0);
  match Nova.check_consistent fs with Ok () -> () | Error e -> Alcotest.fail e

let test_mount_replays_logs () =
  let fs = Nova.mkfs ~track_versions:true ~sink:Sink.null () in
  let ino = ok (Nova.create fs "data") in
  for i = 0 to 9 do
    ok (Nova.write fs ~ino ~pgoff:(i mod 4) (Printf.sprintf "version-%d" i))
  done;
  ok (Nova.unlink fs "data");
  let keep = ok (Nova.create fs "keep") in
  ok (Nova.write fs ~ino:keep ~pgoff:0 "persists");
  (* Crash: only the media image survives; mount replays the logs. *)
  let booted = Machine.of_image (Machine.media_image (Nova.machine fs)) in
  let fs2 = Nova.mount ~machine:booted ~sink:Sink.null in
  Alcotest.(check (option int)) "unlinked stays gone" None (Nova.lookup fs2 "data");
  (match Nova.lookup fs2 "keep" with
  | Some ino ->
    Alcotest.(check string) "contents replayed" (page "persists") (ok (Nova.read fs2 ~ino ~pgoff:0))
  | None -> Alcotest.fail "committed file lost");
  match Nova.check_consistent fs2 with Ok () -> () | Error e -> Alcotest.fail e

let run_under_pmtest bug n =
  let session = Pmtest.init ~workers:0 () in
  let fs = Nova.mkfs ~sink:(Pmtest.sink session) () in
  Nova.set_bug fs bug;
  let ino = match Nova.create fs "f" with Ok i -> i | Error e -> failwith e in
  for i = 0 to n - 1 do
    ignore (Nova.write fs ~ino ~pgoff:(i mod 4) (Printf.sprintf "w%d" i));
    Pmtest.send_trace session
  done;
  Pmtest.finish session

let test_pmtest_detection () =
  let clean = run_under_pmtest None 8 in
  if not (Report.is_clean clean) then Alcotest.failf "expected clean: %s" (Report.to_string clean);
  let expect name kind bug =
    let r = run_under_pmtest (Some bug) 6 in
    if Report.count kind r = 0 then
      Alcotest.failf "%s: expected %s, got %s" name (Report.kind_string kind) (Report.to_string r)
  in
  expect "data page not persisted" Report.Not_ordered Nova.Skip_data_persist;
  expect "log entry not persisted" Report.Not_ordered Nova.Skip_entry_persist;
  expect "tail never persisted" Report.Not_persisted Nova.Skip_tail_persist

let test_crash_injection () =
  (* Committed writes must survive any crash; a crash inside a write may
     land before or after its commit point (the tail persist), so the
     in-flight page may read either way. *)
  let committed = Hashtbl.create 16 in
  let pending = ref None in
  let target = ref Sink.null in
  let sink = { Sink.emit = (fun k l -> !target.Sink.emit k l) } in
  let fs = Nova.mkfs ~track_versions:true ~sink () in
  let recover image =
    let booted = Machine.of_image image in
    let fs2 = Nova.mount ~machine:booted ~sink:Sink.null in
    match Nova.check_consistent fs2 with
    | Error e -> Error e
    | Ok () ->
      let bad = ref None in
      Hashtbl.iter
        (fun (name, pgoff) contents ->
          if !bad = None then
            match Nova.lookup fs2 name with
            | None -> bad := Some (name ^ " lost")
            | Some ino -> (
              match Nova.read fs2 ~ino ~pgoff with
              | Ok s when s = contents -> ()
              | Ok s when !pending = Some ((name, pgoff), s) -> ()
              | Ok _ -> bad := Some (name ^ " corrupted")
              | Error e -> bad := Some e))
        committed;
      (match !bad with None -> Ok () | Some m -> Error m)
  in
  let config =
    { Crashtest.default_config with Crashtest.samples_per_point = 6; exhaustive_limit = 32 }
  in
  let live, crash_sink =
    Crashtest.attach ~config ~every:6 ~machine:(Nova.machine fs) ~recover ()
  in
  target := crash_sink;
  let ino = match Nova.create fs "f" with Ok i -> i | Error e -> failwith e in
  for i = 0 to 11 do
    let contents = Printf.sprintf "commit-%d" i in
    pending := Some (("f", i mod 3), page contents);
    (match Nova.write fs ~ino ~pgoff:(i mod 3) contents with
    | Ok () ->
      Hashtbl.replace committed ("f", i mod 3) (page contents);
      pending := None
    | Error e -> failwith e)
  done;
  let v = Crashtest.live_verdict live in
  if not (Crashtest.survived v) then
    Alcotest.failf "correct nova failed crash testing: %a" Crashtest.pp_verdict v

let test_buggy_tail_loses_commits () =
  let target = ref Sink.null in
  let sink = { Sink.emit = (fun k l -> !target.Sink.emit k l) } in
  let fs = Nova.mkfs ~track_versions:true ~sink () in
  Nova.set_bug fs (Some Nova.Skip_tail_persist);
  let committed = Hashtbl.create 16 in
  let recover image =
    let booted = Machine.of_image image in
    let fs2 = Nova.mount ~machine:booted ~sink:Sink.null in
    match Nova.check_consistent fs2 with
    | Error e -> Error e
    | Ok () ->
      let bad = ref None in
      Hashtbl.iter
        (fun (name, pgoff) contents ->
          if !bad = None then
            match Nova.lookup fs2 name with
            | None -> bad := Some "file lost"
            | Some ino -> (
              match Nova.read fs2 ~ino ~pgoff with
              | Ok s when s = contents -> ()
              | _ -> bad := Some "write lost"))
        committed;
      (match !bad with None -> Ok () | Some m -> Error m)
  in
  let config =
    { Crashtest.default_config with Crashtest.samples_per_point = 8; exhaustive_limit = 48 }
  in
  let live, crash_sink = Crashtest.attach ~config ~every:4 ~machine:(Nova.machine fs) ~recover () in
  target := crash_sink;
  (match Nova.create fs "f" with
  | Ok ino ->
    for i = 0 to 7 do
      match Nova.write fs ~ino ~pgoff:0 (Printf.sprintf "c%d" i) with
      | Ok () -> Hashtbl.replace committed ("f", 0) (page (Printf.sprintf "c%d" i))
      | Error e -> failwith e
    done
  | Error e -> failwith e);
  let v = Crashtest.live_verdict live in
  Alcotest.(check bool)
    (Format.asprintf "expected lost commits, got %a" Crashtest.pp_verdict v)
    false (Crashtest.survived v)

let () =
  Alcotest.run "nova"
    [
      ( "operations",
        [
          Alcotest.test_case "create/write/read with CoW overlay" `Quick test_create_write_read;
          Alcotest.test_case "namespace add/remove/reuse" `Quick test_namespace;
          Alcotest.test_case "mount replays logs" `Quick test_mount_replays_logs;
        ] );
      ( "testing",
        [
          Alcotest.test_case "PMTest catches each protocol bug" `Quick test_pmtest_detection;
          Alcotest.test_case "correct fs survives crash injection" `Quick test_crash_injection;
          Alcotest.test_case "unpersisted tail loses commits" `Quick test_buggy_tail_loses_commits;
        ] );
    ]
