test/test_baseline.ml: Alcotest Array Bytes Event List Model Pmtest_baseline Pmtest_core Pmtest_model Pmtest_pmem Pmtest_trace QCheck2 QCheck_alcotest Sink
