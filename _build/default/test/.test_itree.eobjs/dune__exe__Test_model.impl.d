test/test_model.ml: Alcotest Interval List Model Option Pmtest_model QCheck2 QCheck_alcotest
