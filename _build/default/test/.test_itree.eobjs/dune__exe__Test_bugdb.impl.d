test/test_bugdb.ml: Alcotest Case Catalog List Pmtest_bugdb
