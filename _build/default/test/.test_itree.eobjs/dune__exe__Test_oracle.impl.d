test/test_oracle.ml: Alcotest Array Bytes Char Event List Model Pmtest_core Pmtest_model Pmtest_pmem Pmtest_trace Printf QCheck2 QCheck_alcotest String
