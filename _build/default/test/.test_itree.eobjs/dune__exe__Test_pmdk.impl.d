test/test_pmdk.ml: Alcotest Btree_map Bytes Ctree_map Hashmap_atomic Hashmap_tx Hashtbl Int64 List Pmtest_core Pmtest_model Pmtest_pmdk Pmtest_pmem Pmtest_trace Pmtest_util Pool Printf Rbtree_map Rng
