test/test_nova.mli:
