test/test_engine.ml: Alcotest Array Event Format Interval List Model Pmtest_core Pmtest_model Pmtest_trace String
