test/test_itree.mli:
