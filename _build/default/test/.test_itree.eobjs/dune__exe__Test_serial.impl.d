test/test_serial.ml: Alcotest Array Bytes Ctree_map Event Filename Int64 List Model Pmtest_core Pmtest_model Pmtest_pmdk Pmtest_trace Pmtest_util Pool QCheck2 QCheck_alcotest Serial String Sys
