test/test_crashtest.ml: Alcotest Bytes Char Ctree_map Format Hashmap_tx Int64 List Pmtest_core Pmtest_crashtest Pmtest_mnemosyne Pmtest_pmdk Pmtest_pmem Pmtest_pmfs Pmtest_trace Pool Printf String
