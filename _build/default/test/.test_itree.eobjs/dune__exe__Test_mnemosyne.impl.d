test/test_mnemosyne.ml: Alcotest Hashtbl Int64 Pmtest_core Pmtest_mnemosyne Pmtest_pmem Pmtest_trace Pmtest_util Printf Rng
