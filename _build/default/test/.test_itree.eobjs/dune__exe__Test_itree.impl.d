test/test_itree.ml: Alcotest Array Interval_map Interval_tree List Pmtest_itree Printf QCheck2 QCheck_alcotest String
