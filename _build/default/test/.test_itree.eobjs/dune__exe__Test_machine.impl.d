test/test_machine.ml: Alcotest Bytes List Pmtest_pmem Pmtest_util QCheck2 QCheck_alcotest Rng
