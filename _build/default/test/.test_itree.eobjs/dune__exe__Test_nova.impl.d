test/test_nova.ml: Alcotest Format Hashtbl Pmtest_core Pmtest_crashtest Pmtest_nova Pmtest_pmem Pmtest_trace Printf String
