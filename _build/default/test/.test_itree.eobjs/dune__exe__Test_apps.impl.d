test/test_apps.ml: Alcotest Format Hashtbl Int64 List Pmtest_apps Pmtest_core Pmtest_crashtest Pmtest_pmem Pmtest_trace Pmtest_util Printf
