test/test_mnemosyne.mli:
