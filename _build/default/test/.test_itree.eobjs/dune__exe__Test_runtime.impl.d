test/test_runtime.ml: Alcotest Domain Event List Model Pmtest_core Pmtest_model Pmtest_trace Sink
