test/test_pmfs.ml: Alcotest Bytes Char Int64 List Pmtest_core Pmtest_pmem Pmtest_pmfs Pmtest_trace Pmtest_util Pmtest_workloads Printf Rng String
