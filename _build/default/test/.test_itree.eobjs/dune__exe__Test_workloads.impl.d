test/test_workloads.ml: Alcotest Array Bytes Clients Fun Hashtbl Int64 List Memcached Option Pmtest_core Pmtest_mnemosyne Pmtest_pmdk Pmtest_trace Pmtest_util Pmtest_workloads Redis Rng Vacation
