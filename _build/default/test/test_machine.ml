(* The simulated PM device: volatile/media separation, writeback protocol,
   crash-state enumeration. *)

open Pmtest_util
module Machine = Pmtest_pmem.Machine
module Access = Pmtest_pmem.Access

let mk ?(track = true) ?(size = 1024) () = Machine.create ~track_versions:track ~size ()

let test_store_load () =
  let m = mk () in
  Machine.store m ~addr:100 (Bytes.of_string "hello");
  Alcotest.(check string) "volatile readback" "hello" (Bytes.to_string (Machine.load m ~addr:100 ~len:5))

let test_store_not_durable () =
  let m = mk () in
  Machine.store m ~addr:0 (Bytes.of_string "x");
  Alcotest.(check char) "media still zero" '\000' (Bytes.get (Machine.media_image m) 0)

let test_clwb_fence_durable () =
  let m = mk () in
  Machine.store m ~addr:0 (Bytes.of_string "x");
  Machine.clwb m ~addr:0 ~size:1;
  Machine.sfence m;
  Alcotest.(check char) "media updated" 'x' (Bytes.get (Machine.media_image m) 0);
  Alcotest.(check int) "line clean" 0 (Machine.dirty_line_count m)

let test_clwb_snapshot_excludes_later_store () =
  (* Store A, clwb, store B to the same line, fence: only A is guaranteed;
     the line stays dirty with B pending. *)
  let m = mk () in
  Machine.store m ~addr:0 (Bytes.of_string "A");
  Machine.clwb m ~addr:0 ~size:1;
  Machine.store m ~addr:0 (Bytes.of_string "B");
  Machine.sfence m;
  Alcotest.(check char) "media has A" 'A' (Bytes.get (Machine.media_image m) 0);
  Alcotest.(check int) "line still dirty" 1 (Machine.dirty_line_count m)

let test_fence_without_clwb_persists_nothing () =
  let m = mk () in
  Machine.store m ~addr:0 (Bytes.of_string "x");
  Machine.sfence m;
  Alcotest.(check char) "media still zero" '\000' (Bytes.get (Machine.media_image m) 0);
  Alcotest.(check int) "still dirty" 1 (Machine.dirty_line_count m)

let test_crash_states_single_line () =
  (* One dirty line with two stores -> 3 reachable images: old, v1, v2. *)
  let m = mk () in
  Machine.store m ~addr:0 (Bytes.of_string "A");
  Machine.store m ~addr:0 (Bytes.of_string "B");
  Alcotest.(check (float 0.01)) "3 states" 3.0 (Machine.crash_state_count m);
  let seen = ref [] in
  let exhaustive =
    Machine.iter_crash_states m (fun img -> seen := Bytes.get img 0 :: !seen)
  in
  Alcotest.(check bool) "exhaustive" true exhaustive;
  Alcotest.(check (list char)) "values" [ '\000'; 'A'; 'B' ] (List.sort compare !seen)

let test_crash_states_two_lines_product () =
  let m = mk () in
  Machine.store m ~addr:0 (Bytes.of_string "A");
  Machine.store m ~addr:64 (Bytes.of_string "B");
  (* Each line: media or its one store -> 4 combinations. *)
  Alcotest.(check (float 0.01)) "4 states" 4.0 (Machine.crash_state_count m);
  let count = ref 0 in
  ignore (Machine.iter_crash_states m (fun _ -> incr count));
  Alcotest.(check int) "enumerated" 4 !count

let test_crash_state_limit () =
  let m = mk () in
  for i = 0 to 9 do
    Machine.store m ~addr:(i * 64) (Bytes.of_string "A")
  done;
  (* 2^10 = 1024 states; limit to 100. *)
  let count = ref 0 in
  let exhaustive = Machine.iter_crash_states ~limit:100 m (fun _ -> incr count) in
  Alcotest.(check bool) "truncated" false exhaustive;
  Alcotest.(check int) "stopped at limit" 100 !count

let test_sample_crash_state_valid () =
  let m = mk () in
  Machine.store m ~addr:0 (Bytes.of_string "A");
  Machine.store m ~addr:0 (Bytes.of_string "B");
  let rng = Rng.create 42 in
  for _ = 1 to 50 do
    let img = Machine.sample_crash_state m rng in
    let c = Bytes.get img 0 in
    Alcotest.(check bool) "one of the versions" true (c = '\000' || c = 'A' || c = 'B')
  done

let test_persisted_line_has_no_choice () =
  let m = mk () in
  Machine.store m ~addr:0 (Bytes.of_string "A");
  Machine.clwb m ~addr:0 ~size:1;
  Machine.sfence m;
  Alcotest.(check (float 0.001)) "single state" 1.0 (Machine.crash_state_count m);
  ignore
    (Machine.iter_crash_states m (fun img ->
         Alcotest.(check char) "the persisted value" 'A' (Bytes.get img 0)))

let test_of_image_round_trip () =
  let m = mk () in
  Machine.store m ~addr:10 (Bytes.of_string "abc");
  Machine.persist_all m;
  let booted = Machine.of_image (Machine.media_image m) in
  Alcotest.(check string) "recovered bytes" "abc" (Bytes.to_string (Machine.load booted ~addr:10 ~len:3))

let test_dfence_drains_everything () =
  let m = mk () in
  Machine.store m ~addr:0 (Bytes.of_string "A");
  Machine.store m ~addr:64 (Bytes.of_string "B");
  Machine.dfence m;
  Alcotest.(check int) "clean" 0 (Machine.dirty_line_count m);
  Alcotest.(check char) "A durable" 'A' (Bytes.get (Machine.media_image m) 0);
  Alcotest.(check char) "B durable" 'B' (Bytes.get (Machine.media_image m) 64)

let test_bounds_check () =
  let m = mk ~size:128 () in
  Alcotest.check_raises "store past end"
    (Invalid_argument "Machine.store: range [0x7f,+4) outside device of 128 bytes") (fun () ->
      Machine.store m ~addr:127 (Bytes.of_string "abcd"))

let test_access_scalars () =
  let m = mk ~track:false () in
  Access.set_i64 m 8 0x1122334455667788L;
  Alcotest.(check int64) "i64 round trip" 0x1122334455667788L (Access.get_i64 m 8);
  Access.set_u8 m 3 200;
  Alcotest.(check int) "u8 round trip" 200 (Access.get_u8 m 3);
  Access.set_string m 100 ~len:16 "short";
  Alcotest.(check string) "string trimmed" "short" (Access.get_string m 100 16)

(* Property: after clwb+sfence of every dirty line, exactly one crash
   state exists and it equals the volatile image. *)
let prop_full_persist_single_state =
  QCheck2.Test.make ~name:"persist-all collapses the crash-state space" ~count:100
    QCheck2.Gen.(list_size (int_range 1 20) (pair (int_range 0 60) (int_range 1 4)))
    (fun writes ->
      let m = mk ~size:(16 * 64) () in
      List.iter
        (fun (off, len) -> Machine.store m ~addr:(off * 8) (Bytes.make len 'Z'))
        writes;
      Machine.clwb m ~addr:0 ~size:(16 * 64);
      Machine.sfence m;
      Machine.crash_state_count m = 1.0
      && Bytes.equal (Machine.media_image m) (Machine.volatile_image m))

let () =
  Alcotest.run "machine"
    [
      ( "basics",
        [
          Alcotest.test_case "store/load volatile" `Quick test_store_load;
          Alcotest.test_case "store alone is not durable" `Quick test_store_not_durable;
          Alcotest.test_case "clwb+sfence persists" `Quick test_clwb_fence_durable;
          Alcotest.test_case "clwb snapshots at issue time" `Quick
            test_clwb_snapshot_excludes_later_store;
          Alcotest.test_case "fence without clwb persists nothing" `Quick
            test_fence_without_clwb_persists_nothing;
          Alcotest.test_case "dfence drains everything" `Quick test_dfence_drains_everything;
          Alcotest.test_case "bounds are checked" `Quick test_bounds_check;
          Alcotest.test_case "typed accessors" `Quick test_access_scalars;
          Alcotest.test_case "boot from image" `Quick test_of_image_round_trip;
        ] );
      ( "crash-states",
        [
          Alcotest.test_case "versions of one line" `Quick test_crash_states_single_line;
          Alcotest.test_case "independent lines multiply" `Quick test_crash_states_two_lines_product;
          Alcotest.test_case "enumeration limit" `Quick test_crash_state_limit;
          Alcotest.test_case "sampling stays in the reachable set" `Quick
            test_sample_crash_state_valid;
          Alcotest.test_case "persisted line is deterministic" `Quick
            test_persisted_line_has_no_choice;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_full_persist_single_state ] );
    ]
