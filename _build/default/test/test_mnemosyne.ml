(* Mnemosyne region (redo-log durable transactions) and the persistent
   map on top. *)

open Pmtest_util
module Region = Pmtest_mnemosyne.Region
module Pmap = Pmtest_mnemosyne.Pmap
module Machine = Pmtest_pmem.Machine
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest
module Sink = Pmtest_trace.Sink

let test_tx_commit_durable () =
  let r = Region.create ~size:(1 lsl 20) ~sink:Sink.null () in
  let off = Region.alloc r 8 in
  Region.tx r (fun () -> Region.store_i64 r ~off 77L);
  Alcotest.(check int64) "volatile sees it" 77L (Region.load_i64 r ~off);
  let booted = Machine.of_image (Machine.media_image (Region.machine r)) in
  Alcotest.(check int64) "durable after commit" 77L (Pmtest_pmem.Access.get_i64 booted off)

let test_tx_read_your_writes () =
  let r = Region.create ~size:(1 lsl 20) ~sink:Sink.null () in
  let off = Region.alloc r 8 in
  Region.tx r (fun () ->
      Region.store_i64 r ~off 5L;
      Alcotest.(check int64) "buffered read" 5L (Region.load_i64 r ~off))

let test_tx_abort_discards () =
  let r = Region.create ~size:(1 lsl 20) ~sink:Sink.null () in
  let off = Region.alloc r 8 in
  Region.tx r (fun () -> Region.store_i64 r ~off 1L);
  (try Region.tx r (fun () -> Region.store_i64 r ~off 9L; failwith "boom")
   with Failure _ -> ());
  Alcotest.(check int64) "abort discarded buffered writes" 1L (Region.load_i64 r ~off)

let test_fault_loses_data_after_crash () =
  (* With the apply-writeback fault the committed value never reaches the
     media before the log is truncated: a crash silently loses it. This
     is the ground truth behind the Not_persisted diagnostic. *)
  let r = Region.create ~size:(1 lsl 20) ~sink:Sink.null () in
  Region.set_fault r (Some Region.Skip_apply_writeback);
  let off = Region.alloc r 8 in
  Region.tx r (fun () -> Region.store_i64 r ~off 42L);
  let booted = Machine.of_image (Machine.media_image (Region.machine r)) in
  let r2 = Region.of_machine ~machine:booted ~sink:Sink.null in
  Alcotest.(check bool) "committed value lost after crash" true
    (Region.load_i64 r2 ~off <> 42L)

let test_recovery_via_marker () =
  (* Drive the protocol by hand to freeze the crash window: log + marker
     durable, apply missing entirely. *)
  let r = Region.create ~size:(1 lsl 20) ~sink:Sink.null () in
  let off = Region.alloc r 8 in
  let m = Region.machine r in
  (* Forge a committed log record: target [off] := 99. *)
  Pmtest_pmem.Access.set_i64 m 0x40 (Int64.of_int off);
  Pmtest_pmem.Access.set_i64 m 0x48 8L;
  Pmtest_pmem.Access.set_i64 m 0x50 99L;
  Pmtest_pmem.Access.set_i64 m 16 1L (* marker: 1 record *);
  Machine.persist_all m;
  let booted = Machine.of_image (Machine.media_image m) in
  let r2 = Region.of_machine ~machine:booted ~sink:Sink.null in
  Alcotest.(check int) "one word replayed" 1 (Region.recovered_words r2);
  Alcotest.(check int64) "update applied by recovery" 99L (Region.load_i64 r2 ~off)

let test_clean_commit_passes_pmtest () =
  let session = Pmtest.init ~workers:0 () in
  let r = Region.create ~sink:(Pmtest.sink session) () in
  let off = Region.alloc r 16 in
  Region.tx_checker_start r;
  Region.tx r (fun () ->
      Region.store_i64 r ~off 1L;
      Region.store_i64 r ~off:(off + 8) 2L);
  Region.tx_checker_end r;
  Pmtest.send_trace session;
  let report = Pmtest.finish session in
  if not (Report.is_clean report) then Alcotest.failf "expected clean: %s" (Report.to_string report)

let run_with_fault fault =
  let session = Pmtest.init ~workers:0 () in
  let r = Region.create ~sink:(Pmtest.sink session) () in
  Region.set_fault r fault;
  let off = Region.alloc r 16 in
  Region.tx_checker_start r;
  Region.tx r (fun () -> Region.store_i64 r ~off 1L);
  Region.tx_checker_end r;
  Pmtest.send_trace session;
  Pmtest.finish session

let test_faults_detected () =
  let expect name kind fault =
    let report = run_with_fault (Some fault) in
    if Report.count kind report = 0 then
      Alcotest.failf "%s: expected %s, got %s" name (Report.kind_string kind)
        (Report.to_string report)
  in
  Alcotest.(check bool) "clean without fault" true (Report.is_clean (run_with_fault None));
  expect "skip log flush" Report.Not_persisted Region.Skip_log_flush;
  expect "skip commit fence" Report.Not_ordered Region.Skip_commit_fence;
  expect "skip apply writeback" Report.Not_persisted Region.Skip_apply_writeback;
  expect "unlogged store" Report.Incomplete_tx Region.Skip_log_record

(* --- Pmap ------------------------------------------------------------------- *)

let test_pmap_round_trip () =
  let r = Region.create ~sink:Sink.null () in
  let m = Pmap.create ~buckets:32 ~value_cap:32 r in
  let reference = Hashtbl.create 32 in
  let rng = Rng.create 5 in
  for i = 0 to 199 do
    let key = Int64.of_int (Rng.int rng 50) in
    let v = Printf.sprintf "val%d" i in
    Pmap.set m ~key ~value:v;
    Hashtbl.replace reference key v
  done;
  Alcotest.(check int) "cardinal" (Hashtbl.length reference) (Pmap.cardinal m);
  Hashtbl.iter
    (fun key v ->
      match Pmap.get m ~key with
      | Some got when got = v -> ()
      | Some got -> Alcotest.failf "key %Ld: %s <> %s" key got v
      | None -> Alcotest.failf "key %Ld missing" key)
    reference;
  (match Pmap.check_consistent m with Ok () -> () | Error e -> Alcotest.fail e);
  (* Removal *)
  let some_key = Int64.of_int 1 in
  if Hashtbl.mem reference some_key then begin
    Alcotest.(check bool) "removed" true (Pmap.remove m ~key:some_key);
    Alcotest.(check (option string)) "gone" None (Pmap.get m ~key:some_key)
  end

let test_pmap_value_cap () =
  let r = Region.create ~sink:Sink.null () in
  let m = Pmap.create ~value_cap:8 r in
  Alcotest.check_raises "oversized value" (Invalid_argument "Pmap.set: value exceeds capacity")
    (fun () -> Pmap.set m ~key:1L ~value:"way too long for cap")

let test_pmap_clean_under_pmtest () =
  let session = Pmtest.init ~workers:0 () in
  let r = Region.create ~sink:(Pmtest.sink session) () in
  let m = Pmap.create ~buckets:16 r in
  for i = 0 to 19 do
    Pmap.set m ~key:(Int64.of_int i) ~value:"x";
    Pmtest.send_trace session
  done;
  let report = Pmtest.finish session in
  if not (Report.is_clean report) then Alcotest.failf "expected clean: %s" (Report.to_string report)

let () =
  Alcotest.run "mnemosyne"
    [
      ( "region",
        [
          Alcotest.test_case "commit is durable" `Quick test_tx_commit_durable;
          Alcotest.test_case "read-your-writes in tx" `Quick test_tx_read_your_writes;
          Alcotest.test_case "abort discards buffered writes" `Quick test_tx_abort_discards;
          Alcotest.test_case "recovery replays a committed log" `Quick test_recovery_via_marker;
          Alcotest.test_case "apply-writeback fault loses data" `Quick
            test_fault_loses_data_after_crash;
        ] );
      ( "pmtest-integration",
        [
          Alcotest.test_case "clean commit passes" `Quick test_clean_commit_passes_pmtest;
          Alcotest.test_case "all faults detected" `Quick test_faults_detected;
        ] );
      ( "pmap",
        [
          Alcotest.test_case "round trip" `Quick test_pmap_round_trip;
          Alcotest.test_case "value capacity enforced" `Quick test_pmap_value_cap;
          Alcotest.test_case "clean under PMTest" `Quick test_pmap_clean_under_pmtest;
        ] );
    ]
