(* The checking engine against the paper's worked examples (Fig. 3, 4, 7)
   and each update/checking rule of §4.4, §5.1 and §5.2. *)

open Pmtest_model
open Pmtest_trace
module Engine = Pmtest_core.Engine
module Report = Pmtest_core.Report

let e kind = Event.make kind
let w addr size = e (Event.Op (Model.Write { addr; size }))
let clwb addr size = e (Event.Op (Model.Clwb { addr; size }))
let sfence = e (Event.Op Model.Sfence)
let ofence = e (Event.Op Model.Ofence)
let dfence = e (Event.Op Model.Dfence)
let is_persist addr size = e (Event.Checker (Event.Is_persist { addr; size }))

let obefore a_addr a_size b_addr b_size =
  e (Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }))

let tx k = e (Event.Tx k)
let tx_add addr size = e (Event.Tx (Event.Tx_add { addr; size }))

let check ?model entries = Engine.check ?model (Array.of_list entries)

let kinds report = List.map (fun d -> d.Report.kind) report.Report.diagnostics

let check_kinds ?model entries expected =
  Alcotest.(check (list string))
    "diagnostic kinds"
    (List.map Report.kind_string expected)
    (List.map Report.kind_string (kinds (check ?model entries)))

(* --- Fig. 7: the paper's worked example --------------------------------- *)

let test_fig7 () =
  (* write(0x10,64); clwb(0x10,64); sfence; write(0x50,64);
     isPersist(0x50,64)          -> FAIL (persist interval (1,inf))
     isOrderedBefore(0x10,0x50)  -> pass ((0,1) vs (1,inf) do not overlap) *)
  let trace =
    [
      w 0x10 64; clwb 0x10 64; sfence; w 0x50 64;
      is_persist 0x50 64;
      obefore 0x10 64 0x50 64;
    ]
  in
  check_kinds trace [ Report.Not_persisted ];
  (* And the shadow state matches the figure's interval table. *)
  let _, snap = Engine.check_with_snapshot (Array.of_list trace) in
  Alcotest.(check int) "timestamp after one sfence" 1 snap.Engine.timestamp;
  List.iter
    (fun r ->
      let open Engine in
      if r.lo = 0x10 then
        Alcotest.(check string) "0x10 interval" "(0,1)" (Format.asprintf "%a" Interval.pp r.persist)
      else if r.lo = 0x50 then
        Alcotest.(check string) "0x50 interval" "(1,inf)" (Format.asprintf "%a" Interval.pp r.persist))
    snap.Engine.ranges

(* --- Fig. 4: overlap means unordered ------------------------------------ *)

let test_fig4 () =
  (* sfence; write A; clwb A; write B; sfence;
     isOrderedBefore A B -> FAIL (A=(1,2), B=(1,inf) overlap)
     isPersist B         -> FAIL *)
  let trace =
    [
      sfence; w 0x100 8; clwb 0x100 8; w 0x200 8; sfence;
      obefore 0x100 8 0x200 8;
      is_persist 0x200 8;
    ]
  in
  check_kinds trace [ Report.Not_ordered; Report.Not_persisted ]

let test_fig3_x86_correct () =
  (* write A; clwb A; sfence; write B; clwb B; sfence; both checkers pass. *)
  let trace =
    [
      w 0x100 8; clwb 0x100 8; sfence;
      w 0x200 8; clwb 0x200 8; sfence;
      obefore 0x100 8 0x200 8;
      is_persist 0x100 8;
      is_persist 0x200 8;
    ]
  in
  check_kinds trace []

let test_fig3_hops_correct () =
  (* write A; ofence; write B; dfence: ordering from ofence, durability
     from dfence (paper Fig. 3b). *)
  let trace =
    [
      w 0x100 8; ofence; w 0x200 8; dfence;
      obefore 0x100 8 0x200 8;
      is_persist 0x100 8;
      is_persist 0x200 8;
    ]
  in
  check_kinds ~model:Model.Hops trace []

let test_hops_ofence_orders_without_durability () =
  let trace =
    [
      w 0x100 8; ofence; w 0x200 8;
      obefore 0x100 8 0x200 8; (* pass: ofence separates the epochs *)
      is_persist 0x100 8; (* FAIL: no dfence yet *)
    ]
  in
  check_kinds ~model:Model.Hops trace [ Report.Not_persisted ]

let test_hops_same_epoch_unordered () =
  let trace = [ w 0x100 8; w 0x200 8; dfence; obefore 0x100 8 0x200 8 ] in
  check_kinds ~model:Model.Hops trace [ Report.Not_ordered ]

(* --- x86 rule details ---------------------------------------------------- *)

let test_write_clears_flush () =
  (* write; clwb; write again; sfence: the second write is NOT covered by
     the earlier clwb, so isPersist must fail. *)
  let trace = [ w 0x100 8; clwb 0x100 8; w 0x100 8; sfence; is_persist 0x100 8 ] in
  check_kinds trace [ Report.Not_persisted ]

let test_clwb_without_fence_not_durable () =
  let trace = [ w 0x100 8; clwb 0x100 8; is_persist 0x100 8 ] in
  check_kinds trace [ Report.Not_persisted ]

let test_partial_flush_fails () =
  (* Only half the range is written back. *)
  let trace = [ w 0x100 16; clwb 0x100 8; sfence; is_persist 0x100 16 ] in
  check_kinds trace [ Report.Not_persisted ]

let test_unwritten_range_passes () =
  check_kinds [ is_persist 0x500 8 ] [];
  check_kinds [ obefore 0x500 8 0x600 8 ] []

let test_later_clwb_closes_at_its_fence () =
  (* write in epoch 0; fence; clwb in epoch 1; fence -> interval (0,2). *)
  let trace = [ w 0x100 8; sfence; clwb 0x100 8; sfence; is_persist 0x100 8 ] in
  check_kinds trace [];
  let _, snap =
    Engine.check_with_snapshot (Array.of_list [ w 0x100 8; sfence; clwb 0x100 8; sfence ])
  in
  match snap.Engine.ranges with
  | [ r ] -> Alcotest.(check string) "interval" "(0,2)" (Format.asprintf "%a" Interval.pp r.Engine.persist)
  | _ -> Alcotest.fail "expected a single shadow range"

(* --- eADR rules (extension: persistent caches) --------------------------- *)

let test_eadr_stores_immediately_durable () =
  check_kinds ~model:Model.Eadr [ w 0x100 8; is_persist 0x100 8 ] []

let test_eadr_program_order_is_persist_order () =
  check_kinds ~model:Model.Eadr [ w 0x100 8; w 0x200 8; obefore 0x100 8 0x200 8 ] [];
  check_kinds ~model:Model.Eadr [ w 0x200 8; w 0x100 8; obefore 0x100 8 0x200 8 ]
    [ Report.Not_ordered ]

let test_eadr_flags_redundant_writebacks () =
  (* Legacy clwb/sfence code running on an eADR platform: every clwb is
     wasted work. *)
  check_kinds ~model:Model.Eadr
    [ w 0x100 8; clwb 0x100 8; sfence ]
    [ Report.Unnecessary_writeback ]

let test_eadr_tx_scope_passes_without_flushes () =
  let trace =
    [
      tx Event.Tx_checker_start;
      tx Event.Tx_begin;
      tx_add 0x100 8;
      w 0x100 8;
      tx Event.Tx_commit;
      tx Event.Tx_checker_end;
    ]
  in
  check_kinds ~model:Model.Eadr trace []

(* --- Performance checkers (§5.1.2) -------------------------------------- *)

let test_unnecessary_writeback () =
  check_kinds [ clwb 0x100 8; sfence ] [ Report.Unnecessary_writeback ]

let test_duplicate_writeback () =
  check_kinds
    [ w 0x100 8; clwb 0x100 8; clwb 0x100 8; sfence ]
    [ Report.Duplicate_writeback ]

let test_duplicate_writeback_after_fence () =
  (* Flushing again after the data already persisted is still redundant. *)
  check_kinds
    [ w 0x100 8; clwb 0x100 8; sfence; clwb 0x100 8; sfence ]
    [ Report.Duplicate_writeback ]

let test_flush_then_write_then_flush_ok () =
  (* A new write invalidates the old flush: the second clwb is needed. *)
  check_kinds [ w 0x100 8; clwb 0x100 8; sfence; w 0x100 8; clwb 0x100 8; sfence ] []

(* --- Transaction checkers (§5.1.1) --------------------------------------- *)

let test_tx_clean () =
  let trace =
    [
      tx Event.Tx_checker_start;
      tx Event.Tx_begin;
      tx_add 0x100 8;
      w 0x100 8;
      tx Event.Tx_commit;
      clwb 0x100 8; sfence;
      tx Event.Tx_checker_end;
    ]
  in
  check_kinds trace []

let test_tx_missing_log () =
  let trace =
    [
      tx Event.Tx_checker_start;
      tx Event.Tx_begin;
      w 0x100 8; (* no tx_add *)
      tx Event.Tx_commit;
      clwb 0x100 8; sfence;
      tx Event.Tx_checker_end;
    ]
  in
  check_kinds trace [ Report.Missing_log ]

let test_tx_incomplete_not_persisted () =
  let trace =
    [
      tx Event.Tx_checker_start;
      tx Event.Tx_begin;
      tx_add 0x100 8;
      w 0x100 8;
      tx Event.Tx_commit;
      (* no writeback at commit *)
      tx Event.Tx_checker_end;
    ]
  in
  check_kinds trace [ Report.Incomplete_tx ]

let test_tx_never_terminated () =
  let trace =
    [
      tx Event.Tx_checker_start;
      tx Event.Tx_begin;
      tx_add 0x100 8;
      w 0x100 8;
      clwb 0x100 8; sfence;
      tx Event.Tx_checker_end;
    ]
  in
  check_kinds trace [ Report.Incomplete_tx ]

let test_tx_duplicate_log () =
  let trace =
    [
      tx Event.Tx_begin;
      tx_add 0x100 8;
      tx_add 0x100 8;
      w 0x100 8;
      tx Event.Tx_commit;
    ]
  in
  check_kinds trace [ Report.Duplicate_log ]

let test_tx_partial_log_is_missing () =
  let trace =
    [
      tx Event.Tx_checker_start;
      tx Event.Tx_begin;
      tx_add 0x100 8;
      w 0x100 16; (* only half backed up *)
      tx Event.Tx_commit;
      clwb 0x100 16; sfence;
      tx Event.Tx_checker_end;
    ]
  in
  check_kinds trace [ Report.Missing_log ]

let test_nested_tx_inner_end_not_durable () =
  (* §7.1: updates are only guaranteed durable at the OUTERMOST commit, so
     a checker scope around the inner transaction fails. *)
  let inner_scope =
    [
      tx Event.Tx_begin;
      tx Event.Tx_checker_start;
      tx Event.Tx_begin;
      tx_add 0x100 8;
      w 0x100 8;
      tx Event.Tx_commit; (* inner end: nothing flushed *)
      tx Event.Tx_checker_end;
      tx Event.Tx_commit;
      clwb 0x100 8; sfence;
    ]
  in
  Alcotest.(check bool) "inner scope reports" true (Report.has_fail (check inner_scope));
  let outer_scope =
    [
      tx Event.Tx_checker_start;
      tx Event.Tx_begin;
      tx Event.Tx_begin;
      tx_add 0x100 8;
      w 0x100 8;
      tx Event.Tx_commit;
      tx Event.Tx_commit;
      clwb 0x100 8; sfence;
      tx Event.Tx_checker_end;
    ]
  in
  check_kinds outer_scope []

(* --- Exclusion (Table 2) -------------------------------------------------- *)

let test_exclusion () =
  let excl addr size = e (Event.Control (Event.Exclude { addr; size })) in
  let incl addr size = e (Event.Control (Event.Include { addr; size })) in
  (* Excluded writes are invisible to checkers. *)
  check_kinds [ excl 0x100 8; w 0x100 8; is_persist 0x100 8 ] [];
  (* Include restores tracking. *)
  check_kinds [ excl 0x100 8; incl 0x100 8; w 0x100 8; is_persist 0x100 8 ]
    [ Report.Not_persisted ]

let test_exclusion_scopes_tx_checker () =
  let excl addr size = e (Event.Control (Event.Exclude { addr; size })) in
  let trace =
    [
      excl 0x200 8;
      tx Event.Tx_checker_start;
      tx Event.Tx_begin;
      tx_add 0x100 8;
      w 0x100 8;
      w 0x200 8; (* excluded: no missing-log, no persistence obligation *)
      tx Event.Tx_commit;
      clwb 0x100 8; sfence;
      tx Event.Tx_checker_end;
    ]
  in
  check_kinds trace []

(* --- Model mismatch -------------------------------------------------------- *)

let test_invalid_op () =
  check_kinds ~model:Model.Hops [ w 0x100 8; clwb 0x100 8; sfence ]
    [ Report.Invalid_op; Report.Invalid_op ];
  check_kinds ~model:Model.X86 [ w 0x100 8; ofence ] [ Report.Invalid_op ]

(* --- Report bookkeeping --------------------------------------------------- *)

let test_report_counts () =
  let r = check [ w 0x100 8; clwb 0x100 8; sfence; is_persist 0x100 8 ] in
  Alcotest.(check int) "entries" 4 r.Report.entries;
  Alcotest.(check int) "ops" 3 r.Report.ops;
  Alcotest.(check int) "checkers" 1 r.Report.checkers;
  Alcotest.(check bool) "clean" true (Report.is_clean r)

let string_contains haystack needle =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

let test_report_summarize () =
  (* Repeated diagnostics at one site collapse into one summary row. *)
  let entries =
    Array.concat
      (List.init 50 (fun _ ->
           [| w 0x100 8; e (Event.Checker (Event.Is_persist { addr = 0x100; size = 8 })) |]))
  in
  let r = Engine.check entries in
  Alcotest.(check int) "50 diagnostics" 50 (List.length r.Report.diagnostics);
  (match Report.summarize r with
  | [ (Report.Not_persisted, _, _, 50) ] -> ()
  | other -> Alcotest.failf "unexpected summary with %d groups" (List.length other));
  let s = Format.asprintf "%a" Report.pp_summary r in
  Alcotest.(check bool) "count printed" true (string_contains s "(x50)")

let test_report_merge () =
  let a = check [ w 0x100 8; is_persist 0x100 8 ] in
  let b = check [ w 0x200 8; clwb 0x200 8; sfence ] in
  let m = Report.merge a b in
  Alcotest.(check int) "entries add" (a.Report.entries + b.Report.entries) m.Report.entries;
  Alcotest.(check int) "one fail" 1 (List.length (Report.fails m))

let () =
  Alcotest.run "engine"
    [
      ( "paper-figures",
        [
          Alcotest.test_case "Fig. 7 worked example" `Quick test_fig7;
          Alcotest.test_case "Fig. 4 overlap example" `Quick test_fig4;
          Alcotest.test_case "Fig. 3a x86 correct trace" `Quick test_fig3_x86_correct;
          Alcotest.test_case "Fig. 3b HOPS correct trace" `Quick test_fig3_hops_correct;
        ] );
      ( "x86-rules",
        [
          Alcotest.test_case "write invalidates pending flush" `Quick test_write_clears_flush;
          Alcotest.test_case "clwb without fence is not durable" `Quick
            test_clwb_without_fence_not_durable;
          Alcotest.test_case "partial flush fails isPersist" `Quick test_partial_flush_fails;
          Alcotest.test_case "unwritten ranges pass vacuously" `Quick test_unwritten_range_passes;
          Alcotest.test_case "late clwb closes at its own fence" `Quick
            test_later_clwb_closes_at_its_fence;
        ] );
      ( "eadr-rules",
        [
          Alcotest.test_case "stores immediately durable" `Quick
            test_eadr_stores_immediately_durable;
          Alcotest.test_case "program order is persist order" `Quick
            test_eadr_program_order_is_persist_order;
          Alcotest.test_case "legacy writebacks flagged" `Quick
            test_eadr_flags_redundant_writebacks;
          Alcotest.test_case "transactions need no flushes" `Quick
            test_eadr_tx_scope_passes_without_flushes;
        ] );
      ( "hops-rules",
        [
          Alcotest.test_case "ofence orders without durability" `Quick
            test_hops_ofence_orders_without_durability;
          Alcotest.test_case "same epoch writes unordered" `Quick test_hops_same_epoch_unordered;
        ] );
      ( "performance-checkers",
        [
          Alcotest.test_case "unnecessary writeback" `Quick test_unnecessary_writeback;
          Alcotest.test_case "duplicate writeback" `Quick test_duplicate_writeback;
          Alcotest.test_case "duplicate writeback after fence" `Quick
            test_duplicate_writeback_after_fence;
          Alcotest.test_case "rewrite then flush is fine" `Quick test_flush_then_write_then_flush_ok;
        ] );
      ( "tx-checkers",
        [
          Alcotest.test_case "clean transaction" `Quick test_tx_clean;
          Alcotest.test_case "missing undo log" `Quick test_tx_missing_log;
          Alcotest.test_case "updates not persisted at end" `Quick test_tx_incomplete_not_persisted;
          Alcotest.test_case "transaction never terminated" `Quick test_tx_never_terminated;
          Alcotest.test_case "duplicate log entry" `Quick test_tx_duplicate_log;
          Alcotest.test_case "partially logged write is missing" `Quick
            test_tx_partial_log_is_missing;
          Alcotest.test_case "nested tx durable only at outermost end" `Quick
            test_nested_tx_inner_end_not_durable;
        ] );
      ( "controls",
        [
          Alcotest.test_case "exclude/include" `Quick test_exclusion;
          Alcotest.test_case "exclusion scopes the tx checker" `Quick
            test_exclusion_scopes_tx_checker;
        ] );
      ( "misc",
        [
          Alcotest.test_case "ops outside the model fail" `Quick test_invalid_op;
          Alcotest.test_case "report counters" `Quick test_report_counts;
          Alcotest.test_case "report merge" `Quick test_report_merge;
          Alcotest.test_case "report summary groups by site" `Quick test_report_summarize;
        ] );
    ]
