(* Custom low-level CCS applications (persistent queue and append log):
   functional behaviour, recovery, PMTest detection of their seeded bugs,
   and crash-injection ground truth. *)

module Pqueue = Pmtest_apps.Pqueue
module Plog = Pmtest_apps.Plog
module Crashtest = Pmtest_crashtest.Crashtest
module Machine = Pmtest_pmem.Machine
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest
module Sink = Pmtest_trace.Sink

(* --- Queue ---------------------------------------------------------------- *)

let test_queue_fifo () =
  let q = Pqueue.create ~sink:Sink.null () in
  List.iter (Pqueue.enqueue q) [ 1L; 2L; 3L ];
  Alcotest.(check int) "length" 3 (Pqueue.length q);
  Alcotest.(check (option int64)) "peek" (Some 1L) (Pqueue.peek q);
  Alcotest.(check (option int64)) "deq 1" (Some 1L) (Pqueue.dequeue q);
  Pqueue.enqueue q 4L;
  Alcotest.(check (option int64)) "deq 2" (Some 2L) (Pqueue.dequeue q);
  Alcotest.(check (option int64)) "deq 3" (Some 3L) (Pqueue.dequeue q);
  Alcotest.(check (option int64)) "deq 4" (Some 4L) (Pqueue.dequeue q);
  Alcotest.(check (option int64)) "empty" None (Pqueue.dequeue q);
  match Pqueue.check_consistent q with Ok () -> () | Error e -> Alcotest.fail e

let test_queue_recovery () =
  let q = Pqueue.create ~sink:Sink.null () in
  List.iter (Pqueue.enqueue q) [ 10L; 20L; 30L ];
  ignore (Pqueue.dequeue q);
  Machine.persist_all (Pqueue.machine q);
  let booted = Machine.of_image (Machine.media_image (Pqueue.machine q)) in
  let q2 = Pqueue.of_machine ~machine:booted ~sink:Sink.null in
  Alcotest.(check (list int64)) "survivors in order" [ 20L; 30L ] (Pqueue.to_list q2);
  Alcotest.(check int) "length rebuilt" 2 (Pqueue.length q2);
  (* The rebuilt tail is live: appends keep working. *)
  Pqueue.enqueue q2 40L;
  Alcotest.(check (list int64)) "append after recovery" [ 20L; 30L; 40L ] (Pqueue.to_list q2)

let run_queue_under_pmtest bug n =
  let session = Pmtest.init ~workers:0 () in
  let q = Pqueue.create ~sink:(Pmtest.sink session) () in
  Pqueue.set_bug q bug;
  for i = 0 to n - 1 do
    Pqueue.enqueue q (Int64.of_int i);
    if i mod 2 = 1 then ignore (Pqueue.dequeue q);
    Pmtest.send_trace session
  done;
  Pmtest.finish session

let test_queue_pmtest () =
  let clean = run_queue_under_pmtest None 8 in
  if not (Report.is_clean clean) then Alcotest.failf "expected clean: %s" (Report.to_string clean);
  let expect name kind bug =
    let r = run_queue_under_pmtest (Some bug) 6 in
    if Report.count kind r = 0 then
      Alcotest.failf "%s: expected %s, got %s" name (Report.kind_string kind) (Report.to_string r)
  in
  expect "node not persisted before link" Report.Not_ordered Pqueue.Skip_node_persist;
  expect "link never persisted" Report.Not_persisted Pqueue.Skip_link_persist;
  expect "dequeue head not persisted" Report.Not_persisted Pqueue.Skip_head_persist_on_dequeue

let test_queue_crashtest () =
  (* Clean queue survives op-granular crash injection. A crash *inside*
     an operation may land before or after its linearization point, so
     the recovered contents must equal the committed history either
     without or with the in-flight operation applied. *)
  let expected = ref [] in
  let pending = ref None in
  let target = ref Sink.null in
  let sink = { Sink.emit = (fun k l -> !target.Sink.emit k l) } in
  let q = Pqueue.create ~track_versions:true ~sink () in
  let apply_pending l =
    match !pending with
    | None -> None
    | Some (`Enq v) -> Some (l @ [ v ])
    | Some `Deq -> ( match l with [] -> None | _ :: tl -> Some tl)
  in
  let recover image =
    let booted = Machine.of_image image in
    let q2 = Pqueue.of_machine ~machine:booted ~sink:Sink.null in
    match Pqueue.check_consistent q2 with
    | Error e -> Error e
    | Ok () ->
      let got = Pqueue.to_list q2 in
      if got = !expected || apply_pending !expected = Some got then Ok ()
      else Error "committed contents differ"
  in
  let config =
    { Crashtest.default_config with Crashtest.samples_per_point = 6; exhaustive_limit = 32 }
  in
  let live, crash_sink = Crashtest.attach ~config ~machine:(Pqueue.machine q) ~recover () in
  target := crash_sink;
  for i = 0 to 9 do
    pending := Some (`Enq (Int64.of_int i));
    Pqueue.enqueue q (Int64.of_int i);
    expected := !expected @ [ Int64.of_int i ];
    pending := None;
    if i mod 3 = 2 then begin
      pending := Some `Deq;
      ignore (Pqueue.dequeue q);
      expected := List.tl !expected;
      pending := None
    end
  done;
  let v = Crashtest.live_verdict live in
  if not (Crashtest.survived v) then
    Alcotest.failf "correct queue failed crash testing: %a" Crashtest.pp_verdict v

let test_queue_bug_breaks_crashtest () =
  let target = ref Sink.null in
  let sink = { Sink.emit = (fun k l -> !target.Sink.emit k l) } in
  let q = Pqueue.create ~track_versions:true ~sink () in
  Pqueue.set_bug q (Some Pqueue.Skip_node_persist);
  let recover image =
    let booted = Machine.of_image image in
    let q2 = Pqueue.of_machine ~machine:booted ~sink:Sink.null in
    match Pqueue.check_consistent q2 with
    | Error e -> Error e
    | Ok () ->
      (* Linked nodes must hold their committed values: an unpersisted
         node exposed through a persisted link reads as zero. *)
      if List.for_all (fun v -> v > 0L) (Pqueue.to_list q2) then Ok ()
      else Error "dangling link exposes an unwritten node"
  in
  let config =
    { Crashtest.default_config with Crashtest.samples_per_point = 8; exhaustive_limit = 48 }
  in
  let live, crash_sink = Crashtest.attach ~config ~machine:(Pqueue.machine q) ~recover () in
  target := crash_sink;
  for i = 1 to 8 do
    Pqueue.enqueue q (Int64.of_int i)
  done;
  let v = Crashtest.live_verdict live in
  Alcotest.(check bool)
    (Format.asprintf "expected a violation, got %a" Crashtest.pp_verdict v)
    false (Crashtest.survived v)

(* --- Log ------------------------------------------------------------------- *)

let test_log_round_trip () =
  let l = Plog.create ~sink:Sink.null () in
  List.iter (Plog.append l) [ "alpha"; ""; "a much longer record with more than one line's worth" ];
  Alcotest.(check (list string)) "records"
    [ "alpha"; ""; "a much longer record with more than one line's worth" ]
    (Plog.records l);
  match Plog.check_consistent l with Ok () -> () | Error e -> Alcotest.fail e

let test_log_recovery_truncates_cleanly () =
  let l = Plog.create ~track_versions:true ~sink:Sink.null () in
  Plog.append l "committed-1";
  Plog.append l "committed-2";
  let booted = Machine.of_image (Machine.media_image (Plog.machine l)) in
  let l2 = Plog.of_machine ~machine:booted ~sink:Sink.null in
  (match Plog.check_consistent l2 with Ok () -> () | Error e -> Alcotest.fail e);
  Alcotest.(check (list string)) "committed records survive" [ "committed-1"; "committed-2" ]
    (Plog.records l2)

let run_log_under_pmtest bug n =
  let session = Pmtest.init ~workers:0 () in
  let l = Plog.create ~sink:(Pmtest.sink session) () in
  Plog.set_bug l bug;
  for i = 0 to n - 1 do
    Plog.append l (Printf.sprintf "record-%d" i);
    Pmtest.send_trace session
  done;
  Pmtest.finish session

let test_log_pmtest () =
  let clean = run_log_under_pmtest None 8 in
  if not (Report.is_clean clean) then Alcotest.failf "expected clean: %s" (Report.to_string clean);
  let expect name kind bug =
    let r = run_log_under_pmtest (Some bug) 6 in
    if Report.count kind r = 0 then
      Alcotest.failf "%s: expected %s, got %s" name (Report.kind_string kind) (Report.to_string r)
  in
  expect "record not persisted" Report.Not_ordered Plog.Skip_record_persist;
  expect "length never persisted" Report.Not_persisted Plog.Skip_length_persist;
  expect "length persisted before record" Report.Not_ordered Plog.Length_before_record

let test_log_bug_breaks_crashtest () =
  (* Misplaced order: the committed length can cover a frame that never
     became durable — recovery sees a checksum mismatch. *)
  let target = ref Sink.null in
  let sink = { Sink.emit = (fun k l -> !target.Sink.emit k l) } in
  let l = Plog.create ~track_versions:true ~sink () in
  Plog.set_bug l (Some Plog.Length_before_record);
  let recover image =
    let booted = Machine.of_image image in
    let l2 = Plog.of_machine ~machine:booted ~sink:Sink.null in
    Plog.check_consistent l2
  in
  let config =
    { Crashtest.default_config with Crashtest.samples_per_point = 8; exhaustive_limit = 48 }
  in
  let live, crash_sink = Crashtest.attach ~config ~machine:(Plog.machine l) ~recover () in
  target := crash_sink;
  for i = 0 to 7 do
    Plog.append l (Printf.sprintf "record-%d" i)
  done;
  let v = Crashtest.live_verdict live in
  Alcotest.(check bool)
    (Format.asprintf "expected log corruption, got %a" Crashtest.pp_verdict v)
    false (Crashtest.survived v)

let test_log_clean_survives_crashtest () =
  let committed = ref [] in
  let target = ref Sink.null in
  let sink = { Sink.emit = (fun k l -> !target.Sink.emit k l) } in
  let l = Plog.create ~track_versions:true ~sink () in
  let recover image =
    let booted = Machine.of_image image in
    let l2 = Plog.of_machine ~machine:booted ~sink:Sink.null in
    match Plog.check_consistent l2 with
    | Error e -> Error e
    | Ok () ->
      (* Committed records form a prefix-closed history: everything the
         program saw committed must be present, in order. *)
      let got = Plog.records l2 in
      let rec is_prefix xs ys =
        match (xs, ys) with
        | [], _ -> true
        | x :: xs, y :: ys when x = y -> is_prefix xs ys
        | _ -> false
      in
      if is_prefix (List.rev !committed) got then Ok ()
      else Error "a committed record is missing"
  in
  let config =
    { Crashtest.default_config with Crashtest.samples_per_point = 6; exhaustive_limit = 32 }
  in
  let live, crash_sink = Crashtest.attach ~config ~machine:(Plog.machine l) ~recover () in
  target := crash_sink;
  for i = 0 to 9 do
    let r = Printf.sprintf "r%d" i in
    Plog.append l r;
    committed := r :: !committed
  done;
  let v = Crashtest.live_verdict live in
  if not (Crashtest.survived v) then
    Alcotest.failf "correct log failed crash testing: %a" Crashtest.pp_verdict v

(* --- NV-Tree ------------------------------------------------------------------ *)

module Nvtree = Pmtest_apps.Nvtree

let test_nvtree_round_trip () =
  let m = Nvtree.create ~sink:Sink.null () in
  let reference = Hashtbl.create 64 in
  let rng = Pmtest_util.Rng.create 31 in
  for i = 0 to 499 do
    let key = Int64.of_int (Pmtest_util.Rng.int rng 80) in
    if Pmtest_util.Rng.int rng 10 < 8 then begin
      Nvtree.insert m ~key ~value:(Int64.of_int i);
      Hashtbl.replace reference key (Int64.of_int i)
    end
    else begin
      Nvtree.remove m ~key;
      Hashtbl.remove reference key
    end
  done;
  Alcotest.(check int) "cardinal" (Hashtbl.length reference) (Nvtree.cardinal m);
  Hashtbl.iter
    (fun key v ->
      match Nvtree.lookup m ~key with
      | Some got when got = v -> ()
      | Some got -> Alcotest.failf "key %Ld: %Ld <> %Ld" key got v
      | None -> Alcotest.failf "key %Ld missing" key)
    reference;
  Alcotest.(check bool) "splits happened" true (Nvtree.leaf_count m > 1);
  (* Sorted output. *)
  let keys = List.map fst (Nvtree.to_alist m) in
  Alcotest.(check bool) "sorted" true (keys = List.sort compare keys);
  match Nvtree.check_consistent m with Ok () -> () | Error e -> Alcotest.fail e

let test_nvtree_recovery_rebuilds_index () =
  let m = Nvtree.create ~track_versions:true ~sink:Sink.null () in
  for i = 0 to 99 do
    Nvtree.insert m ~key:(Int64.of_int i) ~value:(Int64.of_int (i * 10))
  done;
  Machine.persist_all (Nvtree.machine m);
  let booted = Machine.of_image (Machine.media_image (Nvtree.machine m)) in
  let m2 = Nvtree.of_machine ~machine:booted ~sink:Sink.null in
  Alcotest.(check int) "all bindings recovered" 100 (Nvtree.cardinal m2);
  Alcotest.(check (option int64)) "spot check" (Some 420L) (Nvtree.lookup m2 ~key:42L);
  (* The rebuilt volatile index routes new inserts correctly. *)
  Nvtree.insert m2 ~key:1000L ~value:1L;
  Alcotest.(check (option int64)) "post-recovery insert" (Some 1L) (Nvtree.lookup m2 ~key:1000L);
  match Nvtree.check_consistent m2 with Ok () -> () | Error e -> Alcotest.fail e

let run_nvtree_under_pmtest bug n =
  let session = Pmtest.init ~workers:0 () in
  let m = Nvtree.create ~sink:(Pmtest.sink session) () in
  Nvtree.set_bug m bug;
  for i = 0 to n - 1 do
    Nvtree.insert m ~key:(Int64.of_int i) ~value:(Int64.of_int i);
    Pmtest.send_trace session
  done;
  Pmtest.finish session

let test_nvtree_pmtest () =
  (* Enough inserts to force splits, so the split checkers run too. *)
  let clean = run_nvtree_under_pmtest None 40 in
  if not (Report.is_clean clean) then Alcotest.failf "expected clean: %s" (Report.to_string clean);
  let expect name kind bug =
    let r = run_nvtree_under_pmtest (Some bug) 20 in
    if Report.count kind r = 0 then
      Alcotest.failf "%s: expected %s, got %s" name (Report.kind_string kind) (Report.to_string r)
  in
  expect "entry not persisted before count" Report.Not_ordered Nvtree.Skip_entry_persist;
  expect "count never persisted" Report.Not_persisted Nvtree.Skip_count_persist;
  expect "split relink never persisted" Report.Not_persisted Nvtree.Skip_split_link_persist

let test_nvtree_crashtest () =
  let committed = Hashtbl.create 64 in
  let target = ref Sink.null in
  let sink = { Sink.emit = (fun k l -> !target.Sink.emit k l) } in
  let m = Nvtree.create ~track_versions:true ~sink () in
  let recover image =
    let booted = Machine.of_image image in
    let m2 = Nvtree.of_machine ~machine:booted ~sink:Sink.null in
    match Nvtree.check_consistent m2 with
    | Error e -> Error e
    | Ok () ->
      let missing =
        Hashtbl.fold
          (fun k v acc -> if acc = None && Nvtree.lookup m2 ~key:k <> Some v then Some k else acc)
          committed None
      in
      (match missing with
      | Some k -> Error (Printf.sprintf "committed key %Ld lost" k)
      | None -> Ok ())
  in
  let config =
    { Crashtest.default_config with Crashtest.samples_per_point = 6; exhaustive_limit = 32 }
  in
  let live, crash_sink = Crashtest.attach ~config ~machine:(Nvtree.machine m) ~recover () in
  target := crash_sink;
  (* Committed state is only extended after the insert returns; the
     injector tests every intermediate op against the pre-op history
     plus structural consistency. *)
  for i = 0 to 39 do
    Nvtree.insert m ~key:(Int64.of_int i) ~value:(Int64.of_int (i + 1));
    Hashtbl.replace committed (Int64.of_int i) (Int64.of_int (i + 1))
  done;
  (* Skip the final injection: the in-flight state is committed. *)
  let v = Crashtest.live_verdict live in
  if not (Crashtest.survived v) then
    Alcotest.failf "correct nvtree failed crash testing: %a" Crashtest.pp_verdict v

let () =
  Alcotest.run "apps"
    [
      ( "pqueue",
        [
          Alcotest.test_case "FIFO behaviour" `Quick test_queue_fifo;
          Alcotest.test_case "recovery rebuilds volatile state" `Quick test_queue_recovery;
          Alcotest.test_case "PMTest catches each bug switch" `Quick test_queue_pmtest;
          Alcotest.test_case "correct queue survives crash injection" `Quick test_queue_crashtest;
          Alcotest.test_case "unpersisted node breaks crash injection" `Quick
            test_queue_bug_breaks_crashtest;
        ] );
      ( "nvtree",
        [
          Alcotest.test_case "round trip with splits" `Quick test_nvtree_round_trip;
          Alcotest.test_case "recovery rebuilds the volatile index" `Quick
            test_nvtree_recovery_rebuilds_index;
          Alcotest.test_case "PMTest catches each bug switch" `Quick test_nvtree_pmtest;
          Alcotest.test_case "correct nvtree survives crash injection" `Quick
            test_nvtree_crashtest;
        ] );
      ( "plog",
        [
          Alcotest.test_case "append/read round trip" `Quick test_log_round_trip;
          Alcotest.test_case "recovery keeps committed records" `Quick
            test_log_recovery_truncates_cleanly;
          Alcotest.test_case "PMTest catches each bug switch" `Quick test_log_pmtest;
          Alcotest.test_case "correct log survives crash injection" `Quick
            test_log_clean_survives_crashtest;
          Alcotest.test_case "misplaced length breaks crash injection" `Quick
            test_log_bug_breaks_crashtest;
        ] );
    ]
