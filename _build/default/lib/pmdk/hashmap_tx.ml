(* Layout.
   Root object (24 B): [0]=nbuckets  [8]=count  [16]=buckets array offset.
   Bucket array: nbuckets slots of 8 B, each the offset of the first entry.
   Entry (32 B): [0]=key  [8]=next  [16]=val_off  [24]=val_len. *)

type t = { pool : Pool.t; root : int; nbuckets : int; buckets : int }
type bug = Skip_log_bucket | Skip_log_count | Duplicate_log | No_commit

let entry_size = 32

let pool t = t.pool
let root_off t = t.root
let bucket_count t = t.nbuckets

let hash t key =
  (* Int64.to_int truncates to 63 bits, so mask AFTER the conversion to
     keep the result non-negative. *)
  let h = Int64.to_int (Int64.mul key 0x9E3779B97F4A7C15L) land max_int in
  h mod t.nbuckets

let create ?(buckets = 1024) pool =
  let root = Pool.alloc pool 24 in
  let arr = Pool.alloc pool (8 * buckets) in
  Pool.set_root pool root;
  Pool.store_int ~line:500 pool ~off:root buckets;
  Pool.store_int ~line:501 pool ~off:(root + 8) 0;
  Pool.store_int ~line:502 pool ~off:(root + 16) arr;
  Pool.persist ~line:503 pool ~off:root ~size:24;
  { pool; root; nbuckets = buckets; buckets = arr }

let open_ pool ~root =
  let nbuckets = Pool.load_int pool ~off:root in
  let buckets = Pool.load_int pool ~off:(root + 16) in
  { pool; root; nbuckets; buckets }

let cardinal t = Pool.load_int t.pool ~off:(t.root + 8)

let bump_count ?bug t delta =
  if bug <> Some Skip_log_count then Pool.tx_add_once ~line:510 t.pool ~off:(t.root + 8) ~size:8;
  Pool.store_int ~line:511 t.pool ~off:(t.root + 8) (cardinal t + delta)

let slot_of t key = t.buckets + (8 * hash t key)
let entry_key t e = Pool.load_i64 t.pool ~off:e
let entry_next t e = Pool.load_int t.pool ~off:(e + 8)
let entry_val t e = (Pool.load_int t.pool ~off:(e + 16), Pool.load_int t.pool ~off:(e + 24))

let find_entry t key =
  let rec go e = if e = 0 then None else if entry_key t e = key then Some e else go (entry_next t e) in
  go (Pool.load_int t.pool ~off:(slot_of t key))

let insert ?bug t ~key ~value =
  Pool.tx_begin t.pool;
  (match find_entry t key with
  | Some e ->
    let old_off, old_len = entry_val t e in
    Pool.tx_add_once ~line:520 t.pool ~off:(e + 16) ~size:16;
    Pool.store_int ~line:521 t.pool ~off:(e + 16) (Value_block.write t.pool value);
    Pool.store_int ~line:522 t.pool ~off:(e + 24) (Bytes.length value);
    Value_block.free t.pool ~off:old_off ~len:old_len
  | None ->
    let slot = slot_of t key in
    let head = Pool.load_int t.pool ~off:slot in
    let e = Pool.alloc t.pool entry_size in
    Pool.store_i64 ~line:523 t.pool ~off:e key;
    Pool.store_int ~line:524 t.pool ~off:(e + 8) head;
    Pool.store_int ~line:525 t.pool ~off:(e + 16) (Value_block.write t.pool value);
    Pool.store_int ~line:526 t.pool ~off:(e + 24) (Bytes.length value);
    if bug <> Some Skip_log_bucket then Pool.tx_add_once ~line:527 t.pool ~off:slot ~size:8;
    if bug = Some Duplicate_log then Pool.tx_add ~line:528 t.pool ~off:slot ~size:8;
    Pool.store_int ~line:529 t.pool ~off:slot e;
    bump_count ?bug t 1);
  if bug = Some No_commit then () else Pool.tx_commit t.pool

let lookup t ~key =
  match find_entry t key with
  | None -> None
  | Some e ->
    let voff, vlen = entry_val t e in
    Some (Value_block.read t.pool ~off:voff ~len:vlen)

let remove t ~key =
  let slot = slot_of t key in
  let rec find_prev prev_slot e =
    if e = 0 then None
    else if entry_key t e = key then Some (prev_slot, e)
    else find_prev (e + 8) (entry_next t e)
  in
  match find_prev slot (Pool.load_int t.pool ~off:slot) with
  | None -> false
  | Some (prev_slot, e) ->
    Pool.tx t.pool (fun () ->
        let voff, vlen = entry_val t e in
        Pool.tx_add_once ~line:530 t.pool ~off:prev_slot ~size:8;
        Pool.store_int ~line:531 t.pool ~off:prev_slot (entry_next t e);
        Value_block.free t.pool ~off:voff ~len:vlen;
        Pool.free t.pool ~off:e ~size:entry_size;
        bump_count t (-1));
    true

let iter t f =
  for b = 0 to t.nbuckets - 1 do
    let rec go e =
      if e <> 0 then begin
        let voff, vlen = entry_val t e in
        f (entry_key t e) (Value_block.read t.pool ~off:voff ~len:vlen);
        go (entry_next t e)
      end
    in
    go (Pool.load_int t.pool ~off:(t.buckets + (8 * b)))
  done

let check_consistent t =
  let heap = Pool.heap_start t.pool in
  let size = Pmtest_pmem.Machine.size (Pool.machine t.pool) in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let reachable = ref 0 in
  for b = 0 to t.nbuckets - 1 do
    let rec go e steps =
      if steps > 1_000_000 then err "cycle suspected in bucket %d" b
      else if e <> 0 then begin
        if e < heap || e + entry_size > size then err "entry 0x%x outside heap" e
        else begin
          incr reachable;
          let k = entry_key t e in
          if hash t k <> b then err "key %Ld found in wrong bucket %d" k b;
          let voff, vlen = entry_val t e in
          if vlen < 0 || (vlen > 0 && (voff < heap || voff + vlen > size)) then
            err "entry 0x%x has bad value block" e;
          go (entry_next t e) (steps + 1)
        end
      end
    in
    go (Pool.load_int t.pool ~off:(t.buckets + (8 * b))) 0
  done;
  if !reachable <> cardinal t then
    err "count mismatch: %d reachable, count says %d" !reachable (cardinal t);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
