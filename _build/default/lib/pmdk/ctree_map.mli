(** Crit-bit tree map (PMDK's [ctree_map] example).

    A binary radix tree over 64-bit keys: internal nodes test a single
    {e differing bit}; leaves hold the key and a pointer to a separately
    allocated value payload. Every mutation runs inside a pool transaction
    with undo-log snapshots of the slots it rewrites.

    Keys are [int64]; values are byte payloads of arbitrary size (the
    Fig. 10 benchmark scales the payload to vary the transaction size). *)

type t

type bug =
  | Skip_log_root  (** Modify the root/parent slot without [TX_ADD]. *)
  | Skip_log_leaf  (** Update a leaf's value pointer without [TX_ADD]. *)
  | Duplicate_log  (** [TX_ADD] the same slot twice. *)
  | No_tx  (** Perform the whole insert outside any transaction. *)

val create : Pool.t -> t
(** Allocate the map's root object and register it as the pool root. *)

val open_ : Pool.t -> root:int -> t
(** Attach to an existing map (after recovery). *)

val root_off : t -> int
val pool : t -> Pool.t

val insert : ?bug:bug -> t -> key:int64 -> value:bytes -> unit
(** Insert or update. One failure-atomic transaction per call. *)

val lookup : t -> key:int64 -> bytes option
val remove : t -> key:int64 -> bool
val cardinal : t -> int
val iter : t -> (int64 -> bytes -> unit) -> unit
(** In increasing unsigned-key order. *)

val check_consistent : t -> (unit, string) result
(** Structural invariants: crit-bit ordering, reachable-leaf count equals
    the stored count, every leaf's payload block is within the heap. *)
