(** Separately allocated value payloads shared by the map examples.

    Every map stores its values out-of-line: a block is allocated, filled
    inside the enclosing transaction (or persisted immediately when there
    is none), and the node records [(off, len)]. Scaling the payload is
    how the Fig. 10 benchmark varies the transaction size. *)

val write : Pool.t -> bytes -> int
(** Allocate a block, store the payload, return its offset. *)

val read : Pool.t -> off:int -> len:int -> bytes

val free : Pool.t -> off:int -> len:int -> unit
(** Release the block (no-op for the empty payload). *)
