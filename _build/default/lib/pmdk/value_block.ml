let write pool payload =
  if Bytes.length payload = 0 then 0
  else begin
    let off = Pool.alloc pool (Bytes.length payload) in
    Pool.store_bytes ~line:5 pool ~off payload;
    if not (Pool.tx_active pool) then Pool.persist ~line:6 pool ~off ~size:(Bytes.length payload);
    off
  end

let read pool ~off ~len = if len = 0 then Bytes.create 0 else Pool.load_bytes pool ~off ~len
let free pool ~off ~len = if len > 0 then Pool.free pool ~off ~size:len
