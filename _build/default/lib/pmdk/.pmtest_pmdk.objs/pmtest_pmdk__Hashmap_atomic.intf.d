lib/pmdk/hashmap_atomic.mli: Pool
