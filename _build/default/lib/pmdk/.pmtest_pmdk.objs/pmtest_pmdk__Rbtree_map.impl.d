lib/pmdk/rbtree_map.ml: Bytes Format List Pool String Value_block
