lib/pmdk/rbtree_map.mli: Pool
