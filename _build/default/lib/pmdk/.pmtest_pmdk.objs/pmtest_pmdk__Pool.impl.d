lib/pmdk/pool.ml: Bytes Event Int64 Interval_map List Pmtest_itree Pmtest_model Pmtest_pmem Pmtest_trace
