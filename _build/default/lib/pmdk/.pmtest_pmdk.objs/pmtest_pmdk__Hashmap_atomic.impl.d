lib/pmdk/hashmap_atomic.ml: Bytes Format Int64 List Pmtest_pmem Pool String Value_block
