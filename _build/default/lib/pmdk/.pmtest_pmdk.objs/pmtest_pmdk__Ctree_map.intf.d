lib/pmdk/ctree_map.mli: Pool
