lib/pmdk/value_block.ml: Bytes Pool
