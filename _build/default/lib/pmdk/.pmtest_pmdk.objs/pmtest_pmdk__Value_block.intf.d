lib/pmdk/value_block.mli: Pool
