lib/pmdk/btree_map.mli: Pool
