lib/pmdk/hashmap_tx.mli: Pool
