lib/pmdk/ctree_map.ml: Bytes Format Int64 List Pmtest_pmem Pool String Value_block
