lib/pmdk/hashmap_tx.ml: Bytes Format Int64 List Pmtest_pmem Pool String Value_block
