lib/pmdk/pool.mli: Pmtest_model Pmtest_pmem Pmtest_trace Sink
