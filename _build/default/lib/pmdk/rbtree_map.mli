(** Red-black tree map (PMDK's [rbtree_map] example).

    CLRS-style red-black tree with parent pointers and a sentinel node.
    Every existing node is snapshotted ([TX_ADD]) before its first
    modification in a transaction; {!Skip_log_fixup} disables the snapshot
    in the rotation helper, reproducing the Table-6 rbtree_map.c:379 bug
    ("modify a tree node without logging it"). *)

type t

type bug =
  | Skip_log_fixup  (** Rotations modify nodes without logging them. *)
  | Skip_log_insert  (** The BST link-in step skips logging the parent. *)
  | Duplicate_log  (** Log the freshly linked node a second time. *)

val create : Pool.t -> t
val open_ : Pool.t -> root:int -> t
val root_off : t -> int
val pool : t -> Pool.t

val insert : ?bug:bug -> t -> key:int64 -> value:bytes -> unit
val lookup : t -> key:int64 -> bytes option
val remove : t -> key:int64 -> bool
val cardinal : t -> int
val iter : t -> (int64 -> bytes -> unit) -> unit
(** In increasing key order. *)

val black_height : t -> int

val check_consistent : t -> (unit, string) result
(** BST order, no red node with a red child, equal black height on all
    paths, parent pointers coherent, count matches. *)
