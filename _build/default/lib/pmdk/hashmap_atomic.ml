(* Same layout as Hashmap_tx, but maintained with explicit writebacks and
   fences instead of transactions.

   Root object (32 B): [0]=nbuckets [8]=count [16]=buckets offset
                       [24]=scratch (used by the Flush_unmodified bug).
   Entry (32 B): [0]=key  [8]=next  [16]=val_off  [24]=val_len. *)

type t = { pool : Pool.t; root : int; nbuckets : int; buckets : int }

type bug =
  | Missing_flush_entry
  | Missing_fence_entry
  | Missing_flush_slot
  | Missing_fence_slot
  | Misplaced_fence_entry
  | Misplaced_flush_entry
  | Duplicate_flush_entry
  | Flush_unmodified
  | Missing_count_flush

type insert_info = { entry_off : int; slot_off : int }

let entry_size = 32

let pool t = t.pool
let root_off t = t.root

let hash t key =
  (* Int64.to_int truncates to 63 bits, so mask AFTER the conversion to
     keep the result non-negative. *)
  let h = Int64.to_int (Int64.mul key 0x9E3779B97F4A7C15L) land max_int in
  h mod t.nbuckets

let create ?(buckets = 1024) pool =
  let root = Pool.alloc pool 32 in
  let arr = Pool.alloc pool (8 * buckets) in
  Pool.set_root pool root;
  Pool.store_int ~line:600 pool ~off:root buckets;
  Pool.store_int ~line:601 pool ~off:(root + 8) 0;
  Pool.store_int ~line:602 pool ~off:(root + 16) arr;
  Pool.persist ~line:603 pool ~off:root ~size:24;
  { pool; root; nbuckets = buckets; buckets = arr }

let open_ pool ~root =
  let nbuckets = Pool.load_int pool ~off:root in
  let buckets = Pool.load_int pool ~off:(root + 16) in
  { pool; root; nbuckets; buckets }

let cardinal t = Pool.load_int t.pool ~off:(t.root + 8)
let slot_of t key = t.buckets + (8 * hash t key)
let entry_key t e = Pool.load_i64 t.pool ~off:e
let entry_next t e = Pool.load_int t.pool ~off:(e + 8)
let entry_val t e = (Pool.load_int t.pool ~off:(e + 16), Pool.load_int t.pool ~off:(e + 24))

let find_entry t key =
  let rec go e = if e = 0 then None else if entry_key t e = key then Some e else go (entry_next t e) in
  go (Pool.load_int t.pool ~off:(slot_of t key))

let insert ?bug t ~key ~value =
  let slot = slot_of t key in
  match find_entry t key with
  | Some e ->
    (* Update in place: write the new value block first, persist it, then
       swing the entry's value pointer and persist that. *)
    let voff = Value_block.write t.pool value in
    let old_off, old_len = entry_val t e in
    Pool.store_int ~line:610 t.pool ~off:(e + 16) voff;
    Pool.store_int ~line:611 t.pool ~off:(e + 24) (Bytes.length value);
    Pool.persist ~line:612 t.pool ~off:(e + 16) ~size:16;
    Value_block.free t.pool ~off:old_off ~len:old_len;
    { entry_off = e; slot_off = slot }
  | None ->
    let head = Pool.load_int t.pool ~off:slot in
    let e = Pool.alloc t.pool entry_size in
    let voff = Value_block.write t.pool value in
    if bug = Some Misplaced_fence_entry then Pool.drain ~line:619 t.pool;
    Pool.store_i64 ~line:620 t.pool ~off:e key;
    Pool.store_int ~line:621 t.pool ~off:(e + 8) head;
    Pool.store_int ~line:622 t.pool ~off:(e + 16) voff;
    Pool.store_int ~line:623 t.pool ~off:(e + 24) (Bytes.length value);
    (* Persist the entry before publishing it. *)
    (match bug with
    | Some Missing_flush_entry -> Pool.drain ~line:624 t.pool
    | Some Missing_fence_entry -> Pool.flush ~line:625 t.pool ~off:e ~size:entry_size
    | Some Misplaced_fence_entry ->
      (* The fence already ran, before the stores; flush only. *)
      Pool.flush ~line:626 t.pool ~off:e ~size:entry_size
    | Some Misplaced_flush_entry ->
      (* Covers only the first 8 bytes of the entry. *)
      Pool.persist ~line:627 t.pool ~off:e ~size:8
    | Some Duplicate_flush_entry ->
      Pool.flush ~line:628 t.pool ~off:e ~size:entry_size;
      Pool.flush ~line:629 t.pool ~off:e ~size:entry_size;
      Pool.drain ~line:630 t.pool
    | Some Flush_unmodified ->
      Pool.flush ~line:631 t.pool ~off:(t.root + 24) ~size:8;
      Pool.persist ~line:632 t.pool ~off:e ~size:entry_size
    | Some Missing_flush_slot | Some Missing_fence_slot | Some Missing_count_flush | None ->
      Pool.persist ~line:633 t.pool ~off:e ~size:entry_size);
    (* Publish: link the bucket head to the new entry. *)
    Pool.store_int ~line:634 t.pool ~off:slot e;
    (match bug with
    | Some Missing_flush_slot -> ()
    | Some Missing_fence_slot -> Pool.flush ~line:635 t.pool ~off:slot ~size:8
    | _ -> Pool.persist ~line:636 t.pool ~off:slot ~size:8);
    (* The fundamental low-level checkers (paper Fig. 5a): the entry must
       persist before the slot that publishes it, and the slot must be
       durable here. *)
    Pool.is_ordered_before ~line:637 t.pool ~a_off:e ~a_size:entry_size ~b_off:slot ~b_size:8;
    Pool.is_persist ~line:638 t.pool ~off:slot ~size:8;
    (* Element count, persisted last. *)
    Pool.store_int ~line:639 t.pool ~off:(t.root + 8) (cardinal t + 1);
    if bug <> Some Missing_count_flush then
      Pool.persist ~line:640 t.pool ~off:(t.root + 8) ~size:8;
    Pool.is_persist ~line:641 t.pool ~off:(t.root + 8) ~size:8;
    { entry_off = e; slot_off = slot }

let lookup t ~key =
  match find_entry t key with
  | None -> None
  | Some e ->
    let voff, vlen = entry_val t e in
    Some (Value_block.read t.pool ~off:voff ~len:vlen)

let remove t ~key =
  let slot = slot_of t key in
  let rec find_prev prev_slot e =
    if e = 0 then None
    else if entry_key t e = key then Some (prev_slot, e)
    else find_prev (e + 8) (entry_next t e)
  in
  match find_prev slot (Pool.load_int t.pool ~off:slot) with
  | None -> false
  | Some (prev_slot, e) ->
    let voff, vlen = entry_val t e in
    (* Unlink, persist the unlink, then reclaim. *)
    Pool.store_int ~line:650 t.pool ~off:prev_slot (entry_next t e);
    Pool.persist ~line:651 t.pool ~off:prev_slot ~size:8;
    Pool.is_persist ~line:652 t.pool ~off:prev_slot ~size:8;
    Value_block.free t.pool ~off:voff ~len:vlen;
    Pool.free t.pool ~off:e ~size:entry_size;
    Pool.store_int ~line:653 t.pool ~off:(t.root + 8) (cardinal t - 1);
    Pool.persist ~line:654 t.pool ~off:(t.root + 8) ~size:8;
    true

let iter t f =
  for b = 0 to t.nbuckets - 1 do
    let rec go e =
      if e <> 0 then begin
        let voff, vlen = entry_val t e in
        f (entry_key t e) (Value_block.read t.pool ~off:voff ~len:vlen);
        go (entry_next t e)
      end
    in
    go (Pool.load_int t.pool ~off:(t.buckets + (8 * b)))
  done

let check_consistent t =
  let heap = Pool.heap_start t.pool in
  let size = Pmtest_pmem.Machine.size (Pool.machine t.pool) in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let reachable = ref 0 in
  for b = 0 to t.nbuckets - 1 do
    let rec go e steps =
      if steps > 1_000_000 then err "cycle suspected in bucket %d" b
      else if e <> 0 then
        if e < heap || e + entry_size > size then err "entry 0x%x outside heap" e
        else begin
          incr reachable;
          let k = entry_key t e in
          if hash t k <> b then err "key %Ld found in wrong bucket %d" k b;
          let voff, vlen = entry_val t e in
          if vlen < 0 || (vlen > 0 && (voff < heap || voff + vlen > size)) then
            err "entry 0x%x has bad value block" e;
          go (entry_next t e) (steps + 1)
        end
    in
    go (Pool.load_int t.pool ~off:(t.buckets + (8 * b))) 0
  done;
  if !reachable <> cardinal t then
    err "count mismatch: %d reachable, count says %d" !reachable (cardinal t);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
