(** Chained hash map with transactional updates (PMDK's [hashmap_tx]).

    Fixed bucket array; each mutation is one failure-atomic transaction
    that snapshots the bucket slot (and the count) before relinking. *)

type t

type bug =
  | Skip_log_bucket  (** Relink the bucket head without [TX_ADD]. *)
  | Skip_log_count  (** Update the element count without [TX_ADD]. *)
  | Duplicate_log  (** Log the bucket slot twice. *)
  | No_commit  (** Leave the transaction open. *)

val create : ?buckets:int -> Pool.t -> t
val open_ : Pool.t -> root:int -> t
val root_off : t -> int
val pool : t -> Pool.t
val bucket_count : t -> int

val insert : ?bug:bug -> t -> key:int64 -> value:bytes -> unit
val lookup : t -> key:int64 -> bytes option
val remove : t -> key:int64 -> bool
val cardinal : t -> int
val iter : t -> (int64 -> bytes -> unit) -> unit

val check_consistent : t -> (unit, string) result
(** Chain pointers stay inside the heap, keys hash to their bucket, and
    the reachable-entry count equals the stored count. *)
