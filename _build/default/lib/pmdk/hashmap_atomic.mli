(** Chained hash map maintained with {e low-level} primitives — no
    transactions (PMDK's [hashmap_atomic]; the paper's "HashMap (w/o TX)"
    microbenchmark and its Fig. 1a-style running example).

    Crash consistency is hand-rolled: a new entry is fully written and
    persisted {e before} the bucket head is relinked to it, and the relink
    itself is persisted before the element count is bumped. Each insert
    self-annotates with the two fundamental low-level checkers:

    - [isOrderedBefore entry slot] — the entry must be durable before it
      is published;
    - [isPersist slot] and [isPersist count] after their barriers.

    The {!bug} switches remove or misplace individual writebacks and
    fences, generating the low-level rows of Table 5. *)

type t

type bug =
  | Missing_flush_entry  (** No [clwb] of the new entry (writeback bug). *)
  | Missing_fence_entry  (** [clwb] but no [sfence] before publishing. *)
  | Missing_flush_slot  (** Bucket head never written back. *)
  | Missing_fence_slot  (** Bucket head written back but not fenced. *)
  | Misplaced_fence_entry
      (** The fence runs {e before} the entry writeback instead of after. *)
  | Misplaced_flush_entry
      (** The entry writeback covers only part of the entry. *)
  | Duplicate_flush_entry  (** The entry is written back twice. *)
  | Flush_unmodified  (** An untouched scratch range is written back. *)
  | Missing_count_flush  (** The element count is never persisted. *)

type insert_info = { entry_off : int; slot_off : int }

val create : ?buckets:int -> Pool.t -> t
val open_ : Pool.t -> root:int -> t
val root_off : t -> int
val pool : t -> Pool.t

val insert : ?bug:bug -> t -> key:int64 -> value:bytes -> insert_info
val lookup : t -> key:int64 -> bytes option
val remove : t -> key:int64 -> bool
val cardinal : t -> int
val iter : t -> (int64 -> bytes -> unit) -> unit
val check_consistent : t -> (unit, string) result
