(* B-tree of order 8 (min degree 4), values stored in every node.

   Node layout (256 B, 4 cache lines):
     [0]   n               number of keys
     [8]   is_leaf         1 / 0
     [16]  keys[7]         8 B each
     [72]  values[7]       (val_off, val_len) = 16 B each
     [184] children[8]     8 B each

   Root object: [0] = root node offset, [8] = count. *)

type t = { pool : Pool.t; root : int }
type bug = Skip_log_split_node | Duplicate_log_insert | Skip_log_leaf_insert | No_commit

let order = 8
let min_degree = order / 2
let max_keys = order - 1
let node_size = 256
let off_keys = 16
let off_vals = 72
let off_children = 184

let pool t = t.pool
let root_off t = t.root

let create pool =
  let root = Pool.alloc pool 16 in
  Pool.set_root pool root;
  { pool; root }

let open_ pool ~root = { pool; root }

let load_root_node t = Pool.load_int t.pool ~off:t.root
let cardinal t = Pool.load_int t.pool ~off:(t.root + 8)

let bump_count t delta =
  Pool.tx_add_once ~line:200 t.pool ~off:(t.root + 8) ~size:8;
  Pool.store_int ~line:201 t.pool ~off:(t.root + 8) (cardinal t + delta)

(* Node field accessors. *)
let get_n t node = Pool.load_int t.pool ~off:node
let set_n ?(line = 210) t node v = Pool.store_int ~line t.pool ~off:node v
let get_leaf t node = Pool.load_int t.pool ~off:(node + 8) = 1
let set_leaf ?(line = 211) t node v = Pool.store_int ~line t.pool ~off:(node + 8) (if v then 1 else 0)
let get_key t node i = Pool.load_i64 t.pool ~off:(node + off_keys + (8 * i))
let set_key ?(line = 212) t node i k = Pool.store_i64 ~line t.pool ~off:(node + off_keys + (8 * i)) k
let get_val t node i =
  ( Pool.load_int t.pool ~off:(node + off_vals + (16 * i)),
    Pool.load_int t.pool ~off:(node + off_vals + (16 * i) + 8) )
let set_val ?(line = 213) t node i (voff, vlen) =
  Pool.store_int ~line t.pool ~off:(node + off_vals + (16 * i)) voff;
  Pool.store_int ~line t.pool ~off:(node + off_vals + (16 * i) + 8) vlen
let get_child t node j = Pool.load_int t.pool ~off:(node + off_children + (8 * j))
let set_child ?(line = 214) t node j c = Pool.store_int ~line t.pool ~off:(node + off_children + (8 * j)) c

let log_node ?(line = 220) t node = Pool.tx_add_once ~line t.pool ~off:node ~size:node_size

(* Deliberately unconditioned snapshot, used only by the duplicate-log
   bug variant. *)
let log_node_again ?(line = 223) t node = Pool.tx_add ~line t.pool ~off:node ~size:node_size

let alloc_node t ~leaf =
  let node = Pool.alloc t.pool node_size in
  set_leaf ~line:221 t node leaf;
  set_n ~line:222 t node 0;
  node

(* Index of the first key >= k, or n if none. *)
let lower_bound t node k =
  let n = get_n t node in
  let rec go i = if i >= n then n else if get_key t node i >= k then i else go (i + 1) in
  go 0

(* Split the full child [children.(i)] of non-full [parent]. *)
let split_child ?bug t parent i =
  let child = get_child t parent i in
  let right = alloc_node t ~leaf:(get_leaf t child) in
  let mid = min_degree - 1 in
  (* Move upper keys/values/children of [child] into [right]. *)
  for j = 0 to min_degree - 2 do
    set_key ~line:230 t right j (get_key t child (j + min_degree));
    set_val ~line:231 t right j (get_val t child (j + min_degree))
  done;
  if not (get_leaf t child) then
    for j = 0 to min_degree - 1 do
      set_child ~line:232 t right j (get_child t child (j + min_degree))
    done;
  set_n ~line:233 t right (min_degree - 1);
  (* Shrinking [child] modifies an existing node: it must be logged.
     Skipping this is exactly the Table-6 btree_map.c:201 bug. *)
  if bug <> Some Skip_log_split_node then log_node ~line:234 t child;
  set_n ~line:235 t child mid;
  (* Insert the median into the parent. *)
  log_node ~line:236 t parent;
  let n = get_n t parent in
  for j = n - 1 downto i do
    set_key ~line:237 t parent (j + 1) (get_key t parent j);
    set_val ~line:238 t parent (j + 1) (get_val t parent j)
  done;
  for j = n downto i + 1 do
    set_child ~line:239 t parent (j + 1) (get_child t parent j)
  done;
  set_key ~line:240 t parent i (get_key t child mid);
  set_val ~line:241 t parent i (get_val t child mid);
  set_child ~line:242 t parent (i + 1) right;
  set_n ~line:243 t parent (n + 1)

let store_value t value =
  let voff = Value_block.write t.pool value in
  (voff, Bytes.length value)

let replace_value ?(line = 250) t node i value =
  let old_off, old_len = get_val t node i in
  log_node ~line t node;
  set_val ~line:(line + 1) t node i (store_value t value);
  Value_block.free t.pool ~off:old_off ~len:old_len

(* Insert into a node known to be non-full. Returns [true] if a new key
   was added (vs. an update of an existing one). *)
let rec insert_nonfull ?bug t node ~key ~value =
  let i = lower_bound t node key in
  if i < get_n t node && get_key t node i = key then begin
    replace_value t node i value;
    false
  end
  else if get_leaf t node then begin
    if bug <> Some Skip_log_leaf_insert then begin
      log_node ~line:260 t node;
      if bug = Some Duplicate_log_insert then log_node_again ~line:261 t node
    end;
    let n = get_n t node in
    for j = n - 1 downto i do
      set_key ~line:262 t node (j + 1) (get_key t node j);
      set_val ~line:263 t node (j + 1) (get_val t node j)
    done;
    set_key ~line:264 t node i key;
    set_val ~line:265 t node i (store_value t value);
    set_n ~line:266 t node (n + 1);
    true
  end
  else begin
    let i =
      if get_n t (get_child t node i) = max_keys then begin
        split_child ?bug t node i;
        (* The median moved up; re-aim. *)
        if key > get_key t node i then i + 1 else i
      end
      else i
    in
    if i < get_n t node && get_key t node i = key then begin
      replace_value ~line:267 t node i value;
      false
    end
    else insert_nonfull ?bug t (get_child t node i) ~key ~value
  end

let insert ?bug t ~key ~value =
  Pool.tx_begin t.pool;
  let root_node = load_root_node t in
  let added =
    if root_node = 0 then begin
      let node = alloc_node t ~leaf:true in
      set_key ~line:270 t node 0 key;
      set_val ~line:271 t node 0 (store_value t value);
      set_n ~line:272 t node 1;
      Pool.tx_add_once ~line:273 t.pool ~off:t.root ~size:8;
      Pool.store_int ~line:274 t.pool ~off:t.root node;
      true
    end
    else begin
      let root_node =
        if get_n t root_node = max_keys then begin
          let new_root = alloc_node t ~leaf:false in
          set_child ~line:275 t new_root 0 root_node;
          split_child ?bug t new_root 0;
          Pool.tx_add_once ~line:276 t.pool ~off:t.root ~size:8;
          Pool.store_int ~line:277 t.pool ~off:t.root new_root;
          new_root
        end
        else root_node
      in
      insert_nonfull ?bug t root_node ~key ~value
    end
  in
  if added then bump_count t 1;
  if bug = Some No_commit then () else Pool.tx_commit t.pool

let rec lookup_in t node ~key =
  if node = 0 then None
  else
    let i = lower_bound t node key in
    if i < get_n t node && get_key t node i = key then begin
      let voff, vlen = get_val t node i in
      Some (Value_block.read t.pool ~off:voff ~len:vlen)
    end
    else if get_leaf t node then None
    else lookup_in t (get_child t node i) ~key

let lookup t ~key = lookup_in t (load_root_node t) ~key

let iter t f =
  let rec go node =
    if node <> 0 then begin
      let n = get_n t node in
      let leaf = get_leaf t node in
      for i = 0 to n - 1 do
        if not leaf then go (get_child t node i);
        let voff, vlen = get_val t node i in
        f (get_key t node i) (Value_block.read t.pool ~off:voff ~len:vlen)
      done;
      if not leaf then go (get_child t node n)
    end
  in
  go (load_root_node t)

let height t =
  let rec go node acc =
    if node = 0 then acc
    else if get_leaf t node then acc + 1
    else go (get_child t node 0) (acc + 1)
  in
  go (load_root_node t) 0

let check_consistent t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let entries = ref 0 in
  let leaf_depths = ref [] in
  let rec go node ~lo ~hi ~depth ~is_root =
    if node = 0 then err "null node reached at depth %d" depth
    else begin
      let n = get_n t node in
      if n < 1 || n > max_keys then err "node 0x%x has %d keys" node n;
      if (not is_root) && n < min_degree - 1 then
        err "node 0x%x underfull (%d < %d)" node n (min_degree - 1);
      entries := !entries + n;
      for i = 0 to n - 1 do
        let k = get_key t node i in
        (match lo with Some l when k <= l -> err "key %Ld out of order in 0x%x" k node | _ -> ());
        (match hi with Some h when k >= h -> err "key %Ld out of order in 0x%x" k node | _ -> ());
        if i > 0 && get_key t node (i - 1) >= k then err "unsorted keys in node 0x%x" node
      done;
      if get_leaf t node then leaf_depths := depth :: !leaf_depths
      else
        for i = 0 to n do
          let clo = if i = 0 then lo else Some (get_key t node (i - 1)) in
          let chi = if i = n then hi else Some (get_key t node i) in
          go (get_child t node i) ~lo:clo ~hi:chi ~depth:(depth + 1) ~is_root:false
        done
    end
  in
  let root_node = load_root_node t in
  if root_node <> 0 then go root_node ~lo:None ~hi:None ~depth:0 ~is_root:true;
  (match !leaf_depths with
  | [] -> ()
  | d :: rest -> if List.exists (fun d' -> d' <> d) rest then err "leaves at unequal depths");
  if !entries <> cardinal t then
    err "count mismatch: %d entries reachable, count says %d" !entries (cardinal t);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
