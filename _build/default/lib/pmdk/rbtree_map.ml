(* CLRS red-black tree with a sentinel nil node.

   Node layout (64 B):
     [0]=key  [8]=val_off  [16]=val_len  [24]=color(0=black,1=red)
     [32]=parent  [40]=left  [48]=right

   Root object: [0]=nil offset, [8]=root node offset, [16]=count. *)

type t = { pool : Pool.t; root : int; nil : int }
type bug = Skip_log_fixup | Skip_log_insert | Duplicate_log

let node_size = 64
let black = 0
let red = 1

let pool t = t.pool
let root_off t = t.root

let get_key t n = Pool.load_i64 t.pool ~off:n
let set_key ?(line = 300) t n k = Pool.store_i64 ~line t.pool ~off:n k
let get_val t n = (Pool.load_int t.pool ~off:(n + 8), Pool.load_int t.pool ~off:(n + 16))

let set_val ?(line = 301) t n (voff, vlen) =
  Pool.store_int ~line t.pool ~off:(n + 8) voff;
  Pool.store_int ~line:(line + 1) t.pool ~off:(n + 16) vlen

let color t n = Pool.load_int t.pool ~off:(n + 24)
let set_color ?(line = 302) t n c = Pool.store_int ~line t.pool ~off:(n + 24) c
let parent t n = Pool.load_int t.pool ~off:(n + 32)
let set_parent ?(line = 303) t n p = Pool.store_int ~line t.pool ~off:(n + 32) p
let left t n = Pool.load_int t.pool ~off:(n + 40)
let set_left ?(line = 304) t n v = Pool.store_int ~line t.pool ~off:(n + 40) v
let right t n = Pool.load_int t.pool ~off:(n + 48)
let set_right ?(line = 305) t n v = Pool.store_int ~line t.pool ~off:(n + 48) v

let log_node ?(line = 310) t n = Pool.tx_add_once ~line t.pool ~off:n ~size:node_size
let log_root_slot ?(line = 311) t = Pool.tx_add_once ~line t.pool ~off:(t.root + 8) ~size:8

let tree_root t = Pool.load_int t.pool ~off:(t.root + 8)
let set_tree_root ?(line = 312) t n = Pool.store_int ~line t.pool ~off:(t.root + 8) n
let cardinal t = Pool.load_int t.pool ~off:(t.root + 16)

let bump_count t delta =
  Pool.tx_add_once ~line:313 t.pool ~off:(t.root + 16) ~size:8;
  Pool.store_int ~line:314 t.pool ~off:(t.root + 16) (cardinal t + delta)

let create pool =
  let root = Pool.alloc pool 24 in
  let nil = Pool.alloc pool node_size in
  Pool.set_root pool root;
  Pool.store_int ~line:320 pool ~off:root nil;
  Pool.store_int ~line:321 pool ~off:(root + 8) nil;
  Pool.store_int ~line:322 pool ~off:(root + 16) 0;
  Pool.store_int ~line:323 pool ~off:(nil + 24) black;
  Pool.store_int ~line:324 pool ~off:(nil + 32) nil;
  Pool.store_int ~line:325 pool ~off:(nil + 40) nil;
  Pool.store_int ~line:326 pool ~off:(nil + 48) nil;
  Pool.persist ~line:327 pool ~off:root ~size:24;
  (* Only bytes 24..56 of the sentinel were rewritten since allocation
     zeroed (and persisted) the block; flushing more would be redundant. *)
  Pool.persist ~line:328 pool ~off:(nil + 24) ~size:32;
  { pool; root; nil }

let open_ pool ~root = { pool; root; nil = Pool.load_int pool ~off:root }

(* Rotations. [log] is false only under the Skip_log_fixup bug — the
   historical rbtree_map.c:379 pattern. *)
let rotate_left ~log t x =
  let y = right t x in
  if log then begin
    log_node ~line:330 t x;
    log_node ~line:331 t y
  end;
  let yl = left t y in
  set_right ~line:332 t x yl;
  if yl <> t.nil then begin
    if log then log_node ~line:333 t yl;
    set_parent ~line:334 t yl x
  end;
  let xp = parent t x in
  set_parent ~line:335 t y xp;
  if xp = t.nil then begin
    if log then log_root_slot ~line:336 t;
    set_tree_root ~line:337 t y
  end
  else begin
    if log then log_node ~line:338 t xp;
    if left t xp = x then set_left ~line:339 t xp y else set_right ~line:340 t xp y
  end;
  set_left ~line:341 t y x;
  set_parent ~line:342 t x y

let rotate_right ~log t x =
  let y = left t x in
  if log then begin
    log_node ~line:350 t x;
    log_node ~line:351 t y
  end;
  let yr = right t y in
  set_left ~line:352 t x yr;
  if yr <> t.nil then begin
    if log then log_node ~line:353 t yr;
    set_parent ~line:354 t yr x
  end;
  let xp = parent t x in
  set_parent ~line:355 t y xp;
  if xp = t.nil then begin
    if log then log_root_slot ~line:356 t;
    set_tree_root ~line:357 t y
  end
  else begin
    if log then log_node ~line:358 t xp;
    if right t xp = x then set_right ~line:359 t xp y else set_left ~line:360 t xp y
  end;
  set_right ~line:361 t y x;
  set_parent ~line:362 t x y

let insert_fixup ?bug t z0 =
  let log = bug <> Some Skip_log_fixup in
  let z = ref z0 in
  while color t (parent t !z) = red do
    let zp = parent t !z in
    let zpp = parent t zp in
    if zp = left t zpp then begin
      let y = right t zpp in
      if color t y = red then begin
        log_node ~line:370 t zp;
        log_node ~line:371 t y;
        log_node ~line:372 t zpp;
        set_color ~line:373 t zp black;
        set_color ~line:374 t y black;
        set_color ~line:375 t zpp red;
        z := zpp
      end
      else begin
        if right t zp = !z then begin
          z := zp;
          rotate_left ~log t !z
        end;
        let zp = parent t !z in
        let zpp = parent t zp in
        if log then begin
          log_node ~line:376 t zp;
          log_node ~line:377 t zpp
        end;
        set_color ~line:378 t zp black;
        set_color ~line:379 t zpp red;
        rotate_right ~log t zpp
      end
    end
    else begin
      let y = left t zpp in
      if color t y = red then begin
        log_node ~line:380 t zp;
        log_node ~line:381 t y;
        log_node ~line:382 t zpp;
        set_color ~line:383 t zp black;
        set_color ~line:384 t y black;
        set_color ~line:385 t zpp red;
        z := zpp
      end
      else begin
        if left t zp = !z then begin
          z := zp;
          rotate_right ~log t !z
        end;
        let zp = parent t !z in
        let zpp = parent t zp in
        if log then begin
          log_node ~line:386 t zp;
          log_node ~line:387 t zpp
        end;
        set_color ~line:388 t zp black;
        set_color ~line:389 t zpp red;
        rotate_left ~log t zpp
      end
    end
  done;
  let r = tree_root t in
  if color t r = red then begin
    if log then log_node ~line:390 t r;
    set_color ~line:391 t r black
  end

let store_value t value = (Value_block.write t.pool value, Bytes.length value)

let replace_value t n value =
  let old_off, old_len = get_val t n in
  Pool.tx_add_once ~line:392 t.pool ~off:(n + 8) ~size:16;
  set_val ~line:393 t n (store_value t value);
  Value_block.free t.pool ~off:old_off ~len:old_len

let insert ?bug t ~key ~value =
  Pool.tx t.pool (fun () ->
      (* BST descent. *)
      let y = ref t.nil in
      let x = ref (tree_root t) in
      let existing = ref t.nil in
      while !x <> t.nil && !existing = t.nil do
        if get_key t !x = key then existing := !x
        else begin
          y := !x;
          x := if key < get_key t !x then left t !x else right t !x
        end
      done;
      if !existing <> t.nil then replace_value t !existing value
      else begin
        let z = Pool.alloc t.pool node_size in
        set_key ~line:400 t z key;
        set_val ~line:401 t z (store_value t value);
        set_color ~line:402 t z red;
        set_parent ~line:403 t z !y;
        set_left ~line:404 t z t.nil;
        set_right ~line:405 t z t.nil;
        if bug = Some Duplicate_log then Pool.tx_add ~line:406 t.pool ~off:z ~size:node_size;
        if !y = t.nil then begin
          log_root_slot ~line:407 t;
          set_tree_root ~line:408 t z
        end
        else begin
          if bug <> Some Skip_log_insert then log_node ~line:409 t !y;
          if key < get_key t !y then set_left ~line:410 t !y z else set_right ~line:411 t !y z
        end;
        insert_fixup ?bug t z;
        bump_count t 1
      end)

let find_node t key =
  let rec go x =
    if x = t.nil then t.nil
    else if get_key t x = key then x
    else go (if key < get_key t x then left t x else right t x)
  in
  go (tree_root t)

let lookup t ~key =
  let n = find_node t key in
  if n = t.nil then None
  else
    let voff, vlen = get_val t n in
    Some (Value_block.read t.pool ~off:voff ~len:vlen)

let minimum t x =
  let rec go x = if left t x = t.nil then x else go (left t x) in
  go x

(* Replace subtree rooted at [u] with the one rooted at [v]. *)
let transplant t u v =
  let up = parent t u in
  if up = t.nil then begin
    log_root_slot ~line:420 t;
    set_tree_root ~line:421 t v
  end
  else begin
    log_node ~line:422 t up;
    if u = left t up then set_left ~line:423 t up v else set_right ~line:424 t up v
  end;
  log_node ~line:425 t v;
  set_parent ~line:426 t v up

let delete_fixup t x0 =
  let x = ref x0 in
  while !x <> tree_root t && color t !x = black do
    let xp = parent t !x in
    if !x = left t xp then begin
      let w = ref (right t xp) in
      if color t !w = red then begin
        log_node ~line:430 t !w;
        log_node ~line:431 t xp;
        set_color ~line:432 t !w black;
        set_color ~line:433 t xp red;
        rotate_left ~log:true t xp;
        w := right t (parent t !x)
      end;
      if color t (left t !w) = black && color t (right t !w) = black then begin
        log_node ~line:434 t !w;
        set_color ~line:435 t !w red;
        x := parent t !x
      end
      else begin
        if color t (right t !w) = black then begin
          let wl = left t !w in
          log_node ~line:436 t wl;
          log_node ~line:437 t !w;
          set_color ~line:438 t wl black;
          set_color ~line:439 t !w red;
          rotate_right ~log:true t !w;
          w := right t (parent t !x)
        end;
        let xp = parent t !x in
        log_node ~line:440 t !w;
        log_node ~line:441 t xp;
        set_color ~line:442 t !w (color t xp);
        set_color ~line:443 t xp black;
        let wr = right t !w in
        if wr <> t.nil then begin
          log_node ~line:444 t wr;
          set_color ~line:445 t wr black
        end;
        rotate_left ~log:true t xp;
        x := tree_root t
      end
    end
    else begin
      let w = ref (left t xp) in
      if color t !w = red then begin
        log_node ~line:450 t !w;
        log_node ~line:451 t xp;
        set_color ~line:452 t !w black;
        set_color ~line:453 t xp red;
        rotate_right ~log:true t xp;
        w := left t (parent t !x)
      end;
      if color t (right t !w) = black && color t (left t !w) = black then begin
        log_node ~line:454 t !w;
        set_color ~line:455 t !w red;
        x := parent t !x
      end
      else begin
        if color t (left t !w) = black then begin
          let wr = right t !w in
          log_node ~line:456 t wr;
          log_node ~line:457 t !w;
          set_color ~line:458 t wr black;
          set_color ~line:459 t !w red;
          rotate_left ~log:true t !w;
          w := left t (parent t !x)
        end;
        let xp = parent t !x in
        log_node ~line:460 t !w;
        log_node ~line:461 t xp;
        set_color ~line:462 t !w (color t xp);
        set_color ~line:463 t xp black;
        let wl = left t !w in
        if wl <> t.nil then begin
          log_node ~line:464 t wl;
          set_color ~line:465 t wl black
        end;
        rotate_right ~log:true t xp;
        x := tree_root t
      end
    end
  done;
  if !x <> t.nil then begin
    log_node ~line:466 t !x;
    set_color ~line:467 t !x black
  end

let remove t ~key =
  let z = find_node t key in
  if z = t.nil then false
  else begin
    Pool.tx t.pool (fun () ->
        let voff, vlen = get_val t z in
        let y_original_color = ref (color t z) in
        let x = ref t.nil in
        if left t z = t.nil then begin
          x := right t z;
          transplant t z (right t z)
        end
        else if right t z = t.nil then begin
          x := left t z;
          transplant t z (left t z)
        end
        else begin
          let y = minimum t (right t z) in
          y_original_color := color t y;
          x := right t y;
          if parent t y = z then begin
            log_node ~line:470 t !x;
            set_parent ~line:471 t !x y
          end
          else begin
            transplant t y (right t y);
            log_node ~line:472 t y;
            set_right ~line:473 t y (right t z);
            log_node ~line:474 t (right t y);
            set_parent ~line:475 t (right t y) y
          end;
          transplant t z y;
          log_node ~line:476 t y;
          set_left ~line:477 t y (left t z);
          log_node ~line:478 t (left t y);
          set_parent ~line:479 t (left t y) y;
          set_color ~line:480 t y (color t z)
        end;
        if !y_original_color = black then delete_fixup t !x;
        Value_block.free t.pool ~off:voff ~len:vlen;
        Pool.free t.pool ~off:z ~size:node_size;
        bump_count t (-1));
    true
  end

let iter t f =
  let rec go n =
    if n <> t.nil then begin
      go (left t n);
      let voff, vlen = get_val t n in
      f (get_key t n) (Value_block.read t.pool ~off:voff ~len:vlen);
      go (right t n)
    end
  in
  go (tree_root t)

let black_height t =
  let rec go n = if n = t.nil then 0 else go (left t n) + if color t n = black then 1 else 0 in
  go (tree_root t)

let check_consistent t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let count = ref 0 in
  (* Returns the black height of the subtree; -1 propagates failure. *)
  let rec go n ~lo ~hi =
    if n = t.nil then 1
    else begin
      incr count;
      let k = get_key t n in
      (match lo with Some l when k <= l -> err "key %Ld violates BST order" k | _ -> ());
      (match hi with Some h when k >= h -> err "key %Ld violates BST order" k | _ -> ());
      let l = left t n and r = right t n in
      if l <> t.nil && parent t l <> n then err "bad parent pointer below %Ld" k;
      if r <> t.nil && parent t r <> n then err "bad parent pointer below %Ld" k;
      if color t n = red && (color t l = red || color t r = red) then
        err "red node %Ld has a red child" k;
      let bl = go l ~lo ~hi:(Some k) in
      let br = go r ~lo:(Some k) ~hi in
      if bl <> br then err "black-height mismatch at %Ld (%d vs %d)" k bl br;
      bl + (if color t n = black then 1 else 0)
    end
  in
  let r = tree_root t in
  if r <> t.nil then begin
    if color t r <> black then err "root is red";
    ignore (go r ~lo:None ~hi:None)
  end;
  if !count <> cardinal t then
    err "count mismatch: %d nodes reachable, count says %d" !count (cardinal t);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
