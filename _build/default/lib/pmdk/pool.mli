(** Simulated PMDK object pool (libpmemobj).

    A pool is a region of the simulated PM device with a small metadata
    header, a persistent undo-log area and an object heap. It provides the
    failure-atomic transaction protocol the real library implements:

    - [TX_ADD] copies the object's current bytes into the undo log and
      persists the entry {e before} the object may be modified;
    - at outermost [TX_END] commit, every range modified inside the
      transaction is written back and fenced, then the log is truncated;
    - recovery after a crash rolls back any valid log entries, restoring
      the pre-transaction image.

    All PM operations go through {!Pmtest_pmem.Instr}, so attaching a sink
    makes the pool's every write/clwb/sfence — and its [TX_*] annotations —
    visible to a testing tool. The metadata and log areas are announced to
    the tool as excluded ranges (the library's own bookkeeping is not the
    application's crash-consistency obligation).

    The allocator is first-fit over a volatile free list plus a persistent
    bump pointer; like the real library's runtime state, the free list is
    rebuilt conservatively (leaked blocks are not reclaimed) after a
    crash. *)

open Pmtest_trace
module Machine = Pmtest_pmem.Machine
module Instr = Pmtest_pmem.Instr

type t

val source_file : string
(** File name under which the pool reports its operations ("pmdk/pool.c"). *)

val create :
  ?track_versions:bool -> ?model:Pmtest_model.Model.kind -> ?size:int -> sink:Sink.t -> unit -> t
(** Fresh pool on a fresh machine (default 16 MiB). [model] selects the
    persistency model the pool enforces durability with (paper Fig. 2):
    x86 (default) issues [clwb]+[sfence]; HOPS issues [dfence] for
    durability points and [ofence] for ordering-only points. *)

val model : t -> Pmtest_model.Model.kind

val of_machine : machine:Machine.t -> sink:Sink.t -> t
(** Run recovery on an existing device (e.g. a crash image booted with
    {!Machine.of_image}) and open the pool: valid undo-log entries are
    rolled back. *)

val machine : t -> Machine.t
val instr : t -> Instr.t
val recovered_entries : t -> int
(** Undo-log entries rolled back when the pool was opened (0 for a fresh
    pool or a clean shutdown). *)

(** {1 Root object} *)

val root : t -> int
(** Offset of the application root object, 0 if unset. *)

val set_root : t -> int -> unit
(** Persistently record the root offset (write + flush + fence). *)

(** {1 Allocation} *)

val alloc : t -> int -> int
(** [alloc t size] returns the offset of a zeroed, cache-line-aligned
    block. Raises [Out_of_memory] if the heap is exhausted. *)

val free : t -> off:int -> size:int -> unit
(** Return a block to the (volatile) free list. *)

(** {1 Transactions} *)

exception Tx_aborted

val tx_begin : t -> unit
val tx_commit : t -> unit
val tx_abort : t -> unit
(** Roll back every logged range and terminate the transaction. *)

val tx_active : t -> bool
val tx_depth : t -> int

val tx : t -> (unit -> 'a) -> 'a
(** [tx t f] wraps [f] in [tx_begin]/[tx_commit]; aborts (and re-raises)
    if [f] raises. *)

val tx_add : ?line:int -> t -> off:int -> size:int -> unit
(** Snapshot the range into the undo log (PMDK [TX_ADD_RANGE]). Must be
    called inside a transaction. Always appends a new log entry, even if
    the range was already snapshotted — a second call is the
    duplicate-log performance bug the tools flag. *)

val tx_add_once : ?line:int -> t -> off:int -> size:int -> unit
(** Like {!tx_add} but skips ranges already fully covered by this
    transaction's log (or by a fresh allocation), as the real library's
    range tracking does; this is what correct code calls. *)

(** {1 PM accesses}

    Stores made inside a transaction are tracked and written back at
    commit; loads are plain. [line] is the simulated source line reported
    to the testing tool. *)

val store_i64 : ?line:int -> t -> off:int -> int64 -> unit
val store_int : ?line:int -> t -> off:int -> int -> unit
val store_u8 : ?line:int -> t -> off:int -> int -> unit
val store_bytes : ?line:int -> t -> off:int -> bytes -> unit
val store_string : ?line:int -> t -> off:int -> len:int -> string -> unit
val load_i64 : t -> off:int -> int64
val load_int : t -> off:int -> int
val load_u8 : t -> off:int -> int
val load_bytes : t -> off:int -> len:int -> bytes
val load_string : t -> off:int -> len:int -> string

val persist : ?line:int -> t -> off:int -> size:int -> unit
(** Non-transactional durability: clwb + sfence (pmem_persist). *)

val flush : ?line:int -> t -> off:int -> size:int -> unit
(** clwb only (pmem_flush). *)

val drain : ?line:int -> t -> unit
(** sfence only (pmem_drain). *)

(** {1 Checker annotations}

    Convenience emitters for programs annotated with the transaction
    checkers: these only produce trace entries, they have no effect on the
    pool. *)

val tx_checker_start : ?line:int -> t -> unit
val tx_checker_end : ?line:int -> t -> unit
val is_persist : ?line:int -> t -> off:int -> size:int -> unit
val is_ordered_before :
  ?line:int -> t -> a_off:int -> a_size:int -> b_off:int -> b_size:int -> unit

(** {1 Fault injection for the bug suite} *)

type fault =
  | Skip_commit_writeback
      (** Commit does not write modified ranges back (transaction
          completion bug). *)
  | Skip_commit_fence  (** Commit writes back but omits the fence. *)

val set_fault : t -> fault option -> unit
val heap_start : t -> int
val heap_used : t -> int
