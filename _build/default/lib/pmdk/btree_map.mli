(** B-tree map (PMDK's [btree_map] example).

    A fixed-order (8) B-tree over 64-bit keys with out-of-line value
    payloads. Insertion uses preemptive splitting: full children are split
    on the way down, so every in-node insertion happens in a non-full
    node. Each mutating call is one failure-atomic transaction.

    The two Table-6 PMDK bugs live here behind switches:
    - {!Skip_log_split_node} reproduces btree_map.c:201 — the node created
      by [create_split_node] has an {e existing} sibling modified without
      snapshotting it first;
    - {!Duplicate_log_insert} reproduces btree_map.c:367 — the same node is
      [TX_ADD]ed twice on the insert path (a performance bug). *)

type t

type bug =
  | Skip_log_split_node  (** Modify a node during split without logging. *)
  | Duplicate_log_insert  (** Log the same node twice. *)
  | Skip_log_leaf_insert  (** Insert into a leaf without logging it. *)
  | No_commit  (** Leave the transaction open (improper termination). *)

val order : int
(** Maximum children per node (8). *)

val create : Pool.t -> t
val open_ : Pool.t -> root:int -> t
val root_off : t -> int
val pool : t -> Pool.t

val insert : ?bug:bug -> t -> key:int64 -> value:bytes -> unit
val lookup : t -> key:int64 -> bytes option
val cardinal : t -> int

val iter : t -> (int64 -> bytes -> unit) -> unit
(** In increasing key order. *)

val height : t -> int

val check_consistent : t -> (unit, string) result
(** Invariants: sorted keys, per-node occupancy bounds, uniform leaf
    depth, reachable-entry count equals the stored count. *)
