(* Crit-bit tree over 64-bit keys, mirroring PMDK's ctree_map example.

   Node layout (one cache line each):
     leaf:     [0]=1  [8]=key       [16]=val_off  [24]=val_len
     internal: [0]=0  [8]=diff_bit  [16]=child0   [24]=child1

   Root object: [0]=root node offset, [8]=count.

   Invariant: along any root-to-leaf path the tested bit positions
   strictly decrease (most significant difference first), so descent by
   bit gives lexicographic (unsigned) key order. *)

type t = { pool : Pool.t; root : int }

type bug = Skip_log_root | Skip_log_leaf | Duplicate_log | No_tx

let node_size = 32
let pool t = t.pool
let root_off t = t.root

let create pool =
  let root = Pool.alloc pool 16 in
  Pool.set_root pool root;
  { pool; root }

let open_ pool ~root = { pool; root }

let load_root_node t = Pool.load_int t.pool ~off:t.root
let load_count t = Pool.load_int t.pool ~off:(t.root + 8)
let cardinal = load_count

let is_leaf t off = Pool.load_int t.pool ~off = 1
let leaf_key t off = Pool.load_i64 t.pool ~off:(off + 8)
let node_diff_bit t off = Pool.load_int t.pool ~off:(off + 8)
let child t off dir = Pool.load_int t.pool ~off:(off + 16 + (8 * dir))
let direction key bit = Int64.to_int (Int64.logand (Int64.shift_right_logical key bit) 1L)

(* Position of the most significant differing bit. *)
let diff_bit a b =
  let x = Int64.logxor a b in
  let rec scan i = if i < 0 then -1 else if direction x i = 1 then i else scan (i - 1) in
  scan 63

let log_count ?bug t =
  if bug <> Some No_tx then Pool.tx_add_once ~line:100 t.pool ~off:(t.root + 8) ~size:8

let bump_count ?bug t delta =
  log_count ?bug t;
  Pool.store_int ~line:101 t.pool ~off:(t.root + 8) (load_count t + delta)

let new_leaf t ~key ~value =
  let off = Pool.alloc t.pool node_size in
  Pool.store_int ~line:110 t.pool ~off 1;
  Pool.store_i64 ~line:111 t.pool ~off:(off + 8) key;
  let voff = Value_block.write t.pool value in
  Pool.store_int ~line:112 t.pool ~off:(off + 16) voff;
  Pool.store_int ~line:113 t.pool ~off:(off + 24) (Bytes.length value);
  off

(* Find the leaf that shares the longest prefix with [key]. *)
let rec closest_leaf t off key =
  if is_leaf t off then off else closest_leaf t (child t off (direction key (node_diff_bit t off))) key

let update_leaf_value ?bug t leaf ~value =
  if bug <> Some Skip_log_leaf && bug <> Some No_tx then Pool.tx_add_once ~line:120 t.pool ~off:(leaf + 16) ~size:16;
  let old_off = Pool.load_int t.pool ~off:(leaf + 16) in
  let old_len = Pool.load_int t.pool ~off:(leaf + 24) in
  let voff = Value_block.write t.pool value in
  Pool.store_int ~line:121 t.pool ~off:(leaf + 16) voff;
  Pool.store_int ~line:122 t.pool ~off:(leaf + 24) (Bytes.length value);
  Value_block.free t.pool ~off:old_off ~len:old_len

let insert_new ?bug t ~key ~value =
  let root_node = load_root_node t in
  if root_node = 0 then begin
    let leaf = new_leaf t ~key ~value in
    if bug <> Some Skip_log_root && bug <> Some No_tx then Pool.tx_add_once ~line:130 t.pool ~off:t.root ~size:8;
    if bug = Some Duplicate_log then Pool.tx_add ~line:131 t.pool ~off:t.root ~size:8;
    Pool.store_int ~line:132 t.pool ~off:t.root leaf;
    bump_count ?bug t 1
  end
  else begin
    let near = closest_leaf t root_node key in
    let bit = diff_bit (leaf_key t near) key in
    assert (bit >= 0);
    (* Walk down again until the next node tests a less significant bit
       than the new difference: that slot is the insertion point. *)
    let slot = ref t.root in
    let cur = ref root_node in
    while (not (is_leaf t !cur)) && node_diff_bit t !cur > bit do
      let dir = direction key (node_diff_bit t !cur) in
      slot := !cur + 16 + (8 * dir);
      cur := child t !cur dir
    done;
    let leaf = new_leaf t ~key ~value in
    let internal = Pool.alloc t.pool node_size in
    Pool.store_int ~line:140 t.pool ~off:internal 0;
    Pool.store_int ~line:141 t.pool ~off:(internal + 8) bit;
    let dir = direction key bit in
    Pool.store_int ~line:142 t.pool ~off:(internal + 16 + (8 * dir)) leaf;
    Pool.store_int ~line:143 t.pool ~off:(internal + 16 + (8 * (1 - dir))) !cur;
    if bug <> Some Skip_log_root && bug <> Some No_tx then Pool.tx_add_once ~line:144 t.pool ~off:!slot ~size:8;
    if bug = Some Duplicate_log then Pool.tx_add ~line:145 t.pool ~off:!slot ~size:8;
    Pool.store_int ~line:146 t.pool ~off:!slot internal;
    bump_count ?bug t 1
  end

let insert ?bug t ~key ~value =
  let body () =
    let root_node = load_root_node t in
    if root_node <> 0 then begin
      let near = closest_leaf t root_node key in
      if leaf_key t near = key then update_leaf_value ?bug t near ~value
      else insert_new ?bug t ~key ~value
    end
    else insert_new ?bug t ~key ~value
  in
  if bug = Some No_tx then body () else Pool.tx t.pool body

let lookup t ~key =
  let root_node = load_root_node t in
  if root_node = 0 then None
  else
    let leaf = closest_leaf t root_node key in
    if leaf_key t leaf = key then
      let off = Pool.load_int t.pool ~off:(leaf + 16) in
      let len = Pool.load_int t.pool ~off:(leaf + 24) in
      Some (Value_block.read t.pool ~off ~len)
    else None

let free_leaf t leaf =
  let voff = Pool.load_int t.pool ~off:(leaf + 16) in
  let vlen = Pool.load_int t.pool ~off:(leaf + 24) in
  Value_block.free t.pool ~off:voff ~len:vlen;
  Pool.free t.pool ~off:leaf ~size:node_size

let remove t ~key =
  let root_node = load_root_node t in
  if root_node = 0 then false
  else begin
    (* Track the leaf, its parent and the slot pointing at the parent. *)
    let parent_slot = ref t.root in
    let parent = ref 0 in
    let slot = ref t.root in
    let cur = ref root_node in
    while not (is_leaf t !cur) do
      let dir = direction key (node_diff_bit t !cur) in
      parent_slot := !slot;
      parent := !cur;
      slot := !cur + 16 + (8 * dir);
      cur := child t !cur dir
    done;
    if leaf_key t !cur <> key then false
    else begin
      Pool.tx t.pool (fun () ->
          if !parent = 0 then begin
            (* The leaf is the root. *)
            Pool.tx_add_once ~line:160 t.pool ~off:t.root ~size:8;
            Pool.store_int ~line:161 t.pool ~off:t.root 0
          end
          else begin
            (* Replace the parent with the leaf's sibling. *)
            let dir_taken = if child t !parent 0 = !cur then 0 else 1 in
            let sibling = child t !parent (1 - dir_taken) in
            Pool.tx_add_once ~line:162 t.pool ~off:!parent_slot ~size:8;
            Pool.store_int ~line:163 t.pool ~off:!parent_slot sibling;
            Pool.free t.pool ~off:!parent ~size:node_size
          end;
          free_leaf t !cur;
          bump_count t (-1));
      true
    end
  end

let iter t f =
  let rec go off =
    if off <> 0 then
      if is_leaf t off then
        let voff = Pool.load_int t.pool ~off:(off + 16) in
        let vlen = Pool.load_int t.pool ~off:(off + 24) in
        f (leaf_key t off) (Value_block.read t.pool ~off:voff ~len:vlen)
      else begin
        go (child t off 0);
        go (child t off 1)
      end
  in
  go (load_root_node t)

let check_consistent t =
  let heap = Pool.heap_start t.pool in
  let size = Pmtest_pmem.Machine.size (Pool.machine t.pool) in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let leaves = ref 0 in
  let rec go off parent_bit =
    if off < heap || off >= size then err "node offset 0x%x outside heap" off
    else if is_leaf t off then begin
      incr leaves;
      let vlen = Pool.load_int t.pool ~off:(off + 24) in
      let voff = Pool.load_int t.pool ~off:(off + 16) in
      if vlen < 0 || (vlen > 0 && (voff < heap || voff + vlen > size)) then
        err "leaf 0x%x has bad value block (0x%x,+%d)" off voff vlen
    end
    else begin
      let bit = node_diff_bit t off in
      if bit < 0 || bit > 63 then err "internal 0x%x has bad bit %d" off bit;
      if bit >= parent_bit then err "internal 0x%x bit %d not below parent bit %d" off bit parent_bit;
      let c0 = child t off 0 and c1 = child t off 1 in
      if c0 = 0 || c1 = 0 then err "internal 0x%x has a null child" off
      else begin
        go c0 bit;
        go c1 bit
      end
    end
  in
  let root_node = load_root_node t in
  if root_node <> 0 then go root_node 64;
  if !leaves <> load_count t then
    err "count mismatch: %d leaves reachable, count says %d" !leaves (load_count t);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
