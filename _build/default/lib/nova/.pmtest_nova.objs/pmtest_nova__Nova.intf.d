lib/nova/nova.mli: Pmtest_pmem Pmtest_trace Sink
