lib/nova/nova.ml: Bytes Format Hashtbl Int64 List Pmtest_pmem Pmtest_trace String
