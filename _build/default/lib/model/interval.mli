(** Persist intervals (paper §3.1).

    Execution is divided into {e epochs} separated by ordering points
    (sfence under x86; ofence/dfence under HOPS); a global timestamp
    increments at each such point. A persist interval [(E1, E2)] says the
    corresponding write may become durable at any time between epoch [E1]
    and epoch [E2]; [E2 = ∞] means nothing in the trace ever guarantees the
    write persists. *)

type bound = Fin of int | Inf

type t = private { lo : int; hi : bound }
(** Invariant: when [hi = Fin e], [e > lo]. *)

val make_open : int -> t
(** [make_open e] is [(e, ∞)]: a write issued in epoch [e]. *)

val make : lo:int -> hi:int -> t
(** Closed interval [(lo, hi)]; requires [hi > lo]. *)

val close : t -> int -> t
(** [close t e] sets the upper bound to [Fin e] (requires [e > t.lo]).
    Closing an already-closed interval keeps the earlier bound: the first
    enforcement is the binding one. *)

val is_open : t -> bool

val ends_by : t -> int -> bool
(** [ends_by t now]: the write is guaranteed durable once the global
    timestamp has reached [now] — i.e. [t.hi = Fin e] with [e <= now].
    This is the [isPersist] checking rule. *)

val overlaps : t -> t -> bool
(** Whether the two intervals admit either persist order — the x86
    [isOrderedBefore] rule fails iff the intervals overlap. Adjacent
    intervals ((1,2) and (2,∞)) do {e not} overlap. *)

val ordered_before : t -> t -> bool
(** x86 rule: [a] is guaranteed to persist before [b] iff [a] ends no later
    than [b] starts. *)

val starts_before : t -> t -> bool
(** HOPS rule (§5.2): under HOPS, fences already enforce the persist order,
    so [a] before [b] iff [a] starts in a strictly earlier epoch than [b]
    — two writes in the same epoch are unordered. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
