(** Memory persistency models and their low-level PM operations.

    A persistency model defines which primitives a program uses to enforce
    durability and ordering and how epochs advance (paper §2.1, §5.2):

    - {b X86}: [clwb addr size] initiates a cache-line writeback;
      [sfence] orders — every preceding [clwb] is complete (hence the
      written-back data durable) before anything after the fence.
    - {b HOPS}: the lightweight [ofence] orders persists without forcing
      them to complete; the heavyweight [dfence] additionally stalls until
      all preceding writes are durable. No explicit writeback exists —
      ordering and durability are decoupled fence properties.
    - {b eADR}: extended asynchronous DRAM refresh — the caches themselves
      are within the persistence domain, so a store is durable the moment
      it executes and persists in program order. Writebacks are never
      needed (a [clwb] is pure overhead the performance checker flags);
      [sfence] is accepted as an ordering no-op. *)

type kind = X86 | Hops | Eadr

type op =
  | Write of { addr : int; size : int }
      (** A store to persistent memory; [size] in bytes. *)
  | Clwb of { addr : int; size : int }
      (** Cache-line writeback of the range (x86). *)
  | Sfence  (** Store fence: completes preceding writebacks (x86). *)
  | Ofence  (** Ordering fence (HOPS). *)
  | Dfence  (** Durability fence (HOPS). *)

val kind_name : kind -> string
val kind_of_string : string -> kind option

val valid_op : kind -> op -> bool
(** Whether the operation belongs to the model's ISA: [Write] is valid
    everywhere; [Clwb]/[Sfence] only under X86; [Ofence]/[Dfence] only
    under HOPS. *)

val is_fence : op -> bool
(** [Sfence], [Ofence] and [Dfence] advance the global timestamp. *)

val op_range : op -> (int * int) option
(** [(addr, size)] for range-carrying operations. *)

val pp_op : Format.formatter -> op -> unit

val cache_line : int
(** Cache-line size used throughout the simulation (64 bytes). *)

val line_of_addr : int -> int
(** [line_of_addr a] is [a / cache_line]. *)

val line_span : addr:int -> size:int -> int * int
(** [(first, last)] cache-line indices touched by the byte range. *)
