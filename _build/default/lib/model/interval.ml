type bound = Fin of int | Inf
type t = { lo : int; hi : bound }

let make_open lo = { lo; hi = Inf }

let make ~lo ~hi =
  if hi <= lo then invalid_arg "Interval.make: hi must exceed lo";
  { lo; hi = Fin hi }

let close t e =
  match t.hi with
  | Fin _ -> t
  | Inf ->
    if e <= t.lo then invalid_arg "Interval.close: bound must exceed lo";
    { t with hi = Fin e }

let is_open t = t.hi = Inf

let ends_by t now = match t.hi with Fin e -> e <= now | Inf -> false

(* Intervals are open at both ends in the paper's notation: (E1, E2) and
   (E2, E3) share only the instant E2 and therefore do not overlap. *)
let overlaps a b =
  let lt_bound lo hi = match hi with Inf -> true | Fin e -> lo < e in
  lt_bound a.lo b.hi && lt_bound b.lo a.hi

let ordered_before a b = match a.hi with Fin e -> e <= b.lo | Inf -> false
let starts_before a b = a.lo < b.lo

let pp ppf t =
  match t.hi with
  | Fin e -> Format.fprintf ppf "(%d,%d)" t.lo e
  | Inf -> Format.fprintf ppf "(%d,inf)" t.lo

let equal a b = a.lo = b.lo && a.hi = b.hi
