lib/model/interval.ml: Format
