lib/model/model.mli: Format
