lib/model/model.ml: Format
