module Machine = Pmtest_pmem.Machine
module Instr = Pmtest_pmem.Instr
module Access = Pmtest_pmem.Access
module Event = Pmtest_trace.Event

let source_file = "apps/pqueue.c"
let magic = 0x50515545_55450001L

(* Header: [0]=magic [8]=head (offset of first node, 0 = empty).
   Node (64 B block): [0]=value [8]=next. *)
let off_head = 8
let header_size = 64
let node_size = 64

type bug = Skip_node_persist | Skip_link_persist | Skip_head_persist_on_dequeue

type t = {
  instr : Instr.t;
  mutable tail : int; (* volatile: last node, rebuilt on recovery *)
  mutable length : int; (* volatile *)
  mutable alloc_top : int; (* volatile bump pointer *)
  mutable bug : bug option;
}

let machine t = Instr.machine t.instr
let set_bug t b = t.bug <- b

let create ?(track_versions = false) ?(size = 1 lsl 20) ~sink () =
  let machine = Machine.create ~track_versions ~size () in
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let t = { instr; tail = 0; length = 0; alloc_top = header_size; bug = None } in
  Instr.store_i64 instr ~line:10 ~addr:0 magic;
  Instr.store_i64 instr ~line:11 ~addr:off_head 0L;
  Instr.persist_barrier instr ~line:12 ~addr:0 ~size:16;
  t

let head t = Access.get_int (machine t) off_head
let node_value t n = Instr.load_i64 t.instr ~addr:n
let node_next t n = Instr.load_int t.instr ~addr:(n + 8)

let walk t f =
  let rec go n steps acc =
    if n = 0 || steps > 1_000_000 then acc else go (node_next t n) (steps + 1) (f acc n)
  in
  go (head t) 0

let of_machine ~machine ~sink =
  if Access.get_i64 machine 0 <> magic then invalid_arg "Pqueue.of_machine: bad magic";
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let t = { instr; tail = 0; length = 0; alloc_top = header_size; bug = None } in
  (* Rebuild the volatile tail, length and a safe bump pointer. *)
  let length, tail, top =
    walk t
      (fun (n, _, top) node -> (n + 1, node, max top (node + node_size)))
      (0, 0, header_size)
  in
  t.length <- length;
  t.tail <- tail;
  t.alloc_top <- top;
  t

let alloc t =
  if t.alloc_top + node_size > Machine.size (machine t) then raise Out_of_memory;
  let n = t.alloc_top in
  t.alloc_top <- t.alloc_top + node_size;
  n

let enqueue t value =
  let node = alloc t in
  Instr.store_i64 t.instr ~line:20 ~addr:node value;
  Instr.store_i64 t.instr ~line:21 ~addr:(node + 8) 0L;
  (* The node must be durable before anything points at it. *)
  if t.bug <> Some Skip_node_persist then
    Instr.persist_barrier t.instr ~line:22 ~addr:node ~size:16;
  let link_slot = if t.tail = 0 then off_head else t.tail + 8 in
  Instr.store_i64 t.instr ~line:23 ~addr:link_slot (Int64.of_int node);
  if t.bug <> Some Skip_link_persist then
    Instr.persist_barrier t.instr ~line:24 ~addr:link_slot ~size:8;
  Instr.checker t.instr ~line:25
    Event.(Is_ordered_before { a_addr = node; a_size = 16; b_addr = link_slot; b_size = 8 });
  Instr.checker t.instr ~line:26 Event.(Is_persist { addr = link_slot; size = 8 });
  t.tail <- node;
  t.length <- t.length + 1

let peek t =
  let h = head t in
  if h = 0 then None else Some (node_value t h)

let dequeue t =
  let h = head t in
  if h = 0 then None
  else begin
    let v = node_value t h in
    let next = node_next t h in
    Instr.store_i64 t.instr ~line:30 ~addr:off_head (Int64.of_int next);
    if t.bug <> Some Skip_head_persist_on_dequeue then
      Instr.persist_barrier t.instr ~line:31 ~addr:off_head ~size:8;
    Instr.checker t.instr ~line:32 Event.(Is_persist { addr = off_head; size = 8 });
    if next = 0 then t.tail <- 0;
    t.length <- t.length - 1;
    Some v
  end

let length t = t.length
let to_list t = List.rev (walk t (fun acc n -> node_value t n :: acc) [])

let check_consistent t =
  let size = Machine.size (machine t) in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let rec go n steps =
    if steps > 100_000 then err "cycle suspected"
    else if n <> 0 then
      if n < header_size || n + node_size > size then err "node 0x%x out of bounds" n
      else go (node_next t n) (steps + 1)
  in
  go (head t) 0;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
