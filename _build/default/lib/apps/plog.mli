(** A persistent append-only log (write-ahead-log shape) on low-level
    primitives — the second custom-CCS example.

    Records are framed as {b len | checksum | payload}; an append writes
    and persists the frame {e before} persisting the new committed length
    in the header. Recovery trusts only the committed length and verifies
    each frame's checksum, so a crash can truncate the log but never
    corrupt it — unless one of the {!bug} switches removes a persist. *)

open Pmtest_trace
module Machine = Pmtest_pmem.Machine

type t

type bug =
  | Skip_record_persist  (** Committed length may outrun the record. *)
  | Skip_length_persist  (** Appends may vanish after a crash. *)
  | Length_before_record  (** The length is persisted first (misplaced order). *)

val source_file : string

val create : ?track_versions:bool -> ?size:int -> sink:Sink.t -> unit -> t
val of_machine : machine:Machine.t -> sink:Sink.t -> t

val machine : t -> Machine.t
val set_bug : t -> bug option -> unit

val append : t -> string -> unit
(** Raises [Out_of_memory] if the log area is exhausted. *)

val records : t -> string list
(** Committed records, oldest first. *)

val committed_bytes : t -> int

val check_consistent : t -> (unit, string) result
(** Every frame within the committed length parses, checksums match, and
    the committed length lands exactly on a frame boundary. *)
