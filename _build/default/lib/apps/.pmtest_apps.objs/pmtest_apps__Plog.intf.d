lib/apps/plog.mli: Pmtest_pmem Pmtest_trace Sink
