lib/apps/nvtree.mli: Pmtest_pmem Pmtest_trace Sink
