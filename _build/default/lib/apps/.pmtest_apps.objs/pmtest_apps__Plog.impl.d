lib/apps/plog.ml: Bytes Char Int64 List Pmtest_pmem Pmtest_trace Printf String
