lib/apps/pqueue.ml: Format Int64 List Pmtest_pmem Pmtest_trace String
