lib/apps/nvtree.ml: Format Hashtbl Int64 List Option Pmtest_pmem Pmtest_trace String
