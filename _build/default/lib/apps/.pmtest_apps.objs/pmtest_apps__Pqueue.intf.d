lib/apps/pqueue.mli: Pmtest_pmem Pmtest_trace Sink
