(** An NV-Tree-style hybrid map (Yang et al., FAST'15): {e selective
    persistence}. Only the leaf nodes live in PM — each an append-only
    run of (key, value, op) entries — while the search index above them
    is ordinary volatile memory, rebuilt by scanning the leaf chain on
    recovery. This trades recovery time for very cheap inserts: one entry
    append plus one counter bump, each persisted, per update.

    Persistence protocol per insert: the entry slot is written and
    persisted {e before} the leaf's entry count is bumped and persisted —
    the count is the commit point, so a crash can never expose a torn
    entry. Leaf splits build the replacement leaves completely (and
    persist them) before swinging the predecessor's next pointer.

    Bug switches remove the individual persists, giving the classic
    commit-point-before-data bugs for the checkers and the crash-injection
    harness to find. *)

open Pmtest_trace
module Machine = Pmtest_pmem.Machine

type t

type bug =
  | Skip_entry_persist  (** Count may cover a torn entry. *)
  | Skip_count_persist  (** Committed inserts may vanish. *)
  | Skip_split_link_persist  (** A split's chain relink may be lost. *)

val source_file : string

val create : ?track_versions:bool -> ?size:int -> sink:Sink.t -> unit -> t
val of_machine : machine:Machine.t -> sink:Sink.t -> t
(** Rebuilds the volatile index by walking the persistent leaf chain. *)

val machine : t -> Machine.t
val set_bug : t -> bug option -> unit

val insert : t -> key:int64 -> value:int64 -> unit
val remove : t -> key:int64 -> unit
(** Appends a tombstone; absent keys are fine. *)

val lookup : t -> key:int64 -> int64 option
val cardinal : t -> int
val to_alist : t -> (int64 * int64) list
(** Live bindings in increasing key order. *)

val leaf_count : t -> int

val check_consistent : t -> (unit, string) result
(** Leaf chain is acyclic and in-bounds, entry counts are within
    capacity, and chain order matches key order. *)
