(** A persistent linked queue built directly on low-level primitives —
    the paper's third CCS category (custom applications; cf. the
    persistent lock-free queue of Friedman et al., PPoPP'18, simplified
    to a single mutator).

    Protocol: a node is fully written and persisted {e before} the
    predecessor's next pointer (or the head, for an empty queue) is
    linked to it and persisted. Dequeue advances the persistent head.
    The tail is volatile runtime state, recovered by walking from the
    head — so a crash can never expose a dangling tail.

    Every mutation self-annotates with the low-level checkers; the bug
    switches remove individual persists to generate the classic
    publish-before-persist bugs. *)

open Pmtest_trace
module Machine = Pmtest_pmem.Machine

type t

type bug =
  | Skip_node_persist  (** Node linked before its contents are durable. *)
  | Skip_link_persist  (** The link itself is never persisted. *)
  | Skip_head_persist_on_dequeue  (** Dequeue's head advance not persisted. *)

val source_file : string

val create : ?track_versions:bool -> ?size:int -> sink:Sink.t -> unit -> t
val of_machine : machine:Machine.t -> sink:Sink.t -> t
(** Reopen after a crash: the volatile tail is rebuilt by walking the
    persistent list. *)

val machine : t -> Machine.t
val set_bug : t -> bug option -> unit

val enqueue : t -> int64 -> unit
val dequeue : t -> int64 option
val peek : t -> int64 option
val length : t -> int
val to_list : t -> int64 list

val check_consistent : t -> (unit, string) result
(** The list from the persistent head is acyclic, within bounds, and its
    length matches the persistent count. *)
