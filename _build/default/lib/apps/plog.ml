module Machine = Pmtest_pmem.Machine
module Instr = Pmtest_pmem.Instr
module Access = Pmtest_pmem.Access
module Event = Pmtest_trace.Event

let source_file = "apps/plog.c"
let magic = 0x504C4F47_4F430001L

(* Header (64 B): [0]=magic [8]=committed length (bytes of frames).
   Frames from [data_base]: {len(8) | checksum(8) | payload (8-aligned)}. *)
let off_committed = 8
let data_base = 64
let frame_header = 16

type bug = Skip_record_persist | Skip_length_persist | Length_before_record

type t = { instr : Instr.t; mutable bug : bug option }

let machine t = Instr.machine t.instr
let set_bug t b = t.bug <- b
let align8 n = (n + 7) land lnot 7

(* FNV-1a, enough to catch torn frames. *)
let checksum s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  !h

let create ?(track_versions = false) ?(size = 1 lsl 20) ~sink () =
  let machine = Machine.create ~track_versions ~size () in
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let t = { instr; bug = None } in
  Instr.store_i64 instr ~line:10 ~addr:0 magic;
  Instr.store_i64 instr ~line:11 ~addr:off_committed 0L;
  Instr.persist_barrier instr ~line:12 ~addr:0 ~size:16;
  t

let of_machine ~machine ~sink =
  if Access.get_i64 machine 0 <> magic then invalid_arg "Plog.of_machine: bad magic";
  { instr = Instr.make ~machine ~sink ~file:source_file; bug = None }

let committed_bytes t = Access.get_int (machine t) off_committed

let append t payload =
  let len = String.length payload in
  let frame = frame_header + align8 (max len 1) in
  let pos = data_base + committed_bytes t in
  if pos + frame > Machine.size (machine t) then raise Out_of_memory;
  let persist_length () =
    Instr.store_i64 t.instr ~line:20 ~addr:off_committed
      (Int64.of_int (committed_bytes t + frame));
    if t.bug <> Some Skip_length_persist then
      Instr.persist_barrier t.instr ~line:21 ~addr:off_committed ~size:8
  in
  (* The misplaced variant publishes the new length before the frame is
     even written. *)
  if t.bug = Some Length_before_record then persist_length ();
  Instr.store_i64 t.instr ~line:22 ~addr:pos (Int64.of_int len);
  Instr.store_i64 t.instr ~line:23 ~addr:(pos + 8) (checksum payload);
  if len > 0 then
    Instr.store_bytes t.instr ~line:24 ~addr:(pos + frame_header) (Bytes.of_string payload);
  if t.bug <> Some Skip_record_persist then
    Instr.persist_barrier t.instr ~line:25 ~addr:pos ~size:frame;
  if t.bug <> Some Length_before_record then persist_length ();
  (* The frame must be durable before the committed length covers it. *)
  Instr.checker t.instr ~line:26
    Event.(Is_ordered_before { a_addr = pos; a_size = frame; b_addr = off_committed; b_size = 8 });
  Instr.checker t.instr ~line:27 Event.(Is_persist { addr = off_committed; size = 8 })

let fold_frames t f acc =
  let committed = committed_bytes t in
  let rec go pos acc =
    if pos >= data_base + committed then Ok acc
    else
      let len = Instr.load_int t.instr ~addr:pos in
      let stored_sum = Instr.load_i64 t.instr ~addr:(pos + 8) in
      if len < 0 || pos + frame_header + len > data_base + committed then
        Error (Printf.sprintf "frame at 0x%x overruns the committed length" pos)
      else
        let payload =
          if len = 0 then "" else Bytes.to_string (Instr.load_bytes t.instr ~addr:(pos + frame_header) ~len)
        in
        if checksum payload <> stored_sum then
          Error (Printf.sprintf "checksum mismatch at 0x%x" pos)
        else go (pos + frame_header + align8 (max len 1)) (f acc payload)
  in
  go data_base acc

let records t =
  match fold_frames t (fun acc p -> p :: acc) [] with
  | Ok acc -> List.rev acc
  | Error _ -> []

let check_consistent t =
  match fold_frames t (fun () _ -> ()) () with Ok () -> Ok () | Error e -> Error e
