module Machine = Pmtest_pmem.Machine
module Instr = Pmtest_pmem.Instr
module Access = Pmtest_pmem.Access
module Event = Pmtest_trace.Event

let source_file = "apps/nvtree.c"
let magic = 0x4E565452_45450001L

(* Header (64 B): [0]=magic [8]=head leaf offset.
   Leaf: [0]=separator (lower key bound, min_int for the first leaf)
         [8]=next leaf offset  [16]=entry count
         [24..]=entries of {key(8) value(8) op(8)}; op 1 = put, 2 = del.
   Entries are append-only; the count bump is the commit point. *)
let off_head = 8
let header_size = 64
let cap = 16
let entry_size = 24
let leaf_meta = 24
let leaf_size = 448 (* 24 + 16*24 = 408, rounded to cache lines *)

type bug = Skip_entry_persist | Skip_count_persist | Skip_split_link_persist

type t = {
  instr : Instr.t;
  (* Volatile router: (separator, leaf offset), separators strictly
     decreasing so the first entry with sep <= key owns the key. *)
  mutable index : (int64 * int) list;
  mutable alloc_top : int;
  mutable bug : bug option;
}

let machine t = Instr.machine t.instr
let set_bug t b = t.bug <- b

let leaf_sep t l = Instr.load_i64 t.instr ~addr:l
let leaf_next t l = Instr.load_int t.instr ~addr:(l + 8)
let leaf_entries t l = Instr.load_int t.instr ~addr:(l + 16)
let entry_off l i = l + leaf_meta + (i * entry_size)

let entry t l i =
  let e = entry_off l i in
  ( Instr.load_i64 t.instr ~addr:e,
    Instr.load_i64 t.instr ~addr:(e + 8),
    Instr.load_int t.instr ~addr:(e + 16) )

let head t = Access.get_int (machine t) off_head

let rebuild_index t =
  let rec walk l acc =
    if l = 0 then acc else walk (leaf_next t l) ((leaf_sep t l, l) :: acc)
  in
  (* walk accumulates in reverse chain order = decreasing separators. *)
  t.index <- walk (head t) []

let create ?(track_versions = false) ?(size = 1 lsl 20) ~sink () =
  let machine = Machine.create ~track_versions ~size () in
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let t = { instr; index = []; alloc_top = header_size; bug = None } in
  Instr.store_i64 instr ~line:10 ~addr:0 magic;
  Instr.store_i64 instr ~line:11 ~addr:off_head 0L;
  Instr.persist_barrier instr ~line:12 ~addr:0 ~size:16;
  t

let of_machine ~machine ~sink =
  if Access.get_i64 machine 0 <> magic then invalid_arg "Nvtree.of_machine: bad magic";
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let t = { instr; index = []; alloc_top = header_size; bug = None } in
  rebuild_index t;
  (* Conservative bump pointer: past every reachable leaf. *)
  t.alloc_top <-
    List.fold_left (fun top (_, l) -> max top (l + leaf_size)) header_size t.index;
  t

let alloc_leaf t =
  if t.alloc_top + leaf_size > Machine.size (machine t) then raise Out_of_memory;
  let l = t.alloc_top in
  t.alloc_top <- t.alloc_top + leaf_size;
  l

(* Build a fresh leaf with the given bindings (as puts), fully persisted.
   Returns its offset. *)
let build_leaf t ~sep ~next bindings =
  let l = alloc_leaf t in
  Instr.store_i64 t.instr ~line:20 ~addr:l sep;
  Instr.store_i64 t.instr ~line:21 ~addr:(l + 8) (Int64.of_int next);
  Instr.store_i64 t.instr ~line:22 ~addr:(l + 16) (Int64.of_int (List.length bindings));
  List.iteri
    (fun i (k, v) ->
      let e = entry_off l i in
      Instr.store_i64 t.instr ~line:23 ~addr:e k;
      Instr.store_i64 t.instr ~line:24 ~addr:(e + 8) v;
      Instr.store_i64 t.instr ~line:25 ~addr:(e + 16) 1L)
    bindings;
  Instr.persist_barrier t.instr ~line:26 ~addr:l ~size:(leaf_meta + (List.length bindings * entry_size));
  l

let leaf_for t key =
  let rec find = function
    | [] -> None
    | (sep, l) :: rest -> if key >= sep then Some l else find rest
  in
  match find t.index with
  | Some l -> Some l
  | None -> ( match List.rev t.index with (_, l) :: _ -> Some l | [] -> None)

(* Last-write-wins compaction of a leaf's committed entries. *)
let compact t l =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  for i = 0 to leaf_entries t l - 1 do
    let k, v, op = entry t l i in
    if not (Hashtbl.mem tbl k) then order := k :: !order;
    Hashtbl.replace tbl k (if op = 1 then Some v else None)
  done;
  List.sort compare
    (List.filter_map (fun k -> Option.map (fun v -> (k, v)) (Hashtbl.find tbl k)) !order)

let predecessor_leaf t l =
  let rec walk cur = if cur = 0 then None else if leaf_next t cur = l then Some cur else walk (leaf_next t cur) in
  walk (head t)

(* Swing the pointer that leads into [old_leaf] to [replacement]: the
   commit point of a split or compaction. *)
let swing_link t ~old_leaf ~replacement =
  let link_slot, line =
    match predecessor_leaf t old_leaf with Some p -> (p + 8, 31) | None -> (off_head, 32)
  in
  Instr.store_i64 t.instr ~line ~addr:link_slot (Int64.of_int replacement);
  if t.bug <> Some Skip_split_link_persist then
    Instr.persist_barrier t.instr ~line:33 ~addr:link_slot ~size:8;
  Instr.checker t.instr ~line:34
    Event.(
      Is_ordered_before { a_addr = replacement; a_size = leaf_meta; b_addr = link_slot; b_size = 8 });
  Instr.checker t.instr ~line:35 Event.(Is_persist { addr = link_slot; size = 8 });
  rebuild_index t

let split_leaf t l =
  let bindings = compact t l in
  let n = List.length bindings in
  let next = leaf_next t l in
  if n <= cap / 2 then
    (* Overwrites and tombstones shrank the leaf: compact in place (a
       fresh leaf with the same bounds) instead of splitting — an empty
       right half would break the separator order. *)
    swing_link t ~old_leaf:l ~replacement:(build_leaf t ~sep:(leaf_sep t l) ~next bindings)
  else begin
    let left_b = List.filteri (fun i _ -> i < (n + 1) / 2) bindings in
    let right_b = List.filteri (fun i _ -> i >= (n + 1) / 2) bindings in
    let right_sep = match right_b with (k, _) :: _ -> k | [] -> assert false in
    (* Build right first so left can point at it; both fully persisted
       before anything reachable references them. *)
    let right = build_leaf t ~sep:right_sep ~next right_b in
    let left = build_leaf t ~sep:(leaf_sep t l) ~next:right left_b in
    swing_link t ~old_leaf:l ~replacement:left
  end

let append t l ~key ~value ~op =
  let i = leaf_entries t l in
  let e = entry_off l i in
  Instr.store_i64 t.instr ~line:40 ~addr:e key;
  Instr.store_i64 t.instr ~line:41 ~addr:(e + 8) value;
  Instr.store_i64 t.instr ~line:42 ~addr:(e + 16) (Int64.of_int op);
  (* The entry must be durable before the count commits it. *)
  if t.bug <> Some Skip_entry_persist then
    Instr.persist_barrier t.instr ~line:43 ~addr:e ~size:entry_size;
  Instr.store_i64 t.instr ~line:44 ~addr:(l + 16) (Int64.of_int (i + 1));
  if t.bug <> Some Skip_count_persist then
    Instr.persist_barrier t.instr ~line:45 ~addr:(l + 16) ~size:8;
  Instr.checker t.instr ~line:46
    Event.(Is_ordered_before { a_addr = e; a_size = entry_size; b_addr = l + 16; b_size = 8 });
  Instr.checker t.instr ~line:47 Event.(Is_persist { addr = l + 16; size = 8 })

let rec update t ~key ~value ~op =
  match leaf_for t key with
  | None ->
    (* First leaf: owns the whole key space. *)
    let l = build_leaf t ~sep:Int64.min_int ~next:0 [] in
    Instr.store_i64 t.instr ~line:50 ~addr:off_head (Int64.of_int l);
    Instr.persist_barrier t.instr ~line:51 ~addr:off_head ~size:8;
    rebuild_index t;
    update t ~key ~value ~op
  | Some l ->
    if leaf_entries t l >= cap then begin
      split_leaf t l;
      update t ~key ~value ~op
    end
    else append t l ~key ~value ~op

let insert t ~key ~value = update t ~key ~value ~op:1
let remove t ~key = update t ~key ~value:0L ~op:2

let lookup t ~key =
  match leaf_for t key with
  | None -> None
  | Some l ->
    let rec scan i acc =
      if i >= leaf_entries t l then acc
      else
        let k, v, op = entry t l i in
        scan (i + 1) (if k = key then (if op = 1 then Some v else None) else acc)
    in
    scan 0 None

let fold_bindings t f acc =
  let rec walk l acc = if l = 0 then acc else walk (leaf_next t l) (List.fold_left f acc (compact t l)) in
  walk (head t) acc

let to_alist t = List.sort compare (fold_bindings t (fun acc kv -> kv :: acc) [])
let cardinal t = List.length (to_alist t)

let leaf_count_total t =
  let rec walk l n = if l = 0 then n else walk (leaf_next t l) (n + 1) in
  walk (head t) 0

let leaf_count = leaf_count_total

let check_consistent t =
  let size = Machine.size (machine t) in
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let rec walk l prev_sep steps =
    if steps > 100_000 then err "cycle suspected"
    else if l <> 0 then begin
      if l < header_size || l + leaf_size > size then err "leaf 0x%x out of bounds" l
      else begin
        let sep = leaf_sep t l in
        (match prev_sep with
        | Some p when sep <= p -> err "separators not increasing at 0x%x" l
        | _ -> ());
        let n = leaf_entries t l in
        if n < 0 || n > cap then err "leaf 0x%x has bad count %d" l n
        else
          for i = 0 to n - 1 do
            let k, _, op = entry t l i in
            if op <> 1 && op <> 2 then err "leaf 0x%x entry %d has bad op %d" l i op;
            if k < sep then err "leaf 0x%x entry %d key below separator" l i
          done;
        walk (leaf_next t l) (Some sep) (steps + 1)
      end
    end
  in
  walk (head t) None 0;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
