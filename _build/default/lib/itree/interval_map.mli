(** Disjoint interval map: a map from half-open integer ranges [\[lo, hi)]
    to values, where stored ranges never overlap.

    This is the shadow memory of the checking engine (paper §4.4): PM writes
    {e clear and replace} the status of the byte range they touch, so the
    natural shape is a set of disjoint intervals that get split at write
    boundaries. All operations are O(log n + k) where [k] is the number of
    stored intervals intersecting the query range. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool

val cardinal : 'a t -> int
(** Number of stored (maximal) intervals. *)

val set : 'a t -> lo:int -> hi:int -> 'a -> 'a t
(** [set t ~lo ~hi v] makes every address in [\[lo, hi)] map to [v],
    splitting any previously stored interval that straddles the boundary.
    Raises [Invalid_argument] if [lo >= hi]. *)

val clear : 'a t -> lo:int -> hi:int -> 'a t
(** [clear t ~lo ~hi] removes all bindings in [\[lo, hi)], keeping the
    fragments of straddling intervals that lie outside the range. *)

val find : 'a t -> int -> 'a option
(** [find t addr] is the value covering [addr], if any. *)

val overlapping : 'a t -> lo:int -> hi:int -> (int * int * 'a) list
(** All stored intervals intersecting [\[lo, hi)], clipped to the query
    range, in increasing address order. *)

val covered : 'a t -> lo:int -> hi:int -> bool
(** Whether every address in [\[lo, hi)] has a binding. *)

val covered_by : 'a t -> lo:int -> hi:int -> f:('a -> bool) -> bool
(** Whether every address in [\[lo, hi)] has a binding satisfying [f]. *)

val exists_overlap : 'a t -> lo:int -> hi:int -> f:('a -> bool) -> bool
(** Whether some stored interval intersecting [\[lo, hi)] satisfies [f]. *)

val update_range : 'a t -> lo:int -> hi:int -> f:('a option -> 'a option) -> 'a t
(** [update_range t ~lo ~hi ~f] rewrites the range: each covered sub-range
    with value [v] becomes [f (Some v)] (removed if [None]); each gap
    becomes [f None]. Straddling intervals are split at the boundaries. *)

val iter : (int -> int -> 'a -> unit) -> 'a t -> unit
(** Iterate over stored intervals as [(lo, hi, v)] in address order. *)

val fold : (int -> int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val to_list : 'a t -> (int * int * 'a) list

val equal : ('a -> 'a -> bool) -> 'a t -> 'a t -> bool
(** Structural equality on the {e denotation} (address-by-address), i.e.
    insensitive to how intervals are fragmented. *)
