module M = Map.Make (Int)

(* Keyed by interval start; each binding [lo -> (hi, v)] stands for the
   half-open range [lo, hi). Invariant: hi > lo and stored ranges are
   pairwise disjoint (adjacent ranges with equal values are NOT merged;
   [equal] compares denotations so fragmentation is unobservable). *)
type 'a t = (int * 'a) M.t

let empty = M.empty
let is_empty = M.is_empty
let cardinal = M.cardinal

let check_range name lo hi = if lo >= hi then invalid_arg ("Interval_map." ^ name ^ ": empty range")

(* All stored intervals intersecting [lo, hi), unclipped. *)
let raw_overlapping t ~lo ~hi =
  let start =
    match M.find_last_opt (fun k -> k <= lo) t with
    | Some (k, (h, _)) when h > lo -> k
    | _ -> lo
  in
  let seq = M.to_seq_from start t in
  let rec collect acc seq =
    match seq () with
    | Seq.Nil -> List.rev acc
    | Seq.Cons ((k, (h, v)), rest) ->
      if k >= hi then List.rev acc
      else if h <= lo then collect acc rest
      else collect ((k, h, v) :: acc) rest
  in
  collect [] seq

let clear t ~lo ~hi =
  check_range "clear" lo hi;
  let overlaps = raw_overlapping t ~lo ~hi in
  let t = List.fold_left (fun t (k, _, _) -> M.remove k t) t overlaps in
  List.fold_left
    (fun t (k, h, v) ->
      let t = if k < lo then M.add k (lo, v) t else t in
      if h > hi then M.add hi (h, v) t else t)
    t overlaps

let set t ~lo ~hi v =
  check_range "set" lo hi;
  M.add lo (hi, v) (clear t ~lo ~hi)

let find t addr =
  match M.find_last_opt (fun k -> k <= addr) t with
  | Some (_, (h, v)) when h > addr -> Some v
  | _ -> None

let overlapping t ~lo ~hi =
  check_range "overlapping" lo hi;
  List.map (fun (k, h, v) -> (max k lo, min h hi, v)) (raw_overlapping t ~lo ~hi)

let covered_by t ~lo ~hi ~f =
  check_range "covered_by" lo hi;
  let rec walk cursor = function
    | [] -> cursor >= hi
    | (k, h, v) :: rest -> if k > cursor then false else if not (f v) then false else walk (max cursor h) rest
  in
  walk lo (overlapping t ~lo ~hi)

let covered t ~lo ~hi = covered_by t ~lo ~hi ~f:(fun _ -> true)

let exists_overlap t ~lo ~hi ~f =
  check_range "exists_overlap" lo hi;
  List.exists (fun (_, _, v) -> f v) (overlapping t ~lo ~hi)

let update_range t ~lo ~hi ~f =
  check_range "update_range" lo hi;
  let pieces = overlapping t ~lo ~hi in
  (* Gaps between covered pieces, in order, so f None can fill them. *)
  let rec segments cursor = function
    | [] -> if cursor < hi then [ (cursor, hi, None) ] else []
    | (k, h, v) :: rest ->
      let gap = if k > cursor then [ (cursor, k, None) ] else [] in
      gap @ ((k, h, Some v) :: segments h rest)
  in
  let t = clear t ~lo ~hi in
  List.fold_left
    (fun t (k, h, v) ->
      match f v with
      | None -> t
      | Some v' -> M.add k (h, v') t)
    t
    (segments lo pieces)

let iter f t = M.iter (fun k (h, v) -> f k h v) t
let fold f t acc = M.fold (fun k (h, v) acc -> f k h v acc) t acc
let to_list t = List.rev (fold (fun k h v acc -> (k, h, v) :: acc) t [])

(* Denotational equality: walk both interval lists in lockstep, comparing
   values over the refinement of both fragmentations. *)
let equal eq a b =
  let rec walk la lb =
    match (la, lb) with
    | [], [] -> true
    | [], _ :: _ | _ :: _, [] -> false
    | (ka, ha, va) :: ra, (kb, hb, vb) :: rb ->
      if ka <> kb || not (eq va vb) then false
      else if ha = hb then walk ra rb
      else if ha < hb then walk ra ((ha, hb, vb) :: rb)
      else walk ((hb, ha, va) :: ra) rb
  in
  walk (to_list a) (to_list b)
