(* AVL tree ordered by (lo, hi); every node is augmented with [maxhi], the
   maximum interval endpoint in its subtree, which prunes overlap queries
   to O(log n + k). *)

type 'a t =
  | Leaf
  | Node of { l : 'a t; lo : int; hi : int; v : 'a; r : 'a t; h : int; maxhi : int }

let empty = Leaf
let is_empty t = t = Leaf

let height = function Leaf -> 0 | Node { h; _ } -> h
let maxhi = function Leaf -> min_int | Node { maxhi; _ } -> maxhi

let rec cardinal = function Leaf -> 0 | Node { l; r; _ } -> 1 + cardinal l + cardinal r

let node l lo hi v r =
  Node
    {
      l;
      lo;
      hi;
      v;
      r;
      h = 1 + max (height l) (height r);
      maxhi = max hi (max (maxhi l) (maxhi r));
    }

let balance_factor = function Leaf -> 0 | Node { l; r; _ } -> height l - height r

let rotate_left = function
  | Node { l; lo; hi; v; r = Node { l = rl; lo = rlo; hi = rhi; v = rv; r = rr; _ }; _ } ->
    node (node l lo hi v rl) rlo rhi rv rr
  | t -> t

let rotate_right = function
  | Node { l = Node { l = ll; lo = llo; hi = lhi; v = lv; r = lr; _ }; lo; hi; v; r; _ } ->
    node ll llo lhi lv (node lr lo hi v r)
  | t -> t

let rebalance t =
  match t with
  | Leaf -> t
  | Node { l; lo; hi; v; r; _ } ->
    let bf = balance_factor t in
    if bf > 1 then
      let l = if balance_factor l < 0 then rotate_left l else l in
      rotate_right (node l lo hi v r)
    else if bf < -1 then
      let r = if balance_factor r > 0 then rotate_right r else r in
      rotate_left (node l lo hi v r)
    else t

(* Ordering key: (lo, hi); values are not compared so equal ranges pile up
   deterministically in the right subtree. *)
let cmp_key alo ahi blo bhi =
  match Int.compare alo blo with 0 -> Int.compare ahi bhi | c -> c

let rec add t ~lo ~hi v =
  if lo >= hi then invalid_arg "Interval_tree.add: empty range";
  match t with
  | Leaf -> node Leaf lo hi v Leaf
  | Node n ->
    if cmp_key lo hi n.lo n.hi < 0 then rebalance (node (add n.l ~lo ~hi v) n.lo n.hi n.v n.r)
    else rebalance (node n.l n.lo n.hi n.v (add n.r ~lo ~hi v))

let rec min_node = function
  | Leaf -> invalid_arg "Interval_tree.min_node"
  | Node { l = Leaf; lo; hi; v; _ } -> (lo, hi, v)
  | Node { l; _ } -> min_node l

let rec remove_min = function
  | Leaf -> Leaf
  | Node { l = Leaf; r; _ } -> r
  | Node { l; lo; hi; v; r; _ } -> rebalance (node (remove_min l) lo hi v r)

(* Removal must cope with duplicate keys, which rotations may scatter on
   either side of an equal-key node, so a purely key-directed descent can
   miss the entry. Removal is rare (the engine only unregisters variables),
   so we afford a rebuild of the equal-key cluster: delete the leftmost
   structural match found by an inorder scan. *)
let rec remove_first_match t ~lo ~hi ~f =
  match t with
  | Leaf -> (Leaf, false)
  | Node n ->
    let c = cmp_key lo hi n.lo n.hi in
    if c < 0 then
      let l, removed = remove_first_match n.l ~lo ~hi ~f in
      if removed then (rebalance (node l n.lo n.hi n.v n.r), true) else (t, false)
    else if c > 0 then
      let r, removed = remove_first_match n.r ~lo ~hi ~f in
      if removed then (rebalance (node n.l n.lo n.hi n.v r), true) else (t, false)
    else
      (* Equal key: duplicates may sit in both subtrees. *)
      let l, removed = remove_first_match n.l ~lo ~hi ~f in
      if removed then (rebalance (node l n.lo n.hi n.v n.r), true)
      else if f n.v then
        match (n.l, n.r) with
        | Leaf, r -> (r, true)
        | l, Leaf -> (l, true)
        | l, r ->
          let slo, shi, sv = min_node r in
          (rebalance (node l slo shi sv (remove_min r)), true)
      else
        let r, removed = remove_first_match n.r ~lo ~hi ~f in
        if removed then (rebalance (node n.l n.lo n.hi n.v r), true) else (t, false)

let remove t ~lo ~hi ~f = fst (remove_first_match t ~lo ~hi ~f)

let overlaps alo ahi blo bhi = alo < bhi && blo < ahi

let overlapping t ~lo ~hi =
  if lo >= hi then invalid_arg "Interval_tree.overlapping: empty range";
  let rec go t acc =
    match t with
    | Leaf -> acc
    | Node n ->
      if maxhi t <= lo then acc
      else
        (* Keys in the right subtree start at or after n.lo: skip them when
           n.lo is already past the query. The left subtree may always hold
           overlaps (subject to its own maxhi prune). *)
        let acc = if n.lo < hi then go n.r acc else acc in
        let acc = if overlaps n.lo n.hi lo hi then (n.lo, n.hi, n.v) :: acc else acc in
        go n.l acc
  in
  go t []

let stab t addr = overlapping t ~lo:addr ~hi:(addr + 1)

(* Classic CLRS interval search: if the left subtree's max endpoint reaches
   past [lo] yet holds no overlap, no overlap exists anywhere. *)
let any_overlap t ~lo ~hi =
  if lo >= hi then invalid_arg "Interval_tree.any_overlap: empty range";
  let rec go = function
    | Leaf -> None
    | Node n ->
      if overlaps n.lo n.hi lo hi then Some (n.lo, n.hi, n.v)
      else if maxhi n.l > lo then go n.l
      else go n.r
  in
  go t

let covered t ~lo ~hi =
  let pieces = overlapping t ~lo ~hi in
  let pieces = List.sort (fun (a, _, _) (b, _, _) -> Int.compare a b) pieces in
  let rec walk cursor = function
    | [] -> cursor >= hi
    | (k, h, _) :: rest -> if k > cursor then false else walk (max cursor h) rest
  in
  walk lo pieces

let rec iter f = function
  | Leaf -> ()
  | Node { l; lo; hi; v; r; _ } ->
    iter f l;
    f lo hi v;
    iter f r

let rec fold f t acc =
  match t with
  | Leaf -> acc
  | Node { l; lo; hi; v; r; _ } -> fold f r (f lo hi v (fold f l acc))

let to_list t = List.rev (fold (fun lo hi v acc -> (lo, hi, v) :: acc) t [])

let rec check_invariants = function
  | Leaf -> true
  | Node { l; hi; r; h; maxhi = m; _ } as t ->
    abs (balance_factor t) <= 1
    && h = 1 + max (height l) (height r)
    && m = max hi (max (maxhi l) (maxhi r))
    && check_invariants l && check_invariants r
