(** Augmented interval tree over half-open integer ranges [\[lo, hi)],
    allowing {e overlapping} intervals (CLRS §14.3, on an AVL skeleton).

    The engine's log tree stores one entry per [TX_ADD] call — entries may
    overlap and each carries the source location of the call, which is what
    the duplicate-log performance checker reports. *)

type 'a t

val empty : 'a t
val is_empty : 'a t -> bool
val cardinal : 'a t -> int

val add : 'a t -> lo:int -> hi:int -> 'a -> 'a t
(** Insert an interval; duplicates (same range, same or different value)
    are kept as distinct entries. Raises [Invalid_argument] if [lo >= hi]. *)

val remove : 'a t -> lo:int -> hi:int -> f:('a -> bool) -> 'a t
(** Remove the first entry with exactly this range whose value satisfies
    [f]; returns the tree unchanged if there is none. *)

val stab : 'a t -> int -> (int * int * 'a) list
(** All intervals containing the given address. *)

val overlapping : 'a t -> lo:int -> hi:int -> (int * int * 'a) list
(** All intervals intersecting [\[lo, hi)], in increasing [lo] order. *)

val any_overlap : 'a t -> lo:int -> hi:int -> (int * int * 'a) option
(** Some intersecting interval, or [None]; O(log n). *)

val covered : 'a t -> lo:int -> hi:int -> bool
(** Whether the union of stored intervals covers all of [\[lo, hi)]. *)

val iter : (int -> int -> 'a -> unit) -> 'a t -> unit
val fold : (int -> int -> 'a -> 'acc -> 'acc) -> 'a t -> 'acc -> 'acc
val to_list : 'a t -> (int * int * 'a) list

val height : 'a t -> int
(** Tree height (exposed for the balance property tests). *)

val check_invariants : 'a t -> bool
(** AVL balance + max-endpoint augmentation are intact (for tests). *)
