lib/itree/interval_map.mli:
