lib/itree/interval_tree.ml: Int List
