lib/itree/interval_map.ml: Int List Map Seq
