lib/itree/interval_tree.mli:
