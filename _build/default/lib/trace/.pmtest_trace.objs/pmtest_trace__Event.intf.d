lib/trace/event.mli: Format Loc Pmtest_model Pmtest_util
