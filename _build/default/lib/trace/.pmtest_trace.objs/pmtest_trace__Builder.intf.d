lib/trace/builder.mli: Event Loc Pmtest_util Sink
