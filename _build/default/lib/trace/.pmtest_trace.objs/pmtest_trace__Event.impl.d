lib/trace/event.ml: Array Format Loc Pmtest_model Pmtest_util
