lib/trace/serial.mli: Event Sink
