lib/trace/serial.ml: Array Event Fun List Loc Pmtest_model Pmtest_util Printf Sink String Vec
