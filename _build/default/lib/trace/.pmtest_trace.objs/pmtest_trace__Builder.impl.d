lib/trace/builder.ml: Event Pmtest_util Sink Vec
