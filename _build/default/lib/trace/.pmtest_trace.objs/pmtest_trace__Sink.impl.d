lib/trace/sink.ml: Event Loc Pmtest_model Pmtest_util
