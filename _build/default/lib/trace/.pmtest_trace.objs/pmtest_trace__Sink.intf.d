lib/trace/sink.mli: Event Loc Pmtest_util
