(** Per-thread trace accumulation (paper §4.3, §4.5).

    Each program thread owns a builder; entries are appended in program
    order. [PMTest_SEND_TRACE] corresponds to {!take}: the accumulated
    section is handed off (to a worker thread) and a fresh section starts.
    Tracking can be toggled ([PMTest_START] / [PMTest_END]) — while
    disabled, entries are dropped at the door. *)

open Pmtest_util

type t

val create : ?thread:int -> unit -> t

val thread : t -> int

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit : t -> Event.kind -> Loc.t -> unit
(** Appends unless tracking is disabled. *)

val length : t -> int
(** Entries accumulated in the current section. *)

val take : t -> Event.t array
(** Current section as an array; the builder restarts empty. *)

val sink : t -> Sink.t
(** The builder viewed as an instrumentation sink. *)
