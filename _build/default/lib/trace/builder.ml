open Pmtest_util

type t = { thread : int; buf : Event.t Vec.t; mutable enabled : bool }

let create ?(thread = 0) () = { thread; buf = Vec.create (); enabled = true }
let thread t = t.thread
let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let emit t kind loc = if t.enabled then Vec.push t.buf { Event.kind; loc; thread = t.thread }
let length t = Vec.length t.buf
let take t = Vec.take_all t.buf
let sink t = { Sink.emit = (fun kind loc -> emit t kind loc) }
