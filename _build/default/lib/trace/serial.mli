(** Trace serialization: record a program's trace to a file and check it
    offline later (or on another machine) — the workflow a kernel module
    uses when its traces are exported through a FIFO (paper §4.5).

    The format is line-oriented text, one entry per line:

    {v
    <kind>\t<thread>\t<file>\t<line>\t<args...>
    v}

    with kinds [w]rite, [f]lush (clwb), [s]fence, [o]fence, [d]fence,
    [cp] (isPersist), [co] (isOrderedBefore), [tb]/[tc]/[ta] (TX begin /
    commit / abort), [tA] (TX_ADD), [ts]/[te] (TX checker start / end),
    [xe]/[xi] (exclude / include). Numeric fields are decimal. Tabs in
    file names are replaced by spaces when writing. *)

val entry_to_line : Event.t -> string
val entry_of_line : string -> (Event.t, string) result

val write_channel : out_channel -> Event.t array -> unit
val read_channel : in_channel -> (Event.t array, string) result
(** Fails with a message naming the first malformed line. *)

val save_file : string -> Event.t array -> unit
val load_file : string -> (Event.t array, string) result

val recording_sink : unit -> Sink.t * (unit -> Event.t array)
(** A sink that accumulates everything it sees; the closure returns (and
    keeps) the entries recorded so far. *)
