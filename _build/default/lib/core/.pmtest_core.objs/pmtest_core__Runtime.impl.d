lib/core/runtime.ml: Array Condition Domain Engine Event Model Mutex Pmtest_model Pmtest_trace Queue Report
