lib/core/engine.mli: Event Interval Interval_map Model Pmtest_itree Pmtest_model Pmtest_trace Report
