lib/core/pmtest.mli: Loc Model Pmtest_model Pmtest_trace Pmtest_util Report Sink
