lib/core/pmtest.ml: Array Builder Event Fun Hashtbl Interval_map List Loc Model Mutex Pmtest_itree Pmtest_model Pmtest_trace Pmtest_util Runtime
