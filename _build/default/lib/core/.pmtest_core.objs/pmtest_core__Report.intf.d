lib/core/report.mli: Format Loc Pmtest_util
