lib/core/report.ml: Format Hashtbl Int List Loc Pmtest_util
