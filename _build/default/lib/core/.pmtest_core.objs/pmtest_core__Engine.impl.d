lib/core/engine.ml: Array Event Format Interval Interval_map Interval_tree List Loc Model Pmtest_itree Pmtest_model Pmtest_trace Pmtest_util Report Vec
