lib/core/runtime.mli: Event Model Pmtest_model Pmtest_trace Report
