(** Small numeric helpers for the benchmark harness. *)

val mean : float array -> float
val stddev : float array -> float

val median : float array -> float
(** Median of a copy of the input (the input is not mutated). *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation. *)

val geomean : float array -> float
(** Geometric mean; the paper reports average slowdowns as ratios, for
    which the geometric mean is the meaningful aggregate. *)

val min : float array -> float
val max : float array -> float
