(** Deterministic pseudo-random numbers (splitmix64).

    All workload generators and the crash-state sampler take an explicit
    generator so experiments are reproducible run-to-run: the same seed
    yields the same operation stream, which is essential when comparing a
    run under PMTest against the uninstrumented run of the same program. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator. Two generators created from the
    same seed produce the same stream. *)

val copy : t -> t
(** Independent clone with the same current state. *)

val split : t -> t
(** [split t] derives a new, statistically independent generator and
    advances [t]; used to give each thread of a workload its own stream. *)

val bits64 : t -> int64
(** Next raw 64 bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val pick : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipfian variate in [\[0, n)]; [theta] in [(0, 1)] controls the skew.
    Used by the YCSB-style client, which draws keys from a Zipfian
    distribution like the original benchmark. *)
