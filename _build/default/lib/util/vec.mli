(** Growable arrays.

    The stdlib gains [Dynarray] only in OCaml 5.2; the trace builder needs
    an amortised-O(1) append buffer, so we provide our own. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> 'a -> unit
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit

val clear : 'a t -> unit
(** Drops all elements but keeps the backing storage. *)

val to_list : 'a t -> 'a list
val to_array : 'a t -> 'a array
val of_list : 'a list -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool

val take_all : 'a t -> 'a array
(** [take_all t] returns the contents as a fresh array and clears [t];
    this is how a trace section is handed to the checking engine. *)
