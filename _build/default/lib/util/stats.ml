let check_nonempty name xs = if Array.length xs = 0 then invalid_arg ("Stats." ^ name ^ ": empty")

let mean xs =
  check_nonempty "mean" xs;
  Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)

let stddev xs =
  check_nonempty "stddev" xs;
  let m = mean xs in
  let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
  sqrt (sq /. float_of_int (Array.length xs))

let sorted xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let percentile xs p =
  check_nonempty "percentile" xs;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let ys = sorted xs in
  let n = Array.length ys in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) in
  let hi = int_of_float (ceil rank) in
  if lo = hi then ys.(lo)
  else
    let frac = rank -. float_of_int lo in
    (ys.(lo) *. (1.0 -. frac)) +. (ys.(hi) *. frac)

let median xs = percentile xs 50.0

let geomean xs =
  check_nonempty "geomean" xs;
  let logsum = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
  exp (logsum /. float_of_int (Array.length xs))

let min xs =
  check_nonempty "min" xs;
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  check_nonempty "max" xs;
  Array.fold_left Stdlib.max xs.(0) xs
