lib/util/rng.mli:
