lib/util/stats.mli:
