lib/util/loc.ml: Format Int String
