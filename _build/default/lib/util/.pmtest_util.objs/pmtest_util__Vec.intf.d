lib/util/vec.mli:
