(** Source locations attached to PM operations and checkers.

    Every trace entry carries the location of the program statement that
    produced it, so that diagnostics can be reported as
    [WARN/FAIL @<file>:<line>] exactly as the paper's checking engine does. *)

type t = private { file : string; line : int }

val make : file:string -> line:int -> t
(** [make ~file ~line] builds a location. [line] must be non-negative. *)

val none : t
(** Placeholder for events without a meaningful source position. *)

val is_none : t -> bool

val pp : Format.formatter -> t -> unit
(** Prints [<file>:<line>], or [<unknown>] for {!none}. *)

val to_string : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int

val here : ?file:string -> int -> t
(** [here line] is shorthand used by the simulated libraries: the [file]
    defaults to the name the library registers for itself. *)
