type 'a t = { mutable data : 'a array; mutable len : int }

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { data = [||]; len = 0 } |> fun t ->
  ignore capacity;
  t

let length t = t.len
let is_empty t = t.len = 0

let grow t x =
  let cap = Array.length t.data in
  let new_cap = if cap = 0 then 16 else cap * 2 in
  let data = Array.make new_cap x in
  Array.blit t.data 0 data 0 t.len;
  t.data <- data

let push t x =
  if t.len = Array.length t.data then grow t x;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

let clear t = t.len <- 0
let to_array t = Array.sub t.data 0 t.len
let to_list t = Array.to_list (to_array t)

let of_list l =
  let t = create () in
  List.iter (push t) l;
  t

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f acc t =
  let acc = ref acc in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let take_all t =
  let a = to_array t in
  clear t;
  a
