(* Splitmix64: Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators" (OOPSLA 2014). Chosen because it is tiny, fast, passes
   BigCrush, and splits cleanly for per-thread streams. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = mix seed }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection-free for our purposes: modulo bias is negligible for the
     bounds used by the workloads (all far below 2^32). *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (bits64 t) 1) (Int64.of_int bound))

let float t bound =
  let u = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (u /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

(* Zipf via the classic Gray et al. rejection-free transform: uses the
   closed-form inverse of the generalized harmonic CDF approximation. *)
let zipf t ~n ~theta =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if theta <= 0.0 || theta >= 1.0 then invalid_arg "Rng.zipf: theta in (0,1)";
  let zeta2 = 1.0 +. (0.5 ** theta) in
  (* zetan: approximate with the integral bound; exact enough for workload
     skew and avoids an O(n) precomputation per call. *)
  let zetan =
    let fn = float_of_int n in
    (1.0 -. (fn ** (1.0 -. theta))) /. (theta -. 1.0)
  in
  let alpha = 1.0 /. (1.0 -. theta) in
  let eta = (1.0 -. ((2.0 /. float_of_int n) ** (1.0 -. theta))) /. (1.0 -. (zeta2 /. zetan)) in
  let u = float t 1.0 in
  let uz = u *. zetan in
  if uz < 1.0 then 0
  else if uz < 1.0 +. (0.5 ** theta) then 1
  else
    let k = int_of_float (float_of_int n *. (((eta *. u) -. eta +. 1.0) ** alpha)) in
    if k >= n then n - 1 else if k < 0 then 0 else k
