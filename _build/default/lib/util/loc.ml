type t = { file : string; line : int }

let make ~file ~line =
  assert (line >= 0);
  { file; line }

let none = { file = ""; line = 0 }
let is_none t = t.file = "" && t.line = 0

let pp ppf t =
  if is_none t then Format.pp_print_string ppf "<unknown>"
  else Format.fprintf ppf "%s:%d" t.file t.line

let to_string t = Format.asprintf "%a" pp t
let equal a b = a.file = b.file && a.line = b.line

let compare a b =
  match String.compare a.file b.file with
  | 0 -> Int.compare a.line b.line
  | c -> c

let here ?(file = "<inline>") line = make ~file ~line
