lib/baseline/naive_engine.mli: Event Model Pmtest_core Pmtest_model Pmtest_trace
