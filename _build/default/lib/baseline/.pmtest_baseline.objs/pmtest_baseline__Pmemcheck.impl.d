lib/baseline/pmemcheck.ml: Bytes Event Format Loc Pmtest_core Pmtest_model Pmtest_trace Pmtest_util Printf Sink Vec
