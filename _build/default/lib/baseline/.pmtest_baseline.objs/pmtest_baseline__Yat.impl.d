lib/baseline/yat.ml: Array Bytes Event List Pmtest_model Pmtest_pmem Pmtest_trace Sink
