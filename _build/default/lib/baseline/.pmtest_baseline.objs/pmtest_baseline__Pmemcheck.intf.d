lib/baseline/pmemcheck.mli: Pmtest_core Pmtest_trace Sink
