lib/baseline/yat.mli: Event Pmtest_model Pmtest_pmem Pmtest_trace Pmtest_util Rng Sink
