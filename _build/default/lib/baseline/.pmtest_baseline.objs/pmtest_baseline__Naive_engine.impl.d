lib/baseline/naive_engine.ml: Array Event Format Interval List Loc Model Pmtest_core Pmtest_model Pmtest_trace Pmtest_util Vec
