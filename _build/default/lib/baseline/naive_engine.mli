(** A deliberately naive reimplementation of the checking engine, used as
    an ablation baseline and as a differential-testing twin.

    Same checking semantics as {!Pmtest_core.Engine} — identical verdicts
    on every trace — but with the data-structure choices the paper argues
    against (§4.4):

    - the shadow memory is an unordered association list of disjoint
      ranges, so every write/writeback/checker scans it in O(n);
    - fences eagerly sweep the whole shadow to close intervals, instead of
      the O(1) lazy-timestamp scheme;
    - the log tree is a plain list.

    The [ablation] benchmark compares the two engines on growing traces;
    the differential property test asserts they agree diagnostic-for-
    diagnostic kind on random traces. *)

open Pmtest_model
open Pmtest_trace
module Report = Pmtest_core.Report

val check : ?model:Model.kind -> Event.t array -> Report.t
