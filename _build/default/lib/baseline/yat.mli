(** A Yat-style exhaustive crash-consistency tester (paper §2.2, [43]).

    Yat validates a PM program by {e brute force}: it replays the trace of
    PM operations and, at every possible crash point, enumerates every
    durable image the hardware reordering rules admit, then runs the
    application's recovery/consistency check on each image. This is sound
    and complete — and exponentially slow (the paper quotes > 5 years for
    a 100k-operation PMFS trace), which is the motivation for PMTest's
    interval deduction.

    Here it serves two purposes:
    - the {e oracle} for the property tests: PMTest's verdicts are
      validated against exhaustive enumeration on small traces;
    - the cost comparison for the scaling benchmark (`bench yat`). *)

open Pmtest_util
open Pmtest_trace
module Machine = Pmtest_pmem.Machine

type outcome = {
  crash_points : int;  (** Trace positions at which a crash was modelled. *)
  states_tested : int;  (** Durable images checked in total. *)
  violations : int;  (** Images the consistency predicate rejected. *)
  first_violation : (int * bytes) option;
      (** Crash point index and durable image of the first failure. *)
  exhaustive : bool;  (** [false] if the per-point state limit truncated. *)
}

val replay_op : Machine.t -> Pmtest_model.Model.op -> unit
(** Apply one PM operation to the simulated machine (checker and
    annotation entries are not operations and must be filtered upstream).
    Trace entries carry no store payloads, so writes store a [0xff] fill —
    enough to distinguish new from old bytes against a zeroed device,
    which is what the ordering oracle needs. *)

(** {1 Live attachment}

    For end-to-end recovery checking the tester must see the program's
    {e actual} machine (with real payloads): {!attach} returns a sink to
    instrument the program with; every fence triggers exhaustive
    enumeration of the machine's crash states and runs the consistency
    predicate on each — Yat's execution model, cost included. *)

type live

val attach :
  ?limit_per_point:int -> machine:Machine.t -> check:(bytes -> bool) -> unit -> live * Sink.t

val live_outcome : live -> outcome
(** Outcome so far; also models the crash at the current point before
    reporting. *)

val replay : Machine.t -> Event.t array -> unit
(** Apply every PM operation of the trace in order. *)

val run :
  ?limit_per_point:int ->
  ?every_op:bool ->
  size:int ->
  check:(bytes -> bool) ->
  Event.t array ->
  outcome
(** [run ~size ~check trace] replays [trace] on a fresh machine of [size]
    bytes and models a crash after {e every} operation plus at the trace
    end (only at fence boundaries when [every_op] is [false]),
    enumerating up to
    [limit_per_point] durable images per crash point (default 65536) and
    applying [check] to each. *)

val crash_images_at : size:int -> at:int -> ?limit:int -> Event.t array -> bytes list * bool
(** Durable images reachable if the crash happens right after entry index
    [at] (counting all entries, non-ops skipped during replay); returns
    the images and whether enumeration was exhaustive. Used directly by
    the oracle property tests. *)

val estimated_states : size:int -> Event.t array -> float
(** Product, over all crash points of the trace, of the number of durable
    images — the size of Yat's search space (computed without
    enumerating). *)

val sample_crash_image : size:int -> at:int -> Rng.t -> Event.t array -> bytes
(** One random reachable durable image after entry index [at]. *)
