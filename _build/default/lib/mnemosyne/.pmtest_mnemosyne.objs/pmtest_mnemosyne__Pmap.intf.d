lib/mnemosyne/pmap.mli: Region
