lib/mnemosyne/region.mli: Pmtest_pmem Pmtest_trace Sink
