lib/mnemosyne/pmap.ml: Bytes Format Int64 List Pmtest_pmem Region String
