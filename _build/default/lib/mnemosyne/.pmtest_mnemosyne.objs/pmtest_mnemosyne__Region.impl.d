lib/mnemosyne/region.ml: Bytes Int64 List Pmtest_pmem Pmtest_trace
