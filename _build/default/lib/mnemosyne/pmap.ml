(* Root (32 B): [0]=nbuckets [8]=count [16]=buckets offset [24]=value cap.
   Bucket slots: 8 B each. Entry: [0]=key [8]=next [16]=vlen [24]=value. *)

type t = { region : Region.t; root : int; nbuckets : int; buckets : int; value_cap : int }

let region t = t.region
let root_off t = t.root
let value_cap t = t.value_cap
let entry_size t = 24 + t.value_cap

let hash t key =
  let h = Int64.to_int (Int64.mul key 0x9E3779B97F4A7C15L) land max_int in
  h mod t.nbuckets

let create ?(buckets = 1024) ?(value_cap = 64) region =
  let root = Region.alloc region 32 in
  let arr = Region.alloc region (8 * buckets) in
  (* The bucket array must be zeroed durably before use. *)
  Region.store_bytes ~line:100 region ~off:arr (Bytes.make (8 * buckets) '\000');
  Region.store_i64 ~line:101 region ~off:root (Int64.of_int buckets);
  Region.store_i64 ~line:102 region ~off:(root + 8) 0L;
  Region.store_i64 ~line:103 region ~off:(root + 16) (Int64.of_int arr);
  Region.store_i64 ~line:104 region ~off:(root + 24) (Int64.of_int value_cap);
  Region.persist ~line:105 region ~off:root ~size:32;
  Region.persist ~line:106 region ~off:arr ~size:(8 * buckets);
  { region; root; nbuckets = buckets; buckets = arr; value_cap }

let open_ region ~root =
  let geti off = Int64.to_int (Region.load_i64 region ~off) in
  {
    region;
    root;
    nbuckets = geti root;
    buckets = geti (root + 16);
    value_cap = geti (root + 24);
  }

let cardinal t = Int64.to_int (Region.load_i64 t.region ~off:(t.root + 8))
let slot_of t key = t.buckets + (8 * hash t key)
let entry_key t e = Region.load_i64 t.region ~off:e
let entry_next t e = Int64.to_int (Region.load_i64 t.region ~off:(e + 8))
let entry_vlen t e = Int64.to_int (Region.load_i64 t.region ~off:(e + 16))

let entry_value t e = Bytes.to_string (Region.load_bytes t.region ~off:(e + 24) ~len:(entry_vlen t e))

let find_entry t key =
  let rec go e = if e = 0 then None else if entry_key t e = key then Some e else go (entry_next t e) in
  go (Int64.to_int (Region.load_i64 t.region ~off:(slot_of t key)))

let set t ~key ~value =
  if String.length value > t.value_cap then invalid_arg "Pmap.set: value exceeds capacity";
  Region.tx t.region (fun () ->
      match find_entry t key with
      | Some e ->
        Region.store_i64 ~line:110 t.region ~off:(e + 16) (Int64.of_int (String.length value));
        let padded = Bytes.make t.value_cap '\000' in
        Bytes.blit_string value 0 padded 0 (String.length value);
        Region.store_bytes ~line:111 t.region ~off:(e + 24) padded
      | None ->
        let slot = slot_of t key in
        let head = Region.load_i64 t.region ~off:slot in
        let e = Region.alloc t.region (entry_size t) in
        Region.store_i64 ~line:112 t.region ~off:e key;
        Region.store_i64 ~line:113 t.region ~off:(e + 8) head;
        Region.store_i64 ~line:114 t.region ~off:(e + 16) (Int64.of_int (String.length value));
        let padded = Bytes.make t.value_cap '\000' in
        Bytes.blit_string value 0 padded 0 (String.length value);
        Region.store_bytes ~line:115 t.region ~off:(e + 24) padded;
        Region.store_i64 ~line:116 t.region ~off:slot (Int64.of_int e);
        Region.store_i64 ~line:117 t.region ~off:(t.root + 8)
          (Int64.of_int (cardinal t + 1)))

let get t ~key =
  match find_entry t key with None -> None | Some e -> Some (entry_value t e)

let remove t ~key =
  let slot = slot_of t key in
  let rec find_prev prev e =
    if e = 0 then None
    else if entry_key t e = key then Some (prev, e)
    else find_prev (e + 8) (entry_next t e)
  in
  match find_prev slot (Int64.to_int (Region.load_i64 t.region ~off:slot)) with
  | None -> false
  | Some (prev, e) ->
    Region.tx t.region (fun () ->
        Region.store_i64 ~line:120 t.region ~off:prev (Int64.of_int (entry_next t e));
        Region.store_i64 ~line:121 t.region ~off:(t.root + 8) (Int64.of_int (cardinal t - 1)));
    true

let iter t f =
  for b = 0 to t.nbuckets - 1 do
    let rec go e =
      if e <> 0 then begin
        f (entry_key t e) (entry_value t e);
        go (entry_next t e)
      end
    in
    go (Int64.to_int (Region.load_i64 t.region ~off:(t.buckets + (8 * b))))
  done

let check_consistent t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let heap = Region.heap_start t.region in
  let size = Pmtest_pmem.Machine.size (Region.machine t.region) in
  let reachable = ref 0 in
  for b = 0 to t.nbuckets - 1 do
    let rec go e steps =
      if steps > 1_000_000 then err "cycle suspected in bucket %d" b
      else if e <> 0 then
        if e < heap || e + entry_size t > size then err "entry 0x%x outside heap" e
        else begin
          incr reachable;
          let k = entry_key t e in
          if hash t k <> b then err "key %Ld in wrong bucket" k;
          let vlen = entry_vlen t e in
          if vlen < 0 || vlen > t.value_cap then err "entry 0x%x has bad value length %d" e vlen;
          go (entry_next t e) (steps + 1)
        end
    in
    go (Int64.to_int (Region.load_i64 t.region ~off:(t.buckets + (8 * b)))) 0
  done;
  if !reachable <> cardinal t then
    err "count mismatch: %d reachable, count says %d" !reachable (cardinal t);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
