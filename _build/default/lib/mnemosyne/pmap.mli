(** Persistent chained hash map over a Mnemosyne region — the durable
    store behind the Memcached workload (paper Table 4).

    Every mutation runs inside a durable (redo-logged) region transaction.
    Values are inline byte strings up to the capacity fixed at creation. *)

type t

val create : ?buckets:int -> ?value_cap:int -> Region.t -> t
val open_ : Region.t -> root:int -> t

val root_off : t -> int
val region : t -> Region.t
val value_cap : t -> int

val set : t -> key:int64 -> value:string -> unit
(** Insert or update. Raises [Invalid_argument] if the value exceeds the
    capacity. *)

val get : t -> key:int64 -> string option
val remove : t -> key:int64 -> bool
val cardinal : t -> int
val iter : t -> (int64 -> string -> unit) -> unit
val check_consistent : t -> (unit, string) result
