module Machine = Pmtest_pmem.Machine
module Instr = Pmtest_pmem.Instr
module Access = Pmtest_pmem.Access
module Event = Pmtest_trace.Event

let source_file = "mnemosyne/log.c"
let magic = 0x4D4E454D_4F53594EL

(* Header: [0]=magic [8]=size [16]=commit marker (record count; 0 = empty)
   Log records from [log_base]: {off(8) len(8) data(len, 8-aligned)}. *)
let off_magic = 0
let off_marker = 16
let log_base = 0x40
let log_size = 1 lsl 18
let heap_base = log_base + log_size

type fault = Skip_log_flush | Skip_commit_fence | Skip_apply_writeback | Skip_log_record

type t = {
  instr : Instr.t;
  mutable heap_top : int;
  mutable depth : int;
  mutable records : (int * bytes * int) list; (* off, payload, line — newest first *)
  mutable fault : fault option;
  mutable recovered : int;
  mutable leaked_this_tx : bool;
  annotate : bool;
}

let machine t = Instr.machine t.instr
let recovered_words t = t.recovered
let set_fault t f = t.fault <- f
let heap_start _ = heap_base
let tx_active t = t.depth > 0

let create ?(track_versions = false) ?(size = 16 * 1024 * 1024) ~sink () =
  if size <= heap_base then invalid_arg "Region.create: region too small";
  let machine = Machine.create ~track_versions ~size () in
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let t =
    {
      instr;
      heap_top = heap_base;
      depth = 0;
      records = [];
      fault = None;
      recovered = 0;
      leaked_this_tx = false;
      annotate = true;
    }
  in
  Instr.store_i64 t.instr ~line:10 ~addr:off_magic magic;
  Instr.store_i64 t.instr ~line:11 ~addr:8 (Int64.of_int size);
  Instr.store_i64 t.instr ~line:12 ~addr:off_marker 0L;
  Instr.persist_barrier t.instr ~line:13 ~addr:0 ~size:24;
  t

(* Replay a committed redo log: the marker counts the records that must be
   applied in-place. *)
let recover t =
  let m = machine t in
  let n = Int64.to_int (Access.get_i64 m off_marker) in
  if n > 0 then begin
    let off = ref log_base in
    for _ = 1 to n do
      let target = Access.get_int m !off in
      let len = Access.get_int m (!off + 8) in
      let data = Access.get_bytes m (!off + 16) len in
      Instr.store_bytes t.instr ~line:20 ~addr:target data;
      Instr.clwb t.instr ~line:21 ~addr:target ~size:len;
      off := !off + 16 + ((len + 7) land lnot 7);
      t.recovered <- t.recovered + 1
    done;
    Instr.sfence t.instr ~line:22;
    Instr.store_i64 t.instr ~line:23 ~addr:off_marker 0L;
    Instr.persist_barrier t.instr ~line:24 ~addr:off_marker ~size:8
  end

let of_machine ~machine ~sink =
  if Access.get_i64 machine off_magic <> magic then invalid_arg "Region.of_machine: bad magic";
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let t =
    {
      instr;
      heap_top = heap_base;
      depth = 0;
      records = [];
      fault = None;
      recovered = 0;
      leaked_this_tx = false;
      annotate = true;
    }
  in
  recover t;
  (* The heap bump pointer is conservative after a crash: scan is not
     modelled, so reopenings allocate fresh space. *)
  t.heap_top <- heap_base;
  t

let align8 n = (n + 7) land lnot 7

let alloc t size =
  if size <= 0 then invalid_arg "Region.alloc: size must be positive";
  let off = t.heap_top in
  if off + align8 size > Machine.size (machine t) then raise Out_of_memory;
  t.heap_top <- off + align8 size;
  off

let tx_begin t =
  if t.depth = 0 then t.leaked_this_tx <- false;
  t.depth <- t.depth + 1

let load_from_records records ~off ~len =
  (* Read-your-writes inside a transaction, at record granularity. *)
  List.find_map
    (fun (roff, data, _) ->
      if roff = off && Bytes.length data = len then Some (Bytes.copy data)
      else if roff <= off && off + len <= roff + Bytes.length data then
        Some (Bytes.sub data (off - roff) len)
      else None)
    records

let load_bytes t ~off ~len =
  match if t.depth > 0 then load_from_records t.records ~off ~len else None with
  | Some b -> b
  | None -> Instr.load_bytes t.instr ~addr:off ~len

let load_i64 t ~off =
  let b = load_bytes t ~off ~len:8 in
  Bytes.get_int64_le b 0

let store_bytes ?(line = 30) t ~off b =
  if t.depth > 0 then
    if t.fault = Some Skip_log_record && not t.leaked_this_tx then begin
      (* Unlogged store: the update leaks in place, uncovered by the redo
         log and by the commit writebacks. *)
      t.leaked_this_tx <- true;
      Instr.store_bytes t.instr ~line ~addr:off b
    end
    else t.records <- (off, Bytes.copy b, line) :: t.records
  else Instr.store_bytes t.instr ~line ~addr:off b

let store_i64 ?(line = 31) t ~off v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  store_bytes ~line t ~off b

let persist ?(line = 32) t ~off ~size = Instr.persist_barrier t.instr ~line ~addr:off ~size

let is_persist ?(line = 33) t ~off ~size =
  Instr.checker t.instr ~line Event.(Is_persist { addr = off; size })

let tx_checker_start ?(line = 34) t = Instr.tx_event t.instr ~line Event.Tx_checker_start
let tx_checker_end ?(line = 35) t = Instr.tx_event t.instr ~line Event.Tx_checker_end

let commit_outermost t =
  let records = List.rev t.records in
  t.records <- [];
  if records <> [] then begin
    (* 1. Append the redo records and make them durable. *)
    let tail = ref log_base in
    let first_record = !tail in
    List.iter
      (fun (off, data, _) ->
        let len = Bytes.length data in
        if !tail + 16 + align8 len > log_base + log_size then failwith "Region: redo log full";
        Instr.store_i64 t.instr ~line:40 ~addr:!tail (Int64.of_int off);
        Instr.store_i64 t.instr ~line:41 ~addr:(!tail + 8) (Int64.of_int len);
        Instr.store_bytes t.instr ~line:42 ~addr:(!tail + 16) data;
        tail := !tail + 16 + align8 len)
      records;
    let log_len = !tail - first_record in
    if t.fault <> Some Skip_log_flush then begin
      Instr.clwb t.instr ~line:43 ~addr:first_record ~size:log_len;
      Instr.sfence t.instr ~line:44
    end;
    if t.annotate then
      (* The log must be durable before the commit marker can appear. *)
      Instr.checker t.instr ~line:45 Event.(Is_persist { addr = first_record; size = log_len });
    (* 2. Commit marker. *)
    Instr.store_i64 t.instr ~line:46 ~addr:off_marker (Int64.of_int (List.length records));
    if t.fault = Some Skip_commit_fence then
      Instr.clwb t.instr ~line:47 ~addr:off_marker ~size:8
    else Instr.persist_barrier t.instr ~line:48 ~addr:off_marker ~size:8;
    if t.annotate then
      Instr.checker t.instr ~line:49
        Event.(
          Is_ordered_before
            { a_addr = first_record; a_size = log_len; b_addr = off_marker; b_size = 8 });
    (* 3. Apply in place and write back. *)
    List.iter
      (fun (off, data, line) ->
        Instr.store_bytes t.instr ~line ~addr:off data;
        if t.fault <> Some Skip_apply_writeback then
          Instr.clwb t.instr ~line:50 ~addr:off ~size:(Bytes.length data))
      records;
    Instr.sfence t.instr ~line:51;
    if t.annotate then begin
      List.iter
        (fun (off, data, _) ->
          Instr.checker t.instr ~line:52
            Event.(Is_persist { addr = off; size = Bytes.length data }))
        records;
      (* Redo logging has no undo: in-place updates may only persist once
         the commit marker is durable, or a crash leaks uncommitted data. *)
      List.iter
        (fun (off, data, _) ->
          Instr.checker t.instr ~line:55
            Event.(
              Is_ordered_before
                { a_addr = off_marker; a_size = 8; b_addr = off; b_size = Bytes.length data }))
        records
    end;
    (* 4. Truncate. *)
    Instr.store_i64 t.instr ~line:53 ~addr:off_marker 0L;
    Instr.persist_barrier t.instr ~line:54 ~addr:off_marker ~size:8
  end

let tx_commit t =
  if t.depth = 0 then invalid_arg "Region.tx_commit: no active transaction";
  t.depth <- t.depth - 1;
  if t.depth = 0 then commit_outermost t

let tx t f =
  tx_begin t;
  match f () with
  | v ->
    tx_commit t;
    v
  | exception e ->
    (* Abort: redo records are volatile, dropping them is the rollback. *)
    t.depth <- 0;
    t.records <- [];
    raise e
