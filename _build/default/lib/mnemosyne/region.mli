(** Simulated Mnemosyne persistent region with a raw-word redo log
    (Volos et al., ASPLOS'11 — the library under the paper's Memcached
    workload, Fig. 2a).

    Mnemosyne's durable transactions buffer word-granularity updates in a
    per-transaction {e redo log}: on commit the log records are appended
    and persisted ([log_append] + [log_flush]), a commit marker is
    persisted, and only then are the in-place updates performed and
    written back. Recovery replays the log if (and only if) the commit
    marker is present — the mirror image of PMDK's undo logging, which is
    why testing both exercises different checker patterns.

    Layout: header | log area | heap (word-aligned bump allocator). *)

open Pmtest_trace
module Machine = Pmtest_pmem.Machine

type t

type fault =
  | Skip_log_flush  (** Log records are appended but never written back. *)
  | Skip_commit_fence  (** Commit marker is not fenced before the in-place writes. *)
  | Skip_apply_writeback  (** In-place updates are left in the cache. *)
  | Skip_log_record
      (** The first store of each transaction bypasses the redo log and
          goes straight in place — the classic unlogged-store bug. *)

val source_file : string

val create : ?track_versions:bool -> ?size:int -> sink:Sink.t -> unit -> t
val of_machine : machine:Machine.t -> sink:Sink.t -> t
(** Open an existing region, replaying a committed-but-unapplied redo log
    if the crash left one behind. *)

val machine : t -> Machine.t
val recovered_words : t -> int
val set_fault : t -> fault option -> unit

val alloc : t -> int -> int
(** Word-aligned allocation from the persistent heap. *)

val heap_start : t -> int

(** {1 Durable transactions} *)

val tx_begin : t -> unit
val tx_commit : t -> unit
val tx_active : t -> bool

val tx : t -> (unit -> 'a) -> 'a

val store_i64 : ?line:int -> t -> off:int -> int64 -> unit
(** Inside a transaction: buffered in the redo log and applied at commit.
    Outside: direct write (the caller is responsible for persisting). *)

val store_bytes : ?line:int -> t -> off:int -> bytes -> unit
val load_i64 : t -> off:int -> int64
val load_bytes : t -> off:int -> len:int -> bytes
val persist : ?line:int -> t -> off:int -> size:int -> unit

(** {1 Checker annotations} *)

val is_persist : ?line:int -> t -> off:int -> size:int -> unit
val tx_checker_start : ?line:int -> t -> unit
val tx_checker_end : ?line:int -> t -> unit
