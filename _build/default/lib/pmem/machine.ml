open Pmtest_util
module Model = Pmtest_model.Model

let line_size = Model.cache_line

type t = {
  volatile : Bytes.t;
  media : Bytes.t;
  track_versions : bool;
  (* line index -> full-line snapshot after each store to the line, oldest
     first; present only while the line is dirty and tracking is on. *)
  versions : (int, Bytes.t Vec.t) Hashtbl.t;
  dirty : (int, unit) Hashtbl.t;
  (* line index -> content captured by clwb, awaiting the next sfence; the
     int is the number of versions the snapshot covers. *)
  pending : (int, Bytes.t * int) Hashtbl.t;
  mutable epoch : int;
}

let round_up_lines size = (size + line_size - 1) / line_size * line_size

let create ?(track_versions = false) ~size () =
  let size = round_up_lines (max size line_size) in
  {
    volatile = Bytes.make size '\000';
    media = Bytes.make size '\000';
    track_versions;
    versions = Hashtbl.create 64;
    dirty = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    epoch = 0;
  }

let of_image ?(track_versions = false) image =
  let size = round_up_lines (Bytes.length image) in
  let volatile = Bytes.make size '\000' in
  Bytes.blit image 0 volatile 0 (Bytes.length image);
  {
    volatile;
    media = Bytes.copy volatile;
    track_versions;
    versions = Hashtbl.create 64;
    dirty = Hashtbl.create 64;
    pending = Hashtbl.create 16;
    epoch = 0;
  }

let size t = Bytes.length t.volatile
let track_versions t = t.track_versions
let epoch t = t.epoch
let dirty_line_count t = Hashtbl.length t.dirty

let check_range t ~addr ~len name =
  if addr < 0 || len <= 0 || addr + len > size t then
    invalid_arg
      (Printf.sprintf "Machine.%s: range [0x%x,+%d) outside device of %d bytes" name addr len
         (size t))

let line_bytes src line =
  let b = Bytes.make line_size '\000' in
  Bytes.blit src (line * line_size) b 0 line_size;
  b

let snapshot_line t line =
  if t.track_versions then begin
    let vec =
      match Hashtbl.find_opt t.versions line with
      | Some v -> v
      | None ->
        let v = Vec.create () in
        Hashtbl.replace t.versions line v;
        v
    in
    Vec.push vec (line_bytes t.volatile line)
  end

let mark_dirty t line =
  if not (Hashtbl.mem t.dirty line) then Hashtbl.replace t.dirty line ()

let store t ~addr b =
  let len = Bytes.length b in
  check_range t ~addr ~len "store";
  Bytes.blit b 0 t.volatile addr len;
  let first, last = Model.line_span ~addr ~size:len in
  for line = first to last do
    mark_dirty t line;
    snapshot_line t line
  done

let store_string t ~addr s = store t ~addr (Bytes.of_string s)

let load t ~addr ~len =
  check_range t ~addr ~len "load";
  Bytes.sub t.volatile addr len

let clwb t ~addr ~size:sz =
  check_range t ~addr ~len:sz "clwb";
  let first, last = Model.line_span ~addr ~size:sz in
  for line = first to last do
    if Hashtbl.mem t.dirty line then
      let covered =
        match Hashtbl.find_opt t.versions line with Some v -> Vec.length v | None -> 0
      in
      Hashtbl.replace t.pending line (line_bytes t.volatile line, covered)
  done

let clean_line t line =
  Hashtbl.remove t.dirty line;
  Hashtbl.remove t.versions line

let sfence t =
  Hashtbl.iter
    (fun line (snap, covered) ->
      Bytes.blit snap 0 t.media (line * line_size) line_size;
      (* Stores issued after the clwb remain pending for this line. *)
      let still_dirty =
        if t.track_versions then begin
          match Hashtbl.find_opt t.versions line with
          | Some vec when Vec.length vec > covered ->
            let rest = Vec.create () in
            for i = covered to Vec.length vec - 1 do
              Vec.push rest (Vec.get vec i)
            done;
            Hashtbl.replace t.versions line rest;
            true
          | Some _ | None -> false
        end
        else not (Bytes.equal snap (line_bytes t.volatile line))
      in
      if not still_dirty then clean_line t line)
    t.pending;
  Hashtbl.reset t.pending;
  t.epoch <- t.epoch + 1

let persist_all t =
  Bytes.blit t.volatile 0 t.media 0 (size t);
  Hashtbl.reset t.dirty;
  Hashtbl.reset t.versions;
  Hashtbl.reset t.pending;
  t.epoch <- t.epoch + 1

let ofence t = t.epoch <- t.epoch + 1
let dfence t = persist_all t

let volatile_image t = Bytes.copy t.volatile
let media_image t = Bytes.copy t.media

let require_tracking t name =
  if not t.track_versions then
    invalid_arg ("Machine." ^ name ^ ": machine created without ~track_versions:true")

let dirty_choices t =
  (* For each dirty line: the list of candidate durable contents — media
     baseline plus each tracked version. *)
  Hashtbl.fold
    (fun line () acc ->
      let candidates =
        match Hashtbl.find_opt t.versions line with
        | Some vec -> Array.append [| line_bytes t.media line |] (Vec.to_array vec)
        | None -> [| line_bytes t.media line; line_bytes t.volatile line |]
      in
      (line, candidates) :: acc)
    t.dirty []

let crash_state_count t =
  require_tracking t "crash_state_count";
  List.fold_left
    (fun acc (_, candidates) -> acc *. float_of_int (Array.length candidates))
    1.0 (dirty_choices t)

let iter_crash_states ?(limit = 65536) t f =
  require_tracking t "iter_crash_states";
  let choices = Array.of_list (dirty_choices t) in
  let image = media_image t in
  let emitted = ref 0 in
  let truncated = ref false in
  let rec go i =
    if !truncated then ()
    else if i = Array.length choices then begin
      if !emitted >= limit then truncated := true
      else begin
        incr emitted;
        f image
      end
    end
    else begin
      let line, candidates = choices.(i) in
      Array.iter
        (fun content ->
          if not !truncated then begin
            Bytes.blit content 0 image (line * line_size) line_size;
            go (i + 1)
          end)
        candidates
    end
  in
  go 0;
  not !truncated

let sample_crash_state t rng =
  require_tracking t "sample_crash_state";
  let image = media_image t in
  List.iter
    (fun (line, candidates) ->
      let content = candidates.(Rng.int rng (Array.length candidates)) in
      Bytes.blit content 0 image (line * line_size) line_size)
    (dirty_choices t);
  image
