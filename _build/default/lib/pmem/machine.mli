(** Simulated persistent-memory hardware.

    The simulator separates the two views a real PM system has:

    - the {e volatile} view — what loads observe (CPU caches included);
    - the {e media} — bytes guaranteed durable across a crash.

    A store only updates the volatile view and marks its cache lines dirty.
    [clwb] snapshots the line's current content as {e pending}; the next
    [sfence] commits every pending snapshot to media. A dirty line may
    {e also} persist spontaneously at any moment (cache eviction), which is
    precisely why unordered writes are dangerous: {!iter_crash_states}
    enumerates every durable image the model admits, choosing independently
    for each dirty line how many of its stores made it to media.

    Version tracking (needed for crash-state enumeration) costs memory per
    store, so it is off by default; benchmarks run untracked while the
    crash-consistency oracle tests enable it. *)

open Pmtest_util

type t

val create : ?track_versions:bool -> size:int -> unit -> t
(** Fresh machine, volatile view and media both zeroed. [size] is rounded
    up to a whole number of cache lines. *)

val of_image : ?track_versions:bool -> bytes -> t
(** Boot a machine from a durable image (recovery after a crash). *)

val size : t -> int
val track_versions : t -> bool

(** {1 Program-visible operations} *)

val store : t -> addr:int -> bytes -> unit
(** Store [bytes] at [addr] in the volatile view. *)

val store_string : t -> addr:int -> string -> unit
val load : t -> addr:int -> len:int -> bytes
val clwb : t -> addr:int -> size:int -> unit
(** Initiate writeback of every cache line the range touches. The content
    captured is the volatile content {e at this moment}: stores that hit
    the line after the [clwb] but before the fence are not covered. *)

val sfence : t -> unit
(** Commit pending writebacks to media (x86). *)

val ofence : t -> unit
(** HOPS ordering fence: advances the epoch, persists nothing. *)

val dfence : t -> unit
(** HOPS durability fence: drains {e all} dirty lines to media. *)

val persist_all : t -> unit
(** Clean shutdown: everything volatile becomes durable. *)

(** {1 Inspection} *)

val volatile_image : t -> bytes
(** Copy of the volatile view. *)

val media_image : t -> bytes
(** Copy of the guaranteed-durable bytes (the crash image if no dirty line
    happened to be evicted). *)

val dirty_line_count : t -> int
val epoch : t -> int
(** Number of fences executed (diagnostic only). *)

(** {1 Crash-state oracle} *)

val crash_state_count : t -> float
(** Number of distinct durable images reachable if the machine lost power
    now (as a float — it is a product over dirty lines and explodes
    combinatorially, which is the Yat problem). Requires version tracking. *)

val iter_crash_states : ?limit:int -> t -> (bytes -> unit) -> bool
(** Enumerate reachable durable images, calling the function on each; stops
    after [limit] images (default 65536) and returns [false] if truncated,
    [true] if the enumeration was exhaustive. The same buffer is reused
    between calls — copy it if you keep it. Requires version tracking. *)

val sample_crash_state : t -> Rng.t -> bytes
(** One uniformly-chosen-per-line reachable durable image. Requires
    version tracking. *)
