(** Typed accessors over a simulated PM device.

    The simulated CCS libraries lay out their persistent structures with
    explicit offsets (as C code over a mapped PM region does); these
    helpers read and write fixed-width little-endian scalars. Stores go
    through {!Machine.store} so dirtiness and versioning are tracked. *)

val get_i64 : Machine.t -> int -> int64
val set_i64 : Machine.t -> int -> int64 -> unit

val get_int : Machine.t -> int -> int
(** [get_int m off] reads an [int64] and truncates to [int] (layouts only
    store values that fit). *)

val set_int : Machine.t -> int -> int -> unit

val get_u8 : Machine.t -> int -> int
val set_u8 : Machine.t -> int -> int -> unit

val get_bytes : Machine.t -> int -> int -> bytes
val set_bytes : Machine.t -> int -> bytes -> unit

val get_string : Machine.t -> int -> int -> string
(** [get_string m off len] reads [len] bytes and trims trailing NULs. *)

val set_string : Machine.t -> int -> len:int -> string -> unit
(** Writes the string NUL-padded to exactly [len] bytes (truncates if
    longer). *)
