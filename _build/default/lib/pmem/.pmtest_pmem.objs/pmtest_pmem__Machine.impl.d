lib/pmem/machine.ml: Array Bytes Hashtbl List Pmtest_model Pmtest_util Printf Rng Vec
