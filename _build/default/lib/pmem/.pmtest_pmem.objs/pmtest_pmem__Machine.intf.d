lib/pmem/machine.mli: Pmtest_util Rng
