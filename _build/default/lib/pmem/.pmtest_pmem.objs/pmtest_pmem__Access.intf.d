lib/pmem/access.mli: Machine
