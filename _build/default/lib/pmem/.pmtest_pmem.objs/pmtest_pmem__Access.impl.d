lib/pmem/access.ml: Bytes Char Int64 Machine String
