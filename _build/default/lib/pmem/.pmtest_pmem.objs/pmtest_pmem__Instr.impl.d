lib/pmem/instr.ml: Access Bytes Event Int64 Loc Machine Pmtest_trace Pmtest_util Sink
