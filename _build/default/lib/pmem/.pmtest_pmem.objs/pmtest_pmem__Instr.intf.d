lib/pmem/instr.mli: Event Loc Machine Pmtest_trace Pmtest_util Sink
