let get_i64 m off =
  let b = Machine.load m ~addr:off ~len:8 in
  Bytes.get_int64_le b 0

let set_i64 m off v =
  let b = Bytes.create 8 in
  Bytes.set_int64_le b 0 v;
  Machine.store m ~addr:off b

let get_int m off = Int64.to_int (get_i64 m off)
let set_int m off v = set_i64 m off (Int64.of_int v)

let get_u8 m off = Char.code (Bytes.get (Machine.load m ~addr:off ~len:1) 0)

let set_u8 m off v =
  Machine.store m ~addr:off (Bytes.make 1 (Char.chr (v land 0xff)))

let get_bytes m off len = Machine.load m ~addr:off ~len
let set_bytes m off b = Machine.store m ~addr:off b

let get_string m off len =
  let b = get_bytes m off len in
  let rec trimmed i = if i > 0 && Bytes.get b (i - 1) = '\000' then trimmed (i - 1) else i in
  Bytes.sub_string b 0 (trimmed len)

let set_string m off ~len s =
  let b = Bytes.make len '\000' in
  let n = min len (String.length s) in
  Bytes.blit_string s 0 b 0 n;
  Machine.store m ~addr:off b
