(** Systematic crash-injection testing.

    PMTest validates traces; this harness validates {e outcomes}: it runs
    an instrumented program step by step on a version-tracked simulated
    device, and after every step generates durable images the hardware
    reordering rules admit — exhaustively when the space is small, by
    sampling otherwise — then boots each image, runs the application's
    recovery, and checks its consistency invariant.

    This is the Yat execution model packaged as a reusable harness; the
    tests use it to demonstrate ground truth behind PMTest's verdicts:
    programs whose traces check clean also survive every injected crash,
    and programs with seeded crash-consistency bugs produce images the
    recovery cannot repair. *)

module Machine = Pmtest_pmem.Machine

type config = {
  samples_per_point : int;
      (** Random durable images tested per crash point when the reachable
          space is larger than [exhaustive_limit]. *)
  exhaustive_limit : int;
      (** Enumerate exhaustively when the space has at most this many
          images. *)
  seed : int;
  max_failures : int;  (** Stop collecting after this many violations. *)
}

val default_config : config

type failure = {
  crash_point : int;  (** Index of the step after which the crash happened. *)
  message : string;  (** What the recovery check rejected. *)
}

type verdict = {
  crash_points : int;
  images_tested : int;
  exhaustive_points : int;  (** Crash points that were fully enumerated. *)
  failures : failure list;
}

val survived : verdict -> bool

val run :
  ?config:config ->
  machine:Machine.t ->
  recover:(bytes -> (unit, string) result) ->
  steps:int ->
  step:(int -> unit) ->
  unit ->
  verdict
(** [run ~machine ~recover ~steps ~step ()] executes [step i] for
    [i = 0 .. steps-1] on a program bound to [machine] (which must have
    been created with [~track_versions:true]), injecting crashes after
    every step and at the start. [recover] receives a durable image and
    must boot it, run recovery, and verify the application invariant.
    Exceptions raised by [recover] are converted into failures. *)

val pp_verdict : Format.formatter -> verdict -> unit

(** {1 Operation-granular injection}

    [run] injects crashes between program steps; correct transactional
    code is fully persisted there, so the interesting windows — {e inside}
    a transaction, between the in-place update and its writeback — are
    never sampled. {!attach} returns an instrumentation sink instead:
    plugged into the program (tee'd with the testing tool's sink if both
    are wanted), it injects a crash after every [every]-th PM operation,
    exercising exactly those windows. *)

type live

val attach :
  ?config:config ->
  ?every:int ->
  machine:Machine.t ->
  recover:(bytes -> (unit, string) result) ->
  unit ->
  live * Pmtest_trace.Sink.t
(** [every] defaults to 4 (crash after every 4th PM operation). *)

val live_verdict : live -> verdict
(** Also injects one final crash at the current point. *)
