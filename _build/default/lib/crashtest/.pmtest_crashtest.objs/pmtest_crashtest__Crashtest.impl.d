lib/crashtest/crashtest.ml: Bytes Format List Pmtest_pmem Pmtest_trace Pmtest_util Printexc Rng
