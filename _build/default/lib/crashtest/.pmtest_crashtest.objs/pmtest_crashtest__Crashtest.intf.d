lib/crashtest/crashtest.mli: Format Pmtest_pmem Pmtest_trace
