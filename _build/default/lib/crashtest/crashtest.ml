open Pmtest_util
module Machine = Pmtest_pmem.Machine

type config = {
  samples_per_point : int;
  exhaustive_limit : int;
  seed : int;
  max_failures : int;
}

let default_config = { samples_per_point = 24; exhaustive_limit = 256; seed = 0xC4A5; max_failures = 8 }

type failure = { crash_point : int; message : string }

type verdict = {
  crash_points : int;
  images_tested : int;
  exhaustive_points : int;
  failures : failure list;
}

let survived v = v.failures = []

let run ?(config = default_config) ~machine ~recover ~steps ~step () =
  if not (Machine.track_versions machine) then
    invalid_arg "Crashtest.run: machine must be created with ~track_versions:true";
  let rng = Rng.create config.seed in
  let crash_points = ref 0 in
  let images = ref 0 in
  let exhaustive_points = ref 0 in
  let failures = ref [] in
  let try_image point img =
    incr images;
    let outcome =
      match recover (Bytes.copy img) with
      | Ok () -> None
      | Error message -> Some message
      | exception e -> Some ("recovery raised " ^ Printexc.to_string e)
    in
    match outcome with
    | None -> ()
    | Some message ->
      if List.length !failures < config.max_failures then
        failures := { crash_point = point; message } :: !failures
  in
  let inject point =
    incr crash_points;
    if Machine.crash_state_count machine <= float_of_int config.exhaustive_limit then begin
      incr exhaustive_points;
      ignore
        (Machine.iter_crash_states ~limit:config.exhaustive_limit machine (try_image point))
    end
    else
      for _ = 1 to config.samples_per_point do
        try_image point (Machine.sample_crash_state machine rng)
      done
  in
  inject (-1);
  for i = 0 to steps - 1 do
    step i;
    if List.length !failures < config.max_failures then inject i
  done;
  {
    crash_points = !crash_points;
    images_tested = !images;
    exhaustive_points = !exhaustive_points;
    failures = List.rev !failures;
  }

type live = {
  l_machine : Machine.t;
  l_recover : bytes -> (unit, string) result;
  l_config : config;
  l_rng : Rng.t;
  mutable l_ops : int;
  mutable l_crash_points : int;
  mutable l_images : int;
  mutable l_exhaustive : int;
  mutable l_failures : failure list;
}

let live_inject l =
  if List.length l.l_failures < l.l_config.max_failures then begin
    l.l_crash_points <- l.l_crash_points + 1;
    let try_image img =
      l.l_images <- l.l_images + 1;
      let outcome =
        match l.l_recover (Bytes.copy img) with
        | Ok () -> None
        | Error message -> Some message
        | exception e -> Some ("recovery raised " ^ Printexc.to_string e)
      in
      match outcome with
      | None -> ()
      | Some message ->
        if List.length l.l_failures < l.l_config.max_failures then
          l.l_failures <- { crash_point = l.l_ops; message } :: l.l_failures
    in
    if Machine.crash_state_count l.l_machine <= float_of_int l.l_config.exhaustive_limit then begin
      l.l_exhaustive <- l.l_exhaustive + 1;
      ignore (Machine.iter_crash_states ~limit:l.l_config.exhaustive_limit l.l_machine try_image)
    end
    else
      for _ = 1 to l.l_config.samples_per_point do
        try_image (Machine.sample_crash_state l.l_machine l.l_rng)
      done
  end

let attach ?(config = default_config) ?(every = 4) ~machine ~recover () =
  if not (Machine.track_versions machine) then
    invalid_arg "Crashtest.attach: machine must be created with ~track_versions:true";
  if every <= 0 then invalid_arg "Crashtest.attach: every must be positive";
  let l =
    {
      l_machine = machine;
      l_recover = recover;
      l_config = config;
      l_rng = Rng.create config.seed;
      l_ops = 0;
      l_crash_points = 0;
      l_images = 0;
      l_exhaustive = 0;
      l_failures = [];
    }
  in
  let emit kind _loc =
    match (kind : Pmtest_trace.Event.kind) with
    | Pmtest_trace.Event.Op _ ->
      l.l_ops <- l.l_ops + 1;
      if l.l_ops mod every = 0 then live_inject l
    | _ -> ()
  in
  (l, { Pmtest_trace.Sink.emit })

let live_verdict l =
  live_inject l;
  {
    crash_points = l.l_crash_points;
    images_tested = l.l_images;
    exhaustive_points = l.l_exhaustive;
    failures = List.rev l.l_failures;
  }

let pp_verdict ppf v =
  if survived v then
    Format.fprintf ppf "survived %d crash points (%d durable images tested, %d exhaustive)"
      v.crash_points v.images_tested v.exhaustive_points
  else begin
    Format.fprintf ppf "@[<v>%d violation(s) over %d images:" (List.length v.failures)
      v.images_tested;
    List.iter
      (fun f -> Format.fprintf ppf "@,  after step %d: %s" f.crash_point f.message)
      v.failures;
    Format.fprintf ppf "@]"
  end
