(** Memcached-like persistent KV server over Mnemosyne (paper Table 4).

    The store is sharded: each server thread owns one shard — a Mnemosyne
    region holding a persistent map — and drains its own client stream, so
    threads never touch each other's PM state (WHISPER observes that
    inter-thread PM dependencies are rare; §7.4). Every shard traces to
    its own sink, matching PMTest's per-thread trace builders. *)

open Pmtest_util
open Pmtest_trace
module Pmap = Pmtest_mnemosyne.Pmap

type t

val create :
  ?shard_size:int ->
  ?buckets:int ->
  ?value_cap:int ->
  shards:int ->
  sink_of:(int -> Sink.t) ->
  unit ->
  t
(** [sink_of i] is the trace sink for shard/thread [i]. *)

val shard_count : t -> int
val pmap : t -> int -> Pmap.t

val shard_of : t -> int64 -> int
(** Which shard serves this key. *)

val partition : t -> Clients.kv_op array -> Clients.kv_op array array
(** Split a client stream into per-shard streams (a client talks to the
    shard its key hashes to). *)

val apply : t -> shard:int -> Clients.kv_op -> unit
(** Serve one operation on the shard (must be called from the thread that
    owns the shard). *)

val run :
  ?section_every:int ->
  ?on_section:(int -> unit) ->
  t ->
  streams:Clients.kv_op array array ->
  unit
(** Serve each stream on its own domain ([streams] must have one entry per
    shard). [on_section shard] is invoked every [section_every] operations
    (default 16) and once at the end — the hook used to send the trace
    section to the checking pool. *)

val check_consistent : t -> (unit, string) result
val total_entries : t -> int

val generate_streams :
  client:(ops:int -> keys:int -> Rng.t -> Clients.kv_op array) ->
  ops_per_client:int ->
  keys:int ->
  seed:int ->
  t ->
  Clients.kv_op array array
(** One client per shard: generate each client's stream and route the ops
    to the shard that owns each key. *)
