module Fs = Pmtest_pmfs.Fs

let apply fs op =
  match (op : Clients.fs_op) with
  | Clients.Create name -> ignore (Fs.create fs name)
  | Clients.Delete name -> ignore (Fs.unlink fs name)
  | Clients.Write { name; off; data } -> begin
    match Fs.lookup fs name with
    | None -> begin
      match Fs.create fs name with
      | Ok ino -> ignore (Fs.write fs ~ino ~off data)
      | Error _ -> ()
    end
    | Some ino -> ignore (Fs.write fs ~ino ~off data)
  end
  | Clients.Read { name; off; len } -> begin
    match Fs.lookup fs name with
    | None -> ()
    | Some ino -> ignore (Fs.read fs ~ino ~off ~len)
  end
  | Clients.Fsync name -> begin
    match Fs.lookup fs name with None -> () | Some ino -> Fs.fsync fs ~ino
  end

let run ?(on_section = fun () -> ()) ?(section_every = 8) fs ops =
  Array.iteri
    (fun i op ->
      apply fs op;
      if (i + 1) mod section_every = 0 then on_section ())
    ops;
  on_section ()
