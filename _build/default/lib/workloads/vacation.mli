(** Vacation — the STAMP travel-reservation benchmark in its WHISPER
    persistent-memory port, simplified to a single mutator.

    Three resource tables (cars / flights / rooms) and a customer table
    live in one PMDK pool; every operation is a single failure-atomic
    transaction that spans several maps — the multi-structure-transaction
    pattern the per-map microbenchmarks never exercise:

    - {!reserve}: pick a resource with free capacity, increment its used
      count and the customer's reservation count;
    - {!add_capacity}: grow a resource's total;
    - {!delete_customer}: release every reservation the customer holds.

    Conservation invariant (checked by {!check_consistent} and by the
    crash tests): for every resource type, the used count equals the sum
    of all customers' reservations of that type, and never exceeds the
    total. *)

open Pmtest_util
open Pmtest_trace
module Pool = Pmtest_pmdk.Pool

type t

type resource = Car | Flight | Room

val create :
  ?pool_size:int -> ?resources:int -> ?annotate:bool -> sink:Sink.t -> unit -> t
(** [resources] resource records per type (default 64), each starting
    with a small random-free capacity. *)

val pool : t -> Pool.t

val reserve : t -> customer:int64 -> resource -> id:int64 -> bool
(** [false] if the resource does not exist or is fully booked. *)

val add_capacity : t -> resource -> id:int64 -> int -> unit
val delete_customer : t -> customer:int64 -> bool

val used : t -> resource -> id:int64 -> int
val total : t -> resource -> id:int64 -> int
val reservations : t -> customer:int64 -> int
(** Total reservations held by the customer, 0 if unknown. *)

val check_consistent : t -> (unit, string) result

type op = Reserve of { customer : int64; resource : resource; id : int64 }
        | Add_capacity of { resource : resource; id : int64; amount : int }
        | Delete_customer of { customer : int64 }

val client : ops:int -> customers:int -> resources:int -> Rng.t -> op array
(** STAMP-like mix: ~90% reservations, ~5% capacity updates, ~5%
    customer deletions. *)

val apply : t -> op -> unit
val run : ?on_section:(unit -> unit) -> ?section_every:int -> t -> op array -> unit
