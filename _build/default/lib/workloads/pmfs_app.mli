(** Drives the simulated PMFS with the file-system client mixes
    (paper Table 4: PMFS + Filebench / OLTP-complex). *)

module Fs = Pmtest_pmfs.Fs

val apply : Fs.t -> Clients.fs_op -> unit
(** Serve one operation; unknown names and out-of-space conditions are
    tolerated the way a load generator tolerates errors. *)

val run : ?on_section:(unit -> unit) -> ?section_every:int -> Fs.t -> Clients.fs_op array -> unit
(** Apply a stream, invoking [on_section] every [section_every] ops
    (default 8) and once at the end. *)
