module Pool = Pmtest_pmdk.Pool
module Hashmap_tx = Pmtest_pmdk.Hashmap_tx

(* Volatile LRU bookkeeping: key -> tick of last use, plus a min-heap-free
   linear scan on eviction (capacities in the benchmarks are small enough;
   Redis itself samples candidates rather than tracking exactly). *)
type t = {
  pool : Pool.t;
  dict : Hashmap_tx.t;
  capacity : int;
  annotate : bool;
  last_use : (int64, int) Hashtbl.t;
  mutable tick : int;
  mutable evictions : int;
}

let create ?(pool_size = 32 * 1024 * 1024) ?(buckets = 4096) ?(capacity = 4096)
    ?(annotate = true) ~sink () =
  let pool = Pool.create ~size:pool_size ~sink () in
  let dict = Hashmap_tx.create ~buckets pool in
  {
    pool;
    dict;
    capacity;
    annotate;
    last_use = Hashtbl.create (2 * capacity);
    tick = 0;
    evictions = 0;
  }

let pool t = t.pool
let dict t = t.dict
let capacity t = t.capacity
let cardinal t = Hashmap_tx.cardinal t.dict
let evictions t = t.evictions

let touch t key =
  t.tick <- t.tick + 1;
  Hashtbl.replace t.last_use key t.tick

let lru_victim t =
  Hashtbl.fold
    (fun key tick acc ->
      match acc with Some (_, best) when best <= tick -> acc | _ -> Some (key, tick))
    t.last_use None

let with_checkers t f =
  if t.annotate then begin
    Pool.tx_checker_start t.pool;
    f ();
    Pool.tx_checker_end t.pool
  end
  else f ()

let del t ~key =
  let existed = ref false in
  with_checkers t (fun () ->
      existed := Hashmap_tx.remove t.dict ~key;
      if !existed then Hashtbl.remove t.last_use key);
  !existed

let set t ~key ~value =
  with_checkers t (fun () ->
      (* Evict if inserting a fresh key at capacity. *)
      if (not (Hashtbl.mem t.last_use key)) && cardinal t >= t.capacity then begin
        match lru_victim t with
        | Some (victim, _) ->
          ignore (Hashmap_tx.remove t.dict ~key:victim);
          Hashtbl.remove t.last_use victim;
          t.evictions <- t.evictions + 1
        | None -> ()
      end;
      Hashmap_tx.insert t.dict ~key ~value);
  touch t key

let get t ~key =
  let r = Hashmap_tx.lookup t.dict ~key in
  if r <> None then touch t key;
  r

let apply t op =
  match (op : Clients.kv_op) with
  | Clients.Get key -> ignore (get t ~key)
  | Clients.Set (key, v) -> set t ~key ~value:(Bytes.of_string v)

let run t ops = Array.iter (apply t) ops

let check_consistent t =
  match Hashmap_tx.check_consistent t.dict with
  | Error e -> Error e
  | Ok () ->
    if cardinal t > t.capacity then
      Error (Printf.sprintf "over capacity: %d > %d" (cardinal t) t.capacity)
    else Ok ()
