lib/workloads/memcached.ml: Array Clients Domain Int64 List Pmtest_mnemosyne Pmtest_util Printf Rng String
