lib/workloads/vacation.ml: Array Bytes Format Hashtbl Int64 List Option Pmtest_pmdk Pmtest_util Rng String
