lib/workloads/redis.mli: Clients Pmtest_pmdk Pmtest_trace Sink
