lib/workloads/clients.mli: Pmtest_util Rng
