lib/workloads/vacation.mli: Pmtest_pmdk Pmtest_trace Pmtest_util Rng Sink
