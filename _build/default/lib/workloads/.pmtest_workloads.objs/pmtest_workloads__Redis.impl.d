lib/workloads/redis.ml: Array Bytes Clients Hashtbl Pmtest_pmdk Printf
