lib/workloads/memcached.mli: Clients Pmtest_mnemosyne Pmtest_trace Pmtest_util Rng Sink
