lib/workloads/pmfs_app.mli: Clients Pmtest_pmfs
