lib/workloads/pmfs_app.ml: Array Clients Pmtest_pmfs
