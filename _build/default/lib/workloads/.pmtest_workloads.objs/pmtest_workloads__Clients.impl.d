lib/workloads/clients.ml: Array Char Int64 List Pmtest_util Printf Rng String
