open Pmtest_util

type kv_op = Get of int64 | Set of int64 * string

type fs_op =
  | Create of string
  | Write of { name : string; off : int; data : string }
  | Read of { name : string; off : int; len : int }
  | Delete of string
  | Fsync of string

let value rng size =
  String.init size (fun _ -> Char.chr (Char.code 'a' + Rng.int rng 26))

let memslap ?(value_size = 32) ~ops ~keys rng =
  Array.init ops (fun _ ->
      let key = Int64.of_int (Rng.int rng keys) in
      if Rng.int rng 100 < 5 then Set (key, value rng value_size) else Get key)

let ycsb ?(value_size = 32) ?(theta = 0.9) ~ops ~keys rng =
  Array.init ops (fun _ ->
      let key = Int64.of_int (Rng.zipf rng ~n:keys ~theta) in
      if Rng.int rng 100 < 50 then Set (key, value rng value_size) else Get key)

let redis_lru ?(value_size = 32) ~ops ~keys rng =
  (* The LRU test mostly inserts fresh keys (forcing eviction) with
     occasional reads of recently used ones. *)
  Array.init ops (fun i ->
      if Rng.int rng 100 < 80 then
        Set (Int64.of_int (Rng.int rng keys), value rng value_size)
      else
        let recent = max 0 (i - 1 - Rng.int rng 16) in
        Get (Int64.of_int (recent mod keys)))

let file_name i = Printf.sprintf "f%04d" i

let filebench ?(io_size = 256) ~ops ~files rng =
  (* File-server flavour: whole-file writes and reads with some churn. *)
  let exists = Array.make files false in
  Array.init ops (fun _ ->
      let f = Rng.int rng files in
      let name = file_name f in
      if not exists.(f) then begin
        exists.(f) <- true;
        Create name
      end
      else
        match Rng.int rng 10 with
        | 0 ->
          exists.(f) <- false;
          Delete name
        | 1 | 2 | 3 -> Read { name; off = 0; len = io_size }
        | 4 -> Fsync name
        | _ -> Write { name; off = 0; data = value rng io_size })

let oltp ?(row_size = 64) ~ops ~tables ~rows_per_table rng =
  (* OLTP-complex flavour: row-granular updates at random offsets of a few
     large "table" files, with a commit fsync after each update. *)
  let table_name i = Printf.sprintf "tbl%02d" i in
  let created = Array.make tables false in
  let out = ref [] in
  let n = ref 0 in
  while !n < ops do
    let tbl = Rng.int rng tables in
    if not created.(tbl) then begin
      created.(tbl) <- true;
      out := Create (table_name tbl) :: !out;
      incr n
    end
    else begin
      let row = Rng.int rng rows_per_table in
      out := Write { name = table_name tbl; off = row * row_size; data = value rng row_size } :: !out;
      incr n;
      if !n < ops then begin
        out := Fsync (table_name tbl) :: !out;
        incr n
      end
    end
  done;
  Array.of_list (List.rev !out)

let kv_op_name = function Get _ -> "get" | Set _ -> "set"

let fs_op_name = function
  | Create _ -> "create"
  | Write _ -> "write"
  | Read _ -> "read"
  | Delete _ -> "delete"
  | Fsync _ -> "fsync"
