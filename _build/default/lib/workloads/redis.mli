(** Redis-like persistent cache over the PMDK transactional hashmap
    (paper Table 4: Redis + redis-cli LRU test).

    Single-threaded (like Redis' event loop). The dictionary lives in PM;
    the LRU bookkeeping is volatile runtime state, rebuilt on restart.
    When the cache is at capacity an insert first evicts the
    least-recently-used key, each step in its own failure-atomic
    transaction, optionally wrapped in the transaction checkers the paper
    uses for this workload. *)

open Pmtest_trace
module Pool = Pmtest_pmdk.Pool
module Hashmap_tx = Pmtest_pmdk.Hashmap_tx

type t

val create :
  ?pool_size:int -> ?buckets:int -> ?capacity:int -> ?annotate:bool -> sink:Sink.t -> unit -> t
(** [annotate] (default true) wraps every command in
    [TX_CHECKER_START]/[TX_CHECKER_END]. *)

val pool : t -> Pool.t
val dict : t -> Hashmap_tx.t
val capacity : t -> int
val cardinal : t -> int
val evictions : t -> int

val set : t -> key:int64 -> value:bytes -> unit
val get : t -> key:int64 -> bytes option
val del : t -> key:int64 -> bool

val apply : t -> Clients.kv_op -> unit
val run : t -> Clients.kv_op array -> unit

val check_consistent : t -> (unit, string) result
