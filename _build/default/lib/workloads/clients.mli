(** Load generators for the real-workload experiments (paper Table 4).

    Each generator produces a deterministic operation stream from a seeded
    RNG, mimicking the op mixes of the original clients:

    - {!memslap}: Memslap's default mix — 5% SET / 95% GET over a uniform
      key space;
    - {!ycsb}: YCSB workload A shape — 50% UPDATE / 50% READ with Zipfian
      key popularity;
    - {!redis_lru}: the redis-cli LRU test — SETs over a key space larger
      than the cache capacity plus GETs of recent keys;
    - {!filebench}: a Filebench-like file-server mix (create / write /
      read / delete);
    - {!oltp}: an OLTP-complex-like mix — small row updates in large
      table files followed by fsync. *)

open Pmtest_util

type kv_op = Get of int64 | Set of int64 * string

type fs_op =
  | Create of string
  | Write of { name : string; off : int; data : string }
  | Read of { name : string; off : int; len : int }
  | Delete of string
  | Fsync of string

val memslap : ?value_size:int -> ops:int -> keys:int -> Rng.t -> kv_op array
val ycsb : ?value_size:int -> ?theta:float -> ops:int -> keys:int -> Rng.t -> kv_op array
val redis_lru : ?value_size:int -> ops:int -> keys:int -> Rng.t -> kv_op array

val filebench : ?io_size:int -> ops:int -> files:int -> Rng.t -> fs_op array
val oltp : ?row_size:int -> ops:int -> tables:int -> rows_per_table:int -> Rng.t -> fs_op array

val kv_op_name : kv_op -> string
val fs_op_name : fs_op -> string
