open Pmtest_util
module Region = Pmtest_mnemosyne.Region
module Pmap = Pmtest_mnemosyne.Pmap

type shard = { region : Region.t; pmap : Pmap.t }
type t = { shards : shard array; value_cap : int }

let create ?(shard_size = 8 * 1024 * 1024) ?(buckets = 512) ?(value_cap = 64) ~shards ~sink_of
    () =
  if shards <= 0 then invalid_arg "Memcached.create: need at least one shard";
  let mk i =
    let region = Region.create ~size:shard_size ~sink:(sink_of i) () in
    let pmap = Pmap.create ~buckets ~value_cap region in
    { region; pmap }
  in
  { shards = Array.init shards mk; value_cap }

let shard_count t = Array.length t.shards
let pmap t i = t.shards.(i).pmap

let shard_of t key =
  let h = Int64.to_int (Int64.mul key 0xff51afd7ed558ccdL) land max_int in
  h mod Array.length t.shards

let partition t ops =
  let per_shard = Array.make (Array.length t.shards) [] in
  Array.iter
    (fun op ->
      let key = match (op : Clients.kv_op) with Clients.Get k | Clients.Set (k, _) -> k in
      let s = shard_of t key in
      per_shard.(s) <- op :: per_shard.(s))
    ops;
  Array.map (fun l -> Array.of_list (List.rev l)) per_shard

let apply t ~shard op =
  let { pmap; _ } = t.shards.(shard) in
  match (op : Clients.kv_op) with
  | Clients.Get key -> ignore (Pmap.get pmap ~key)
  | Clients.Set (key, v) ->
    let v = if String.length v > t.value_cap then String.sub v 0 t.value_cap else v in
    Pmap.set pmap ~key ~value:v

let run ?(section_every = 16) ?(on_section = fun _ -> ()) t ~streams =
  if Array.length streams <> Array.length t.shards then
    invalid_arg "Memcached.run: one stream per shard required";
  let serve shard =
    let stream = streams.(shard) in
    Array.iteri
      (fun i op ->
        apply t ~shard op;
        if (i + 1) mod section_every = 0 then on_section shard)
      stream;
    on_section shard
  in
  if Array.length t.shards = 1 then serve 0
  else begin
    let domains =
      Array.mapi (fun i _ -> Domain.spawn (fun () -> serve i)) t.shards
    in
    Array.iter Domain.join domains
  end

let check_consistent t =
  let rec go i =
    if i >= Array.length t.shards then Ok ()
    else
      match Pmap.check_consistent t.shards.(i).pmap with
      | Ok () -> go (i + 1)
      | Error e -> Error (Printf.sprintf "shard %d: %s" i e)
  in
  go 0

let total_entries t = Array.fold_left (fun acc s -> acc + Pmap.cardinal s.pmap) 0 t.shards

let generate_streams ~client ~ops_per_client ~keys ~seed t =
  let shards = Array.length t.shards in
  let per_shard = Array.make shards [] in
  for c = 0 to shards - 1 do
    let rng = Rng.create (seed + (c * 7919)) in
    let ops = client ~ops:ops_per_client ~keys rng in
    Array.iter
      (fun op ->
        let key = match (op : Clients.kv_op) with Clients.Get k | Clients.Set (k, _) -> k in
        let s = shard_of t key in
        per_shard.(s) <- op :: per_shard.(s))
      ops
  done;
  Array.map (fun l -> Array.of_list (List.rev l)) per_shard
