open Pmtest_util
module Pool = Pmtest_pmdk.Pool
module Hashmap_tx = Pmtest_pmdk.Hashmap_tx

type resource = Car | Flight | Room

let resource_index = function Car -> 0 | Flight -> 1 | Room -> 2
let resources_all = [| Car; Flight; Room |]

(* Resource record (16 B): total(8) used(8).
   Customer record (8 + 8*16 B): n(8) then up to 8 reservations of
   {type(8) id(8)}. *)
let max_reservations = 8
let customer_record_size = 8 + (max_reservations * 16)

type t = {
  pool : Pool.t;
  tables : Hashmap_tx.t array; (* per resource type *)
  customers : Hashmap_tx.t;
  annotate : bool;
}

let pool t = t.pool

let encode_resource ~total ~used =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int total);
  Bytes.set_int64_le b 8 (Int64.of_int used);
  b

let decode_resource b = (Int64.to_int (Bytes.get_int64_le b 0), Int64.to_int (Bytes.get_int64_le b 8))

let encode_customer reservations =
  let b = Bytes.make customer_record_size '\000' in
  Bytes.set_int64_le b 0 (Int64.of_int (List.length reservations));
  List.iteri
    (fun i (ty, id) ->
      Bytes.set_int64_le b (8 + (16 * i)) (Int64.of_int (resource_index ty));
      Bytes.set_int64_le b (8 + (16 * i) + 8) id)
    reservations;
  b

let decode_customer b =
  let n = Int64.to_int (Bytes.get_int64_le b 0) in
  List.init n (fun i ->
      let ty =
        match Int64.to_int (Bytes.get_int64_le b (8 + (16 * i))) with
        | 0 -> Car
        | 1 -> Flight
        | _ -> Room
      in
      (ty, Bytes.get_int64_le b (8 + (16 * i) + 8)))

let create ?(pool_size = 32 * 1024 * 1024) ?(resources = 64) ?(annotate = true) ~sink () =
  let pool = Pool.create ~size:pool_size ~sink () in
  let tables = Array.map (fun _ -> Hashmap_tx.create ~buckets:256 pool) resources_all in
  let customers = Hashmap_tx.create ~buckets:512 pool in
  (* Seed each table with capacity (deterministic pseudo-random totals). *)
  Array.iteri
    (fun ti table ->
      for id = 0 to resources - 1 do
        let total = 2 + ((id + (7 * ti)) mod 5) in
        Hashmap_tx.insert table ~key:(Int64.of_int id) ~value:(encode_resource ~total ~used:0)
      done)
    tables;
  { pool; tables; customers; annotate }

let table t ty = t.tables.(resource_index ty)

let lookup_resource t ty ~id =
  Option.map decode_resource (Hashmap_tx.lookup (table t ty) ~key:id)

let used t ty ~id = match lookup_resource t ty ~id with Some (_, u) -> u | None -> 0
let total t ty ~id = match lookup_resource t ty ~id with Some (tot, _) -> tot | None -> 0

let lookup_customer t ~customer =
  Option.map decode_customer (Hashmap_tx.lookup t.customers ~key:customer)

let reservations t ~customer =
  match lookup_customer t ~customer with Some l -> List.length l | None -> 0

let with_checkers t f =
  if t.annotate then begin
    Pool.tx_checker_start t.pool;
    let r = f () in
    Pool.tx_checker_end t.pool;
    r
  end
  else f ()

let reserve t ~customer ty ~id =
  with_checkers t (fun () ->
      match lookup_resource t ty ~id with
      | None -> false
      | Some (tot, used) ->
        let existing = Option.value ~default:[] (lookup_customer t ~customer) in
        if used >= tot || List.length existing >= max_reservations then false
        else begin
          (* One failure-atomic transaction across both tables. *)
          Pool.tx t.pool (fun () ->
              Hashmap_tx.insert (table t ty) ~key:id
                ~value:(encode_resource ~total:tot ~used:(used + 1));
              Hashmap_tx.insert t.customers ~key:customer
                ~value:(encode_customer ((ty, id) :: existing)));
          true
        end)

let add_capacity t ty ~id amount =
  with_checkers t (fun () ->
      match lookup_resource t ty ~id with
      | None ->
        Pool.tx t.pool (fun () ->
            Hashmap_tx.insert (table t ty) ~key:id
              ~value:(encode_resource ~total:(max amount 0) ~used:0))
      | Some (tot, used) ->
        let total = max used (tot + amount) in
        Pool.tx t.pool (fun () ->
            Hashmap_tx.insert (table t ty) ~key:id ~value:(encode_resource ~total ~used)))

let delete_customer t ~customer =
  with_checkers t (fun () ->
      match lookup_customer t ~customer with
      | None -> false
      | Some reservations ->
        (* Release every held reservation and drop the customer, all in
           one transaction. *)
        Pool.tx t.pool (fun () ->
            List.iter
              (fun (ty, id) ->
                match lookup_resource t ty ~id with
                | Some (tot, used) when used > 0 ->
                  Hashmap_tx.insert (table t ty) ~key:id
                    ~value:(encode_resource ~total:tot ~used:(used - 1))
                | _ -> ())
              reservations;
            ignore (Hashmap_tx.remove t.customers ~key:customer));
        true)

let check_consistent t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  Array.iter
    (fun table -> match Hashmap_tx.check_consistent table with Ok () -> () | Error e -> err "%s" e)
    t.tables;
  (match Hashmap_tx.check_consistent t.customers with Ok () -> () | Error e -> err "%s" e);
  (* Conservation: per (type, id), resource.used equals the number of
     customer reservations pointing at it, and used <= total. *)
  let claimed = Hashtbl.create 64 in
  Hashmap_tx.iter t.customers (fun _cust b ->
      List.iter
        (fun (ty, id) ->
          let k = (resource_index ty, id) in
          Hashtbl.replace claimed k (1 + Option.value ~default:0 (Hashtbl.find_opt claimed k)))
        (decode_customer b));
  Array.iteri
    (fun ti table ->
      Hashmap_tx.iter table (fun id b ->
          let tot, used = decode_resource b in
          if used > tot then err "resource (%d,%Ld) overbooked: %d > %d" ti id used tot;
          let c = Option.value ~default:0 (Hashtbl.find_opt claimed (ti, id)) in
          if c <> used then
            err "resource (%d,%Ld): used=%d but %d customer reservations" ti id used c))
    t.tables;
  (* Every claim must reference an existing resource. *)
  Hashtbl.iter
    (fun (ti, id) _ ->
      if Hashmap_tx.lookup t.tables.(ti) ~key:id = None then
        err "reservation references missing resource (%d,%Ld)" ti id)
    claimed;
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))

type op =
  | Reserve of { customer : int64; resource : resource; id : int64 }
  | Add_capacity of { resource : resource; id : int64; amount : int }
  | Delete_customer of { customer : int64 }

let client ~ops ~customers ~resources rng =
  Array.init ops (fun _ ->
      let resource = resources_all.(Rng.int rng 3) in
      let id = Int64.of_int (Rng.int rng resources) in
      match Rng.int rng 100 with
      | n when n < 90 -> Reserve { customer = Int64.of_int (Rng.int rng customers); resource; id }
      | n when n < 95 -> Add_capacity { resource; id; amount = 1 + Rng.int rng 3 }
      | _ -> Delete_customer { customer = Int64.of_int (Rng.int rng customers) })

let apply t = function
  | Reserve { customer; resource; id } -> ignore (reserve t ~customer resource ~id)
  | Add_capacity { resource; id; amount } -> add_capacity t resource ~id amount
  | Delete_customer { customer } -> ignore (delete_customer t ~customer)

let run ?(on_section = fun () -> ()) ?(section_every = 8) t ops =
  Array.iteri
    (fun i op ->
      apply t op;
      if (i + 1) mod section_every = 0 then on_section ())
    ops;
  on_section ()
