(** The bug suite: the paper's 42 synthetic Table-5 cases across the six
    categories, plus the six Table-6 bugs (three known from commit
    histories, three newly found by PMTest) as reproducible programs. *)

val synthetic : Case.t list
(** 42 cases: ordering 4, writeback 6, low-level performance 2,
    backup 19, completion 7, log performance 4 — matching Table 5. *)

val table6 : Case.t list
(** The three known and three new real bugs of Table 6. *)

val extended : Case.t list
(** Beyond the paper's tables: bug switches in the custom low-level CCS
    applications (persistent queue, persistent append log). *)

val all : Case.t list
(** [synthetic @ table6 @ extended]. *)

val by_category : Case.t list -> (Case.category * Case.t list) list
(** Stable grouping in Table-5 order. *)
