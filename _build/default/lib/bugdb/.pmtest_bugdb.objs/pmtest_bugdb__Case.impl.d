lib/bugdb/case.ml: Pmtest_core
