lib/bugdb/case.mli: Pmtest_core
