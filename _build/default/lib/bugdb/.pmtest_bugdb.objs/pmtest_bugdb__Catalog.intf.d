lib/bugdb/catalog.mli: Case
