lib/pmfs/fs.ml: Bytes Format Hashtbl Int64 List Option Pmtest_pmem Pmtest_trace String
