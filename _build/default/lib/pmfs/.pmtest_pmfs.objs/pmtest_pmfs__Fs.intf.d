lib/pmfs/fs.mli: Pmtest_pmem Pmtest_trace Sink
