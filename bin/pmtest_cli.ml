(* Command-line front end: run the bug suite, test a workload under a
   chosen tool, or walk through the paper's Fig. 7 trace. *)

open Cmdliner
open Pmtest_util
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest
module Engine = Pmtest_core.Engine
module Pmemcheck = Pmtest_baseline.Pmemcheck
module Lint = Pmtest_lint.Lint
module Rule = Pmtest_lint.Rule
module Repair = Pmtest_repair.Repair
module Sink = Pmtest_trace.Sink
module Event = Pmtest_trace.Event
module Obs = Pmtest_obs.Obs
module Model = Pmtest_model.Model
module Interval = Pmtest_model.Interval
module Server = Pmtest_server.Server
module Client = Pmtest_client.Client
module Wire = Pmtest_wire.Wire
module Litmus = Pmtest_litmus.Litmus
module Suite = Pmtest_litmus.Suite
open Pmtest_bugdb
open Pmtest_workloads

(* --- bugs ------------------------------------------------------------------- *)

let run_bugs which verbose =
  let cases =
    match which with
    | `Table5 -> Catalog.synthetic
    | `Table6 -> Catalog.table6
    | `Extended -> Catalog.extended
    | `All -> Catalog.all
  in
  let detected = ref 0 and false_pos = ref 0 in
  let by_cat = Catalog.by_category cases in
  List.iter
    (fun (cat, cs) ->
      Fmt.pr "@.%s (%d cases)@." (Case.category_name cat) (List.length cs);
      List.iter
        (fun case ->
          let outcome = Case.execute case in
          if outcome.Case.detected then incr detected;
          if not outcome.Case.clean then incr false_pos;
          let mark = if outcome.Case.detected then "detected" else "MISSED " in
          Fmt.pr "  [%s] %-12s %s@." mark case.Case.id case.Case.description;
          if verbose then
            List.iter
              (fun d -> Fmt.pr "      %a@." Report.pp_diagnostic d)
              outcome.Case.report.Report.diagnostics)
        cs)
    by_cat;
  Fmt.pr "@.%d/%d bugs detected, %d false positives on the clean twins@." !detected
    (List.length cases) !false_pos;
  if !detected = List.length cases && !false_pos = 0 then 0 else 1

let which_arg =
  let table5 = Arg.info [ "table5" ] ~doc:"Only the 42 synthetic Table-5 cases." in
  let table6 = Arg.info [ "table6" ] ~doc:"Only the six real Table-6 bugs." in
  let extended =
    Arg.info [ "extended" ] ~doc:"Only the extended custom-CCS cases (pqueue, plog)."
  in
  Arg.(value (vflag `All [ (`Table5, table5); (`Table6, table6); (`Extended, extended) ]))

let verbose_arg = Arg.(value (flag (info [ "v"; "verbose" ] ~doc:"Print every diagnostic.")))

let bugs_cmd =
  Cmd.v
    (Cmd.info "bugs" ~doc:"Run the bug-injection suite (paper Tables 5 and 6).")
    Term.(const run_bugs $ which_arg $ verbose_arg)

(* --- workload ---------------------------------------------------------------- *)

type tool =
  | Tool_none
  | Tool_pmtest
  | Tool_pmemcheck
  | Tool_remote of { socket : string; model : Model.kind }
      (** Trace into a session on a running [pmtestd] ([attach]). *)

(* The slice of a tracing session the workload drivers need — one
   implementation wraps an in-process [Pmtest] session, the other a
   remote daemon session, so every workload can run under either
   without knowing which. *)
type session_like = {
  s_sink : int -> Sink.t;  (* per program thread *)
  s_send : int -> unit;  (* PMTest_SEND_TRACE for that thread *)
  s_finish : unit -> (Report.t, string) result;
}

let pmtest_session ?(model = Model.X86) ~obs ~workers () =
  let s = Pmtest.init ~model ~workers ~obs () in
  {
    s_sink =
      (fun thread ->
        Pmtest.thread_init s ~thread;
        Pmtest.sink ~thread s);
    s_send = (fun thread -> Pmtest.send_trace ~thread s);
    s_finish = (fun () -> Ok (Pmtest.finish s));
  }

let remote_session ~obs ~socket ~model () =
  let on_retry ~attempt ~delay err =
    Fmt.epr "attach: %s; retry %d in %.0f ms@.%!" err attempt (delay *. 1000.)
  in
  match Client.connect_retry ~model ~attempts:5 ~on_retry ~socket () with
  | Error m -> Error m
  | Ok conn ->
    let s = Client.Session.make ~obs conn in
    Ok
      {
        s_sink = (fun thread -> Client.Session.sink ~thread s);
        s_send = (fun thread -> Client.Session.send_trace ~thread s);
        s_finish =
          (fun () ->
            let r = Client.Session.finish s in
            Client.close conn;
            r);
      }

(* Tee: record every event a session sink sees, so [attach --record]
   can save the trace it just streamed. *)
let recording = ref None

let record_events () =
  let buf = Pmtest_util.Vec.create () in
  let m = Mutex.create () in
  recording := Some (buf, m);
  fun () ->
    Mutex.lock m;
    let a = Pmtest_util.Vec.to_array buf in
    Mutex.unlock m;
    a

let tee_sink thread (sink : Sink.t) =
  match !recording with
  | None -> sink
  | Some (buf, m) ->
    {
      Sink.emit =
        (fun kind loc ->
          Mutex.lock m;
          Pmtest_util.Vec.push buf (Event.make ~thread ~loc kind);
          Mutex.unlock m;
          sink.Sink.emit kind loc);
    }

(* Replay a recorded event stream through a session, chunked into
   sections of [section] entries, flushing the boundary event's thread —
   the same chunking for the in-process and the remote session, so an
   [attach --verify] comparison is over identical section streams. *)
let replay_session ~section s entries =
  let sinks = Hashtbl.create 8 in
  let sink th =
    match Hashtbl.find_opt sinks th with
    | Some k -> k
    | None ->
      let k = tee_sink th (s.s_sink th) in
      Hashtbl.replace sinks th k;
      k
  in
  Array.iteri
    (fun i (e : Event.t) ->
      (sink e.Event.thread).Sink.emit e.Event.kind e.Event.loc;
      if (i + 1) mod section = 0 then s.s_send e.Event.thread)
    entries;
  s.s_finish ()

(* Shared by [workload], [stat WORKLOAD] and [attach WORKLOAD]: run the
   named workload and return the tool's report, with [obs] threaded
   into every session. *)
let exec_workload ?(local_model = Model.X86) ~obs name tool ops threads workers seed =
  let finish_report = ref Report.empty in
  let mk_session () =
    match tool with
    | Tool_pmtest -> Ok (Some (pmtest_session ~model:local_model ~obs ~workers ()))
    | Tool_remote { socket; model } -> (
      match remote_session ~obs ~socket ~model () with
      | Ok s -> Ok (Some s)
      | Error m -> Error ("cannot attach: " ^ m))
    | Tool_none | Tool_pmemcheck -> Ok None
  in
  let with_session k =
    match mk_session () with
    | Error _ as e -> e
    | Ok session -> (
      match k session with
      | Error _ as e -> e
      | Ok () -> (
        match session with
        | None -> Ok ()
        | Some s -> (
          match s.s_finish () with
          | Ok r ->
            finish_report := r;
            Ok ()
          | Error m -> Error ("session failed: " ^ m))))
  in
  let sink_for session thread =
    tee_sink thread (match session with Some s -> s.s_sink thread | None -> Sink.null)
  in
  let run_kv_memcached client =
    with_session (fun session ->
        let mc = Memcached.create ~shards:threads ~sink_of:(sink_for session) () in
        let streams =
          Memcached.generate_streams ~client ~ops_per_client:(ops / threads) ~keys:4096 ~seed mc
        in
        let on_section shard =
          match session with Some s -> s.s_send shard | None -> ()
        in
        Memcached.run mc ~on_section ~streams;
        Memcached.check_consistent mc)
  in
  let run_redis () =
    match tool with
    | Tool_pmemcheck ->
      let pc = Pmemcheck.create ~size:(32 * 1024 * 1024) in
      let r = Redis.create ~sink:(tee_sink 0 (Pmemcheck.sink pc)) () in
      Redis.run r (Clients.redis_lru ~ops ~keys:16384 (Rng.create seed));
      finish_report := Pmemcheck.result pc;
      Redis.check_consistent r
    | Tool_pmtest | Tool_remote _ ->
      with_session (fun session ->
          let r = Redis.create ~sink:(sink_for session 0) () in
          let ops_arr = Clients.redis_lru ~ops ~keys:16384 (Rng.create seed) in
          let send () = match session with Some s -> s.s_send 0 | None -> () in
          Array.iteri
            (fun i op ->
              Redis.apply r op;
              if i mod 16 = 0 then send ())
            ops_arr;
          send ();
          Redis.check_consistent r)
    | Tool_none ->
      let r = Redis.create ~annotate:false ~sink:Sink.null () in
      Redis.run r (Clients.redis_lru ~ops ~keys:16384 (Rng.create seed));
      Redis.check_consistent r
  in
  let run_pmfs client =
    with_session (fun session ->
        let fs = Pmtest_pmfs.Fs.mkfs ~inodes:128 ~blocks:1024 ~sink:(sink_for session 0) () in
        let on_section () = match session with Some s -> s.s_send 0 | None -> () in
        Pmfs_app.run ~on_section fs (client (Rng.create seed));
        Pmtest_pmfs.Fs.check_consistent fs)
  in
  let result =
    match name with
    | "memcached-memslap" -> run_kv_memcached (fun ~ops ~keys rng -> Clients.memslap ~ops ~keys rng)
    | "memcached-ycsb" -> run_kv_memcached (fun ~ops ~keys rng -> Clients.ycsb ~ops ~keys rng)
    | "redis-lru" -> run_redis ()
    | "pmfs-filebench" -> run_pmfs (fun rng -> Clients.filebench ~ops ~files:32 rng)
    | "pmfs-oltp" -> run_pmfs (fun rng -> Clients.oltp ~ops ~tables:4 ~rows_per_table:64 rng)
    | "vacation" ->
      with_session (fun session ->
          let v = Vacation.create ~resources:64 ~sink:(sink_for session 0) () in
          let on_section () = match session with Some s -> s.s_send 0 | None -> () in
          Vacation.run v ~on_section
            (Vacation.client ~ops ~customers:256 ~resources:64 (Rng.create seed));
          Vacation.check_consistent v)
    | other -> Error (Printf.sprintf "unknown workload %S" other)
  in
  match result with Error e -> Error e | Ok () -> Ok !finish_report

let tool_name = function
  | Tool_none -> "none"
  | Tool_pmemcheck -> "pmemcheck"
  | Tool_pmtest -> "pmtest"
  | Tool_remote _ -> "remote"

let run_workload name tool ops threads workers seed profile =
  (match tool with
  | Tool_pmtest | Tool_remote _ -> ()
  | Tool_none | Tool_pmemcheck ->
    if profile then
      Fmt.epr "note: --profile instruments the pmtest pipeline; --tool %s collects nothing@."
        (tool_name tool));
  let obs = if profile then Obs.create () else Obs.disabled in
  match exec_workload ~obs name tool ops threads workers seed with
  | Error e ->
    Fmt.epr "workload failed: %s@." e;
    1
  | Ok report ->
    Fmt.pr "workload completed; store consistent.@.";
    (match tool with
    | Tool_none -> Fmt.pr "(no testing tool attached)@."
    | Tool_pmtest | Tool_pmemcheck | Tool_remote _ -> Fmt.pr "%a@." Report.pp report);
    if profile then Fmt.pr "@.%a@." Obs.pp (Obs.snapshot obs);
    if Report.has_fail report then 1 else 0

let workload_names =
  [ "memcached-memslap"; "memcached-ycsb"; "redis-lru"; "pmfs-filebench"; "pmfs-oltp"; "vacation" ]

let workload_cmd =
  let wname =
    Arg.(
      required
        (pos 0 (some (enum (List.map (fun n -> (n, n)) workload_names))) None
           (info [] ~docv:"WORKLOAD" ~doc:"One of: memcached-memslap, memcached-ycsb, redis-lru, pmfs-filebench, pmfs-oltp, vacation.")))
  in
  let tool =
    Arg.(
      value
        (opt (enum [ ("none", Tool_none); ("pmtest", Tool_pmtest); ("pmemcheck", Tool_pmemcheck) ])
           Tool_pmtest
           (info [ "tool" ] ~doc:"Testing tool to attach: none, pmtest or pmemcheck.")))
  in
  let profile =
    Common_args.profile
      ~doc:"Collect and print a pipeline profile (counters, worker utilization, latency histograms)."
  in
  Cmd.v
    (Cmd.info "workload" ~doc:"Run a WHISPER-style workload under a testing tool.")
    Term.(
      const run_workload $ wname $ tool
      $ Common_args.ops ()
      $ Common_args.threads
      $ Common_args.workers ()
      $ Common_args.seed ()
      $ profile)

(* --- record / check-trace ------------------------------------------------------ *)

(* Every recordable source runs under the x86 model; the two pmfs-*-bug
   drivers seed the auto-repair differentials with the real PMFS
   performance bugs (a surplus drain fence each). *)
let recordable_names =
  [ "redis-lru"; "pmfs-filebench"; "pmfs-oltp"; "pmfs-fsync-bug"; "pmfs-empty-tx-bug" ]

let record_workload name ops seed =
  let sink, recorded = Pmtest_trace.Serial.recording_sink () in
  let result =
    match name with
    | "redis-lru" ->
      let r = Redis.create ~sink () in
      Redis.run r (Clients.redis_lru ~ops ~keys:16384 (Rng.create seed));
      Redis.check_consistent r
    | "pmfs-filebench" ->
      let fs = Pmtest_pmfs.Fs.mkfs ~inodes:128 ~blocks:1024 ~sink () in
      Pmfs_app.run fs (Clients.filebench ~ops ~files:32 (Rng.create seed));
      Pmtest_pmfs.Fs.check_consistent fs
    | "pmfs-oltp" ->
      let fs = Pmtest_pmfs.Fs.mkfs ~inodes:128 ~blocks:1024 ~sink () in
      Pmfs_app.run fs (Clients.oltp ~ops ~tables:4 ~rows_per_table:64 (Rng.create seed));
      Pmtest_pmfs.Fs.check_consistent fs
    | "pmfs-fsync-bug" ->
      (* fsync.c:260 without the deliberate-drain annotation: everything
         is already durable after the write's commit, so both fsync
         fences drain nothing. *)
      let fs = Pmtest_pmfs.Fs.mkfs ~inodes:16 ~blocks:64 ~sink () in
      Pmtest_pmfs.Fs.set_fault fs (Some Pmtest_pmfs.Fs.Fsync_redundant_fence);
      Result.bind (Pmtest_pmfs.Fs.create fs "wal") (fun ino ->
          Result.bind
            (Pmtest_pmfs.Fs.write fs ~ino ~off:0 (String.make 192 'a'))
            (fun () ->
              Pmtest_pmfs.Fs.fsync fs ~ino;
              Pmtest_pmfs.Fs.fsync fs ~ino;
              Pmtest_pmfs.Fs.check_consistent fs))
    | "pmfs-empty-tx-bug" ->
      (* journal.c:633 without the empty-commit guard: an in-place
         overwrite journals no metadata, yet commit still fences — right
         after the data path's own drain at xips.c:208. *)
      let fs = Pmtest_pmfs.Fs.mkfs ~inodes:16 ~blocks:64 ~sink () in
      Pmtest_pmfs.Fs.set_fault fs (Some Pmtest_pmfs.Fs.Empty_tx_fence);
      Result.bind (Pmtest_pmfs.Fs.create fs "table") (fun ino ->
          Result.bind
            (Pmtest_pmfs.Fs.write fs ~ino ~off:0 (String.make 128 'a'))
            (fun () ->
              Result.bind
                (Pmtest_pmfs.Fs.write fs ~ino ~off:0 (String.make 128 'b'))
                (fun () -> Pmtest_pmfs.Fs.check_consistent fs)))
    | other -> Error (Printf.sprintf "workload %S cannot be recorded" other)
  in
  match result with Error e -> Error e | Ok () -> Ok (recorded ())

let run_record name ops seed output =
  match record_workload name ops seed with
  | Error e ->
    Fmt.epr "record failed: %s@." e;
    1
  | Ok entries ->
    Pmtest_trace.Serial.save_file ~header:[ "model: x86" ] output entries;
    Fmt.pr "recorded %d trace entries (%d PM operations) to %s@." (Array.length entries)
      (Pmtest_trace.Event.op_count entries) output;
    0

let record_cmd =
  let wname =
    Arg.(
      required
        (pos 0
           (some (enum (List.map (fun n -> (n, n)) recordable_names)))
           None
           (info [] ~docv:"WORKLOAD"
              ~doc:
                "redis-lru, pmfs-filebench, pmfs-oltp, or one of the seeded PMFS performance \
                 bugs: pmfs-fsync-bug, pmfs-empty-tx-bug.")))
  in
  let output = Arg.(value (opt string "trace.pmt" (info [ "o"; "output" ] ~doc:"Output file."))) in
  Cmd.v
    (Cmd.info "record" ~doc:"Run an annotated workload and save its trace to a file.")
    Term.(
      const run_record $ wname $ Common_args.ops ~default:1000 () $ Common_args.seed () $ output)

let run_check_trace file model profile =
  match Pmtest_trace.Serial.load_file file with
  | Error e ->
    Fmt.epr "cannot load %s: %s@." file e;
    2
  | Ok entries ->
    let obs = if profile then Obs.create () else Obs.disabled in
    let report =
      if Obs.enabled obs then begin
        (* The whole file is one section through the synchronous path. *)
        let n = Array.length entries in
        Obs.events_traced_add obs n;
        Obs.section_sent obs ~seq:0 ~entries:n;
        Obs.queue_depth obs 1;
        Obs.check_started obs ~seq:0 ~worker:0;
        let r = Engine.check ~obs ~model entries in
        Obs.check_finished obs ~seq:0;
        Obs.section_merged obs ~seq:0;
        r
      end
      else Engine.check ~model entries
    in
    Fmt.pr "%a@." Report.pp_summary report;
    if profile then Fmt.pr "@.%a@." Obs.pp (Obs.snapshot obs);
    if Report.has_fail report then 1 else 0

let check_trace_cmd =
  let file = Arg.(required (pos 0 (some file) None (info [] ~docv:"TRACE"))) in
  Cmd.v
    (Cmd.info "check-trace" ~doc:"Check a previously recorded trace file offline.")
    Term.(
      const run_check_trace $ file
      $ Common_args.model ()
      $ Common_args.profile ~doc:"Print a pipeline profile of the checking pass.")

(* --- lint -------------------------------------------------------------------- *)

(* Lint every catalog case from its raw op stream, checkers stripped:
   the validation mode behind the "checker-free" claim. *)
let run_lint_bugdb rules =
  Fmt.pr "%-14s %-10s %-40s %s@." "case" "expected" "lint findings (buggy)" "clean twin";
  List.iter
    (fun case ->
      let lint trace = Lint.run ~rules (Lint.strip_checkers trace) in
      let buggy = lint (Case.trace case) in
      let clean = lint (Case.trace_clean case) in
      let fired =
        List.sort_uniq compare (List.map (fun f -> Rule.id f.Lint.rule) buggy.Lint.findings)
      in
      Fmt.pr "%-14s %-10s %-40s %s@." case.Case.id
        (Report.kind_string case.Case.expected)
        (match fired with [] -> "-" | ids -> String.concat "," ids)
        (match clean.Lint.findings with
        | [] -> "clean"
        | fs ->
          String.concat "; "
            (List.map
               (fun f -> Printf.sprintf "%s@%s" (Rule.id f.Lint.rule) (Loc.to_string f.Lint.loc))
               fs)))
    Catalog.all;
  0

let run_lint file bugdb model rules_spec machine verbose =
  if rules_spec = "help" then begin
    print_endline (Rule.help ());
    0
  end
  else
  match Rule.of_spec rules_spec with
  | Error e ->
    Fmt.epr "--rules: %s@." e;
    2
  | Ok rules -> (
    if bugdb then run_lint_bugdb rules
    else
      match file with
      | None ->
        Fmt.epr "a TRACE file is required (or use --bugdb)@.";
        2
      | Some file -> (
        match Pmtest_trace.Serial.load_file file with
        | Error e ->
          Fmt.epr "cannot load %s: %s@." file e;
          2
        | Ok entries ->
          let result = Lint.run ~model ~rules entries in
          if machine then List.iter print_endline (Lint.machine_lines result)
          else if verbose then Fmt.pr "%a@." Lint.pp result
          else Fmt.pr "%a@." Report.pp_summary (Lint.report_of result);
          if Lint.has_fail result then 1 else 0))

let rules_arg =
  Arg.(
    value
      (opt string "default"
         (info [ "rules" ]
            ~doc:
              "Rule selection: $(b,all), $(b,none), $(b,default), a comma-separated list of \
               rule names (only those), $(b,+rule)/$(b,-rule) tweaks to the default set, or \
               $(b,help) to list every rule with its description.")))

let lint_cmd =
  let file = Arg.(value (pos 0 (some file) None (info [] ~docv:"TRACE"))) in
  let bugdb =
    Arg.(
      value
        (flag
           (info [ "bugdb" ]
              ~doc:
                "Instead of a trace file, lint every bug-catalog case from its raw op stream \
                 (checkers stripped) and tabulate which rules fire.")))
  in
  let rules = rules_arg in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Statically lint a recorded trace: no checkers needed, fix-it suggestions included.")
    Term.(
      const run_lint $ file $ bugdb
      $ Common_args.model ()
      $ rules
      $ Common_args.machine ~doc:"Machine-readable output: one tab-separated finding per line."
      $ Common_args.verbose ~doc:"Print every finding with its fix-it.")

(* --- repair ------------------------------------------------------------------- *)

let model_name = Model.kind_name

let header_model headers =
  List.find_map
    (fun h ->
      match String.index_opt h ':' with
      | Some i when String.trim (String.sub h 0 i) = "model" ->
        Model.kind_of_string (String.trim (String.sub h (i + 1) (String.length h - i - 1)))
      | _ -> None)
    headers

(* SOURCE resolves like [stat]: a recordable workload (run live, then
   repaired from its recorded trace), an existing trace file, or a
   bug-catalog case id. *)
let resolve_repair_source source model_opt ops seed =
  if List.mem source recordable_names then
    match record_workload source ops seed with
    | Error e -> Error e
    | Ok entries -> Ok (entries, Option.value model_opt ~default:Model.X86, false)
  else if Sys.file_exists source then
    match Pmtest_trace.Serial.load_file_with_header source with
    | Error e -> Error (Printf.sprintf "cannot load %s: %s" source e)
    | Ok (headers, entries) ->
      let model =
        match model_opt with
        | Some m -> m
        | None -> Option.value (header_model headers) ~default:Model.X86
      in
      Ok (entries, model, true)
  else
    match List.find_opt (fun c -> c.Case.id = source) Catalog.all with
    | Some case -> Ok (Case.trace case, Option.value model_opt ~default:Model.X86, false)
    | None ->
      Error
        (Printf.sprintf
           "%S is neither a recordable workload, an existing trace file nor a bug-catalog case \
            id"
           source)

let run_repair source model_opt rules_spec ops seed max_rounds diff machine verify in_place
    output profile =
  if rules_spec = "help" then begin
    print_endline (Rule.help ());
    0
  end
  else
    match Rule.of_spec rules_spec with
    | Error e ->
      Fmt.epr "--rules: %s@." e;
      2
    | Ok rules -> (
      match
        match source with
        | None -> Error "a SOURCE is required (or use --rules help)"
        | Some source -> resolve_repair_source source model_opt ops seed
      with
      | Error e ->
        Fmt.epr "repair: %s@." e;
        2
      | Ok (_, _, false) when in_place ->
        Fmt.epr "repair: --in-place needs SOURCE to be a trace file@.";
        2
      | Ok (entries, model, _is_file) ->
        let obs = if profile then Obs.create () else Obs.disabled in
        let o = Repair.fixpoint ~obs ~model ~rules ~max_rounds entries in
        if machine then List.iter print_endline (Repair.machine_lines o)
        else begin
          Fmt.pr "%a@." Repair.pp_outcome o;
          if diff && Repair.edits_applied o > 0 then
            Fmt.pr "@.%a@."
              (fun ppf () -> Repair.pp_diff ppf ~original:entries ~repaired:o.Repair.repaired)
              ()
        end;
        let problems =
          if not verify then []
          else begin
            let t0 = Obs.now_ns () in
            let ps = Repair.verify_static ~model ~rules ~original:entries o in
            Obs.repair_verify_ns obs (Obs.now_ns () - t0);
            List.iter (fun p -> Fmt.epr "verify: %s@." p) ps;
            if ps = [] && not machine then
              Fmt.pr
                "verify: repair proven (repaired trace lints clean, plan is idempotent, engine \
                 differential holds)@.";
            ps
          end
        in
        let dest =
          match output with Some p -> Some p | None when in_place -> source | None -> None
        in
        (match dest with
        | None -> ()
        | Some path ->
          Pmtest_trace.Serial.save_file
            ~header:[ "model: " ^ model_name model ]
            path o.Repair.repaired;
          if not machine then
            Fmt.pr "wrote repaired trace (%d entries) to %s@."
              (Array.length o.Repair.repaired)
              path);
        if profile then Fmt.pr "@.%a@." Obs.pp (Obs.snapshot obs);
        if (not o.Repair.converged) || problems <> [] then 1 else 0)

let repair_cmd =
  let source =
    Arg.(
      value
        (pos 0 (some string) None
           (info [] ~docv:"SOURCE"
              ~doc:
                "What to repair: a recordable workload name (run live, repaired from its \
                 recorded trace), a recorded $(b,.pmt) trace file, or a bug-catalog case id.")))
  in
  let model =
    Common_args.model_opt
      ~doc:
        "Persistency model (default: the file's $(b,model:) header, else x86)."
  in
  let max_rounds =
    Arg.(
      value
        (opt int Repair.default_max_rounds
           (info [ "max-rounds" ] ~doc:"Fixed-point iteration bound.")))
  in
  let diff =
    Arg.(
      value
        (flag
           (info [ "diff" ]
              ~doc:"Print a unified line diff of the original and repaired traces.")))
  in
  let verify =
    Arg.(
      value
        (flag
           (info [ "verify" ]
              ~doc:
                "Prove the repair: the repaired trace must lint clean for every repairable \
                 rule, the plan over it must be empty, and the dynamic engine (boxed and \
                 packed) must agree no diagnostic got worse. Non-zero exit if any obligation \
                 fails.")))
  in
  let in_place =
    Arg.(
      value
        (flag
           (info [ "in-place" ]
              ~doc:"Rewrite the SOURCE trace file with the repaired trace (atomic replace).")))
  in
  let output =
    Arg.(
      value
        (opt (some string) None
           (info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write the repaired trace to $(docv).")))
  in
  Cmd.v
    (Cmd.info "repair"
       ~doc:
         "Auto-repair a trace: delete redundant fences and surplus writebacks, insert missing \
          ones, iterate to a fixed point, and optionally prove the result against the dynamic \
          engine.")
    Term.(
      const run_repair $ source $ model $ rules_arg
      $ Common_args.ops ~doc:"Operations (workload sources)." ~default:1000 ()
      $ Common_args.seed ()
      $ max_rounds $ diff
      $ Common_args.machine
          ~doc:"Machine-readable output: one tab-separated edit per line (round, index, rule, fixit)."
      $ verify $ in_place $ output
      $ Common_args.profile ~doc:"Print the repair counters and timings after the outcome.")

(* --- fuzz -------------------------------------------------------------------- *)

module Fuzz_gen = Pmtest_fuzz.Gen
module Campaign = Pmtest_fuzz.Campaign
module Cross = Pmtest_fuzz.Cross
module Repro = Pmtest_fuzz.Repro
module Mutate = Pmtest_fuzz.Mutate


let replay_corpus dir failures =
  match Repro.load_dir dir with
  | Error e ->
    Fmt.epr "corpus %s: %s@." dir e;
    incr failures
  | Ok [] -> ()
  | Ok cases ->
    Fmt.pr "replaying %d corpus case(s) from %s@." (List.length cases) dir;
    List.iter
      (fun c ->
        match Repro.replay c with
        | Ok () -> Fmt.pr "  ok   %s@." c.Repro.name
        | Error e ->
          incr failures;
          Fmt.pr "  FAIL %s: %s@." c.Repro.name e)
      cases

let run_fuzz_mutate failures =
  let seeded = Mutate.seed_catalog () in
  Fmt.pr "@.mutation mode: %d mutant(s) seeded from the bug catalog's clean twins@."
    (List.length seeded);
  List.iter
    (fun sd ->
      let o = Mutate.check sd in
      if o.Mutate.missed = [] then
        Fmt.pr "  [caught] %-14s %-12s all %d claim(s) flagged; shrunk to %d event(s)@."
          sd.Mutate.case_id
          (Mutate.kind_name sd.Mutate.mutation)
          (List.length sd.Mutate.claims)
          (Array.length o.Mutate.shrunk)
      else begin
        incr failures;
        List.iter
          (fun cl ->
            Fmt.pr "  [MISSED] %-14s %-12s %s no longer reports %s@." sd.Mutate.case_id
              (Mutate.kind_name sd.Mutate.mutation)
              (Repro.tool_name cl.Mutate.tool)
              (Report.kind_string cl.Mutate.diag))
          o.Mutate.missed
      end)
    seeded

let run_fuzz_campaign models count seed max_ops corpus progress profile failures =
  List.iter
    (fun model ->
      let base = Campaign.default_cfg model in
      let gen =
        match max_ops with
        | None -> base.Campaign.gen
        | Some m -> { base.Campaign.gen with Fuzz_gen.max_ops = m }
      in
      let cfg = { base with Campaign.count; seed; gen } in
      Fmt.pr "@.== %s: %d program(s), base seed %d ==@." (model_name model) count seed;
      let on_program i =
        if progress && i > 0 && i mod 1000 = 0 then Fmt.pr "  ... %d@.%!" i
      in
      let obs = if profile then Obs.create () else Obs.disabled in
      let stats = Campaign.run ~obs ~on_program cfg in
      Fmt.pr "%a@." Campaign.pp_stats stats;
      if profile then Fmt.pr "@.%a@." Obs.pp (Obs.snapshot obs);
      List.iter
        (fun f ->
          incr failures;
          let shrunk = { f.Campaign.program with Fuzz_gen.events = f.Campaign.shrunk } in
          Fmt.pr "@.-- disagreement: model %s, seed %d, pair %s --@.%s@.@.serial trace:@.%s@.OCaml repro:@.%s@."
            (model_name model) f.Campaign.found_seed
            (Cross.pair_name f.Campaign.pair)
            f.Campaign.detail (Repro.serial_text shrunk) (Repro.ocaml_snippet shrunk);
          match corpus with
          | None -> ()
          | Some dir ->
            let name =
              Printf.sprintf "%s-seed%d-%s" (model_name model) f.Campaign.found_seed
                (String.map
                   (fun c -> if c = '/' then '-' else c)
                   (Cross.pair_name f.Campaign.pair))
            in
            let case =
              { Repro.name; program = shrunk; checks = [ Repro.Agree f.Campaign.pair ] }
            in
            let path = Repro.save ~dir case in
            Fmt.pr "saved regression case to %s@." path)
        stats.Campaign.findings)
    models

let run_fuzz models count seed max_ops mutate corpus progress profile =
  let failures = ref 0 in
  (match corpus with None -> () | Some dir -> replay_corpus dir failures);
  if mutate then run_fuzz_mutate failures
  else run_fuzz_campaign models count seed max_ops corpus progress profile failures;
  if !failures = 0 then begin
    Fmt.pr "@.fuzz: OK@.";
    0
  end
  else begin
    Fmt.pr "@.fuzz: %d failure(s)@." !failures;
    1
  end

let fuzz_cmd =
  let count = Arg.(value (opt int 1000 (info [ "count" ] ~doc:"Programs per model."))) in
  let seed = Common_args.seed ~default:0 ~doc:"Base seed; program $(i,i) uses seed+$(i,i)." () in
  let max_ops =
    Arg.(
      value
        (opt (some int) None
           (info [ "max-ops" ] ~doc:"Cap the operations per generated program.")))
  in
  let mutate =
    Arg.(
      value
        (flag
           (info [ "mutate" ]
              ~doc:
                "Mutation mode: seed known-bad edits (dropped writebacks, swapped fences, \
                 widened stores, dropped undo-log backups) into the bug catalog's clean twins \
                 and assert every tool claiming that bug class still catches it.")))
  in
  let corpus =
    Arg.(
      value
        (opt (some string) None
           (info [ "corpus" ] ~docv:"DIR"
              ~doc:
                "Replay this regression corpus before fuzzing and save newly shrunk \
                 counterexamples into it.")))
  in
  let progress =
    Arg.(value (flag (info [ "progress" ] ~doc:"Print a progress line every 1000 programs.")))
  in
  let profile =
    Common_args.profile
      ~doc:"Print a per-model campaign throughput profile (one section per program)."
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Differential fuzzing: generate random annotated PM programs, replay them through \
          every checker, cross-check verdicts, and shrink any disagreement to a minimal \
          reproducer.")
    Term.(
      const run_fuzz $ Common_args.models $ count $ seed $ max_ops $ mutate $ corpus $ progress
      $ profile)

(* --- crashfs ----------------------------------------------------------------- *)

module Crashfs = Pmtest_crashfs.Crashfs

let replay_crashfs_corpus dir fses failures =
  match Crashfs.Repro.load_dir dir with
  | Error e ->
    Fmt.epr "corpus %s: %s@." dir e;
    incr failures
  | Ok all -> (
    match List.filter (fun c -> List.mem c.Crashfs.Repro.fs fses) all with
    | [] -> ()
    | cases ->
      Fmt.pr "replaying %d crashfs corpus case(s) from %s@." (List.length cases) dir;
      List.iter
        (fun c ->
          match Crashfs.Repro.replay c with
          | Ok _ -> Fmt.pr "  ok   %s@." c.Crashfs.Repro.name
          | Error e ->
            incr failures;
            Fmt.pr "  FAIL %s@." e)
        cases)

let run_crashfs fses model count seed max_ops fault corpus progress =
  let failures = ref 0 in
  (match corpus with None -> () | Some dir -> replay_crashfs_corpus dir fses failures);
  List.iter
    (fun fs ->
      let config = { (Crashfs.default_config fs) with Crashfs.model } in
      let config =
        match max_ops with None -> config | Some m -> { config with Crashfs.max_ops = m }
      in
      match
        match fault with None -> Ok config | Some f -> Crashfs.with_fault config f
      with
      | Error e ->
        Fmt.epr "%s@." e;
        incr failures
      | Ok config ->
        Fmt.pr "@.== crashfs %s, model %s%s: %d run(s), base seed %d ==@."
          (Crashfs.fs_kind_name fs) (Model.kind_name model)
          (match Crashfs.fault_name config with
          | Some f -> Printf.sprintf ", fault %s" f
          | None -> "")
          count seed;
        let on_run i = if progress && i mod 50 = 0 then Fmt.pr "  ... %d@.%!" i in
        let c = Crashfs.run_campaign config ~count ~seed ~progress:on_run () in
        Fmt.pr "%a@." Crashfs.pp_summary c;
        List.iter
          (fun (f : Crashfs.finding) ->
            incr failures;
            match corpus with
            | None -> ()
            | Some dir ->
              let name =
                Printf.sprintf "%s-%s-seed%d" (Crashfs.fs_kind_name fs)
                  (Option.value ~default:"clean" (Crashfs.fault_name config))
                  f.Crashfs.f_seed
              in
              let path = Crashfs.Repro.save ~dir (Crashfs.Repro.of_finding config ~name f) in
              Fmt.pr "saved crashfs case to %s@." path)
          c.Crashfs.findings)
    fses;
  if !failures = 0 then begin
    Fmt.pr "@.crashfs: OK@.";
    0
  end
  else begin
    Fmt.pr "@.crashfs: %d failure(s)@." !failures;
    1
  end

let crashfs_cmd =
  let fses =
    Arg.(
      value
        (opt
           (enum
              [
                ("pmfs", [ Crashfs.Pmfs ]);
                ("nova", [ Crashfs.Nova ]);
                ("both", [ Crashfs.Pmfs; Crashfs.Nova ]);
              ])
           [ Crashfs.Pmfs; Crashfs.Nova ]
           (info [ "fs" ] ~doc:"File system(s) to explore: pmfs, nova or both.")))
  in
  let model =
    Arg.(
      value
        (opt
           (enum [ ("x86", Model.X86); ("hops", Model.Hops); ("eadr", Model.Eadr) ])
           Model.X86
           (info [ "model" ]
              ~doc:
                "Persistency model for crash-image enumeration: x86, hops or eadr (cxl \
                 programs are gpf-based and covered by the crashtest suite).")))
  in
  let count = Arg.(value (opt int 100 (info [ "count" ] ~doc:"Workloads per file system."))) in
  let seed = Common_args.seed ~default:0 ~doc:"Base seed; run $(i,i) uses seed+$(i,i)." () in
  let max_ops =
    Arg.(
      value
        (opt (some int) None (info [ "max-ops" ] ~doc:"Cap the operations per workload.")))
  in
  let fault =
    Arg.(
      value
        (opt (some string) None
           (info [ "fault" ] ~docv:"NAME"
              ~doc:
                "Seed a known fault into the file system under test (sanity-checks the \
                 harness catches it): pmfs takes journal-double-flush, data-double-flush, \
                 flush-unmapped, skip-journal-flush, skip-commit-fence, \
                 fsync-redundant-fence, empty-tx-fence, alloc-no-zero; nova takes \
                 skip-data-persist, skip-entry-persist, skip-tail-persist, \
                 valid-before-init.")))
  in
  let corpus =
    Arg.(
      value
        (opt (some string) None
           (info [ "corpus" ] ~docv:"DIR"
              ~doc:
                "Replay this crashfs regression corpus first and save newly shrunk failing \
                 workloads into it.")))
  in
  let progress =
    Arg.(value (flag (info [ "progress" ] ~doc:"Print a progress line every 50 runs.")))
  in
  Cmd.v
    (Cmd.info "crashfs"
       ~doc:
         "Systematic crash-state exploration for the PM file systems: run seeded syscall \
          workloads against PMFS/NOVA, snapshot the reachable durable images at every \
          persist boundary (epoch-equivalent boundaries and duplicate images are pruned), \
          remount each distinct image and check recovery against fsck-style invariants and \
          a committed-operation oracle; failing workloads shrink to minimal reproducers.")
    Term.(
      const run_crashfs $ fses $ model $ count $ seed $ max_ops $ fault $ corpus $ progress)

(* --- litmus ------------------------------------------------------------------ *)

let run_litmus all models list_only name verbose =
  let models = if all then Model.all_kinds else models in
  let tests =
    match name with
    | Some n -> (
      match Suite.find n with
      | Some t -> Ok [ t ]
      | None ->
        Error
          (Printf.sprintf "unknown litmus test %S (see pmtest-cli litmus --list)" n))
    | None -> Ok (List.filter (fun (t : Litmus.t) -> List.mem t.Litmus.model models) Suite.all)
  in
  match tests with
  | Error e ->
    Fmt.epr "%s@." e;
    1
  | Ok tests ->
    if list_only then begin
      List.iter
        (fun (t : Litmus.t) ->
          Fmt.pr "%-28s %-5s %s@." t.Litmus.name (Model.kind_name t.Litmus.model) t.Litmus.doc)
        tests;
      0
    end
    else begin
      let failures = ref 0 in
      List.iter
        (fun (t : Litmus.t) ->
          let o = Litmus.run_test t in
          if Litmus.passed o then begin
            if verbose then Fmt.pr "ok   %-28s %s@." t.Litmus.name (Model.kind_name t.Litmus.model)
          end
          else begin
            incr failures;
            Fmt.pr "FAIL %-28s %s@." t.Litmus.name (Model.kind_name t.Litmus.model);
            List.iter
              (fun (f : Litmus.failure) -> Fmt.pr "     [%s] %s@." f.Litmus.leg f.Litmus.message)
              o.Litmus.failures
          end)
        tests;
      List.iter
        (fun kind ->
          let mine = List.filter (fun (t : Litmus.t) -> t.Litmus.model = kind) tests in
          if mine <> [] then
            Fmt.pr "%s: %d test(s) against engine+oracle+crashtest@." (Model.kind_name kind)
              (List.length mine))
        Model.all_kinds;
      if !failures = 0 then begin
        Fmt.pr "litmus: OK (%d tests)@." (List.length tests);
        0
      end
      else begin
        Fmt.pr "litmus: %d failure(s)@." !failures;
        1
      end
    end

let litmus_cmd =
  let all =
    Arg.(
      value
        (flag
           (info [ "all" ]
              ~doc:"Run the whole suite across every persistency model (the CI gate).")))
  in
  let list_only =
    Arg.(value (flag (info [ "list" ] ~doc:"List the selected tests instead of running them.")))
  in
  let only =
    Arg.(
      value
        (opt (some string) None
           (info [ "test" ] ~docv:"NAME" ~doc:"Run a single suite entry by name.")))
  in
  let verbose = Common_args.verbose ~doc:"Print a line for passing tests too." in
  Cmd.v
    (Cmd.info "litmus"
       ~doc:
         "Run the axiomatic litmus suite: small programs with allowed/forbidden post-crash \
          states, each validated against the engine, the crash-state oracle and the \
          crash-injection harness simultaneously.")
    Term.(const run_litmus $ all $ Common_args.models $ list_only $ only $ verbose)

(* --- stat -------------------------------------------------------------------- *)

(* Replay a recorded trace through a live session, chunked into sections,
   so the whole pipeline — dispatch, worker pool, in-order merge — is
   exercised and profiled, not just the engine. *)
let replay_trace ~obs ~model ~workers ~section entries =
  let session = Pmtest.init ~model ~workers ~obs () in
  let threads = Hashtbl.create 8 in
  Array.iter (fun (e : Event.t) -> Hashtbl.replace threads e.Event.thread ()) entries;
  Hashtbl.iter (fun th () -> if th <> 0 then Pmtest.thread_init session ~thread:th) threads;
  Array.iteri
    (fun i (e : Event.t) ->
      Pmtest.emit ~thread:e.Event.thread ~loc:e.Event.loc session e.Event.kind;
      if (i + 1) mod section = 0 then Pmtest.send_trace ~thread:e.Event.thread session)
    entries;
  Pmtest.finish session

let run_stat source model_opt workers section ops threads seed machine json_out =
  let section = max 1 section in
  let obs = Obs.create () in
  let outcome =
    if List.mem source workload_names then
      exec_workload ~obs source Tool_pmtest ops threads workers seed
    else if Sys.file_exists source then
      match Pmtest_trace.Serial.load_file_with_header source with
      | Error e -> Error (Printf.sprintf "cannot load %s: %s" source e)
      | Ok (headers, entries) ->
        let model =
          match model_opt with
          | Some m -> m
          | None -> Option.value (header_model headers) ~default:Model.X86
        in
        Ok (replay_trace ~obs ~model ~workers ~section entries)
    else
      match List.find_opt (fun c -> c.Case.id = source) Catalog.all with
      | Some case ->
        let model = Option.value model_opt ~default:Model.X86 in
        Ok (replay_trace ~obs ~model ~workers ~section (Case.trace case))
      | None ->
        Error
          (Printf.sprintf
             "%S is neither a workload, an existing trace file nor a bug-catalog case id" source)
  in
  match outcome with
  | Error e ->
    Fmt.epr "stat: %s@." e;
    2
  | Ok report ->
    let snap = Obs.snapshot obs in
    (match json_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc (Obs.to_jsonl snap));
      Fmt.epr "wrote JSON-lines profile to %s@." path);
    if machine then print_string (Obs.to_tsv snap)
    else begin
      Fmt.pr "%a@.@." Report.pp_summary report;
      Fmt.pr "%a@." Obs.pp snap
    end;
    0

let stat_cmd =
  let source =
    Arg.(
      required
        (pos 0 (some string) None
           (info [] ~docv:"SOURCE"
              ~doc:
                "What to profile: a workload name (run live under the pmtest tool), a recorded \
                 $(b,.pmt) trace file, or a bug-catalog case id (both replayed through a live \
                 session).")))
  in
  let model =
    Common_args.model_opt
      ~doc:
        "Persistency model for replayed traces (default: the file's $(b,model:) header, else \
         x86)."
  in
  let machine =
    Common_args.machine
      ~doc:
        "Machine-readable profile: TSV on stdout, round-trippable through the observability \
         parser."
  in
  Cmd.v
    (Cmd.info "stat"
       ~doc:
         "Profile the checking pipeline: counters, per-worker utilization, queue and reorder \
          high-water marks, check and end-to-end latency histograms.")
    Term.(
      const run_stat $ source $ model
      $ Common_args.workers ()
      $ Common_args.section ()
      $ Common_args.ops ~doc:"Operations (workload sources)." ()
      $ Common_args.threads
      $ Common_args.seed ()
      $ machine $ Common_args.json)

(* --- serve / attach ----------------------------------------------------------- *)

let run_serve socket shards workers max_sessions max_inflight idle_timeout policy profile =
  let obs = if profile then Obs.create () else Obs.disabled in
  let cfg = { Server.socket; shards; workers; max_sessions; max_inflight; idle_timeout; policy } in
  (* Block the termination signals before the daemon spawns any thread
     (they inherit the mask), then park in [wait_signal]: SIGTERM and
     SIGINT become a graceful drain instead of a process kill. *)
  let signals = [ Sys.sigterm; Sys.sigint ] in
  ignore (Thread.sigmask SIG_BLOCK signals);
  match Server.start ~obs cfg with
  | exception Unix.Unix_error (err, _, _) ->
    Fmt.epr "pmtestd: cannot listen on %s: %s@." socket (Unix.error_message err);
    2
  | t ->
    Fmt.pr "pmtestd: listening on %s (%d shard(s) x %d worker(s), %d max session(s), %s policy)@.%!"
      socket (Server.shard_count t) workers max_sessions (Wire.policy_name policy);
    let s = Thread.wait_signal signals in
    Fmt.pr "pmtestd: %s received, draining %d active session(s)@.%!"
      (if s = Sys.sigterm then "SIGTERM" else "SIGINT")
      (Server.active_sessions t);
    Server.stop t;
    if profile then Fmt.pr "@.%a@." Obs.pp (Obs.snapshot obs);
    Fmt.pr "pmtestd: drained, bye@.";
    0

let serve_cmd =
  let shards =
    Arg.(
      value
        (opt int Server.default_config.Server.shards
           (info [ "shards" ]
              ~doc:
                "Independent execution shards; each owns its worker domains, arena freelist \
                 and accept loop, and sessions are pinned to the least-loaded shard.")))
  in
  let max_sessions =
    Arg.(
      value
        (opt int Server.default_config.Server.max_sessions
           (info [ "max-sessions" ] ~doc:"Concurrent client sessions admitted.")))
  in
  let max_inflight =
    Arg.(
      value
        (opt int Server.default_config.Server.max_inflight
           (info [ "max-inflight" ]
              ~doc:"Per-session bound on dispatched-but-unmerged sections.")))
  in
  let idle_timeout =
    Arg.(
      value
        (opt float Server.default_config.Server.idle_timeout
           (info [ "idle-timeout" ] ~docv:"SECONDS"
              ~doc:"Disconnect a session silent for this long; 0 disables the timeout.")))
  in
  let policy =
    Arg.(
      value
        (opt
           (enum [ ("block", Wire.Block); ("shed", Wire.Shed) ])
           Wire.Block
           (info [ "policy" ]
              ~doc:
                "Backpressure when a session exceeds --max-inflight: $(b,block) parks the \
                 session's reader (the client's sends stall), $(b,shed) drops the section and \
                 counts it.")))
  in
  let profile =
    Common_args.profile ~doc:"Print the service profile (sessions, frames, latency) on exit."
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run pmtestd: a checking daemon accepting concurrent client sessions over a Unix \
          domain socket.  SIGTERM/SIGINT drain active sessions before exit.")
    Term.(
      const run_serve
      $ Common_args.socket ()
      $ shards
      $ Common_args.workers ~default:2 ~doc:"Checking worker domains (per shard)." ()
      $ max_sessions $ max_inflight $ idle_timeout $ policy $ profile)

let run_attach source socket model_opt section ops threads seed record verify profile =
  let section = max 1 section in
  let obs = if profile then Obs.create () else Obs.disabled in
  let recorded = Option.map (fun path -> (path, record_events ())) record in
  let is_workload = List.mem source workload_names in
  (* Model: --model wins, else a trace file's [model:] header, else x86. *)
  let model =
    match model_opt with
    | Some m -> m
    | None when (not is_workload) && Sys.file_exists source -> (
      match Pmtest_trace.Serial.load_file_with_header source with
      | Ok (headers, _) -> Option.value (header_model headers) ~default:Model.X86
      | Error _ -> Model.X86)
    | None -> Model.X86
  in
  let run_under tool =
    if is_workload then exec_workload ~local_model:model ~obs source tool ops threads 1 seed
    else
      let entries =
        if Sys.file_exists source then
          match Pmtest_trace.Serial.load_file_with_header source with
          | Error e -> Error (Printf.sprintf "cannot load %s: %s" source e)
          | Ok (_, entries) -> Ok entries
        else
          match List.find_opt (fun c -> c.Case.id = source) Catalog.all with
          | Some case -> Ok (Case.trace case)
          | None ->
            Error
              (Printf.sprintf
                 "%S is neither a workload, an existing trace file nor a bug-catalog case id"
                 source)
      in
      match entries with
      | Error _ as e -> e
      | Ok entries -> (
        let session =
          match tool with
          | Tool_remote { socket; model } -> (
            match remote_session ~obs ~socket ~model () with
            | Ok s -> Ok s
            | Error m -> Error ("cannot attach: " ^ m))
          | _ -> Ok (pmtest_session ~model ~obs ~workers:1 ())
        in
        match session with
        | Error _ as e -> e
        | Ok s -> replay_session ~section s entries)
  in
  match run_under (Tool_remote { socket; model }) with
  | Error e ->
    Fmt.epr "attach: %s@." e;
    2
  | Ok remote_report ->
    (* Stop teeing before any verify re-run: the file must hold exactly
       the stream the daemon saw, once. *)
    (match recorded with
    | None -> ()
    | Some (path, take) ->
      recording := None;
      let entries = take () in
      Pmtest_trace.Serial.save_file
        ~header:[ "model: " ^ model_name model ]
        path entries;
      Fmt.pr "recorded %d trace entries to %s@." (Array.length entries) path);
    recording := None;
    Fmt.pr "%a@." Report.pp remote_report;
    if profile then Fmt.pr "@.%a@." Obs.pp (Obs.snapshot obs);
    let rc = if Report.has_fail remote_report then 1 else 0 in
    if not verify then rc
    else begin
      match run_under Tool_pmtest with
      | Error e ->
        Fmt.epr "attach --verify: in-process run failed: %s@." e;
        2
      | Ok local_report ->
        let render r = Fmt.str "%a" Report.pp r in
        if render remote_report = render local_report then begin
          Fmt.pr "verify: remote and in-process reports are identical@.";
          rc
        end
        else begin
          Fmt.epr "verify: reports DIFFER@.-- remote --@.%s@.-- in-process --@.%s@."
            (render remote_report) (render local_report);
          1
        end
    end

let attach_cmd =
  let source =
    Arg.(
      required
        (pos 0 (some string) None
           (info [] ~docv:"SOURCE"
              ~doc:
                "What to run against the daemon: a workload name, a recorded $(b,.pmt) trace \
                 file, or a bug-catalog case id.")))
  in
  let model =
    Common_args.model_opt
      ~doc:
        "Persistency model for the remote session (default: the file's $(b,model:) header, \
         else x86)."
  in
  let record =
    Arg.(
      value
        (opt (some string) None
           (info [ "record" ] ~docv:"FILE"
              ~doc:"Also save the streamed trace to $(docv) (atomic write).")))
  in
  let verify =
    Arg.(
      value
        (flag
           (info [ "verify" ]
              ~doc:
                "Re-run the same source through an in-process session and fail unless the two \
                 reports are identical.")))
  in
  let profile =
    Common_args.profile ~doc:"Print the client-side pipeline profile after the report."
  in
  Cmd.v
    (Cmd.info "attach"
       ~doc:
         "Run a workload, trace file or bug-catalog case against a running pmtestd and print \
          the daemon's report.")
    Term.(
      const run_attach $ source
      $ Common_args.socket ()
      $ model
      $ Common_args.section ()
      $ Common_args.ops ~doc:"Operations (workload sources)." ()
      $ Common_args.threads
      $ Common_args.seed ()
      $ record $ verify $ profile)

(* --- farm -------------------------------------------------------------------- *)

module Farm = Pmtest_farm.Farm

let farm_spec campaign model fs fault seed count chunk max_ops =
  match campaign with
  | `Fuzz -> Farm.Spec.fuzz ?max_ops ~model ~seed ~count ~chunk ()
  | `Crashfs -> Farm.Spec.crashfs ?max_ops ?fault ~fs ~model ~seed ~count ~chunk ()
  | `Litmus -> Farm.Spec.litmus ~chunk ()

let run_farm_serve resume socket dir campaign model fs fault seed count chunk max_ops capacity
    heartbeat_timeout steal_after stop_after profile =
  (* On resume the checkpoint is the source of truth for the campaign:
     reading the spec back from disk means `farm resume --dir D` needs no
     campaign flags and can never mismatch what it is resuming. *)
  let resumed_spec =
    if not resume then None
    else
      match Farm.Checkpoint.load (Filename.concat dir "checkpoint") with
      | Ok ck -> Some ck.Farm.Checkpoint.spec
      | Error _ -> None
  in
  match (resume, resumed_spec) with
  | true, None ->
    Fmt.epr "pmfarm: nothing to resume: no readable checkpoint in %s@." dir;
    2
  | _ ->
  let spec =
    match resumed_spec with
    | Some spec -> spec
    | None -> farm_spec campaign model fs fault seed count chunk max_ops
  in
  let obs = if profile then Obs.create () else Obs.disabled in
  let cfg =
    {
      (Farm.Coordinator.default_cfg ~spec ~socket ~dir) with
      Farm.Coordinator.resume;
      capacity;
      heartbeat_timeout;
      steal_after;
      stop_after_results = stop_after;
      obs;
    }
  in
  Fmt.pr "pmfarm: %s %s on %s (%d job(s), state in %s)@.%!"
    (if resume then "resuming" else "coordinating")
    (Farm.Spec.to_string spec) socket
    (List.length (Farm.Spec.jobs spec))
    dir;
  match Farm.Coordinator.run cfg with
  | Error e ->
    Fmt.epr "pmfarm: %s@." e;
    2
  | Ok s ->
    Fmt.pr "pmfarm: %d/%d job(s) done, %d finding(s), %d reassigned, %d steal(s), %d worker(s)%s@."
      s.Farm.Coordinator.jobs_done s.Farm.Coordinator.jobs
      (List.length s.Farm.Coordinator.findings)
      s.Farm.Coordinator.reassigned s.Farm.Coordinator.steals s.Farm.Coordinator.workers_seen
      (if s.Farm.Coordinator.nondet = [] then ""
       else
         Printf.sprintf ", NONDETERMINISTIC job(s) %s"
           (String.concat "," (List.map string_of_int s.Farm.Coordinator.nondet)));
    if profile then Fmt.pr "@.%a@." Obs.pp (Obs.snapshot obs);
    if s.Farm.Coordinator.nondet <> [] then 1
    else if s.Farm.Coordinator.jobs_done < s.Farm.Coordinator.jobs then 3
    else 0

let run_farm_work socket name attempts hb_interval verbose =
  let log =
    if verbose then fun m -> Fmt.pr "pmfarm-worker[%s]: %s@.%!" name m else fun _ -> ()
  in
  let cfg =
    { (Farm.Worker.default_cfg ~socket ~name) with Farm.Worker.attempts; hb_interval; log }
  in
  match Farm.Worker.run cfg with
  | Ok n ->
    Fmt.pr "pmfarm-worker[%s]: campaign over, %d job(s) done@." name n;
    0
  | Error e ->
    Fmt.epr "pmfarm-worker[%s]: %s@." name e;
    2

let run_farm_status dir =
  let path =
    if Sys.file_exists dir && Sys.is_directory dir then Filename.concat dir "checkpoint"
    else dir
  in
  match Farm.Checkpoint.load path with
  | Error e ->
    Fmt.epr "pmfarm: %s@." e;
    2
  | Ok ck ->
    Fmt.pr "%a@." Farm.Checkpoint.pp ck;
    if List.length ck.Farm.Checkpoint.done_jobs = ck.Farm.Checkpoint.jobs then 0 else 1

let farm_dir_arg =
  Arg.(
    value
      (opt string "pmfarm-state"
         (info [ "dir" ] ~docv:"DIR"
            ~doc:
              "Campaign state directory: $(docv)/checkpoint (resumable progress) and \
               $(docv)/triage (deduplicated reproducers).")))

let farm_campaign_args =
  let campaign =
    Arg.(
      value
        (opt
           (enum [ ("fuzz", `Fuzz); ("crashfs", `Crashfs); ("litmus", `Litmus) ])
           `Fuzz
           (info [ "campaign" ] ~doc:"Campaign kind: $(b,fuzz), $(b,crashfs) or $(b,litmus).")))
  in
  let fs =
    Arg.(
      value
        (opt
           (enum [ ("pmfs", Crashfs.Pmfs); ("nova", Crashfs.Nova) ])
           Crashfs.Pmfs
           (info [ "fs" ] ~doc:"File system for crashfs campaigns.")))
  in
  let fault =
    Arg.(
      value
        (opt (some string) None
           (info [ "fault" ] ~docv:"NAME"
              ~doc:"Seeded crashfs fault (see $(b,pmtest-cli crashfs --list-faults).")))
  in
  let count =
    Arg.(
      value
        (opt int 200 (info [ "count" ] ~doc:"Total campaign units (programs / runs).")))
  in
  let chunk =
    Arg.(value (opt int 25 (info [ "chunk" ] ~doc:"Units per distributed job.")))
  in
  let max_ops =
    Arg.(
      value
        (opt (some int) None
           (info [ "max-ops" ] ~doc:"Generator / workload op bound per unit.")))
  in
  (campaign, fs, fault, count, chunk, max_ops)

let farm_serve_term ~resume =
  let campaign, fs, fault, count, chunk, max_ops = farm_campaign_args in
  let capacity =
    Arg.(value (opt int 1 (info [ "capacity" ] ~doc:"Jobs in flight per worker.")))
  in
  let heartbeat_timeout =
    Arg.(
      value
        (opt float 5.0
           (info [ "heartbeat-timeout" ] ~docv:"SECONDS"
              ~doc:"Reassign a worker's jobs after this long without a frame from it.")))
  in
  let steal_after =
    Arg.(
      value
        (opt float 2.0
           (info [ "steal-after" ] ~docv:"SECONDS"
              ~doc:
                "Offer a duplicate attempt of an in-flight job to an idle worker after this \
                 long.")))
  in
  let stop_after =
    Arg.(
      value
        (opt (some int) None
           (info [ "stop-after-results" ] ~docv:"N"
              ~doc:
                "Testing hook: hard-stop (as a crash would) after $(docv) job results; resume \
                 with $(b,farm resume).")))
  in
  Term.(
    const run_farm_serve $ const resume
    $ Common_args.socket ~doc:"Unix socket the coordinator listens on." ()
    $ farm_dir_arg $ campaign
    $ Common_args.model ()
    $ fs $ fault
    $ Common_args.seed ~default:0 ~doc:"Base campaign seed." ()
    $ count $ chunk $ max_ops $ capacity $ heartbeat_timeout $ steal_after $ stop_after
    $ Common_args.profile ~doc:"Print farm counters (offers, steals, reassignments) on exit.")

let farm_cmd =
  let serve_cmd =
    Cmd.v
      (Cmd.info "serve"
         ~doc:
           "Coordinate a distributed campaign: shard it into seed-range jobs, serve them to \
            workers, checkpoint every result, reassign jobs from lost workers.")
      (farm_serve_term ~resume:false)
  in
  let resume_cmd =
    Cmd.v
      (Cmd.info "resume"
         ~doc:
           "Resume an interrupted campaign from its checkpoint: completed jobs are skipped, \
            the rest are re-served.")
      (farm_serve_term ~resume:true)
  in
  let work_cmd =
    let worker_name =
      Arg.(
        value
          (opt string
             (Printf.sprintf "worker-%d" (Unix.getpid ()))
             (info [ "name" ] ~doc:"Worker name announced to the coordinator.")))
    in
    let attempts =
      Arg.(
        value
          (opt int 8
             (info [ "attempts" ]
                ~doc:"Consecutive connect failures before the worker gives up.")))
    in
    let hb_interval =
      Arg.(
        value
          (opt float 1.0 (info [ "heartbeat-interval" ] ~docv:"SECONDS" ~doc:"Heartbeat period.")))
    in
    Cmd.v
      (Cmd.info "work"
         ~doc:
           "Run a worker: claim jobs from a coordinator, execute them, ship results and shrunk \
            reproducers back. Reconnects with jittered exponential backoff.")
      Term.(
        const run_farm_work
        $ Common_args.socket ~doc:"Coordinator's Unix socket." ()
        $ worker_name $ attempts $ hb_interval
        $ Common_args.verbose ~doc:"Log per-job progress.")
  in
  let status_cmd =
    Cmd.v
      (Cmd.info "status" ~doc:"Print a campaign checkpoint's progress.")
      Term.(const run_farm_status $ farm_dir_arg)
  in
  Cmd.group
    (Cmd.info "farm"
       ~doc:
         "Distributed campaigns: a fault-tolerant coordinator plus workers over the pmtestd \
          wire protocol.")
    [ serve_cmd; resume_cmd; work_cmd; status_cmd ]

(* --- demo -------------------------------------------------------------------- *)

let run_demo () =
  Fmt.pr "Paper Fig. 7: persist-interval deduction over a small trace@.@.";
  let trace =
    [|
      Event.make (Event.Op (Model.Write { addr = 0x10; size = 64 }));
      Event.make (Event.Op (Model.Clwb { addr = 0x10; size = 64 }));
      Event.make (Event.Op Model.Sfence);
      Event.make (Event.Op (Model.Write { addr = 0x50; size = 64 }));
      Event.make (Event.Checker (Event.Is_persist { addr = 0x50; size = 64 }));
      Event.make
        (Event.Checker
           (Event.Is_ordered_before { a_addr = 0x10; a_size = 64; b_addr = 0x50; b_size = 64 }));
    |]
  in
  Array.iter (fun e -> Fmt.pr "  %a@." Event.pp e) trace;
  let report, snap = Engine.check_with_snapshot trace in
  Fmt.pr "@.final timestamp: %d@." snap.Engine.timestamp;
  List.iter
    (fun r ->
      Fmt.pr "  [0x%x,+%d) persist interval %a%a@." r.Engine.lo (r.Engine.hi - r.Engine.lo)
        Interval.pp r.Engine.persist
        (fun ppf -> function
          | None -> Fmt.pf ppf ""
          | Some fi -> Fmt.pf ppf ", flush interval %a" Interval.pp fi)
        r.Engine.flush)
    snap.Engine.ranges;
  Fmt.pr "@.%a@." Report.pp report;
  0

let demo_cmd =
  Cmd.v
    (Cmd.info "demo" ~doc:"Walk through the paper's Fig. 7 trace and print persist intervals.")
    Term.(const run_demo $ const ())

let () =
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default
          (Cmd.info "pmtest-cli" ~version:"1.0.0"
             ~doc:"PMTest: fast and flexible crash-consistency testing for PM programs.")
          [
            bugs_cmd;
            workload_cmd;
            record_cmd;
            check_trace_cmd;
            lint_cmd;
            repair_cmd;
            fuzz_cmd;
            crashfs_cmd;
            litmus_cmd;
            stat_cmd;
            serve_cmd;
            attach_cmd;
            farm_cmd;
            demo_cmd;
          ]))
