(* Shared Cmdliner terms.  Every subcommand that takes a persistency
   model, a worker count or an output-format switch gets it from here,
   so flag names, docs and defaults cannot drift between subcommands. *)

open Cmdliner
module Model = Pmtest_model.Model

let model_assoc = List.map (fun k -> (Model.kind_name k, k)) Model.all_kinds

let model_doc =
  Printf.sprintf "Persistency model: %s." (String.concat ", " Model.kind_names)

let model ?(default = Model.X86) ?(doc = model_doc) () =
  Arg.(value (opt (enum model_assoc) default (info [ "model" ] ~doc)))

let model_opt ~doc = Arg.(value (opt (some (enum model_assoc)) None (info [ "model" ] ~doc)))

(* Model *sets* (the fuzz campaign runs several). *)
let models =
  Arg.(
    value
      (opt
         (enum
            [
              ("x86", [ Model.X86 ]);
              ("hops", [ Model.Hops ]);
              ("eadr", [ Model.Eadr ]);
              ("cxl", [ Model.Cxl ]);
              ("both", [ Model.X86; Model.Hops ]);
              ("all", Model.all_kinds);
            ])
         Model.all_kinds
         (info [ "model" ]
            ~doc:
              "Persistency model(s) to fuzz: x86, hops, eadr, cxl, both (x86+hops) or all.")))

let workers ?(default = 1) ?(doc = "PMTest worker threads.") () =
  Arg.(value (opt int default (info [ "workers" ] ~doc)))

let seed ?(default = 42) ?(doc = "Workload RNG seed.") () =
  Arg.(value (opt int default (info [ "seed" ] ~doc)))

let ops ?(default = 2000) ?(doc = "Operations to run.") () =
  Arg.(value (opt int default (info [ "ops" ] ~doc)))

let threads = Arg.(value (opt int 1 (info [ "threads" ] ~doc:"Server threads (memcached).")))

let section ?(default = 256) () =
  Arg.(
    value
      (opt int default
         (info [ "section" ] ~doc:"Trace entries per section when replaying a file or case.")))

let verbose ~doc = Arg.(value (flag (info [ "v"; "verbose" ] ~doc)))

let profile ~doc = Arg.(value (flag (info [ "profile" ] ~doc)))

let machine ~doc = Arg.(value (flag (info [ "machine" ] ~doc)))

let json =
  Arg.(
    value
      (opt (some string) None
         (info [ "json" ] ~docv:"FILE"
            ~doc:"Also write the profile as JSON lines to $(docv).")))

let socket ?(doc = "Path of the daemon's Unix domain socket.") () =
  Arg.(value (opt string "pmtestd.sock" (info [ "socket" ] ~doc)))
