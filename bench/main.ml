(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§6) against the simulated PM stack.

     dune exec bench/main.exe -- [target] [options]

   Targets: fig10a fig10b fig11 fig12a fig12b fig12c table1 table5 table6
            yat ablation lint fuzz litmus obs perf repair serve farm bechamel
            all (default: all)
   Options: --insertions N   microbenchmark insertions per cell (default 600)
            --ops N          real-workload operations (default 4000)
            --runs N         timing repetitions, best-of (default 3)
            --tsv FILE       also write machine-readable rows to FILE
            --json FILE      repair/litmus only: write the summary as JSON to FILE
            --gate           perf only: exit 1 if the packed representation
                             (geomean of codec emit and engine check speedup)
                             is slower than boxed
            --full           paper-scale parameters (slow)

   Absolute times depend on the simulator; the paper's *shapes* are what
   these benches reproduce: who is faster, by roughly what factor, and how
   the curves move with transaction size, thread count and worker count.
   EXPERIMENTS.md records a measured run against the paper's numbers. *)

open Pmtest_util
open Pmtest_pmdk
open Pmtest_workloads
module Report = Pmtest_core.Report
module Pmtest = Pmtest_core.Pmtest
module Engine = Pmtest_core.Engine
module Pmemcheck = Pmtest_baseline.Pmemcheck
module Yat = Pmtest_baseline.Yat
module Sink = Pmtest_trace.Sink
module Event = Pmtest_trace.Event
module Builder = Pmtest_trace.Builder
module Model = Pmtest_model.Model
module Fs = Pmtest_pmfs.Fs
open Pmtest_bugdb

(* --- Configuration ------------------------------------------------------------ *)

let insertions = ref 600
let kv_ops = ref 4000
let runs = ref 3
let tsv_path = ref None
let json_path = ref None
let gate = ref false

(* 0 = auto: sized to the machine — shards only buy throughput when the
   cores exist to run them in parallel, and an oversharded daemon on a
   small box pays stop-the-world GC synchronisation across its domains
   for nothing.  [--shards] overrides. *)
let bench_shards = ref 0

let tsv_rows : string list ref = ref []

let tsv fmt = Printf.ksprintf (fun row -> tsv_rows := row :: !tsv_rows) fmt

let write_tsv () =
  match !tsv_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc "bench\tstructure\tparam\tmetric\tvalue\n";
    List.iter (fun row -> output_string oc (row ^ "\n")) (List.rev !tsv_rows);
    close_out oc;
    Fmt.pr "@.TSV written to %s@." path

(* Pool sized to the cell's needs: nodes + payload blocks + undo-log area,
   with generous slack — allocating a fixed huge pool would otherwise
   dominate the timings. *)
let pool_size_for ~size ~n =
  let per_insert = ((size + 63) / 64 * 64) + 1024 in
  max (8 * 1024 * 1024) ((n * per_insert * 2) + (2 * 1024 * 1024))

(* --- Timing -------------------------------------------------------------------- *)

let now_ns () = Monotonic_clock.now ()

let time_once f =
  let t0 = now_ns () in
  f ();
  Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9

(* Best-of-N wall time: robust against scheduler noise without needing
   long runs. *)
let time f =
  let best = ref infinity in
  for _ = 1 to !runs do
    let t = time_once f in
    if t < !best then best := t
  done;
  !best

let ratio a b = if b <= 0.0 then nan else a /. b

(* --- Microbenchmark structures (Fig. 10) --------------------------------------- *)

type micro = {
  m_name : string;
  (* Build in a fresh pool; returns the one-insert function. *)
  m_build : Pool.t -> key:int64 -> value:bytes -> unit;
  (* Transactional structures get the TX checkers; hashmap_atomic carries
     its own low-level checkers. *)
  m_tx : bool;
}

let micros =
  [
    {
      m_name = "C-Tree";
      m_build =
        (fun pool ->
          let m = Ctree_map.create pool in
          fun ~key ~value -> Ctree_map.insert m ~key ~value);
      m_tx = true;
    };
    {
      m_name = "B-Tree";
      m_build =
        (fun pool ->
          let m = Btree_map.create pool in
          fun ~key ~value -> Btree_map.insert m ~key ~value);
      m_tx = true;
    };
    {
      m_name = "RB-Tree";
      m_build =
        (fun pool ->
          let m = Rbtree_map.create pool in
          fun ~key ~value -> Rbtree_map.insert m ~key ~value);
      m_tx = true;
    };
    {
      m_name = "HashMap(w/ TX)";
      m_build =
        (fun pool ->
          let m = Hashmap_tx.create ~buckets:4096 pool in
          fun ~key ~value -> Hashmap_tx.insert m ~key ~value);
      m_tx = true;
    };
    {
      m_name = "HashMap(w/o TX)";
      m_build =
        (fun pool ->
          let m = Hashmap_atomic.create ~buckets:4096 pool in
          fun ~key ~value -> ignore (Hashmap_atomic.insert m ~key ~value));
      m_tx = false;
    };
  ]

let tx_sizes = [ 64; 128; 256; 512; 1024; 2048; 4096 ]

(* One microbenchmark cell: [n] insertions of [size]-byte values, one
   trace section per insertion. Setup (pool and tool) happens outside the
   timed region: the measurement covers the insert loop plus the tool's
   finalization, as the paper's normalized execution times do. *)
let micro_loop micro pool ~size ~n ~per_insert =
  let insert = micro.m_build pool in
  let rng = Rng.create (size + n) in
  let payload = Bytes.make size 'p' in
  for i = 0 to n - 1 do
    let key = Int64.of_int (Rng.int rng (2 * n)) in
    if micro.m_tx then begin
      Pool.tx_checker_start pool;
      insert ~key ~value:payload;
      Pool.tx_checker_end pool
    end
    else insert ~key ~value:payload;
    per_insert i
  done

let micro_time tool micro ~size ~n =
  let psize = pool_size_for ~size ~n in
  let best = ref infinity in
  for _ = 1 to !runs do
    let t =
      match tool with
      | `Base ->
        let pool = Pool.create ~size:psize ~sink:Sink.null () in
        time_once (fun () -> micro_loop micro pool ~size ~n ~per_insert:ignore)
      | `Pmtest workers ->
        let session = Pmtest.init ~workers () in
        let pool = Pool.create ~size:psize ~sink:(Pmtest.sink session) () in
        let t =
          time_once (fun () ->
              micro_loop micro pool ~size ~n ~per_insert:(fun _ -> Pmtest.send_trace session);
              ignore (Pmtest.get_result session))
        in
        let report = Pmtest.finish session in
        if Report.has_fail report then
          Fmt.epr "WARNING: unexpected FAIL in %s: %a@." micro.m_name Report.pp report;
        t
      | `Pmtest_packed workers ->
        (* The flat fast path: packed builders, cursor engine. *)
        let session = Pmtest.init ~workers ~packed:true () in
        let pool = Pool.create ~size:psize ~sink:(Pmtest.sink session) () in
        let t =
          time_once (fun () ->
              micro_loop micro pool ~size ~n ~per_insert:(fun _ -> Pmtest.send_trace session);
              ignore (Pmtest.get_result session))
        in
        let report = Pmtest.finish session in
        if Report.has_fail report then
          Fmt.epr "WARNING: unexpected FAIL in %s: %a@." micro.m_name Report.pp report;
        t
      | `Pmtest_profiled workers ->
        (* As [`Pmtest] but with a live observability collector attached. *)
        let session = Pmtest.init ~workers ~obs:(Pmtest_obs.Obs.create ()) () in
        let pool = Pool.create ~size:psize ~sink:(Pmtest.sink session) () in
        let t =
          time_once (fun () ->
              micro_loop micro pool ~size ~n ~per_insert:(fun _ -> Pmtest.send_trace session);
              ignore (Pmtest.get_result session))
        in
        ignore (Pmtest.finish session);
        t
      | `Track_only ->
        (* Tracking cost without any checking: sections are dropped. *)
        let builder = Builder.create () in
        let pool = Pool.create ~size:psize ~sink:(Builder.sink builder) () in
        time_once (fun () ->
            micro_loop micro pool ~size ~n ~per_insert:(fun _ -> ignore (Builder.take builder)))
      | `Pmtest_sync ->
        let session = Pmtest.init ~workers:0 () in
        let pool = Pool.create ~size:psize ~sink:(Pmtest.sink session) () in
        let t =
          time_once (fun () ->
              micro_loop micro pool ~size ~n ~per_insert:(fun _ -> Pmtest.send_trace session))
        in
        ignore (Pmtest.finish session);
        t
      | `Pmemcheck ->
        let pc = Pmemcheck.create ~size:psize in
        let pool = Pool.create ~size:psize ~sink:(Pmemcheck.sink pc) () in
        time_once (fun () ->
            micro_loop micro pool ~size ~n ~per_insert:ignore;
            ignore (Pmemcheck.result pc))
    in
    if t < !best then best := t
  done;
  !best

(* --- Figure 10a ----------------------------------------------------------------- *)

let fig10a () =
  let n = !insertions in
  Fmt.pr "@.### Figure 10a — microbenchmark slowdown vs. Pmemcheck (%d insertions/cell)@.@." n;
  Fmt.pr "%-16s %8s %12s %10s %12s@." "structure" "tx(B)" "base(ms)" "PMTest(x)" "Pmemcheck(x)";
  let pmtest_ratios = ref [] and pmemcheck_ratios = ref [] in
  List.iter
    (fun micro ->
      List.iter
        (fun size ->
          let t_base = micro_time `Base micro ~size ~n in
          let t_pmtest = micro_time (`Pmtest 1) micro ~size ~n in
          let t_pc = micro_time `Pmemcheck micro ~size ~n in
          let r_pm = ratio t_pmtest t_base and r_pc = ratio t_pc t_base in
          pmtest_ratios := r_pm :: !pmtest_ratios;
          pmemcheck_ratios := r_pc :: !pmemcheck_ratios;
          Fmt.pr "%-16s %8d %12.2f %10.2f %12.2f@." micro.m_name size (t_base *. 1e3) r_pm r_pc)
        tx_sizes)
    micros;
  let geo l = Stats.geomean (Array.of_list l) in
  let avg_pm = geo !pmtest_ratios and avg_pc = geo !pmemcheck_ratios in
  Fmt.pr "@.geomean slowdown: PMTest %.2fx, Pmemcheck %.2fx — Pmemcheck/PMTest = %.1fx@." avg_pm
    avg_pc (avg_pc /. avg_pm);
  Fmt.pr "(paper: PMTest 5.2-8.9x faster than Pmemcheck, 7.1x on average;@.";
  Fmt.pr " PMTest overhead falls as the transaction size grows)@."

(* --- Figure 10b ----------------------------------------------------------------- *)

let fig10b () =
  let n = !insertions in
  Fmt.pr "@.### Figure 10b — PMTest overhead breakdown (%d insertions/cell)@.@." n;
  Fmt.pr "%-16s %8s %12s %12s %12s@." "structure" "tx(B)" "overhead(x)" "framework%" "checker%";
  (* Total = the normal decoupled runtime (checking overlaps execution on
     a worker thread, as in the paper); framework = trace production only;
     checker = the residual the decoupled checking still adds. *)
  let checker_shares = ref [] in
  List.iter
    (fun micro ->
      List.iter
        (fun size ->
          let t_base = micro_time `Base micro ~size ~n in
          let t_track = micro_time `Track_only micro ~size ~n in
          let t_full = micro_time (`Pmtest 1) micro ~size ~n in
          let overhead = max 1e-9 (t_full -. t_base) in
          let framework = min overhead (max 0.0 (t_track -. t_base)) in
          let checker = max 0.0 (overhead -. framework) in
          let fr_pct = 100.0 *. framework /. overhead in
          let ch_pct = 100.0 *. checker /. overhead in
          checker_shares := ch_pct :: !checker_shares;
          Fmt.pr "%-16s %8d %12.2f %11.1f%% %11.1f%%@." micro.m_name size (ratio t_full t_base)
            fr_pct ch_pct)
        [ 64; 512; 4096 ])
    micros;
  Fmt.pr "@.mean checker share of total overhead: %.1f%%@."
    (Stats.mean (Array.of_list !checker_shares));
  Fmt.pr
    "(paper: decoupled checking contributes 18.9%%-37.8%% of the overhead; our simulated@.";
  Fmt.pr
    " baseline is lighter than a real PM program, so checking weighs relatively more)@."

(* --- Figure 11 ------------------------------------------------------------------ *)

(* One client per server thread, each issuing a fixed op count — as the
   paper's Table 4 clients do — so total work (and trace volume) grows
   with the thread count. *)
let memcached_workload ?(threads = 2) ?ops_per_client ~client ~tool () =
  let ops_per_client =
    match ops_per_client with Some n -> n | None -> !kv_ops / threads
  in
  let session =
    match tool with `Pmtest workers -> Some (Pmtest.init ~workers ()) | _ -> None
  in
  let sink_of i =
    match session with
    | Some s ->
      Pmtest.thread_init s ~thread:i;
      Pmtest.sink ~thread:i s
    | None -> Sink.null
  in
  let mc = Memcached.create ~shards:threads ~sink_of () in
  let streams = Memcached.generate_streams ~client ~ops_per_client ~keys:4096 ~seed:11 mc in
  let on_section shard =
    match session with Some s -> Pmtest.send_trace ~thread:shard s | None -> ()
  in
  Memcached.run mc ~on_section ~streams;
  match session with Some s -> ignore (Pmtest.finish s) | None -> ()

let redis_workload ~tool () =
  let ops = Clients.redis_lru ~ops:!kv_ops ~keys:16384 (Rng.create 12) in
  match tool with
  | `None ->
    let r = Redis.create ~annotate:false ~sink:Sink.null () in
    Redis.run r ops
  | `Pmtest workers ->
    let session = Pmtest.init ~workers () in
    let r = Redis.create ~sink:(Pmtest.sink session) () in
    Array.iteri
      (fun i op ->
        Redis.apply r op;
        if i mod 16 = 0 then Pmtest.send_trace session)
      ops;
    Pmtest.send_trace session;
    ignore (Pmtest.finish session)
  | `Pmemcheck ->
    let pc = Pmemcheck.create ~size:(32 * 1024 * 1024) in
    let r = Redis.create ~sink:(Pmemcheck.sink pc) () in
    Redis.run r ops;
    ignore (Pmemcheck.result pc)

let pmfs_workload ~client ~tool () =
  let session =
    match tool with `Pmtest workers -> Some (Pmtest.init ~workers ()) | _ -> None
  in
  let sink = match session with Some s -> Pmtest.sink s | None -> Sink.null in
  let fs = Fs.mkfs ~inodes:256 ~blocks:4096 ~sink () in
  let on_section () = match session with Some s -> Pmtest.send_trace s | None -> () in
  Pmfs_app.run ~on_section fs (client (Rng.create 13));
  match session with Some s -> ignore (Pmtest.finish s) | None -> ()

let fig11 () =
  Fmt.pr "@.### Figure 11 — real-workload slowdown under PMTest (%d ops)@.@." !kv_ops;
  Fmt.pr "%-24s %12s %12s@." "workload" "base(ms)" "PMTest(x)";
  let fs_ops = max 200 (!kv_ops / 4) in
  let rows =
    [
      ( "Memcached+Memslap",
        fun tool ->
          memcached_workload
            ~client:(fun ~ops ~keys rng -> Clients.memslap ~ops ~keys rng)
            ~tool () );
      ( "Memcached+YCSB",
        fun tool ->
          memcached_workload ~client:(fun ~ops ~keys rng -> Clients.ycsb ~ops ~keys rng) ~tool ()
      );
      ("Redis+LRU", fun tool -> redis_workload ~tool ());
      ( "PMFS+OLTP",
        fun tool ->
          pmfs_workload
            ~client:(fun rng -> Clients.oltp ~ops:fs_ops ~tables:8 ~rows_per_table:128 rng)
            ~tool () );
      ( "PMFS+Filebench",
        fun tool ->
          pmfs_workload ~client:(fun rng -> Clients.filebench ~ops:fs_ops ~files:64 rng) ~tool ()
      );
      ( "Vacation (extra)",
        fun tool ->
          (* Beyond the paper's Table 4: WHISPER's vacation, multi-table
             transactions on PMDK. *)
          let session =
            match tool with `Pmtest workers -> Some (Pmtest.init ~workers ()) | _ -> None
          in
          let sink = match session with Some s -> Pmtest.sink s | None -> Sink.null in
          let v = Vacation.create ~resources:64 ~sink () in
          let on_section () =
            match session with Some s -> Pmtest.send_trace s | None -> ()
          in
          Vacation.run v ~on_section
            (Vacation.client ~ops:(!kv_ops / 4) ~customers:256 ~resources:64 (Rng.create 14));
          match session with Some s -> ignore (Pmtest.finish s) | None -> () );
    ]
  in
  let ratios =
    List.map
      (fun (name, run) ->
        let t_base = time (fun () -> run `None) in
        let t_pm = time (fun () -> run (`Pmtest 1)) in
        let r = ratio t_pm t_base in
        Fmt.pr "%-24s %12.2f %12.2f@." name (t_base *. 1e3) r;
        r)
      rows
  in
  Fmt.pr "%-24s %12s %12.2f@." "Average" "" (Stats.geomean (Array.of_list ratios));
  (* Redis is PMDK-based, so the paper also tests it under Pmemcheck. *)
  let t_base = time (fun () -> redis_workload ~tool:`None ()) in
  let t_pc = time (fun () -> redis_workload ~tool:`Pmemcheck ()) in
  let t_pm = time (fun () -> redis_workload ~tool:(`Pmtest 1) ()) in
  Fmt.pr "@.Redis under Pmemcheck: %.2fx (vs %.2fx under PMTest; Pmemcheck/PMTest = %.1fx)@."
    (ratio t_pc t_base) (ratio t_pm t_base) (ratio t_pc t_pm);
  Fmt.pr "(paper: PMTest 1.33-1.98x, avg 1.69x; Redis+Pmemcheck 22.3x, 13.6x slower than PMTest)@."

(* --- Figure 12 ------------------------------------------------------------------ *)

let fig12_cell ~threads ~workers ~client =
  let ops_per_client = !kv_ops in
  let base =
    time (fun () -> memcached_workload ~threads ~ops_per_client ~client ~tool:`None ())
  in
  let pm =
    time (fun () ->
        memcached_workload ~threads ~ops_per_client ~client ~tool:(`Pmtest workers) ())
  in
  ratio pm base

let fig12 variant () =
  let memslap ~ops ~keys rng = Clients.memslap ~ops ~keys rng in
  let ycsb ~ops ~keys rng = Clients.ycsb ~ops ~keys rng in
  let cells =
    match variant with
    | `A -> List.map (fun t -> (t, 1)) [ 1; 2; 4 ]
    | `B -> List.map (fun w -> (4, w)) [ 1; 2; 4 ]
    | `C -> List.map (fun n -> (n, n)) [ 1; 2; 4 ]
  in
  let label =
    match variant with
    | `A -> "(a) vs. #Memcached threads, 1 PMTest worker"
    | `B -> "(b) vs. #PMTest workers, 4 Memcached threads"
    | `C -> "(c) #threads = #workers"
  in
  Fmt.pr "@.### Figure 12%s (%d ops)@.@." label !kv_ops;
  Fmt.pr "%-10s %-10s %12s %12s@." "threads" "workers" "Memslap(x)" "YCSB(x)";
  List.iter
    (fun (threads, workers) ->
      let a = fig12_cell ~threads ~workers ~client:memslap in
      let b = fig12_cell ~threads ~workers ~client:ycsb in
      Fmt.pr "%-10d %-10d %12.2f %12.2f@." threads workers a b)
    cells;
  (match variant with
  | `A -> Fmt.pr "(paper: slowdown grows with thread count at a single worker)@."
  | `B -> Fmt.pr "(paper: slowdown falls as workers are added)@."
  | `C -> Fmt.pr "(paper: roughly flat, rising slightly from cross-thread communication)@.");
  Fmt.pr
    "(caveat: OCaml 5's stop-the-world minor GC charges every extra domain to the@.";
  Fmt.pr
    " producer, which skews these wall-clock ratios — see the worker-scaling table)@.";
  if variant = `B then begin
    (* The paper's underlying claim, isolated from the GC effect: more
       workers drain a fixed backlog of recorded trace sections faster. *)
    let sections = ref [] in
    let collect = { Sink.emit = (fun _ _ -> ()) } in
    ignore collect;
    let builders = Array.init 4 (fun i -> Builder.create ~thread:i ()) in
    let mc =
      Memcached.create ~shards:4 ~sink_of:(fun i -> Builder.sink builders.(i)) ()
    in
    let streams =
      Memcached.generate_streams
        ~client:(fun ~ops ~keys rng -> Clients.ycsb ~ops ~keys rng)
        ~ops_per_client:!kv_ops ~keys:4096 ~seed:17 mc
    in
    Memcached.run mc ~section_every:256
      ~on_section:(fun shard ->
        let sec = Builder.take builders.(shard) in
        if Array.length sec > 0 then sections := sec :: !sections)
      ~streams;
    let sections = Array.of_list !sections in
    Fmt.pr "@.offline checking throughput over %d recorded sections (YCSB, 4 clients):@."
      (Array.length sections);
    Fmt.pr "%-10s %14s %10s@." "workers" "drain time(s)" "speedup";
    let t1 = ref nan in
    List.iter
      (fun w ->
        let t =
          time (fun () ->
              let rt = Pmtest_core.Runtime.create ~workers:w () in
              Array.iter (Pmtest_core.Runtime.send_trace rt) sections;
              ignore (Pmtest_core.Runtime.shutdown rt))
        in
        if w = 1 then t1 := t;
        Fmt.pr "%-10d %14.3f %9.2fx@." w t (!t1 /. t))
      [ 1; 2; 4 ];
    Fmt.pr
      "(the paper's drain time falls with workers; OCaml 5.1's multi-domain allocation@.";
    Fmt.pr
      " behaviour inverts the scaling here — a substrate limitation recorded in@.";
    Fmt.pr " EXPERIMENTS.md, not a property of the checking algorithm)@."
  end

(* --- Table 1 --------------------------------------------------------------------- *)

let table1 () =
  Fmt.pr "@.### Table 1 — tools for testing crash-consistent software@.@.";
  Fmt.pr "%-22s %-8s %-12s %-18s %-8s@." "Tool" "Speed" "Flexibility" "Target software"
    "Kernel?";
  Fmt.pr "%-22s %-8s %-12s %-18s %-8s@." "Yat" "Low" "Low" "PMFS" "Yes";
  Fmt.pr "%-22s %-8s %-12s %-18s %-8s@." "Pmemcheck" "Medium" "Low" "PMDK" "No";
  Fmt.pr "%-22s %-8s %-12s %-18s %-8s@." "PMTest (this work)" "High" "High" "Any CCS" "Yes";
  Fmt.pr "@.(the yat and fig10a/fig11 targets quantify the Speed column;@.";
  Fmt.pr " the hops_model example and the PMFS/Mnemosyne/PMDK integrations the Flexibility one)@."

(* --- Tables 5 and 6 ---------------------------------------------------------------- *)

let table5 () =
  Fmt.pr "@.### Table 5 — synthetic bug detection@.@.";
  let t0 = now_ns () in
  let total = ref 0 and detected = ref 0 and false_pos = ref 0 in
  List.iter
    (fun (cat, cases) ->
      let det = ref 0 in
      List.iter
        (fun c ->
          let o = Case.execute c in
          incr total;
          if o.Case.detected then begin
            incr detected;
            incr det
          end;
          if not o.Case.clean then incr false_pos)
        cases;
      Fmt.pr "%-28s %2d/%2d detected@." (Case.category_name cat) !det (List.length cases))
    (Catalog.by_category Catalog.synthetic);
  let dt = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
  Fmt.pr "@.total: %d/%d detected, %d false positives (%.2fs for the whole suite)@." !detected
    !total !false_pos dt;
  Fmt.pr "(paper: all synthetic bugs reported; checkers: 2 TX pairs for transactional code,@.";
  Fmt.pr " 12 isPersist + 6 isOrderedBefore for the low-level benchmark)@."

let table6 () =
  Fmt.pr "@.### Table 6 — known and new real bugs@.@.";
  Fmt.pr "%-14s %-28s %-10s %s@." "id" "origin" "verdict" "description";
  List.iter
    (fun case ->
      let o = Case.execute case in
      let origin =
        match case.Case.provenance with
        | Case.Synthetic -> "synthetic"
        | Case.Reproduced s -> "known: " ^ s
        | Case.New_bug s -> "new: " ^ s
      in
      Fmt.pr "%-14s %-28s %-10s %s@." case.Case.id origin
        (if o.Case.detected then "detected" else "MISSED")
        case.Case.description)
    Catalog.table6

(* --- Yat comparison (§2.2) ----------------------------------------------------------- *)

let yat_bench () =
  Fmt.pr "@.### Yat exhaustive search vs. PMTest interval deduction (§2.2)@.@.";
  Fmt.pr "%-12s %16s %14s %14s@." "#writes" "Yat states" "Yat time(s)" "PMTest time(s)";
  List.iter
    (fun n ->
      (* n unordered writes to distinct lines, then one flush+fence. *)
      let ops =
        List.concat
          [
            List.init n (fun i -> Event.make (Event.Op (Model.Write { addr = i * 64; size = 8 })));
            List.init n (fun i -> Event.make (Event.Op (Model.Clwb { addr = i * 64; size = 8 })));
            [ Event.make (Event.Op Model.Sfence) ];
            List.init n (fun i ->
                Event.make (Event.Checker (Event.Is_persist { addr = i * 64; size = 8 })));
          ]
      in
      let trace = Array.of_list ops in
      let states = Yat.estimated_states ~size:(n * 64) trace in
      let t_yat =
        time_once (fun () ->
            ignore
              (Yat.run ~limit_per_point:2_000_000 ~size:(n * 64) ~check:(fun _ -> true) trace))
      in
      let t_pmtest = time_once (fun () -> ignore (Engine.check trace)) in
      Fmt.pr "%-12d %16.0f %14.4f %14.6f@." n states t_yat t_pmtest)
    [ 2; 4; 6; 8; 10; 12; 14; 16 ];
  Fmt.pr "@.(Yat's crash-state space doubles per unordered write — the paper quotes >5 years@.";
  Fmt.pr " for a 100k-op PMFS trace; PMTest's single pass stays linear in the trace)@."

(* --- Ablation: interval-map shadow vs naive list shadow ------------------------------- *)

let ablation () =
  Fmt.pr "@.### Ablation — interval-map shadow memory vs naive list shadow@.@.";
  Fmt.pr "(same verdicts — the differential property test proves it; this measures@.";
  Fmt.pr " why the engine uses an interval map with lazy closing, paper section 4.4)@.@.";
  Fmt.pr "%-12s %16s %16s %10s@." "trace ops" "interval-map(s)" "naive-list(s)" "ratio";
  List.iter
    (fun n ->
      (* A trace with many live ranges: n writes to distinct addresses,
         periodic flushes and fences, interleaved checkers. *)
      let entries =
        List.concat
          (List.init n (fun i ->
               let addr = i * 16 mod 65536 in
               [
                 Event.make (Event.Op (Model.Write { addr; size = 8 }));
                 Event.make (Event.Op (Model.Clwb { addr; size = 8 }));
               ]
               @ (if i mod 8 = 7 then [ Event.make (Event.Op Model.Sfence) ] else [])
               @
               if i mod 16 = 15 then
                 [ Event.make (Event.Checker (Event.Is_persist { addr; size = 8 })) ]
               else []))
      in
      let trace = Array.of_list entries in
      let t_fast = time (fun () -> ignore (Engine.check trace)) in
      let t_naive = time (fun () -> ignore (Pmtest_baseline.Naive_engine.check trace)) in
      Fmt.pr "%-12d %16.4f %16.4f %9.1fx@." n t_fast t_naive (ratio t_naive t_fast))
    [ 256; 1024; 4096; 16384 ];
  Fmt.pr "@.(the list shadow is O(n) per operation and sweeps everything at each fence:@.";
  Fmt.pr " quadratic blow-up on exactly the long traces PMTest targets)@."

(* --- Static lint throughput ----------------------------------------------------------- *)

let lint_bench () =
  Fmt.pr "@.### Static lint throughput vs. the dynamic engine@.@.";
  Fmt.pr "(both are single passes over the same recorded trace; the lint carries no@.";
  Fmt.pr " checkers, so its cost bounds what checker-free triage of a trace costs)@.@.";
  let record ops =
    let builder = Builder.create () in
    let r = Redis.create ~sink:(Builder.sink builder) () in
    Redis.run r (Clients.redis_lru ~ops ~keys:16384 (Rng.create 21));
    Builder.take builder
  in
  Fmt.pr "%-12s %10s %14s %14s %16s %16s@." "redis ops" "entries" "engine(s)" "lint(s)"
    "engine(ev/s)" "lint(ev/s)";
  List.iter
    (fun ops ->
      let trace = record ops in
      let stripped = Pmtest_lint.Lint.strip_checkers trace in
      let n = float_of_int (Array.length trace) in
      let t_engine = time (fun () -> ignore (Engine.check trace)) in
      let t_lint = time (fun () -> ignore (Pmtest_lint.Lint.run stripped)) in
      Fmt.pr "%-12d %10d %14.4f %14.4f %16.0f %16.0f@." ops (Array.length trace) t_engine
        t_lint (n /. t_engine) (n /. t_lint))
    [ 1_000; 4_000; 16_000 ];
  Fmt.pr "@.(the lint tracks one extra flush record per live store but skips checker@.";
  Fmt.pr " evaluation and persist-interval queries; throughputs land in the same order@.";
  Fmt.pr " of magnitude, keeping lint cheap enough to run on every recorded trace)@."

(* --- Differential fuzzing throughput --------------------------------------------------- *)

let fuzz_bench () =
  let module Campaign = Pmtest_fuzz.Campaign in
  let module Cross = Pmtest_fuzz.Cross in
  Fmt.pr "@.### Differential fuzzing throughput (lib/fuzz)@.@.";
  Fmt.pr "(each program is generated, then replayed through every applicable checker@.";
  Fmt.pr " pair — the rate bounds how many programs a nightly campaign can afford)@.@.";
  Fmt.pr "%-8s %10s %10s %10s %12s %12s@." "model" "programs" "entries" "total(s)" "prog/s"
    "entries/s";
  let model_rows = ref [] in
  List.iter
    (fun model ->
      let cfg =
        { (Campaign.default_cfg model) with Campaign.count = 400; seed = 0; shrink = false }
      in
      let stats = ref None in
      let t = time (fun () -> stats := Some (Campaign.run cfg)) in
      match !stats with
      | None -> ()
      | Some s ->
        let name = Model.kind_name model in
        Fmt.pr "%-8s %10d %10d %10.3f %12.0f %12.0f@." name s.Campaign.programs
          s.Campaign.events t
          (float_of_int s.Campaign.programs /. t)
          (float_of_int s.Campaign.events /. t);
        tsv "fuzz\t%s\t%d\tprogs_per_s\t%.0f" name s.Campaign.programs
          (float_of_int s.Campaign.programs /. t);
        let pairs =
          List.map
            (fun (pair, secs) ->
              let applied = List.assoc pair s.Campaign.applied in
              Fmt.pr "    %-18s applied %6d  %8.3fs@." (Cross.pair_name pair) applied secs;
              Printf.sprintf "      {\"pair\": %S, \"applied\": %d, \"seconds\": %.3f}"
                (Cross.pair_name pair) applied secs)
            s.Campaign.pair_seconds
        in
        model_rows :=
          Printf.sprintf
            "    {\"model\": %S, \"programs\": %d, \"entries\": %d, \"progs_per_s\": %.0f, \
             \"entries_per_s\": %.0f, \"findings\": %d, \"pairs\": [\n\
             %s\n\
            \    ]}"
            name s.Campaign.programs s.Campaign.events
            (float_of_int s.Campaign.programs /. t)
            (float_of_int s.Campaign.events /. t)
            (List.length s.Campaign.findings)
            (String.concat ",\n" pairs)
          :: !model_rows)
    Model.all_kinds;
  Fmt.pr "@.(differential checking dominates generation; the crashtest pair enumerates@.";
  Fmt.pr " versioned crash images and is the budget to watch on long campaigns)@.";
  match !json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"bench\": \"fuzz\",\n  \"models\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.rev !model_rows));
    close_out oc;
    Fmt.pr "@.JSON written to %s@." path

(* --- Observability overhead ------------------------------------------------------------ *)

let obs_bench () =
  let module Obs = Pmtest_obs.Obs in
  Fmt.pr "@.### Observability overhead (lib/obs)@.@.";
  Fmt.pr "(two claims: the disabled path costs nothing — [Sink.observed Obs.disabled]@.";
  Fmt.pr " returns the unwrapped sink — and the enabled path stays within a few percent@.";
  Fmt.pr " on the fig10a pipeline, where per-event counting dominates)@.@.";
  (* Per-event cost of the instrumentation hot path. *)
  let n = 1_000_000 in
  let kind = Event.Op (Model.Write { addr = 0; size = 8 }) in
  let bench_events name sink flush =
    let t =
      time (fun () ->
          for i = 1 to n do
            sink.Sink.emit kind Loc.none;
            if i land 4095 = 0 then flush ()
          done;
          flush ())
    in
    let ns = t *. 1e9 /. float_of_int n in
    Fmt.pr "  %-28s %8.1f ns/event@." name ns;
    ns
  in
  let b1 = Builder.create () in
  let b2 = Builder.create () in
  let b3 = Builder.create () in
  let _ = bench_events "null sink" Sink.null ignore in
  let raw = bench_events "builder" (Builder.sink b1) (fun () -> ignore (Builder.take b1)) in
  let off =
    bench_events "builder, observed (off)"
      (Sink.observed Obs.disabled (Builder.sink b2))
      (fun () -> ignore (Builder.take b2))
  in
  let on =
    bench_events "builder, observed (on)"
      (Sink.observed (Obs.create ()) (Builder.sink b3))
      (fun () -> ignore (Builder.take b3))
  in
  Fmt.pr "@.  event path: disabled %+.1f%%, enabled %+.1f%% vs the raw builder@."
    (100.0 *. (off -. raw) /. raw)
    (100.0 *. (on -. raw) /. raw);
  (* Whole-pipeline overhead on a fig10a subset. *)
  let n = !insertions in
  Fmt.pr "@.%-16s %8s %12s %12s %10s@." "structure" "tx(B)" "obs off(ms)" "obs on(ms)"
    "overhead";
  let ratios = ref [] in
  List.iter
    (fun micro ->
      List.iter
        (fun size ->
          let t_off = micro_time (`Pmtest 1) micro ~size ~n in
          let t_on = micro_time (`Pmtest_profiled 1) micro ~size ~n in
          ratios := ratio t_on t_off :: !ratios;
          Fmt.pr "%-16s %8d %12.2f %12.2f %9.1f%%@." micro.m_name size (t_off *. 1e3)
            (t_on *. 1e3)
            (100.0 *. (t_on -. t_off) /. t_off))
        [ 64; 512; 4096 ])
    (List.filter (fun m -> List.mem m.m_name [ "C-Tree"; "HashMap(w/ TX)" ]) micros);
  Fmt.pr "@.geomean pipeline overhead with observability on: %+.1f%%@."
    (100.0 *. (Stats.geomean (Array.of_list !ratios) -. 1.0));
  Fmt.pr "(target: <= 5%% enabled; disabled is the identical code path, so 0%% by@.";
  Fmt.pr " construction — the transparency property test pins report equality)@."

(* --- Flat-trace fast path (packed vs boxed) -------------------------------------------- *)

module Packed = Pmtest_trace.Packed

let perf () =
  Fmt.pr "@.### perf — flat-trace fast path: packed vs boxed (%d insertions/cell)@.@." !insertions;
  (* 1. Codec: the per-event tracing cost of each representation. *)
  let n_events = 400_000 in
  let kinds =
    [|
      Event.Op (Model.Write { addr = 0x1040; size = 64 });
      Event.Op (Model.Clwb { addr = 0x1040; size = 64 });
      Event.Op Model.Sfence;
    |]
  in
  (* Each representation flushes through its own native take — flushing a
     boxed builder via [take_packed] would re-encode and overstate its
     cost. *)
  let bench_emit name builder flush =
    let t =
      time (fun () ->
          for i = 0 to n_events - 1 do
            Builder.emit builder kinds.(i mod 3) Loc.none
          done;
          flush builder)
    in
    let ns = t *. 1e9 /. float_of_int n_events in
    Fmt.pr "  %-24s %8.1f ns/event  %10.1f Mev/s@." name ns (1e3 /. ns);
    tsv "codec\t%s\temit\tns_per_event\t%.2f" name ns;
    ns
  in
  Fmt.pr "codec emit path (%d events):@." n_events;
  let ns_boxed = bench_emit "boxed builder" (Builder.create ()) (fun b -> ignore (Builder.take b)) in
  let ns_packed =
    bench_emit "packed builder" (Builder.create ~packed:true ()) (fun b ->
        Packed.free (Builder.take_packed b))
  in
  let codec_speedup = ns_boxed /. ns_packed in
  Fmt.pr "  emit speedup: %.2fx@." codec_speedup;
  tsv "codec\tgeomean\t-\temit_speedup\t%.3f" codec_speedup;
  (* 2. Engine: checking a pre-recorded section through each path. *)
  let section =
    let b = Builder.create () in
    let pool = Pool.create ~size:(1 lsl 22) ~sink:(Builder.sink b) () in
    let m = Ctree_map.create pool in
    for i = 0 to 255 do
      Pool.tx_checker_start pool;
      Ctree_map.insert m ~key:(Int64.of_int i) ~value:(Bytes.make 64 'x');
      Pool.tx_checker_end pool
    done;
    Builder.take b
  in
  let packed_section = Packed.of_events section in
  let reps = 200 in
  let t_box =
    time (fun () -> for _ = 1 to reps do ignore (Engine.check section) done)
  in
  let t_pak =
    time (fun () -> for _ = 1 to reps do ignore (Engine.check_packed packed_section) done)
  in
  let ev = float_of_int (Array.length section * reps) in
  Fmt.pr "@.engine on a %d-entry ctree section (x%d):@." (Array.length section) reps;
  Fmt.pr "  %-24s %10.0f ev/s@." "check (boxed)" (ev /. t_box);
  Fmt.pr "  %-24s %10.0f ev/s@." "check_packed (flat)" (ev /. t_pak);
  let engine_speedup = t_box /. t_pak in
  Fmt.pr "  check speedup: %.2fx@." engine_speedup;
  tsv "engine\tctree-section\tcheck\tspeedup\t%.3f" engine_speedup;
  (* 3. Fig. 10a subset end to end at workers=0: the whole pipeline with
     checking on the critical path, where representation matters most. *)
  Fmt.pr "@.fig10a subset, workers=0 (trace + check on the critical path):@.@.";
  Fmt.pr "%-16s %8s %12s %12s %12s %10s %12s@." "structure" "tx(B)" "base(ms)" "boxed(ms)"
    "packed(ms)" "run(x)" "overhead(x)";
  let run_speedups = ref [] and overhead_speedups = ref [] in
  let subset = List.filter (fun m -> List.mem m.m_name [ "C-Tree"; "HashMap(w/ TX)" ]) micros in
  List.iter
    (fun micro ->
      List.iter
        (fun size ->
          let t_base = micro_time `Base micro ~size ~n:!insertions in
          let t_boxed = micro_time `Pmtest_sync micro ~size ~n:!insertions in
          let t_packed = micro_time (`Pmtest_packed 0) micro ~size ~n:!insertions in
          let run_x = ratio t_boxed t_packed in
          let overhead_x =
            ratio (max 1e-9 (t_boxed -. t_base)) (max 1e-9 (t_packed -. t_base))
          in
          run_speedups := run_x :: !run_speedups;
          overhead_speedups := overhead_x :: !overhead_speedups;
          Fmt.pr "%-16s %8d %12.2f %12.2f %12.2f %10.2f %12.2f@." micro.m_name size
            (t_base *. 1e3) (t_boxed *. 1e3) (t_packed *. 1e3) run_x overhead_x;
          tsv "fig10a\t%s\t%d\trun_speedup\t%.3f" micro.m_name size run_x;
          tsv "fig10a\t%s\t%d\toverhead_speedup\t%.3f" micro.m_name size overhead_x)
        [ 64; 512; 4096 ])
    subset;
  let geo l = Stats.geomean (Array.of_list l) in
  let run_geo = geo !run_speedups and overhead_geo = geo !overhead_speedups in
  Fmt.pr "@.geomean: whole-run %.2fx, checking-overhead %.2fx (packed over boxed)@." run_geo
    overhead_geo;
  tsv "fig10a\tgeomean\t-\trun_speedup\t%.3f" run_geo;
  tsv "fig10a\tgeomean\t-\toverhead_speedup\t%.3f" overhead_geo;
  (* 4. Worker scaling: does the packed advantage survive hand-off? *)
  Fmt.pr "@.worker scaling (C-Tree, 512 B values):@.@.";
  Fmt.pr "%-10s %12s %12s %10s@." "workers" "boxed(ms)" "packed(ms)" "speedup";
  let ctree = List.find (fun m -> m.m_name = "C-Tree") micros in
  List.iter
    (fun w ->
      let t_boxed =
        micro_time (if w = 0 then `Pmtest_sync else `Pmtest w) ctree ~size:512 ~n:!insertions
      in
      let t_packed = micro_time (`Pmtest_packed w) ctree ~size:512 ~n:!insertions in
      Fmt.pr "%-10d %12.2f %12.2f %9.2fx@." w (t_boxed *. 1e3) (t_packed *. 1e3)
        (ratio t_boxed t_packed);
      tsv "scaling\tC-Tree\t%d\trun_speedup\t%.3f" w (ratio t_boxed t_packed))
    [ 0; 2; 4 ];
  Fmt.pr
    "@.(the packed path removes one heap block per traced event and replaces the@.";
  Fmt.pr
    " persistent-tree shadow with a page-indexed mutable one; the verdicts are@.";
  Fmt.pr " pinned identical by test_packed and the engine/packed fuzz contract)@.";
  (* The gate pins the representation-owned metrics (codec emit, engine
     check): the whole-run numbers are dominated by the shared workload +
     engine cost and swing +-10% with machine noise on small sections, so
     they are reported but not gated. *)
  let rep_geo = sqrt (codec_speedup *. engine_speedup) in
  tsv "gate\trepresentation\t-\tgeomean_speedup\t%.3f" rep_geo;
  if !gate && rep_geo < 1.0 then begin
    Fmt.epr
      "GATE FAILED: packed representation slower than boxed (codec %.2fx x engine %.2fx, geomean %.3fx < 1.0)@."
      codec_speedup engine_speedup rep_geo;
    write_tsv ();
    exit 1
  end

(* --- pmtestd service overhead ----------------------------------------------------------- *)

module Server = Pmtest_server.Server
module Client = Pmtest_client.Client
module Wire = Pmtest_wire.Wire

let serve_bench () =
  Fmt.pr "@.### serve — pmtestd: wire overhead and shard scaling@.@.";
  Fmt.pr "(single client: the framed protocol's cost over the in-process runtime;@.";
  Fmt.pr " scaling: aggregate daemon capacity as sessions spread over shards)@.@.";
  (* One representative trace, chunked as a session would chunk it. *)
  let seed = 23 in
  let entries =
    let builder = Builder.create () in
    let r = Redis.create ~sink:(Builder.sink builder) () in
    Redis.run r (Clients.redis_lru ~ops:!kv_ops ~keys:16384 (Rng.create seed));
    Builder.take builder
  in
  let section_len = 256 in
  let sections =
    let n = Array.length entries in
    List.init
      ((n + section_len - 1) / section_len)
      (fun i -> Array.sub entries (i * section_len) (min section_len (n - (i * section_len))))
  in
  let nsec = List.length sections in
  let workers = 2 in
  let socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pmtest-bench-%d.sock" (Unix.getpid ()))
  in
  (* 1. Single client: the per-section cost of the wire.  Each timed
     pass is one complete session — fresh aggregate, stream every
     section, drain, tear down — because that is what one run of a
     program under the tool costs, and because a session's report must
     start empty on both sides for the comparison to be fair.  The
     local baseline goes first, before the daemon exists, so both
     measurements see the same number of live domains (idle worker
     domains still cost stop-the-world GC synchronisation). *)
  let run_local () =
    let rt = Pmtest_core.Runtime.create ~workers () in
    List.iter
      (fun sec -> Pmtest_core.Runtime.send_packed rt (Packed.of_events sec))
      sections;
    ignore (Pmtest_core.Runtime.shutdown rt)
  in
  run_local ();
  (* warm-up *)
  let t_local = time run_local in
  let t =
    Server.start { Server.default_config with Server.socket; workers; max_sessions = 16 }
  in
  let t_remote =
    Fun.protect
      ~finally:(fun () -> Server.stop t)
      (fun () ->
        let run_remote () =
          match Client.connect ~socket () with
          | Error m -> failwith ("bench serve: connect: " ^ m)
          | Ok c ->
            List.iter
              (fun sec ->
                match Client.send_events c sec with
                | Ok () -> ()
                | Error m -> failwith ("bench serve: send: " ^ m))
              sections;
            (match Client.get_result c with
            | Ok _ -> ()
            | Error m -> failwith ("bench serve: get_result: " ^ m));
            Client.close c
        in
        run_remote ();
        (* warm-up: page in the daemon's read/dispatch path *)
        time run_remote)
  in
  let per_sec_us = 1e6 *. (t_remote -. t_local) /. float_of_int nsec in
  Fmt.pr "single client, %d sections of <=%d entries, %d workers, 1 shard:@." nsec section_len
    workers;
  Fmt.pr "  %-24s %10.2f ms@." "in-process" (t_local *. 1e3);
  Fmt.pr "  %-24s %10.2f ms  (%.2fx, %+.1f us/section)@." "over the socket"
    (t_remote *. 1e3) (ratio t_remote t_local) per_sec_us;
  tsv "serve\tsingle\t%d\tlocal_ms\t%.3f" nsec (t_local *. 1e3);
  tsv "serve\tsingle\t%d\tremote_ms\t%.3f" nsec (t_remote *. 1e3);
  tsv "serve\tsingle\t%d\toverhead_ratio\t%.3f" nsec (ratio t_remote t_local);
  tsv "serve\tsingle\t%d\tper_section_us\t%.2f" nsec per_sec_us;
  (* 2. Shard scaling: a fresh daemon with [--shards] shards (one worker
     domain each), N concurrent sessions each streaming the same
     pre-encoded section frames.  Frames are encoded once, outside the
     timed region, so the measurement is daemon capacity — accept,
     batch decode, dispatch, check, merge — not client-side encoding. *)
  let cores = Domain.recommended_domain_count () in
  let parallel_capacity = max 1 ((cores - 1) / 2) in
  let shards = if !bench_shards > 0 then !bench_shards else min 4 parallel_capacity in
  let payloads = List.map (fun sec -> Packed.encode_wire (Packed.of_events sec)) sections in
  let scaling_socket =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "pmtest-bench-scale-%d.sock" (Unix.getpid ()))
  in
  let t =
    Server.start
      {
        Server.default_config with
        Server.socket = scaling_socket;
        shards;
        workers = 1;
        max_sessions = 32;
        max_inflight = 256;
      }
  in
  let rates =
    Fun.protect
      ~finally:(fun () -> Server.stop t)
      (fun () ->
        let run_raw_client () =
          let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
          Fun.protect
            ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
            (fun () ->
              Unix.connect fd (ADDR_UNIX scaling_socket);
              let send kind payload =
                match Wire.write_frame fd kind payload with
                | Ok () -> ()
                | Error e -> failwith ("bench serve: " ^ Wire.error_to_string e)
              in
              send Wire.Hello (Wire.encode_hello ~model:Model.X86);
              (match Wire.read_frame fd with
              | Ok (Wire.Hello_ack, _) -> ()
              | Ok (k, _) -> failwith ("bench serve: expected hello_ack, got " ^ Wire.kind_name k)
              | Error e -> failwith ("bench serve: " ^ Wire.error_to_string e));
              List.iter (send Wire.Section) payloads;
              send Wire.Get_result "";
              match Wire.read_frame fd with
              | Ok (Wire.Report_frame, _) -> ()
              | Ok (k, _) -> failwith ("bench serve: expected report, got " ^ Wire.kind_name k)
              | Error e -> failwith ("bench serve: " ^ Wire.error_to_string e))
        in
        run_raw_client ();
        (* warm-up *)
        Fmt.pr
          "@.shard scaling, %d shard(s) x 1 worker, pre-encoded frames (each session@." shards;
        Fmt.pr " streams all %d sections):@.@." nsec;
        Fmt.pr "%-10s %12s %14s %10s@." "clients" "total(s)" "sections/s" "vs 1";
        let r1 = ref nan in
        List.map
          (fun clients ->
            let t =
              time (fun () ->
                  let threads = List.init clients (fun _ -> Thread.create run_raw_client ()) in
                  List.iter Thread.join threads)
            in
            let rate = float_of_int (clients * nsec) /. t in
            if clients = 1 then r1 := rate;
            Fmt.pr "%-10d %12.3f %14.0f %9.2fx@." clients t rate (rate /. !r1);
            tsv "serve\tscaling\t%d\tsections_per_s\t%.0f" clients rate;
            (clients, rate))
          [ 1; 4; 8 ])
  in
  let rate_at n = try List.assoc n rates with Not_found -> nan in
  let scaling_8v1 = rate_at 8 /. rate_at 1 in
  (* The gate scales its bar to the machine: a shard can only buy
     throughput if it has cores to run on.  With [c] cores, about
     [(c-1)/2] shards can make progress in parallel (each shard is an
     acceptor/session side plus a checking worker, and the clients
     themselves burn cores), capped by the shard count itself. *)
  let parallel_shards = min shards parallel_capacity in
  let required, mode =
    if parallel_shards >= 4 then (3.0, "full")
    else if parallel_shards >= 2 then (0.75 *. float_of_int parallel_shards, "partial")
    else (0.85, "degraded")
  in
  let passed = scaling_8v1 >= required in
  Fmt.pr "@.8-client vs 1-client aggregate: %.2fx (gate: >= %.2fx, %s mode on %d core(s))@."
    scaling_8v1 required mode cores;
  if mode <> "full" then
    Fmt.pr
      " (too few cores for %d shards to run in parallel — the near-linear bar needs >= %d cores;@.\
      \ this machine's bar only checks that sharding does not regress throughput)@."
      shards ((2 * 4) + 1);
  tsv "serve\tscaling\t8v1\tratio\t%.3f" scaling_8v1;
  tsv "serve\tgate\t%s\trequired\t%.3f" mode required;
  (match !json_path with
  | None -> ()
  | Some path ->
    (* The caveat travels with the numbers: a reader of the JSON must be
       able to tell a waived near-linear bar from a met one without
       knowing what machine produced the file. *)
    let caveat =
      if mode = "full" then ""
      else
        Printf.sprintf
          "only %d shard(s) can run in parallel on %d core(s); the near-linear 8v1 bar needs \
           >= 9 cores, so this gate only checks that sharding does not regress throughput"
          parallel_shards cores
    in
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"serve\",\n\
      \  \"shards\": %d,\n\
      \  \"workers_per_shard\": 1,\n\
      \  \"cores\": %d,\n\
      \  \"seed\": %d,\n\
      \  \"section_entries\": %d,\n\
      \  \"sections_per_client\": %d,\n\
      \  \"single_client\": {\"local_ms\": %.3f, \"remote_ms\": %.3f, \"per_section_us\": %.2f},\n\
      \  \"scaling\": [%s],\n\
      \  \"scaling_8v1\": %.3f,\n\
      \  \"gate\": {\"required\": %.3f, \"mode\": \"%s\", \"passed\": %b,\n\
      \           \"multi_core_pending\": %b, \"caveat\": \"%s\"}\n\
       }\n"
      shards cores seed section_len nsec (t_local *. 1e3) (t_remote *. 1e3) per_sec_us
      (String.concat ", "
         (List.map
            (fun (c, r) -> Printf.sprintf "{\"clients\": %d, \"sections_per_s\": %.0f}" c r)
            rates))
      scaling_8v1 required mode passed (mode <> "full") caveat;
    close_out oc;
    Fmt.pr "@.JSON written to %s@." path);
  if !gate && not passed then begin
    Fmt.epr "GATE FAILED: 8-client scaling %.2fx < required %.2fx (%s mode, %d core(s))@."
      scaling_8v1 required mode cores;
    write_tsv ();
    exit 1
  end

(* --- pmfarm: distributed campaign throughput and recovery ----------------------------- *)

module Farm = Pmtest_farm.Farm

let rec bench_rm_rf path =
  match Unix.lstat path with
  | exception Unix.Unix_error _ -> ()
  | { Unix.st_kind = S_DIR; _ } ->
    Array.iter (fun e -> bench_rm_rf (Filename.concat path e)) (Sys.readdir path);
    (try Unix.rmdir path with Unix.Unix_error _ -> ())
  | _ -> ( try Unix.unlink path with Unix.Unix_error _ -> ())

let farm_bench () =
  Fmt.pr "@.### farm — pmfarm: distributed campaign throughput and recovery@.@.";
  Fmt.pr "(jobs/s for one fuzz campaign as workers scale; reassignment latency is@.";
  Fmt.pr " the gap between a worker dying job-in-hand and the coordinator landing@.";
  Fmt.pr " the recovered offer on another worker)@.@.";
  let cores = Domain.recommended_domain_count () in
  let tmp = Filename.get_temp_dir_name () in
  let spec = Farm.Spec.fuzz ~max_ops:16 ~model:Model.X86 ~seed:0 ~count:240 ~chunk:12 () in
  let jobs = List.length (Farm.Spec.jobs spec) in
  let fresh_paths tag =
    let dir = Filename.concat tmp (Printf.sprintf "pmtest-farm-bench-%d-%s" (Unix.getpid ()) tag) in
    let socket = dir ^ ".sock" in
    bench_rm_rf dir;
    (dir, socket)
  in
  let start_coordinator cfg =
    let result = ref None in
    let ready = ref false in
    let t =
      Thread.create
        (fun () ->
          result := Some (Farm.Coordinator.run ~ready:(fun () -> ready := true) cfg))
        ()
    in
    while (not !ready) && !result = None do
      Thread.delay 0.002
    done;
    (t, result)
  in
  let finish (t, result) =
    Thread.join t;
    match !result with
    | Some (Ok s) -> s
    | Some (Error e) -> failwith ("bench farm: " ^ e)
    | None -> failwith "bench farm: coordinator died without a result"
  in
  (* Throughput: the same campaign, 1 worker then 2. *)
  Fmt.pr "%-10s %12s %14s %9s@." "workers" "seconds" "jobs_per_s" "vs 1";
  let r1 = ref nan in
  let rates =
    List.map
      (fun workers ->
        let dir, socket = fresh_paths (Printf.sprintf "w%d" workers) in
        let cfg = Farm.Coordinator.default_cfg ~spec ~socket ~dir in
        let coord = start_coordinator cfg in
        let t0 = now_ns () in
        let ws =
          List.init workers (fun i ->
              Thread.create
                (fun () ->
                  ignore
                    (Farm.Worker.run
                       (Farm.Worker.default_cfg ~socket
                          ~name:(Printf.sprintf "bench-w%d" i))))
                ())
        in
        let s = finish coord in
        let t = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e9 in
        List.iter Thread.join ws;
        if s.Farm.Coordinator.jobs_done <> jobs then failwith "bench farm: lost jobs";
        let rate = float_of_int jobs /. t in
        if workers = 1 then r1 := rate;
        Fmt.pr "%-10d %12.3f %14.2f %9.2fx@." workers t rate (rate /. !r1);
        tsv "farm\tthroughput\t%d\tjobs_per_s\t%.2f" workers rate;
        bench_rm_rf dir;
        (workers, t, rate))
      [ 1; 2 ]
  in
  let rate_at n =
    try
      let _, _, r = List.find (fun (w, _, _) -> w = n) rates in
      r
    with Not_found -> nan
  in
  let scaling_2v1 = rate_at 2 /. rate_at 1 in
  tsv "farm\tscaling\t2v1\tratio\t%.3f" scaling_2v1;
  (* Recovery: a raw victim claims the only job and dies; a raw rescuer,
     already connected and idle, timestamps the reassigned offer. *)
  let reassign_once () =
    let spec1 = Farm.Spec.fuzz ~max_ops:8 ~model:Model.X86 ~seed:0 ~count:4 ~chunk:4 () in
    let dir, socket = fresh_paths "reassign" in
    let cfg = Farm.Coordinator.default_cfg ~spec:spec1 ~socket ~dir in
    let coord = start_coordinator cfg in
    let connect () =
      let fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
      Unix.connect fd (ADDR_UNIX socket);
      (match
         Wire.write_frame fd Wire.Worker_hello
           (Wire.encode_worker_hello ~farm:Wire.farm_version ~name:"bench" ~engines:0)
       with
      | Ok () -> ()
      | Error e -> failwith ("bench farm: " ^ Wire.error_to_string e));
      (match Wire.read_frame fd with
      | Ok (Wire.Worker_hello, _) -> ()
      | Ok _ | Error _ -> failwith "bench farm: bad handshake");
      fd
    in
    let victim = connect () in
    (match Wire.read_frame victim with
    | Ok (Wire.Job_offer, payload) -> (
      match Wire.decode_job_offer payload with
      | Ok (job, attempt, _, _, _) ->
        ignore (Wire.write_frame victim Wire.Job_claim (Wire.encode_job_claim ~job ~attempt))
      | Error e -> failwith ("bench farm: " ^ Wire.error_to_string e))
    | Ok _ | Error _ -> failwith "bench farm: expected the first offer");
    let rescuer = connect () in
    (* Die job-in-hand; the rescuer's read returns when the coordinator
       has detected the death, requeued the job and re-offered it. *)
    let t0 = now_ns () in
    Unix.close victim;
    let job, attempt, lo, hi =
      match Wire.read_frame rescuer with
      | Ok (Wire.Job_offer, payload) -> (
        match Wire.decode_job_offer payload with
        | Ok (job, attempt, lo, hi, _) -> (job, attempt, lo, hi)
        | Error e -> failwith ("bench farm: " ^ Wire.error_to_string e))
      | Ok _ | Error _ -> failwith "bench farm: expected the reassigned offer"
    in
    let latency_ms = Int64.to_float (Int64.sub (now_ns ()) t0) /. 1e6 in
    (* Finish the campaign honestly so the coordinator tears down. *)
    (match Farm.run_units spec1 ~lo ~hi with
    | Error e -> failwith ("bench farm: " ^ e)
    | Ok r ->
      ignore
        (Wire.write_frame rescuer Wire.Job_result
           (Wire.encode_job_result ~job ~attempt ~digest:r.Farm.digest ~units:r.Farm.units
              ~elapsed_ms:0 ~findings:r.Farm.findings)));
    let s = finish coord in
    (try Unix.close rescuer with Unix.Unix_error _ -> ());
    if s.Farm.Coordinator.reassigned < 1 then failwith "bench farm: death not reassigned";
    bench_rm_rf dir;
    latency_ms
  in
  let samples = List.init 5 (fun _ -> reassign_once ()) in
  let best = List.fold_left Float.min infinity samples in
  let mean = List.fold_left ( +. ) 0.0 samples /. float_of_int (List.length samples) in
  Fmt.pr "@.reassignment latency: best %.2f ms, mean %.2f ms over %d deaths@." best mean
    (List.length samples);
  tsv "farm\treassign\tbest\tms\t%.3f" best;
  tsv "farm\treassign\tmean\tms\t%.3f" mean;
  if cores < 3 then
    Fmt.pr
      " (2-worker scaling on %d core(s) measures protocol overhead, not parallelism;@.\
      \ re-run on a multi-core host for a real scaling signal)@."
      cores;
  match !json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"farm\",\n\
      \  \"campaign\": \"%s\",\n\
      \  \"jobs\": %d,\n\
      \  \"cores\": %d,\n\
      \  \"workers\": [%s],\n\
      \  \"scaling_2v1\": %.3f,\n\
      \  \"multi_core_pending\": %b,\n\
      \  \"reassignment_ms\": {\"best\": %.3f, \"mean\": %.3f, \"samples\": %d}\n\
       }\n"
      (Farm.Spec.to_string spec) jobs cores
      (String.concat ", "
         (List.map
            (fun (w, t, r) ->
              Printf.sprintf "{\"workers\": %d, \"seconds\": %.3f, \"jobs_per_s\": %.2f}" w t r)
            rates))
      scaling_2v1 (cores < 3) best mean (List.length samples);
    close_out oc;
    Fmt.pr "@.JSON written to %s@." path

(* --- Bechamel micro-measurements ------------------------------------------------------ *)

let bechamel () =
  Fmt.pr "@.### Bechamel micro-measurements (one Test per experiment family)@.@.";
  let open Bechamel in
  let section =
    (* Pre-record a representative trace section: 32 ctree transactions. *)
    let builder = Builder.create () in
    let pool = Pool.create ~size:(1 lsl 22) ~sink:(Builder.sink builder) () in
    let m = Ctree_map.create pool in
    for i = 0 to 31 do
      Pool.tx_checker_start pool;
      Ctree_map.insert m ~key:(Int64.of_int i) ~value:(Bytes.make 64 'x');
      Pool.tx_checker_end pool
    done;
    Builder.take builder
  in
  let test_fig10_insert =
    Test.make ~name:"fig10a:ctree-insert+pmtest"
      (Staged.stage (fun () ->
           let session = Pmtest.init ~workers:0 () in
           let pool = Pool.create ~size:(1 lsl 22) ~sink:(Pmtest.sink session) () in
           let m = Ctree_map.create pool in
           Pool.tx_checker_start pool;
           Ctree_map.insert m ~key:1L ~value:(Bytes.make 64 'x');
           Pool.tx_checker_end pool;
           Pmtest.send_trace session;
           ignore (Pmtest.finish session)))
  in
  let test_fig10b_engine =
    Test.make ~name:"fig10b:engine-check-section"
      (Staged.stage (fun () -> ignore (Engine.check section)))
  in
  let test_fig11_redis =
    Test.make ~name:"fig11:redis-set+pmtest"
      (let session = Pmtest.init ~workers:0 () in
       let r = Redis.create ~sink:(Pmtest.sink session) () in
       let i = ref 0 in
       Staged.stage (fun () ->
           incr i;
           Redis.set r ~key:(Int64.of_int (!i land 0xfff)) ~value:(Bytes.make 16 'v');
           Pmtest.send_trace session))
  in
  let test_fig12_memcached =
    Test.make ~name:"fig12:memcached-set"
      (let mc = Memcached.create ~shards:1 ~sink_of:(fun _ -> Sink.null) () in
       let i = ref 0 in
       Staged.stage (fun () ->
           incr i;
           Memcached.apply mc ~shard:0 (Clients.Set (Int64.of_int (!i land 0xfff), "vvvv"))))
  in
  let test_table5_case =
    let case = List.hd Catalog.synthetic in
    Test.make ~name:"table5:one-bug-case" (Staged.stage (fun () -> ignore (Case.execute case)))
  in
  let test_yat =
    Test.make ~name:"yat:enumerate-1k-states"
      (Staged.stage (fun () ->
           let m = Pmtest_pmem.Machine.create ~track_versions:true ~size:1024 () in
           for i = 0 to 9 do
             Pmtest_pmem.Machine.store m ~addr:(i * 64) (Bytes.make 8 'z')
           done;
           ignore (Pmtest_pmem.Machine.iter_crash_states ~limit:2048 m ignore)))
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let tests =
    Test.make_grouped ~name:"pmtest"
      [
        test_fig10_insert;
        test_fig10b_engine;
        test_fig11_redis;
        test_fig12_memcached;
        test_table5_case;
        test_yat;
      ]
  in
  let results = Benchmark.all cfg instances tests in
  let ols =
    Analyze.all
      (Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |])
      Toolkit.Instance.monotonic_clock results
  in
  Fmt.pr "%-40s %16s@." "test" "ns/run (OLS)";
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) ols [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some (est :: _) -> Fmt.pr "%-40s %16.1f@." name est
      | _ -> Fmt.pr "%-40s %16s@." name "n/a")
    (List.sort compare rows)

(* --- Auto-repair throughput ------------------------------------------------------------- *)

module Repair = Pmtest_repair.Repair

let repair_bench () =
  let module Gen = Pmtest_fuzz.Gen in
  Fmt.pr "@.### repair — auto-repair fixpoint throughput and edit mix@.@.";
  Fmt.pr "(every generated program is repaired to a fixed point and the plan proven@.";
  Fmt.pr " with verify_static; the rate bounds what repairing every recorded trace@.";
  Fmt.pr " of a nightly campaign costs)@.@.";
  let progs = max 200 (!kv_ops / 4) in
  let seed0 = 1000 in
  Fmt.pr "%-8s %10s %10s %12s %12s %8s %8s %8s %8s@." "model" "programs" "edits" "prog/s"
    "entries/s" "del-f" "del-wb" "ins-f" "ins-wb";
  let model_rows = ref [] in
  List.iter
    (fun model ->
      let programs =
        Array.init progs (fun i ->
            Gen.generate (Gen.default_cfg model) (Rng.create (seed0 + i)))
      in
      let entries =
        Array.fold_left (fun n (p : Gen.program) -> n + Array.length p.Gen.events) 0 programs
      in
      let outcomes = ref [||] in
      let t =
        time (fun () ->
            outcomes :=
              Array.map
                (fun (p : Gen.program) -> Repair.fixpoint ~model:p.Gen.model p.Gen.events)
                programs)
      in
      Array.iteri
        (fun i o ->
          match
            Repair.verify_static ~model:programs.(i).Gen.model
              ~original:programs.(i).Gen.events o
          with
          | [] -> ()
          | problem :: _ ->
            Fmt.epr "WARNING: seed %d failed its proof: %s@." (seed0 + i) problem)
        !outcomes;
      let sum f = Array.fold_left (fun n o -> n + f o) 0 !outcomes in
      let edits = sum Repair.edits_applied in
      let del_fences = sum (fun o -> o.Repair.deleted_fences) in
      let del_flushes = sum (fun o -> o.Repair.deleted_flushes) in
      let ins_fences = sum (fun o -> o.Repair.inserted_fences) in
      let ins_flushes = sum (fun o -> o.Repair.inserted_flushes) in
      let name = Model.kind_name model in
      Fmt.pr "%-8s %10d %10d %12.0f %12.0f %8d %8d %8d %8d@." name progs edits
        (float_of_int progs /. t)
        (float_of_int entries /. t)
        del_fences del_flushes ins_fences ins_flushes;
      tsv "repair\t%s\t%d\tprogs_per_s\t%.0f" name progs (float_of_int progs /. t);
      tsv "repair\t%s\t%d\tedits\t%d" name progs edits;
      model_rows :=
        Printf.sprintf
          "    {\"model\": %S, \"programs\": %d, \"seed_base\": %d, \"progs_per_s\": %.0f, \
           \"entries_per_s\": %.0f, \"edits_applied\": %d, \"fences_deleted\": %d, \
           \"flushes_deleted\": %d, \"flushes_narrowed\": %d, \"fences_inserted\": %d, \
           \"flushes_inserted\": %d, \"logs_inserted\": %d}"
          name progs seed0
          (float_of_int progs /. t)
          (float_of_int entries /. t)
          edits del_fences del_flushes
          (sum (fun o -> o.Repair.narrowed_flushes))
          ins_fences ins_flushes
          (sum (fun o -> o.Repair.inserted_logs))
        :: !model_rows)
    Model.all_kinds;
  (* The two seeded PMFS performance bugs: the repairer must reproduce the
     upstream fixes mechanically. *)
  let record_pmfs fault ops =
    let sink, recorded = Pmtest_trace.Serial.recording_sink () in
    let fs = Fs.mkfs ~inodes:16 ~blocks:64 ~sink () in
    Fs.set_fault fs (Some fault);
    (match ops fs with Ok () -> () | Error e -> failwith ("bench repair: pmfs: " ^ e));
    recorded ()
  in
  let fsync_trace =
    record_pmfs Fs.Fsync_redundant_fence (fun fs ->
        Result.bind (Fs.create fs "wal") (fun ino ->
            Result.bind
              (Fs.write fs ~ino ~off:0 (String.make 192 'a'))
              (fun () ->
                Fs.fsync fs ~ino;
                Fs.fsync fs ~ino;
                Ok ())))
  in
  let empty_tx_trace =
    record_pmfs Fs.Empty_tx_fence (fun fs ->
        Result.bind (Fs.create fs "table") (fun ino ->
            Result.bind
              (Fs.write fs ~ino ~off:0 (String.make 128 'a'))
              (fun () -> Result.map ignore (Fs.write fs ~ino ~off:0 (String.make 128 'b')))))
  in
  let o_fsync = Repair.fixpoint fsync_trace in
  let o_empty = Repair.fixpoint empty_tx_trace in
  Fmt.pr "@.seeded PMFS perf bugs (the repairer reproduces the upstream fixes):@.";
  Fmt.pr "  fsync redundant drain   %d fence(s) deleted (expect 2)@."
    o_fsync.Repair.deleted_fences;
  Fmt.pr "  empty-commit fence      %d fence(s) deleted (expect 1)@."
    o_empty.Repair.deleted_fences;
  match !json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"repair\",\n\
      \  \"models\": [\n\
       %s\n\
      \  ],\n\
      \  \"pmfs\": {\"fsync_fences_deleted\": %d, \"empty_tx_fences_deleted\": %d}\n\
       }\n"
      (String.concat ",\n" (List.rev !model_rows))
      o_fsync.Repair.deleted_fences o_empty.Repair.deleted_fences;
    close_out oc;
    Fmt.pr "@.JSON written to %s@." path

(* --- Litmus-suite throughput ------------------------------------------------------------- *)

let litmus_bench () =
  let module Litmus = Pmtest_litmus.Litmus in
  let module Suite = Pmtest_litmus.Suite in
  Fmt.pr "@.### litmus — axiomatic suite throughput (engine + oracle + crashtest per test)@.@.";
  Fmt.pr "(each test replays its program through three independent implementations and@.";
  Fmt.pr " cross-checks every allowed/forbidden state; the rate bounds how often the@.";
  Fmt.pr " whole-model validation gate can run)@.@.";
  let reps = 20 in
  Fmt.pr "%-8s %8s %10s %12s@." "model" "tests" "total(s)" "tests/s";
  let model_rows = ref [] and rates = ref [] in
  List.iter
    (fun model ->
      let tests = Suite.for_model model in
      let n = List.length tests in
      let t =
        time (fun () ->
            for _ = 1 to reps do
              List.iter
                (fun test ->
                  let o = Litmus.run_test test in
                  if not (Litmus.passed o) then
                    Fmt.epr "WARNING: litmus test %s failed during the bench@."
                      test.Litmus.name)
                tests
            done)
      in
      let rate = float_of_int (n * reps) /. t in
      let name = Model.kind_name model in
      rates := rate :: !rates;
      Fmt.pr "%-8s %8d %10.3f %12.0f@." name n t rate;
      tsv "litmus\t%s\t%d\ttests_per_s\t%.0f" name n rate;
      model_rows :=
        Printf.sprintf "    {\"model\": %S, \"tests\": %d, \"reps\": %d, \"tests_per_s\": %.1f}"
          name n reps rate
        :: !model_rows)
    Model.all_kinds;
  let geo = Stats.geomean (Array.of_list !rates) in
  Fmt.pr "@.geomean across models: %.0f tests/s@." geo;
  tsv "litmus\tgeomean\t-\ttests_per_s\t%.0f" geo;
  match !json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc
      "{\n\
      \  \"bench\": \"litmus\",\n\
      \  \"models\": [\n\
       %s\n\
      \  ],\n\
      \  \"geomean_tests_per_s\": %.1f\n\
       }\n"
      (String.concat ",\n" (List.rev !model_rows))
      geo;
    close_out oc;
    Fmt.pr "@.JSON written to %s@." path

(* --- Crash-state exploration throughput -------------------------------------------------- *)

let crashfs_bench () =
  let module Crashfs = Pmtest_crashfs.Crashfs in
  Fmt.pr "@.### crashfs — crash-state exploration throughput (lib/crashfs)@.@.";
  Fmt.pr "(each run drives a seeded syscall workload, enumerates the durable images at@.";
  Fmt.pr " every persist boundary and remounts each distinct one; the pruned ratio is@.";
  Fmt.pr " the fraction of candidate states the epoch/dedup bounding never remounts)@.@.";
  let count = max 20 (!kv_ops / 40) in
  Fmt.pr "%-6s %6s %8s %10s %10s %10s %12s %12s %8s@." "fs" "runs" "bounds" "images" "remounts"
    "total(s)" "images/s" "remounts/s" "pruned";
  let rows = ref [] in
  List.iter
    (fun fs ->
      let config = Crashfs.default_config fs in
      let c = ref None in
      let t = time (fun () -> c := Some (Crashfs.run_campaign config ~count ~seed:0 ())) in
      match !c with
      | None -> ()
      | Some c ->
        let s = c.Crashfs.total in
        let name = Crashfs.fs_kind_name fs in
        let ratio = Crashfs.pruned_ratio s in
        if c.Crashfs.findings <> [] then
          Fmt.epr "WARNING: %s reported %d finding(s) during the bench@." name
            (List.length c.Crashfs.findings);
        Fmt.pr "%-6s %6d %8d %10d %10d %10.3f %12.0f %12.0f %7.1f%%@." name c.Crashfs.runs
          s.Crashfs.boundaries s.Crashfs.images s.Crashfs.recoveries t
          (float_of_int s.Crashfs.images /. t)
          (float_of_int s.Crashfs.recoveries /. t)
          (100. *. ratio);
        tsv "crashfs\t%s\t%d\timages_per_s\t%.0f" name count
          (float_of_int s.Crashfs.images /. t);
        tsv "crashfs\t%s\t%d\tpruned_ratio\t%.3f" name count ratio;
        rows :=
          Printf.sprintf
            "    {\"fs\": %S, \"runs\": %d, \"ops\": %d, \"applied\": %d, \"boundaries\": %d, \
             \"explored\": %d, \"images\": %d, \"recoveries\": %d, \"avoided\": %.0f, \
             \"pruned_ratio\": %.4f, \"images_per_s\": %.0f, \"recoveries_per_s\": %.0f, \
             \"findings\": %d}"
            name c.Crashfs.runs s.Crashfs.ops s.Crashfs.applied s.Crashfs.boundaries
            s.Crashfs.explored s.Crashfs.images s.Crashfs.recoveries s.Crashfs.avoided ratio
            (float_of_int s.Crashfs.images /. t)
            (float_of_int s.Crashfs.recoveries /. t)
            (List.length c.Crashfs.findings)
          :: !rows)
    [ Crashfs.Pmfs; Crashfs.Nova ];
  Fmt.pr "@.(remounting dominates; every remount replays recovery plus the fsck@.";
  Fmt.pr " invariants, so the pruned ratio is the speedup the bounding buys)@.";
  match !json_path with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    Printf.fprintf oc "{\n  \"bench\": \"crashfs\",\n  \"fs\": [\n%s\n  ]\n}\n"
      (String.concat ",\n" (List.rev !rows));
    close_out oc;
    Fmt.pr "@.JSON written to %s@." path

(* --- Driver ----------------------------------------------------------------------------- *)

let all_targets =
  [
    ("table1", table1);
    ("fig10a", fig10a);
    ("fig10b", fig10b);
    ("fig11", fig11);
    ("fig12a", fig12 `A);
    ("fig12b", fig12 `B);
    ("fig12c", fig12 `C);
    ("table5", table5);
    ("table6", table6);
    ("yat", yat_bench);
    ("ablation", ablation);
    ("lint", lint_bench);
    ("fuzz", fuzz_bench);
    ("crashfs", crashfs_bench);
    ("litmus", litmus_bench);
    ("obs", obs_bench);
    ("perf", perf);
    ("repair", repair_bench);
    ("serve", serve_bench);
    ("farm", farm_bench);
    ("bechamel", bechamel);
  ]

let () =
  let targets = ref [] in
  let rec parse = function
    | [] -> ()
    | "--insertions" :: v :: rest ->
      insertions := int_of_string v;
      parse rest
    | "--ops" :: v :: rest ->
      kv_ops := int_of_string v;
      parse rest
    | "--runs" :: v :: rest ->
      runs := int_of_string v;
      parse rest
    | "--tsv" :: v :: rest ->
      tsv_path := Some v;
      parse rest
    | "--json" :: v :: rest ->
      json_path := Some v;
      parse rest
    | "--gate" :: rest ->
      gate := true;
      parse rest
    | "--shards" :: v :: rest ->
      bench_shards := int_of_string v;
      parse rest
    | "--full" :: rest ->
      insertions := 100_000;
      kv_ops := 100_000;
      parse rest
    | "all" :: rest -> parse rest
    | t :: rest when List.mem_assoc t all_targets ->
      targets := t :: !targets;
      parse rest
    | t :: _ ->
      Fmt.epr "unknown target %S; targets: %s all@." t
        (String.concat " " (List.map fst all_targets));
      exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let selected =
    match List.rev !targets with
    | [] -> all_targets
    | ts -> List.map (fun t -> (t, List.assoc t all_targets)) ts
  in
  Fmt.pr "PMTest benchmark harness — %d insertions, %d workload ops, best of %d runs@."
    !insertions !kv_ops !runs;
  List.iter (fun (_, f) -> f ()) selected;
  write_tsv ()
