(** Pairwise differential contracts between the checkers.

    Each pair is compared only where the tools' documented precision
    contracts overlap; everything else is reported as [Skip] with the
    reason, never silently dropped. The contracts:

    - {b engine/naive}: identical diagnostic (kind, loc) sequences on
      every trace — {!Pmtest_baseline.Naive_engine} is a semantic twin.
    - {b engine/lint}: the lint documents that [Duplicate_flush] and
      [Unnecessary_flush] reproduce the engine's performance
      diagnostics exactly (same models, same exclusion holes), so those
      counts must match; [Missing_log] counts must match when the trace
      has no exclusion holes and every transaction is inside a TX
      checker scope (the engine only checks logging inside a scope).
      Skipped when lint suppression controls are present.
    - {b engine/pmemcheck}: x86, in-bounds, no exclusions. The byte set
      pmemcheck holds not-yet-durable must equal the bytes of engine
      shadow ranges whose persist interval is still open; [Missing_log]
      (when TX-scoped) and [Duplicate_log] counts must match. Warning
      {e kinds} for writebacks are not compared — the tools classify
      redundant-vs-unnecessary differently by design.
    - {b engine/oracle}: on {!Gen.oracle_eligible} programs with
      exhaustive enumeration, every checker verdict must equal the
      {!Oracle} ground truth (isPersist/isOrderedBefore sound {e and}
      complete).
    - {b engine/crashtest}: not under eADR (the simulated device keeps
      stores volatile). Replaying the program as {!Pmtest_crashtest}
      steps, every durable image at the final crash point must contain
      the content of every range the engine claims persisted. Exclusion
      holes are covered: the engine's shadow now records writes across
      holes (exclusion gates diagnostics, not history), so no stale
      pre-exclusion claim can outlive the data it described — the
      regression corpus pins the shrunk reproducer of the staleness gap
      this contract once had to skip around.
    - {b engine/packed}: on every trace, checking the packed encoding
      with [Engine.check_packed] must produce a report identical to the
      boxed [Engine.check] — same diagnostic (kind, loc, message)
      sequence and same entry/op/checker counts. This pins the flat
      fast path (codec + cursor dispatch + page-indexed shadow) to the
      boxed reference semantics.
    - {b engine/serve}: on every trace and model, driving the program
      through a fresh session on a shared in-process [pmtestd] daemon
      (sections over the framed wire protocol, exclusion preambles as
      [Prelude] frames) must yield a report identical — diagnostics
      (kind, loc, message) and entry/op/checker counts — to an
      in-process packed session flushing at the same boundaries. This
      pins the whole service stack: wire codecs, per-session
      aggregation callbacks, prelude deduplication. The daemon is
      started lazily on a temp socket and drained at process exit.
    - {b engine/repair}: applies to {e every} program on every model —
      the only pair that never skips. [Repair.fixpoint] must converge
      and [Repair.verify_static] must prove the outcome (the repaired
      trace lints clean for the repairable rules, the plan over it is
      empty, no new engine Fail diagnostics, packed and boxed engines
      agree on it). When both the original and the repaired trace are
      additionally {!Gen.oracle_eligible} with exhaustive enumeration,
      the crash-state differential must also hold: the final volatile
      image is untouched, no reachable crash state is lost, a
      deletion-only repair leaves the reachable set exactly unchanged,
      and the repaired trace ends fully durable on an image that was
      already reachable at the original's final crash point. *)

open Pmtest_trace

type pair =
  | Engine_vs_naive
  | Engine_vs_lint
  | Engine_vs_pmemcheck
  | Engine_vs_oracle
  | Engine_vs_crashtest
  | Engine_vs_packed
  | Engine_vs_serve
  | Engine_vs_repair

type outcome =
  | Agree
  | Disagree of string  (** Human-readable mismatch description. *)
  | Skip of string  (** Why the contract does not apply to this program. *)

val all_pairs : pair list
val pair_name : pair -> string

val compare_pair : pair -> Gen.program -> outcome
(** Deterministic: depends only on the program. *)

val run : Gen.program -> (pair * outcome) list
(** Every pair in {!all_pairs} order. *)

val disagrees : pair -> Gen.program -> bool
(** [compare_pair] is [Disagree _] — the predicate handed to
    {!Shrink.minimize}, so a shrink step that makes the contract
    inapplicable ([Skip]) does not count as preserving the bug. *)

val tx_scoped : Event.t array -> bool
(** Every [Tx_begin] opens inside a TX checker scope — the precondition
    for comparing [Missing_log] across tools (the engine only enforces
    logging inside a scope). *)
