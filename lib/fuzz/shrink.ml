open Pmtest_model
open Pmtest_trace

(* Remove the half-open index range [lo, hi). *)
let without events lo hi =
  let n = Array.length events in
  Array.init (n - (hi - lo)) (fun i -> if i < lo then events.(i) else events.(i + (hi - lo)))

(* One ddmin pass: chunked removal at granularity [k] halving down to 1.
   Returns the (possibly) smaller array; [changed] reports progress. *)
let ddmin ~pred events =
  let events = ref events in
  let changed = ref false in
  let chunk = ref (max 1 (Array.length !events / 2)) in
  while !chunk >= 1 do
    let i = ref 0 in
    while !i < Array.length !events do
      let hi = min (Array.length !events) (!i + !chunk) in
      let candidate = without !events !i hi in
      if Array.length candidate < Array.length !events && pred candidate then begin
        events := candidate;
        changed := true
        (* keep [i]: the next chunk slid into place *)
      end
      else i := !i + !chunk
    done;
    chunk := if !chunk = 1 then 0 else !chunk / 2
  done;
  (!events, !changed)

let with_kind (e : Event.t) kind = { e with Event.kind }

(* Candidate simplifications of one event, most aggressive first. *)
let simplify_event (e : Event.t) =
  let range_variants addr size mk =
    List.filter_map
      (fun (a, s) -> if (a, s) <> (addr, size) then Some (with_kind e (mk a s)) else None)
      [
        (0, 8);
        (0, size);
        (addr, 8);
        (addr / Model.cache_line * Model.cache_line, size);
        (addr, max 1 (size / 2));
        (addr / 2, size);
      ]
  in
  let thread_variant = if e.Event.thread <> 0 then [ { e with Event.thread = 0 } ] else [] in
  let kind_variants =
    match e.Event.kind with
    | Event.Op (Model.Write { addr; size }) ->
      range_variants addr size (fun addr size -> Event.Op (Model.Write { addr; size }))
    | Event.Op (Model.Clwb { addr; size }) ->
      range_variants addr size (fun addr size -> Event.Op (Model.Clwb { addr; size }))
    | Event.Checker (Event.Is_persist { addr; size }) ->
      range_variants addr size (fun addr size -> Event.Checker (Event.Is_persist { addr; size }))
    | Event.Tx (Event.Tx_add { addr; size }) ->
      range_variants addr size (fun addr size -> Event.Tx (Event.Tx_add { addr; size }))
    | Event.Control (Event.Exclude { addr; size }) ->
      range_variants addr size (fun addr size -> Event.Control (Event.Exclude { addr; size }))
    | Event.Control (Event.Include { addr; size }) ->
      range_variants addr size (fun addr size -> Event.Control (Event.Include { addr; size }))
    | Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }) ->
      List.filter_map
        (fun (a_addr', a_size', b_addr', b_size') ->
          if (a_addr', a_size', b_addr', b_size') <> (a_addr, a_size, b_addr, b_size) then
            Some
              (with_kind e
                 (Event.Checker
                    (Event.Is_ordered_before
                       { a_addr = a_addr'; a_size = a_size'; b_addr = b_addr'; b_size = b_size' })))
          else None)
        [
          (a_addr, 8, b_addr, 8);
          (a_addr, max 1 (a_size / 2), b_addr, max 1 (b_size / 2));
        ]
    | _ -> []
  in
  thread_variant @ kind_variants

(* Strictly-decreasing measure so simplification cannot oscillate between
   variants (e.g. size 4 -> canonical 8 -> back). *)
let measure (e : Event.t) =
  let r =
    match e.Event.kind with
    | Event.Op (Model.Write { addr; size } | Model.Clwb { addr; size })
    | Event.Checker (Event.Is_persist { addr; size })
    | Event.Tx (Event.Tx_add { addr; size })
    | Event.Control (Event.Exclude { addr; size } | Event.Include { addr; size }) ->
      addr + size
    | Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }) ->
      a_addr + a_size + b_addr + b_size
    | _ -> 0
  in
  r + e.Event.thread

let simplify ~pred events =
  let events = ref events in
  let changed = ref false in
  let i = ref 0 in
  while !i < Array.length !events do
    let progressed = ref true in
    while !progressed do
      progressed := false;
      List.iter
        (fun variant ->
          if (not !progressed) && measure variant < measure !events.(!i) then begin
            let candidate = Array.copy !events in
            candidate.(!i) <- variant;
            if pred candidate then begin
              events := candidate;
              changed := true;
              progressed := true
            end
          end)
        (simplify_event !events.(!i))
    done;
    incr i
  done;
  (!events, !changed)

let minimize ?(max_rounds = 8) ~pred events =
  if not (pred events) then
    invalid_arg "Shrink.minimize: predicate does not hold on the input";
  let events = ref events in
  let round = ref 0 in
  let continue = ref true in
  while !continue && !round < max_rounds do
    incr round;
    let e1, c1 = ddmin ~pred !events in
    let e2, c2 = simplify ~pred e1 in
    events := e2;
    continue := c1 || c2
  done;
  !events
