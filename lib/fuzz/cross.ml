open Pmtest_util
open Pmtest_model
open Pmtest_trace
module Engine = Pmtest_core.Engine
module Report = Pmtest_core.Report
module Naive = Pmtest_baseline.Naive_engine
module Pmemcheck = Pmtest_baseline.Pmemcheck
module Lint = Pmtest_lint.Lint
module Repair = Pmtest_repair.Repair
module Crashtest = Pmtest_crashtest.Crashtest
module Machine = Pmtest_pmem.Machine
module Pmtest = Pmtest_core.Pmtest
module Server = Pmtest_server.Server
module Client = Pmtest_client.Client

type pair =
  | Engine_vs_naive
  | Engine_vs_lint
  | Engine_vs_pmemcheck
  | Engine_vs_oracle
  | Engine_vs_crashtest
  | Engine_vs_packed
  | Engine_vs_serve
  | Engine_vs_repair

type outcome = Agree | Disagree of string | Skip of string

let all_pairs =
  [
    Engine_vs_naive;
    Engine_vs_lint;
    Engine_vs_pmemcheck;
    Engine_vs_oracle;
    Engine_vs_crashtest;
    Engine_vs_packed;
    Engine_vs_serve;
    Engine_vs_repair;
  ]

let pair_name = function
  | Engine_vs_naive -> "engine/naive"
  | Engine_vs_lint -> "engine/lint"
  | Engine_vs_pmemcheck -> "engine/pmemcheck"
  | Engine_vs_oracle -> "engine/oracle"
  | Engine_vs_crashtest -> "engine/crashtest"
  | Engine_vs_packed -> "engine/packed"
  | Engine_vs_serve -> "engine/serve"
  | Engine_vs_repair -> "engine/repair"

(* The engine only enforces undo logging inside a TX checker scope;
   pmemcheck and the lint need no scope. Missing_log counts are only
   comparable when every transaction opens inside a scope. *)
let tx_scoped events =
  let scope = ref false and ok = ref true in
  Array.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Tx Event.Tx_checker_start -> scope := true
      | Event.Tx Event.Tx_checker_end -> scope := false
      | Event.Tx Event.Tx_begin -> if not !scope then ok := false
      | _ -> ())
    events;
  !ok

(* Pmemcheck silently ignores out-of-range operations; the engine does
   not. Only compare when every op stays inside the shadowed range. *)
let ops_in_bounds (p : Gen.program) =
  Array.for_all
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Op (Model.Write { addr; size } | Model.Clwb { addr; size })
      | Event.Tx (Event.Tx_add { addr; size }) ->
        addr >= 0 && size > 0 && addr + size <= p.Gen.pm_size
      | _ -> true)
    p.Gen.events

let count_diff label a b =
  if a = b then None else Some (Printf.sprintf "%s: engine %d vs %d" label a b)

let first_diff diffs = match List.filter_map Fun.id diffs with [] -> Agree | d :: _ -> Disagree d

let vs_naive (p : Gen.program) =
  let key r = List.map (fun d -> (d.Report.kind, d.Report.loc)) r.Report.diagnostics in
  let er = Engine.check ~model:p.Gen.model p.Gen.events in
  let nr = Naive.check ~model:p.Gen.model p.Gen.events in
  if key er = key nr then Agree
  else
    Disagree
      (Printf.sprintf "diagnostic sequences differ (engine %d diag(s), naive %d)"
         (List.length er.Report.diagnostics)
         (List.length nr.Report.diagnostics))

let vs_lint (p : Gen.program) =
  if Gen.has_lint_control p then Skip "lint suppression controls present"
  else begin
    let er = Engine.check ~model:p.Gen.model p.Gen.events in
    let lr = Lint.report_of (Lint.run ~model:p.Gen.model p.Gen.events) in
    let diffs =
      [
        count_diff "duplicate-writeback"
          (Report.count Report.Duplicate_writeback er)
          (Report.count Report.Duplicate_writeback lr);
        count_diff "unnecessary-writeback"
          (Report.count Report.Unnecessary_writeback er)
          (Report.count Report.Unnecessary_writeback lr);
      ]
      @
      if tx_scoped p.Gen.events && not (Gen.has_exclusion p) then
        [
          count_diff "missing-log"
            (Report.count Report.Missing_log er)
            (Report.count Report.Missing_log lr);
        ]
      else []
    in
    first_diff diffs
  end

(* Bytes the engine cannot yet guarantee durable, from the final shadow
   snapshot. *)
let engine_unpersisted (p : Gen.program) =
  let _, snap = Engine.check_with_snapshot ~model:p.Gen.model p.Gen.events in
  let set = Bytes.make p.Gen.pm_size '\000' in
  List.iter
    (fun (r : Engine.range_status) ->
      if not (Interval.ends_by r.Engine.persist snap.Engine.timestamp) then
        Bytes.fill set r.Engine.lo (r.Engine.hi - r.Engine.lo) '\001')
    snap.Engine.ranges;
  set

let vs_pmemcheck (p : Gen.program) =
  if p.Gen.model <> Model.X86 then Skip "pmemcheck models x86 only"
  else if Gen.has_exclusion p then Skip "pmemcheck has no exclusion scopes"
  else if not (ops_in_bounds p) then Skip "ops outside the shadowed range"
  else begin
    let pc = Pmemcheck.create ~size:p.Gen.pm_size in
    let sink = Pmemcheck.sink pc in
    Array.iter (fun (e : Event.t) -> sink.Sink.emit e.Event.kind e.Event.loc) p.Gen.events;
    let pc_set = Bytes.make p.Gen.pm_size '\000' in
    List.iter
      (fun (addr, size) -> Bytes.fill pc_set addr size '\001')
      (Pmemcheck.unpersisted_ranges pc);
    let en_set = engine_unpersisted p in
    let byte_diff =
      if Bytes.equal pc_set en_set then None
      else begin
        let i = ref 0 in
        while Bytes.get pc_set !i = Bytes.get en_set !i do
          incr i
        done;
        Some
          (Printf.sprintf "unpersisted byte sets differ first at 0x%x (engine %b, pmemcheck %b)"
             !i
             (Bytes.get en_set !i = '\001')
             (Bytes.get pc_set !i = '\001'))
      end
    in
    let er = Engine.check ~model:p.Gen.model p.Gen.events in
    let pr = Pmemcheck.result pc in
    let diffs =
      [ byte_diff ]
      @ (if tx_scoped p.Gen.events then
           [
             count_diff "missing-log"
               (Report.count Report.Missing_log er)
               (Report.count Report.Missing_log pr);
           ]
         else [])
      @ [
          count_diff "duplicate-log"
            (Report.count Report.Duplicate_log er)
            (Report.count Report.Duplicate_log pr);
        ]
    in
    first_diff diffs
  end

let checker_string = function
  | Event.Is_persist { addr; size } -> Printf.sprintf "isPersist(0x%x,%d)" addr size
  | Event.Is_ordered_before { a_addr; a_size; b_addr; b_size } ->
    Printf.sprintf "isOrderedBefore(0x%x,%d; 0x%x,%d)" a_addr a_size b_addr b_size

let vs_oracle (p : Gen.program) =
  match Oracle.evaluate p with
  | None -> Skip "not oracle-eligible (tx/control entries or unaligned ranges)"
  | Some { Oracle.exhaustive = false; _ } -> Skip "crash-state enumeration truncated"
  | Some { Oracle.points; _ } ->
    let report = Engine.check ~model:p.Gen.model p.Gen.events in
    let engine_holds idx =
      let loc = p.Gen.events.(idx).Event.loc in
      not
        (List.exists
           (fun (d : Report.diagnostic) ->
             (d.Report.kind = Report.Not_persisted || d.Report.kind = Report.Not_ordered)
             && Loc.equal d.Report.loc loc)
           report.Report.diagnostics)
    in
    let bad =
      List.find_opt (fun (pt : Oracle.point) -> engine_holds pt.Oracle.index <> pt.Oracle.holds) points
    in
    (match bad with
    | None -> Agree
    | Some pt ->
      Disagree
        (Printf.sprintf "%s at event %d: engine says %s, enumeration says %s"
           (checker_string pt.Oracle.checker)
           pt.Oracle.index
           (if pt.Oracle.holds then "FAIL" else "pass")
           (if pt.Oracle.holds then "holds" else "violated")))

let vs_crashtest (p : Gen.program) =
  if p.Gen.model = Model.Eadr then Skip "the simulated device does not model eADR"
  else if not (ops_in_bounds p) then Skip "ops outside the simulated device"
  else if Event.op_count p.Gen.events = 0 then Agree
  else begin
    let apply m (e : Event.t) ~payload =
      match e.Event.kind with
      | Event.Op (Model.Write { addr; size }) ->
        Machine.store m ~addr (Bytes.make size (payload ()))
      | Event.Op (Model.Clwb { addr; size }) -> Machine.clwb m ~addr ~size
      | Event.Op Model.Sfence -> Machine.sfence m
      | Event.Op Model.Ofence -> Machine.ofence m
      | Event.Op Model.Dfence -> Machine.dfence m
      (* The global persist barrier drains everything pending — the
         simulated device's dfence. *)
      | Event.Op Model.Gpf -> Machine.dfence m
      | _ -> ()
    in
    let payload_counter () =
      let k = ref 0 in
      fun () ->
        let v = Char.chr ((!k mod 250) + 1) in
        incr k;
        v
    in
    (* First replay: the final volatile content the durable claims are
       checked against. *)
    let probe = Machine.create ~size:p.Gen.pm_size () in
    let pay = payload_counter () in
    Array.iter (fun e -> apply probe e ~payload:(fun () -> pay ())) p.Gen.events;
    let final = Machine.volatile_image probe in
    let _, snap = Engine.check_with_snapshot ~model:p.Gen.model p.Gen.events in
    let claims =
      List.filter
        (fun (r : Engine.range_status) ->
          Interval.ends_by r.Engine.persist snap.Engine.timestamp)
        snap.Engine.ranges
    in
    let machine = Machine.create ~track_versions:true ~size:p.Gen.pm_size () in
    let pay = payload_counter () in
    let steps = Array.length p.Gen.events in
    let cur = ref (-1) in
    let step i =
      cur := i;
      apply machine p.Gen.events.(i) ~payload:(fun () -> pay ())
    in
    let recover img =
      (* Only the final crash point carries the engine's end-of-trace
         durability claims; earlier points assert nothing. *)
      if !cur <> steps - 1 then Ok ()
      else
        match
          List.find_opt
            (fun (r : Engine.range_status) ->
              not
                (String.equal
                   (Bytes.sub_string img r.Engine.lo (r.Engine.hi - r.Engine.lo))
                   (Bytes.sub_string final r.Engine.lo (r.Engine.hi - r.Engine.lo))))
            claims
        with
        | None -> Ok ()
        | Some r ->
          Error
            (Printf.sprintf
               "engine claims [0x%x,+%d) persisted but a reachable image disagrees" r.Engine.lo
               (r.Engine.hi - r.Engine.lo))
    in
    let verdict = Crashtest.run ~machine ~recover ~steps ~step () in
    match verdict.Crashtest.failures with
    | [] -> Agree
    | f :: _ -> Disagree f.Crashtest.message
  end

(* The packed cursor checker is a representation twin of the boxed
   engine: every trace applies, every report field must match. *)
let vs_packed (p : Gen.program) =
  let key r =
    ( List.map
        (fun (d : Report.diagnostic) -> (d.Report.kind, d.Report.loc, d.Report.message))
        r.Report.diagnostics,
      r.Report.entries,
      r.Report.ops,
      r.Report.checkers )
  in
  let er = Engine.check ~model:p.Gen.model p.Gen.events in
  let packed = Packed.of_events p.Gen.events in
  let pr = Engine.check_packed ~model:p.Gen.model packed in
  if key er = key pr then Agree
  else
    Disagree
      (Printf.sprintf "boxed and packed reports differ (boxed %d diag(s), packed %d)"
         (List.length er.Report.diagnostics)
         (List.length pr.Report.diagnostics))

(* One shared in-process daemon for the whole campaign, started on the
   first engine/serve comparison and drained at exit.  Each program gets
   a fresh session, so per-session state (model, exclusion preamble,
   aggregate) is exercised, while the worker pool is shared across
   thousands of programs the way a real daemon's would be. *)
let serve_daemon =
  lazy
    (let socket =
       Filename.concat (Filename.get_temp_dir_name ())
         (Printf.sprintf "pmtest-cross-%d.sock" (Unix.getpid ()))
     in
     let srv =
       Server.start
         {
           Server.default_config with
           socket;
           (* Two shards, one worker each: campaign sessions alternate
              shards, so the byte-identical-report contract is checked
              against the sharded admission path, not just shard 0. *)
           shards = 2;
           workers = 1;
           max_sessions = 64;
           idle_timeout = 60.0;
         }
     in
     at_exit (fun () -> Server.stop srv);
     srv)

(* Both sides of the serve contract drive the same session shape: events
   emitted in program order into per-thread builders, every thread's
   section flushed at fixed boundaries (in first-seen thread order, so
   the dispatch sequence is identical on both sides). *)
let serve_section_len = 16

let drive_session ~emit ~flush (p : Gen.program) =
  let threads = ref [] in
  Array.iteri
    (fun i (e : Event.t) ->
      if not (List.mem e.Event.thread !threads) then threads := !threads @ [ e.Event.thread ];
      emit e;
      if (i + 1) mod serve_section_len = 0 then List.iter flush !threads)
    p.Gen.events;
  List.iter flush !threads

let report_key r =
  ( List.map
      (fun (d : Report.diagnostic) -> (d.Report.kind, d.Report.loc, d.Report.message))
      r.Report.diagnostics,
    r.Report.entries,
    r.Report.ops,
    r.Report.checkers )

let vs_serve (p : Gen.program) =
  let local =
    let s = Pmtest.init ~model:p.Gen.model ~workers:0 ~packed:true () in
    drive_session p
      ~emit:(fun (e : Event.t) -> Pmtest.emit ~thread:e.Event.thread ~loc:e.Event.loc s e.Event.kind)
      ~flush:(fun thread -> Pmtest.send_trace ~thread s);
    Pmtest.finish s
  in
  let srv = Lazy.force serve_daemon in
  match Client.connect ~model:p.Gen.model ~socket:(Server.config srv).Server.socket () with
  | Error m -> Disagree ("cannot attach to daemon: " ^ m)
  | Ok conn -> (
    let s = Client.Session.make conn in
    drive_session p
      ~emit:(fun (e : Event.t) ->
        Client.Session.emit ~thread:e.Event.thread ~loc:e.Event.loc s e.Event.kind)
      ~flush:(fun thread -> Client.Session.send_trace ~thread s);
    let remote = Client.Session.finish s in
    Client.close conn;
    match remote with
    | Error m -> Disagree ("daemon session failed: " ^ m)
    | Ok remote ->
      if report_key local = report_key remote then Agree
      else
        Disagree
          (Printf.sprintf "in-process and served reports differ (local %d diag(s), served %d)"
             (List.length local.Report.diagnostics)
             (List.length remote.Report.diagnostics)))

(* The repair contract. The engine-side core applies to every program
   on every model: the fixpoint must converge, and [Repair.verify_static]
   must prove the outcome (clean re-lint, idempotent plan, no new engine
   Fail diagnostics, packed/boxed agreement). On top of that, whenever
   both the original and the repaired trace are oracle-eligible and
   crash-state enumeration is exhaustive, the repair must pass the
   crash-state differential:

   - the final volatile image is untouched (repairs never move stores);
   - no crash state reachable in the original is lost (deletions are
     machine no-ops, insertions only append);
   - a deletion-only repair leaves the reachable set exactly unchanged;
   - the repaired trace ends fully durable — the final crash-state set
     is the singleton volatile image — and that image was already
     reachable at the original's final crash point, so insertions only
     shrink the end-of-trace uncertainty, never invent a new image. *)
let image_subset a b = Hashtbl.fold (fun k () acc -> acc && Hashtbl.mem b k) a true

let vs_repair (p : Gen.program) =
  let o = Repair.fixpoint ~model:p.Gen.model p.Gen.events in
  if not o.Repair.converged then
    Disagree
      (Printf.sprintf "repair did not converge (%d lint passes, %d edits)" o.Repair.iterations
         (Repair.edits_applied o))
  else
    match Repair.verify_static ~model:p.Gen.model ~original:p.Gen.events o with
    | problem :: _ -> Disagree ("static proof: " ^ problem)
    | [] ->
      if Repair.edits_applied o = 0 then Agree
      else begin
        let rp = { p with Gen.events = o.Repair.repaired } in
        match (Oracle.explore p, Oracle.explore rp) with
        | None, _ | _, None ->
          (* Not oracle-eligible: the engine-side proof above is the
             whole contract. *)
          Agree
        | Some w0, Some w1 ->
          if not (w0.Oracle.exhaustive && w1.Oracle.exhaustive) then Agree
          else begin
            let deletions_only =
              o.Repair.inserted_flushes = 0 && o.Repair.inserted_fences = 0
              && o.Repair.inserted_logs = 0
            in
            let problems =
              List.filter_map Fun.id
                [
                  (if String.equal w0.Oracle.volatile w1.Oracle.volatile then None
                   else Some "repair changed the final volatile image");
                  (if image_subset w0.Oracle.images w1.Oracle.images then None
                   else Some "a crash state reachable in the original is lost after repair");
                  (if deletions_only && not (image_subset w1.Oracle.images w0.Oracle.images) then
                     Some "a deletion-only repair changed the reachable crash-state set"
                   else None);
                  (if
                     Hashtbl.length w1.Oracle.final = 1
                     && Hashtbl.mem w1.Oracle.final w1.Oracle.volatile
                   then None
                   else Some "repaired trace does not end fully durable");
                  (if Hashtbl.mem w0.Oracle.final w1.Oracle.volatile then None
                   else Some "final persisted image was not reachable in the original");
                ]
            in
            match problems with [] -> Agree | d :: _ -> Disagree ("oracle differential: " ^ d)
          end
      end

let compare_pair pair p =
  match pair with
  | Engine_vs_naive -> vs_naive p
  | Engine_vs_lint -> vs_lint p
  | Engine_vs_pmemcheck -> vs_pmemcheck p
  | Engine_vs_oracle -> vs_oracle p
  | Engine_vs_crashtest -> vs_crashtest p
  | Engine_vs_packed -> vs_packed p
  | Engine_vs_serve -> vs_serve p
  | Engine_vs_repair -> vs_repair p

let run p = List.map (fun pair -> (pair, compare_pair pair p)) all_pairs

let disagrees pair p = match compare_pair pair p with Disagree _ -> true | _ -> false
