(** Counterexample shrinking: delta-debugging over the event list, then
    greedy per-event field simplification.

    [pred events] must return [true] while the interesting behaviour (a
    cross-checker disagreement, a still-caught seeded bug) is present.
    The input must satisfy [pred]; the result does, and is 1-minimal
    with respect to removing single events. *)

open Pmtest_trace

val minimize :
  ?max_rounds:int -> pred:(Event.t array -> bool) -> Event.t array -> Event.t array
(** ddmin: try removing chunks of decreasing size, restarting whenever a
    removal keeps [pred] true; then, for every event, try simplifying
    addresses toward [0], sizes toward [8], threads toward [0] — again
    keeping only changes that preserve [pred]. [max_rounds] (default 8)
    bounds full restarts of the whole process. *)
