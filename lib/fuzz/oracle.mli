(** Ground truth for checker verdicts by crash-state enumeration.

    For {!Gen.oracle_eligible} programs (straight-line, line-aligned
    writes) this module replays the ops with a distinguishable payload
    per write and enumerates every durable image the persistency model
    admits, then decides each embedded checker exactly:

    - [isPersist addr size] at position [i] holds iff {e every} image
      reachable by crashing at position [i] matches the volatile content
      of the range;
    - [isOrderedBefore A B] at position [i] is violated iff {e some}
      image reachable at {e any} crash point up to [i] contains B's
      last-written value while A's last-written value is absent. If
      either range was never written the assertion holds vacuously,
      matching the engine's vacuous pass.

    Enumeration strategy per model:
    - {b x86}: the version-tracked {!Pmtest_pmem.Machine} enumerator
      (independent per-line choice among store snapshots);
    - {b HOPS}: a custom epoch-aware enumerator — {!Machine} ignores
      [ofence] for crash purposes, which would make it unsound as a HOPS
      ordering oracle. Writes drained by a [dfence] are durable; of the
      still-pending epochs, one epoch [m] is in flight (everything
      before [m] durable, everything after absent, per-line prefixes of
      epoch-[m] writes chosen independently);
    - {b eADR}: a store is durable when it executes, so the reachable
      images are exactly the volatile snapshots after each op. *)

open Pmtest_trace

type point = {
  index : int;  (** Position of the checker in [program.events]. *)
  checker : Event.checker;
  holds : bool;  (** Ground-truth verdict. *)
}

type t = {
  points : point list;  (** In trace order. *)
  exhaustive : bool;
      (** [false] if enumeration was truncated at [limit] anywhere;
          verdicts are then best-effort and differential contracts
          should skip the program. *)
}

val evaluate : ?limit:int -> Gen.program -> t option
(** [None] if the program is not {!Gen.oracle_eligible}. [limit]
    (default 100_000) bounds images per crash point. *)

(** {1 Model simulations}

    The per-model crash-state simulations {!evaluate} is built from,
    exposed so harnesses (the litmus runner, the broken-model tests) can
    drive them directly or substitute a deliberately wrong one. A [sim]
    is stateful — build a fresh one per replay. *)

type sim = {
  write : addr:int -> char -> unit;
  op : Pmtest_model.Model.op -> unit;
  enum_now : (Bytes.t -> unit) -> bool;
      (** Enumerate every durable image reachable by crashing right now;
          returns [false] if truncated at the construction-time limit. *)
  volatile : unit -> Bytes.t;
}

val sim_for : limit:int -> Gen.program -> sim
(** A fresh simulation of [p.model] sized for [p]. *)

val run : sim -> Gen.program -> t
(** Replay the program through [sim] and decide its embedded checkers.
    The caller is responsible for [Gen.oracle_eligible]-shaped input. *)

type world = {
  images : (string, unit) Hashtbl.t;
      (** Every durable image reachable by crashing at any point. *)
  final : (string, unit) Hashtbl.t;
      (** The images reachable by crashing after the last event. *)
  volatile : string;  (** The volatile view at the end of the trace. *)
  exhaustive : bool;  (** As in {!t}: [false] if truncated at [limit]. *)
}
(** The raw crash-state sets of a program, for differential comparison
    of a trace against its repair (see [Cross.Engine_vs_repair]). *)

val explore : ?limit:int -> Gen.program -> world option
(** [None] if the program is not {!Gen.oracle_eligible}. Replays the
    ops exactly as {!evaluate} does (same write payload sequence, so a
    trace and its repair — which never touches the stores — see
    identical values) but ignores embedded checkers and returns the
    crash-state sets themselves. *)

val explore_with : sim -> Gen.program -> world
(** {!explore} through a caller-supplied (fresh) simulation. *)
