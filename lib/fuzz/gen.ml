open Pmtest_util
open Pmtest_model
open Pmtest_trace

type program = { model : Model.kind; pm_size : int; events : Event.t array }

type cfg = {
  model : Model.kind;
  lines : int;
  min_ops : int;
  max_ops : int;
  tx : bool;
  exclusions : bool;
  threads : int;
  checker_freq : int;
}

let write_size = 8

let default_cfg model =
  {
    model;
    lines = 8;
    min_ops = 4;
    max_ops = 40;
    tx = true;
    exclusions = true;
    threads = 2;
    checker_freq = 6;
  }

let oracle_cfg model =
  {
    model;
    lines = 4;
    min_ops = 1;
    max_ops = 14;
    tx = false;
    exclusions = false;
    threads = 1;
    checker_freq = 0;
  }

(* Builder shared by both generators: every event gets a unique location
   fuzz:<index> so diagnostics from different tools can be keyed back to
   the event that raised them. *)
type builder = {
  cfg : cfg;
  rng : Rng.t;
  events : Event.t Vec.t;
  (* Ranges written so far, newest first; checker operands come from here
     so assertions are about data the program actually touched. *)
  mutable written : (int * int) list;
}

let emit b ?(thread = 0) kind =
  let loc = Loc.make ~file:"fuzz" ~line:(Vec.length b.events) in
  Vec.push b.events (Event.make ~thread ~loc kind)

let pm_size cfg = cfg.lines * Model.cache_line

(* A random in-bounds byte range, biased toward small, line-local writes
   but occasionally straddling a line boundary. *)
let random_range b =
  let size_limit = pm_size b.cfg in
  let size = 1 + Rng.int b.rng (if Rng.int b.rng 8 = 0 then 2 * Model.cache_line else 16) in
  let size = min size size_limit in
  let addr = Rng.int b.rng (size_limit - size + 1) in
  (addr, size)

let random_thread b = if b.cfg.threads <= 1 then 0 else Rng.int b.rng b.cfg.threads

let fence_op b =
  match b.cfg.model with
  | Model.X86 | Model.Eadr -> Model.Sfence
  | Model.Hops -> if Rng.bool b.rng then Model.Ofence else Model.Dfence
  | Model.Cxl -> Model.Gpf

let written_range b =
  match b.written with
  | [] -> None
  | ranges ->
    let arr = Array.of_list ranges in
    (* Bias toward recent writes: half the time take one of the last 3. *)
    let n = Array.length arr in
    let i = if Rng.bool b.rng then Rng.int b.rng (min 3 n) else Rng.int b.rng n in
    Some arr.(i)

let emit_checker b =
  match written_range b with
  | None -> ()
  | Some (addr, size) ->
    if Rng.bool b.rng then emit b ~thread:(random_thread b) (Event.Checker (Event.Is_persist { addr; size }))
    else (
      match written_range b with
      | None -> ()
      | Some (b_addr, b_size) ->
        emit b ~thread:(random_thread b)
          (Event.Checker
             (Event.Is_ordered_before { a_addr = addr; a_size = size; b_addr; b_size })))

let emit_op b op = emit b ~thread:(random_thread b) (Event.Op op)

(* A flat transaction block, always wrapped in a checker scope so the
   engine's Missing_log detection (which requires an active TX checker
   scope) matches pmemcheck's. *)
let emit_tx b =
  let thread = random_thread b in
  emit b ~thread (Event.Tx Event.Tx_checker_start);
  emit b ~thread (Event.Tx Event.Tx_begin);
  let body = 1 + Rng.int b.rng 5 in
  for _ = 1 to body do
    let addr, size = random_range b in
    (* Usually log before writing; sometimes skip the log (a seeded
       Missing_log), sometimes double-log (Duplicate_log). *)
    let roll = Rng.int b.rng 6 in
    if roll > 0 then emit b ~thread (Event.Tx (Event.Tx_add { addr; size }));
    if roll = 5 then emit b ~thread (Event.Tx (Event.Tx_add { addr; size }));
    emit b ~thread (Event.Op (Model.Write { addr; size }));
    b.written <- (addr, size) :: b.written
  done;
  emit b ~thread (Event.Tx (if Rng.int b.rng 8 = 0 then Event.Tx_abort else Event.Tx_commit));
  emit b ~thread (Event.Tx Event.Tx_checker_end)

let generate cfg rng =
  let b = { cfg; rng; events = Vec.create (); written = [] } in
  let span = cfg.max_ops - cfg.min_ops + 1 in
  let target = cfg.min_ops + Rng.int rng (max 1 span) in
  let ops = ref 0 in
  let since_checker = ref 0 in
  while !ops < target do
    let roll = Rng.int rng 100 in
    if roll < 40 then begin
      let addr, size = random_range b in
      emit_op b (Model.Write { addr; size });
      b.written <- (addr, size) :: b.written;
      incr ops
    end
    else if roll < 60 then begin
      (match cfg.model with
      | Model.X86 | Model.Eadr ->
        let addr, size =
          match written_range b with Some r when Rng.bool rng -> r | _ -> random_range b
        in
        emit_op b (Model.Clwb { addr; size })
      | Model.Hops | Model.Cxl -> emit_op b (fence_op b));
      incr ops
    end
    else if roll < 75 then begin
      emit_op b (fence_op b);
      incr ops
    end
    else if roll < 85 && cfg.tx then begin
      emit_tx b;
      incr ops
    end
    else if roll < 92 && cfg.exclusions then begin
      let addr, size = random_range b in
      emit b ~thread:(random_thread b) (Event.Control (Event.Exclude { addr; size }));
      (* Re-include the same range later about half the time. *)
      if Rng.bool rng then begin
        let addr2, size2 = random_range b in
        emit_op b (Model.Write { addr = addr2; size = size2 });
        b.written <- (addr2, size2) :: b.written;
        incr ops
      end;
      if Rng.bool rng then
        emit b ~thread:(random_thread b) (Event.Control (Event.Include { addr; size }))
    end
    else begin
      emit_checker b;
      incr ops
    end;
    incr since_checker;
    if cfg.checker_freq > 0 && !since_checker >= cfg.checker_freq then begin
      since_checker := 0;
      emit_checker b
    end
  done;
  (* End quiescently often enough that "no diagnostics" programs exist:
     flush-and-fence everything half the time. *)
  if Rng.bool rng then begin
    (match cfg.model with
    | Model.X86 | Model.Eadr ->
      List.iter (fun (addr, size) -> emit_op b (Model.Clwb { addr; size })) b.written;
      emit_op b Model.Sfence
    | Model.Hops -> emit_op b Model.Dfence
    | Model.Cxl -> emit_op b Model.Gpf)
  end;
  { model = cfg.model; pm_size = pm_size cfg; events = Vec.to_array b.events }

let oracle_program ?(with_checkers = false) cfg rng =
  let b = { cfg; rng; events = Vec.create (); written = [] } in
  let span = cfg.max_ops - cfg.min_ops + 1 in
  let target = cfg.min_ops + Rng.int rng (max 1 span) in
  let line_addr () = Rng.int rng cfg.lines * Model.cache_line in
  let written_lines = Hashtbl.create 8 in
  for _ = 1 to target do
    let roll = Rng.int rng 10 in
    (match cfg.model with
    | Model.X86 ->
      if roll < 5 then begin
        let addr = line_addr () in
        emit_op b (Model.Write { addr; size = write_size });
        Hashtbl.replace written_lines addr ()
      end
      else if roll < 8 then emit_op b (Model.Clwb { addr = line_addr (); size = write_size })
      else emit_op b Model.Sfence
    | Model.Hops ->
      if roll < 6 then begin
        let addr = line_addr () in
        emit_op b (Model.Write { addr; size = write_size });
        Hashtbl.replace written_lines addr ()
      end
      else if roll < 9 then emit_op b Model.Ofence
      else emit_op b Model.Dfence
    | Model.Eadr ->
      if roll < 6 then begin
        let addr = line_addr () in
        emit_op b (Model.Write { addr; size = write_size });
        Hashtbl.replace written_lines addr ()
      end
      else if roll < 8 then emit_op b (Model.Clwb { addr = line_addr (); size = write_size })
      else emit_op b Model.Sfence
    | Model.Cxl ->
      if roll < 6 then begin
        let addr = line_addr () in
        emit_op b (Model.Write { addr; size = write_size });
        Hashtbl.replace written_lines addr ()
      end
      else emit_op b Model.Gpf);
    if with_checkers && Hashtbl.length written_lines > 0 && Rng.int rng 4 = 0 then begin
      let lines = Array.of_seq (Hashtbl.to_seq_keys written_lines) in
      Array.sort compare lines;
      let a = Rng.pick rng lines in
      if Rng.bool rng || Array.length lines < 2 then
        emit b (Event.Checker (Event.Is_persist { addr = a; size = write_size }))
      else begin
        (* Ordering assertions only over distinct cache lines: same-line
           ordering is prefix-coherent in the crash-state model but the
           engine's interval comparison treats it as unordered, a
           documented precision gap, not a bug. *)
        let choices = Array.of_list (List.filter (fun x -> x <> a) (Array.to_list lines)) in
        let bl = Rng.pick rng choices in
        emit b
          (Event.Checker
             (Event.Is_ordered_before
                { a_addr = a; a_size = write_size; b_addr = bl; b_size = write_size }))
      end
    end
  done;
  { model = cfg.model; pm_size = pm_size cfg; events = Vec.to_array b.events }

let aligned_write addr size = size = write_size && addr mod Model.cache_line = 0

let oracle_eligible (p : program) =
  Array.for_all
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Op (Model.Write { addr; size } | Model.Clwb { addr; size }) ->
        aligned_write addr size
      | Event.Op (Model.Sfence | Model.Ofence | Model.Dfence | Model.Gpf) -> true
      | Event.Checker (Event.Is_persist { addr; size }) -> aligned_write addr size
      | Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }) ->
        aligned_write a_addr a_size && aligned_write b_addr b_size
        && Model.line_of_addr a_addr <> Model.line_of_addr b_addr
      | Event.Tx _ | Event.Control _ -> false)
    p.events

let has_control (p : program) =
  Array.exists (fun (e : Event.t) -> match e.Event.kind with Event.Control _ -> true | _ -> false) p.events

let has_exclusion (p : program) =
  Array.exists
    (fun (e : Event.t) ->
      match e.Event.kind with Event.Control (Event.Exclude _ | Event.Include _) -> true | _ -> false)
    p.events

let has_lint_control (p : program) =
  Array.exists
    (fun (e : Event.t) ->
      match e.Event.kind with Event.Control (Event.Lint_off _ | Event.Lint_on _) -> true | _ -> false)
    p.events

let has_tx (p : program) =
  Array.exists (fun (e : Event.t) -> match e.Event.kind with Event.Tx _ -> true | _ -> false) p.events

let pp_event ppf (e : Event.t) =
  match e.Event.kind with
  | Event.Op (Model.Write { addr; size }) -> Format.fprintf ppf "w0x%x+%d" addr size
  | Event.Op (Model.Clwb { addr; size }) -> Format.fprintf ppf "f0x%x+%d" addr size
  | Event.Op Model.Sfence -> Format.pp_print_string ppf "s"
  | Event.Op Model.Ofence -> Format.pp_print_string ppf "o"
  | Event.Op Model.Dfence -> Format.pp_print_string ppf "d"
  | Event.Op Model.Gpf -> Format.pp_print_string ppf "g"
  | Event.Checker (Event.Is_persist { addr; size }) -> Format.fprintf ppf "cp0x%x+%d" addr size
  | Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }) ->
    Format.fprintf ppf "co0x%x+%d<0x%x+%d" a_addr a_size b_addr b_size
  | Event.Tx Event.Tx_begin -> Format.pp_print_string ppf "tb"
  | Event.Tx Event.Tx_commit -> Format.pp_print_string ppf "tc"
  | Event.Tx Event.Tx_abort -> Format.pp_print_string ppf "ta"
  | Event.Tx (Event.Tx_add { addr; size }) -> Format.fprintf ppf "tA0x%x+%d" addr size
  | Event.Tx Event.Tx_checker_start -> Format.pp_print_string ppf "ts"
  | Event.Tx Event.Tx_checker_end -> Format.pp_print_string ppf "te"
  | Event.Control (Event.Exclude { addr; size }) -> Format.fprintf ppf "xe0x%x+%d" addr size
  | Event.Control (Event.Include { addr; size }) -> Format.fprintf ppf "xi0x%x+%d" addr size
  | Event.Control (Event.Lint_off { rule }) -> Format.fprintf ppf "lo(%s)" rule
  | Event.Control (Event.Lint_on { rule }) -> Format.fprintf ppf "li(%s)" rule

let pp_program ppf (p : program) =
  Format.fprintf ppf "%s[%d]:" (Model.kind_name p.model) p.pm_size;
  Array.iteri
    (fun i e ->
      if i > 0 then Format.pp_print_char ppf ';';
      (match (e : Event.t).Event.thread with 0 -> () | t -> Format.fprintf ppf "t%d:" t);
      pp_event ppf e)
    p.events

let program_to_string p = Format.asprintf "%a" pp_program p
