(** Fuzzing campaigns: generate, cross-check, shrink, report.

    A campaign is fully determined by its configuration: program [i]
    is generated from seed [cfg.seed + i], so a finding's printed seed
    plus the model is a complete reproducer ({!program_for_seed}). *)

open Pmtest_model
open Pmtest_trace

type cfg = {
  model : Model.kind;
  count : int;  (** Programs to generate. *)
  seed : int;  (** Base seed; program [i] uses [seed + i]. *)
  gen : Gen.cfg;  (** Full-program generator configuration. *)
  oracle_share : int;
      (** One in this many programs is straight-line oracle-shaped (with
          embedded checkers) so the engine/oracle contract gets dense
          coverage; [0] disables oracle-shaped programs. *)
  shrink : bool;  (** Minimize disagreeing programs (default on). *)
}

val default_cfg : Model.kind -> cfg
(** [count = 1000], [seed = 0], default generator, every 3rd program
    oracle-shaped, shrinking on. *)

type finding = {
  found_seed : int;  (** Pass to {!program_for_seed} to regenerate. *)
  pair : Cross.pair;
  detail : string;
  program : Gen.program;
  shrunk : Event.t array;
}

type stats = {
  programs : int;
  events : int;  (** Total trace entries generated. *)
  applied : (Cross.pair * int) list;
  skipped : (Cross.pair * int) list;
  findings : finding list;
  gen_seconds : float;
  pair_seconds : (Cross.pair * float) list;
}

val program_for_seed : cfg -> int -> Gen.program
(** The program a campaign over [cfg] derives from this absolute seed. *)

val run : ?obs:Pmtest_obs.Obs.t -> ?on_program:(int -> unit) -> cfg -> stats
(** [on_program] is called with each index before it is processed
    (progress reporting). [obs] (default disabled) profiles campaign
    throughput: each program is recorded as one section — generation
    feeds the trace counters, the cross-check pass brackets the check
    span — so [pmtest-cli fuzz --profile] can report programs/s and
    check-latency distribution. *)

val run_range :
  ?obs:Pmtest_obs.Obs.t -> ?on_program:(int -> unit) -> cfg -> lo:int -> hi:int -> stats
(** One campaign chunk: programs for absolute seeds [\[lo, hi)],
    ignoring [cfg.seed]/[cfg.count]. Chunks of one campaign compose:
    running [\[lo, mid)] and [\[mid, hi)] examines exactly the programs
    of [\[lo, hi)]. Raises [Invalid_argument] when [hi < lo]. *)

val digest : stats -> string
(** Hex digest over everything result equality is judged on — counts,
    per-pair outcomes, findings with their shrunk traces — excluding
    wall-clock fields, so re-running the same chunk yields the same
    digest. The farm coordinator compares digests across attempts of
    one job to flag nondeterminism. *)

val pp_stats : Format.formatter -> stats -> unit
