(** Random annotated PM programs for differential fuzzing.

    Two program shapes are produced:

    - {e full} programs ({!generate}): weighted mixes of writes,
      writebacks and fences valid under the requested persistency model,
      flat transactions wrapped in checker scopes, exclusion holes,
      [isPersist]/[isOrderedBefore] checker placements and multi-thread
      interleavings — arbitrary addresses and sizes. These feed the
      checker-vs-checker contracts whose ground truth is another tool.
    - {e oracle} programs ({!oracle_program}): straight-line op streams
      over a handful of cache lines, every write line-aligned with a
      fixed size, so each write can be replayed with a distinguishable
      payload and validated against exhaustive crash-state enumeration
      (the Yat model). The oracle property tests reuse these.

    Generation is driven by the repo's deterministic {!Pmtest_util.Rng}:
    the same seed always yields the same program, which is what makes a
    printed failing seed a complete reproducer. *)

open Pmtest_util
open Pmtest_model
open Pmtest_trace

type program = {
  model : Model.kind;
  pm_size : int;  (** Every range in [events] fits in [\[0, pm_size)]. *)
  events : Event.t array;
}

type cfg = {
  model : Model.kind;
  lines : int;  (** Cache lines of simulated PM in play. *)
  min_ops : int;
  max_ops : int;
  tx : bool;  (** Allow flat transaction blocks (wrapped in TX checkers). *)
  exclusions : bool;  (** Allow [Exclude]/[Include] holes. *)
  threads : int;  (** Entries carry thread ids in [\[0, threads)]. *)
  checker_freq : int;  (** Roughly one checker per this many ops; [0] = none. *)
}

val default_cfg : Model.kind -> cfg
(** 8 lines, 4–40 ops, transactions and exclusions on, 2 threads, a
    checker every ~6 ops. *)

val oracle_cfg : Model.kind -> cfg
(** 4 lines, 1–14 ops, straight-line (no tx, no exclusions, 1 thread). *)

val generate : cfg -> Rng.t -> program
(** A full random program. Invariants: every op is valid under
    [cfg.model]; every range lies inside [\[0, pm_size)]; transactions
    are balanced and never nested; [TX_ADD] only appears inside a
    transaction; every event carries a unique location [fuzz:<index>]. *)

val oracle_program : ?with_checkers:bool -> cfg -> Rng.t -> program
(** A straight-line, line-aligned program: writes of {!write_size} bytes
    at line starts, writebacks (x86), fences. With [with_checkers]
    (default [false]), [isPersist] / [isOrderedBefore] checkers over
    whole previously written lines are interspersed. *)

val write_size : int
(** Byte size of every oracle-program write (8). *)

val oracle_eligible : program -> bool
(** Whether the program is in the shape {!Oracle.evaluate} supports:
    no transaction or control entries, and every write/writeback
    line-aligned of {!write_size} bytes. Shrunk oracle programs stay
    eligible, so eligibility is recomputed from the events, not stored. *)

(** {1 Introspection used by contract gating and printing} *)

val has_control : program -> bool
val has_exclusion : program -> bool
val has_lint_control : program -> bool
val has_tx : program -> bool

val pp_program : Format.formatter -> program -> unit
(** Compact one-line rendering ([w0x40+8;f0x40+8;s;cp0x40+8;…]) for
    QCheck counterexample printing and campaign logs. *)

val program_to_string : program -> string
