open Pmtest_util
open Pmtest_model
open Pmtest_trace

type cfg = {
  model : Model.kind;
  count : int;
  seed : int;
  gen : Gen.cfg;
  oracle_share : int;
  shrink : bool;
}

let default_cfg model =
  {
    model;
    count = 1000;
    seed = 0;
    gen = Gen.default_cfg model;
    oracle_share = 3;
    shrink = true;
  }

type finding = {
  found_seed : int;
  pair : Cross.pair;
  detail : string;
  program : Gen.program;
  shrunk : Event.t array;
}

type stats = {
  programs : int;
  events : int;
  applied : (Cross.pair * int) list;
  skipped : (Cross.pair * int) list;
  findings : finding list;
  gen_seconds : float;
  pair_seconds : (Cross.pair * float) list;
}

let program_for_seed cfg s =
  let rng = Rng.create s in
  if cfg.oracle_share > 0 && Rng.int rng cfg.oracle_share = 0 then
    Gen.oracle_program ~with_checkers:true (Gen.oracle_cfg cfg.model) rng
  else Gen.generate { cfg.gen with Gen.model = cfg.model } rng

let run ?(obs = Pmtest_obs.Obs.disabled) ?(on_program = fun _ -> ()) cfg =
  let module Obs = Pmtest_obs.Obs in
  let n_pairs = List.length Cross.all_pairs in
  let applied = Array.make n_pairs 0 in
  let skipped = Array.make n_pairs 0 in
  let pair_time = Array.make n_pairs 0.0 in
  let findings = ref [] in
  let events = ref 0 in
  let gen_seconds = ref 0.0 in
  for i = 0 to cfg.count - 1 do
    on_program i;
    let s = cfg.seed + i in
    let t0 = Sys.time () in
    let program = program_for_seed cfg s in
    gen_seconds := !gen_seconds +. (Sys.time () -. t0);
    events := !events + Array.length program.Gen.events;
    (* Each program plays the role of one section: generation is the
       trace, the cross-check pass is the engine check. *)
    if Obs.enabled obs then begin
      let entries = Array.length program.Gen.events in
      Obs.events_traced_add obs entries;
      Obs.section_sent obs ~seq:i ~entries;
      Obs.queue_depth obs 1;
      Obs.check_started obs ~seq:i ~worker:0
    end;
    List.iteri
      (fun pi pair ->
        let t0 = Sys.time () in
        let outcome = Cross.compare_pair pair program in
        pair_time.(pi) <- pair_time.(pi) +. (Sys.time () -. t0);
        match outcome with
        | Cross.Agree -> applied.(pi) <- applied.(pi) + 1
        | Cross.Skip _ -> skipped.(pi) <- skipped.(pi) + 1
        | Cross.Disagree detail ->
          applied.(pi) <- applied.(pi) + 1;
          let shrunk =
            if not cfg.shrink then program.Gen.events
            else
              Shrink.minimize
                ~pred:(fun evs -> Cross.disagrees pair { program with Gen.events = evs })
                program.Gen.events
          in
          findings := { found_seed = s; pair; detail; program; shrunk } :: !findings)
      Cross.all_pairs;
    if Obs.enabled obs then begin
      Obs.check_finished obs ~seq:i;
      Obs.section_merged obs ~seq:i
    end
  done;
  let assoc arr = List.mapi (fun pi pair -> (pair, arr.(pi))) Cross.all_pairs in
  {
    programs = cfg.count;
    events = !events;
    applied = assoc applied;
    skipped = assoc skipped;
    findings = List.rev !findings;
    gen_seconds = !gen_seconds;
    pair_seconds = List.mapi (fun pi pair -> (pair, pair_time.(pi))) Cross.all_pairs;
  }

let run_range ?obs ?on_program cfg ~lo ~hi =
  if hi < lo then invalid_arg "Campaign.run_range: inverted seed range";
  run ?obs ?on_program { cfg with seed = lo; count = hi - lo }

(* Everything result equality is judged on, and nothing that depends on
   the wall clock: the farm coordinator compares these digests across
   job attempts to detect nondeterminism, so [gen_seconds] and
   [pair_seconds] are deliberately excluded. *)
let digest s =
  let buf = Buffer.create 512 in
  Printf.bprintf buf "programs %d\nevents %d\n" s.programs s.events;
  List.iter
    (fun (pair, n) ->
      Printf.bprintf buf "applied %s %d %d\n" (Cross.pair_name pair) n (List.assoc pair s.skipped))
    s.applied;
  List.iter
    (fun f ->
      Printf.bprintf buf "finding %d %s %s\n" f.found_seed (Cross.pair_name f.pair) f.detail;
      Array.iter
        (fun e ->
          Buffer.add_string buf (Serial.entry_to_line e);
          Buffer.add_char buf '\n')
        f.shrunk)
    s.findings;
  Digest.to_hex (Digest.string (Buffer.contents buf))

let pp_stats ppf s =
  Format.fprintf ppf "@[<v>%d program(s), %d trace entries" s.programs s.events;
  List.iter
    (fun (pair, n) ->
      let sk = List.assoc pair s.skipped in
      let t = List.assoc pair s.pair_seconds in
      Format.fprintf ppf "@,  %-18s applied %6d  skipped %6d  %8.3fs" (Cross.pair_name pair) n
        sk t)
    s.applied;
  Format.fprintf ppf "@,generation: %.3fs" s.gen_seconds;
  if s.findings = [] then Format.fprintf ppf "@,no disagreements@]"
  else begin
    Format.fprintf ppf "@,%d DISAGREEMENT(S):" (List.length s.findings);
    List.iter
      (fun f ->
        Format.fprintf ppf "@,  seed %d pair %s: %s (shrunk to %d event(s))" f.found_seed
          (Cross.pair_name f.pair) f.detail (Array.length f.shrunk))
      s.findings;
    Format.fprintf ppf "@]"
  end
