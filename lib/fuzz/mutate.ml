open Pmtest_model
open Pmtest_trace
module Report = Pmtest_core.Report
module Case = Pmtest_bugdb.Case
module Catalog = Pmtest_bugdb.Catalog

type kind = Drop_clwb | Drop_fence | Swap_fence | Widen_write | Drop_tx_add
type claim = { tool : Repro.tool; diag : Report.kind }

type seeded = {
  case_id : string;
  mutation : kind;
  at : int;
  program : Gen.program;
  claims : claim list;
}

type outcome = { seeded : seeded; missed : claim list; shrunk : Event.t array }

let kind_name = function
  | Drop_clwb -> "drop-clwb"
  | Drop_fence -> "drop-fence"
  | Swap_fence -> "swap-fence"
  | Widen_write -> "widen-write"
  | Drop_tx_add -> "drop-tx-add"

let all_kinds = [ Drop_clwb; Drop_fence; Swap_fence; Widen_write; Drop_tx_add ]

let overlaps (a, asz) (b, bsz) = a < b + bsz && b < a + asz

(* The operators only reason about x86 traces. Most additionally demand
   no control entries at all — exclusion holes change which tool sees
   which byte and would turn filter misses into noise; [Drop_tx_add]
   merely requires that no hole can touch the write it exposes. *)
let x86_ops events =
  Array.for_all
    (fun (e : Event.t) ->
      match e.Event.kind with Event.Op op -> Model.valid_op Model.X86 op | _ -> true)
    events

let control_free events =
  Array.for_all
    (fun (e : Event.t) ->
      match e.Event.kind with Event.Control _ -> false | _ -> true)
    events

let control_range (e : Event.t) =
  match e.Event.kind with
  | Event.Control (Event.Exclude { addr; size } | Event.Include { addr; size }) ->
    Some (addr, size)
  | _ -> None

let lint_control_free events =
  Array.for_all
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Control (Event.Lint_off _ | Event.Lint_on _) -> false
      | _ -> true)
    events

let pm_size_of events =
  let hi =
    Array.fold_left
      (fun acc (e : Event.t) ->
        match e.Event.kind with
        | Event.Op (Model.Write { addr; size } | Model.Clwb { addr; size })
        | Event.Tx (Event.Tx_add { addr; size })
        | Event.Checker (Event.Is_persist { addr; size }) ->
          max acc (addr + size)
        | Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }) ->
          max acc (max (a_addr + a_size) (b_addr + b_size))
        | _ -> acc)
      1 events
  in
  (hi + Model.cache_line - 1) / Model.cache_line * Model.cache_line

let remove_at events i =
  let n = Array.length events in
  Array.init (n - 1) (fun k -> if k < i then events.(k) else events.(k + 1))

let clwb_range (e : Event.t) =
  match e.Event.kind with Event.Op (Model.Clwb { addr; size }) -> Some (addr, size) | _ -> None

let write_range (e : Event.t) =
  match e.Event.kind with Event.Op (Model.Write { addr; size }) -> Some (addr, size) | _ -> None

let add_range (e : Event.t) =
  match e.Event.kind with Event.Tx (Event.Tx_add { addr; size }) -> Some (addr, size) | _ -> None

let is_drain_fence (e : Event.t) =
  match e.Event.kind with Event.Op (Model.Sfence | Model.Dfence) -> true | _ -> false

(* [any events lo hi f]: does f hold for some index in [lo, hi)? *)
let any events lo hi f =
  let hi = min hi (Array.length events) in
  let rec go i = i < hi && (f i events.(i) || go (i + 1)) in
  go (max lo 0)

let persist_checker_after events k0 ~hits =
  any events k0 (Array.length events) (fun _ (e : Event.t) ->
      match e.Event.kind with
      | Event.Checker (Event.Is_persist { addr; size }) -> hits (addr, size)
      | _ -> false)

let intersect (a, asz) (b, bsz) =
  let lo = max a b and hi = min (a + asz) (b + bsz) in
  if lo < hi then Some (lo, hi - lo) else None

let engine_np = { tool = Repro.Engine; diag = Report.Not_persisted }
let pmemcheck_np = { tool = Repro.Pmemcheck; diag = Report.Not_persisted }
let lint_unflushed = { tool = Repro.Lint; diag = Report.Lint_unflushed_write }
let lint_unfenced = { tool = Repro.Lint; diag = Report.Lint_unfenced_flush }
let missing_log tool = { tool; diag = Report.Missing_log }

(* Drop a clwb that is the only writeback overlapping its range, when a
   prior store dirtied the range and no later store rewrites it — the
   un-flushed status then survives to the end of the trace. *)
let drop_clwb events =
  let n = Array.length events in
  let rec find i =
    if i >= n then None
    else
      match clwb_range events.(i) with
      | None -> find (i + 1)
      | Some r ->
        let sole_flush =
          not
            (any events 0 n (fun j e ->
                 j <> i && match clwb_range e with Some r' -> overlaps r r' | None -> false))
        in
        let prior_write j e =
          ignore j;
          match write_range e with Some w -> overlaps w r | None -> false
        in
        let dirtied = any events 0 i prior_write in
        let rewritten = any events (i + 1) n prior_write in
        if sole_flush && dirtied && not rewritten then begin
          (* The engine only sees the bug through a checker: claim it
             when a later isPersist covers still-dirty bytes. *)
          let dirty_bytes c =
            any events 0 i (fun _ e ->
                match write_range e with
                | Some w -> (
                  match intersect w r with Some wr -> overlaps wr c | None -> false)
                | None -> false)
          in
          let claims =
            [ pmemcheck_np; lint_unflushed ]
            @ if persist_checker_after events (i + 1) ~hits:dirty_bytes then [ engine_np ] else []
          in
          Some (i, remove_at events i, claims)
        end
        else find (i + 1)
  in
  find 0

(* A clwb at [j] whose fence never comes once the trace's last drain
   fence is removed. [j] must be the first flush after the last store
   that dirtied its range (otherwise both tools attribute the flush to
   an earlier, already-fenced writeback), with no drain fence between
   store and flush or after the flush, and no later store resetting the
   range. *)
let unfenced_flush_claims events ~fence_idx =
  let n = Array.length events in
  let overlapping_write r _ e =
    match write_range e with Some w -> overlaps w r | None -> false
  in
  let rec find j =
    if j >= fence_idx then None
    else
      match clwb_range events.(j) with
      | None -> find (j + 1)
      | Some r ->
        let fence_after = any events (j + 1) fence_idx (fun _ e -> is_drain_fence e) in
        let last_write =
          let rec back k =
            if k < 0 then None else if overlapping_write r k events.(k) then Some k else back (k - 1)
          in
          back (j - 1)
        in
        let ok =
          (not fence_after)
          && (match last_write with
             | None -> false
             | Some jw ->
               (not (any events (jw + 1) j (fun _ e -> is_drain_fence e)))
               && not
                    (any events (jw + 1) j (fun _ e ->
                         match clwb_range e with Some r' -> overlaps r r' | None -> false)))
          && not (any events (j + 1) n (overlapping_write r))
        in
        if ok then Some [ pmemcheck_np; lint_unfenced ] else find (j + 1)
  in
  find 0

let drop_fence events =
  let n = Array.length events in
  let rec last_fence i = if i < 0 then None else if is_drain_fence events.(i) then Some i else last_fence (i - 1) in
  match last_fence (n - 1) with
  | None -> None
  | Some i -> (
    match unfenced_flush_claims events ~fence_idx:i with
    | Some claims -> Some (i, remove_at events i, claims)
    | None -> None)

(* Swap an adjacent [clwb; fence] pair when the fence is the trace's
   last and the clwb is the first flush after the last store that
   dirtied its range: after the swap the flush has no fence left to
   complete it, so the store's durability silently evaporates. *)
let swap_fence events =
  let n = Array.length events in
  let overlapping_write r _ e =
    match write_range e with Some w -> overlaps w r | None -> false
  in
  let rec find i =
    if i + 1 >= n then None
    else
      match clwb_range events.(i) with
      | Some r
        when is_drain_fence events.(i + 1)
             && not (any events (i + 2) n (fun _ e -> is_drain_fence e)) -> (
        let last_write =
          let rec back k =
            if k < 0 then None
            else if overlapping_write r k events.(k) then Some k
            else back (k - 1)
          in
          back (i - 1)
        in
        match last_write with
        | Some jw
          when (not
                  (any events (jw + 1) i (fun _ e ->
                       match clwb_range e with Some r' -> overlaps r r' | None -> false)))
               && not (any events (i + 2) n (overlapping_write r)) ->
          let w = match write_range events.(jw) with Some w -> w | None -> assert false in
          let dirty = match intersect w r with Some d -> d | None -> assert false in
          let mutant = Array.copy events in
          mutant.(i) <- events.(i + 1);
          mutant.(i + 1) <- events.(i);
          let claims =
            [ pmemcheck_np; lint_unfenced ]
            @
            if persist_checker_after events (i + 2) ~hits:(overlaps dirty) then [ engine_np ]
            else []
          in
          Some (i, mutant, claims)
        | _ -> find (i + 1))
      | _ -> find (i + 1)
  in
  find 0

(* Track transaction depth at each index so widening stays outside
   transactions (no Missing_log side effects) and tx_add dropping stays
   inside the right block. *)
let tx_depths events =
  let depth = ref 0 in
  Array.map
    (fun (e : Event.t) ->
      let d = !depth in
      (match e.Event.kind with
      | Event.Tx Event.Tx_begin -> incr depth
      | Event.Tx (Event.Tx_commit | Event.Tx_abort) -> depth := max 0 (!depth - 1)
      | _ -> ());
      d)
    events

let widen_write events =
  let n = Array.length events in
  let depths = tx_depths events in
  let ext_of (addr, size) = (addr + size, Model.cache_line) in
  let touches ext (e : Event.t) =
    match e.Event.kind with
    | Event.Op (Model.Write { addr; size } | Model.Clwb { addr; size })
    | Event.Tx (Event.Tx_add { addr; size })
    | Event.Checker (Event.Is_persist { addr; size }) ->
      overlaps ext (addr, size)
    | Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }) ->
      overlaps ext (a_addr, a_size) || overlaps ext (b_addr, b_size)
    | _ -> false
  in
  let rec find i =
    if i >= n then None
    else
      match write_range events.(i) with
      | Some (addr, size) when depths.(i) = 0 ->
        let ext = ext_of (addr, size) in
        if not (any events 0 n (fun _ e -> touches ext e)) then begin
          let mutant = Array.copy events in
          mutant.(i) <-
            {
              (events.(i)) with
              Event.kind = Event.Op (Model.Write { addr; size = size + Model.cache_line });
            };
          Some (i, mutant, [ pmemcheck_np; lint_unflushed ])
        end
        else find (i + 1)
      | _ -> find (i + 1)
  in
  find 0

(* Every tool scopes undo-log coverage to the enclosing top-level
   transaction (the engine resets its log tree at a depth-0 [Tx_begin],
   pmemcheck clears its logged bytes when depth returns to 0, the lint
   resets at a top-level begin), so the no-other-backup condition only
   has to hold within that block, not across the whole trace. *)
let drop_tx_add events =
  let n = Array.length events in
  let depths = tx_depths events in
  let rec find i =
    if i >= n then None
    else
      match add_range events.(i) with
      | Some r when depths.(i) >= 1 ->
        (* [depths.(k)] is the depth before event [k]: the enclosing
           top-level block spans from the last depth-0 index (its
           [Tx_begin]) to the first depth-0 index after [i] (just past
           its closing commit). *)
        let bstart =
          let rec back k = if k <= 0 then 0 else if depths.(k) = 0 then k else back (k - 1) in
          back i
        in
        let bend =
          let rec go j = if j >= n then n else if depths.(j) = 0 then j else go (j + 1) in
          go (i + 1)
        in
        let protected_write =
          let rec go j =
            if j >= bend then None
            else
              match write_range events.(j) with
              | Some w when overlaps w r -> Some w
              | _ -> go (j + 1)
          in
          go (i + 1)
        in
        (match protected_write with
        | Some w
          when (not
                  (any events bstart bend (fun j e ->
                       j <> i
                       && match add_range e with Some r' -> overlaps w r' | None -> false)))
               (* No exclusion hole may ever touch the exposed write: the
                  engine and the lint carve holes out of the store before
                  checking coverage. *)
               && not
                    (any events 0 n (fun _ e ->
                         match control_range e with Some c -> overlaps c w | None -> false))
          ->
          let claims =
            [ missing_log Repro.Pmemcheck ]
            @ (if lint_control_free events then [ missing_log Repro.Lint ] else [])
            @ if Cross.tx_scoped events then [ missing_log Repro.Engine ] else []
          in
          Some (i, remove_at events i, claims)
        | _ -> find (i + 1))
      | _ -> find (i + 1)
  in
  find 0

let candidate mutation events =
  match mutation with
  | Drop_clwb -> drop_clwb events
  | Drop_fence -> drop_fence events
  | Swap_fence -> swap_fence events
  | Widen_write -> widen_write events
  | Drop_tx_add -> drop_tx_add events

let flags (p : Gen.program) cl = Report.count cl.diag (Repro.tool_report cl.tool p) > 0

let seed_case (c : Case.t) =
  let events = Case.trace_clean c in
  if not (x86_ops events) then []
  else begin
    let clean = { Gen.model = Model.X86; pm_size = pm_size_of events; events } in
    List.filter_map
      (fun mutation ->
        let applicable =
          match mutation with Drop_tx_add -> true | _ -> control_free events
        in
        match (if applicable then candidate mutation events else None) with
        | None -> None
        | Some (at, mutant, claims) ->
          (* Only claim diagnostics the clean twin does not already
             raise: the mutation must be what introduces the finding. *)
          let claims = List.filter (fun cl -> not (flags clean cl)) claims in
          if claims = [] then None
          else
            Some
              {
                case_id = c.Case.id;
                mutation;
                at;
                program = { Gen.model = Model.X86; pm_size = pm_size_of mutant; events = mutant };
                claims;
              })
      all_kinds
  end

let seed_catalog ?(cases = Catalog.all) () = List.concat_map seed_case cases

let check ?(shrink = true) s =
  let missed = List.filter (fun cl -> not (flags s.program cl)) s.claims in
  let shrunk =
    if missed <> [] || not shrink then s.program.Gen.events
    else begin
      let pred evs =
        let p = { s.program with Gen.events = evs } in
        List.for_all (flags p) s.claims
      in
      Shrink.minimize ~pred s.program.Gen.events
    end
  in
  { seeded = s; missed; shrunk }
