(** Reproducers and the on-disk regression corpus.

    Every shrunk counterexample is emitted in two forms: the
    {!Pmtest_trace.Serial} trace (replayable by [pmtest-cli check-trace]
    and by the corpus loader here) and a generated OCaml snippet that
    reconstructs the trace with [Event.make] and runs the engine — ready
    to paste into a unit test.

    A corpus case is a [.pmt] serial file whose leading comment block
    carries the metadata:

    {v
    # pmtest-fuzz-case v1
    # name: hops-ofence-ordering
    # model: hops
    # pm_size: 256
    # check: agree engine/oracle
    # check: flag lint missing-log
    v}

    [check: agree <pair>] asserts the pair's contract applies and agrees
    on replay — a [Skip] is an error, so a stale case that stopped
    exercising its contract fails loudly instead of rotting.
    [check: flag <tool> <kind>] asserts the tool still reports at least
    one diagnostic of the given {!Pmtest_core.Report.kind_string}. *)

module Report := Pmtest_core.Report

type tool = Engine | Naive | Lint | Pmemcheck

type check =
  | Agree of Cross.pair
  | Flag of { tool : tool; kind : Report.kind }

type case = { name : string; program : Gen.program; checks : check list }

val tool_name : tool -> string
val tool_of_name : string -> tool option
val pair_of_name : string -> Cross.pair option
val kind_of_name : string -> Report.kind option

val serial_text : Gen.program -> string
(** The {!Pmtest_trace.Serial} lines, no metadata header. *)

val ocaml_snippet : Gen.program -> string
(** A standalone OCaml fragment rebuilding the trace and running
    [Engine.check] under the program's model. *)

val tool_report : tool -> Gen.program -> Report.t

val case_text : case -> string
(** The full [.pmt] file text — metadata comment block plus serial
    lines — exactly as {!save} writes it. This is what farm workers ship
    inside [Job_result] frames. *)

val case_digest : case -> string
(** Hex digest of the case's identity: its event array and the model
    those events are judged under. The name (which embeds a
    campaign-specific seed) does not contribute, so the same bug found
    by different campaigns dedupes. *)

val save : dir:string -> case -> string
(** Write [dir/<name>.pmt] (creating [dir] if needed); returns the
    path. If a case with the same {!case_digest} already exists in
    [dir], nothing is written and the existing path is returned. *)

val load_file : string -> (case, string) result
val load_dir : string -> (case list, string) result
(** Every [*.pmt] in [dir], sorted by file name; missing directory is an
    empty corpus. *)

val replay : case -> (unit, string) result
(** Run every check; [Error] describes the first failing one. *)
