open Pmtest_model
open Pmtest_trace
module Machine = Pmtest_pmem.Machine

type point = { index : int; checker : Event.checker; holds : bool }
type t = { points : point list; exhaustive : bool }

let range_eq img vol addr size =
  let rec go k =
    k >= size || (Bytes.get img (addr + k) = Bytes.get vol (addr + k) && go (k + 1))
  in
  go 0

(* A model simulation the generic driver below steps through. [enum_now]
   enumerates every durable image reachable by crashing at this instant
   and returns [false] if it gave up at the limit. *)
type sim = {
  write : addr:int -> char -> unit;
  op : Model.op -> unit;
  enum_now : (Bytes.t -> unit) -> bool;
  volatile : unit -> Bytes.t;
}

let x86_sim ~limit ~size =
  let m = Machine.create ~track_versions:true ~size () in
  {
    write = (fun ~addr v -> Machine.store m ~addr (Bytes.make Gen.write_size v));
    op =
      (function
      | Model.Clwb { addr; size } -> Machine.clwb m ~addr ~size
      | Model.Sfence -> Machine.sfence m
      | Model.Ofence -> Machine.ofence m
      | Model.Dfence -> Machine.dfence m
      | Model.Gpf -> ()
      | Model.Write _ -> assert false);
    enum_now = (fun f -> Machine.iter_crash_states ~limit m f);
    volatile = (fun () -> Machine.volatile_image m);
  }

(* CXL: a store is globally visible at once, but durability is deferred —
   every per-line version written since the last global persist barrier
   may or may not have reached the device when a crash hits, each line
   independently. That unordered space is exactly what the
   version-tracking machine's crash-state enumerator walks, with [gpf]
   as a persist-everything drain. *)
let cxl_sim ~limit ~size =
  let m = Machine.create ~track_versions:true ~size () in
  {
    write = (fun ~addr v -> Machine.store m ~addr (Bytes.make Gen.write_size v));
    op =
      (function
      | Model.Gpf -> Machine.dfence m
      | Model.Clwb _ | Model.Sfence | Model.Ofence | Model.Dfence ->
        (* Not part of the CXL ISA; a model-valid program never reaches
           here, and the engine flags such an op without epoch effects. *)
        ()
      | Model.Write _ -> assert false);
    enum_now = (fun f -> Machine.iter_crash_states ~limit m f);
    volatile = (fun () -> Machine.volatile_image m);
  }

(* eADR: caches are in the persistence domain, so the only image reachable
   by crashing now is the volatile view itself. *)
let eadr_sim ~size =
  let vol = Bytes.make size '\000' in
  {
    write = (fun ~addr v -> Bytes.fill vol addr Gen.write_size v);
    op = (fun _ -> ());
    enum_now =
      (fun f ->
        f (Bytes.copy vol);
        true);
    volatile = (fun () -> Bytes.copy vol);
  }

(* HOPS: Machine.ofence only advances the epoch counter — its crash-state
   enumerator does not honour epoch ordering, so we keep our own model.
   State: [baseline] holds everything drained by a dfence; [pending] maps
   each written line-start address to its undrained writes as
   (epoch, value), newest first. A crash admits exactly the images where
   one pending epoch [m] is in flight: epochs below [m] fully durable,
   epochs above absent, and each line independently keeps any prefix of
   its epoch-[m] writes (full-line writes, so a prefix is one value). *)
let hops_sim ~limit ~size =
  let volatile = Bytes.make size '\000' in
  let baseline = Bytes.make size '\000' in
  let pending : (int, (int * char) list) Hashtbl.t = Hashtbl.create 8 in
  let epoch = ref 0 in
  let enum_now f =
    let groups = Hashtbl.fold (fun addr ws acc -> (addr, ws) :: acc) pending [] in
    let epochs =
      List.sort_uniq compare (List.concat_map (fun (_, ws) -> List.map fst ws) groups)
    in
    if epochs = [] then begin
      f (Bytes.copy baseline);
      true
    end
    else begin
      let count = ref 0 in
      let emit img =
        incr count;
        if !count > limit then raise Exit;
        f img
      in
      try
        List.iter
          (fun m ->
            let base = Bytes.copy baseline in
            List.iter
              (fun (addr, ws) ->
                match List.find_opt (fun (e, _) -> e < m) ws with
                | Some (_, v) -> Bytes.fill base addr Gen.write_size v
                | None -> ())
              groups;
            let in_flight =
              List.filter_map
                (fun (addr, ws) ->
                  match List.filter (fun (e, _) -> e = m) ws with
                  | [] -> None
                  | l -> Some (addr, List.map snd l))
                groups
            in
            let rec product lines img =
              match lines with
              | [] -> emit img
              | (addr, vals) :: rest ->
                product rest img;
                List.iter
                  (fun v ->
                    let img' = Bytes.copy img in
                    Bytes.fill img' addr Gen.write_size v;
                    product rest img')
                  vals
            in
            product in_flight base)
          epochs;
        true
      with Exit -> false
    end
  in
  {
    write =
      (fun ~addr v ->
        Bytes.fill volatile addr Gen.write_size v;
        let ws = Option.value ~default:[] (Hashtbl.find_opt pending addr) in
        Hashtbl.replace pending addr ((!epoch, v) :: ws));
    op =
      (function
      | Model.Ofence -> incr epoch
      | Model.Dfence ->
        Bytes.blit volatile 0 baseline 0 size;
        Hashtbl.reset pending;
        incr epoch
      | Model.Clwb _ | Model.Sfence | Model.Gpf -> ()
      | Model.Write _ -> assert false);
    enum_now;
    volatile = (fun () -> Bytes.copy volatile);
  }

let run sim (p : Gen.program) =
  let exhaustive = ref true in
  (* Every image reachable at any crash point so far, deduplicated. *)
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let note () =
    if not (sim.enum_now (fun img -> Hashtbl.replace seen (Bytes.to_string img) ())) then
      exhaustive := false
  in
  note ();
  let written = Hashtbl.create 8 in
  let next_write = ref 0 in
  let points = ref [] in
  Array.iteri
    (fun i (e : Event.t) ->
      match e.Event.kind with
      | Event.Op (Model.Write { addr; size = _ }) ->
        let v = Char.chr ((!next_write mod 250) + 1) in
        incr next_write;
        sim.write ~addr v;
        Hashtbl.replace written addr ();
        note ()
      | Event.Op op ->
        sim.op op;
        note ()
      | Event.Checker c ->
        let vol = sim.volatile () in
        let holds =
          match c with
          | Event.Is_persist { addr; size } ->
            let ok = ref true in
            if
              not
                (sim.enum_now (fun img ->
                     if not (range_eq img vol addr size) then ok := false))
            then exhaustive := false;
            !ok
          | Event.Is_ordered_before { a_addr; a_size; b_addr; b_size } ->
            if not (Hashtbl.mem written a_addr && Hashtbl.mem written b_addr) then true
            else begin
              let bad = ref false in
              Hashtbl.iter
                (fun img_s () ->
                  let img = Bytes.of_string img_s in
                  if range_eq img vol b_addr b_size && not (range_eq img vol a_addr a_size)
                  then bad := true)
                seen;
              not !bad
            end
        in
        points := { index = i; checker = c; holds } :: !points
      | Event.Tx _ | Event.Control _ -> ())
    p.Gen.events;
  { points = List.rev !points; exhaustive = !exhaustive }

let sim_for ~limit (p : Gen.program) =
  match p.Gen.model with
  | Model.X86 -> x86_sim ~limit ~size:p.Gen.pm_size
  | Model.Hops -> hops_sim ~limit ~size:p.Gen.pm_size
  | Model.Eadr -> eadr_sim ~size:p.Gen.pm_size
  | Model.Cxl -> cxl_sim ~limit ~size:p.Gen.pm_size

let evaluate ?(limit = 100_000) (p : Gen.program) =
  if not (Gen.oracle_eligible p) then None else Some (run (sim_for ~limit p) p)

type world = {
  images : (string, unit) Hashtbl.t;
  final : (string, unit) Hashtbl.t;
  volatile : string;
  exhaustive : bool;
}

(* [run] without the checkers: the raw crash-state sets the repair
   differential compares. Write payloads are assigned by the same
   counter as [run], so two traces with identical store sequences (a
   trace and its repair) see identical values. *)
let explore_with sim (p : Gen.program) =
  begin
    let exhaustive = ref true in
    let images : (string, unit) Hashtbl.t = Hashtbl.create 256 in
    let note () =
      if not (sim.enum_now (fun img -> Hashtbl.replace images (Bytes.to_string img) ())) then
        exhaustive := false
    in
    note ();
    let next_write = ref 0 in
    Array.iter
      (fun (e : Event.t) ->
        match e.Event.kind with
        | Event.Op (Model.Write { addr; size = _ }) ->
          let v = Char.chr ((!next_write mod 250) + 1) in
          incr next_write;
          sim.write ~addr v;
          note ()
        | Event.Op op ->
          sim.op op;
          note ()
        | Event.Checker _ | Event.Tx _ | Event.Control _ -> ())
      p.Gen.events;
    let final : (string, unit) Hashtbl.t = Hashtbl.create 64 in
    if not (sim.enum_now (fun img -> Hashtbl.replace final (Bytes.to_string img) ())) then
      exhaustive := false;
    { images; final; volatile = Bytes.to_string (sim.volatile ()); exhaustive = !exhaustive }
  end

let explore ?(limit = 100_000) (p : Gen.program) =
  if not (Gen.oracle_eligible p) then None else Some (explore_with (sim_for ~limit p) p)
