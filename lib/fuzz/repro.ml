open Pmtest_model
open Pmtest_trace
module Report = Pmtest_core.Report
module Engine = Pmtest_core.Engine
module Naive_engine = Pmtest_baseline.Naive_engine
module Pmemcheck = Pmtest_baseline.Pmemcheck
module Lint = Pmtest_lint.Lint

type tool = Engine | Naive | Lint | Pmemcheck
type check = Agree of Cross.pair | Flag of { tool : tool; kind : Report.kind }
type case = { name : string; program : Gen.program; checks : check list }

let tool_name = function
  | Engine -> "engine"
  | Naive -> "naive"
  | Lint -> "lint"
  | Pmemcheck -> "pmemcheck"

let tool_of_name = function
  | "engine" -> Some Engine
  | "naive" -> Some Naive
  | "lint" -> Some Lint
  | "pmemcheck" -> Some Pmemcheck
  | _ -> None

let pair_of_name name = List.find_opt (fun p -> Cross.pair_name p = name) Cross.all_pairs

let all_kinds =
  [
    Report.Not_persisted;
    Report.Not_ordered;
    Report.Unnecessary_writeback;
    Report.Duplicate_writeback;
    Report.Missing_log;
    Report.Duplicate_log;
    Report.Incomplete_tx;
    Report.Invalid_op;
    Report.Lint_unflushed_write;
    Report.Lint_unfenced_flush;
    Report.Lint_redundant_fence;
    Report.Lint_write_after_flush;
    Report.Lint_unmatched_exclude;
  ]

let kind_of_name name = List.find_opt (fun k -> Report.kind_string k = name) all_kinds

let serial_text (p : Gen.program) =
  let buf = Buffer.create 256 in
  Array.iter
    (fun e ->
      Buffer.add_string buf (Serial.entry_to_line e);
      Buffer.add_char buf '\n')
    p.Gen.events;
  Buffer.contents buf

let snippet_kind buf (e : Event.t) =
  let p fmt = Printf.bprintf buf fmt in
  (match e.Event.kind with
  | Event.Op (Model.Write { addr; size }) ->
    p "Event.Op (Model.Write { addr = 0x%x; size = %d })" addr size
  | Event.Op (Model.Clwb { addr; size }) ->
    p "Event.Op (Model.Clwb { addr = 0x%x; size = %d })" addr size
  | Event.Op Model.Sfence -> p "Event.Op Model.Sfence"
  | Event.Op Model.Ofence -> p "Event.Op Model.Ofence"
  | Event.Op Model.Dfence -> p "Event.Op Model.Dfence"
  | Event.Op Model.Gpf -> p "Event.Op Model.Gpf"
  | Event.Checker (Event.Is_persist { addr; size }) ->
    p "Event.Checker (Event.Is_persist { addr = 0x%x; size = %d })" addr size
  | Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }) ->
    p
      "Event.Checker (Event.Is_ordered_before { a_addr = 0x%x; a_size = %d; b_addr = 0x%x; \
       b_size = %d })"
      a_addr a_size b_addr b_size
  | Event.Tx Event.Tx_begin -> p "Event.Tx Event.Tx_begin"
  | Event.Tx Event.Tx_commit -> p "Event.Tx Event.Tx_commit"
  | Event.Tx Event.Tx_abort -> p "Event.Tx Event.Tx_abort"
  | Event.Tx (Event.Tx_add { addr; size }) ->
    p "Event.Tx (Event.Tx_add { addr = 0x%x; size = %d })" addr size
  | Event.Tx Event.Tx_checker_start -> p "Event.Tx Event.Tx_checker_start"
  | Event.Tx Event.Tx_checker_end -> p "Event.Tx Event.Tx_checker_end"
  | Event.Control (Event.Exclude { addr; size }) ->
    p "Event.Control (Event.Exclude { addr = 0x%x; size = %d })" addr size
  | Event.Control (Event.Include { addr; size }) ->
    p "Event.Control (Event.Include { addr = 0x%x; size = %d })" addr size
  | Event.Control (Event.Lint_off { rule }) ->
    p "Event.Control (Event.Lint_off { rule = %S })" rule
  | Event.Control (Event.Lint_on { rule }) ->
    p "Event.Control (Event.Lint_on { rule = %S })" rule);
  if e.Event.thread <> 0 then p " (* thread %d *)" e.Event.thread

let model_constructor = function
  | Model.X86 -> "Model.X86"
  | Model.Hops -> "Model.Hops"
  | Model.Eadr -> "Model.Eadr"
  | Model.Cxl -> "Model.Cxl"

let ocaml_snippet (p : Gen.program) =
  let buf = Buffer.create 1024 in
  Printf.bprintf buf "let trace =\n  [|\n";
  Array.iter
    (fun e ->
      Buffer.add_string buf "    Event.make (";
      snippet_kind buf e;
      Buffer.add_string buf ");\n")
    p.Gen.events;
  Printf.bprintf buf "  |]\n\nlet report = Engine.check ~model:%s trace\n"
    (model_constructor p.Gen.model);
  Buffer.contents buf

let tool_report tool (p : Gen.program) =
  match tool with
  | Engine -> Engine.check ~model:p.Gen.model p.Gen.events
  | Naive -> Naive_engine.check ~model:p.Gen.model p.Gen.events
  | Lint -> Lint.report_of (Lint.run ~model:p.Gen.model p.Gen.events)
  | Pmemcheck ->
    let pc = Pmemcheck.create ~size:p.Gen.pm_size in
    let sink = Pmemcheck.sink pc in
    Array.iter (fun (e : Event.t) -> sink.Sink.emit e.Event.kind e.Event.loc) p.Gen.events;
    Pmemcheck.result pc

let check_to_header = function
  | Agree pair -> Printf.sprintf "check: agree %s" (Cross.pair_name pair)
  | Flag { tool; kind } ->
    Printf.sprintf "check: flag %s %s" (tool_name tool) (Report.kind_string kind)

let header_of_case c =
  [
    "pmtest-fuzz-case v1";
    Printf.sprintf "name: %s" c.name;
    Printf.sprintf "model: %s" (Model.kind_name c.program.Gen.model);
    Printf.sprintf "pm_size: %d" c.program.Gen.pm_size;
  ]
  @ List.map check_to_header c.checks

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    Sys.mkdir dir 0o755
  end

let case_text c =
  let buf = Buffer.create 512 in
  List.iter (fun h -> Printf.bprintf buf "# %s\n" h) (header_of_case c);
  Buffer.add_string buf (serial_text c.program);
  Buffer.contents buf

(* Identity of a reproducer is its event array (plus the model those
   events are judged under) — not its name, which carries a seed that
   differs across campaign runs finding the same bug. *)
let case_digest c =
  Digest.to_hex
    (Digest.string (Model.kind_name c.program.Gen.model ^ "\n" ^ serial_text c.program))

let parse_header_line acc line =
  match acc with
  | Error _ as e -> e
  | Ok (name, model, pm_size, checks) -> (
    match String.index_opt line ':' with
    | None -> acc (* free-form comment, e.g. the version banner *)
    | Some i -> (
      let key = String.sub line 0 i in
      let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
      match key with
      | "name" -> Ok (Some value, model, pm_size, checks)
      | "model" -> (
        match Model.kind_of_string value with
        | Some m -> Ok (name, Some m, pm_size, checks)
        | None -> Error (Printf.sprintf "unknown model %S" value))
      | "pm_size" -> (
        match int_of_string_opt value with
        | Some n when n > 0 -> Ok (name, model, Some n, checks)
        | _ -> Error (Printf.sprintf "bad pm_size %S" value))
      | "check" -> (
        match String.split_on_char ' ' value with
        | [ "agree"; pair ] -> (
          match pair_of_name pair with
          | Some p -> Ok (name, model, pm_size, Agree p :: checks)
          | None -> Error (Printf.sprintf "unknown pair %S" pair))
        | [ "flag"; tool; kind ] -> (
          match (tool_of_name tool, kind_of_name kind) with
          | Some t, Some k -> Ok (name, model, pm_size, Flag { tool = t; kind = k } :: checks)
          | None, _ -> Error (Printf.sprintf "unknown tool %S" tool)
          | _, None -> Error (Printf.sprintf "unknown diagnostic kind %S" kind))
        | _ -> Error (Printf.sprintf "malformed check %S" value))
      | _ -> acc))

let load_file path =
  match Serial.load_file_with_header path with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok (header, events) -> (
    match List.fold_left parse_header_line (Ok (None, None, None, [])) header with
    | Error e -> Error (Printf.sprintf "%s: %s" path e)
    | Ok (name, model, pm_size, checks) ->
      let name =
        match name with
        | Some n -> n
        | None -> Filename.remove_extension (Filename.basename path)
      in
      (match (model, checks) with
      | None, _ -> Error (Printf.sprintf "%s: missing 'model:' header" path)
      | _, [] -> Error (Printf.sprintf "%s: no 'check:' headers" path)
      | Some model, checks ->
        let default_size =
          Array.fold_left
            (fun acc (e : Event.t) ->
              match e.Event.kind with
              | Event.Op (Model.Write { addr; size } | Model.Clwb { addr; size })
              | Event.Tx (Event.Tx_add { addr; size })
              | Event.Checker (Event.Is_persist { addr; size }) ->
                max acc (addr + size)
              | Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }) ->
                max acc (max (a_addr + a_size) (b_addr + b_size))
              | _ -> acc)
            Model.cache_line events
        in
        let pm_size = Option.value pm_size ~default:default_size in
        Ok
          {
            name;
            program = { Gen.model; pm_size; events };
            checks = List.rev checks;
          }))

let load_dir dir =
  if not (Sys.file_exists dir) then Ok []
  else begin
    let files =
      Sys.readdir dir |> Array.to_list
      |> List.filter (fun f -> Filename.check_suffix f ".pmt")
      |> List.sort compare
    in
    List.fold_left
      (fun acc f ->
        match acc with
        | Error _ as e -> e
        | Ok cases -> (
          match load_file (Filename.concat dir f) with
          | Ok c -> Ok (c :: cases)
          | Error _ as e -> e))
      (Ok []) files
    |> Result.map List.rev
  end

(* Dedupe bookkeeping for [save]: digest -> path, one table per corpus
   directory, built by scanning the directory once per process and kept
   current by [save] itself.  Rescanning (and re-parsing) every .pmt on
   each call made corpus saves O(n^2) over a campaign.  Files written
   behind our back by another process are not seen until the next
   process start — the cost is a duplicate reproducer, never a lost
   one. *)
let digest_index : (string, (string, string) Hashtbl.t) Hashtbl.t = Hashtbl.create 4

let index_for dir =
  match Hashtbl.find_opt digest_index dir with
  | Some idx -> idx
  | None ->
    let idx = Hashtbl.create 64 in
    if Sys.file_exists dir then
      Array.iter
        (fun f ->
          if Filename.check_suffix f ".pmt" then
            let path = Filename.concat dir f in
            match load_file path with
            | Ok c -> Hashtbl.replace idx (case_digest c) path
            | Error _ -> ())
        (Sys.readdir dir);
    Hashtbl.replace digest_index dir idx;
    idx

let save ~dir c =
  mkdir_p dir;
  let idx = index_for dir in
  let digest = case_digest c in
  match Hashtbl.find_opt idx digest with
  | Some path when Sys.file_exists path -> path
  | _ ->
    let path = Filename.concat dir (c.name ^ ".pmt") in
    Serial.save_file ~header:(header_of_case c) path c.program.Gen.events;
    Hashtbl.replace idx digest path;
    path

let run_check c = function
  | Agree pair -> (
    match Cross.compare_pair pair c.program with
    | Cross.Agree -> Ok ()
    | Cross.Disagree d ->
      Error (Printf.sprintf "%s: pair %s disagrees again: %s" c.name (Cross.pair_name pair) d)
    | Cross.Skip why ->
      Error
        (Printf.sprintf "%s: pair %s no longer applies (%s) — stale corpus case" c.name
           (Cross.pair_name pair) why))
  | Flag { tool; kind } ->
    if Report.count kind (tool_report tool c.program) > 0 then Ok ()
    else
      Error
        (Printf.sprintf "%s: %s no longer reports %s" c.name (tool_name tool)
           (Report.kind_string kind))

let replay c =
  List.fold_left
    (fun acc check -> match acc with Error _ -> acc | Ok () -> run_check c check)
    (Ok ()) c.checks
