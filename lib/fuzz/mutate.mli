(** Mutation mode: seed known-bad edits into the bug catalog's clean
    twins and assert the checkers still catch them.

    Each mutation operator models one bug class from the paper's Table 5
    and is only applied where static candidate filters {e guarantee} the
    edit introduces that bug (e.g. a [clwb] is only dropped when no other
    writeback covers the range and a prior store dirtied it), so a
    missed claim is a real detection regression, not filter noise. The
    claimed (tool, diagnostic) pairs are additionally required to be
    absent from the clean twin, so it is the mutation that introduces
    the finding. *)

open Pmtest_trace
module Report := Pmtest_core.Report
module Case := Pmtest_bugdb.Case

type kind =
  | Drop_clwb  (** Remove a writeback nothing else covers. *)
  | Drop_fence  (** Remove the final fence, leaving a flush pending. *)
  | Swap_fence  (** Swap an adjacent [clwb; sfence] pair. *)
  | Widen_write  (** Extend a store over bytes nothing writes back. *)
  | Drop_tx_add  (** Remove an undo-log backup a later store needs. *)

type claim = { tool : Repro.tool; diag : Report.kind }

type seeded = {
  case_id : string;
  mutation : kind;
  at : int;  (** Event index of the mutated entry in the clean trace. *)
  program : Gen.program;
  claims : claim list;  (** Every tool whose contract covers this bug class. *)
}

type outcome = {
  seeded : seeded;
  missed : claim list;  (** Claims no longer flagged — detection regressions. *)
  shrunk : Event.t array;
      (** Minimal trace on which every claim still fires (equals the
          mutant when shrinking is disabled or a claim was missed). *)
}

val kind_name : kind -> string
val all_kinds : kind list

val seed_case : Case.t -> seeded list
(** At most one mutant per operator per case; empty when the clean trace
    is not x86 or no candidate passes the filters. *)

val seed_catalog : ?cases:Case.t list -> unit -> seeded list
(** Defaults to {!Pmtest_bugdb.Catalog.all}. *)

val check : ?shrink:bool -> seeded -> outcome
(** [shrink] defaults to [true]; shrinking preserves "every claimed tool
    still flags its diagnostic". *)
