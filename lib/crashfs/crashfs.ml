open Pmtest_util
module Model = Pmtest_model.Model
module Machine = Pmtest_pmem.Machine
module Sink = Pmtest_trace.Sink
module Event = Pmtest_trace.Event
module Fs = Pmtest_pmfs.Fs
module Nova = Pmtest_nova.Nova

type fs_kind = Pmfs | Nova

let fs_kind_name = function Pmfs -> "pmfs" | Nova -> "nova"

let fs_kind_of_string = function
  | "pmfs" -> Some Pmfs
  | "nova" -> Some Nova
  | _ -> None

type config = {
  fs : fs_kind;
  model : Model.kind;
  max_ops : int;
  samples_per_boundary : int;
  exhaustive_limit : int;
  max_failures : int;
  pmfs_fault : Fs.fault option;
  nova_bug : Nova.bug option;
  boundary_filter : (int -> bool) option;
}

let default_config fs =
  {
    fs;
    model = Model.X86;
    max_ops = 10;
    samples_per_boundary = 12;
    exhaustive_limit = 96;
    max_failures = 4;
    pmfs_fault = None;
    nova_bug = None;
    boundary_filter = None;
  }

let pmfs_faults =
  [
    ("journal-double-flush", Fs.Journal_double_flush);
    ("data-double-flush", Fs.Data_double_flush);
    ("flush-unmapped", Fs.Flush_unmapped);
    ("skip-journal-flush", Fs.Skip_journal_flush);
    ("skip-commit-fence", Fs.Skip_commit_fence);
    ("fsync-redundant-fence", Fs.Fsync_redundant_fence);
    ("empty-tx-fence", Fs.Empty_tx_fence);
    ("alloc-no-zero", Fs.Alloc_no_zero);
  ]

let nova_bugs =
  [
    ("skip-data-persist", Nova.Skip_data_persist);
    ("skip-entry-persist", Nova.Skip_entry_persist);
    ("skip-tail-persist", Nova.Skip_tail_persist);
    ("valid-before-init", Nova.Valid_before_init);
  ]

let fault_names = function
  | Pmfs -> List.map fst pmfs_faults
  | Nova -> List.map fst nova_bugs

let with_fault config name =
  if name = "none" then Ok { config with pmfs_fault = None; nova_bug = None }
  else
    match config.fs with
    | Pmfs -> (
      match List.assoc_opt name pmfs_faults with
      | Some f -> Ok { config with pmfs_fault = Some f }
      | None ->
        Error
          (Printf.sprintf "unknown pmfs fault %S (expected one of: %s)" name
             (String.concat ", " (fault_names Pmfs))))
    | Nova -> (
      match List.assoc_opt name nova_bugs with
      | Some b -> Ok { config with nova_bug = Some b }
      | None ->
        Error
          (Printf.sprintf "unknown nova bug %S (expected one of: %s)" name
             (String.concat ", " (fault_names Nova))))

let fault_name config =
  match config.fs with
  | Pmfs ->
    Option.bind config.pmfs_fault (fun f ->
        List.find_opt (fun (_, f') -> f' = f) pmfs_faults |> Option.map fst)
  | Nova ->
    Option.bind config.nova_bug (fun b ->
        List.find_opt (fun (_, b') -> b' = b) nova_bugs |> Option.map fst)

(* --- Stats ------------------------------------------------------------------ *)

type failure = { op_index : int; boundary : int; message : string }

type stats = {
  ops : int;
  applied : int;
  boundaries : int;
  explored : int;
  images : int;
  recoveries : int;
  avoided : float;
  failures : failure list;
}

let zero_stats =
  {
    ops = 0;
    applied = 0;
    boundaries = 0;
    explored = 0;
    images = 0;
    recoveries = 0;
    avoided = 0.;
    failures = [];
  }

let add_stats a b =
  {
    ops = a.ops + b.ops;
    applied = a.applied + b.applied;
    boundaries = a.boundaries + b.boundaries;
    explored = a.explored + b.explored;
    images = a.images + b.images;
    recoveries = a.recoveries + b.recoveries;
    avoided = a.avoided +. b.avoided;
    failures = a.failures @ b.failures;
  }

let pruned_ratio st =
  let total = st.avoided +. float_of_int st.recoveries in
  if total <= 0. then 0. else st.avoided /. total

(* --- Drivers ---------------------------------------------------------------- *)

(* One driver per file system: apply an op to the live instance (updating
   the committed-state spec on success), check the live volatile view
   against the spec, and remount-and-check one crash image against the
   spec with the in-flight op's allowed outcomes. *)
type driver = {
  d_machine : Machine.t;
  d_apply : Workload.op -> (unit, string) result;
  d_live_check : unit -> (unit, string) result;
  d_check_image : pending:Workload.op option -> bytes -> (unit, string) result;
}

let sorted_names fold_tbl = List.sort compare fold_tbl

let names_mismatch ~what got want =
  Error
    (Printf.sprintf "%s: directory lists [%s], committed state expects [%s]" what
       (String.concat " " got) (String.concat " " want))

(* -- PMFS -- *)

let pmfs_max_bytes = 12 * Fs.block_size

(* The committed-state model: file name -> contents (length = size; holes
   are the zero bytes PMFS reads back). *)
let pmfs_spec_write old ~off ~len fill =
  let osz = Bytes.length old in
  let nsz = max osz (off + len) in
  let nb = Bytes.make nsz '\000' in
  Bytes.blit old 0 nb 0 osz;
  Bytes.fill nb off len fill;
  nb

(* Pure spec-level application; [None] when the op would fail (then the
   only acceptable post-crash state is the unchanged spec). *)
let pmfs_spec_apply spec op =
  let copy () = Hashtbl.copy spec in
  match (op : Workload.op) with
  | Create n ->
    if Hashtbl.mem spec n then None
    else begin
      let s = copy () in
      Hashtbl.replace s n Bytes.empty;
      Some s
    end
  | Write { name; off; len; fill } -> (
    match Hashtbl.find_opt spec name with
    | Some old when off + len <= pmfs_max_bytes ->
      let s = copy () in
      Hashtbl.replace s name (pmfs_spec_write old ~off ~len fill);
      Some s
    | _ -> None)
  | Unlink n ->
    if Hashtbl.mem spec n then begin
      let s = copy () in
      Hashtbl.remove s n;
      Some s
    end
    else None
  | Fsync _ | Readdir -> None

let spec_names spec = sorted_names (Hashtbl.fold (fun k _ acc -> k :: acc) spec [])

let pmfs_file_exact fs2 ~name ~ino want =
  let size = Fs.file_size fs2 ~ino in
  if size <> Bytes.length want then
    Error (Printf.sprintf "file %s: size %d, committed state expects %d" name size (Bytes.length want))
  else if size = 0 then Ok ()
  else
    match Fs.read fs2 ~ino ~off:0 ~len:size with
    | Error e -> Error (Printf.sprintf "file %s: read failed: %s" name e)
    | Ok got ->
      if got = Bytes.to_string want then Ok ()
      else Error (Printf.sprintf "file %s: contents differ from committed state" name)

(* The in-flight XIP write window: metadata (size, allocations) rolls
   back atomically with the journal, but data goes in place — bytes in
   the written range may be old or new, torn at any granularity. *)
let pmfs_file_inflight fs2 ~name ~ino ~old ~nw ~off ~len =
  let osz = Bytes.length old and nsz = Bytes.length nw in
  let size = Fs.file_size fs2 ~ino in
  if size = nsz && nsz <> osz then pmfs_file_exact fs2 ~name ~ino nw
  else if size <> osz then
    Error
      (Printf.sprintf "file %s: size %d, in-flight write allows only %d or %d" name size osz nsz)
  else if osz = 0 then Ok ()
  else
    match Fs.read fs2 ~ino ~off:0 ~len:osz with
    | Error e -> Error (Printf.sprintf "file %s: read failed: %s" name e)
    | Ok got ->
      let bad = ref None in
      String.iteri
        (fun i c ->
          if !bad = None then
            let in_range = i >= off && i < off + len in
            let okc =
              if in_range then c = Bytes.get old i || c = Bytes.get nw i
              else c = Bytes.get old i
            in
            if not okc then bad := Some i)
        got;
      (match !bad with
      | None -> Ok ()
      | Some i ->
        Error
          (Printf.sprintf "file %s: byte %d is neither the old nor the in-flight value" name i))

let pmfs_check_spec spec ~pending fs2 =
  let want_before = spec_names spec in
  let got = sorted_names (List.map fst (Fs.readdir fs2)) in
  let after = Option.bind pending (pmfs_spec_apply spec) in
  let check_with base ~relax =
    let rec go = function
      | [] -> Ok ()
      | name :: rest -> (
        match Fs.lookup fs2 name with
        | None -> Error (Printf.sprintf "file %s: lookup failed after recovery" name)
        | Some ino -> (
          let want = Hashtbl.find base name in
          let res =
            match relax with
            | Some (rn, old, nw, off, len) when rn = name ->
              pmfs_file_inflight fs2 ~name ~ino ~old ~nw ~off ~len
            | _ -> pmfs_file_exact fs2 ~name ~ino want
          in
          match res with Ok () -> go rest | Error _ as e -> e))
    in
    go (spec_names base)
  in
  if got = want_before then begin
    let relax =
      match pending with
      | Some (Workload.Write { name; off; len; fill }) -> (
        match Hashtbl.find_opt spec name with
        | Some old when off + len <= pmfs_max_bytes ->
          Some (name, old, pmfs_spec_write old ~off ~len fill, off, len)
        | _ -> None)
      | _ -> None
    in
    check_with spec ~relax
  end
  else
    match after with
    | Some sa when spec_names sa = got -> check_with sa ~relax:None
    | _ -> names_mismatch ~what:"recovery" got want_before

let pmfs_driver config sink =
  let max_ops = config.max_ops in
  let fs =
    Fs.mkfs ~track_versions:true ~inodes:8
      ~blocks:((4 * max_ops) + 8)
      ~journal_entries:24 ~sink ()
  in
  Fs.set_fault fs config.pmfs_fault;
  let spec : (string, Bytes.t) Hashtbl.t = Hashtbl.create 8 in
  let apply (op : Workload.op) =
    match op with
    | Create n -> (
      match Fs.create fs n with
      | Ok _ ->
        Hashtbl.replace spec n Bytes.empty;
        Ok ()
      | Error e -> Error e)
    | Write { name; off; len; fill } -> (
      match Fs.lookup fs name with
      | None -> Error "no such file"
      | Some ino -> (
        match Fs.write fs ~ino ~off (String.make len fill) with
        | Ok () ->
          let old = Option.value ~default:Bytes.empty (Hashtbl.find_opt spec name) in
          Hashtbl.replace spec name (pmfs_spec_write old ~off ~len fill);
          Ok ()
        | Error e -> Error e))
    | Unlink n -> (
      match Fs.unlink fs n with
      | Ok () ->
        Hashtbl.remove spec n;
        Ok ()
      | Error e -> Error e)
    | Fsync n -> (
      match Fs.lookup fs n with
      | None -> Error "no such file"
      | Some ino ->
        Fs.fsync fs ~ino;
        Ok ())
    | Readdir ->
      ignore (Fs.readdir fs);
      Ok ()
  in
  let live_check () =
    let got = sorted_names (List.map fst (Fs.readdir fs)) in
    let want = spec_names spec in
    if got = want then Ok () else names_mismatch ~what:"live view" got want
  in
  let check_image ~pending img =
    match
      let machine = Machine.of_image img in
      match Fsck.pmfs_journal machine with
      | Error _ as e -> e
      | Ok () -> (
        let fs2 = Fs.mount ~machine ~sink:Sink.null in
        match Fsck.pmfs fs2 with
        | Error _ as e -> e
        | Ok () -> pmfs_check_spec spec ~pending fs2)
    with
    | r -> r
    | exception e -> Error ("recovery raised " ^ Printexc.to_string e)
  in
  {
    d_machine = Fs.machine fs;
    d_apply = apply;
    d_live_check = live_check;
    d_check_image = check_image;
  }

(* -- NOVA -- *)

(* The committed-state model: file name -> page offset -> page contents. *)
let nova_blank_page () = String.make Nova.page_size '\000'

let nova_spec_write pages ~pgoff ~len fill =
  let old = Option.value ~default:(nova_blank_page ()) (Hashtbl.find_opt pages pgoff) in
  let len = min len Nova.page_size in
  let nb = Bytes.of_string old in
  Bytes.fill nb 0 len fill;
  Bytes.to_string nb

let nova_spec_apply spec op =
  let copy () =
    let s = Hashtbl.create 8 in
    Hashtbl.iter (fun k v -> Hashtbl.replace s k (Hashtbl.copy v)) spec;
    s
  in
  match (op : Workload.op) with
  | Create n ->
    if Hashtbl.mem spec n then None
    else begin
      let s = copy () in
      Hashtbl.replace s n (Hashtbl.create 4);
      Some s
    end
  | Write { name; off = pgoff; len; fill } -> (
    match Hashtbl.find_opt spec name with
    | None -> None
    | Some pages ->
      let s = copy () in
      let pages' = Hashtbl.find s name in
      Hashtbl.replace pages' pgoff (nova_spec_write pages ~pgoff ~len fill);
      Some s)
  | Unlink n ->
    if Hashtbl.mem spec n then begin
      let s = copy () in
      Hashtbl.remove s n;
      Some s
    end
    else None
  | Fsync _ | Readdir -> None

let nova_file_exact fs2 ~name ~ino pages =
  let pgoffs = sorted_names (Hashtbl.fold (fun k _ acc -> k :: acc) pages []) in
  let rec go = function
    | [] ->
      let n = Nova.file_pages fs2 ~ino in
      if n <> Hashtbl.length pages then
        Error
          (Printf.sprintf "file %s: %d committed pages on media, committed state expects %d" name n
             (Hashtbl.length pages))
      else Ok ()
    | pgoff :: rest -> (
      match Nova.read fs2 ~ino ~pgoff with
      | Error e -> Error (Printf.sprintf "file %s: read failed: %s" name e)
      | Ok got ->
        if got = Hashtbl.find pages pgoff then go rest
        else Error (Printf.sprintf "file %s: page %d differs from committed state" name pgoff))
  in
  go pgoffs

(* In-flight NOVA write: the log commit is atomic, so the target page is
   wholly old or wholly new; every other page is untouched. *)
let nova_file_inflight fs2 ~name ~ino ~pages ~pgoff ~nw =
  let old = Option.value ~default:(nova_blank_page ()) (Hashtbl.find_opt pages pgoff) in
  let fresh = not (Hashtbl.mem pages pgoff) in
  match Nova.read fs2 ~ino ~pgoff with
  | Error e -> Error (Printf.sprintf "file %s: read failed: %s" name e)
  | Ok got ->
    if got <> old && got <> nw then
      Error
        (Printf.sprintf "file %s: page %d is neither the old nor the in-flight contents" name pgoff)
    else begin
      let others = Hashtbl.copy pages in
      Hashtbl.remove others pgoff;
      let rec go = function
        | [] ->
          let n = Nova.file_pages fs2 ~ino in
          let before = Hashtbl.length pages in
          let after = if fresh then before + 1 else before in
          if n <> before && n <> after then
            Error
              (Printf.sprintf "file %s: %d committed pages on media, in-flight write allows %d or %d"
                 name n before after)
          else Ok ()
        | p :: rest -> (
          match Nova.read fs2 ~ino ~pgoff:p with
          | Error e -> Error (Printf.sprintf "file %s: read failed: %s" name e)
          | Ok got' ->
            if got' = Hashtbl.find others p then go rest
            else Error (Printf.sprintf "file %s: page %d differs from committed state" name p))
      in
      go (sorted_names (Hashtbl.fold (fun k _ acc -> k :: acc) others []))
    end

let nova_check_spec spec ~pending fs2 =
  let want_before = spec_names spec in
  let got = sorted_names (List.map fst (Nova.readdir fs2)) in
  let after = Option.bind pending (nova_spec_apply spec) in
  let check_with base ~relax =
    let rec go = function
      | [] -> Ok ()
      | name :: rest -> (
        match Nova.lookup fs2 name with
        | None -> Error (Printf.sprintf "file %s: lookup failed after recovery" name)
        | Some ino -> (
          let pages = Hashtbl.find base name in
          let res =
            match relax with
            | Some (rn, pgoff, nw) when rn = name ->
              nova_file_inflight fs2 ~name ~ino ~pages ~pgoff ~nw
            | _ -> nova_file_exact fs2 ~name ~ino pages
          in
          match res with Ok () -> go rest | Error _ as e -> e))
    in
    go (spec_names base)
  in
  if got = want_before then begin
    let relax =
      match pending with
      | Some (Workload.Write { name; off = pgoff; len; fill }) -> (
        match Hashtbl.find_opt spec name with
        | Some pages -> Some (name, pgoff, nova_spec_write pages ~pgoff ~len fill)
        | None -> None)
      | _ -> None
    in
    check_with spec ~relax
  end
  else
    match after with
    | Some sa when spec_names sa = got -> check_with sa ~relax:None
    | _ -> names_mismatch ~what:"recovery" got want_before

let nova_driver config sink =
  (* Geometry: 8 inodes (name pool is 6 wide), data sized so every write
     of the run gets a fresh CoW page without ever hitting the allocator
     limit (an allocation failure would commit a partial op). *)
  let inodes = 8 in
  let log_area = 64 + (inodes * 64) + (inodes * 64 * 64) in
  let data_off = (log_area + Nova.page_size - 1) / Nova.page_size * Nova.page_size in
  let size = data_off + (Nova.page_size * (config.max_ops + 8)) in
  let fs = Nova.mkfs ~track_versions:true ~inodes ~size ~sink () in
  Nova.set_bug fs config.nova_bug;
  let spec : (string, (int, string) Hashtbl.t) Hashtbl.t = Hashtbl.create 8 in
  let apply (op : Workload.op) =
    match op with
    | Create n -> (
      match Nova.create fs n with
      | Ok _ ->
        Hashtbl.replace spec n (Hashtbl.create 4);
        Ok ()
      | Error e -> Error e)
    | Write { name; off = pgoff; len; fill } -> (
      match Nova.lookup fs name with
      | None -> Error "no such file"
      | Some ino -> (
        let len = min len Nova.page_size in
        match Nova.write fs ~ino ~pgoff (String.make len fill) with
        | Ok () ->
          let pages = Hashtbl.find spec name in
          Hashtbl.replace pages pgoff (nova_spec_write pages ~pgoff ~len fill);
          Ok ()
        | Error e -> Error e))
    | Unlink n -> (
      match Nova.unlink fs n with
      | Ok () ->
        Hashtbl.remove spec n;
        Ok ()
      | Error e -> Error e)
    | Fsync n -> if Nova.lookup fs n = None then Error "no such file" else Ok ()
    | Readdir ->
      ignore (Nova.readdir fs);
      Ok ()
  in
  let live_check () =
    let got = sorted_names (List.map fst (Nova.readdir fs)) in
    let want = spec_names spec in
    if got = want then Ok () else names_mismatch ~what:"live view" got want
  in
  let check_image ~pending img =
    match
      let machine = Machine.of_image img in
      let fs2 = Nova.mount ~machine ~sink:Sink.null in
      match Fsck.nova fs2 with
      | Error _ as e -> e
      | Ok () -> nova_check_spec spec ~pending fs2
    with
    | r -> r
    | exception e -> Error ("recovery raised " ^ Printexc.to_string e)
  in
  {
    d_machine = Nova.machine fs;
    d_apply = apply;
    d_live_check = live_check;
    d_check_image = check_image;
  }

(* --- The harness ------------------------------------------------------------ *)

let run_ops config ~seed ops =
  (match config.model with
  | Model.Cxl ->
    invalid_arg
      "Crashfs.run_ops: the PM file systems use flush/fence primitives; gpf-based crash \
       enumeration is covered by the crashtest CXL tests"
  | Model.X86 | Model.Hops | Model.Eadr -> ());
  if config.samples_per_boundary <= 0 || config.exhaustive_limit <= 0 then
    invalid_arg "Crashfs.run_ops: sampling knobs must be positive";
  let rng = Rng.create (seed lxor 0x5F3C_9A17) in
  let target = ref Sink.null in
  let sink = { Sink.emit = (fun kind loc -> !target.Sink.emit kind loc) } in
  let driver =
    match config.fs with Pmfs -> pmfs_driver config sink | Nova -> nova_driver config sink
  in
  let machine = driver.d_machine in
  let seen : (string, unit) Hashtbl.t = Hashtbl.create 256 in
  let cur_op = ref (-1) in
  let pending : Workload.op option ref = ref None in
  let writes_since = ref 0 in
  let last_images = ref 0. in
  let boundaries = ref 0 in
  let explored = ref 0 in
  let images = ref 0 in
  let recoveries = ref 0 in
  let avoided = ref 0. in
  let failures = ref [] in
  let nfailures = ref 0 in
  let record f =
    if !nfailures < config.max_failures then begin
      failures := f :: !failures;
      incr nfailures
    end
  in
  let consider idx img =
    incr images;
    let digest = Digest.bytes img in
    if Hashtbl.mem seen digest then avoided := !avoided +. 1.
    else begin
      Hashtbl.add seen digest ();
      incr recoveries;
      match driver.d_check_image ~pending:!pending (Bytes.copy img) with
      | Ok () -> ()
      | Error message -> record { op_index = !cur_op; boundary = idx; message }
    end
  in
  let boundary () =
    if !nfailures < config.max_failures then begin
      let idx = !boundaries in
      incr boundaries;
      if !writes_since = 0 then
        (* Epoch equivalence: no store since the last boundary, so the
           reachable image set cannot have grown — skip the whole class. *)
        avoided := !avoided +. !last_images
      else begin
        writes_since := 0;
        let explore =
          match config.boundary_filter with None -> true | Some f -> f idx
        in
        incr explored;
        if explore then begin
          let count = ref 0 in
          let f img =
            incr count;
            consider idx img
          in
          (match config.model with
          | Model.Eadr -> f (Machine.volatile_image machine)
          | Model.X86 | Model.Hops ->
            if Machine.crash_state_count machine <= float_of_int config.exhaustive_limit then
              ignore (Machine.iter_crash_states ~limit:config.exhaustive_limit machine f)
            else
              for _ = 1 to config.samples_per_boundary do
                f (Machine.sample_crash_state machine rng)
              done
          | Model.Cxl -> assert false);
          last_images := float_of_int !count
        end
        else last_images := 0.
      end
    end
  in
  let watcher kind _loc =
    match (kind : Event.kind) with
    | Event.Op (Model.Write _) -> incr writes_since
    | Event.Op (Model.Clwb _ | Model.Sfence | Model.Ofence | Model.Dfence | Model.Gpf) ->
      boundary ()
    | _ -> ()
  in
  target := { Sink.emit = watcher };
  let ops_run = ref 0 in
  let applied = ref 0 in
  Array.iteri
    (fun i op ->
      if !nfailures < config.max_failures then begin
        incr ops_run;
        cur_op := i;
        pending := Some op;
        (match driver.d_apply op with
        | Ok () -> (
          incr applied;
          pending := None;
          match driver.d_live_check () with
          | Ok () -> ()
          | Error message -> record { op_index = i; boundary = -1; message })
        | Error _ -> ()
        | exception e ->
          record { op_index = i; boundary = -1; message = "apply raised " ^ Printexc.to_string e });
        pending := None
      end)
    ops;
  cur_op := -1;
  (* End of the run is a boundary too: anything still dirty here is a
     committed operation at risk (e.g. an unfenced commit on the last op). *)
  boundary ();
  (* Clean shutdown must recover to exactly the committed state. *)
  Machine.persist_all machine;
  (match driver.d_check_image ~pending:None (Machine.media_image machine) with
  | Ok () -> ()
  | Error message -> record { op_index = -1; boundary = !boundaries; message });
  {
    ops = !ops_run;
    applied = !applied;
    boundaries = !boundaries;
    explored = !explored;
    images = !images;
    recoveries = !recoveries;
    avoided = !avoided;
    failures = List.rev !failures;
  }

let gen_ops config ~seed =
  let cfg =
    match config.fs with
    | Pmfs -> Workload.pmfs_cfg ~max_ops:config.max_ops
    | Nova -> Workload.nova_cfg ~max_ops:config.max_ops
  in
  Workload.generate cfg (Rng.create seed)

(* --- Shrinking -------------------------------------------------------------- *)

let without ops lo hi =
  let n = Array.length ops in
  Array.init (n - (hi - lo)) (fun i -> if i < lo then ops.(i) else ops.(i + (hi - lo)))

let shrink config ~seed ops =
  let pred ops' = (run_ops config ~seed ops').failures <> [] in
  if not (pred ops) then invalid_arg "Crashfs.shrink: the input sequence survives";
  let ops = ref ops in
  (* ddmin over the op sequence, as Fuzz.Shrink does over events. *)
  let chunk = ref (max 1 (Array.length !ops / 2)) in
  while !chunk >= 1 do
    let i = ref 0 in
    while !i < Array.length !ops do
      let hi = min (Array.length !ops) (!i + !chunk) in
      let candidate = without !ops !i hi in
      if Array.length candidate < Array.length !ops && pred candidate then ops := candidate
      else i := !i + !chunk
    done;
    chunk := (if !chunk = 1 then 0 else !chunk / 2)
  done;
  (* Greedy operand simplification of the surviving writes. *)
  let simplify (op : Workload.op) =
    match op with
    | Write { name; off; len; fill } ->
      List.filter_map
        (fun v -> if v <> op then Some v else None)
        [
          Workload.Write { name; off = 0; len = 1; fill = 'a' };
          Workload.Write { name; off = 0; len; fill };
          Workload.Write { name; off; len = min len 8; fill };
        ]
    | _ -> []
  in
  let progressed = ref true in
  let rounds = ref 0 in
  while !progressed && !rounds < 4 do
    progressed := false;
    incr rounds;
    Array.iteri
      (fun i op ->
        List.iter
          (fun v ->
            let candidate = Array.copy !ops in
            candidate.(i) <- v;
            if candidate.(i) <> !ops.(i) && pred candidate then begin
              ops := candidate;
              progressed := true
            end)
          (simplify op))
      !ops
  done;
  !ops

(* --- Campaigns -------------------------------------------------------------- *)

type finding = {
  f_seed : int;
  f_ops : Workload.op array;
  f_shrunk : Workload.op array;
  f_failure : failure;
}

type campaign = { runs : int; total : stats; findings : finding list }

let run_campaign config ~count ~seed ?(progress = fun _ -> ()) () =
  let total = ref zero_stats in
  let findings = ref [] in
  for i = 0 to count - 1 do
    let run_seed = seed + i in
    let ops = gen_ops config ~seed:run_seed in
    let st = run_ops config ~seed:run_seed ops in
    total := add_stats !total st;
    (match st.failures with
    | f :: _ when List.length !findings < config.max_failures ->
      let shrunk = shrink config ~seed:run_seed ops in
      findings := { f_seed = run_seed; f_ops = ops; f_shrunk = shrunk; f_failure = f } :: !findings
    | _ -> ());
    progress (i + 1)
  done;
  { runs = count; total = !total; findings = List.rev !findings }

let run_range config ~lo ~hi ?progress () =
  if hi < lo then invalid_arg "Crashfs.run_range: inverted seed range";
  run_campaign config ~count:(hi - lo) ~seed:lo ?progress ()

(* Every field here is a pure function of (config, seed range) — the
   sampler is seeded, [avoided] is computed from counts — so the digest
   is stable across re-runs and hosts. %h renders the float exactly. *)
let campaign_digest c =
  let b = Buffer.create 512 in
  let st = c.total in
  Printf.bprintf b "runs %d\nops %d %d\nboundaries %d %d\nimages %d %d\navoided %h\n" c.runs
    st.ops st.applied st.boundaries st.explored st.images st.recoveries st.avoided;
  List.iter
    (fun f ->
      Printf.bprintf b "finding %d %d %d %s\n" f.f_seed f.f_failure.op_index f.f_failure.boundary
        f.f_failure.message;
      Array.iter (fun op -> Printf.bprintf b "%s\n" (Workload.op_to_string op)) f.f_shrunk)
    c.findings;
  Digest.to_hex (Digest.string (Buffer.contents b))

let pp_summary ppf c =
  let st = c.total in
  Format.fprintf ppf
    "@[<v>%d runs, %d ops (%d applied)@,\
     %d persist boundaries, %d explored (%.1f%% epoch-pruned)@,\
     %d images enumerated, %d distinct recoveries (%.1f%% of candidate states pruned)@,\
     %d finding(s)@]"
    c.runs st.ops st.applied st.boundaries st.explored
    (100. *. (1. -. (float_of_int st.explored /. float_of_int (max 1 st.boundaries))))
    st.images st.recoveries
    (100. *. pruned_ratio st)
    (List.length c.findings);
  List.iter
    (fun f ->
      Format.fprintf ppf "@,  seed %d, op %d, boundary %d: %s@,  shrunk to %d op(s):" f.f_seed
        f.f_failure.op_index f.f_failure.boundary f.f_failure.message (Array.length f.f_shrunk);
      Array.iter (fun op -> Format.fprintf ppf "@,    %a" Workload.pp_op op) f.f_shrunk)
    c.findings

(* --- Reproducers ------------------------------------------------------------ *)

module Repro = struct
  type case = {
    name : string;
    fs : fs_kind;
    model : Model.kind;
    seed : int;
    fault : string option;
    expect_failure : bool;
    ops : Workload.op array;
  }

  let config_of_case c =
    let config = { (default_config c.fs) with model = c.model } in
    match c.fault with
    | None -> config
    | Some f -> (
      match with_fault config f with
      | Ok config -> config
      | Error e -> invalid_arg ("Crashfs.Repro.config_of_case: " ^ e))

  let of_finding (config : config) ~name finding =
    {
      name;
      fs = config.fs;
      model = config.model;
      seed = finding.f_seed;
      fault = fault_name config;
      expect_failure = true;
      ops = finding.f_shrunk;
    }

  let to_text c =
    let b = Buffer.create 256 in
    Buffer.add_string b "# pmtest-crashfs-case v1\n";
    Printf.bprintf b "# name: %s\n" c.name;
    Printf.bprintf b "# fs: %s\n" (fs_kind_name c.fs);
    Printf.bprintf b "# model: %s\n" (Model.kind_name c.model);
    Printf.bprintf b "# seed: %d\n" c.seed;
    Option.iter (fun f -> Printf.bprintf b "# fault: %s\n" f) c.fault;
    Printf.bprintf b "# check: %s\n" (if c.expect_failure then "fails" else "survives");
    Array.iter (fun op -> Printf.bprintf b "%s\n" (Workload.op_to_string op)) c.ops;
    Buffer.contents b

  let of_text ~name text =
    let lines = String.split_on_char '\n' text in
    match lines with
    | first :: rest when String.trim first = "# pmtest-crashfs-case v1" ->
      let name = ref name in
      let fs = ref None in
      let model = ref Model.X86 in
      let seed = ref 0 in
      let fault = ref None in
      let check = ref None in
      let ops = ref [] in
      let err = ref None in
      List.iter
        (fun line ->
          if !err = None then
            let line = String.trim line in
            if line = "" then ()
            else if String.length line >= 2 && String.sub line 0 2 = "# " then begin
              match String.index_opt line ':' with
              | None -> ()
              | Some i ->
                let key = String.trim (String.sub line 2 (i - 2)) in
                let value = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
                (match key with
                | "name" -> name := value
                | "fs" -> (
                  match fs_kind_of_string value with
                  | Some k -> fs := Some k
                  | None -> err := Some (Printf.sprintf "unknown fs %S" value))
                | "model" -> (
                  match Model.kind_of_string value with
                  | Some m -> model := m
                  | None -> err := Some (Printf.sprintf "unknown model %S" value))
                | "seed" -> (
                  match int_of_string_opt value with
                  | Some s -> seed := s
                  | None -> err := Some (Printf.sprintf "bad seed %S" value))
                | "fault" -> fault := Some value
                | "check" -> (
                  match value with
                  | "fails" -> check := Some true
                  | "survives" -> check := Some false
                  | _ -> err := Some (Printf.sprintf "unknown check %S" value))
                | _ -> ())
            end
            else
              match Workload.op_of_string line with
              | Ok op -> ops := op :: !ops
              | Error e -> err := Some e)
        rest;
      (match (!err, !fs, !check) with
      | Some e, _, _ -> Error e
      | None, None, _ -> Error "missing `# fs:` header"
      | None, _, None -> Error "missing `# check:` header"
      | None, Some fs, Some expect_failure ->
        let c =
          {
            name = !name;
            fs;
            model = !model;
            seed = !seed;
            fault = !fault;
            expect_failure;
            ops = Array.of_list (List.rev !ops);
          }
        in
        (* Validate the fault name eagerly. *)
        (match c.fault with
        | Some f -> (
          match with_fault (default_config fs) f with
          | Ok _ -> Ok c
          | Error e -> Error e)
        | None -> Ok c))
    | _ -> Error "not a pmtest-crashfs-case file"

  let save ~dir c =
    let path = Filename.concat dir (c.name ^ ".pmt") in
    let tmp = path ^ ".tmp" in
    let oc = open_out tmp in
    output_string oc (to_text c);
    close_out oc;
    Sys.rename tmp path;
    path

  let load_dir dir =
    match Sys.readdir dir with
    | exception Sys_error e -> Error e
    | entries ->
      let files =
        Array.to_list entries
        |> List.filter (fun f ->
               Filename.check_suffix f ".pmt" && not (Sys.is_directory (Filename.concat dir f)))
        |> List.sort compare
      in
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | f :: rest -> (
          let path = Filename.concat dir f in
          let ic = open_in path in
          let len = in_channel_length ic in
          let text = really_input_string ic len in
          close_in ic;
          match of_text ~name:(Filename.chop_suffix f ".pmt") text with
          | Ok c -> go (c :: acc) rest
          | Error e -> Error (Printf.sprintf "%s: %s" path e))
      in
      go [] files

  let replay c =
    let config = config_of_case c in
    let st = run_ops config ~seed:c.seed c.ops in
    let failed = st.failures <> [] in
    if failed = c.expect_failure then Ok st
    else if c.expect_failure then
      Error (Printf.sprintf "case %s: expected a recovery failure but the run survived" c.name)
    else
      Error
        (Printf.sprintf "case %s: expected a clean run but got: %s" c.name
           (match st.failures with f :: _ -> f.message | [] -> "?"))
end
