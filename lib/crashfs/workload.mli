(** Syscall-level workload generation for the PM file systems.

    Seeded, weighted sequences of create/write/unlink/fsync/readdir
    calls over a small name pool, in the style of {!Pmtest_fuzz.Gen}:
    the same seed yields the same operation stream, which makes crashfs
    campaigns and their shrunk reproducers replayable byte-for-byte.

    Operations are file-system neutral: the crashfs drivers interpret
    [Write.off] as a byte offset (PMFS) or a page offset (NOVA), so one
    serial format covers both file systems. *)

open Pmtest_util

type op =
  | Create of string
  | Write of { name : string; off : int; len : int; fill : char }
      (** Write [len] bytes of [fill] at [off] (PMFS: byte offset into
          the file; NOVA: [off] is the page offset, [len] the in-page
          length). *)
  | Unlink of string
  | Fsync of string
  | Readdir

type cfg = {
  max_ops : int;
  names : string array;  (** Name pool; small so ops collide naturally. *)
  create_w : int;
  write_w : int;
  unlink_w : int;
  fsync_w : int;
  readdir_w : int;
  max_off : int;  (** Exclusive bound on [Write.off]. *)
  max_len : int;  (** Inclusive bound on [Write.len] (minimum 1). *)
}

val pmfs_cfg : max_ops:int -> cfg
(** Byte-offset writes spanning up to two data blocks, so multi-block
    transactions and hole-creating extensions are generated. *)

val nova_cfg : max_ops:int -> cfg
(** Page-offset writes of at most one page. *)

val generate : cfg -> Rng.t -> op array
(** Deterministic weighted stream of [cfg.max_ops] operations. *)

val op_to_string : op -> string
(** One tab-separated serial line per op ([c]/[w]/[u]/[f]/[r] tags). *)

val op_of_string : string -> (op, string) result
val pp_op : Format.formatter -> op -> unit
