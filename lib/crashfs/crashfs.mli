(** Systematic crash-state exploration for the PM file systems.

    The harness drives a seeded syscall workload ({!Workload}) against a
    live {!Pmtest_pmfs.Fs} or {!Pmtest_nova.Nova} instance on a
    version-tracked {!Pmtest_pmem.Machine}, snapshots the reachable
    durable images at every persist boundary (each [clwb]/fence the file
    system issues), remounts every {e distinct} image and runs recovery
    plus fsck-style invariants ({!Fsck}) and a committed-operation
    oracle: operations completed before the crash must be intact,
    in-flight operations must be atomic (PMFS metadata) or absent/whole
    (NOVA log commits), with PMFS's documented torn-data window for the
    in-flight XIP write.

    State-space bounding, in the spirit of the HOPS epoch enumerator in
    [lib/fuzz/oracle.ml]: two boundaries with no intervening store are
    epoch-equivalent (a fence that drained nothing new cannot enlarge
    the reachable image set), so only persist-order-distinct boundaries
    are enumerated, and byte-identical images are deduplicated before
    the (comparatively expensive) remount — the recovered state is a
    pure function of the image. Yat-style enumeration at every store,
    by contrast, is the product over dirty lines that
    {!Pmtest_pmem.Machine.crash_state_count} reports. *)

module Fs = Pmtest_pmfs.Fs
module Nova = Pmtest_nova.Nova

type fs_kind = Pmfs | Nova

val fs_kind_name : fs_kind -> string
val fs_kind_of_string : string -> fs_kind option

type config = {
  fs : fs_kind;
  model : Pmtest_model.Model.kind;
      (** Enumeration semantics: [X86] (and [Hops], whose fences drain
          the same way at machine level) enumerate per-dirty-line store
          versions; [Eadr] takes the volatile snapshot (caches are in
          the persistence domain). [Cxl] is rejected — the file systems
          are written against flush/fence primitives; [Gpf]-based
          programs are covered by the crashtest litmus/CXL tests. *)
  max_ops : int;
  samples_per_boundary : int;  (** Sampled images when past the limit. *)
  exhaustive_limit : int;  (** Enumerate exhaustively up to this count. *)
  max_failures : int;
  pmfs_fault : Fs.fault option;
  nova_bug : Nova.bug option;
  boundary_filter : (int -> bool) option;
      (** Testing hook: boundaries where this returns [false] are marked
          explored but nothing is enumerated — a deliberately broken
          enumerator for the catch-proof tests. [None] explores all. *)
}

val default_config : fs_kind -> config

val fault_names : fs_kind -> string list
(** Canonical fault switch names accepted by {!with_fault}. *)

val with_fault : config -> string -> (config, string) result
(** Set the seeded fault by canonical name (["none"] clears it). *)

val fault_name : config -> string option

(** {1 Single-run harness} *)

type failure = {
  op_index : int;  (** Index of the in-flight op; [-1] = live/final check. *)
  boundary : int;  (** Persist boundary at which the image was taken. *)
  message : string;
}

type stats = {
  ops : int;  (** Operations attempted. *)
  applied : int;  (** Operations that returned [Ok]. *)
  boundaries : int;  (** Persist boundaries seen (plus the final one). *)
  explored : int;  (** Boundaries actually enumerated. *)
  images : int;  (** Crash images enumerated (including duplicates). *)
  recoveries : int;  (** Distinct images remounted and checked. *)
  avoided : float;
      (** States skipped by the bounding: epoch-equivalent boundaries
          contribute their class size, duplicate images one each. *)
  failures : failure list;
}

val pruned_ratio : stats -> float
(** [avoided / (avoided + recoveries)] — the fraction of candidate crash
    states that never reached the remount-and-check path. *)

val run_ops : config -> seed:int -> Workload.op array -> stats
(** Run one workload under crash exploration. [seed] drives the sampler
    (and nothing else), so runs are deterministic. Raises
    [Invalid_argument] for a {!Pmtest_model.Model.Cxl} config. *)

val gen_ops : config -> seed:int -> Workload.op array
(** The workload a campaign run with this seed executes. *)

val shrink : config -> seed:int -> Workload.op array -> Workload.op array
(** ddmin the op sequence (plus operand simplification) to a 1-minimal
    sequence that still fails under {!run_ops}, in the style of
    [Fuzz.Shrink]. Raises [Invalid_argument] if the input survives. *)

(** {1 Campaigns} *)

type finding = {
  f_seed : int;
  f_ops : Workload.op array;
  f_shrunk : Workload.op array;
  f_failure : failure;
}

type campaign = { runs : int; total : stats; findings : finding list }

val run_campaign :
  config -> count:int -> seed:int -> ?progress:(int -> unit) -> unit -> campaign
(** [count] independent runs; run [i] generates its workload from
    [seed + i] and explores with the same seed. Failing runs are shrunk
    (the first {!config.max_failures} of them). *)

val run_range : config -> lo:int -> hi:int -> ?progress:(int -> unit) -> unit -> campaign
(** One campaign chunk: runs for absolute seeds [\[lo, hi)]. Raises
    [Invalid_argument] when [hi < lo]. Note [config.max_failures] caps
    shrinking {e per chunk}, so chunked campaigns may shrink more
    findings than one monolithic run — each chunk is still individually
    deterministic, which is what farm replay verification needs. *)

val campaign_digest : campaign -> string
(** Hex digest over the campaign outcome — run/op/boundary/image counts,
    findings with their shrunk workloads. Every contributing field is a
    pure function of (config, seed range), so re-running a chunk yields
    the same digest; the farm coordinator compares digests across job
    attempts to flag nondeterminism. *)

val pp_summary : Format.formatter -> campaign -> unit

(** {1 Reproducers}

    [.pmt]-style crashfs cases: a [# pmtest-crashfs-case v1] header
    (fs, model, seed, optional fault, expected outcome) followed by one
    serial {!Workload} op per line. Stored under [fuzz/corpus/crashfs/]
    and replayed by the test suite and [pmtest-cli crashfs --corpus]. *)

module Repro : sig
  type case = {
    name : string;
    fs : fs_kind;
    model : Pmtest_model.Model.kind;
    seed : int;
    fault : string option;
    expect_failure : bool;
    ops : Workload.op array;
  }

  val config_of_case : case -> config
  val of_finding : config -> name:string -> finding -> case
  val to_text : case -> string
  val of_text : name:string -> string -> (case, string) result
  val save : dir:string -> case -> string
  (** Atomic write; returns the path. *)

  val load_dir : string -> (case list, string) result
  (** Every [*.pmt] in the directory, sorted by name. *)

  val replay : case -> (stats, string) result
  (** Re-run and compare the outcome against [expect_failure]. *)
end
