(** Fsck-style whole-FS invariants run on recovered crash images.

    Each file system's own [check_consistent] is the base layer; these
    checks add the cross-structure invariants the crashfs recovery
    harness needs (inode/directory agreement, file-size vs block
    ownership, journal atomicity, CoW page ownership), with stable
    message fragments the golden corrupted-image tests key on:

    - ["journal: ..."] — torn PMFS journal (an entry covered by the
      persisted count parses outside the metadata area);
    - ["orphan inode ..."] — a live PMFS file inode no dirent references
      (create/unlink journal both sides in one transaction, so this can
      never survive a rollback);
    - ["beyond file size"] — an allocated block slot past the last
      size-covered block;
    - ["shared by inodes"] — a NOVA CoW data page referenced by two
      committed page mappings. *)

val pmfs_journal : Pmtest_pmem.Machine.t -> (unit, string) result
(** Validate the undo journal of an {e unmounted} image: every entry the
    persisted count covers must target the metadata area with a sane
    size. Run before {!Pmtest_pmfs.Fs.mount}, whose rollback would
    otherwise replay a torn entry into the superblock. *)

val pmfs : Pmtest_pmfs.Fs.t -> (unit, string) result
(** [check_consistent] plus: no orphan file inodes, no non-root
    directory inodes, and every allocated block slot of a file lies
    within its size-covered extent. *)

val nova : Pmtest_nova.Nova.t -> (unit, string) result
(** [check_consistent] plus: no committed CoW data page is referenced by
    two (inode, page-offset) mappings. *)
