open Pmtest_util

type op =
  | Create of string
  | Write of { name : string; off : int; len : int; fill : char }
  | Unlink of string
  | Fsync of string
  | Readdir

type cfg = {
  max_ops : int;
  names : string array;
  create_w : int;
  write_w : int;
  unlink_w : int;
  fsync_w : int;
  readdir_w : int;
  max_off : int;
  max_len : int;
}

let names = [| "a"; "b"; "c"; "d"; "e"; "f" |]

let pmfs_cfg ~max_ops =
  {
    max_ops;
    names;
    create_w = 4;
    write_w = 6;
    unlink_w = 2;
    fsync_w = 1;
    readdir_w = 1;
    (* Up to two 512-byte blocks away from the start, so writes journal
       multi-block allocations and extensions past holes. *)
    max_off = 1024;
    max_len = 600;
  }

let nova_cfg ~max_ops =
  {
    max_ops;
    names;
    create_w = 4;
    write_w = 6;
    unlink_w = 2;
    fsync_w = 1;
    readdir_w = 1;
    max_off = 4;
    max_len = 256;
  }

let generate cfg rng =
  let total = cfg.create_w + cfg.write_w + cfg.unlink_w + cfg.fsync_w + cfg.readdir_w in
  if total <= 0 then invalid_arg "Workload.generate: weights sum to zero";
  let name () = Rng.pick rng cfg.names in
  let one () =
    let r = Rng.int rng total in
    if r < cfg.create_w then Create (name ())
    else if r < cfg.create_w + cfg.write_w then
      Write
        {
          name = name ();
          off = (if cfg.max_off <= 0 then 0 else Rng.int rng cfg.max_off);
          len = 1 + Rng.int rng (max 1 cfg.max_len);
          fill = Char.chr (Char.code 'a' + Rng.int rng 26);
        }
    else if r < cfg.create_w + cfg.write_w + cfg.unlink_w then Unlink (name ())
    else if r < cfg.create_w + cfg.write_w + cfg.unlink_w + cfg.fsync_w then Fsync (name ())
    else Readdir
  in
  Array.init cfg.max_ops (fun _ -> one ())

let op_to_string = function
  | Create n -> Printf.sprintf "c\t%s" n
  | Write { name; off; len; fill } -> Printf.sprintf "w\t%s\t%d\t%d\t%d" name off len (Char.code fill)
  | Unlink n -> Printf.sprintf "u\t%s" n
  | Fsync n -> Printf.sprintf "f\t%s" n
  | Readdir -> "r"

let op_of_string line =
  match String.split_on_char '\t' line with
  | [ "c"; n ] -> Ok (Create n)
  | [ "w"; name; off; len; fill ] -> (
    match (int_of_string_opt off, int_of_string_opt len, int_of_string_opt fill) with
    | Some off, Some len, Some fill when len > 0 && off >= 0 && fill >= 0 && fill < 256 ->
      Ok (Write { name; off; len; fill = Char.chr fill })
    | _ -> Error (Printf.sprintf "bad write operands in %S" line))
  | [ "u"; n ] -> Ok (Unlink n)
  | [ "f"; n ] -> Ok (Fsync n)
  | [ "r" ] -> Ok Readdir
  | _ -> Error (Printf.sprintf "unparseable op line %S" line)

let pp_op ppf op =
  match op with
  | Create n -> Format.fprintf ppf "create %s" n
  | Write { name; off; len; fill } -> Format.fprintf ppf "write %s off=%d len=%d fill=%c" name off len fill
  | Unlink n -> Format.fprintf ppf "unlink %s" n
  | Fsync n -> Format.fprintf ppf "fsync %s" n
  | Readdir -> Format.fprintf ppf "readdir"
