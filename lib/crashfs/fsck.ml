module Access = Pmtest_pmem.Access
module Fs = Pmtest_pmfs.Fs
module Nova = Pmtest_nova.Nova

let le_size = 128
let le_data_cap = 112

let pmfs_journal machine =
  let geti off = Access.get_int machine off in
  let total = geti 8 in
  let journal_off = geti 32 in
  let itable_off = geti 40 in
  let cap = (itable_off - journal_off - 64) / le_size in
  let count = geti journal_off in
  if count < 0 || count > cap then
    Error (Printf.sprintf "journal: entry count %d outside [0, %d]" count cap)
  else begin
    let errors = ref [] in
    for i = 0 to count - 1 do
      let le = journal_off + 64 + (i * le_size) in
      let addr = geti le in
      let size = geti (le + 8) in
      if size < 1 || size > le_data_cap || addr < itable_off || addr + size > total then
        errors :=
          Printf.sprintf "journal: torn entry %d (addr=%d size=%d)" i addr size :: !errors
    done;
    match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
  end

let pmfs fs =
  match Fs.check_consistent fs with
  | Error _ as e -> e
  | Ok () ->
    let errors = ref [] in
    let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
    let referenced = Hashtbl.create 16 in
    List.iter (fun (_, ino) -> Hashtbl.replace referenced ino ()) (Fs.readdir fs);
    for ino = 1 to Fs.ninodes fs - 1 do
      match Fs.inode_kind fs ~ino with
      | 0 -> ()
      | 2 -> err "inode %d is a directory (only the root may be)" ino
      | _ ->
        (* Creates and unlinks journal the inode and the dirent in one
           transaction, so a live file inode without a dirent cannot
           survive a rollback. *)
        if not (Hashtbl.mem referenced ino) then
          err "orphan inode %d (live file inode unreferenced by any dirent)" ino
        else begin
          let size = Fs.file_size fs ~ino in
          List.iter
            (fun (slot, block) ->
              if slot * Fs.block_size >= size then
                err "inode %d: block slot %d (block %d) beyond file size %d" ino slot block size)
            (Fs.inode_blocks fs ~ino)
        end
    done;
    (match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es)))

let nova fs =
  match Nova.check_consistent fs with
  | Error _ as e -> e
  | Ok () ->
    let errors = ref [] in
    let owner = Hashtbl.create 32 in
    for ino = 0 to Nova.ninodes fs - 1 do
      if Nova.is_valid fs ~ino then
        List.iter
          (fun (pgoff, block) ->
            match Hashtbl.find_opt owner block with
            | Some (ino', pgoff') ->
              errors :=
                Printf.sprintf "data page %d shared by inodes %d:%d and %d:%d" block ino' pgoff'
                  ino pgoff
                :: !errors
            | None -> Hashtbl.replace owner block (ino, pgoff))
          (Nova.page_map fs ~ino)
    done;
    (match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es)))
