(** A reimplementation of the Pmemcheck cost and checking model — the
    "state of the art" tool PMTest is compared against (paper §2.2, §6.2).

    Pmemcheck is a Valgrind tool: it instruments {e every} store at byte
    granularity and keeps a per-byte state machine
    (dirty → flushed → persisted). That per-byte processing — rather than
    PMTest's per-range interval arithmetic over a trace — is where its
    order-of-magnitude overhead comes from, and we reproduce the cost
    model honestly: each operation loops over the bytes it touches.

    Checks performed (matching the real tool's diagnostics):
    - stores never flushed/fenced by the end of the run ([Not_persisted]);
    - redundant flush of an already-flushed range ([Duplicate_writeback]);
    - flush of bytes that were never stored ([Unnecessary_writeback]);
    - within a transaction, stores to bytes not covered by an undo-log
      entry ([Missing_log]).

    Unlike PMTest it is {e not} programmable: there are no placeable
    checkers and no persistency-model parameter (x86 only), which is the
    flexibility gap Table 1 shows. Checker entries in the trace are
    ignored. *)

open Pmtest_trace
module Report = Pmtest_core.Report

type t

val create : size:int -> t
(** Shadow the PM address range [\[0, size)]. *)

val sink : t -> Sink.t
(** Attach to an instrumented program; processes operations inline (on
    the program's critical path, as binary instrumentation does). *)

val result : t -> Report.t
(** Finalize: sweep the shadow for bytes still not persisted and return
    all diagnostics. *)

val bytes_tracked : t -> int

val unpersisted_ranges : t -> (int * int) list
(** Maximal runs [(addr, size)] of bytes that are not guaranteed durable
    at this point (still dirty, or flushed with no fence yet) — the byte
    set behind the final {!Report.Not_persisted} sweep, exposed so the
    differential fuzzer can compare it against the engine's
    persist-interval table without parsing messages. *)
