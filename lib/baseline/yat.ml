open Pmtest_trace
module Model = Pmtest_model.Model
module Machine = Pmtest_pmem.Machine

type outcome = {
  crash_points : int;
  states_tested : int;
  violations : int;
  first_violation : (int * bytes) option;
  exhaustive : bool;
}

let replay_op m = function
  | Model.Write { addr; size } ->
    (* The trace records address and size, not payload; replaying for the
       oracle uses the machine the program actually ran on, so [run]
       threads payloads through by re-executing against a scratch device:
       writes store a recognizable pattern derived from the trace position
       when no machine-coupled payload is available. This function is used
       by the tests through [Instrumented] programs whose stores were
       already applied; here we only reproduce dirtiness, so the durable
       images distinguish "old" from "new" bytes. *)
    Machine.store m ~addr (Bytes.make size '\xff')
  | Model.Clwb { addr; size } -> Machine.clwb m ~addr ~size
  | Model.Sfence -> Machine.sfence m
  | Model.Ofence -> Machine.ofence m
  | Model.Dfence -> Machine.dfence m
  (* A global persist barrier drains every host's pending persists —
     on a single simulated device that is the dfence's persist-all. *)
  | Model.Gpf -> Machine.dfence m

let replay m entries =
  Array.iter
    (fun (e : Event.t) -> match e.kind with Event.Op op -> replay_op m op | _ -> ())
    entries

let fresh_machine ~size = Machine.create ~track_versions:true ~size ()

let crash_images_at ~size ~at ?(limit = 65536) entries =
  let m = fresh_machine ~size in
  let upto = min (at + 1) (Array.length entries) in
  for i = 0 to upto - 1 do
    match entries.(i).Event.kind with Event.Op op -> replay_op m op | _ -> ()
  done;
  let images = ref [] in
  let exhaustive = Machine.iter_crash_states ~limit m (fun img -> images := Bytes.copy img :: !images) in
  (List.rev !images, exhaustive)

let is_crash_point ~every_op (e : Event.t) =
  match e.Event.kind with
  | Event.Op op -> every_op || Model.is_fence op
  | _ -> false

let run ?(limit_per_point = 65536) ?(every_op = true) ~size ~check entries =
  let m = fresh_machine ~size in
  let crash_points = ref 0 in
  let states = ref 0 in
  let violations = ref 0 in
  let first_violation = ref None in
  let exhaustive = ref true in
  let test_point idx =
    incr crash_points;
    let ok =
      Machine.iter_crash_states ~limit:limit_per_point m (fun img ->
          incr states;
          if not (check img) then begin
            incr violations;
            if !first_violation = None then first_violation := Some (idx, Bytes.copy img)
          end)
    in
    if not ok then exhaustive := false
  in
  Array.iteri
    (fun idx (e : Event.t) ->
      (match e.Event.kind with Event.Op op -> replay_op m op | _ -> ());
      if is_crash_point ~every_op e then test_point idx)
    entries;
  test_point (Array.length entries);
  {
    crash_points = !crash_points;
    states_tested = !states;
    violations = !violations;
    first_violation = !first_violation;
    exhaustive = !exhaustive;
  }

let estimated_states ~size entries =
  (* One crash point after every operation, as [run] models by default. *)
  let m = fresh_machine ~size in
  let total = ref 0.0 in
  Array.iter
    (fun (e : Event.t) ->
      match e.Event.kind with
      | Event.Op op ->
        replay_op m op;
        total := !total +. Machine.crash_state_count m
      | _ -> ())
    entries;
  total := !total +. Machine.crash_state_count m;
  !total

type live = {
  machine : Machine.t;
  check : bytes -> bool;
  limit_per_point : int;
  mutable l_crash_points : int;
  mutable l_states : int;
  mutable l_violations : int;
  mutable l_first : (int * bytes) option;
  mutable l_exhaustive : bool;
  mutable seq : int;
}

let live_test_point l =
  l.l_crash_points <- l.l_crash_points + 1;
  let ok =
    Machine.iter_crash_states ~limit:l.limit_per_point l.machine (fun img ->
        l.l_states <- l.l_states + 1;
        if not (l.check img) then begin
          l.l_violations <- l.l_violations + 1;
          if l.l_first = None then l.l_first <- Some (l.seq, Bytes.copy img)
        end)
  in
  if not ok then l.l_exhaustive <- false

let attach ?(limit_per_point = 65536) ~machine ~check () =
  if not (Machine.track_versions machine) then
    invalid_arg "Yat.attach: machine must be created with ~track_versions:true";
  let l =
    {
      machine;
      check;
      limit_per_point;
      l_crash_points = 0;
      l_states = 0;
      l_violations = 0;
      l_first = None;
      l_exhaustive = true;
      seq = 0;
    }
  in
  let emit kind _loc =
    l.seq <- l.seq + 1;
    match (kind : Event.kind) with
    | Event.Op _ ->
      (* The instrumented program applies the op to the machine before
         notifying the sink, so the machine state is current here; a crash
         is modelled after every operation — Yat's exhaustive discipline. *)
      live_test_point l
    | _ -> ()
  in
  (l, { Sink.emit })

let live_outcome l =
  live_test_point l;
  {
    crash_points = l.l_crash_points;
    states_tested = l.l_states;
    violations = l.l_violations;
    first_violation = l.l_first;
    exhaustive = l.l_exhaustive;
  }

let sample_crash_image ~size ~at rng entries =
  let m = fresh_machine ~size in
  let upto = min (at + 1) (Array.length entries) in
  for i = 0 to upto - 1 do
    match entries.(i).Event.kind with Event.Op op -> replay_op m op | _ -> ()
  done;
  Machine.sample_crash_state m rng
