open Pmtest_util
open Pmtest_model
open Pmtest_trace
module Report = Pmtest_core.Report

(* Eager intervals: fences walk the whole shadow and close them in place. *)
type status = {
  lo : int;
  hi : int;
  mutable persist : Interval.t;
  mutable flush : Interval.t option;
  write_loc : Loc.t;
}

type state = {
  model : Model.kind;
  mutable now : int;
  mutable shadow : status list; (* disjoint ranges, unordered *)
  mutable excluded : (int * int) list;
  mutable log : (int * int) list; (* TX_ADD ranges, newest first *)
  mutable tx_depth : int;
  mutable scope_active : bool;
  mutable scope_writes : (int * int * Loc.t) list;
  diags : Report.diagnostic Vec.t;
  mutable entries : int;
  mutable ops : int;
  mutable checkers : int;
}

let diag st kind loc fmt =
  Format.kasprintf (fun message -> Vec.push st.diags { Report.kind; loc; message }) fmt

(* Subranges of [lo,hi) that are not excluded — O(#excluded) per query. *)
let effective st ~lo ~hi =
  let cut segs (xlo, xhi) =
    List.concat_map
      (fun (slo, shi) ->
        if xhi <= slo || shi <= xlo then [ (slo, shi) ]
        else
          (if slo < xlo then [ (slo, xlo) ] else [])
          @ if xhi < shi then [ (xhi, shi) ] else [])
      segs
  in
  List.fold_left cut [ (lo, hi) ] st.excluded

(* Split every shadow status at the boundaries of [lo,hi) so that each
   status is either fully inside or fully outside the range. *)
let split_at st ~lo ~hi =
  st.shadow <-
    List.concat_map
      (fun s ->
        if s.hi <= lo || hi <= s.lo then [ s ]
        else
          let piece plo phi = { s with lo = plo; hi = phi } in
          List.filter_map
            (fun (plo, phi) -> if phi > plo then Some (piece plo phi) else None)
            [ (s.lo, max s.lo lo); (max s.lo lo, min s.hi hi); (min s.hi hi, s.hi) ])
      st.shadow

let inside s ~lo ~hi = s.lo >= lo && s.hi <= hi

let covered_by_log st ~lo ~hi =
  (* Union of log ranges covers [lo,hi)? Naive sweep. *)
  let pieces =
    List.sort compare (List.filter (fun (a, b) -> a < hi && lo < b) st.log)
  in
  let rec walk cursor = function
    | [] -> cursor >= hi
    | (a, b) :: rest -> if a > cursor then false else walk (max cursor b) rest
  in
  walk lo pieces

let on_write st loc ~addr ~size =
  if st.model = Model.Eadr then st.now <- st.now + 1;
  List.iter
    (fun (lo, hi) ->
      if st.tx_depth > 0 && st.scope_active && not (covered_by_log st ~lo ~hi) then
        diag st Report.Missing_log loc
          "persistent object [0x%x,+%d) modified inside a transaction without a backup log entry"
          lo (hi - lo);
      if st.scope_active then
        (* Keep scope ranges disjoint (the newest write owns the bytes),
           mirroring the production engine's interval-map semantics. *)
        st.scope_writes <-
          (lo, hi, loc)
          :: List.concat_map
               (fun (a, b, l) ->
                 if hi <= a || b <= lo then [ (a, b, l) ]
                 else
                   (if a < lo then [ (a, lo, l) ] else [])
                   @ if hi < b then [ (hi, b, l) ] else [])
               st.scope_writes)
    (effective st ~lo:addr ~hi:(addr + size));
  (* As in the production engine, the shadow records the store across the
     full range, exclusion holes included: holes gate diagnostics, not
     history. *)
  let lo = addr and hi = addr + size in
  split_at st ~lo ~hi;
  st.shadow <- List.filter (fun s -> not (inside s ~lo ~hi)) st.shadow;
  let persist =
    match st.model with
    | Model.Eadr -> Interval.make ~lo:(st.now - 1) ~hi:st.now
    | Model.X86 | Model.Hops | Model.Cxl -> Interval.make_open st.now
  in
  st.shadow <- { lo; hi; persist; flush = None; write_loc = loc } :: st.shadow

let on_clwb st loc ~addr ~size =
  let unnecessary = ref false and duplicate = ref false in
  List.iter
    (fun (lo, hi) ->
      split_at st ~lo ~hi;
      let covered = ref [] in
      List.iter
        (fun s ->
          if inside s ~lo ~hi then begin
            covered := (s.lo, s.hi) :: !covered;
            match s.flush with
            | None -> s.flush <- Some (Interval.make_open st.now)
            | Some _ -> duplicate := true
          end)
        st.shadow;
      (* Any byte of the range with no status at all was never written. *)
      let rec walk cursor = function
        | [] -> if cursor < hi then unnecessary := true
        | (a, b) :: rest ->
          if a > cursor then unnecessary := true;
          walk (max cursor b) rest
      in
      walk lo (List.sort compare !covered))
    (effective st ~lo:addr ~hi:(addr + size));
  if !unnecessary then
    diag st Report.Unnecessary_writeback loc "writeback of unmodified data at [0x%x,+%d)" addr size;
  if !duplicate then
    diag st Report.Duplicate_writeback loc "persistent object [0x%x,+%d) written back more than once"
      addr size

(* Eager closing: the whole shadow is swept at every ordering point. *)
let on_sfence st =
  st.now <- st.now + 1;
  List.iter
    (fun s ->
      match s.flush with
      | Some fi when Interval.is_open fi ->
        s.flush <- Some (Interval.close fi st.now);
        if Interval.is_open s.persist then s.persist <- Interval.close s.persist st.now
      | _ -> ())
    st.shadow

let on_dfence st =
  st.now <- st.now + 1;
  List.iter
    (fun s -> if Interval.is_open s.persist then s.persist <- Interval.close s.persist st.now)
    st.shadow

let statuses_in st ~addr ~size =
  List.concat_map
    (fun (lo, hi) -> List.filter (fun s -> s.lo < hi && lo < s.hi) st.shadow)
    (effective st ~lo:addr ~hi:(addr + size))

let on_is_persist st loc ~addr ~size =
  match List.find_opt (fun s -> not (Interval.ends_by s.persist st.now)) (statuses_in st ~addr ~size) with
  | None -> ()
  | Some s ->
    diag st Report.Not_persisted loc
      "isPersist(0x%x,%d): write at %s to [0x%x,+%d) has persist interval %a at timestamp %d" addr
      size (Loc.to_string s.write_loc) s.lo (s.hi - s.lo) Interval.pp s.persist st.now

let on_is_ordered_before st loc ~a_addr ~a_size ~b_addr ~b_size =
  let a_statuses = statuses_in st ~addr:a_addr ~size:a_size in
  let b_statuses = statuses_in st ~addr:b_addr ~size:b_size in
  let ordered sa sb =
    match st.model with
    | Model.X86 | Model.Eadr | Model.Cxl -> Interval.ordered_before sa.persist sb.persist
    | Model.Hops -> Interval.starts_before sa.persist sb.persist
  in
  if
    List.exists (fun sa -> List.exists (fun sb -> not (ordered sa sb)) b_statuses) a_statuses
  then
    diag st Report.Not_ordered loc "isOrderedBefore(0x%x,%d,0x%x,%d) failed" a_addr a_size b_addr
      b_size

let on_tx_checker_end st loc =
  if st.tx_depth > 0 then
    diag st Report.Incomplete_tx loc "transaction still open at TX_CHECKER_END";
  List.iter
    (fun (lo, hi, wloc) ->
      List.iter
        (fun (elo, ehi) ->
          List.iter
            (fun s ->
              if s.lo < ehi && elo < s.hi && not (Interval.ends_by s.persist st.now) then
                diag st Report.Incomplete_tx loc
                  "transaction update at %s not persisted when the checker scope ends"
                  (Loc.to_string wloc))
            st.shadow)
        (effective st ~lo ~hi))
    (List.rev st.scope_writes);
  st.scope_active <- false;
  st.scope_writes <- []

let on_entry st (e : Event.t) =
  st.entries <- st.entries + 1;
  let loc = e.Event.loc in
  match e.Event.kind with
  | Event.Op op ->
    st.ops <- st.ops + 1;
    if not (Model.valid_op st.model op) then
      diag st Report.Invalid_op loc "operation %a is not part of the %s persistency model"
        Model.pp_op op (Model.kind_name st.model)
    else begin
      match op with
      | Model.Write { addr; size } -> on_write st loc ~addr ~size
      | Model.Clwb { addr; size } ->
        if st.model = Model.Eadr then
          diag st Report.Unnecessary_writeback loc
            "writeback of [0x%x,+%d) is redundant under eADR (caches are persistent)" addr size
        else on_clwb st loc ~addr ~size
      | Model.Sfence -> if st.model <> Model.Eadr then on_sfence st
      | Model.Ofence -> st.now <- st.now + 1
      (* A global persist barrier drains every pending persist — exactly
         the dfence's eager close-all sweep. *)
      | Model.Dfence | Model.Gpf -> on_dfence st
    end
  | Event.Checker c -> begin
    st.checkers <- st.checkers + 1;
    match c with
    | Event.Is_persist { addr; size } -> on_is_persist st loc ~addr ~size
    | Event.Is_ordered_before { a_addr; a_size; b_addr; b_size } ->
      on_is_ordered_before st loc ~a_addr ~a_size ~b_addr ~b_size
  end
  | Event.Tx tx -> begin
    match tx with
    | Event.Tx_begin ->
      if st.tx_depth = 0 then st.log <- [];
      st.tx_depth <- st.tx_depth + 1
    | Event.Tx_add { addr; size } ->
      if st.log <> [] && covered_by_log st ~lo:addr ~hi:(addr + size) then
        diag st Report.Duplicate_log loc "persistent object [0x%x,+%d) logged more than once" addr
          size;
      st.log <- (addr, addr + size) :: st.log
    | Event.Tx_commit | Event.Tx_abort ->
      st.tx_depth <- max 0 (st.tx_depth - 1);
      if st.tx_depth = 0 then st.log <- []
    | Event.Tx_checker_start ->
      st.scope_active <- true;
      st.scope_writes <- []
    | Event.Tx_checker_end -> on_tx_checker_end st loc
  end
  | Event.Control (Event.Exclude { addr; size }) ->
    st.excluded <- (addr, addr + size) :: st.excluded
  | Event.Control (Event.Include { addr; size }) ->
    (* Naive: subtract the range from every exclusion. *)
    st.excluded <-
      List.concat_map
        (fun (xlo, xhi) ->
          if addr + size <= xlo || xhi <= addr then [ (xlo, xhi) ]
          else
            (if xlo < addr then [ (xlo, addr) ] else [])
            @ if addr + size < xhi then [ (addr + size, xhi) ] else [])
        st.excluded
  | Event.Control (Event.Lint_off _ | Event.Lint_on _) -> ()

let check ?(model = Model.X86) entries =
  let st =
    {
      model;
      now = 0;
      shadow = [];
      excluded = [];
      log = [];
      tx_depth = 0;
      scope_active = false;
      scope_writes = [];
      diags = Vec.create ();
      entries = 0;
      ops = 0;
      checkers = 0;
    }
  in
  Array.iter (on_entry st) entries;
  {
    Report.diagnostics = Vec.to_list st.diags;
    entries = st.entries;
    ops = st.ops;
    checkers = st.checkers;
  }
