open Pmtest_util
open Pmtest_trace
module Model = Pmtest_model.Model
module Report = Pmtest_core.Report

(* Per-byte shadow states, one char per PM byte. *)
let st_clean = '\000' (* never stored, or store persisted *)
let st_dirty = '\001' (* stored, no flush yet *)
let st_flushed = '\002' (* flushed, fence pending *)

type t = {
  shadow : Bytes.t;
  (* Bytes covered by undo-log entries of the open transaction. *)
  logged : Bytes.t;
  (* Ranges in the flushed state, cleared at the next fence — the real
     tool's pending-store list. *)
  flushed_ranges : (int * int) Vec.t;
  diags : Report.diagnostic Vec.t;
  mutable entries : int;
  mutable ops : int;
  mutable tx_depth : int;
  mutable last_store_loc : Loc.t;
}

let create ~size =
  {
    shadow = Bytes.make size st_clean;
    logged = Bytes.make size '\000';
    flushed_ranges = Vec.create ();
    diags = Vec.create ();
    entries = 0;
    ops = 0;
    tx_depth = 0;
    last_store_loc = Loc.none;
  }

let bytes_tracked t = Bytes.length t.shadow

let diag t kind loc fmt =
  Format.kasprintf (fun message -> Vec.push t.diags { Report.kind; loc; message }) fmt

let in_range t addr size = addr >= 0 && size > 0 && addr + size <= Bytes.length t.shadow

let on_store t loc ~addr ~size =
  if in_range t addr size then begin
    t.last_store_loc <- loc;
    let missing_log = ref false in
    for i = addr to addr + size - 1 do
      if t.tx_depth > 0 && Bytes.get t.logged i = '\000' then missing_log := true;
      Bytes.set t.shadow i st_dirty
    done;
    if !missing_log then
      diag t Report.Missing_log loc
        "store to [0x%x,+%d) inside a transaction without an undo-log backup" addr size
  end

let on_flush t loc ~addr ~size =
  if in_range t addr size then begin
    let redundant = ref false and unneeded = ref false in
    for i = addr to addr + size - 1 do
      let s = Bytes.get t.shadow i in
      if s = st_dirty then Bytes.set t.shadow i st_flushed
      else if s = st_flushed then redundant := true
      else unneeded := true
    done;
    Vec.push t.flushed_ranges (addr, size);
    if !redundant then
      diag t Report.Duplicate_writeback loc "redundant flush of [0x%x,+%d)" addr size;
    if !unneeded then
      diag t Report.Unnecessary_writeback loc "flush of unmodified bytes in [0x%x,+%d)" addr
        size
  end

let on_fence t =
  (* Walk the pending-flush list, byte by byte, like the real tool's
     per-store processing at fences. *)
  Vec.iter
    (fun (addr, size) ->
      for i = addr to addr + size - 1 do
        if Bytes.get t.shadow i = st_flushed then Bytes.set t.shadow i st_clean
      done)
    t.flushed_ranges;
  Vec.clear t.flushed_ranges

let on_tx_add t loc ~addr ~size =
  if in_range t addr size then begin
    let dup = ref true in
    for i = addr to addr + size - 1 do
      if Bytes.get t.logged i = '\000' then dup := false;
      Bytes.set t.logged i '\001'
    done;
    if !dup then diag t Report.Duplicate_log loc "range [0x%x,+%d) logged twice" addr size
  end

let on_entry t kind loc =
  t.entries <- t.entries + 1;
  match (kind : Event.kind) with
  | Event.Op op -> begin
    t.ops <- t.ops + 1;
    match op with
    | Model.Write { addr; size } -> on_store t loc ~addr ~size
    | Model.Clwb { addr; size } -> on_flush t loc ~addr ~size
    | Model.Sfence | Model.Dfence | Model.Gpf -> on_fence t
    | Model.Ofence -> ()
  end
  | Event.Tx Event.Tx_begin -> t.tx_depth <- t.tx_depth + 1
  | Event.Tx (Event.Tx_add { addr; size }) -> on_tx_add t loc ~addr ~size
  | Event.Tx (Event.Tx_commit | Event.Tx_abort) ->
    t.tx_depth <- max 0 (t.tx_depth - 1);
    if t.tx_depth = 0 then Bytes.fill t.logged 0 (Bytes.length t.logged) '\000'
  | Event.Tx (Event.Tx_checker_start | Event.Tx_checker_end)
  | Event.Checker _ | Event.Control _ ->
    (* Pmemcheck has no programmable checkers: annotations are ignored. *)
    ()

let sink t = { Sink.emit = (fun kind loc -> on_entry t kind loc) }

let unpersisted_ranges t =
  let runs = ref [] in
  let n = Bytes.length t.shadow in
  let i = ref 0 in
  while !i < n do
    if Bytes.get t.shadow !i <> st_clean then begin
      let start = !i in
      while !i < n && Bytes.get t.shadow !i <> st_clean do
        incr i
      done;
      runs := (start, !i - start) :: !runs
    end
    else incr i
  done;
  List.rev !runs

let result t =
  (* Final sweep: anything still dirty or flushed-but-not-fenced was never
     made durable. Report contiguous runs, like the real tool's
     "N bytes not made persistent" summary. *)
  let diags = Vec.create () in
  Vec.iter (fun d -> Vec.push diags d) t.diags;
  let n = Bytes.length t.shadow in
  let i = ref 0 in
  while !i < n do
    if Bytes.get t.shadow !i <> st_clean then begin
      let start = !i in
      while !i < n && Bytes.get t.shadow !i <> st_clean do
        incr i
      done;
      Vec.push diags
        {
          Report.kind = Report.Not_persisted;
          loc = t.last_store_loc;
          message =
            Printf.sprintf "%d byte(s) at [0x%x,+%d) not made persistent by end of run"
              (!i - start) start (!i - start);
        }
    end
    else incr i
  done;
  { Report.diagnostics = Vec.to_list diags; entries = t.entries; ops = t.ops; checkers = 0 }
