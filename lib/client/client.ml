open Pmtest_util
open Pmtest_trace
open Pmtest_itree
module Model = Pmtest_model.Model
module Report = Pmtest_core.Report
module Obs = Pmtest_obs.Obs
module Wire = Pmtest_wire.Wire

type t = {
  fd : Unix.file_descr;
  (* Buffered reply reader; replies are rare (hello-ack, reports) but
     the buffer also means a report arriving back-to-back with an [Err]
     is never half-lost to a short read. *)
  reader : Wire.reader;
  session : int;
  model : Model.kind;
  max_inflight : int;
  policy : Wire.policy;
  (* Last Prelude payload on the wire; re-sent only on change, so a
     section stream with a stable exclusion scope costs one extra frame
     total, not one per section. *)
  mutable sent_prelude : string;
  mutable closed : bool;
}

let err_of = Wire.error_to_string

let encode_prelude events =
  let p = Packed.of_events events in
  let s = Packed.encode_wire p in
  Packed.free p;
  s

let empty_prelude = lazy (encode_prelude [||])

let connect ?(model = Model.X86) ~socket () =
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 with
  | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
  | fd -> (
    match Unix.connect fd (ADDR_UNIX socket) with
    | exception Unix.Unix_error (e, _, _) ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      Error (Printf.sprintf "cannot connect to %s: %s" socket (Unix.error_message e))
    | () -> (
      let fail msg =
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error msg
      in
      let reader = Wire.reader fd in
      match Wire.write_frame fd Wire.Hello (Wire.encode_hello ~model) with
      | Error e -> fail (err_of e)
      | Ok () -> (
        match Wire.read_one reader with
        | Error e -> fail (err_of e)
        | Ok (Wire.Err, payload) ->
          fail
            (match Wire.decode_err payload with
            | Ok m -> "server refused session: " ^ m
            | Error e -> err_of e)
        | Ok (Wire.Hello_ack, payload) -> (
          match Wire.decode_hello_ack payload with
          | Error e -> fail (err_of e)
          | Ok (session, max_inflight, policy) ->
            Ok
              {
                fd;
                reader;
                session;
                model;
                max_inflight;
                policy;
                sent_prelude = Lazy.force empty_prelude;
                closed = false;
              })
        | Ok (kind, _) -> fail (Printf.sprintf "unexpected %s frame" (Wire.kind_name kind)))))

(* Exponential backoff with full-range jitter (0.5x..1.5x of the
   nominal delay): workers of one farm that all lose the coordinator at
   once must not reconnect in lockstep. *)
let connect_retry ?model ?(attempts = 8) ?(base_delay = 0.05) ?(max_delay = 2.0) ?on_retry
    ~socket () =
  if attempts < 1 then invalid_arg "Client.connect_retry: attempts < 1";
  let rng = Random.State.make_self_init () in
  let rec go n delay =
    match connect ?model ~socket () with
    | Ok _ as ok -> ok
    | Error e ->
      if n + 1 >= attempts then
        Error (Printf.sprintf "%s (after %d attempt(s))" e attempts)
      else begin
        let jittered = delay *. (0.5 +. Random.State.float rng 1.0) in
        (match on_retry with Some f -> f ~attempt:(n + 1) ~delay:jittered e | None -> ());
        (try Unix.sleepf jittered with Unix.Unix_error _ -> ());
        go (n + 1) (Float.min max_delay (delay *. 2.0))
      end
  in
  go 0 base_delay

let session_id t = t.session
let model t = t.model
let max_inflight t = t.max_inflight
let policy t = t.policy

let check_open t = if t.closed then Error "client already closed" else Ok ()

let ( let* ) r f = match r with Error _ as e -> e | Ok v -> f v

let write t kind payload =
  match Wire.write_frame t.fd kind payload with
  | Ok () -> Ok ()
  | Error e ->
    t.closed <- true;
    Error (err_of e)

let sync_prelude t prelude =
  let payload = encode_prelude prelude in
  if String.equal payload t.sent_prelude then Ok ()
  else
    let* () = write t Wire.Prelude payload in
    t.sent_prelude <- payload;
    Ok ()

let send_packed ?(prelude = [||]) t p =
  let* () = check_open t in
  let* () = sync_prelude t prelude in
  let payload = Packed.encode_wire p in
  Packed.free p;
  write t Wire.Section payload

let send_events ?prelude t events =
  if Array.length events = 0 then Ok () else send_packed ?prelude t (Packed.of_events events)

let get_result t =
  let* () = check_open t in
  let* () = write t Wire.Get_result "" in
  match Wire.read_one t.reader with
  | Error e ->
    t.closed <- true;
    Error (err_of e)
  | Ok (Wire.Report_frame, payload) -> (
    match Wire.decode_report payload with Ok r -> Ok r | Error e -> Error (err_of e))
  | Ok (Wire.Err, payload) -> (
    t.closed <- true;
    match Wire.decode_err payload with
    | Ok m -> Error ("server error: " ^ m)
    | Error e -> Error (err_of e))
  | Ok (kind, _) ->
    t.closed <- true;
    Error (Printf.sprintf "unexpected %s frame" (Wire.kind_name kind))

let close t =
  if not t.closed then begin
    ignore (Wire.write_frame t.fd Wire.Bye "");
    t.closed <- true
  end;
  try Unix.close t.fd with Unix.Unix_error _ -> ()

(* --- Remote tracing session ---------------------------------------------- *)

(* Mirrors [Pmtest]'s session logic — per-thread packed builders, a live
   exclusion scope whose preamble is announced ahead of each section —
   so a workload attached to a daemon earns byte-for-byte the report an
   in-process [Pmtest] session over the same events would.  The one
   difference is where the preamble travels: as a [Prelude] frame
   (deduplicated by {!sync_prelude}) instead of a boxed prefix. *)
module Session = struct
  type nonrec conn = t

  type t = {
    conn : conn;
    obs : Obs.t;
    builders : (int, Builder.t) Hashtbl.t;
    mutex : Mutex.t;
    mutable excluded : unit Interval_map.t;
    mutable error : string option;
  }

  let make ?(obs = Obs.disabled) conn =
    let s =
      {
        conn;
        obs;
        builders = Hashtbl.create 8;
        mutex = Mutex.create ();
        excluded = Interval_map.empty;
        error = None;
      }
    in
    Hashtbl.replace s.builders 0 (Builder.create ~thread:0 ~packed:true ~obs ());
    s

  let with_lock s f =
    Mutex.lock s.mutex;
    Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) f

  let builder s thread =
    with_lock s (fun () ->
        match Hashtbl.find_opt s.builders thread with
        | Some b -> b
        | None ->
          let b = Builder.create ~thread ~packed:true ~obs:s.obs () in
          Hashtbl.replace s.builders thread b;
          b)

  let sink ?(thread = 0) s = Sink.observed s.obs (Builder.sink (builder s thread))

  let emit ?(thread = 0) ?(loc = Loc.none) s kind =
    if Obs.enabled s.obs then Obs.event_traced s.obs;
    Builder.emit (builder s thread) kind loc

  let note_error s = function
    | Ok () -> ()
    | Error msg -> with_lock s (fun () -> if s.error = None then s.error <- Some msg)

  let send_trace ?(thread = 0) s =
    let b = builder s thread in
    let p = Builder.take_packed b in
    if Packed.count p = 0 then begin
      Packed.free p;
      if Obs.enabled s.obs then Obs.section_dropped s.obs
    end
    else begin
      (* Preamble reflects the scope {e before} this section's own
         controls — same order of operations as [Pmtest.send_trace]. *)
      let preamble =
        with_lock s (fun () ->
            let preamble =
              List.rev
                (Interval_map.fold
                   (fun lo hi () acc ->
                     Event.make ~thread
                       (Event.Control (Event.Exclude { addr = lo; size = hi - lo }))
                     :: acc)
                   s.excluded [])
            in
            if Packed.has_scope_controls p then
              Packed.iter p (fun (v : Packed.view) ->
                  match v.Packed.tag with
                  | Packed.T_exclude ->
                    s.excluded <-
                      Interval_map.set s.excluded ~lo:v.Packed.a ~hi:(v.Packed.a + v.Packed.b) ()
                  | Packed.T_include ->
                    s.excluded <-
                      Interval_map.clear s.excluded ~lo:v.Packed.a ~hi:(v.Packed.a + v.Packed.b)
                  | _ -> ());
            preamble)
      in
      note_error s (send_packed ~prelude:(Array.of_list preamble) s.conn p)
    end

  let finish s =
    let threads = with_lock s (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) s.builders []) in
    List.iter (fun thread -> send_trace ~thread s) threads;
    match with_lock s (fun () -> s.error) with
    | Some msg -> Error msg
    | None -> get_result s.conn
end
