(** Client side of the [pmtestd] framed protocol.

    A {!t} is one session on a remote daemon: connect with a
    persistency model, stream packed sections, fetch the aggregate
    report.  All calls are blocking and single-threaded per connection;
    errors are [Error msg] results (and mark the client closed when the
    transport is gone), never exceptions. *)

open Pmtest_trace
module Model = Pmtest_model.Model
module Report = Pmtest_core.Report
module Wire = Pmtest_wire.Wire

type t

val connect : ?model:Model.kind -> socket:string -> unit -> (t, string) result
(** Dial the daemon's Unix socket and run the [Hello]/[Hello_ack]
    handshake. *)

val connect_retry :
  ?model:Model.kind ->
  ?attempts:int ->
  ?base_delay:float ->
  ?max_delay:float ->
  ?on_retry:(attempt:int -> delay:float -> string -> unit) ->
  socket:string ->
  unit ->
  (t, string) result
(** {!connect} with exponential backoff: after a failure, sleep
    [base_delay] (default 50 ms) doubling up to [max_delay] (default
    2 s), each sleep jittered to 0.5x..1.5x so a fleet of workers that
    lost their coordinator together does not reconnect in lockstep.
    Gives up after [attempts] (default 8) tries; [on_retry] fires
    before each sleep with the upcoming delay and the error just
    seen. *)

val session_id : t -> int
val model : t -> Model.kind

val max_inflight : t -> int
val policy : t -> Wire.policy
(** The backpressure contract the server announced in its ack. *)

val send_packed : ?prelude:Event.t array -> t -> Packed.t -> (unit, string) result
(** Ship one section.  Consumes the arena (freed after encoding).
    [prelude] is the session's current exclusion preamble; it travels
    as a separate [Prelude] frame and only when it differs from the
    last one sent. *)

val send_events : ?prelude:Event.t array -> t -> Event.t array -> (unit, string) result
(** Boxed convenience over {!send_packed}; empty sections are skipped. *)

val get_result : t -> (Report.t, string) result
(** [PMTest_GET_RESULT] over the wire: blocks until the daemon has
    checked every section this session sent, returns the session
    aggregate. *)

val close : t -> unit
(** Send [Bye] (best effort) and close the socket. *)

(** A full tracing session against a remote daemon — the [attach]-side
    mirror of {!Pmtest_core.Pmtest}: per-thread packed builders, live
    exclusion scope, preamble announced before each section.  Transport
    errors are latched and reported by [finish]. *)
module Session : sig
  type conn = t
  type t

  val make : ?obs:Pmtest_obs.Obs.t -> conn -> t
  val sink : ?thread:int -> t -> Sink.t
  val emit : ?thread:int -> ?loc:Pmtest_util.Loc.t -> t -> Event.kind -> unit

  val send_trace : ?thread:int -> t -> unit
  (** Hand the thread's accumulated section to the daemon
      ([PMTest_SEND_TRACE]). *)

  val finish : t -> (Report.t, string) result
  (** Flush every thread's pending section and fetch the aggregate. *)
end
