(** pmfarm: fault-tolerant distributed campaigns over the wire protocol.

    A {e coordinator} splits one campaign (fuzz, crashfs or litmus)
    into jobs — contiguous seed (or suite-index) ranges — and serves
    them to {e workers} over the protocol-version-2 farm frame family
    ({!Pmtest_wire.Wire}): [Worker_hello] handshake, [Job_offer] /
    [Job_claim] / [Job_result] per chunk, [Checkpoint] heartbeats.

    Fault tolerance rests on three properties:

    - {e Jobs are pure.} A job is [(spec, lo, hi)] and nothing else;
      {!run_units} derives everything from it deterministically, so any
      worker can run any job, any number of times, with an identical
      result digest. A digest mismatch between two attempts of one job
      is flagged as nondeterminism, never silently resolved.
    - {e Loss is recovery.} A worker that disconnects, times out its
      heartbeat, or is SIGKILLed simply returns its in-flight jobs to
      the pending queue (attempt + 1). Stolen duplicates of slow jobs
      land on idle workers; whichever attempt reports first wins and
      the loser's digest is compared.
    - {e The checkpoint is the campaign.} Every completed job is
      appended to an atomically-rewritten on-disk checkpoint, so a
      SIGKILLed coordinator resumes from its last result with the same
      eventual finding set and per-job digests as an uninterrupted run.

    Findings travel back as full reproducer texts inside [Job_result]
    and are deduplicated by content digest into a single triage
    directory. *)

module Model = Pmtest_model.Model
module Obs = Pmtest_obs.Obs
module Crashfs = Pmtest_crashfs.Crashfs

(** {1 Campaign specs} *)

module Spec : sig
  type kind = Fuzz | Crashfs | Litmus

  type t = {
    kind : kind;
    model : Model.kind;
    fs : Crashfs.fs_kind;  (** Crashfs campaigns only. *)
    fault : string option;  (** Seeded crashfs fault (canonical name). *)
    seed : int;  (** Base seed ([Litmus]: base suite index). *)
    count : int;  (** Total units (programs / runs / tests). *)
    chunk : int;  (** Units per job. *)
    max_ops : int option;  (** Generator / workload op bound. *)
  }

  val kind_name : kind -> string
  val kind_of_name : string -> kind option

  val fuzz : ?max_ops:int -> model:Model.kind -> seed:int -> count:int -> chunk:int -> unit -> t

  val crashfs :
    ?max_ops:int ->
    ?fault:string ->
    fs:Crashfs.fs_kind ->
    model:Model.kind ->
    seed:int ->
    count:int ->
    chunk:int ->
    unit ->
    t

  val litmus : chunk:int -> unit -> t
  (** The whole curated suite as index jobs over
      {!Pmtest_litmus.Suite.all}. *)

  val to_string : t -> string
  (** One line, [kind key=value...]; round-trips through
      {!of_string}. This is what travels in [Job_offer] frames and
      checkpoint files. *)

  val of_string : string -> (t, string) result
  (** Parses and {!validate}s: a spec that decodes is runnable. *)

  val validate : t -> (unit, string) result
  (** Rejects what no worker could ever run: negative seed or count
      (job ranges travel as unsigned varints), [chunk < 1], an unknown
      crashfs fault name, a fault on a non-crashfs campaign.
      {!Coordinator.run} applies this before offering any job. *)

  val jobs : t -> (int * int * int) list
  (** [(id, lo, hi)] for every job: [count] units cut into [chunk]-sized
      ranges starting at [seed], ascending [id]. *)
end

(** {1 Job execution} *)

type unit_result = {
  digest : string;  (** Deterministic outcome digest for the range. *)
  units : int;  (** Units actually run ([hi - lo]). *)
  findings : (string * string) list;  (** [(name, reproducer_text)]. *)
}

val run_units : Spec.t -> lo:int -> hi:int -> (unit_result, string) result
(** Execute one job: the campaign chunk for absolute range [\[lo, hi)].
    Pure in [(spec, lo, hi)] — re-running yields a byte-identical
    digest, which is what replay verification and nondeterminism
    flagging rely on. *)

(** {1 Checkpoints} *)

module Checkpoint : sig
  type done_job = { job : int; attempt : int; units : int; digest : string }

  type t = {
    spec : Spec.t;
    jobs : int;
    done_jobs : done_job list;  (** Ascending job id. *)
    findings : (string * string) list;  (** [(digest, name)], sorted. *)
    nondet : int list;  (** Jobs whose attempts disagreed. *)
  }

  val save : path:string -> t -> unit
  (** Atomic write-to-temp + rename: a crash mid-write leaves at worst
      a stray [.tmp] sibling, never a truncated checkpoint. *)

  val load : string -> (t, string) result
  val pp : Format.formatter -> t -> unit
end

(** {1 Coordinator} *)

module Coordinator : sig
  type cfg = {
    socket : string;  (** Unix socket path to listen on. *)
    spec : Spec.t;
    triage_dir : string;  (** Deduplicated reproducer store. *)
    checkpoint : string;  (** Checkpoint file path. *)
    resume : bool;  (** Load [checkpoint] and skip completed jobs. *)
    capacity : int;  (** Jobs in flight per worker. *)
    heartbeat_timeout : float;
        (** Seconds without any frame from a worker before its jobs are
            reassigned. *)
    steal_after : float;
        (** Seconds in flight before an idle worker may be offered a
            duplicate attempt of a slow job. *)
    stop_after_results : int option;
        (** Testing hook: hard-stop (as a crash would) after this many
            [Job_result] frames — the checkpoint written so far is the
            only survivor. [None] runs to completion. *)
    obs : Obs.t;
  }

  val default_cfg : spec:Spec.t -> socket:string -> dir:string -> cfg
  (** [triage_dir = dir/triage], [checkpoint = dir/checkpoint], no
      resume, capacity 1, 5 s heartbeat timeout, 2 s steal threshold. *)

  type summary = {
    jobs : int;
    jobs_done : int;  (** [< jobs] only under [stop_after_results]. *)
    digests : (int * string) list;  (** Per-job result digests. *)
    findings : (string * string) list;  (** [(digest, name)], sorted. *)
    nondet : int list;  (** Jobs flagged nondeterministic. *)
    reassigned : int;  (** Jobs recovered from lost workers. *)
    steals : int;  (** Duplicate offers onto idle workers. *)
    workers_seen : int;
  }

  val run : ?ready:(unit -> unit) -> cfg -> (summary, string) result
  (** Serve the campaign until every job is done (or the
      [stop_after_results] hook fires), then send [Bye] to every
      worker and tear down. [ready] fires once the socket is
      listening.

      [Error] on an invalid spec ({!Spec.validate}, checked before the
      socket opens), or when some job is refused ([Job_refused]) by
      workers three times — a deterministically failing job would
      otherwise bounce forever. A refused job below that cap is simply
      unassigned and requeued. *)
end

(** {1 Workers} *)

module Worker : sig
  type cfg = {
    socket : string;
    name : string;
    attempts : int;  (** Consecutive connect failures before giving up. *)
    base_delay : float;  (** Reconnect backoff start (doubles, jittered). *)
    max_delay : float;
    hb_interval : float;  (** Heartbeat period, seconds. *)
    log : string -> unit;  (** Progress lines ([ignore] to silence). *)
  }

  val default_cfg : socket:string -> name:string -> cfg
  (** 8 attempts, 50 ms..2 s backoff, 1 s heartbeats, silent. *)

  val run : cfg -> (int, string) result
  (** Serve jobs until the coordinator says [Bye]; returns jobs
      completed across all connections. Reconnects with jittered
      exponential backoff when the link drops. A job the worker cannot
      run (bad spec, unknown fault) is answered with [Job_refused] so
      the coordinator unassigns it; an undecodable offer payload is
      answered with [Err]. In both cases the connection {e survives} —
      only framing-level corruption forces a reconnect. *)
end
