module Model = Pmtest_model.Model
module Obs = Pmtest_obs.Obs
module Wire = Pmtest_wire.Wire
module Campaign = Pmtest_fuzz.Campaign
module Gen = Pmtest_fuzz.Gen
module Cross = Pmtest_fuzz.Cross
module Fuzz_repro = Pmtest_fuzz.Repro
module Crashfs = Pmtest_crashfs.Crashfs
module Litmus = Pmtest_litmus.Litmus
module Suite = Pmtest_litmus.Suite

let now () = Unix.gettimeofday ()

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    Sys.mkdir dir 0o755
  end

(* Same discipline as [Serial.save_file]: a SIGKILL mid-write leaves a
   stray [.tmp], never a torn file a resume would trip over. *)
let write_atomic path text =
  mkdir_p (Filename.dirname path);
  let tmp =
    Filename.temp_file ~temp_dir:(Filename.dirname path) (Filename.basename path ^ ".") ".tmp"
  in
  match
    let oc = open_out tmp in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)
  with
  | () -> Sys.rename tmp path
  | exception e ->
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e

(* --- Campaign specs --------------------------------------------------------- *)

module Spec = struct
  type kind = Fuzz | Crashfs | Litmus

  type t = {
    kind : kind;
    model : Model.kind;
    fs : Crashfs.fs_kind;
    fault : string option;
    seed : int;
    count : int;
    chunk : int;
    max_ops : int option;
  }

  let kind_name = function Fuzz -> "fuzz" | Crashfs -> "crashfs" | Litmus -> "litmus"

  let kind_of_name = function
    | "fuzz" -> Some Fuzz
    | "crashfs" -> Some Crashfs
    | "litmus" -> Some Litmus
    | _ -> None

  let fuzz ?max_ops ~model ~seed ~count ~chunk () =
    { kind = Fuzz; model; fs = Crashfs.Pmfs; fault = None; seed; count; chunk; max_ops }

  let crashfs ?max_ops ?fault ~fs ~model ~seed ~count ~chunk () =
    { kind = Crashfs; model; fs; fault; seed; count; chunk; max_ops }

  let litmus ~chunk () =
    {
      kind = Litmus;
      model = Model.X86;
      fs = Crashfs.Pmfs;
      fault = None;
      seed = 0;
      count = List.length Suite.all;
      chunk;
      max_ops = None;
    }

  let to_string t =
    let b = Buffer.create 64 in
    Buffer.add_string b (kind_name t.kind);
    Printf.bprintf b " model=%s fs=%s seed=%d count=%d chunk=%d" (Model.kind_name t.model)
      (Crashfs.fs_kind_name t.fs) t.seed t.count t.chunk;
    Option.iter (fun f -> Printf.bprintf b " fault=%s" f) t.fault;
    Option.iter (fun m -> Printf.bprintf b " max_ops=%d" m) t.max_ops;
    Buffer.contents b

  (* Everything [run_units] would choke on, caught before any job is
     offered: seeds travel as unsigned varints (a negative one would
     blow up mid-[encode_job_offer], under the coordinator lock), and an
     unknown fault name would make every attempt of every job fail
     worker-side. *)
  let validate t =
    if t.seed < 0 then Error "negative seed (job ranges travel as unsigned varints)"
    else if t.count < 0 then Error "negative count"
    else if t.chunk < 1 then Error "chunk < 1"
    else
      match (t.kind, t.fault) with
      | _, None -> Ok ()
      | Crashfs, Some f ->
        Result.map (fun _ -> ()) (Crashfs.with_fault (Crashfs.default_config t.fs) f)
      | (Fuzz | Litmus), Some _ ->
        Error (Printf.sprintf "fault only applies to crashfs campaigns, not %s" (kind_name t.kind))

  let of_string s =
    match String.split_on_char ' ' (String.trim s) with
    | [] | [ "" ] -> Error "empty campaign spec"
    | kind_s :: rest -> (
      match kind_of_name kind_s with
      | None -> Error (Printf.sprintf "unknown campaign kind %S" kind_s)
      | Some kind ->
        let spec =
          ref
            {
              kind;
              model = Model.X86;
              fs = Crashfs.Pmfs;
              fault = None;
              seed = 0;
              count = -1;
              chunk = -1;
              max_ops = None;
            }
        in
        let err = ref None in
        let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
        List.iter
          (fun tok ->
            if tok <> "" && !err = None then
              match String.index_opt tok '=' with
              | None -> fail "malformed spec token %S" tok
              | Some i -> (
                let key = String.sub tok 0 i in
                let value = String.sub tok (i + 1) (String.length tok - i - 1) in
                let int_val f =
                  match int_of_string_opt value with
                  | Some n -> f n
                  | None -> fail "bad integer %S for %s" value key
                in
                match key with
                | "model" -> (
                  match Model.kind_of_string value with
                  | Some m -> spec := { !spec with model = m }
                  | None -> fail "unknown model %S" value)
                | "fs" -> (
                  match Crashfs.fs_kind_of_string value with
                  | Some f -> spec := { !spec with fs = f }
                  | None -> fail "unknown fs %S" value)
                | "fault" -> spec := { !spec with fault = Some value }
                | "seed" -> int_val (fun n -> spec := { !spec with seed = n })
                | "count" -> int_val (fun n -> spec := { !spec with count = n })
                | "chunk" -> int_val (fun n -> spec := { !spec with chunk = n })
                | "max_ops" -> int_val (fun n -> spec := { !spec with max_ops = Some n })
                | _ -> fail "unknown spec key %S" key))
          rest;
        (match !err with
        | Some e -> Error e
        | None ->
          if !spec.count < 0 then Error "spec is missing count"
          else if !spec.chunk < 1 then Error "spec is missing chunk (or chunk < 1)"
          else Result.map (fun () -> !spec) (validate !spec)))

  let jobs t =
    let stop = t.seed + t.count in
    let rec go id lo acc =
      if lo >= stop then List.rev acc
      else
        let hi = min stop (lo + t.chunk) in
        go (id + 1) hi ((id, lo, hi) :: acc)
    in
    go 0 t.seed []
end

(* --- Job execution ---------------------------------------------------------- *)

type unit_result = {
  digest : string;
  units : int;
  findings : (string * string) list;
}

let fuzz_findings model (stats : Campaign.stats) =
  List.map
    (fun (f : Campaign.finding) ->
      let shrunk = { f.Campaign.program with Gen.events = f.Campaign.shrunk } in
      let name =
        Printf.sprintf "%s-seed%d-%s" (Model.kind_name model) f.Campaign.found_seed
          (String.map (fun c -> if c = '/' then '-' else c) (Cross.pair_name f.Campaign.pair))
      in
      let case =
        { Fuzz_repro.name; program = shrunk; checks = [ Fuzz_repro.Agree f.Campaign.pair ] }
      in
      (name, Fuzz_repro.case_text case))
    stats.Campaign.findings

let run_units (spec : Spec.t) ~lo ~hi =
  if hi < lo then Error "inverted job range"
  else
    match spec.Spec.kind with
    | Spec.Fuzz ->
      let base = Campaign.default_cfg spec.Spec.model in
      let gen =
        match spec.Spec.max_ops with
        | None -> base.Campaign.gen
        | Some m -> { base.Campaign.gen with Gen.max_ops = m }
      in
      let cfg = { base with Campaign.gen } in
      let stats = Campaign.run_range cfg ~lo ~hi in
      Ok
        {
          digest = Campaign.digest stats;
          units = hi - lo;
          findings = fuzz_findings spec.Spec.model stats;
        }
    | Spec.Crashfs -> (
      let config =
        { (Crashfs.default_config spec.Spec.fs) with Crashfs.model = spec.Spec.model }
      in
      let config =
        match spec.Spec.max_ops with
        | None -> config
        | Some m -> { config with Crashfs.max_ops = m }
      in
      let config =
        match spec.Spec.fault with
        | None -> Ok config
        | Some f -> Crashfs.with_fault config f
      in
      match config with
      | Error e -> Error e
      | Ok config -> (
        match Crashfs.run_range config ~lo ~hi () with
        | exception Invalid_argument e -> Error e
        | c ->
          let findings =
            List.map
              (fun (f : Crashfs.finding) ->
                let name =
                  Printf.sprintf "%s-%s-seed%d"
                    (Crashfs.fs_kind_name spec.Spec.fs)
                    (Option.value ~default:"clean" (Crashfs.fault_name config))
                    f.Crashfs.f_seed
                in
                (name, Crashfs.Repro.to_text (Crashfs.Repro.of_finding config ~name f)))
              c.Crashfs.findings
          in
          Ok { digest = Crashfs.campaign_digest c; units = hi - lo; findings }))
    | Spec.Litmus ->
      let n = List.length Suite.all in
      if lo < 0 || hi > n then
        Error (Printf.sprintf "litmus job [%d, %d) outside the %d-test suite" lo hi n)
      else
        let outcomes = Litmus.run_suite (Suite.slice ~lo ~hi) in
        let findings =
          List.filter_map
            (fun (o : Litmus.outcome) ->
              if Litmus.passed o then None
              else begin
                let b = Buffer.create 128 in
                Printf.bprintf b "# pmfarm-litmus-failure v1\n# test: %s\n"
                  o.Litmus.test.Litmus.name;
                List.iter
                  (fun (f : Litmus.failure) ->
                    Printf.bprintf b "%s: %s\n" f.Litmus.leg f.Litmus.message)
                  o.Litmus.failures;
                Some (o.Litmus.test.Litmus.name, Buffer.contents b)
              end)
            outcomes
        in
        Ok { digest = Litmus.outcomes_digest outcomes; units = hi - lo; findings }

(* --- Checkpoints ------------------------------------------------------------ *)

module Checkpoint = struct
  type done_job = { job : int; attempt : int; units : int; digest : string }

  type t = {
    spec : Spec.t;
    jobs : int;
    done_jobs : done_job list;
    findings : (string * string) list;
    nondet : int list;
  }

  let magic = "pmfarm-checkpoint v1"

  let to_text t =
    let b = Buffer.create 256 in
    Printf.bprintf b "%s\n" magic;
    Printf.bprintf b "spec %s\n" (Spec.to_string t.spec);
    Printf.bprintf b "jobs %d\n" t.jobs;
    List.iter
      (fun d -> Printf.bprintf b "done %d %d %d %s\n" d.job d.attempt d.units d.digest)
      t.done_jobs;
    List.iter (fun (dg, name) -> Printf.bprintf b "finding %s %s\n" dg name) t.findings;
    List.iter (fun j -> Printf.bprintf b "nondet %d\n" j) t.nondet;
    Buffer.contents b

  let save ~path t = write_atomic path (to_text t)

  let load path =
    match
      let ic = open_in path in
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () ->
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> ());
          List.rev !lines)
    with
    | exception Sys_error e -> Error e
    | [] -> Error (path ^ ": empty checkpoint")
    | first :: rest when String.trim first = magic ->
      let spec = ref None in
      let jobs = ref (-1) in
      let done_jobs = ref [] in
      let findings = ref [] in
      let nondet = ref [] in
      let err = ref None in
      let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
      List.iter
        (fun line ->
          if String.trim line <> "" && !err = None then
            match String.index_opt line ' ' with
            | None -> fail "malformed checkpoint line %S" line
            | Some i -> (
              let key = String.sub line 0 i in
              let rest = String.sub line (i + 1) (String.length line - i - 1) in
              match key with
              | "spec" -> (
                match Spec.of_string rest with
                | Ok s -> spec := Some s
                | Error e -> fail "bad spec: %s" e)
              | "jobs" -> (
                match int_of_string_opt rest with
                | Some n when n >= 0 -> jobs := n
                | _ -> fail "bad jobs count %S" rest)
              | "done" -> (
                match String.split_on_char ' ' rest with
                | [ j; a; u; d ] -> (
                  match (int_of_string_opt j, int_of_string_opt a, int_of_string_opt u) with
                  | Some job, Some attempt, Some units ->
                    done_jobs := { job; attempt; units; digest = d } :: !done_jobs
                  | _ -> fail "bad done line %S" rest)
                | _ -> fail "bad done line %S" rest)
              | "finding" -> (
                match String.index_opt rest ' ' with
                | Some i ->
                  findings :=
                    (String.sub rest 0 i, String.sub rest (i + 1) (String.length rest - i - 1))
                    :: !findings
                | None -> fail "bad finding line %S" rest)
              | "nondet" -> (
                match int_of_string_opt rest with
                | Some j -> nondet := j :: !nondet
                | None -> fail "bad nondet line %S" rest)
              | _ -> fail "unknown checkpoint key %S" key))
        rest;
      (match (!err, !spec) with
      | Some e, _ -> Error (path ^ ": " ^ e)
      | None, None -> Error (path ^ ": missing spec line")
      | None, Some spec ->
        if !jobs < 0 then Error (path ^ ": missing jobs line")
        else
          Ok
            {
              spec;
              jobs = !jobs;
              done_jobs = List.rev !done_jobs;
              findings = List.sort compare !findings;
              nondet = List.sort compare !nondet;
            })
    | first :: _ -> Error (Printf.sprintf "%s: not a pmfarm checkpoint (%S)" path first)

  let pp ppf t =
    Format.fprintf ppf "@[<v>campaign: %s@,jobs: %d/%d done@,findings: %d@,nondet: %s@]"
      (Spec.to_string t.spec) (List.length t.done_jobs) t.jobs (List.length t.findings)
      (if t.nondet = [] then "none"
       else String.concat "," (List.map string_of_int t.nondet))
end

(* --- Coordinator ------------------------------------------------------------ *)

module Coordinator = struct
  type cfg = {
    socket : string;
    spec : Spec.t;
    triage_dir : string;
    checkpoint : string;
    resume : bool;
    capacity : int;
    heartbeat_timeout : float;
    steal_after : float;
    stop_after_results : int option;
    obs : Obs.t;
  }

  let default_cfg ~spec ~socket ~dir =
    {
      socket;
      spec;
      triage_dir = Filename.concat dir "triage";
      checkpoint = Filename.concat dir "checkpoint";
      resume = false;
      capacity = 1;
      heartbeat_timeout = 5.0;
      steal_after = 2.0;
      stop_after_results = None;
      obs = Obs.disabled;
    }

  type summary = {
    jobs : int;
    jobs_done : int;
    digests : (int * string) list;
    findings : (string * string) list;
    nondet : int list;
    reassigned : int;
    steals : int;
    workers_seen : int;
  }

  type jstate = Pending | Offered | Jdone of { digest : string; units : int; attempt : int }

  type jrec = {
    id : int;
    lo : int;
    hi : int;
    mutable attempt : int;  (* highest attempt offered so far *)
    mutable state : jstate;
    mutable offered_at : float;
    mutable holders : int list;  (* wids holding a live attempt *)
    mutable refusals : int;  (* Job_refused frames seen for this job *)
  }

  (* A job refused this many times (across workers and attempts) is
     treated as deterministically broken: the campaign aborts with the
     worker's reason instead of bouncing the job forever. *)
  let max_refusals = 3

  type wrec = {
    wid : int;
    mutable wname : string;
    wfd : Unix.file_descr;
    mutable last_seen : float;
    mutable running : int list;
    mutable lost : bool;
  }

  type st = {
    cfg : cfg;
    spec_s : string;
    m : Mutex.t;
    cv : Condition.t;
    jobs : jrec array;
    mutable pending : int list;
    workers : (int, wrec) Hashtbl.t;
    mutable next_wid : int;
    mutable done_count : int;
    mutable results_seen : int;
    mutable reassigned : int;
    mutable steals : int;
    mutable workers_seen : int;
    mutable nondet : int list;
    findings : (string, string) Hashtbl.t;  (* content digest -> name *)
    mutable stopping : bool;
    mutable failed : string option;  (* a job exhausted [max_refusals] *)
  }

  let finished st = st.done_count = Array.length st.jobs

  let checkpoint_of st =
    let done_jobs =
      Array.fold_right
        (fun j acc ->
          match j.state with
          | Jdone d ->
            { Checkpoint.job = j.id; attempt = d.attempt; units = d.units; digest = d.digest }
            :: acc
          | Pending | Offered -> acc)
        st.jobs []
    in
    let findings =
      Hashtbl.fold (fun dg name acc -> (dg, name) :: acc) st.findings [] |> List.sort compare
    in
    {
      Checkpoint.spec = st.cfg.spec;
      jobs = Array.length st.jobs;
      done_jobs;
      findings;
      nondet = List.sort compare st.nondet;
    }

  let write_checkpoint st =
    Checkpoint.save ~path:st.cfg.checkpoint (checkpoint_of st);
    Obs.farm_checkpoint st.cfg.obs

  let sanitize_name n =
    String.map (fun c -> if c = ' ' || c = '\t' || c = '\n' || c = '/' then '-' else c) n

  let store_finding st ~name ~text =
    let dg = Digest.to_hex (Digest.string text) in
    if Hashtbl.mem st.findings dg then Obs.farm_finding st.cfg.obs ~dup:true
    else begin
      let name = sanitize_name name in
      (* Seed-derived names are unique in practice; suffix defensively
         if two distinct reproducers ever share one. *)
      let name =
        if Hashtbl.fold (fun _ n acc -> acc || n = name) st.findings false then
          name ^ "-" ^ String.sub dg 0 8
        else name
      in
      Hashtbl.replace st.findings dg name;
      Obs.farm_finding st.cfg.obs ~dup:false;
      write_atomic (Filename.concat st.cfg.triage_dir (name ^ ".pmt")) text
    end

  (* [offer]/[mark_lost]/[try_assign] are called with [st.m] held. A
     frame is one write(2), and capacity gates mean offers only ever go
     to workers parked in their read loop, so writing under the lock
     cannot wedge the coordinator on a busy peer. *)
  let rec offer st w j ~steal =
    j.attempt <- j.attempt + 1;
    j.state <- Offered;
    j.offered_at <- now ();
    j.holders <- w.wid :: j.holders;
    w.running <- j.id :: w.running;
    Obs.farm_offer st.cfg.obs ~retry:(j.attempt > 1 && not steal) ~steal;
    if steal then st.steals <- st.steals + 1;
    let payload =
      Wire.encode_job_offer ~job:j.id ~attempt:j.attempt ~lo:j.lo ~hi:j.hi ~spec:st.spec_s
    in
    match Wire.write_frame w.wfd Wire.Job_offer payload with
    | Ok () -> ()
    | Error _ -> mark_lost st w

  and mark_lost st w =
    if not w.lost then begin
      w.lost <- true;
      Obs.farm_worker_lost st.cfg.obs;
      (try Unix.shutdown w.wfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      let held = w.running in
      w.running <- [];
      let requeued =
        List.filter
          (fun jid ->
            let j = st.jobs.(jid) in
            j.holders <- List.filter (fun h -> h <> w.wid) j.holders;
            match j.state with
            | Jdone _ -> false
            | Pending | Offered ->
              if j.holders = [] then begin
                j.state <- Pending;
                true
              end
              else false)
          held
      in
      if requeued <> [] && not st.stopping then begin
        st.reassigned <- st.reassigned + List.length requeued;
        Obs.farm_reassigned st.cfg.obs ~jobs:(List.length requeued);
        st.pending <- requeued @ st.pending;
        try_assign st
      end
    end

  and try_assign st =
    if not st.stopping then begin
      let by_load =
        Hashtbl.fold
          (fun _ w acc ->
            if (not w.lost) && List.length w.running < st.cfg.capacity then w :: acc else acc)
          st.workers []
        |> List.sort (fun a b ->
               compare
                 (List.length a.running, a.wid)
                 (List.length b.running, b.wid))
      in
      let rec go ws =
        match (ws, st.pending) with
        | [], _ | _, [] -> ()
        | w :: rest, jid :: pend ->
          if w.lost || List.length w.running >= st.cfg.capacity then go rest
          else begin
            st.pending <- pend;
            let j = st.jobs.(jid) in
            (match j.state with
            | Jdone _ -> ()  (* stale pending entry *)
            | Pending | Offered -> offer st w j ~steal:false);
            go ws
          end
      in
      go by_load
    end

  let handle_result st w ~job ~attempt ~digest ~units ~findings =
    Mutex.lock st.m;
    if not st.stopping then begin
      st.results_seen <- st.results_seen + 1;
      w.running <- List.filter (fun jid -> jid <> job) w.running;
      let j = st.jobs.(job) in
      j.holders <- List.filter (fun h -> h <> w.wid) j.holders;
      (match j.state with
      | Jdone d ->
        (* A second attempt of a finished job: replay verification. *)
        if d.digest <> digest then begin
          if not (List.mem job st.nondet) then st.nondet <- job :: st.nondet;
          Obs.farm_nondet st.cfg.obs;
          write_checkpoint st
        end
      | Pending | Offered ->
        j.state <- Jdone { digest; units; attempt };
        st.done_count <- st.done_count + 1;
        Obs.farm_job_done st.cfg.obs;
        List.iter (fun (name, text) -> store_finding st ~name ~text) findings;
        write_checkpoint st);
      (match st.cfg.stop_after_results with
      | Some n when st.results_seen >= n ->
        st.stopping <- true;
        Condition.broadcast st.cv
      | _ -> ());
      if finished st then Condition.broadcast st.cv else try_assign st
    end;
    Mutex.unlock st.m

  (* The worker could not run the job at all (unknown fault, mangled
     spec...).  Unlike a lost link this leaves the worker alive and
     heartbeating, so nothing times out: the job must be explicitly
     unassigned here or it stays held forever. *)
  let handle_refusal st w ~job ~reason =
    Mutex.lock st.m;
    if not st.stopping then begin
      w.running <- List.filter (fun jid -> jid <> job) w.running;
      let j = st.jobs.(job) in
      j.holders <- List.filter (fun h -> h <> w.wid) j.holders;
      match j.state with
      | Jdone _ -> ()  (* another attempt already finished it *)
      | Pending | Offered ->
        j.refusals <- j.refusals + 1;
        if j.refusals >= max_refusals then begin
          st.failed <-
            Some
              (Printf.sprintf "job %d refused %d time(s) by workers; last reason: %s" job
                 j.refusals reason);
          st.stopping <- true;
          Condition.broadcast st.cv
        end
        else if j.holders = [] then begin
          j.state <- Pending;
          st.pending <- st.pending @ [ job ];
          try_assign st
        end
    end;
    Mutex.unlock st.m

  let reaper st =
    let tick = Float.max 0.02 (Float.min (st.cfg.heartbeat_timeout /. 4.) 0.25) in
    let rec loop () =
      Thread.delay tick;
      Mutex.lock st.m;
      let stop = st.stopping in
      if not stop then begin
        let t = now () in
        Hashtbl.iter
          (fun _ w ->
            if (not w.lost) && t -. w.last_seen > st.cfg.heartbeat_timeout then mark_lost st w)
          st.workers;
        if st.pending = [] && not (finished st) then begin
          let idle =
            Hashtbl.fold
              (fun _ w acc ->
                if (not w.lost) && List.length w.running < st.cfg.capacity then w :: acc
                else acc)
              st.workers []
          in
          List.iter
            (fun w ->
              let candidate =
                Array.fold_left
                  (fun acc j ->
                    match j.state with
                    | Offered
                      when t -. j.offered_at > st.cfg.steal_after
                           && not (List.mem w.wid j.holders) -> (
                      match acc with
                      | Some best when best.offered_at <= j.offered_at -> acc
                      | _ -> Some j)
                    | _ -> acc)
                  None st.jobs
              in
              match candidate with
              | Some j when (not w.lost) && List.length w.running < st.cfg.capacity ->
                offer st w j ~steal:true
              | _ -> ())
            idle
        end
      end;
      Mutex.unlock st.m;
      if not stop then loop ()
    in
    loop ()

  let send_err fd msg = ignore (Wire.write_frame fd Wire.Err (Wire.encode_err msg))

  (* For a fd that is already published in [st.workers]: [offer] writes
     to it under [st.m] from other threads, and a multi-write(2) frame
     torn by an interleaved one corrupts the stream — so every write to
     a registered worker takes the same lock. *)
  let send_err_locked st w msg =
    Mutex.lock st.m;
    send_err w.wfd msg;
    Mutex.unlock st.m

  let rec conn_loop st w reader =
    match Wire.read_one reader with
    | Error Wire.Timeout -> conn_loop st w reader
    | Error _ -> ()
    | Ok (kind, payload) ->
      Mutex.lock st.m;
      w.last_seen <- now ();
      Mutex.unlock st.m;
      let continue =
        match kind with
        | Wire.Job_claim -> true  (* informational; liveness already stamped *)
        | Wire.Checkpoint ->
          Obs.farm_heartbeat st.cfg.obs;
          true
        | Wire.Job_result -> (
          match Wire.decode_job_result payload with
          | Ok (job, attempt, digest, units, _elapsed_ms, findings)
            when job >= 0 && job < Array.length st.jobs ->
            handle_result st w ~job ~attempt ~digest ~units ~findings;
            true
          | Ok (job, _, _, _, _, _) ->
            send_err_locked st w (Printf.sprintf "unknown job %d" job);
            true
          | Error e ->
            send_err_locked st w ("bad job result: " ^ Wire.error_to_string e);
            true)
        | Wire.Job_refused -> (
          match Wire.decode_job_refused payload with
          | Ok (job, _attempt, reason) when job >= 0 && job < Array.length st.jobs ->
            handle_refusal st w ~job ~reason;
            true
          | Ok (job, _, _) ->
            send_err_locked st w (Printf.sprintf "unknown job %d" job);
            true
          | Error e ->
            send_err_locked st w ("bad job refusal: " ^ Wire.error_to_string e);
            true)
        | Wire.Err -> true  (* informational; job failures come as Job_refused *)
        | Wire.Bye -> false
        | _ ->
          send_err_locked st w (Printf.sprintf "unexpected %s frame" (Wire.kind_name kind));
          true
      in
      if continue then conn_loop st w reader

  let serve_conn st fd =
    let reader = Wire.reader fd in
    let close () = try Unix.close fd with Unix.Unix_error _ -> () in
    match Wire.read_one reader with
    | Error _ -> close ()
    | Ok (Wire.Worker_hello, payload) -> (
      match Wire.decode_worker_hello payload with
      | Error e ->
        send_err fd (Wire.error_to_string e);
        close ()
      | Ok (farm, name, _engines) ->
        let negotiated = min farm Wire.farm_version in
        if negotiated < 1 then begin
          send_err fd (Printf.sprintf "unsupported farm protocol %d" farm);
          close ()
        end
        else begin
          Mutex.lock st.m;
          let wid = st.next_wid in
          st.next_wid <- wid + 1;
          Mutex.unlock st.m;
          let w =
            {
              wid;
              wname = (if name = "" then Printf.sprintf "w%d" wid else name);
              wfd = fd;
              last_seen = now ();
              running = [];
              lost = false;
            }
          in
          let ack =
            Wire.encode_worker_hello ~farm:negotiated ~name:(Printf.sprintf "w%d" wid)
              ~engines:0
          in
          (* The ack must be on the wire before the worker is published:
             once it is in [st.workers], try_assign/reaper on another
             thread may write a [Job_offer] to this fd, and an offer
             arriving ahead of the ack fails the worker's handshake. *)
          (match Wire.write_frame fd Wire.Worker_hello ack with
          | Error _ -> close ()
          | Ok () ->
            Mutex.lock st.m;
            w.last_seen <- now ();
            Hashtbl.replace st.workers wid w;
            st.workers_seen <- st.workers_seen + 1;
            Obs.farm_worker_joined st.cfg.obs;
            try_assign st;
            Mutex.unlock st.m;
            conn_loop st w reader;
            Mutex.lock st.m;
            if st.stopping then w.lost <- true else mark_lost st w;
            Mutex.unlock st.m;
            close ())
        end)
    | Ok (kind, _) ->
      send_err fd (Printf.sprintf "expected worker-hello, got %s" (Wire.kind_name kind));
      close ()

  let run ?(ready = fun () -> ()) cfg =
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    if cfg.capacity < 1 then Error "Coordinator.run: capacity < 1"
    else begin
      match Spec.validate cfg.spec with
      | Error e -> Error (Printf.sprintf "invalid campaign spec: %s" e)
      | Ok () ->
      let resume_ck =
        if cfg.resume && Sys.file_exists cfg.checkpoint then
          match Checkpoint.load cfg.checkpoint with
          | Ok ck ->
            if Spec.to_string ck.Checkpoint.spec <> Spec.to_string cfg.spec then
              Error
                (Printf.sprintf "checkpoint is for another campaign (%s)"
                   (Spec.to_string ck.Checkpoint.spec))
            else Ok (Some ck)
          | Error e -> Error e
        else Ok None
      in
      match resume_ck with
      | Error e -> Error e
      | Ok resume_ck -> (
        let jobs =
          Spec.jobs cfg.spec
          |> List.map (fun (id, lo, hi) ->
                 {
                   id;
                   lo;
                   hi;
                   attempt = 0;
                   state = Pending;
                   offered_at = 0.;
                   holders = [];
                   refusals = 0;
                 })
          |> Array.of_list
        in
        let findings = Hashtbl.create 16 in
        let nondet = ref [] in
        (match resume_ck with
        | None -> ()
        | Some ck ->
          List.iter
            (fun (d : Checkpoint.done_job) ->
              if d.Checkpoint.job >= 0 && d.Checkpoint.job < Array.length jobs then begin
                let j = jobs.(d.Checkpoint.job) in
                j.state <-
                  Jdone
                    {
                      digest = d.Checkpoint.digest;
                      units = d.Checkpoint.units;
                      attempt = d.Checkpoint.attempt;
                    };
                j.attempt <- d.Checkpoint.attempt
              end)
            ck.Checkpoint.done_jobs;
          List.iter (fun (dg, name) -> Hashtbl.replace findings dg name) ck.Checkpoint.findings;
          nondet := ck.Checkpoint.nondet);
        let pending =
          Array.fold_right
            (fun j acc -> match j.state with Pending -> j.id :: acc | _ -> acc)
            jobs []
        in
        let done_count =
          Array.fold_left
            (fun acc j -> match j.state with Jdone _ -> acc + 1 | _ -> acc)
            0 jobs
        in
        let st =
          {
            cfg;
            spec_s = Spec.to_string cfg.spec;
            m = Mutex.create ();
            cv = Condition.create ();
            jobs;
            pending;
            workers = Hashtbl.create 8;
            next_wid = 0;
            done_count;
            results_seen = 0;
            reassigned = 0;
            steals = 0;
            workers_seen = 0;
            nondet = !nondet;
            findings;
            stopping = false;
            failed = None;
          }
        in
        Obs.farm_campaign cfg.obs ~jobs:(Array.length jobs);
        mkdir_p cfg.triage_dir;
        if Sys.file_exists cfg.socket then (try Unix.unlink cfg.socket with Unix.Unix_error _ -> ());
        let listen_fd = Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 in
        match
          Unix.bind listen_fd (ADDR_UNIX cfg.socket);
          Unix.listen listen_fd 64
        with
        | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          Error (Printf.sprintf "cannot listen on %s: %s" cfg.socket (Unix.error_message e))
        | () ->
          let conn_threads = ref [] in
          let threads_m = Mutex.create () in
          let acceptor =
            Thread.create
              (fun () ->
                let rec go () =
                  match Unix.accept ~cloexec:true listen_fd with
                  | fd, _ ->
                    (* The teardown path wakes this loop with a
                       throwaway connection; [stopping] says it's over. *)
                    let stop =
                      Mutex.lock st.m;
                      let s = st.stopping in
                      Mutex.unlock st.m;
                      s
                    in
                    if stop then (try Unix.close fd with Unix.Unix_error _ -> ())
                    else begin
                      let t = Thread.create (fun () -> serve_conn st fd) () in
                      Mutex.lock threads_m;
                      conn_threads := t :: !conn_threads;
                      Mutex.unlock threads_m;
                      go ()
                    end
                  | exception Unix.Unix_error (EINTR, _, _) -> go ()
                  | exception Unix.Unix_error _ -> ()
                in
                go ())
              ()
          in
          let reaper_t = Thread.create (fun () -> reaper st) () in
          ready ();
          (* Write an initial checkpoint so even a campaign killed
             before its first result resumes cleanly. *)
          Mutex.lock st.m;
          write_checkpoint st;
          while not (finished st || st.stopping) do
            Condition.wait st.cv st.m
          done;
          (* [crashed] = the stop_after_results testing hook fired: tear
             the sockets down with no goodbye, as SIGKILL would.  An
             aborted campaign ([failed]) still says Bye so its workers
             exit instead of burning their reconnect budgets. *)
          let crashed = st.stopping && not (finished st) && st.failed = None in
          st.stopping <- true;
          let live =
            Hashtbl.fold (fun _ w acc -> if not w.lost then w :: acc else acc) st.workers []
          in
          let summary =
            {
              jobs = Array.length st.jobs;
              jobs_done = st.done_count;
              digests =
                Array.fold_right
                  (fun j acc ->
                    match j.state with Jdone d -> (j.id, d.digest) :: acc | _ -> acc)
                  st.jobs [];
              findings =
                Hashtbl.fold (fun dg name acc -> (dg, name) :: acc) st.findings []
                |> List.sort compare;
              nondet = List.sort compare st.nondet;
              reassigned = st.reassigned;
              steals = st.steals;
              workers_seen = st.workers_seen;
            }
          in
          Mutex.unlock st.m;
          (* A simulated crash tears the sockets down with no goodbye —
             workers must survive it via their reconnect loop.  The Bye
             writes take [st.m] like every other write to a registered
             worker: conn threads are still draining and may write an
             [Err] on the same fd. *)
          List.iter
            (fun w ->
              if not crashed then begin
                Mutex.lock st.m;
                ignore (Wire.write_frame w.wfd Wire.Bye "");
                Mutex.unlock st.m
              end;
              try Unix.shutdown w.wfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
            live;
          (* Closing a listening fd does not wake accept(2); one
             throwaway connection does. *)
          (match Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 with
          | exception Unix.Unix_error _ -> ()
          | fd ->
            (try Unix.connect fd (ADDR_UNIX cfg.socket) with Unix.Unix_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ()));
          (try Unix.close listen_fd with Unix.Unix_error _ -> ());
          (try Unix.unlink cfg.socket with Unix.Unix_error _ | Sys_error _ -> ());
          Thread.join acceptor;
          Thread.join reaper_t;
          Mutex.lock threads_m;
          let ts = !conn_threads in
          Mutex.unlock threads_m;
          List.iter Thread.join ts;
          match st.failed with Some e -> Error e | None -> Ok summary)
    end
end

(* --- Workers ---------------------------------------------------------------- *)

module Worker = struct
  type cfg = {
    socket : string;
    name : string;
    attempts : int;
    base_delay : float;
    max_delay : float;
    hb_interval : float;
    log : string -> unit;
  }

  let default_cfg ~socket ~name =
    {
      socket;
      name;
      attempts = 8;
      base_delay = 0.05;
      max_delay = 2.0;
      hb_interval = 1.0;
      log = ignore;
    }

  let dial cfg =
    match Unix.socket ~cloexec:true PF_UNIX SOCK_STREAM 0 with
    | exception Unix.Unix_error (e, _, _) -> Error (Unix.error_message e)
    | fd -> (
      match Unix.connect fd (ADDR_UNIX cfg.socket) with
      | exception Unix.Unix_error (e, _, _) ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Error (Printf.sprintf "cannot connect to %s: %s" cfg.socket (Unix.error_message e))
      | () -> Ok fd)

  let handshake cfg fd reader =
    match
      Wire.write_frame fd Wire.Worker_hello
        (Wire.encode_worker_hello ~farm:Wire.farm_version ~name:cfg.name ~engines:0b111)
    with
    | Error e -> Error (Wire.error_to_string e)
    | Ok () -> (
      match Wire.read_one reader with
      | Error e -> Error (Wire.error_to_string e)
      | Ok (Wire.Worker_hello, payload) -> (
        match Wire.decode_worker_hello payload with
        | Error e -> Error (Wire.error_to_string e)
        | Ok (farm, assigned, _) -> Ok (min farm Wire.farm_version, assigned))
      | Ok (Wire.Err, payload) ->
        Error
          (match Wire.decode_err payload with
          | Ok m -> "coordinator refused: " ^ m
          | Error e -> Wire.error_to_string e)
      | Ok (kind, _) -> Error (Printf.sprintf "unexpected %s frame" (Wire.kind_name kind)))

  (* One connection's lifetime. Returns [`Bye] on an orderly campaign
     end, [`Lost] when the link died and a reconnect should be tried. *)
  let session cfg fd reader ~jobs_done =
    let m = Mutex.create () in
    let current = ref None in
    let hb_stop = ref false in
    (* Every write to [fd] goes through [send] under [m]: the heartbeat
       thread and this session thread share the fd, and [write_exactly]
       can split a large [Job_result] across several write(2) calls — a
       [Checkpoint] landing between two of them would corrupt the
       stream and force a reconnect plus a full job re-run. *)
    let send kind payload =
      Mutex.lock m;
      let r = Wire.write_frame fd kind payload in
      Mutex.unlock m;
      r
    in
    let send_err msg = ignore (send Wire.Err (Wire.encode_err msg)) in
    let refuse ~job ~attempt reason =
      ignore (send Wire.Job_refused (Wire.encode_job_refused ~job ~attempt ~reason))
    in
    let hb =
      Thread.create
        (fun () ->
          let rec loop () =
            Thread.delay cfg.hb_interval;
            Mutex.lock m;
            let stop = !hb_stop and running = !current and done_n = !jobs_done in
            Mutex.unlock m;
            if not stop then
              match send Wire.Checkpoint (Wire.encode_checkpoint ~running ~jobs_done:done_n) with
              | Ok () -> loop ()
              | Error _ -> ()  (* link died; the read loop notices too *)
          in
          loop ())
        ()
    in
    let rec loop () =
      match Wire.read_one reader with
      | Error Wire.Timeout -> loop ()
      | Error _ -> `Lost
      | Ok (Wire.Bye, _) -> `Bye
      | Ok (Wire.Err, payload) ->
        cfg.log
          ("coordinator error: "
          ^ (match Wire.decode_err payload with Ok m -> m | Error e -> Wire.error_to_string e));
        loop ()
      | Ok (Wire.Job_offer, payload) -> (
        match Wire.decode_job_offer payload with
        | Error e ->
          (* Corrupt payload under a valid CRC: refuse the one offer,
             keep the link — this must not kill the worker. *)
          send_err ("bad job offer: " ^ Wire.error_to_string e);
          loop ()
        | Ok (job, attempt, lo, hi, spec_s) -> (
          match Spec.of_string spec_s with
          | Error e ->
            (* The coordinator knows which job to unassign only if the
               refusal names it — a bare [Err] would leave this worker
               holding the job forever. *)
            refuse ~job ~attempt (Printf.sprintf "bad campaign spec: %s" e);
            loop ()
          | Ok spec -> (
            ignore (send Wire.Job_claim (Wire.encode_job_claim ~job ~attempt));
            Mutex.lock m;
            current := Some job;
            Mutex.unlock m;
            let t0 = now () in
            let result = run_units spec ~lo ~hi in
            let elapsed_ms = max 0 (int_of_float ((now () -. t0) *. 1000.)) in
            Mutex.lock m;
            current := None;
            (match result with Ok _ -> incr jobs_done | Error _ -> ());
            Mutex.unlock m;
            match result with
            | Error e ->
              cfg.log (Printf.sprintf "job %d attempt %d refused: %s" job attempt e);
              refuse ~job ~attempt e;
              loop ()
            | Ok r -> (
              cfg.log
                (Printf.sprintf "job %d attempt %d [%d, %d): %d finding(s), %d ms" job attempt
                   lo hi (List.length r.findings) elapsed_ms);
              match
                send Wire.Job_result
                  (Wire.encode_job_result ~job ~attempt ~digest:r.digest ~units:r.units
                     ~elapsed_ms ~findings:r.findings)
              with
              | Ok () -> loop ()
              | Error _ -> `Lost))))
      | Ok (kind, _) ->
        send_err (Printf.sprintf "unexpected %s frame" (Wire.kind_name kind));
        loop ()
    in
    let outcome = loop () in
    Mutex.lock m;
    hb_stop := true;
    Mutex.unlock m;
    (try Unix.shutdown fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
    Thread.join hb;
    (try Unix.close fd with Unix.Unix_error _ -> ());
    outcome

  let run cfg =
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
    if cfg.attempts < 1 then Error "Worker.run: attempts < 1"
    else begin
      let rng = Random.State.make_self_init () in
      let jobs_done = ref 0 in
      let rec connect_loop fails delay =
        match dial cfg with
        | Error e ->
          if fails + 1 >= cfg.attempts then
            Error (Printf.sprintf "%s (after %d attempt(s))" e cfg.attempts)
          else begin
            let jittered = delay *. (0.5 +. Random.State.float rng 1.0) in
            cfg.log (Printf.sprintf "%s; retrying in %.0f ms" e (jittered *. 1000.));
            (try Unix.sleepf jittered with Unix.Unix_error _ -> ());
            connect_loop (fails + 1) (Float.min cfg.max_delay (delay *. 2.0))
          end
        | Ok fd -> (
          let reader = Wire.reader fd in
          match handshake cfg fd reader with
          | Error e ->
            (try Unix.close fd with Unix.Unix_error _ -> ());
            if fails + 1 >= cfg.attempts then
              Error (Printf.sprintf "%s (after %d attempt(s))" e cfg.attempts)
            else begin
              let jittered = delay *. (0.5 +. Random.State.float rng 1.0) in
              cfg.log (Printf.sprintf "handshake failed (%s); retrying" e);
              (try Unix.sleepf jittered with Unix.Unix_error _ -> ());
              connect_loop (fails + 1) (Float.min cfg.max_delay (delay *. 2.0))
            end
          | Ok (farm, assigned) -> (
            cfg.log (Printf.sprintf "connected as %s (farm protocol %d)" assigned farm);
            match session cfg fd reader ~jobs_done with
            | `Bye -> Ok !jobs_done
            | `Lost ->
              cfg.log "link lost; reconnecting";
              connect_loop 0 cfg.base_delay))
      in
      connect_loop 0 cfg.base_delay
    end
end
