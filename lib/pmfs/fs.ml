module Machine = Pmtest_pmem.Machine
module Instr = Pmtest_pmem.Instr
module Access = Pmtest_pmem.Access
module Event = Pmtest_trace.Event

let source_file = "pmfs/fs.c"
let magic = 0x504D_4653_4F43_616DL

(* --- Layout ---------------------------------------------------------------
   super (64B) @0:
     [0]=magic [8]=device size [16]=ninodes [24]=nblocks
     [32]=journal_off [40]=itable_off [48]=bitmap_off [56]=data_off
   journal: header {n_entries(8), pad(56)} + entries (128B each):
     le: {addr(8) size(8) data(112)}
   inode (128B): {type(8) size(8) nlink(8) pad(8) blocks[12] (96)}
     type: 0=free 1=file 2=dir; root dir is inode 0.
   bitmap: one byte per data block.
   dirent (64B, inside dir data blocks): {ino(8) in_use(8) name(48)} *)

let block_size = 512
let inode_size = 128
let le_size = 128
let le_data_cap = 112
let max_journal_entries = 510
let dirent_size = 64
let direct_blocks = 12

type fault =
  | Journal_double_flush
  | Data_double_flush
  | Flush_unmapped
  | Skip_journal_flush
  | Skip_commit_fence
  | Fsync_redundant_fence
  | Empty_tx_fence
  | Alloc_no_zero

type t = {
  instr : Instr.t;
  ninodes : int;
  nblocks : int;
  journal_cap : int;
  journal_off : int;
  itable_off : int;
  bitmap_off : int;
  data_off : int;
  mutable fault : fault option;
  mutable recovered : int;
  (* (le_addr, le_len, target_addr, target_len) per journaled range of
     the open transaction: for the commit writeback and the post-commit
     checker annotations. *)
  mutable tx_ranges : (int * int * int * int) list;
  mutable tx_open : bool;
  annotate : bool;
  (* A scratch region that is never written: the files.c:232 bug flushes
     it. *)
  scratch_off : int;
}

let machine t = Instr.machine t.instr
let recovered_entries t = t.recovered
let set_fault t f = t.fault <- f

let super_size = 64

let geometry ?(journal_entries = max_journal_entries) ~inodes ~blocks () =
  let journal_off = super_size in
  let itable_off = journal_off + 64 + (journal_entries * le_size) in
  let bitmap_off = itable_off + (inodes * inode_size) in
  let scratch_off = bitmap_off + blocks in
  let data_off = (scratch_off + block_size + block_size - 1) / block_size * block_size in
  let total = data_off + (blocks * block_size) in
  (journal_off, itable_off, bitmap_off, scratch_off, data_off, total)

(* --- Journal (undo log for metadata) -------------------------------------- *)

let journal_count t = Access.get_int (machine t) t.journal_off

let le_off t i = t.journal_off + 64 + (i * le_size)

let tx_begin t =
  assert (not t.tx_open);
  t.tx_open <- true;
  t.tx_ranges <- []

(* Append an undo record for [addr,size) and persist it before the caller
   modifies the range in place. *)
let journal_add t ~line ~addr ~size =
  assert t.tx_open;
  if size > le_data_cap then invalid_arg "Fs.journal_add: range too large";
  let n = journal_count t in
  if n >= t.journal_cap then failwith "Fs: journal full";
  let le = le_off t n in
  let old = Access.get_bytes (machine t) addr size in
  Instr.store_i64 t.instr ~line ~addr:le (Int64.of_int addr);
  Instr.store_i64 t.instr ~line:(line + 1) ~addr:(le + 8) (Int64.of_int size);
  Instr.store_bytes t.instr ~line:(line + 2) ~addr:(le + 16) old;
  (* Flush exactly the bytes written: header plus [size] bytes of data. *)
  if t.fault <> Some Skip_journal_flush then
    Instr.persist_barrier t.instr ~line:(line + 3) ~addr:le ~size:(16 + size);
  (* Bump the entry count (persisted with the same barrier discipline). *)
  Instr.store_i64 t.instr ~line:(line + 4) ~addr:t.journal_off (Int64.of_int (n + 1));
  if t.fault <> Some Skip_journal_flush then
    Instr.persist_barrier t.instr ~line:(line + 5) ~addr:t.journal_off ~size:8;
  t.tx_ranges <- (le, 16 + size, addr, size) :: t.tx_ranges

let tx_commit t =
  assert t.tx_open;
  (* Write back every metadata range modified under journal protection. *)
  List.iter
    (fun (_, _, addr, size) -> Instr.clwb t.instr ~line:630 ~addr ~size)
    (List.rev t.tx_ranges);
  let extra_flush = t.fault = Some Journal_double_flush && journal_count t > 0 in
  if extra_flush then
    (* journal.c:632: the commit path flushes the log entries again even
       though they were persisted when appended. *)
    Instr.clwb t.instr ~line:632 ~addr:(le_off t 0) ~size:(journal_count t * le_size);
  (* An empty transaction wrote back nothing: the commit fence would order
     nothing, and the journal reset below carries its own barrier. *)
  if
    (t.tx_ranges <> [] || extra_flush || t.fault = Some Empty_tx_fence)
    && t.fault <> Some Skip_commit_fence
  then
    (* journal.c:633 before the empty-commit guard: the fence is emitted
       unconditionally, so committing an empty transaction drains
       nothing the journal-reset barrier below would not. *)
    Instr.sfence t.instr ~line:633;
  if t.annotate then
    List.iter
      (fun (le_addr, le_len, addr, size) ->
        Instr.checker t.instr ~line:634 Event.(Is_persist { addr; size });
        (* The undo record must be durable before its in-place change. *)
        Instr.checker t.instr ~line:637
          Event.(
            Is_ordered_before { a_addr = le_addr; a_size = le_len; b_addr = addr; b_size = size }))
      (List.rev t.tx_ranges);
  (* Invalidate the journal only after the updates are durable. *)
  Instr.store_i64 t.instr ~line:635 ~addr:t.journal_off 0L;
  if t.fault = Some Skip_commit_fence then
    Instr.clwb t.instr ~line:636 ~addr:t.journal_off ~size:8
  else Instr.persist_barrier t.instr ~line:636 ~addr:t.journal_off ~size:8;
  t.tx_open <- false;
  t.tx_ranges <- []

let journal_recover t =
  let n = journal_count t in
  if n > 0 then begin
    (* Undo newest-first. *)
    for i = n - 1 downto 0 do
      let le = le_off t i in
      let addr = Access.get_int (machine t) le in
      let size = Access.get_int (machine t) (le + 8) in
      let old = Access.get_bytes (machine t) (le + 16) size in
      Instr.store_bytes t.instr ~line:640 ~addr old;
      Instr.clwb t.instr ~line:641 ~addr ~size;
      t.recovered <- t.recovered + 1
    done;
    Instr.sfence t.instr ~line:642;
    Instr.store_i64 t.instr ~line:643 ~addr:t.journal_off 0L;
    Instr.persist_barrier t.instr ~line:644 ~addr:t.journal_off ~size:8
  end

(* --- Inode and block helpers ----------------------------------------------- *)

let inode_off t ino = t.itable_off + (ino * inode_size)
let inode_type t ino = Access.get_int (machine t) (inode_off t ino)
let inode_nsize t ino = Access.get_int (machine t) (inode_off t ino + 8)
let inode_block t ino i = Access.get_int (machine t) (inode_off t ino + 32 + (8 * i))
let block_addr t b = t.data_off + (b * block_size)
let bitmap_byte t b = t.bitmap_off + b

let find_free_inode t =
  let rec go i = if i >= t.ninodes then None else if inode_type t i = 0 then Some i else go (i + 1) in
  go 1 (* inode 0 is the root directory *)

let find_free_block t =
  let m = machine t in
  let rec go b =
    if b >= t.nblocks then None
    else if Access.get_u8 m (bitmap_byte t b) = 0 then Some b
    else go (b + 1)
  in
  go 0

(* Allocate a data block inside the open transaction: journal the bitmap
   byte, mark it used. *)
let alloc_block t =
  match find_free_block t with
  | None -> Error "no free blocks"
  | Some b ->
    journal_add t ~line:100 ~addr:(bitmap_byte t b) ~size:1;
    Instr.store_u8 t.instr ~line:101 ~addr:(bitmap_byte t b) 1;
    Ok b

(* --- Mkfs / mount ----------------------------------------------------------- *)

let mkfs ?(track_versions = false) ?(inodes = 64) ?(blocks = 256)
    ?(journal_entries = max_journal_entries) ~sink () =
  let journal_off, itable_off, bitmap_off, scratch_off, data_off, total =
    geometry ~journal_entries ~inodes ~blocks ()
  in
  let machine = Machine.create ~track_versions ~size:total () in
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let t =
    {
      instr;
      ninodes = inodes;
      nblocks = blocks;
      journal_cap = journal_entries;
      journal_off;
      itable_off;
      bitmap_off;
      data_off;
      fault = None;
      recovered = 0;
      tx_ranges = [];
      tx_open = false;
      annotate = true;
      scratch_off;
    }
  in
  Instr.store_i64 instr ~line:50 ~addr:0 magic;
  Instr.store_i64 instr ~line:51 ~addr:8 (Int64.of_int total);
  Instr.store_i64 instr ~line:52 ~addr:16 (Int64.of_int inodes);
  Instr.store_i64 instr ~line:53 ~addr:24 (Int64.of_int blocks);
  Instr.store_i64 instr ~line:54 ~addr:32 (Int64.of_int journal_off);
  Instr.store_i64 instr ~line:55 ~addr:40 (Int64.of_int itable_off);
  Instr.store_i64 instr ~line:56 ~addr:48 (Int64.of_int bitmap_off);
  Instr.store_i64 instr ~line:57 ~addr:56 (Int64.of_int data_off);
  Instr.persist_barrier instr ~line:58 ~addr:0 ~size:64;
  (* Empty journal. *)
  Instr.store_i64 instr ~line:59 ~addr:journal_off 0L;
  Instr.persist_barrier instr ~line:60 ~addr:journal_off ~size:8;
  (* Root directory: inode 0, type dir, no blocks yet. *)
  Instr.store_i64 instr ~line:61 ~addr:(inode_off t 0) 2L;
  Instr.store_i64 instr ~line:62 ~addr:(inode_off t 0 + 8) 0L;
  Instr.store_i64 instr ~line:63 ~addr:(inode_off t 0 + 16) 1L;
  Instr.persist_barrier instr ~line:64 ~addr:(inode_off t 0) ~size:24;
  t

let mount ~machine ~sink =
  if Access.get_i64 machine 0 <> magic then invalid_arg "Fs.mount: bad magic";
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let geti off = Access.get_int machine off in
  let inodes = geti 16 and blocks = geti 24 in
  let scratch_off = geti 48 + blocks in
  (* The journal's capacity is whatever fits between its header and the
     inode table — derived from the superblock so any mkfs-time geometry
     mounts correctly. *)
  let journal_cap = (geti 40 - geti 32 - 64) / le_size in
  let t =
    {
      instr;
      ninodes = inodes;
      nblocks = blocks;
      journal_cap;
      journal_off = geti 32;
      itable_off = geti 40;
      bitmap_off = geti 48;
      data_off = geti 56;
      fault = None;
      recovered = 0;
      tx_ranges = [];
      tx_open = false;
      annotate = true;
      scratch_off;
    }
  in
  journal_recover t;
  t

(* --- Directory -------------------------------------------------------------- *)

let dirents_per_block = block_size / dirent_size

(* Iterate the root directory's entries as (dirent address, ino, in_use, name). *)
let iter_dirents t f =
  for i = 0 to direct_blocks - 1 do
    let b = inode_block t 0 i in
    if b <> 0 then
      for j = 0 to dirents_per_block - 1 do
        let de = block_addr t (b - 1) + (j * dirent_size) in
        let ino = Access.get_int (machine t) de in
        let in_use = Access.get_int (machine t) (de + 8) in
        let name = Access.get_string (machine t) (de + 16) 48 in
        f ~de ~ino ~in_use ~name
      done
  done

let find_dirent t name =
  let found = ref None in
  iter_dirents t (fun ~de ~ino ~in_use ~name:n ->
      if !found = None && in_use = 1 && n = name then found := Some (de, ino));
  !found

let find_free_dirent t =
  let found = ref None in
  iter_dirents t (fun ~de ~ino:_ ~in_use ~name:_ ->
      if !found = None && in_use = 0 then found := Some de);
  !found

let lookup t name = Option.map snd (find_dirent t name)

let readdir t =
  let acc = ref [] in
  iter_dirents t (fun ~de:_ ~ino ~in_use ~name ->
      if in_use = 1 then acc := (name, ino) :: !acc);
  List.rev !acc

(* Extend the root directory with one more data block of dirents. *)
let grow_root_dir t =
  let rec first_free i =
    if i >= direct_blocks then Error "root directory full"
    else if inode_block t 0 i = 0 then Ok i
    else first_free (i + 1)
  in
  match first_free 0 with
  | Error e -> Error e
  | Ok slot -> (
    match alloc_block t with
    | Error e -> Error e
    | Ok b ->
      (* Zero the new block's dirents (data path: flushed directly). *)
      let addr = block_addr t b in
      Instr.store_bytes t.instr ~line:110 ~addr (Bytes.make block_size '\000');
      Instr.clwb t.instr ~line:111 ~addr ~size:block_size;
      Instr.sfence t.instr ~line:112;
      let slot_addr = inode_off t 0 + 32 + (8 * slot) in
      journal_add t ~line:113 ~addr:slot_addr ~size:8;
      (* Block references are stored +1 so 0 means "no block". *)
      Instr.store_i64 t.instr ~line:114 ~addr:slot_addr (Int64.of_int (b + 1));
      Ok ())

let create t name =
  if String.length name > 47 then Error "name too long"
  else if lookup t name <> None then Error "file exists"
  else begin
    match find_free_inode t with
    | None -> Error "no free inodes"
    | Some ino ->
      tx_begin t;
      let de =
        match find_free_dirent t with
        | Some de -> Ok de
        | None -> (
          match grow_root_dir t with
          | Error e -> Error e
          | Ok () -> (
            match find_free_dirent t with
            | Some de -> Ok de
            | None -> Error "no dirent after grow"))
      in
      match de with
      | Error e ->
        tx_commit t;
        Error e
      | Ok de ->
        (* Initialise the inode under journal protection. *)
        journal_add t ~line:120 ~addr:(inode_off t ino) ~size:24;
        Instr.store_i64 t.instr ~line:121 ~addr:(inode_off t ino) 1L;
        Instr.store_i64 t.instr ~line:122 ~addr:(inode_off t ino + 8) 0L;
        Instr.store_i64 t.instr ~line:123 ~addr:(inode_off t ino + 16) 1L;
        (* Then the directory entry. *)
        journal_add t ~line:124 ~addr:de ~size:dirent_size;
        Instr.store_i64 t.instr ~line:125 ~addr:de (Int64.of_int ino);
        Instr.store_string t.instr ~line:126 ~addr:(de + 16) ~len:48 name;
        Instr.store_i64 t.instr ~line:127 ~addr:(de + 8) 1L;
        tx_commit t;
        Ok ino
  end

let unlink t name =
  match find_dirent t name with
  | None -> Error "no such file"
  | Some (de, ino) ->
    tx_begin t;
    (* Free the file's blocks in the bitmap. *)
    for i = 0 to direct_blocks - 1 do
      let b = inode_block t ino i in
      if b <> 0 then begin
        journal_add t ~line:130 ~addr:(bitmap_byte t (b - 1)) ~size:1;
        Instr.store_u8 t.instr ~line:131 ~addr:(bitmap_byte t (b - 1)) 0
      end
    done;
    (* Clear the block references and free the inode. *)
    journal_add t ~line:132 ~addr:(inode_off t ino) ~size:16;
    Instr.store_i64 t.instr ~line:133 ~addr:(inode_off t ino) 0L;
    Instr.store_i64 t.instr ~line:134 ~addr:(inode_off t ino + 8) 0L;
    for i = 0 to direct_blocks - 1 do
      if inode_block t ino i <> 0 then begin
        journal_add t ~line:135 ~addr:(inode_off t ino + 32 + (8 * i)) ~size:8;
        Instr.store_i64 t.instr ~line:136 ~addr:(inode_off t ino + 32 + (8 * i)) 0L
      end
    done;
    (* Mark the dirent unused. *)
    journal_add t ~line:137 ~addr:(de + 8) ~size:8;
    Instr.store_i64 t.instr ~line:138 ~addr:(de + 8) 0L;
    tx_commit t;
    Ok ()

(* --- File data -------------------------------------------------------------- *)

let file_size t ~ino = inode_nsize t ino

let write t ~ino ~off data =
  if inode_type t ino <> 1 then Error "not a file"
  else begin
    let len = String.length data in
    let last = off + len in
    if last > direct_blocks * block_size then Error "file too large"
    else begin
      tx_begin t;
      (* Make sure every touched block is allocated. *)
      let first_blk = off / block_size in
      let last_blk = (last - 1) / block_size in
      let alloc_failed = ref None in
      for i = first_blk to last_blk do
        if !alloc_failed = None && inode_block t ino i = 0 then begin
          match alloc_block t with
          | Error e -> alloc_failed := Some e
          | Ok b ->
            let slot = inode_off t ino + 32 + (8 * i) in
            journal_add t ~line:140 ~addr:slot ~size:8;
            Instr.store_i64 t.instr ~line:141 ~addr:slot (Int64.of_int (b + 1));
            (* Zero whatever the incoming data won't cover: the block may
               have been freed by an unlink and still hold the previous
               owner's bytes, which must not leak into this file's holes.
               Fenced by the data path's sfence below. *)
            let blk_lo = i * block_size and blk_hi = (i + 1) * block_size in
            let zero lo hi =
              if hi > lo && t.fault <> Some Alloc_no_zero then begin
                let addr = block_addr t b + (lo - blk_lo) in
                Instr.store_bytes t.instr ~line:142 ~addr (Bytes.make (hi - lo) '\000');
                Instr.clwb t.instr ~line:143 ~addr ~size:(hi - lo)
              end
            in
            zero blk_lo (min blk_hi (max blk_lo off));
            zero (max blk_lo (min blk_hi last)) blk_hi
        end
      done;
      match !alloc_failed with
      | Some e ->
        tx_commit t;
        Error e
      | None ->
        (* Data goes in place (XIP), flushed directly — not journaled. *)
        let pos = ref off in
        let remaining = ref len in
        while !remaining > 0 do
          let blk = !pos / block_size in
          let in_blk = !pos mod block_size in
          let chunk = min !remaining (block_size - in_blk) in
          let addr = block_addr t (inode_block t ino blk - 1) + in_blk in
          let piece = String.sub data (len - !remaining) chunk in
          Instr.store_bytes t.instr ~line:205 ~addr (Bytes.of_string piece);
          Instr.clwb t.instr ~line:206 ~addr ~size:chunk;
          if t.fault = Some Data_double_flush then
            (* xips.c:207/262: the same buffer is written back twice. *)
            Instr.clwb t.instr ~line:207 ~addr ~size:chunk;
          pos := !pos + chunk;
          remaining := !remaining - chunk
        done;
        Instr.sfence t.instr ~line:208;
        (* Size update is metadata: journaled. *)
        if last > inode_nsize t ino then begin
          journal_add t ~line:209 ~addr:(inode_off t ino + 8) ~size:8;
          Instr.store_i64 t.instr ~line:210 ~addr:(inode_off t ino + 8) (Int64.of_int last)
        end;
        tx_commit t;
        Ok ()
    end
  end

let read t ~ino ~off ~len =
  if inode_type t ino <> 1 then Error "not a file"
  else begin
    let size = inode_nsize t ino in
    let len = max 0 (min len (size - off)) in
    if t.fault = Some Flush_unmapped then
      (* files.c:232: the read path flushes a buffer nothing ever wrote. *)
      Instr.clwb t.instr ~line:232 ~addr:t.scratch_off ~size:64;
    let buf = Bytes.create len in
    let pos = ref off in
    let remaining = ref len in
    while !remaining > 0 do
      let blk = !pos / block_size in
      let in_blk = !pos mod block_size in
      let chunk = min !remaining (block_size - in_blk) in
      let b = inode_block t ino blk in
      if b = 0 then Bytes.fill buf (len - !remaining) chunk '\000'
      else
        Bytes.blit
          (Instr.load_bytes t.instr ~addr:(block_addr t (b - 1) + in_blk) ~len:chunk)
          0 buf (len - !remaining) chunk;
      pos := !pos + chunk;
      remaining := !remaining - chunk
    done;
    Ok (Bytes.to_string buf)
  end

let fsync t ~ino =
  (* Data is flushed on the write path; fsync drains outstanding stores.
     The drain is deliberate even when nothing is pending, so the static
     lint's redundant-fence rule is suppressed around it. *)
  ignore ino;
  if t.fault = Some Fsync_redundant_fence then
    (* fsync.c:260 before the annotation: the drain is unconditional, so
       an fsync with no outstanding store fences nothing. *)
    Instr.sfence t.instr ~line:260
  else begin
    Instr.control t.instr ~line:259 (Event.Lint_off { rule = "redundant-fence" });
    Instr.sfence t.instr ~line:260;
    Instr.control t.instr ~line:261 (Event.Lint_on { rule = "redundant-fence" })
  end

(* --- Introspection (for external fsck-style checkers) ----------------------- *)

let ninodes t = t.ninodes
let inode_kind t ~ino = inode_type t ino

let inode_blocks t ~ino =
  let acc = ref [] in
  for i = direct_blocks - 1 downto 0 do
    let b = inode_block t ino i in
    if b <> 0 then acc := (i, b - 1) :: !acc
  done;
  !acc

(* --- Consistency ------------------------------------------------------------- *)

let check_consistent t =
  let errors = ref [] in
  let err fmt = Format.kasprintf (fun s -> errors := s :: !errors) fmt in
  let m = machine t in
  let referenced = Hashtbl.create 64 in
  (* Walk every live inode's block list. *)
  for ino = 0 to t.ninodes - 1 do
    let ty = inode_type t ino in
    if ty <> 0 then begin
      if ty <> 1 && ty <> 2 then err "inode %d has invalid type %d" ino ty;
      for i = 0 to direct_blocks - 1 do
        let b = inode_block t ino i in
        if b <> 0 then begin
          let b = b - 1 in
          if b < 0 || b >= t.nblocks then err "inode %d references bad block %d" ino b
          else begin
            if Hashtbl.mem referenced b then err "block %d referenced twice" b;
            Hashtbl.replace referenced b ino;
            if Access.get_u8 m (bitmap_byte t b) = 0 then
              err "block %d referenced by inode %d but free in bitmap" b ino
          end
        end
      done;
      if ty = 1 && inode_nsize t ino > direct_blocks * block_size then
        err "inode %d has impossible size %d" ino (inode_nsize t ino)
    end
  done;
  (* Bitmap bytes must be 0/1 and set only for referenced blocks. *)
  for b = 0 to t.nblocks - 1 do
    let v = Access.get_u8 m (bitmap_byte t b) in
    if v <> 0 && v <> 1 then err "bitmap byte for block %d is %d" b v;
    if v = 1 && not (Hashtbl.mem referenced b) then err "block %d leaked (set but unreferenced)" b
  done;
  (* Directory entries must reference live file inodes. *)
  iter_dirents t (fun ~de:_ ~ino ~in_use ~name ->
      if in_use = 1 then begin
        if ino < 0 || ino >= t.ninodes then err "dirent %s references bad inode %d" name ino
        else if inode_type t ino <> 1 then err "dirent %s references non-file inode %d" name ino;
        if name = "" then err "dirent with inode %d has empty name" ino
      end);
  match !errors with [] -> Ok () | es -> Error (String.concat "; " (List.rev es))
