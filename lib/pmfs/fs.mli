(** Simulated PMFS — a PM-optimized file system kernel module
    (Dulloor et al., EuroSys'14; the paper's kernel-space CCS).

    On-media layout: superblock, undo journal, inode table, block bitmap,
    data blocks; a single root directory. Metadata updates run inside an
    undo-journaled transaction (journal entry persisted before the
    in-place change, all metadata flushed at commit, then the journal is
    invalidated); file data is written in place and flushed directly, as
    PMFS does with its XIP path.

    The three Table-6 PMFS bugs are reproducible switches:
    - {!Journal_double_flush} — journal.c:632: commit writes back the log
      entry again although it was already flushed when appended (the
      {e new} bug PMTest found);
    - {!Data_double_flush} — xips.c:207/262: the data buffer is flushed
      twice on the write path (known bug);
    - {!Flush_unmapped} — files.c:232: an untouched buffer is flushed on
      the read path (known bug).

    And two crash-consistency fault switches for the synthetic suite:
    - {!Skip_journal_flush} — journal entries are not persisted before
      the in-place metadata change;
    - {!Skip_commit_fence} — metadata writebacks at commit are unfenced.

    Two performance-bug switches seed the auto-repair differentials
    (the repairer must delete exactly the surplus fence):
    - {!Fsync_redundant_fence} — fsync.c:260: the fsync drain fence is
      emitted without the deliberate-drain lint annotation, so an fsync
      with nothing outstanding fences nothing;
    - {!Empty_tx_fence} — journal.c:633: committing an {e empty}
      transaction still emits the commit fence, although no writeback
      precedes it and the journal reset carries its own barrier.

    One data-integrity switch reproduces a bug the crashfs harness
    found in this module's own write path:
    - {!Alloc_no_zero} — a freshly allocated data block is not zeroed
      outside the incoming data range, so a block freed by an unlink
      leaks the previous owner's bytes into the new file's holes. The
      trace checkers cannot see it (every store is flushed and fenced
      correctly); only remounting and reading the file back does. *)

open Pmtest_trace
module Machine = Pmtest_pmem.Machine

type t

type fault =
  | Journal_double_flush
  | Data_double_flush
  | Flush_unmapped
  | Skip_journal_flush
  | Skip_commit_fence
  | Fsync_redundant_fence
  | Empty_tx_fence
  | Alloc_no_zero

val source_file : string
val block_size : int

val mkfs :
  ?track_versions:bool ->
  ?inodes:int ->
  ?blocks:int ->
  ?journal_entries:int ->
  sink:Sink.t ->
  unit ->
  t
(** Format a fresh device and mount it. [journal_entries] sizes the undo
    journal (default 510); crash-image enumeration uses small journals to
    keep images compact. The capacity is recovered from the superblock
    geometry on {!mount}. *)

val mount : machine:Machine.t -> sink:Sink.t -> t
(** Mount an existing device image: an interrupted journal is rolled
    back first. *)

val machine : t -> Machine.t
val recovered_entries : t -> int
val set_fault : t -> fault option -> unit

(** {1 File operations} *)

val create : t -> string -> (int, string) result
(** Create an empty file in the root directory; returns the inode number. *)

val lookup : t -> string -> int option
val unlink : t -> string -> (unit, string) result

val write : t -> ino:int -> off:int -> string -> (unit, string) result
(** Write (and persist) file data, extending the file as needed. *)

val read : t -> ino:int -> off:int -> len:int -> (string, string) result
val file_size : t -> ino:int -> int
val fsync : t -> ino:int -> unit
val readdir : t -> (string * int) list

val check_consistent : t -> (unit, string) result
(** Directory entries reference live inodes, block references are within
    bounds, no data block is referenced twice, and the bitmap agrees with
    the set of referenced blocks. *)

(** {1 Introspection}

    Raw layout views for external fsck-style checkers (the crashfs
    recovery harness layers cross-structure invariants on top of
    {!check_consistent}). *)

val ninodes : t -> int

val inode_kind : t -> ino:int -> int
(** Raw inode type field: 0 = free, 1 = file, 2 = directory. *)

val inode_blocks : t -> ino:int -> (int * int) list
(** Allocated [(slot, block)] pairs of the inode's direct-block array,
    in slot order; [block] is zero-based. *)
