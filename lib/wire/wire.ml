open Pmtest_util
module Model = Pmtest_model.Model
module Report = Pmtest_core.Report

(* One frame on the wire:

     version  u8   (= 1)
     kind     u8
     len      u32be  (payload bytes)
     crc      u32be  (CRC-32/IEEE of the payload)
     payload  len bytes

   The CRC catches a torn or bit-flipped frame before its payload ever
   reaches the packed decoder; the decoder's own validation (checked
   varints, loc-table bounds) then guards against a hostile client that
   computes a correct CRC over garbage. *)

(* Version 1 is the original checking protocol (kinds 0-7); version 2
   adds the pmfarm frame family (kinds 8-13).  A frame is stamped with
   the lowest version that can carry its kind, so the checking traffic
   of a version-2 binary is byte-identical to a version-1 peer's and the
   two interoperate; farm frames announce version 2 and a version-1-only
   reader rejects them cleanly at the header. *)
let version = 2
let min_version = 1
let farm_version = 1

(* Cap well above any real section (the fuzz generator tops out around
   tens of KiB) but low enough that a corrupt length field cannot make
   the reader try to allocate gigabytes. *)
let max_payload = 64 * 1024 * 1024

type kind =
  | Hello
  | Hello_ack
  | Prelude
  | Section
  | Get_result
  | Report_frame
  | Bye
  | Err
  | Worker_hello
  | Job_offer
  | Job_claim
  | Job_result
  | Job_refused
  | Checkpoint

let kind_code = function
  | Hello -> 0
  | Hello_ack -> 1
  | Prelude -> 2
  | Section -> 3
  | Get_result -> 4
  | Report_frame -> 5
  | Bye -> 6
  | Err -> 7
  | Worker_hello -> 8
  | Job_offer -> 9
  | Job_claim -> 10
  | Job_result -> 11
  | Checkpoint -> 12
  | Job_refused -> 13

let kind_of_code = function
  | 0 -> Some Hello
  | 1 -> Some Hello_ack
  | 2 -> Some Prelude
  | 3 -> Some Section
  | 4 -> Some Get_result
  | 5 -> Some Report_frame
  | 6 -> Some Bye
  | 7 -> Some Err
  | 8 -> Some Worker_hello
  | 9 -> Some Job_offer
  | 10 -> Some Job_claim
  | 11 -> Some Job_result
  | 12 -> Some Checkpoint
  | 13 -> Some Job_refused
  | _ -> None

let kind_name = function
  | Hello -> "hello"
  | Hello_ack -> "hello-ack"
  | Prelude -> "prelude"
  | Section -> "section"
  | Get_result -> "get-result"
  | Report_frame -> "report"
  | Bye -> "bye"
  | Err -> "err"
  | Worker_hello -> "worker-hello"
  | Job_offer -> "job-offer"
  | Job_claim -> "job-claim"
  | Job_result -> "job-result"
  | Job_refused -> "job-refused"
  | Checkpoint -> "checkpoint"

let kind_version = function
  | Hello | Hello_ack | Prelude | Section | Get_result | Report_frame | Bye | Err -> 1
  | Worker_hello | Job_offer | Job_claim | Job_result | Job_refused | Checkpoint -> 2

type error = Closed | Timeout | Corrupt of string | Version_mismatch of int

let error_to_string = function
  | Closed -> "connection closed"
  | Timeout -> "receive timeout"
  | Corrupt m -> "corrupt frame: " ^ m
  | Version_mismatch v ->
    Printf.sprintf "protocol version mismatch (peer sent %d, speak %d-%d)" v min_version version

(* --- CRC-32 (IEEE 802.3, reflected) ------------------------------------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 <> 0 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 s =
  let table = Lazy.force crc_table in
  let c = ref 0xffffffff in
  String.iter (fun ch -> c := table.((!c lxor Char.code ch) land 0xff) lxor (!c lsr 8)) s;
  !c lxor 0xffffffff

(* --- Raw fd I/O ---------------------------------------------------------- *)

(* SO_RCVTIMEO surfaces as EAGAIN/EWOULDBLOCK from read(2): that is the
   session idle timeout, distinct from the peer closing. *)
let rec read_exactly fd buf pos len =
  if len = 0 then Ok ()
  else
    match Unix.read fd buf pos len with
    | 0 -> Error Closed
    | n -> read_exactly fd buf (pos + n) (len - n)
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> Error Timeout
    | exception Unix.Unix_error (EINTR, _, _) -> read_exactly fd buf pos len
    | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> Error Closed

let rec write_exactly fd buf pos len =
  if len = 0 then Ok ()
  else
    match Unix.write fd buf pos len with
    | n -> write_exactly fd buf (pos + n) (len - n)
    | exception Unix.Unix_error (EINTR, _, _) -> write_exactly fd buf pos len
    | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> Error Closed

(* version + kind + len + crc. *)
let header_len = 10

let put_u32be b off v =
  Bytes.set b off (Char.chr ((v lsr 24) land 0xff));
  Bytes.set b (off + 1) (Char.chr ((v lsr 16) land 0xff));
  Bytes.set b (off + 2) (Char.chr ((v lsr 8) land 0xff));
  Bytes.set b (off + 3) (Char.chr (v land 0xff))

let get_u32be b off =
  (Char.code (Bytes.get b off) lsl 24)
  lor (Char.code (Bytes.get b (off + 1)) lsl 16)
  lor (Char.code (Bytes.get b (off + 2)) lsl 8)
  lor Char.code (Bytes.get b (off + 3))

let write_frame fd kind payload =
  let len = String.length payload in
  if len > max_payload then Error (Corrupt (Printf.sprintf "outgoing payload too large (%d bytes)" len))
  else begin
    (* One buffer, one write(2) in the common case — but write_exactly
       loops on partial writes, so a frame larger than the socket buffer
       is NOT atomic against a concurrent writer on the same fd.
       Callers that share an fd across threads must serialise their
       writes with a lock. *)
    let b = Bytes.create (header_len + len) in
    Bytes.set b 0 (Char.chr (kind_version kind));
    Bytes.set b 1 (Char.chr (kind_code kind));
    put_u32be b 2 len;
    put_u32be b 6 (crc32 payload);
    Bytes.blit_string payload 0 b header_len len;
    write_exactly fd b 0 (Bytes.length b)
  end

let read_frame fd =
  let hdr = Bytes.create header_len in
  match read_exactly fd hdr 0 header_len with
  | Error _ as e -> e
  | Ok () ->
    let v = Char.code (Bytes.get hdr 0) in
    if v < min_version || v > version then Error (Version_mismatch v)
    else (
      match kind_of_code (Char.code (Bytes.get hdr 1)) with
      | None -> Error (Corrupt (Printf.sprintf "unknown frame kind %d" (Char.code (Bytes.get hdr 1))))
      | Some kind when kind_version kind > v ->
        Error (Corrupt (Printf.sprintf "%s frame under protocol version %d" (kind_name kind) v))
      | Some kind ->
        let len = get_u32be hdr 2 in
        let crc = get_u32be hdr 6 in
        if len > max_payload then Error (Corrupt (Printf.sprintf "payload length %d exceeds limit" len))
        else begin
          let payload = Bytes.create len in
          match read_exactly fd payload 0 len with
          | Error Closed when len > 0 -> Error (Corrupt "frame truncated mid-payload")
          | Error _ as e -> e
          | Ok () ->
            let payload = Bytes.unsafe_to_string payload in
            if crc32 payload <> crc then Error (Corrupt "payload CRC mismatch")
            else Ok (kind, payload)
        end)

(* --- Buffered batch reader ----------------------------------------------

   One [read(2)] often delivers several frames when a client streams
   sections back-to-back (or when the reader fell behind); parsing them
   all out of one buffer amortises the syscall and the reader-thread
   wakeup across the whole batch instead of paying both per frame. *)

type reader = {
  rfd : Unix.file_descr;
  mutable buf : Bytes.t;
  mutable pos : int;  (* first unparsed byte *)
  mutable lim : int;  (* end of valid bytes *)
  (* A framing error poisons the stream (byte positions after it are
     meaningless), so it sticks: frames parsed before it are still
     delivered, then every later call re-reports the error.  [Timeout]
     is transient and does not stick. *)
  mutable rerr : error option;
}

let reader ?(buffer = 64 * 1024) fd =
  { rfd = fd; buf = Bytes.create (max buffer header_len); pos = 0; lim = 0; rerr = None }

let buffered r = r.lim - r.pos

(* [`Need n] = the current frame spans [n] bytes total and the buffer
   holds fewer; refill and retry. *)
let parse_one r =
  if buffered r < header_len then `Need header_len
  else begin
    let b = r.buf and off = r.pos in
    let v = Char.code (Bytes.get b off) in
    if v < min_version || v > version then `Fail (Version_mismatch v)
    else
      match kind_of_code (Char.code (Bytes.get b (off + 1))) with
      | None ->
        `Fail (Corrupt (Printf.sprintf "unknown frame kind %d" (Char.code (Bytes.get b (off + 1)))))
      | Some kind when kind_version kind > v ->
        `Fail (Corrupt (Printf.sprintf "%s frame under protocol version %d" (kind_name kind) v))
      | Some kind ->
        let len = get_u32be b (off + 2) in
        let crc = get_u32be b (off + 6) in
        if len > max_payload then
          `Fail (Corrupt (Printf.sprintf "payload length %d exceeds limit" len))
        else if buffered r < header_len + len then `Need (header_len + len)
        else begin
          let payload = Bytes.sub_string b (off + header_len) len in
          if crc32 payload <> crc then `Fail (Corrupt "payload CRC mismatch")
          else begin
            r.pos <- off + header_len + len;
            `Frame (kind, payload)
          end
        end
  end

(* EOF below a complete header is an orderly close; EOF after a header
   promised more payload is the same truncation [read_frame] reports. *)
let eof_error r = if buffered r >= header_len then Corrupt "frame truncated mid-payload" else Closed

let rec refill r ~need =
  if r.pos > 0 then begin
    let n = buffered r in
    Bytes.blit r.buf r.pos r.buf 0 n;
    r.pos <- 0;
    r.lim <- n
  end;
  if Bytes.length r.buf < need then begin
    let cap = ref (Bytes.length r.buf) in
    while !cap < need do
      cap := !cap * 2
    done;
    let nb = Bytes.create !cap in
    Bytes.blit r.buf 0 nb 0 r.lim;
    r.buf <- nb
  end;
  match Unix.read r.rfd r.buf r.lim (Bytes.length r.buf - r.lim) with
  | 0 -> Error (eof_error r)
  | n ->
    r.lim <- r.lim + n;
    Ok ()
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> Error Timeout
  | exception Unix.Unix_error (EINTR, _, _) -> refill r ~need
  | exception Unix.Unix_error ((ECONNRESET | EPIPE | EBADF), _, _) -> Error (eof_error r)

let set_err r e =
  (match e with Timeout -> () | _ -> r.rerr <- Some e);
  Error e

let rec read_one r =
  match r.rerr with
  | Some e -> Error e
  | None -> (
    match parse_one r with
    | `Frame f -> Ok f
    | `Fail e -> set_err r e
    | `Need need -> (
      match refill r ~need with Ok () -> read_one r | Error e -> set_err r e))

let rec read_batch r =
  match r.rerr with
  | Some e -> Error e
  | None -> (
    let rec drain acc =
      match parse_one r with
      | `Frame f -> drain (f :: acc)
      | `Need need -> `Need (need, acc)
      | `Fail e -> `Fail (e, acc)
    in
    match drain [] with
    | `Fail (e, []) -> set_err r e
    | `Fail (e, acc) ->
      (* Deliver what parsed cleanly; the sticky error resurfaces on the
         next call, so nothing ahead of the corruption is lost. *)
      (match e with Timeout -> () | _ -> r.rerr <- Some e);
      Ok (List.rev acc)
    | `Need (_, (_ :: _ as acc)) -> Ok (List.rev acc)
    | `Need (need, []) -> (
      match refill r ~need with Ok () -> read_batch r | Error e -> set_err r e))

(* --- Payload codecs ------------------------------------------------------ *)

(* Same unsigned LEB128 the packed arenas use; lengths and counts only
   (nothing here is signed).  The guard matters: without it a negative
   value reaches [Char.chr] after a handful of shifts and raises an
   [Invalid_argument] with no hint of where it came from — callers must
   validate signed quantities (seeds, ranges) before encoding. *)
let put_uv b v =
  if v < 0 then
    invalid_arg (Printf.sprintf "Wire.put_uv: negative value %d (unsigned LEB128 only)" v);
  let v = ref v in
  while !v >= 0x80 do
    Buffer.add_char b (Char.chr (0x80 lor (!v land 0x7f)));
    v := !v lsr 7
  done;
  Buffer.add_char b (Char.chr !v)

(* Reader over a payload string; all access bounds-checked, errors as
   [Corrupt]. *)
exception Bad of string

let get_uv s pos =
  let len = String.length s in
  let v = ref 0 and shift = ref 0 and p = ref pos and fin = ref false in
  while not !fin do
    if !p >= len then raise (Bad "truncated varint");
    if !shift > 62 then raise (Bad "varint overflow");
    let c = Char.code s.[!p] in
    incr p;
    v := !v lor ((c land 0x7f) lsl !shift);
    shift := !shift + 7;
    if c < 0x80 then fin := true
  done;
  (!v, !p)

let put_str b s =
  put_uv b (String.length s);
  Buffer.add_string b s

let get_str s pos =
  let n, pos = get_uv s pos in
  if pos + n > String.length s then raise (Bad "truncated string");
  (String.sub s pos n, pos + n)

let decode f s = match f s with v -> Ok v | exception Bad m -> Error (Corrupt m)

let at_end s pos = if pos <> String.length s then raise (Bad "trailing bytes in payload")

(* Hello: the session's persistency model. *)

let model_code = function Model.X86 -> 0 | Model.Hops -> 1 | Model.Eadr -> 2 | Model.Cxl -> 3
let model_of_code = function 0 -> Model.X86 | 1 -> Model.Hops | 2 -> Model.Eadr | 3 -> Model.Cxl | c -> raise (Bad (Printf.sprintf "unknown model code %d" c))

let encode_hello ~model =
  let b = Buffer.create 4 in
  put_uv b (model_code model);
  Buffer.contents b

let decode_hello s =
  decode
    (fun s ->
      let c, pos = get_uv s 0 in
      at_end s pos;
      model_of_code c)
    s

(* Hello-ack: session id plus the server's backpressure contract. *)

type policy = Block | Shed

let policy_code = function Block -> 0 | Shed -> 1
let policy_of_code = function 0 -> Block | 1 -> Shed | c -> raise (Bad (Printf.sprintf "unknown policy code %d" c))
let policy_name = function Block -> "block" | Shed -> "shed"

let encode_hello_ack ~session ~max_inflight ~policy =
  let b = Buffer.create 8 in
  put_uv b session;
  put_uv b max_inflight;
  put_uv b (policy_code policy);
  Buffer.contents b

let decode_hello_ack s =
  decode
    (fun s ->
      let session, pos = get_uv s 0 in
      let max_inflight, pos = get_uv s pos in
      let pc, pos = get_uv s pos in
      at_end s pos;
      (session, max_inflight, policy_of_code pc))
    s

(* Report: the aggregate a session has earned so far.  Diagnostics carry
   (kind, loc, message) — exactly the identity the cross-engine oracles
   compare on, so serve-vs-in-process equality is meaningful. *)

let report_kinds =
  [|
    Report.Not_persisted;
    Report.Not_ordered;
    Report.Unnecessary_writeback;
    Report.Duplicate_writeback;
    Report.Missing_log;
    Report.Duplicate_log;
    Report.Incomplete_tx;
    Report.Invalid_op;
    Report.Lint_unflushed_write;
    Report.Lint_unfenced_flush;
    Report.Lint_redundant_fence;
    Report.Lint_write_after_flush;
    Report.Lint_unmatched_exclude;
  |]

let report_kind_code k =
  let rec go i = if report_kinds.(i) = k then i else go (i + 1) in
  go 0

let report_kind_of_code c =
  if c < 0 || c >= Array.length report_kinds then
    raise (Bad (Printf.sprintf "unknown diagnostic kind code %d" c))
  else report_kinds.(c)

let encode_report (r : Report.t) =
  let b = Buffer.create 64 in
  put_uv b r.Report.entries;
  put_uv b r.Report.ops;
  put_uv b r.Report.checkers;
  put_uv b (List.length r.Report.diagnostics);
  List.iter
    (fun (d : Report.diagnostic) ->
      put_uv b (report_kind_code d.Report.kind);
      let loc = (d.Report.loc :> Loc.t) in
      put_str b (if Loc.is_none d.Report.loc then "" else loc.Loc.file);
      put_uv b loc.Loc.line;
      put_str b d.Report.message)
    r.Report.diagnostics;
  Buffer.contents b

let decode_report s =
  decode
    (fun s ->
      let entries, pos = get_uv s 0 in
      let ops, pos = get_uv s pos in
      let checkers, pos = get_uv s pos in
      let n, pos = get_uv s pos in
      let pos = ref pos in
      let diags =
        List.init n (fun _ ->
            let kc, p = get_uv s !pos in
            let file, p = get_str s p in
            let line, p = get_uv s p in
            let message, p = get_str s p in
            pos := p;
            let loc = if file = "" && line = 0 then Loc.none else Loc.make ~file ~line in
            { Report.kind = report_kind_of_code kc; loc; message })
      in
      at_end s !pos;
      { Report.diagnostics = diags; entries; ops; checkers })
    s

(* Err: a human-readable refusal (session limit, corrupt section, ...). *)

let encode_err msg =
  let b = Buffer.create (String.length msg + 2) in
  put_str b msg;
  Buffer.contents b

let decode_err s =
  decode
    (fun s ->
      let m, pos = get_str s 0 in
      at_end s pos;
      m)
    s

(* --- Farm frames (protocol version 2) ------------------------------------

   The coordinator/worker handshake negotiates a farm protocol level:
   each side announces the highest level it speaks in [Worker_hello] and
   both proceed at the minimum.  Jobs are identified by (id, attempt):
   the attempt distinguishes a reassigned or stolen copy of the same
   seed range, so a stale result from a presumed-dead worker can still
   be matched to its job and digest-compared for nondeterminism. *)

let encode_worker_hello ~farm ~name ~engines =
  let b = Buffer.create 16 in
  put_uv b farm;
  put_str b name;
  put_uv b engines;
  Buffer.contents b

let decode_worker_hello s =
  decode
    (fun s ->
      let farm, pos = get_uv s 0 in
      let name, pos = get_str s pos in
      let engines, pos = get_uv s pos in
      at_end s pos;
      (farm, name, engines))
    s

let encode_job_offer ~job ~attempt ~lo ~hi ~spec =
  let b = Buffer.create 32 in
  put_uv b job;
  put_uv b attempt;
  put_uv b lo;
  put_uv b hi;
  put_str b spec;
  Buffer.contents b

let decode_job_offer s =
  decode
    (fun s ->
      let job, pos = get_uv s 0 in
      let attempt, pos = get_uv s pos in
      let lo, pos = get_uv s pos in
      let hi, pos = get_uv s pos in
      let spec, pos = get_str s pos in
      at_end s pos;
      if hi < lo then raise (Bad "job seed range is inverted");
      (job, attempt, lo, hi, spec))
    s

let encode_job_claim ~job ~attempt =
  let b = Buffer.create 8 in
  put_uv b job;
  put_uv b attempt;
  Buffer.contents b

let decode_job_claim s =
  decode
    (fun s ->
      let job, pos = get_uv s 0 in
      let attempt, pos = get_uv s pos in
      at_end s pos;
      (job, attempt))
    s

let encode_job_result ~job ~attempt ~digest ~units ~elapsed_ms ~findings =
  let b = Buffer.create 64 in
  put_uv b job;
  put_uv b attempt;
  put_str b digest;
  put_uv b units;
  put_uv b elapsed_ms;
  put_uv b (List.length findings);
  List.iter
    (fun (name, text) ->
      put_str b name;
      put_str b text)
    findings;
  Buffer.contents b

let decode_job_result s =
  decode
    (fun s ->
      let job, pos = get_uv s 0 in
      let attempt, pos = get_uv s pos in
      let digest, pos = get_str s pos in
      let units, pos = get_uv s pos in
      let elapsed_ms, pos = get_uv s pos in
      let n, pos = get_uv s pos in
      let pos = ref pos in
      let findings =
        List.init n (fun _ ->
            let name, p = get_str s !pos in
            let text, p = get_str s p in
            pos := p;
            (name, text))
      in
      at_end s !pos;
      (job, attempt, digest, units, elapsed_ms, findings))
    s

(* Job_refused: the worker could not run an offered job (unknown fault,
   bad spec, inverted range...).  Carrying the job id is what lets the
   coordinator unassign the job instead of leaving it held forever by a
   live, heartbeating worker. *)

let encode_job_refused ~job ~attempt ~reason =
  let b = Buffer.create 32 in
  put_uv b job;
  put_uv b attempt;
  put_str b reason;
  Buffer.contents b

let decode_job_refused s =
  decode
    (fun s ->
      let job, pos = get_uv s 0 in
      let attempt, pos = get_uv s pos in
      let reason, pos = get_str s pos in
      at_end s pos;
      (job, attempt, reason))
    s

(* Checkpoint doubles as the worker heartbeat: [running] is the job id
   the worker is currently executing plus one (0 = idle), so liveness
   and progress travel in one small frame. *)

let encode_checkpoint ~running ~jobs_done =
  let b = Buffer.create 8 in
  put_uv b (match running with None -> 0 | Some j -> j + 1);
  put_uv b jobs_done;
  Buffer.contents b

let decode_checkpoint s =
  decode
    (fun s ->
      let r, pos = get_uv s 0 in
      let jobs_done, pos = get_uv s pos in
      at_end s pos;
      ((if r = 0 then None else Some (r - 1)), jobs_done))
    s
