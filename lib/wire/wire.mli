(** The [pmtestd]/[pmfarm] framed protocol.

    Every message between an attached client and the daemon is one
    frame:

    {v
    version  u8     (1 or 2)
    kind     u8
    len      u32be  payload length in bytes
    crc      u32be  CRC-32/IEEE of the payload
    payload  len bytes
    v}

    Frame kinds and their payloads:

    - [Hello] (client → server): persistency model code — opens a
      session.
    - [Hello_ack] (server → client): session id, the server's
      [max_inflight] bound and backpressure {!policy}.
    - [Prelude] (client → server): the session's current exclusion
      preamble as a {!Pmtest_trace.Packed.encode_wire} arena; re-sent
      only when it changes, applies to every following [Section].
    - [Section] (client → server): one packed trace section
      ([Packed.encode_wire]).
    - [Get_result] (client → server): barrier — reply comes once every
      section sent so far is checked.
    - [Report_frame] (server → client): the session's aggregate report.
    - [Bye] (client → server): orderly close (empty payload).
    - [Err] (server → client): refusal with a message; the session is
      then closed.

    Protocol version 2 adds the pmfarm campaign-distribution family:

    - [Worker_hello] (both ways): farm protocol level, peer name,
      engine capability mask — the worker announces, the coordinator
      echoes back the negotiated minimum and the assigned worker id.
    - [Job_offer] (coordinator → worker): one campaign chunk — job id,
      attempt, seed range [lo, hi) and the campaign spec string.
    - [Job_claim] (worker → coordinator): the worker accepted the job.
    - [Job_result] (worker → coordinator): result digest, units run,
      elapsed time and the shrunk reproducers found in the chunk.
    - [Job_refused] (worker → coordinator): the worker could not run
      the offered job (unknown fault, undecodable spec, bad range); the
      coordinator unassigns the job and requeues it — or aborts the
      campaign once the same job is refused repeatedly.
    - [Checkpoint] (worker → coordinator): heartbeat — the running job
      (if any) and jobs completed so far.

    A frame is stamped with the lowest version that can carry its kind:
    checking traffic stays version 1 on the wire (a pre-farm [Hello]
    negotiates down to a plain checking session with no byte changed),
    farm frames are stamped 2 and a version-1-only peer rejects them at
    the header.

    The CRC rejects torn or corrupted frames cheaply;
    [Packed.decode_wire]'s full validation then protects the worker
    pool from adversarial payloads that carry a correct CRC. *)

module Model = Pmtest_model.Model
module Report = Pmtest_core.Report

val version : int
(** Highest frame version this build speaks (2). *)

val min_version : int
(** Lowest frame version still accepted (1 — the pre-farm protocol). *)

val farm_version : int
(** Farm protocol level carried inside [Worker_hello]; both sides of a
    farm link proceed at the minimum of what they announce. *)

val max_payload : int
(** Reader-side allocation guard (64 MiB); larger frames are corrupt by
    definition. *)

type kind =
  | Hello
  | Hello_ack
  | Prelude
  | Section
  | Get_result
  | Report_frame
  | Bye
  | Err
  | Worker_hello
  | Job_offer
  | Job_claim
  | Job_result
  | Job_refused
  | Checkpoint

val kind_code : kind -> int
val kind_of_code : int -> kind option
val kind_name : kind -> string

val kind_version : kind -> int
(** The frame version a kind is stamped with: 1 for the checking
    family, 2 for the farm family. *)

type error =
  | Closed  (** Peer hung up (or fd shut down during drain). *)
  | Timeout  (** [SO_RCVTIMEO] expired — the session idle limit. *)
  | Corrupt of string  (** Bad CRC / kind / length / payload encoding. *)
  | Version_mismatch of int  (** Peer speaks another protocol version. *)

val error_to_string : error -> string

val crc32 : string -> int
(** CRC-32/IEEE (the zlib polynomial), for tests and tools. *)

val header_len : int
(** Fixed frame header size (10 bytes) — for byte accounting. *)

(** {1 Frame I/O}

    Blocking, EINTR-safe reads and writes on a connected socket. A
    frame goes out from a single buffer — usually one [write(2)] — but
    a frame larger than the socket buffer is completed by looping on
    partial writes, so concurrent writers on one fd {e can} tear it:
    serialise shared-fd writes with a lock. *)

val read_frame : Unix.file_descr -> (kind * string, error) result
val write_frame : Unix.file_descr -> kind -> string -> (unit, error) result

(** {1 Buffered batch reading}

    A {!reader} wraps one fd with a growable buffer so that a single
    [read(2)] can yield every frame it delivered.  Framing errors
    ([Closed], [Corrupt _], [Version_mismatch _]) are {e sticky}: frames
    parsed before the error are still returned, and the error is
    re-reported by every later call.  [Timeout] is transient.  Do not
    mix {!read_frame} with reader calls on the same fd — bytes already
    buffered by the reader would be skipped. *)

type reader

val reader : ?buffer:int -> Unix.file_descr -> reader
(** [reader fd] wraps [fd]; [buffer] (default 64 KiB) is the initial
    buffer size, grown as needed up to one [max_payload] frame. *)

val read_one : reader -> (kind * string, error) result
(** Exactly {!read_frame}, through the buffer: blocks until one full
    frame (or an error) is available. *)

val read_batch : reader -> ((kind * string) list, error) result
(** Block until at least one full frame is available, then return
    {e every} complete frame in the buffer without further I/O.  The
    returned list is never empty. *)

(** {1 Payload codecs}

    Decoders are total: malformed payloads yield [Error (Corrupt _)],
    never an exception, and trailing bytes are rejected. *)

val encode_hello : model:Model.kind -> string
val decode_hello : string -> (Model.kind, error) result

type policy = Block | Shed
(** What the server does when a session exceeds [max_inflight] unchecked
    sections: [Block] stops reading that session's socket (the client
    blocks in [write(2)] once buffers fill); [Shed] drops further
    sections on the floor and counts them. *)

val policy_code : policy -> int
val policy_name : policy -> string

val encode_hello_ack : session:int -> max_inflight:int -> policy:policy -> string
val decode_hello_ack : string -> (int * int * policy, error) result

val encode_report : Report.t -> string
val decode_report : string -> (Report.t, error) result
(** Round-trip preserves exactly the fields report equality is judged
    on: entries/ops/checkers and each diagnostic's (kind, loc, message),
    in order. *)

val encode_err : string -> string
val decode_err : string -> (string, error) result

(** {1 Farm payload codecs}

    Jobs are identified by [(id, attempt)]: the attempt number
    distinguishes a reassigned or stolen copy of the same seed range,
    so a stale result from a presumed-dead worker still matches its job
    and is digest-compared for nondeterminism instead of dropped. *)

val encode_worker_hello : farm:int -> name:string -> engines:int -> string
val decode_worker_hello : string -> (int * string * int, error) result
(** [(farm_level, name, engine_mask)]. *)

val encode_job_offer : job:int -> attempt:int -> lo:int -> hi:int -> spec:string -> string
val decode_job_offer : string -> (int * int * int * int * string, error) result
(** [(job, attempt, lo, hi, spec)]; an inverted seed range is corrupt. *)

val encode_job_claim : job:int -> attempt:int -> string
val decode_job_claim : string -> (int * int, error) result

val encode_job_result :
  job:int ->
  attempt:int ->
  digest:string ->
  units:int ->
  elapsed_ms:int ->
  findings:(string * string) list ->
  string

val decode_job_result :
  string -> (int * int * string * int * int * (string * string) list, error) result
(** [(job, attempt, digest, units, elapsed_ms, findings)] where each
    finding is [(name, reproducer_text)]. *)

val encode_job_refused : job:int -> attempt:int -> reason:string -> string
val decode_job_refused : string -> (int * int * string, error) result
(** [(job, attempt, reason)] — a worker-side failure to {e run} the
    job, as opposed to a link failure (which needs no frame at all). *)

val encode_checkpoint : running:int option -> jobs_done:int -> string
val decode_checkpoint : string -> (int option * int, error) result
(** Worker heartbeat: the job currently executing (if any) and jobs
    completed over the connection's lifetime. *)
