module Report = Pmtest_core.Report

type t =
  | Write_never_flushed
  | Flush_without_fence
  | Redundant_fence
  | Duplicate_flush
  | Unnecessary_flush
  | Write_after_flush
  | Unlogged_tx_write
  | Unbalanced_tx
  | Unmatched_exclude

let all =
  [
    Write_never_flushed;
    Flush_without_fence;
    Redundant_fence;
    Duplicate_flush;
    Unnecessary_flush;
    Write_after_flush;
    Unlogged_tx_write;
    Unbalanced_tx;
    Unmatched_exclude;
  ]

let index = function
  | Write_never_flushed -> 0
  | Flush_without_fence -> 1
  | Redundant_fence -> 2
  | Duplicate_flush -> 3
  | Unnecessary_flush -> 4
  | Write_after_flush -> 5
  | Unlogged_tx_write -> 6
  | Unbalanced_tx -> 7
  | Unmatched_exclude -> 8

let id = function
  | Write_never_flushed -> "write-never-flushed"
  | Flush_without_fence -> "flush-without-fence"
  | Redundant_fence -> "redundant-fence"
  | Duplicate_flush -> "duplicate-flush"
  | Unnecessary_flush -> "unnecessary-flush"
  | Write_after_flush -> "write-after-flush"
  | Unlogged_tx_write -> "unlogged-tx-write"
  | Unbalanced_tx -> "unbalanced-tx"
  | Unmatched_exclude -> "unmatched-exclude"

let of_id s = List.find_opt (fun r -> id r = s) all

let doc = function
  | Write_never_flushed -> "a store is still dirty (never written back) when the trace ends"
  | Flush_without_fence -> "a writeback is never completed by a fence"
  | Redundant_fence -> "a fence with no writeback pending since the previous ordering point"
  | Duplicate_flush -> "a range whose pending write was already flushed is flushed again"
  | Unnecessary_flush -> "a writeback covers bytes no store dirtied"
  | Write_after_flush -> "a store lands in a range with a flushed-but-unfenced writeback"
  | Unlogged_tx_write -> "an in-transaction store has no covering TX_ADD backup"
  | Unbalanced_tx -> "TX_BEGIN and TX_END/TX_ABORT do not balance"
  | Unmatched_exclude -> "an EXCLUDE is never re-INCLUDEd"

let report_kind = function
  | Write_never_flushed -> Report.Lint_unflushed_write
  | Flush_without_fence -> Report.Lint_unfenced_flush
  | Redundant_fence -> Report.Lint_redundant_fence
  | Duplicate_flush -> Report.Duplicate_writeback
  | Unnecessary_flush -> Report.Unnecessary_writeback
  | Write_after_flush -> Report.Lint_write_after_flush
  | Unlogged_tx_write -> Report.Missing_log
  | Unbalanced_tx -> Report.Incomplete_tx
  | Unmatched_exclude -> Report.Lint_unmatched_exclude

let severity r = Report.kind_severity (report_kind r)
let default_enabled = function Unmatched_exclude -> false | _ -> true

type set = int

let none = 0
let everything = (1 lsl List.length all) - 1

let default =
  List.fold_left (fun s r -> if default_enabled r then s lor (1 lsl index r) else s) none all

let mem s r = s land (1 lsl index r) <> 0
let enable s r = s lor (1 lsl index r)
let disable s r = s land lnot (1 lsl index r)
let to_list s = List.filter (mem s) all

let of_spec spec =
  let tokens =
    String.split_on_char ',' spec |> List.map String.trim |> List.filter (fun t -> t <> "")
  in
  (* A spec that leads with a bare rule name means "only these rules";
     +/- tokens tweak the default set instead. *)
  let base =
    match tokens with
    | [] -> default
    | tok :: _ -> (
      match tok with
      | "all" | "none" | "default" -> default
      | _ when tok.[0] = '+' || tok.[0] = '-' -> default
      | _ -> none)
  in
  List.fold_left
    (fun acc tok ->
      match acc with
      | Error _ -> acc
      | Ok s -> (
        match tok with
        | "all" -> Ok everything
        | "none" -> Ok none
        | "default" -> Ok default
        | _ ->
          let add, name =
            if tok.[0] = '+' then (true, String.sub tok 1 (String.length tok - 1))
            else if tok.[0] = '-' then (false, String.sub tok 1 (String.length tok - 1))
            else (true, tok)
          in
          (match of_id name with
          | None ->
            Error
              (Printf.sprintf "unknown lint rule %S (valid rules: %s)" name
                 (String.concat ", " (List.map id all)))
          | Some r -> Ok (if add then enable s r else disable s r))))
    (Ok base) tokens

let pp_set ppf s =
  Format.fprintf ppf "{%s}" (String.concat "," (List.map id (to_list s)))

let help () =
  String.concat "\n"
    (List.map
       (fun r ->
         Printf.sprintf "%-21s %s%s" (id r) (doc r)
           (if default_enabled r then "" else " [off by default]"))
       all)
