type range = { addr : int; size : int }

type t =
  | Delete
  | Narrow of range list
  | Insert_flush of range list
  | Insert_fence
  | Insert_log of range list
  | Hint of string

let range ~addr ~size =
  if size <= 0 then invalid_arg "Fixit.range: size must be positive";
  { addr; size }

let ranges_to_string rs =
  String.concat "," (List.map (fun r -> Printf.sprintf "0x%x+%d" r.addr r.size) rs)

(* Machine lines are tab-separated; a hint that smuggled a tab or
   newline in would corrupt the record. *)
let sanitize s = String.map (function '\t' | '\n' | '\r' -> ' ' | c -> c) s

let to_string = function
  | Delete -> "delete"
  | Narrow rs -> "narrow=" ^ ranges_to_string rs
  | Insert_flush rs -> "insert-flush=" ^ ranges_to_string rs
  | Insert_fence -> "insert-fence"
  | Insert_log rs -> "insert-log=" ^ ranges_to_string rs
  | Hint s -> "hint=" ^ sanitize s

let parse_ranges s =
  let parts = String.split_on_char ',' s in
  let parse_one p =
    match String.index_opt p '+' with
    | None -> None
    | Some i -> (
      let a = String.sub p 0 i and n = String.sub p (i + 1) (String.length p - i - 1) in
      match (int_of_string_opt a, int_of_string_opt n) with
      | Some addr, Some size when size > 0 -> Some { addr; size }
      | _ -> None)
  in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | p :: rest -> ( match parse_one p with None -> None | Some r -> go (r :: acc) rest)
  in
  if s = "" then None else go [] parts

let of_string s =
  match s with
  | "delete" -> Some Delete
  | "insert-fence" -> Some Insert_fence
  | _ -> (
    match String.index_opt s '=' with
    | None -> None
    | Some i -> (
      let key = String.sub s 0 i and v = String.sub s (i + 1) (String.length s - i - 1) in
      match key with
      | "hint" -> Some (Hint v)
      | "narrow" -> Option.map (fun rs -> Narrow rs) (parse_ranges v)
      | "insert-flush" -> Option.map (fun rs -> Insert_flush rs) (parse_ranges v)
      | "insert-log" -> Option.map (fun rs -> Insert_log rs) (parse_ranges v)
      | _ -> None))

let describe = function
  | Delete -> "delete this instruction"
  | Narrow rs -> Printf.sprintf "narrow this writeback to %s" (ranges_to_string rs)
  | Insert_flush rs -> Printf.sprintf "insert a writeback of %s before the final fence"
                         (ranges_to_string rs)
  | Insert_fence -> "insert a drain fence before the trace ends"
  | Insert_log rs -> Printf.sprintf "insert TX_ADD over %s before this store" (ranges_to_string rs)
  | Hint s -> s

let equal a b = a = b
