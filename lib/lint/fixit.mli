(** Structured fix-it suggestions.

    Lint findings used to carry a free-form prose suggestion; the
    auto-repair pass ({!Pmtest_repair.Repair}) needs something it can
    apply mechanically, so suggestions are now a small closed edit
    language anchored at the finding's event index:

    - {!Delete}: remove the offending instruction (redundant fences,
      duplicate/unnecessary writebacks that do no useful work).
    - {!Narrow}: replace the writeback with writebacks of exactly the
      listed ranges — the portion that actually flushes dirty data.
    - {!Insert_flush}: append writebacks of the listed still-dirty
      ranges before the end of the trace.
    - {!Insert_fence}: append a drain fence ([sfence]/[dfence]) before
      the end of the trace.
    - {!Insert_log}: insert [TX_ADD] entries for the listed ranges
      immediately before the offending in-transaction store.
    - {!Hint}: prose advice that cannot be applied mechanically (e.g.
      "move this store after the fence"). The repairer skips these.

    The machine form ({!to_string}/{!of_string}) is a stable
    single-token grammar used in {!Lint.machine_lines}:
    [delete], [insert-fence], [narrow=0x100+8,0x140+8],
    [insert-flush=0x100+8], [insert-log=0x100+8], [hint=<prose>]. *)

type range = { addr : int; size : int }

type t =
  | Delete
  | Narrow of range list
  | Insert_flush of range list
  | Insert_fence
  | Insert_log of range list
  | Hint of string

val range : addr:int -> size:int -> range
(** Raises [Invalid_argument] when [size <= 0]. *)

val to_string : t -> string
(** Stable machine form (never contains tabs or newlines). *)

val of_string : string -> t option
(** Inverse of {!to_string} (hints round-trip up to tab/newline
    sanitisation). *)

val describe : t -> string
(** Human-readable rendering for pretty reports. *)

val equal : t -> t -> bool
