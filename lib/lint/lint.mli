(** pmlint: a static, checker-free lint pass over PM traces.

    The dynamic engine ({!Pmtest_core.Engine}) answers questions the
    program asks through checkers ([isPersist], [isOrderedBefore], the
    transaction scope). The lint needs no annotations at all: one
    forward dataflow pass over a recorded [Event.t array] tracks the
    dirty/flushed/fenced state of every byte range and reports
    anti-patterns directly from the operation stream — stores that are
    never written back, writebacks that no fence completes, fences that
    order nothing, duplicate and unnecessary writebacks, unlogged
    in-transaction stores, and unbalanced transactions.

    What it cannot see is {e intent}: a missing fence {e between} two
    specific persists (the classic publish-before-persist race) is
    invisible when a later fence in the stream happens to cover both —
    only a checker carries that ordering requirement. The lint and the
    engine are therefore complements, not substitutes.

    Where a rule overlaps the engine's own performance diagnostics
    ({!Rule.Duplicate_flush}, {!Rule.Unnecessary_flush}), the pass
    reproduces the engine's semantics exactly — same exclusion holes,
    same one-diagnostic-per-instruction dedup — so both tools agree on
    the same trace.

    Inline suppression: [Event.Lint_off {rule}] disables the named rule
    (or every rule, for ["*"]) until a matching [Event.Lint_on]. For
    end-of-trace rules the suppression state is captured at the store
    or writeback that would be reported. *)

open Pmtest_util
open Pmtest_model
open Pmtest_trace

type finding = {
  rule : Rule.t;
  index : int;
      (** The trace index the fix-it anchors to: the offending event for
          deletions/narrowings/log insertions, the trace length for
          end-of-trace flush/fence insertions. *)
  loc : Loc.t;  (** Where the offending instruction was issued. *)
  message : string;
  fixit : Fixit.t option;
      (** A structured suggested edit, when one exists ({!Fixit.Hint}
          for advice that cannot be applied mechanically). *)
}

type result = {
  findings : finding list;  (** In trace order; end-of-trace sweeps last. *)
  entries : int;
  ops : int;
  checkers : int;  (** Checker entries seen (and ignored) in the input. *)
}

val run : ?model:Model.kind -> ?rules:Rule.set -> Event.t array -> result
(** Analyse one trace. [model] defaults to {!Model.X86}; [rules] to
    {!Rule.default}. *)

val report_of : result -> Pmtest_core.Report.t
(** Findings as engine diagnostics (fix-its appended to the message),
    so [Report.summarize] / [Report.pp_summary] work unchanged. *)

val strip_checkers : Event.t array -> Event.t array
(** Drop every checker entry and transaction-checker scope marker —
    the trace an unannotated program would have produced. Used to
    validate the lint against the bug catalog. *)

val has_fail : result -> bool

val pp_finding : Format.formatter -> finding -> unit
val pp : Format.formatter -> result -> unit

val machine_lines : result -> string list
(** One tab-separated line per finding:
    [severity<TAB>rule<TAB>file:line<TAB>message<TAB>fixit], where
    [fixit] is the stable {!Fixit.to_string} form (["-"] when absent) —
    stable output for CI and editor integrations. *)
