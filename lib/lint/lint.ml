open Pmtest_util
open Pmtest_itree
open Pmtest_model
open Pmtest_trace
module Report = Pmtest_core.Report

type finding = {
  rule : Rule.t;
  index : int;
  loc : Loc.t;
  message : string;
  fixit : Fixit.t option;
}

type result = { findings : finding list; entries : int; ops : int; checkers : int }

(* Per-byte-range shadow state. [wserial]/[fserial] identify the store
   and writeback instructions that produced the state, so end-of-trace
   sweeps report each instruction once however many fragments the
   interval map split it into. Suppression is captured eagerly: the
   [LINT_OFF] scope that matters is the one active where the store or
   writeback was issued, not where the trace ends. *)
type flush_info = { fserial : int; floc : Loc.t; fepoch : int; fsup : bool }

type status = {
  wserial : int;
  wloc : Loc.t;
  wepoch : int;  (** Fence epoch at the store — HOPS durability. *)
  wsup : bool;
  flush : flush_info option;
}

type st = {
  model : Model.kind;
  rules : Rule.set;
  mutable epoch : int;  (** sfence count (x86) / dfence count (HOPS). *)
  mutable shadow : status Interval_map.t;
  mutable excluded : unit Interval_map.t;
  mutable excl_sites : (Loc.t * bool) Interval_map.t;
  mutable logged : unit Interval_map.t;
  mutable tx_depth : int;
  mutable tx_stack : Loc.t list;  (** Open TX_BEGIN locations, newest first. *)
  mutable work_since_fence : int;
  mutable cur : int;  (** Index of the event being analysed; trace length during {!sweep}. *)
  mutable serial : int;
  mutable wild_off : int;
  offs : (string, int) Hashtbl.t;
  findings : finding Vec.t;
  mutable entries : int;
  mutable ops : int;
  mutable checkers : int;
}

let suppressed st rule =
  st.wild_off > 0
  || match Hashtbl.find_opt st.offs (Rule.id rule) with Some n -> n > 0 | None -> false

let enabled st rule = Rule.mem st.rules rule
let active st rule = enabled st rule && not (suppressed st rule)

let finding st rule loc ?fixit fmt =
  Format.kasprintf
    (fun message -> Vec.push st.findings { rule; index = st.cur; loc; message; fixit })
    fmt

(* Subranges of [addr, addr+size) not currently excluded — the same
   holes the dynamic engine punches (Engine.effective_subranges). *)
let effective excluded ~addr ~size =
  let lo = addr and hi = addr + size in
  let holes = Interval_map.overlapping excluded ~lo ~hi in
  let rec walk cursor = function
    | [] -> if cursor < hi then [ (cursor, hi) ] else []
    | (k, h, ()) :: rest ->
      let gap = if k > cursor then [ (cursor, k) ] else [] in
      gap @ walk (max cursor h) rest
  in
  walk lo holes

let on_write st loc ~addr ~size =
  (* HOPS and CXL have no writeback: the store itself is the work a
     drain point (dfence / gpf) completes. *)
  if st.model = Model.Hops || st.model = Model.Cxl then
    st.work_since_fence <- st.work_since_fence + 1;
  let subs = effective st.excluded ~addr ~size in
  if subs <> [] then begin
    if st.tx_depth > 0 && active st Rule.Unlogged_tx_write then begin
      (* Every logged-coverage gap becomes an [Insert_log] range, so one
         applied edit silences the finding (and adds no duplicate log). *)
      let missing =
        List.concat_map (fun (lo, hi) -> effective st.logged ~addr:lo ~size:(hi - lo)) subs
      in
      match missing with
      | [] -> ()
      | (lo, hi) :: _ ->
        finding st Rule.Unlogged_tx_write loc
          ~fixit:
            (Fixit.Insert_log
               (List.map (fun (lo, hi) -> Fixit.range ~addr:lo ~size:(hi - lo)) missing))
          "persistent object [0x%x,+%d) modified inside a transaction without a backup log entry"
          lo (hi - lo)
    end;
    if st.model = Model.X86 then begin
      if active st Rule.Write_after_flush then begin
        let pending = ref None in
        List.iter
          (fun (lo, hi) ->
            if !pending = None then
              List.iter
                (fun (_, _, s) ->
                  match (s.flush, !pending) with
                  | Some f, None when f.fepoch >= st.epoch -> pending := Some f
                  | _ -> ())
                (Interval_map.overlapping st.shadow ~lo ~hi))
          subs;
        match !pending with
        | None -> ()
        | Some f ->
          finding st Rule.Write_after_flush loc
            ~fixit:
              (Fixit.Hint
                 (Printf.sprintf "move this store after the fence completing the writeback at %s"
                    (Loc.to_string f.floc)))
            "store to [0x%x,+%d) overlaps a writeback (at %s) that no fence has completed yet"
            addr size (Loc.to_string f.floc)
      end
    end;
  end;
  if st.model <> Model.Eadr then begin
    (* Under eADR the caches are persistent: a store is durable as it
       executes, so there is nothing to track. Like the dynamic engine,
       the shadow spans the whole stored range even inside exclusion
       holes — findings above stay hole-gated, but the recorded state
       must describe what memory actually holds. *)
    st.serial <- st.serial + 1;
    let s =
      {
        wserial = st.serial;
        wloc = loc;
        wepoch = st.epoch;
        wsup = suppressed st Rule.Write_never_flushed;
        flush = None;
      }
    in
    st.shadow <- Interval_map.set st.shadow ~lo:addr ~hi:(addr + size) s
  end

let on_clwb st loc ~addr ~size =
  if st.model = Model.Eadr then begin
    if active st Rule.Unnecessary_flush then
      finding st Rule.Unnecessary_flush loc ~fixit:Fixit.Delete
        "writeback of [0x%x,+%d) is redundant under eADR (caches are persistent)" addr size
  end
  else begin
    st.work_since_fence <- st.work_since_fence + 1;
    let subs = effective st.excluded ~addr ~size in
    if subs <> [] then begin
      (* Classify the effective range before mutating the shadow: the
         fragments doing useful work (a dirty, not-yet-flushed byte)
         become the [Narrow] target when the writeback also covers
         clean or already-flushed bytes; a writeback with no work at
         all can simply be deleted. *)
      let work = ref [] in
      let unnecessary = ref false in
      let dup = ref None in
      List.iter
        (fun (lo, hi) ->
          let cursor = ref lo in
          List.iter
            (fun (k, h, s) ->
              if k > !cursor then unnecessary := true;
              (match s.flush with
              | None -> work := (k, h) :: !work
              | Some prev -> if !dup = None then dup := Some prev);
              cursor := h)
            (Interval_map.overlapping st.shadow ~lo ~hi);
          if !cursor < hi then unnecessary := true)
        subs;
      let work = List.rev !work in
      let narrow_or_delete () =
        if work = [] then Fixit.Delete
        else Fixit.Narrow (List.map (fun (lo, hi) -> Fixit.range ~addr:lo ~size:(hi - lo)) work)
      in
      st.serial <- st.serial + 1;
      let fi =
        {
          fserial = st.serial;
          floc = loc;
          fepoch = st.epoch;
          fsup = suppressed st Rule.Flush_without_fence;
        }
      in
      List.iter
        (fun (lo, hi) ->
          st.shadow <-
            Interval_map.update_range st.shadow ~lo ~hi ~f:(function
              | None -> None
              | Some s -> (
                match s.flush with None -> Some { s with flush = Some fi } | Some _ -> Some s)))
        subs;
      if !unnecessary && active st Rule.Unnecessary_flush then
        finding st Rule.Unnecessary_flush loc ~fixit:(narrow_or_delete ())
          "writeback of unmodified data at [0x%x,+%d)" addr size;
      match !dup with
      | Some prev when active st Rule.Duplicate_flush ->
        finding st Rule.Duplicate_flush loc ~fixit:(narrow_or_delete ())
          "persistent object [0x%x,+%d) written back more than once (already flushed at %s)" addr
          size (Loc.to_string prev.floc)
      | _ -> ()
    end
  end

let on_fence st loc ~kind =
  (* [kind] is `Order (pure ordering: ofence) or `Drain (sfence/dfence). *)
  match kind with
  | `Order -> st.work_since_fence <- st.work_since_fence + 1
  | `Drain ->
    if st.work_since_fence = 0 && active st Rule.Redundant_fence then begin
      match st.model with
      | Model.X86 ->
        finding st Rule.Redundant_fence loc ~fixit:Fixit.Delete
          "fence orders no writeback (nothing was flushed since the previous fence)"
      | Model.Hops ->
        finding st Rule.Redundant_fence loc ~fixit:Fixit.Delete
          "durability fence drains nothing (no write since the previous dfence)"
      | Model.Cxl ->
        finding st Rule.Redundant_fence loc ~fixit:Fixit.Delete
          "global persist barrier drains nothing (no write since the previous gpf)"
      | Model.Eadr -> ()
    end;
    st.epoch <- st.epoch + 1;
    st.work_since_fence <- 0

let on_op st loc op =
  st.ops <- st.ops + 1;
  if Model.valid_op st.model op then
    match op with
    | Model.Write { addr; size } -> on_write st loc ~addr ~size
    | Model.Clwb { addr; size } -> on_clwb st loc ~addr ~size
    | Model.Sfence -> if st.model <> Model.Eadr then on_fence st loc ~kind:`Drain
    | Model.Ofence -> on_fence st loc ~kind:`Order
    | Model.Dfence | Model.Gpf -> on_fence st loc ~kind:`Drain

let on_tx st loc tx =
  match tx with
  | Event.Tx_begin ->
    if st.tx_depth = 0 then st.logged <- Interval_map.empty;
    st.tx_depth <- st.tx_depth + 1;
    st.tx_stack <- loc :: st.tx_stack
  | Event.Tx_add { addr; size } ->
    st.logged <- Interval_map.set st.logged ~lo:addr ~hi:(addr + size) ()
  | Event.Tx_commit | Event.Tx_abort ->
    if st.tx_depth = 0 then begin
      (* No fixit: removing the TX_END and adding the missing TX_BEGIN
         are both plausible, so no single mechanical edit applies. *)
      if active st Rule.Unbalanced_tx then
        finding st Rule.Unbalanced_tx loc "transaction end with no transaction open"
    end
    else begin
      st.tx_depth <- st.tx_depth - 1;
      st.tx_stack <- (match st.tx_stack with [] -> [] | _ :: tl -> tl);
      if st.tx_depth = 0 then st.logged <- Interval_map.empty
    end
  | Event.Tx_checker_start | Event.Tx_checker_end -> ()

let on_control st loc c =
  match c with
  | Event.Exclude { addr; size } ->
    st.excluded <- Interval_map.set st.excluded ~lo:addr ~hi:(addr + size) ();
    st.excl_sites <-
      Interval_map.set st.excl_sites ~lo:addr ~hi:(addr + size)
        (loc, suppressed st Rule.Unmatched_exclude)
  | Event.Include { addr; size } ->
    st.excluded <- Interval_map.clear st.excluded ~lo:addr ~hi:(addr + size);
    st.excl_sites <- Interval_map.clear st.excl_sites ~lo:addr ~hi:(addr + size)
  | Event.Lint_off { rule } ->
    if rule = "*" then st.wild_off <- st.wild_off + 1
    else
      Hashtbl.replace st.offs rule
        (1 + match Hashtbl.find_opt st.offs rule with Some n -> n | None -> 0)
  | Event.Lint_on { rule } ->
    if rule = "*" then st.wild_off <- max 0 (st.wild_off - 1)
    else (
      match Hashtbl.find_opt st.offs rule with
      | Some n when n > 0 -> Hashtbl.replace st.offs rule (n - 1)
      | _ -> ())

let on_entry st i (e : Event.t) =
  st.cur <- i;
  st.entries <- st.entries + 1;
  match e.Event.kind with
  | Event.Op op -> on_op st e.Event.loc op
  | Event.Checker _ -> st.checkers <- st.checkers + 1
  | Event.Tx tx -> on_tx st e.Event.loc tx
  | Event.Control c -> on_control st e.Event.loc c

(* End-of-trace sweeps. Shadow fragments sharing a serial are one
   instruction; bytes excluded by then are not reported. Fragments are
   first grouped per instruction so a finding's [Insert_flush] covers
   {e every} still-dirty byte of the store, not just the first
   fragment the interval map happened to yield. *)
type sweep_group = {
  mutable gloc : Loc.t;
  mutable gfrags : (int * int) list;  (** Reportable fragments, reversed. *)
}

let sweep st =
  (* Sweep findings anchor at the trace length: insertion edits append. *)
  if st.model <> Model.Eadr then begin
    let groups_w = Hashtbl.create 64 and groups_f = Hashtbl.create 64 in
    let accumulate tbl serial loc subs =
      let g =
        match Hashtbl.find_opt tbl serial with
        | Some g -> g
        | None ->
          let g = { gloc = loc; gfrags = [] } in
          Hashtbl.add tbl serial g;
          g
      in
      g.gfrags <- List.rev_append subs g.gfrags
    in
    Interval_map.iter
      (fun lo hi s ->
        let subs = effective st.excluded ~addr:lo ~size:(hi - lo) in
        if subs <> [] then
          match st.model with
          | Model.X86 -> (
            match s.flush with
            | None ->
              if enabled st Rule.Write_never_flushed && not s.wsup then
                accumulate groups_w s.wserial s.wloc subs
            | Some f ->
              if f.fepoch >= st.epoch && enabled st Rule.Flush_without_fence && not f.fsup then
                accumulate groups_f f.fserial f.floc subs)
          | Model.Hops | Model.Cxl ->
            if s.wepoch >= st.epoch && enabled st Rule.Write_never_flushed && not s.wsup then
              accumulate groups_w s.wserial s.wloc subs
          | Model.Eadr -> ())
      st.shadow;
    let in_serial_order tbl = List.sort compare (Hashtbl.fold (fun k g acc -> (k, g) :: acc) tbl [])
    in
    List.iter
      (fun (_, g) ->
        let frags = List.rev g.gfrags in
        let lo, hi = List.hd frags in
        match st.model with
        | Model.X86 ->
          finding st Rule.Write_never_flushed g.gloc
            ~fixit:
              (Fixit.Insert_flush
                 (List.map (fun (lo, hi) -> Fixit.range ~addr:lo ~size:(hi - lo)) frags))
            "store to [0x%x,+%d) is never written back" lo (hi - lo)
        | Model.Hops ->
          finding st Rule.Write_never_flushed g.gloc ~fixit:Fixit.Insert_fence
            "store to [0x%x,+%d) is never made durable (no dfence follows)" lo (hi - lo)
        | Model.Cxl ->
          finding st Rule.Write_never_flushed g.gloc ~fixit:Fixit.Insert_fence
            "store to [0x%x,+%d) is never made durable (no gpf follows)" lo (hi - lo)
        | Model.Eadr -> ())
      (in_serial_order groups_w);
    List.iter
      (fun (_, g) ->
        let lo, hi = List.hd (List.rev g.gfrags) in
        finding st Rule.Flush_without_fence g.gloc ~fixit:Fixit.Insert_fence
          "writeback of [0x%x,+%d) is never completed by a fence" lo (hi - lo))
      (in_serial_order groups_f)
  end;
  if enabled st Rule.Unbalanced_tx then
    List.iter
      (fun bloc ->
        finding st Rule.Unbalanced_tx bloc
          ~fixit:(Fixit.Hint "add TX_END (or TX_ABORT) on every path out of this transaction")
          "transaction opened here never commits or aborts")
      (List.rev st.tx_stack);
  if enabled st Rule.Unmatched_exclude then begin
    let seen = Hashtbl.create 8 in
    Interval_map.iter
      (fun lo hi (loc, sup) ->
        if (not sup) && not (Hashtbl.mem seen loc) then begin
          Hashtbl.add seen loc ();
          finding st Rule.Unmatched_exclude loc
            ~fixit:
              (Fixit.Hint
                 (Printf.sprintf "add PMTest_INCLUDE(0x%x,%d) when checking should resume" lo
                    (hi - lo)))
            "range [0x%x,+%d) excluded here is never re-included" lo (hi - lo)
        end)
      st.excl_sites
  end

let run ?(model = Model.X86) ?(rules = Rule.default) entries =
  let st =
    {
      model;
      rules;
      epoch = 0;
      shadow = Interval_map.empty;
      excluded = Interval_map.empty;
      excl_sites = Interval_map.empty;
      logged = Interval_map.empty;
      tx_depth = 0;
      tx_stack = [];
      work_since_fence = 0;
      cur = 0;
      serial = 0;
      wild_off = 0;
      offs = Hashtbl.create 8;
      findings = Vec.create ();
      entries = 0;
      ops = 0;
      checkers = 0;
    }
  in
  Array.iteri (on_entry st) entries;
  st.cur <- Array.length entries;
  sweep st;
  {
    findings = Vec.to_list st.findings;
    entries = st.entries;
    ops = st.ops;
    checkers = st.checkers;
  }

let report_of (r : result) =
  let diagnostics =
    List.map
      (fun f ->
        let message =
          match f.fixit with
          | None -> f.message
          | Some fix -> Printf.sprintf "%s [fix-it: %s]" f.message (Fixit.describe fix)
        in
        { Report.kind = Rule.report_kind f.rule; loc = f.loc; message })
      r.findings
  in
  { Report.diagnostics; entries = r.entries; ops = r.ops; checkers = r.checkers }

let strip_checkers entries =
  Array.of_list
    (List.filter
       (fun (e : Event.t) ->
         match e.Event.kind with
         | Event.Checker _ | Event.Tx (Event.Tx_checker_start | Event.Tx_checker_end) -> false
         | _ -> true)
       (Array.to_list entries))

let has_fail (r : result) =
  List.exists (fun f -> Rule.severity f.rule = Report.Fail) r.findings

let pp_finding ppf f =
  Format.fprintf ppf "@[<v2>%s [%s] %s @@ %a%a@]"
    (Report.severity_string (Rule.severity f.rule))
    (Rule.id f.rule) f.message Loc.pp f.loc
    (fun ppf -> function
      | None -> ()
      | Some fix -> Format.fprintf ppf "@,fix-it: %s" (Fixit.describe fix))
    f.fixit

let pp ppf (r : result) =
  if r.findings = [] then
    Format.fprintf ppf "clean (%d entries, %d PM ops, %d checkers ignored)" r.entries r.ops
      r.checkers
  else begin
    Format.fprintf ppf "@[<v>%d finding(s) over %d entries:" (List.length r.findings) r.entries;
    List.iter (fun f -> Format.fprintf ppf "@,%a" pp_finding f) r.findings;
    Format.fprintf ppf "@]"
  end

let machine_lines (r : result) =
  List.map
    (fun f ->
      Printf.sprintf "%s\t%s\t%s\t%s\t%s"
        (Report.severity_string (Rule.severity f.rule))
        (Rule.id f.rule) (Loc.to_string f.loc) f.message
        (match f.fixit with None -> "-" | Some fix -> Fixit.to_string fix))
    r.findings
