(** The lint rule registry.

    Every diagnostic the static lint can produce belongs to exactly one
    rule. Rules carry an identifier (used on the command line and in
    inline [LINT_OFF] suppressions), a severity inherited from the
    {!Pmtest_core.Report.kind} they map onto, and a default-enabled
    flag. Rule selection is a bitmask ({!set}), so carrying a
    configuration through the single-pass analysis costs nothing. *)

module Report := Pmtest_core.Report

type t =
  | Write_never_flushed
      (** A store whose bytes are still dirty (no writeback, or no
          [dfence] under HOPS) when the trace ends. *)
  | Flush_without_fence
      (** A writeback that no later fence completes: durability of the
          flushed line is never guaranteed. *)
  | Redundant_fence
      (** An [sfence] with no writeback pending since the previous
          ordering point ([dfence] back-to-back under HOPS). *)
  | Duplicate_flush
      (** A second writeback of a range whose pending write was already
          flushed — maps onto {!Report.Duplicate_writeback}. *)
  | Unnecessary_flush
      (** A writeback covering bytes no store dirtied — maps onto
          {!Report.Unnecessary_writeback}. Under eADR, every writeback. *)
  | Write_after_flush
      (** A store into a range with a flushed-but-unfenced writeback
          pending: the line may persist either value. *)
  | Unlogged_tx_write
      (** An in-transaction store not covered by a prior [TX_ADD] —
          maps onto {!Report.Missing_log}, found without checkers. *)
  | Unbalanced_tx
      (** [TX_BEGIN] without a matching commit/abort by end of trace,
          or a commit with no transaction open. *)
  | Unmatched_exclude
      (** An [EXCLUDE] never re-[INCLUDE]d by end of trace. Disabled by
          default: long-lived exclusions (allocator metadata) are
          routine. *)

val all : t list
(** Every rule, in a fixed order. *)

val id : t -> string
(** Stable kebab-case identifier, e.g. ["write-never-flushed"]. *)

val of_id : string -> t option

val doc : t -> string
(** One-line description for [--rules help] style listings. *)

val report_kind : t -> Report.kind
(** The report kind findings of this rule are filed under; engine kinds
    are reused where the dynamic checker reports the same defect. *)

val severity : t -> Report.severity

val default_enabled : t -> bool
(** All rules except {!Unmatched_exclude}. *)

(** {1 Rule selection} *)

type set

val none : set
val everything : set
val default : set

val mem : set -> t -> bool
val enable : set -> t -> set
val disable : set -> t -> set
val to_list : set -> t list

val of_spec : string -> (set, string) result
(** Parse a comma-separated selection spec. Tokens: [all], [none],
    [default], [+rule] / [rule] (enable), [-rule] (disable). A spec
    that starts with a bare rule name selects only the listed rules;
    one that starts with [+]/[-] modifies the default set. An unknown
    token yields an error that lists every valid rule id. *)

val pp_set : Format.formatter -> set -> unit

val help : unit -> string
(** One line per rule ([id], {!doc}, default flag) — the body of the
    CLI's [--rules help] listing. *)
