type kind = X86 | Hops | Eadr | Cxl

type op =
  | Write of { addr : int; size : int }
  | Clwb of { addr : int; size : int }
  | Sfence
  | Ofence
  | Dfence
  | Gpf

let kind_name = function X86 -> "x86" | Hops -> "hops" | Eadr -> "eadr" | Cxl -> "cxl"
let all_kinds = [ X86; Hops; Eadr; Cxl ]
let kind_names = List.map kind_name all_kinds

let kind_of_string = function
  | "x86" | "X86" -> Some X86
  | "hops" | "HOPS" | "Hops" -> Some Hops
  | "eadr" | "eADR" | "EADR" -> Some Eadr
  | "cxl" | "CXL" | "Cxl" -> Some Cxl
  | _ -> None

let kind_of_string_err s =
  match kind_of_string s with
  | Some k -> Ok k
  | None ->
    Error
      (Printf.sprintf "unknown persistency model %S (valid models: %s)" s
         (String.concat ", " kind_names))

let valid_op kind op =
  match (kind, op) with
  | _, Write _ -> true
  | X86, (Clwb _ | Sfence) -> true
  | X86, (Ofence | Dfence | Gpf) -> false
  | Hops, (Ofence | Dfence) -> true
  | Hops, (Clwb _ | Sfence | Gpf) -> false
  (* eADR platforms still execute legacy clwb/sfence instructions; they
     are simply unnecessary. *)
  | Eadr, (Clwb _ | Sfence) -> true
  | Eadr, (Ofence | Dfence | Gpf) -> false
  (* CXL shared memory: stores become globally visible immediately; the
     only durability primitive is the global persist barrier. *)
  | Cxl, Gpf -> true
  | Cxl, (Clwb _ | Sfence | Ofence | Dfence) -> false

let is_fence = function
  | Sfence | Ofence | Dfence | Gpf -> true
  | Write _ | Clwb _ -> false

let op_range = function
  | Write { addr; size } | Clwb { addr; size } -> Some (addr, size)
  | Sfence | Ofence | Dfence | Gpf -> None

let pp_op ppf = function
  | Write { addr; size } -> Format.fprintf ppf "write(0x%x,%d)" addr size
  | Clwb { addr; size } -> Format.fprintf ppf "clwb(0x%x,%d)" addr size
  | Sfence -> Format.pp_print_string ppf "sfence"
  | Ofence -> Format.pp_print_string ppf "ofence"
  | Dfence -> Format.pp_print_string ppf "dfence"
  | Gpf -> Format.pp_print_string ppf "gpf"

let cache_line = 64
let line_of_addr a = a / cache_line
let line_span ~addr ~size = (line_of_addr addr, line_of_addr (addr + size - 1))
