(** Memory persistency models and their low-level PM operations.

    A persistency model defines which primitives a program uses to enforce
    durability and ordering and how epochs advance (paper §2.1, §5.2):

    - {b X86}: [clwb addr size] initiates a cache-line writeback;
      [sfence] orders — every preceding [clwb] is complete (hence the
      written-back data durable) before anything after the fence.
    - {b HOPS}: the lightweight [ofence] orders persists without forcing
      them to complete; the heavyweight [dfence] additionally stalls until
      all preceding writes are durable. No explicit writeback exists —
      ordering and durability are decoupled fence properties.
    - {b eADR}: extended asynchronous DRAM refresh — the caches themselves
      are within the persistence domain, so a store is durable the moment
      it executes and persists in program order. Writebacks are never
      needed (a [clwb] is pure overhead the performance checker flags);
      [sfence] is accepted as an ordering no-op.
    - {b CXL}: shared memory over a CXL fabric — a store is globally
      {e visible} to every host the moment it executes, but it is only
      {e durable} once a global persist barrier ([gpf]) drains all hosts'
      pending persists. There is no per-line writeback; [gpf] is the only
      durability primitive and persists between barriers complete in any
      order. *)

type kind = X86 | Hops | Eadr | Cxl

type op =
  | Write of { addr : int; size : int }
      (** A store to persistent memory; [size] in bytes. *)
  | Clwb of { addr : int; size : int }
      (** Cache-line writeback of the range (x86). *)
  | Sfence  (** Store fence: completes preceding writebacks (x86). *)
  | Ofence  (** Ordering fence (HOPS). *)
  | Dfence  (** Durability fence (HOPS). *)
  | Gpf  (** Global persist barrier: drains all hosts' pending persists (CXL). *)

val kind_name : kind -> string

val all_kinds : kind list
(** Every model, in declaration order: [[X86; Hops; Eadr; Cxl]]. *)

val kind_names : string list
(** Canonical names of [all_kinds], for error messages and help text. *)

val kind_of_string : string -> kind option

val kind_of_string_err : string -> (kind, string) result
(** Like {!kind_of_string} but the error names the accepted values,
    mirroring the lint/repair [--rules] UX. *)

val valid_op : kind -> op -> bool
(** Whether the operation belongs to the model's ISA: [Write] is valid
    everywhere; [Clwb]/[Sfence] only under X86 and eADR (legacy);
    [Ofence]/[Dfence] only under HOPS; [Gpf] only under CXL. *)

val is_fence : op -> bool
(** [Sfence], [Ofence], [Dfence] and [Gpf] advance the global timestamp. *)

val op_range : op -> (int * int) option
(** [(addr, size)] for range-carrying operations. *)

val pp_op : Format.formatter -> op -> unit

val cache_line : int
(** Cache-line size used throughout the simulation (64 bytes). *)

val line_of_addr : int -> int
(** [line_of_addr a] is [a / cache_line]. *)

val line_span : addr:int -> size:int -> int * int
(** [(first, last)] cache-line indices touched by the byte range. *)
