open Pmtest_util
open Pmtest_itree
open Pmtest_model
open Pmtest_trace
module Lint = Pmtest_lint.Lint
module Rule = Pmtest_lint.Rule
module Fixit = Pmtest_lint.Fixit
module Engine = Pmtest_core.Engine
module Report = Pmtest_core.Report
module Obs = Pmtest_obs.Obs

type edit = { index : int; rule : Rule.t; fix : Fixit.t }

let repairable_rules =
  [
    Rule.Redundant_fence;
    Rule.Duplicate_flush;
    Rule.Unnecessary_flush;
    Rule.Write_never_flushed;
    Rule.Flush_without_fence;
    Rule.Unlogged_tx_write;
  ]

let repairable rule = List.mem rule repairable_rules

let drain_fence_op = function
  | Model.X86 | Model.Eadr -> Model.Sfence
  | Model.Hops -> Model.Dfence
  | Model.Cxl -> Model.Gpf

(* Sub-ranges of [addr, addr+size) not covered by [map] — the lint's
   exclusion-hole walk, reused for planned-log coverage. *)
let gaps map ~addr ~size =
  let lo = addr and hi = addr + size in
  let covered = Interval_map.overlapping map ~lo ~hi in
  let rec walk cursor = function
    | [] -> if cursor < hi then [ (cursor, hi) ] else []
    | (k, h, ()) :: rest ->
      let gap = if k > cursor then [ (cursor, k) ] else [] in
      gap @ walk (max cursor h) rest
  in
  walk lo covered

(* --- Planning ---------------------------------------------------------------- *)

(* One lint pass's findings become one round of edits:

   - [Delete]/[Narrow] anchor at the offending instruction. A writeback
     can carry both a duplicate-flush and an unnecessary-flush finding;
     they compute the same edit, so the first wins.
   - [Insert_log] edits are deduplicated with a transaction-aware walk:
     within one top-level transaction, a range planned for logging once
     must not be planned again for a later store (that would insert a
     duplicate undo-log entry). A range dropped here that a {e later}
     transaction still needs resurfaces on the next fix-point round.
   - [Insert_flush]/[Insert_fence] anchor at the trace end, where the
     lint's end-of-trace sweep reported them; all fence needs collapse
     into a single trailing drain fence, emitted after the appended
     writebacks (which themselves need completing under x86). *)
let plan ~model events (r : Lint.result) =
  let n = Array.length events in
  let seen_inline = Hashtbl.create 16 in
  let inline = ref [] in
  let log_findings = ref [] in
  let flush_edits = ref [] in
  let fence_rule = ref None in
  List.iter
    (fun (f : Lint.finding) ->
      if repairable f.Lint.rule then
        match f.Lint.fixit with
        | None | Some (Fixit.Hint _) -> ()
        | Some ((Fixit.Delete | Fixit.Narrow _) as fix) ->
          if not (Hashtbl.mem seen_inline f.Lint.index) then begin
            Hashtbl.add seen_inline f.Lint.index ();
            inline := { index = f.Lint.index; rule = f.Lint.rule; fix } :: !inline
          end
        | Some (Fixit.Insert_log rs) -> log_findings := (f.Lint.index, f.Lint.rule, rs) :: !log_findings
        | Some (Fixit.Insert_flush rs) ->
          flush_edits := { index = n; rule = f.Lint.rule; fix = Fixit.Insert_flush rs } :: !flush_edits
        | Some Fixit.Insert_fence ->
          if !fence_rule = None then fence_rule := Some f.Lint.rule)
    r.Lint.findings;
  let log_edits =
    let pending = ref (List.sort compare (List.rev !log_findings)) in
    let planned = ref Interval_map.empty in
    let depth = ref 0 in
    let out = ref [] in
    Array.iteri
      (fun i (e : Event.t) ->
        (match e.Event.kind with
        | Event.Tx Event.Tx_begin ->
          if !depth = 0 then planned := Interval_map.empty;
          incr depth
        | Event.Tx (Event.Tx_commit | Event.Tx_abort) ->
          if !depth > 0 then begin
            decr depth;
            if !depth = 0 then planned := Interval_map.empty
          end
        | _ -> ());
        let rec take () =
          match !pending with
          | (j, rule, rs) :: rest when j = i ->
            pending := rest;
            let leftover =
              List.concat_map
                (fun (r : Fixit.range) -> gaps !planned ~addr:r.Fixit.addr ~size:r.Fixit.size)
                rs
            in
            if leftover <> [] then begin
              List.iter (fun (lo, hi) -> planned := Interval_map.set !planned ~lo ~hi ()) leftover;
              let rs = List.map (fun (lo, hi) -> Fixit.range ~addr:lo ~size:(hi - lo)) leftover in
              out := { index = i; rule; fix = Fixit.Insert_log rs } :: !out
            end;
            take ()
          | _ -> ()
        in
        take ())
      events;
    List.rev !out
  in
  let flush_edits = List.rev !flush_edits in
  let fence_edit =
    (* Appended writebacks must themselves be completed, so any flush
       insertion implies the trailing fence even without a
       flush-without-fence finding. Never under eADR (no insertions
       exist there at all). *)
    match (!fence_rule, flush_edits) with
    | Some rule, _ -> [ { index = n; rule; fix = Fixit.Insert_fence } ]
    | None, _ :: _ when model <> Model.Eadr ->
      [ { index = n; rule = Rule.Write_never_flushed; fix = Fixit.Insert_fence } ]
    | _ -> []
  in
  List.sort (fun a b -> compare a.index b.index) (!inline @ log_edits) @ flush_edits @ fence_edit

(* --- Application ------------------------------------------------------------- *)

let apply ~model events edits =
  let inserts_before : (int, Fixit.range list) Hashtbl.t = Hashtbl.create 16 in
  let replace : (int, [ `Delete | `Narrow of Fixit.range list ]) Hashtbl.t = Hashtbl.create 16 in
  let appended = ref [] in
  let fence = ref false in
  List.iter
    (fun ed ->
      match ed.fix with
      | Fixit.Delete -> Hashtbl.replace replace ed.index `Delete
      | Fixit.Narrow rs -> Hashtbl.replace replace ed.index (`Narrow rs)
      | Fixit.Insert_log rs ->
        let prev = Option.value ~default:[] (Hashtbl.find_opt inserts_before ed.index) in
        Hashtbl.replace inserts_before ed.index (prev @ rs)
      | Fixit.Insert_flush rs -> appended := !appended @ rs
      | Fixit.Insert_fence -> fence := true
      | Fixit.Hint _ -> ())
    edits;
  let out = ref [] in
  let push e = out := e :: !out in
  let rline = ref 0 in
  let rloc () =
    incr rline;
    Loc.make ~file:"repair" ~line:!rline
  in
  Array.iteri
    (fun i (e : Event.t) ->
      (match Hashtbl.find_opt inserts_before i with
      | Some rs ->
        List.iter
          (fun (r : Fixit.range) ->
            push
              (Event.make ~thread:e.Event.thread ~loc:(rloc ())
                 (Event.Tx (Event.Tx_add { addr = r.Fixit.addr; size = r.Fixit.size }))))
          rs
      | None -> ());
      match Hashtbl.find_opt replace i with
      | Some `Delete -> ()
      | Some (`Narrow rs) ->
        List.iter
          (fun (r : Fixit.range) ->
            push
              (Event.make ~thread:e.Event.thread ~loc:e.Event.loc
                 (Event.Op (Model.Clwb { addr = r.Fixit.addr; size = r.Fixit.size }))))
          rs
      | None -> push e)
    events;
  List.iter
    (fun (r : Fixit.range) ->
      push
        (Event.make ~loc:(rloc ()) (Event.Op (Model.Clwb { addr = r.Fixit.addr; size = r.Fixit.size }))))
    !appended;
  if !fence then push (Event.make ~loc:(rloc ()) (Event.Op (drain_fence_op model)));
  Array.of_list (List.rev !out)

(* --- Fixed point ------------------------------------------------------------- *)

type outcome = {
  repaired : Event.t array;
  iterations : int;  (** Lint passes run, including the final clean one. *)
  converged : bool;
  edits : (int * edit) list;  (** [(round, edit)] in application order. *)
  deleted_fences : int;
  deleted_flushes : int;
  narrowed_flushes : int;
  inserted_flushes : int;
  inserted_fences : int;
  inserted_logs : int;
}

let edits_applied o = List.length o.edits

let count_edits edits =
  List.fold_left
    (fun (df, dl, nw, ifl, ife, ilg) (_, ed) ->
      match (ed.fix, ed.rule) with
      | Fixit.Delete, Rule.Redundant_fence -> (df + 1, dl, nw, ifl, ife, ilg)
      | Fixit.Delete, _ -> (df, dl + 1, nw, ifl, ife, ilg)
      | Fixit.Narrow _, _ -> (df, dl, nw + 1, ifl, ife, ilg)
      | Fixit.Insert_flush rs, _ -> (df, dl, nw, ifl + List.length rs, ife, ilg)
      | Fixit.Insert_fence, _ -> (df, dl, nw, ifl, ife + 1, ilg)
      | Fixit.Insert_log rs, _ -> (df, dl, nw, ifl, ife, ilg + List.length rs)
      | Fixit.Hint _, _ -> (df, dl, nw, ifl, ife, ilg))
    (0, 0, 0, 0, 0, 0) edits

let default_max_rounds = 16

let fixpoint ?obs ?(model = Model.X86) ?(rules = Rule.default) ?(max_rounds = default_max_rounds)
    events =
  let rec go round events edits =
    let r = Lint.run ~model ~rules events in
    let p = plan ~model events r in
    if p = [] then (events, round, true, edits)
    else if round >= max_rounds then (events, round, false, edits)
    else
      go (round + 1) (apply ~model events p)
        (edits @ List.map (fun ed -> (round, ed)) p)
  in
  let t0 = Obs.now_ns () in
  let repaired, rounds, converged, edits = go 1 events [] in
  let deleted_fences, deleted_flushes, narrowed_flushes, inserted_flushes, inserted_fences,
      inserted_logs =
    count_edits edits
  in
  let o =
    {
      repaired;
      iterations = rounds;
      converged;
      edits;
      deleted_fences;
      deleted_flushes;
      narrowed_flushes;
      inserted_flushes;
      inserted_fences;
      inserted_logs;
    }
  in
  (match obs with
  | Some obs ->
    Obs.repair_trace obs ~edits:(edits_applied o) ~rounds:o.iterations ~ns:(Obs.now_ns () - t0)
  | None -> ());
  o

(* --- Static verification ------------------------------------------------------ *)

let has_lint_off events =
  Array.exists
    (fun (e : Event.t) ->
      match e.Event.kind with Event.Control (Event.Lint_off _) -> true | _ -> false)
    events

let fail_key (r : Report.t) =
  List.sort compare
    (List.map (fun (d : Report.diagnostic) -> (d.Report.kind, d.Report.loc)) (Report.fails r))

let multiset_subset a b =
  (* Both sorted; every element of [a] appears in [b] at least as often. *)
  let rec go a b =
    match (a, b) with
    | [], _ -> true
    | _, [] -> false
    | x :: a', y :: b' -> if x = y then go a' b' else if compare x y > 0 then go a b' else false
  in
  go a b

let report_key (r : Report.t) =
  ( List.map
      (fun (d : Report.diagnostic) -> (d.Report.kind, d.Report.loc, d.Report.message))
      r.Report.diagnostics,
    r.Report.entries,
    r.Report.ops,
    r.Report.checkers )

let verify_static ?(model = Model.X86) ?(rules = Rule.default) ~original (o : outcome) =
  let problems = ref [] in
  let fail fmt = Format.kasprintf (fun m -> problems := m :: !problems) fmt in
  if not o.converged then fail "repair did not converge within %d rounds" o.iterations;
  (* 1. The repaired trace lints clean for every repairable rule. *)
  let lr = Lint.run ~model ~rules o.repaired in
  List.iter
    (fun (f : Lint.finding) ->
      if
        repairable f.Lint.rule
        && match f.Lint.fixit with None | Some (Fixit.Hint _) -> false | Some _ -> true
      then fail "repaired trace still lints %s at %s" (Rule.id f.Lint.rule) (Loc.to_string f.Lint.loc))
    lr.Lint.findings;
  (* 2. Re-repairing is the identity: the plan over the repaired trace
     is empty (idempotence). *)
  if plan ~model o.repaired (Lint.run ~model ~rules o.repaired) <> [] then
    fail "repair is not idempotent: the repaired trace still has a non-empty plan";
  (* 3. Engine differential. Repairs must never introduce a new
     Fail-severity diagnostic, and must not increase the engine's own
     writeback perf warnings; when nothing was suppressed inline and
     the perf rules ran, those warnings must be gone entirely. *)
  let er_orig = Engine.check ~model original in
  let er = Engine.check ~model o.repaired in
  if not (multiset_subset (fail_key er) (fail_key er_orig)) then
    fail "repair introduced a new engine FAIL diagnostic";
  let bounded kind label =
    let before = Report.count kind er_orig and after = Report.count kind er in
    if after > before then fail "engine %s diagnostics grew from %d to %d" label before after
  in
  bounded Report.Duplicate_writeback "duplicate-writeback";
  bounded Report.Unnecessary_writeback "unnecessary-writeback";
  bounded Report.Missing_log "missing-log";
  if not (has_lint_off original) then begin
    let gone kind rule label =
      if Rule.mem rules rule && Report.count kind er > 0 then
        fail "engine still reports %s on the repaired trace" label
    in
    gone Report.Duplicate_writeback Rule.Duplicate_flush "duplicate-writeback";
    gone Report.Unnecessary_writeback Rule.Unnecessary_flush "unnecessary-writeback"
  end;
  (* 4. The packed fast path agrees with the boxed engine on the
     repaired trace — repairs must not manufacture representation
     disagreements. *)
  if report_key (Engine.check_packed ~model (Packed.of_events o.repaired)) <> report_key er then
    fail "packed and boxed engine reports differ on the repaired trace";
  List.rev !problems

(* --- Diff rendering ----------------------------------------------------------- *)

(* A plain LCS line diff over the serialized traces: small, dependency
   free, and the traces involved are a few thousand lines at most. *)
let diff_lines (a : string array) (b : string array) =
  let n = Array.length a and m = Array.length b in
  (* lcs.(i).(j) = LCS length of a[i..] and b[j..] *)
  let lcs = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = n - 1 downto 0 do
    for j = m - 1 downto 0 do
      lcs.(i).(j) <-
        (if a.(i) = b.(j) then 1 + lcs.(i + 1).(j + 1) else max lcs.(i + 1).(j) lcs.(i).(j + 1))
    done
  done;
  let out = ref [] in
  let rec walk i j =
    if i < n && j < m && a.(i) = b.(j) then begin
      out := (' ', a.(i)) :: !out;
      walk (i + 1) (j + 1)
    end
    else if j < m && (i = n || lcs.(i).(j + 1) >= lcs.(i + 1).(j)) then begin
      out := ('+', b.(j)) :: !out;
      walk i (j + 1)
    end
    else if i < n then begin
      out := ('-', a.(i)) :: !out;
      walk (i + 1) j
    end
  in
  walk 0 0;
  List.rev !out

let pp_diff ?(context = 2) ppf ~original ~repaired =
  let serial evs = Array.map Serial.entry_to_line evs in
  let lines = diff_lines (serial original) (serial repaired) in
  let arr = Array.of_list lines in
  let n = Array.length arr in
  let keep = Array.make n false in
  Array.iteri
    (fun i (c, _) ->
      if c <> ' ' then
        for j = max 0 (i - context) to min (n - 1) (i + context) do
          keep.(j) <- true
        done)
    arr;
  let out = ref [] in
  let skipping = ref false in
  Array.iteri
    (fun i (c, line) ->
      if keep.(i) then begin
        if !skipping then out := "  ..." :: !out;
        skipping := false;
        out := Printf.sprintf "%c %s" c line :: !out
      end
      else skipping := true)
    arr;
  if !skipping then out := "  ..." :: !out;
  Format.pp_open_vbox ppf 0;
  Format.pp_print_list ~pp_sep:Format.pp_print_cut Format.pp_print_string ppf (List.rev !out);
  Format.pp_close_box ppf ()

let machine_lines (o : outcome) =
  List.map
    (fun (round, ed) ->
      Printf.sprintf "%d\t%d\t%s\t%s" round ed.index (Rule.id ed.rule) (Fixit.to_string ed.fix))
    o.edits

let pp_outcome ppf (o : outcome) =
  Format.fprintf ppf
    "@[<v>%d edit(s) in %d round(s)%s: %d fence(s) and %d writeback(s) deleted, %d writeback(s) \
     narrowed, %d writeback(s), %d fence(s) and %d log entr%s inserted@]"
    (edits_applied o) o.iterations
    (if o.converged then "" else " (DID NOT CONVERGE)")
    o.deleted_fences o.deleted_flushes o.narrowed_flushes o.inserted_flushes o.inserted_fences
    o.inserted_logs
    (if o.inserted_logs = 1 then "y" else "ies")
