(** pmfix: a dataflow-driven flush/fence auto-repair pass.

    The lint ({!Pmtest_lint.Lint}) {e suggests} structured edits
    ({!Pmtest_lint.Fixit}); this module {e applies} them and proves the
    result. One round consumes a lint pass's findings and turns them
    into a concrete {b repair plan} — index-anchored edits over the
    [Event.t array]:

    - performance repairs delete redundant fences and duplicate or
      unnecessary writebacks (or narrow a writeback to the bytes doing
      useful work);
    - correctness repairs insert the missing writebacks and the single
      merged drain fence for never-persisted stores and
      flush-without-fence holes (appended at the trace end, where the
      lint's end-of-trace sweep reported them), and the missing
      [TX_ADD] undo-log entries for unlogged in-transaction stores
      (inserted immediately before the offending store).

    {!fixpoint} applies plans and re-analyses until the plan is empty.
    {!verify_static} then proves the repair against the dynamic engine:
    the repaired trace lints clean for every repairable rule, the plan
    over it is empty (idempotence), no new Fail-severity engine
    diagnostic appeared, the engine's own writeback warnings did not
    grow (and are gone outright when nothing was suppressed inline),
    and the packed fast path agrees with the boxed engine. The
    crash-state {e oracle} differential (deletions preserve the
    per-model reachable crash-state set, insertions only shrink it)
    lives in {!Pmtest_fuzz.Cross} with the other cross-checker
    contracts. *)

open Pmtest_model
open Pmtest_trace
module Lint := Pmtest_lint.Lint
module Rule := Pmtest_lint.Rule
module Fixit := Pmtest_lint.Fixit
module Obs := Pmtest_obs.Obs

type edit = { index : int; rule : Rule.t; fix : Fixit.t }
(** One edit: [fix] anchored at trace index [index] ([= length] for
    end-of-trace insertions), blamed on [rule]. *)

val repairable_rules : Rule.t list
(** The rules whose findings the planner consumes:
    [redundant-fence], [duplicate-flush], [unnecessary-flush],
    [write-never-flushed], [flush-without-fence], [unlogged-tx-write]. *)

val repairable : Rule.t -> bool

val plan : model:Model.kind -> Event.t array -> Lint.result -> edit list
(** One round's plan from one lint pass. Duplicate edits on the same
    instruction collapse; [Insert_log] ranges are deduplicated within
    each top-level transaction; all flush/fence insertions are merged
    into trailing writebacks plus at most one drain fence. *)

val apply : model:Model.kind -> Event.t array -> edit list -> Event.t array
(** Apply a plan. Inserted events carry ["repair:<n>"] source
    locations; narrowed writebacks keep the original location. *)

type outcome = {
  repaired : Event.t array;
  iterations : int;  (** Lint passes run, including the final clean one. *)
  converged : bool;  (** False when [max_rounds] was hit with a non-empty plan. *)
  edits : (int * edit) list;
      (** [(round, edit)] in application order. Indexes refer to the
          trace version that round's plan was computed over. *)
  deleted_fences : int;
  deleted_flushes : int;
  narrowed_flushes : int;
  inserted_flushes : int;
  inserted_fences : int;
  inserted_logs : int;
}

val edits_applied : outcome -> int

val default_max_rounds : int

val fixpoint :
  ?obs:Obs.t ->
  ?model:Model.kind ->
  ?rules:Rule.set ->
  ?max_rounds:int ->
  Event.t array ->
  outcome
(** Iterate plan/apply until the plan is empty (or [max_rounds],
    default {!default_max_rounds}, is hit). With an enabled [obs] the
    repair counters are updated. *)

val verify_static : ?model:Model.kind -> ?rules:Rule.set -> original:Event.t array -> outcome -> string list
(** The engine-side differential proof described above. Returns the
    list of violated obligations — empty means the repair is proven. *)

val machine_lines : outcome -> string list
(** One tab-separated line per applied edit:
    [round<TAB>index<TAB>rule<TAB>fixit] with the stable
    {!Fixit.to_string} fixit form. *)

val pp_outcome : Format.formatter -> outcome -> unit

val pp_diff :
  ?context:int -> Format.formatter -> original:Event.t array -> repaired:Event.t array -> unit
(** A unified-style line diff of the serialized traces ([-]/[+] lines,
    [context] unchanged lines around each hunk, elided runs as
    [...]). *)
