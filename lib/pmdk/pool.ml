open Pmtest_trace
open Pmtest_itree
module Machine = Pmtest_pmem.Machine
module Instr = Pmtest_pmem.Instr
module Access = Pmtest_pmem.Access

let source_file = "pmdk/pool.c"
let magic = 0x504D444B_4F43616DL (* "PMDKOCam" *)

(* Header layout. *)
let off_magic = 0x00
let off_size = 0x08
let off_root = 0x10
let off_heap_top = 0x18
let log_base = 0x40
let log_size = 1 lsl 18 (* 256 KiB undo log *)
let entries_base = log_base + 64 (* persistent entry count, then entries *)
let heap_base = log_base + log_size

type fault = Skip_commit_writeback | Skip_commit_fence

type tx_state = {
  mutable depth : int;
  mutable modified : unit Interval_map.t;
  mutable logged : unit Interval_map.t; (* ranges already snapshotted *)
  mutable log_tail : int; (* next free offset inside the log area *)
}

type t = {
  instr : Instr.t;
  model : Pmtest_model.Model.kind;
  mutable free_list : (int * int) list; (* volatile, like PMDK runtime state *)
  mutable heap_top : int; (* cached copy of the persistent bump pointer *)
  tx : tx_state;
  mutable fault : fault option;
  mutable recovered : int;
}

exception Tx_aborted

let machine t = Instr.machine t.instr
let instr t = t.instr
let model t = t.model

(* Durability and ordering points, spelled in the pool's persistency
   model: x86 writes back the range then fences; HOPS has no explicit
   writeback — dfence makes everything durable, ofence only orders; CXL
   has no writeback either — the global persist barrier drains all. *)
let hw_persist t ~line ~off ~size =
  match t.model with
  | Pmtest_model.Model.X86 -> Instr.persist_barrier t.instr ~line ~addr:off ~size
  | Pmtest_model.Model.Hops -> Instr.dfence t.instr ~line
  | Pmtest_model.Model.Cxl -> Instr.gpf t.instr ~line
  | Pmtest_model.Model.Eadr -> () (* stores are already durable *)

let hw_flush t ~line ~off ~size =
  match t.model with
  | Pmtest_model.Model.X86 -> Instr.clwb t.instr ~line ~addr:off ~size
  | Pmtest_model.Model.Hops | Pmtest_model.Model.Eadr | Pmtest_model.Model.Cxl -> ()

let hw_drain t ~line =
  match t.model with
  | Pmtest_model.Model.X86 -> Instr.sfence t.instr ~line
  | Pmtest_model.Model.Hops -> Instr.dfence t.instr ~line
  | Pmtest_model.Model.Cxl -> Instr.gpf t.instr ~line
  | Pmtest_model.Model.Eadr -> ()
let recovered_entries t = t.recovered
let heap_start _ = heap_base
let heap_used t = t.heap_top - heap_base

(* Raw accesses: pool-internal bookkeeping, not transaction-tracked. *)
let raw_store_i64 t ~line ~off v = Instr.store_i64 t.instr ~line ~addr:off v
let raw_store_bytes t ~line ~off b = Instr.store_bytes t.instr ~line ~addr:off b
let raw_persist t ~line ~off ~size = hw_persist t ~line ~off ~size

let announce_exclusions t =
  (* The header and undo log are library bookkeeping: tools should not
     hold the application responsible for them. *)
  Instr.control t.instr ~line:1 (Event.Exclude { addr = 0; size = heap_base })

let fresh_tx () =
  {
    depth = 0;
    modified = Interval_map.empty;
    logged = Interval_map.empty;
    log_tail = entries_base;
  }

let create ?(track_versions = false) ?(model = Pmtest_model.Model.X86)
    ?(size = 16 * 1024 * 1024) ~sink () =
  if size <= heap_base + Pmtest_model.Model.cache_line then
    invalid_arg "Pool.create: pool too small";
  let machine = Machine.create ~track_versions ~size () in
  let instr = Instr.make ~machine ~sink ~file:source_file in
  let t =
    {
      instr;
      model;
      free_list = [];
      heap_top = heap_base;
      tx = fresh_tx ();
      fault = None;
      recovered = 0;
    }
  in
  announce_exclusions t;
  raw_store_i64 t ~line:10 ~off:off_magic magic;
  raw_store_i64 t ~line:11 ~off:off_size (Int64.of_int size);
  raw_store_i64 t ~line:12 ~off:off_root 0L;
  raw_store_i64 t ~line:13 ~off:off_heap_top (Int64.of_int heap_base);
  raw_persist t ~line:14 ~off:0 ~size:0x20;
  t

(* Undo log: a persistent entry count at [log_base] (the only truncation
   point), then entries of {off(8) | size(8) | data (8-aligned)} from
   [log_base + 64]. A count rather than per-entry valid flags is
   essential: with valid flags, a stale still-valid entry from the
   previous transaction could be replayed when a crash lands between a
   new transaction's first and second snapshot — a bug the crash-
   injection harness found in an earlier version of this file. *)
let entry_header = 16
let align8 n = (n + 7) land lnot 7

let log_scan machine =
  let n = Access.get_int machine log_base in
  let rec go off acc remaining =
    if remaining = 0 || off + entry_header > log_base + log_size then List.rev acc
    else
      let target = Access.get_int machine off in
      let size = Access.get_int machine (off + 8) in
      let data = Access.get_bytes machine (off + entry_header) size in
      go (off + entry_header + align8 size) ((off, target, size, data) :: acc) (remaining - 1)
  in
  go entries_base [] n

let rollback t =
  let entries = log_scan (machine t) in
  (* Newest-first: later snapshots may overlap earlier ones; applying in
     reverse restores the oldest (pre-transaction) bytes last. *)
  List.iter
    (fun (_, target, size, data) ->
      raw_store_bytes t ~line:30 ~off:target data;
      hw_flush t ~line:31 ~off:target ~size)
    (List.rev entries);
  hw_drain t ~line:32;
  (* Truncate the log: invalidating the first entry hides the rest. *)
  raw_store_i64 t ~line:33 ~off:log_base 0L;
  raw_persist t ~line:34 ~off:log_base ~size:8;
  t.tx.log_tail <- entries_base;
  List.length entries

let of_machine ~machine ~sink =
  let instr = Instr.make ~machine ~sink ~file:source_file in
  if Access.get_i64 machine off_magic <> magic then invalid_arg "Pool.of_machine: bad magic";
  let t =
    {
      instr;
      model = Pmtest_model.Model.X86;
      free_list = [];
      heap_top = 0;
      tx = fresh_tx ();
      fault = None;
      recovered = 0;
    }
  in
  announce_exclusions t;
  t.recovered <- rollback t;
  t.heap_top <- Access.get_int machine off_heap_top;
  t

let root t = Access.get_int (machine t) off_root

let set_root t off =
  raw_store_i64 t ~line:40 ~off:off_root (Int64.of_int off);
  raw_persist t ~line:41 ~off:off_root ~size:8

(* --- Transactions ------------------------------------------------------ *)

let tx_active t = t.tx.depth > 0
let tx_depth t = t.tx.depth
let set_fault t f = t.fault <- f

let track_store t ~off ~size =
  if tx_active t && size > 0 then
    t.tx.modified <- Interval_map.set t.tx.modified ~lo:off ~hi:(off + size) ()

let tx_begin t =
  Instr.tx_event t.instr ~line:50 Event.Tx_begin;
  if t.tx.depth = 0 then begin
    t.tx.modified <- Interval_map.empty;
    t.tx.logged <- Interval_map.empty;
    t.tx.log_tail <- entries_base
  end;
  t.tx.depth <- t.tx.depth + 1

let tx_add ?(line = 60) t ~off ~size =
  if not (tx_active t) then invalid_arg "Pool.tx_add: no active transaction";
  if size <= 0 then invalid_arg "Pool.tx_add: empty range";
  let entry = t.tx.log_tail in
  let stride = entry_header + align8 size in
  if entry + stride > log_base + log_size then failwith "Pool: undo log full";
  Instr.tx_event t.instr ~line Event.(Tx_add { addr = off; size });
  (* 1. Entry body (old data) durable first... *)
  let old = Access.get_bytes (machine t) off size in
  raw_store_i64 t ~line:(line + 1) ~off:entry (Int64.of_int off);
  raw_store_i64 t ~line:(line + 2) ~off:(entry + 8) (Int64.of_int size);
  raw_store_bytes t ~line:(line + 3) ~off:(entry + entry_header) old;
  raw_persist t ~line:(line + 4) ~off:entry ~size:(entry_header + size);
  (* 2. ...then publish it by bumping the persistent entry count. *)
  let n = Access.get_int (machine t) log_base in
  raw_store_i64 t ~line:(line + 5) ~off:log_base (Int64.of_int (n + 1));
  raw_persist t ~line:(line + 6) ~off:log_base ~size:8;
  t.tx.log_tail <- entry + stride;
  t.tx.logged <- Interval_map.set t.tx.logged ~lo:off ~hi:(off + size) ()

let tx_add_once ?line t ~off ~size =
  if not (tx_active t) then invalid_arg "Pool.tx_add_once: no active transaction";
  if not (Interval_map.covered t.tx.logged ~lo:off ~hi:(off + size)) then
    tx_add ?line t ~off ~size

let commit_outermost t =
  let skip_wb = t.fault = Some Skip_commit_writeback in
  let skip_fence = t.fault = Some Skip_commit_fence in
  if not skip_wb then begin
    Interval_map.iter (fun lo hi () -> hw_flush t ~line:70 ~off:lo ~size:(hi - lo)) t.tx.modified;
    if not skip_fence then hw_drain t ~line:71
  end;
  (* Truncate the log only after the updates are durable. Under the
     missing-fence fault the developer forgot the drain entirely, so the
     truncation is not fenced either (a fence here would silently make
     the earlier writebacks durable and mask the bug). *)
  raw_store_i64 t ~line:72 ~off:log_base 0L;
  (* Under either commit fault the developer forgot the durability point
     entirely, so the truncation is not fenced either — a fence here would
     silently make the earlier updates durable and mask the bug (under
     HOPS any dfence is global, so this matters for both faults). *)
  if skip_fence || skip_wb then hw_flush t ~line:73 ~off:log_base ~size:8
  else raw_persist t ~line:73 ~off:log_base ~size:8;
  t.tx.modified <- Interval_map.empty;
  t.tx.log_tail <- entries_base

let tx_commit t =
  if not (tx_active t) then invalid_arg "Pool.tx_commit: no active transaction";
  t.tx.depth <- t.tx.depth - 1;
  (* PMDK semantics (paper §7.1): updates are guaranteed durable only when
     the *outermost* transaction ends. *)
  if t.tx.depth = 0 then commit_outermost t;
  Instr.tx_event t.instr ~line:74 Event.Tx_commit

let tx_abort t =
  if not (tx_active t) then invalid_arg "Pool.tx_abort: no active transaction";
  ignore (rollback t);
  t.tx.depth <- 0;
  t.tx.modified <- Interval_map.empty;
  t.tx.logged <- Interval_map.empty;
  Instr.tx_event t.instr ~line:75 Event.Tx_abort

let tx t f =
  tx_begin t;
  match f () with
  | v ->
    tx_commit t;
    v
  | exception e ->
    tx_abort t;
    raise e

(* --- Accessors ---------------------------------------------------------- *)

let store_i64 ?(line = 80) t ~off v =
  track_store t ~off ~size:8;
  Instr.store_i64 t.instr ~line ~addr:off v

let store_int ?line t ~off v = store_i64 ?line t ~off (Int64.of_int v)

let store_u8 ?(line = 81) t ~off v =
  track_store t ~off ~size:1;
  Instr.store_u8 t.instr ~line ~addr:off v

let store_bytes ?(line = 82) t ~off b =
  track_store t ~off ~size:(Bytes.length b);
  Instr.store_bytes t.instr ~line ~addr:off b

let store_string ?(line = 83) t ~off ~len s =
  track_store t ~off ~size:len;
  Instr.store_string t.instr ~line ~addr:off ~len s

let load_i64 t ~off = Instr.load_i64 t.instr ~addr:off
let load_int t ~off = Instr.load_int t.instr ~addr:off
let load_u8 t ~off = Instr.load_u8 t.instr ~addr:off
let load_bytes t ~off ~len = Instr.load_bytes t.instr ~addr:off ~len
let load_string t ~off ~len = Instr.load_string t.instr ~addr:off ~len

let persist ?(line = 84) t ~off ~size = hw_persist t ~line ~off ~size
let flush ?(line = 85) t ~off ~size = hw_flush t ~line ~off ~size
let drain ?(line = 86) t = hw_drain t ~line

let tx_checker_start ?(line = 87) t = Instr.tx_event t.instr ~line Event.Tx_checker_start
let tx_checker_end ?(line = 88) t = Instr.tx_event t.instr ~line Event.Tx_checker_end

let is_persist ?(line = 89) t ~off ~size =
  Instr.checker t.instr ~line Event.(Is_persist { addr = off; size })

let is_ordered_before ?(line = 93) t ~a_off ~a_size ~b_off ~b_size =
  Instr.checker t.instr ~line
    Event.(Is_ordered_before { a_addr = a_off; a_size; b_addr = b_off; b_size })

(* --- Allocator ---------------------------------------------------------- *)

let align64 n = (n + 63) land lnot 63

let zero_block t ~off ~size =
  (* TX_ZNEW semantics: fresh objects are zeroed; inside a transaction the
     zeroing is tracked (and hence flushed at commit), outside it is
     persisted immediately. *)
  let zeros = Bytes.make size '\000' in
  if tx_active t then store_bytes ~line:90 t ~off zeros
  else begin
    raw_store_bytes t ~line:91 ~off zeros;
    raw_persist t ~line:92 ~off ~size
  end

let alloc t size =
  if size <= 0 then invalid_arg "Pool.alloc: size must be positive";
  let size = align64 size in
  let off =
    let rec first_fit acc = function
      | [] -> None
      | (o, s) :: rest when s >= size ->
        t.free_list <- List.rev_append acc rest;
        Some o
      | blk :: rest -> first_fit (blk :: acc) rest
    in
    match first_fit [] t.free_list with
    | Some o -> o
    | None ->
      let o = t.heap_top in
      if o + size > Machine.size (machine t) then raise Out_of_memory;
      t.heap_top <- o + size;
      raw_store_i64 t ~line:95 ~off:off_heap_top (Int64.of_int t.heap_top);
      raw_persist t ~line:96 ~off:off_heap_top ~size:8;
      o
  in
  (* A fresh allocation inside a transaction is recoverable by
     construction (rollback frees it), which PMDK's checkers model by
     registering the range like a log entry. *)
  if tx_active t then begin
    (* A freed block re-allocated within the same transaction is already
       registered as recoverable: announcing it again would read as a
       duplicate snapshot to the checkers. *)
    if not (Interval_map.covered t.tx.logged ~lo:off ~hi:(off + size)) then
      Instr.tx_event t.instr ~line:97 Event.(Tx_add { addr = off; size });
    t.tx.logged <- Interval_map.set t.tx.logged ~lo:off ~hi:(off + size) ()
  end;
  zero_block t ~off ~size;
  off

let free t ~off ~size = t.free_list <- (off, align64 size) :: t.free_list
