(* Collector internals: one Atomic for the per-event hot counter, one
   mutex for everything section-grained. Section hooks fire a handful of
   times per section (hundreds of entries), so a mutex there costs
   nothing next to the engine pass itself; the per-event counter is the
   only hook on the tracing fast path and stays lock-free. *)

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

type hist = {
  total : int;
  sum_ns : int;
  min_ns : int;
  max_ns : int;
  buckets : (int * int) list;
}

type worker_stat = { id : int; sections : int; busy_ns : int }
type shard_stat = { shard : int; shard_sessions : int; shard_sections : int }

type span = {
  seq : int;
  worker : int;
  entries : int;
  sent_ns : int;
  start_ns : int;
  done_ns : int;
  merged_ns : int;
}

type serve_stat = {
  sessions_opened : int;
  sessions_closed : int;
  sessions_hwm : int;
  frames_in : int;
  frames_out : int;
  frame_bytes_in : int;
  frame_bytes_out : int;
  frames_corrupt : int;
  sections_shed : int;
  inflight_hwm : int;
}

type farm_stat = {
  farm_workers : int;
  farm_workers_lost : int;
  farm_jobs : int;
  farm_jobs_done : int;
  farm_offers : int;
  farm_retries : int;
  farm_steals : int;
  farm_reassignments : int;
  farm_findings : int;
  farm_dup_findings : int;
  farm_nondet : int;
  farm_heartbeats : int;
  farm_checkpoints : int;
}

type snapshot = {
  elapsed_ns : int;
  events_traced : int;
  sections_sent : int;
  sections_checked : int;
  sections_merged : int;
  sections_dropped : int;
  queue_hwm : int;
  reorder_hwm : int;
  entries_checked : int;
  ops_checked : int;
  checkers_run : int;
  diagnostics : int;
  batches : int;
  batch_sections_max : int;
  arenas_allocated : int;
  arenas_reused : int;
  repair_traces : int;
  repair_edits : int;
  repair_rounds : int;
  repair_ns : int;
  repair_verify_ns : int;
  serve : serve_stat;
  farm : farm_stat;
  workers : worker_stat list;
  shards : shard_stat list;
  check_hist : hist;
  e2e_hist : hist;
  serve_hist : hist;
  spans : span list;
}

(* Durations live in log2 buckets: bucket [i] holds [2^i, 2^(i+1)) ns,
   with 0 and 1 ns both in bucket 0. 63 buckets cover any OCaml int. *)
let n_buckets = 63

let bucket_of ns =
  if ns < 2 then 0
  else begin
    let i = ref 0 and v = ref ns in
    while !v > 1 do
      v := !v lsr 1;
      incr i
    done;
    min !i (n_buckets - 1)
  end

type hist_acc = {
  mutable h_total : int;
  mutable h_sum : int;
  mutable h_min : int;
  mutable h_max : int;
  h_buckets : int array;
}

let hist_acc () = { h_total = 0; h_sum = 0; h_min = 0; h_max = 0; h_buckets = Array.make n_buckets 0 }

let hist_add h ns =
  let ns = max 0 ns in
  if h.h_total = 0 || ns < h.h_min then h.h_min <- ns;
  if ns > h.h_max then h.h_max <- ns;
  h.h_total <- h.h_total + 1;
  h.h_sum <- h.h_sum + ns;
  let b = bucket_of ns in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let hist_of_acc h =
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if h.h_buckets.(i) > 0 then buckets := (i, h.h_buckets.(i)) :: !buckets
  done;
  { total = h.h_total; sum_ns = h.h_sum; min_ns = h.h_min; max_ns = h.h_max; buckets = !buckets }

type pending = {
  p_entries : int;
  p_sent : int;
  mutable p_worker : int;
  mutable p_start : int;
  mutable p_done : int;
}

type t = {
  on : bool;
  max_spans : int;
  created : int;
  events : int Atomic.t;
  m : Mutex.t;
  mutable sent : int;
  mutable checked : int;
  mutable merged : int;
  mutable dropped : int;
  mutable queue_hwm : int;
  mutable reorder_hwm : int;
  mutable n_entries : int;
  mutable n_ops : int;
  mutable n_checkers : int;
  mutable n_diags : int;
  mutable n_batches : int;
  mutable batch_max : int;
  arena_allocs : int Atomic.t;
  arena_reuses : int Atomic.t;
  (* Auto-repair counters; all under [m]. *)
  mutable r_traces : int;
  mutable r_edits : int;
  mutable r_rounds : int;
  mutable r_ns : int;
  mutable r_verify_ns : int;
  (* Service-side (pmtestd) counters; all under [m]. *)
  mutable s_opened : int;
  mutable s_closed : int;
  mutable s_active : int;
  mutable s_hwm : int;
  mutable f_in : int;
  mutable f_out : int;
  mutable fb_in : int;
  mutable fb_out : int;
  mutable f_corrupt : int;
  mutable s_shed : int;
  mutable inflight_hwm : int;
  (* Farm (pmfarm coordinator) counters; all under [m]. *)
  mutable fm_workers : int;
  mutable fm_workers_lost : int;
  mutable fm_jobs : int;
  mutable fm_jobs_done : int;
  mutable fm_offers : int;
  mutable fm_retries : int;
  mutable fm_steals : int;
  mutable fm_reassignments : int;
  mutable fm_findings : int;
  mutable fm_dup_findings : int;
  mutable fm_nondet : int;
  mutable fm_heartbeats : int;
  mutable fm_checkpoints : int;
  pending : (int, pending) Hashtbl.t;
  wstats : (int, int ref * int ref) Hashtbl.t;  (* id -> (sections, busy_ns) *)
  shstats : (int, int ref * int ref) Hashtbl.t;  (* shard -> (sessions, sections) *)
  check_h : hist_acc;
  e2e_h : hist_acc;
  serve_h : hist_acc;
  spans : span Queue.t;
}

let make ~on ~max_spans =
  {
    on;
    max_spans;
    created = now_ns ();
    events = Atomic.make 0;
    m = Mutex.create ();
    sent = 0;
    checked = 0;
    merged = 0;
    dropped = 0;
    queue_hwm = 0;
    reorder_hwm = 0;
    n_entries = 0;
    n_ops = 0;
    n_checkers = 0;
    n_diags = 0;
    n_batches = 0;
    batch_max = 0;
    arena_allocs = Atomic.make 0;
    arena_reuses = Atomic.make 0;
    r_traces = 0;
    r_edits = 0;
    r_rounds = 0;
    r_ns = 0;
    r_verify_ns = 0;
    s_opened = 0;
    s_closed = 0;
    s_active = 0;
    s_hwm = 0;
    f_in = 0;
    f_out = 0;
    fb_in = 0;
    fb_out = 0;
    f_corrupt = 0;
    s_shed = 0;
    inflight_hwm = 0;
    fm_workers = 0;
    fm_workers_lost = 0;
    fm_jobs = 0;
    fm_jobs_done = 0;
    fm_offers = 0;
    fm_retries = 0;
    fm_steals = 0;
    fm_reassignments = 0;
    fm_findings = 0;
    fm_dup_findings = 0;
    fm_nondet = 0;
    fm_heartbeats = 0;
    fm_checkpoints = 0;
    pending = Hashtbl.create 32;
    wstats = Hashtbl.create 8;
    shstats = Hashtbl.create 8;
    check_h = hist_acc ();
    e2e_h = hist_acc ();
    serve_h = hist_acc ();
    spans = Queue.create ();
  }

let disabled = make ~on:false ~max_spans:0
let create ?(max_spans = 1024) () = make ~on:true ~max_spans
let enabled t = t.on

let locked t f =
  Mutex.lock t.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.m) f

let since t = now_ns () - t.created

let event_traced t = if t.on then Atomic.incr t.events
let events_traced_add t n = if t.on then ignore (Atomic.fetch_and_add t.events n)
let section_dropped t = if t.on then locked t (fun () -> t.dropped <- t.dropped + 1)

let section_sent t ~seq ~entries =
  if t.on then
    locked t (fun () ->
        t.sent <- t.sent + 1;
        Hashtbl.replace t.pending seq
          { p_entries = entries; p_sent = since t; p_worker = 0; p_start = 0; p_done = 0 })

let queue_depth t d = if t.on then locked t (fun () -> if d > t.queue_hwm then t.queue_hwm <- d)

let reorder_depth t d =
  if t.on then locked t (fun () -> if d > t.reorder_hwm then t.reorder_hwm <- d)

let check_started t ~seq ~worker =
  if t.on then
    locked t (fun () ->
        match Hashtbl.find_opt t.pending seq with
        | None -> ()
        | Some p ->
          p.p_worker <- worker;
          (* The producer's and worker's gettimeofday readings may step
             past each other; clamp so sent <= start <= done <= merged. *)
          p.p_start <- max (since t) p.p_sent)

let worker_stat t id =
  match Hashtbl.find_opt t.wstats id with
  | Some s -> s
  | None ->
    let s = (ref 0, ref 0) in
    Hashtbl.replace t.wstats id s;
    s

let check_finished t ~seq =
  if t.on then
    locked t (fun () ->
        match Hashtbl.find_opt t.pending seq with
        | None -> ()
        | Some p ->
          p.p_done <- max (since t) p.p_start;
          t.checked <- t.checked + 1;
          let sections, busy = worker_stat t p.p_worker in
          incr sections;
          busy := !busy + (p.p_done - p.p_start);
          hist_add t.check_h (p.p_done - p.p_start))

let section_merged t ~seq =
  if t.on then
    locked t (fun () ->
        match Hashtbl.find_opt t.pending seq with
        | None -> ()
        | Some p ->
          Hashtbl.remove t.pending seq;
          let merged_ns = max (since t) p.p_done in
          t.merged <- t.merged + 1;
          hist_add t.e2e_h (merged_ns - p.p_sent);
          Queue.push
            {
              seq;
              worker = p.p_worker;
              entries = p.p_entries;
              sent_ns = p.p_sent;
              start_ns = p.p_start;
              done_ns = p.p_done;
              merged_ns;
            }
            t.spans;
          if Queue.length t.spans > t.max_spans then ignore (Queue.pop t.spans))

let batch_drained t ~sections =
  if t.on then
    locked t (fun () ->
        t.n_batches <- t.n_batches + 1;
        if sections > t.batch_max then t.batch_max <- sections)

let arena_alloc t ~reused =
  if t.on then begin
    Atomic.incr t.arena_allocs;
    if reused then Atomic.incr t.arena_reuses
  end

(* --- Auto-repair hooks ---------------------------------------------------- *)

let repair_trace t ~edits ~rounds ~ns =
  if t.on then
    locked t (fun () ->
        t.r_traces <- t.r_traces + 1;
        t.r_edits <- t.r_edits + edits;
        t.r_rounds <- t.r_rounds + rounds;
        t.r_ns <- t.r_ns + ns)

let repair_verify_ns t ns = if t.on then locked t (fun () -> t.r_verify_ns <- t.r_verify_ns + ns)

(* --- Service (pmtestd) hooks -------------------------------------------- *)

let session_opened t =
  if t.on then
    locked t (fun () ->
        t.s_opened <- t.s_opened + 1;
        t.s_active <- t.s_active + 1;
        if t.s_active > t.s_hwm then t.s_hwm <- t.s_active)

let session_closed t =
  if t.on then
    locked t (fun () ->
        t.s_closed <- t.s_closed + 1;
        t.s_active <- t.s_active - 1)

let frame_received t ~bytes =
  if t.on then
    locked t (fun () ->
        t.f_in <- t.f_in + 1;
        t.fb_in <- t.fb_in + bytes)

let frame_sent t ~bytes =
  if t.on then
    locked t (fun () ->
        t.f_out <- t.f_out + 1;
        t.fb_out <- t.fb_out + bytes)

let frame_corrupt t = if t.on then locked t (fun () -> t.f_corrupt <- t.f_corrupt + 1)
let section_shed t = if t.on then locked t (fun () -> t.s_shed <- t.s_shed + 1)

let inflight_depth t d =
  if t.on then locked t (fun () -> if d > t.inflight_hwm then t.inflight_hwm <- d)

let serve_section_ns t ns = if t.on then locked t (fun () -> hist_add t.serve_h ns)

(* --- Farm (pmfarm coordinator) hooks ------------------------------------- *)

let farm_campaign t ~jobs = if t.on then locked t (fun () -> t.fm_jobs <- t.fm_jobs + jobs)
let farm_worker_joined t = if t.on then locked t (fun () -> t.fm_workers <- t.fm_workers + 1)

let farm_worker_lost t =
  if t.on then locked t (fun () -> t.fm_workers_lost <- t.fm_workers_lost + 1)

let farm_offer t ~retry ~steal =
  if t.on then
    locked t (fun () ->
        t.fm_offers <- t.fm_offers + 1;
        if retry then t.fm_retries <- t.fm_retries + 1;
        if steal then t.fm_steals <- t.fm_steals + 1)

let farm_job_done t = if t.on then locked t (fun () -> t.fm_jobs_done <- t.fm_jobs_done + 1)

let farm_reassigned t ~jobs =
  if t.on then locked t (fun () -> t.fm_reassignments <- t.fm_reassignments + jobs)

let farm_finding t ~dup =
  if t.on then
    locked t (fun () ->
        if dup then t.fm_dup_findings <- t.fm_dup_findings + 1
        else t.fm_findings <- t.fm_findings + 1)

let farm_nondet t = if t.on then locked t (fun () -> t.fm_nondet <- t.fm_nondet + 1)
let farm_heartbeat t = if t.on then locked t (fun () -> t.fm_heartbeats <- t.fm_heartbeats + 1)

let farm_checkpoint t =
  if t.on then locked t (fun () -> t.fm_checkpoints <- t.fm_checkpoints + 1)

(* Per-shard admission/dispatch counters (the daemon's shards share one
   collector, so the scaling story — are sessions and sections actually
   spreading? — is visible in one snapshot). *)

let shard_refs t shard =
  match Hashtbl.find_opt t.shstats shard with
  | Some s -> s
  | None ->
    let s = (ref 0, ref 0) in
    Hashtbl.replace t.shstats shard s;
    s

let shard_session t ~shard =
  if t.on then
    locked t (fun () ->
        let sessions, _ = shard_refs t shard in
        incr sessions)

let shard_section t ~shard =
  if t.on then
    locked t (fun () ->
        let _, sections = shard_refs t shard in
        incr sections)

let engine_counts t ~entries ~ops ~checkers ~diags =
  if t.on then
    locked t (fun () ->
        t.n_entries <- t.n_entries + entries;
        t.n_ops <- t.n_ops + ops;
        t.n_checkers <- t.n_checkers + checkers;
        t.n_diags <- t.n_diags + diags)

let empty_hist = { total = 0; sum_ns = 0; min_ns = 0; max_ns = 0; buckets = [] }

let empty_serve =
  {
    sessions_opened = 0;
    sessions_closed = 0;
    sessions_hwm = 0;
    frames_in = 0;
    frames_out = 0;
    frame_bytes_in = 0;
    frame_bytes_out = 0;
    frames_corrupt = 0;
    sections_shed = 0;
    inflight_hwm = 0;
  }

let empty_farm =
  {
    farm_workers = 0;
    farm_workers_lost = 0;
    farm_jobs = 0;
    farm_jobs_done = 0;
    farm_offers = 0;
    farm_retries = 0;
    farm_steals = 0;
    farm_reassignments = 0;
    farm_findings = 0;
    farm_dup_findings = 0;
    farm_nondet = 0;
    farm_heartbeats = 0;
    farm_checkpoints = 0;
  }

let empty_snapshot =
  {
    elapsed_ns = 0;
    events_traced = 0;
    sections_sent = 0;
    sections_checked = 0;
    sections_merged = 0;
    sections_dropped = 0;
    queue_hwm = 0;
    reorder_hwm = 0;
    entries_checked = 0;
    ops_checked = 0;
    checkers_run = 0;
    diagnostics = 0;
    batches = 0;
    batch_sections_max = 0;
    arenas_allocated = 0;
    arenas_reused = 0;
    repair_traces = 0;
    repair_edits = 0;
    repair_rounds = 0;
    repair_ns = 0;
    repair_verify_ns = 0;
    serve = empty_serve;
    farm = empty_farm;
    workers = [];
    shards = [];
    check_hist = empty_hist;
    e2e_hist = empty_hist;
    serve_hist = empty_hist;
    spans = [];
  }

let snapshot t =
  if not t.on then empty_snapshot
  else
    locked t (fun () ->
        let workers =
          List.sort compare
            (Hashtbl.fold
               (fun id (sections, busy) acc ->
                 { id; sections = !sections; busy_ns = !busy } :: acc)
               t.wstats [])
        in
        let shards =
          List.sort compare
            (Hashtbl.fold
               (fun shard (sessions, sections) acc ->
                 { shard; shard_sessions = !sessions; shard_sections = !sections } :: acc)
               t.shstats [])
        in
        {
          elapsed_ns = since t;
          events_traced = Atomic.get t.events;
          sections_sent = t.sent;
          sections_checked = t.checked;
          sections_merged = t.merged;
          sections_dropped = t.dropped;
          queue_hwm = t.queue_hwm;
          reorder_hwm = t.reorder_hwm;
          entries_checked = t.n_entries;
          ops_checked = t.n_ops;
          checkers_run = t.n_checkers;
          diagnostics = t.n_diags;
          batches = t.n_batches;
          batch_sections_max = t.batch_max;
          arenas_allocated = Atomic.get t.arena_allocs;
          arenas_reused = Atomic.get t.arena_reuses;
          repair_traces = t.r_traces;
          repair_edits = t.r_edits;
          repair_rounds = t.r_rounds;
          repair_ns = t.r_ns;
          repair_verify_ns = t.r_verify_ns;
          serve =
            {
              sessions_opened = t.s_opened;
              sessions_closed = t.s_closed;
              sessions_hwm = t.s_hwm;
              frames_in = t.f_in;
              frames_out = t.f_out;
              frame_bytes_in = t.fb_in;
              frame_bytes_out = t.fb_out;
              frames_corrupt = t.f_corrupt;
              sections_shed = t.s_shed;
              inflight_hwm = t.inflight_hwm;
            };
          farm =
            {
              farm_workers = t.fm_workers;
              farm_workers_lost = t.fm_workers_lost;
              farm_jobs = t.fm_jobs;
              farm_jobs_done = t.fm_jobs_done;
              farm_offers = t.fm_offers;
              farm_retries = t.fm_retries;
              farm_steals = t.fm_steals;
              farm_reassignments = t.fm_reassignments;
              farm_findings = t.fm_findings;
              farm_dup_findings = t.fm_dup_findings;
              farm_nondet = t.fm_nondet;
              farm_heartbeats = t.fm_heartbeats;
              farm_checkpoints = t.fm_checkpoints;
            };
          workers;
          shards;
          check_hist = hist_of_acc t.check_h;
          e2e_hist = hist_of_acc t.e2e_h;
          serve_hist = hist_of_acc t.serve_h;
          spans = List.of_seq (Queue.to_seq t.spans);
        })

(* --- Pretty console sink ---------------------------------------------------- *)

let pp_dur ppf ns =
  if ns < 1_000 then Format.fprintf ppf "%dns" ns
  else if ns < 1_000_000 then Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else if ns < 1_000_000_000 then Format.fprintf ppf "%.1fms" (float_of_int ns /. 1e6)
  else Format.fprintf ppf "%.2fs" (float_of_int ns /. 1e9)

let dur_to_string ns = Format.asprintf "%a" pp_dur ns

let pp_hist ppf (name, h) =
  if h.total = 0 then Format.fprintf ppf "@,%s: no samples" name
  else begin
    Format.fprintf ppf "@,%s: %d sample(s), min %s, mean %s, max %s" name h.total
      (dur_to_string h.min_ns)
      (dur_to_string (h.sum_ns / h.total))
      (dur_to_string h.max_ns);
    let widest = List.fold_left (fun m (_, c) -> max m c) 1 h.buckets in
    List.iter
      (fun (i, count) ->
        let lo = if i = 0 then 0 else 1 lsl i in
        let hi = 1 lsl (i + 1) in
        let bar = String.make (max 1 (count * 24 / widest)) '#' in
        Format.fprintf ppf "@,  [%7s, %7s)  %-24s %d" (dur_to_string lo) (dur_to_string hi) bar
          count)
      h.buckets
  end

let pp ppf s =
  Format.fprintf ppf "@[<v>pipeline profile — %s elapsed" (dur_to_string s.elapsed_ns);
  Format.fprintf ppf "@,events traced    %d" s.events_traced;
  Format.fprintf ppf "@,sections         sent %d  checked %d  merged %d  dropped %d"
    s.sections_sent s.sections_checked s.sections_merged s.sections_dropped;
  Format.fprintf ppf "@,queue high-water %d   reorder-buffer high-water %d" s.queue_hwm
    s.reorder_hwm;
  Format.fprintf ppf "@,engine           entries %d  ops %d  checkers %d  diagnostics %d"
    s.entries_checked s.ops_checked s.checkers_run s.diagnostics;
  if s.batches > 0 || s.arenas_allocated > 0 then
    Format.fprintf ppf "@,flat path        batches %d (max %d section(s))  arenas %d (%d reused)"
      s.batches s.batch_sections_max s.arenas_allocated s.arenas_reused;
  if s.repair_traces > 0 then
    Format.fprintf ppf
      "@,repair           traces %d  edits %d  rounds %d  analyse %s  verify %s" s.repair_traces
      s.repair_edits s.repair_rounds (dur_to_string s.repair_ns)
      (dur_to_string s.repair_verify_ns);
  if s.serve.sessions_opened > 0 || s.serve.frames_in > 0 then begin
    Format.fprintf ppf
      "@,service          sessions %d opened, %d closed (peak %d concurrent)"
      s.serve.sessions_opened s.serve.sessions_closed s.serve.sessions_hwm;
    Format.fprintf ppf "@,                 frames in %d (%d B)  out %d (%d B)  corrupt %d"
      s.serve.frames_in s.serve.frame_bytes_in s.serve.frames_out s.serve.frame_bytes_out
      s.serve.frames_corrupt;
    Format.fprintf ppf "@,                 sections shed %d   inflight high-water %d"
      s.serve.sections_shed s.serve.inflight_hwm
  end;
  if s.farm.farm_jobs > 0 || s.farm.farm_workers > 0 then begin
    Format.fprintf ppf "@,farm             jobs %d/%d done  offers %d (retries %d, steals %d)"
      s.farm.farm_jobs_done s.farm.farm_jobs s.farm.farm_offers s.farm.farm_retries
      s.farm.farm_steals;
    Format.fprintf ppf "@,                 workers %d joined, %d lost  reassigned %d job(s)"
      s.farm.farm_workers s.farm.farm_workers_lost s.farm.farm_reassignments;
    Format.fprintf ppf
      "@,                 findings %d (+%d duplicate)  nondeterminism flags %d"
      s.farm.farm_findings s.farm.farm_dup_findings s.farm.farm_nondet;
    Format.fprintf ppf "@,                 heartbeats %d  checkpoints %d" s.farm.farm_heartbeats
      s.farm.farm_checkpoints
  end;
  if s.shards <> [] then begin
    Format.fprintf ppf "@,shards (admission + dispatch spread):";
    List.iter
      (fun sh ->
        Format.fprintf ppf "@,  shard%-2d sessions %4d  sections %6d" sh.shard
          sh.shard_sessions sh.shard_sections)
      s.shards
  end;
  if s.workers <> [] then begin
    Format.fprintf ppf "@,workers (utilization = busy / elapsed):";
    List.iter
      (fun w ->
        let util =
          if s.elapsed_ns <= 0 then 0.0
          else 100.0 *. float_of_int w.busy_ns /. float_of_int s.elapsed_ns
        in
        Format.fprintf ppf "@,  w%-3d sections %6d  busy %8s  utilization %5.1f%%" w.id
          w.sections (dur_to_string w.busy_ns) util)
      s.workers
  end;
  pp_hist ppf ("check latency", s.check_hist);
  pp_hist ppf ("end-to-end section latency", s.e2e_hist);
  if s.serve_hist.total > 0 then pp_hist ppf ("per-session section latency", s.serve_hist);
  if s.spans <> [] then
    Format.fprintf ppf "@,%d span(s) retained (full records in the TSV/JSON output)"
      (List.length s.spans);
  Format.fprintf ppf "@]"

(* --- TSV sink (round-trippable) --------------------------------------------- *)

let counter_fields s =
  [
    ("elapsed_ns", s.elapsed_ns);
    ("events_traced", s.events_traced);
    ("sections_sent", s.sections_sent);
    ("sections_checked", s.sections_checked);
    ("sections_merged", s.sections_merged);
    ("sections_dropped", s.sections_dropped);
    ("queue_hwm", s.queue_hwm);
    ("reorder_hwm", s.reorder_hwm);
    ("entries_checked", s.entries_checked);
    ("ops_checked", s.ops_checked);
    ("checkers_run", s.checkers_run);
    ("diagnostics", s.diagnostics);
    ("batches", s.batches);
    ("batch_sections_max", s.batch_sections_max);
    ("arenas_allocated", s.arenas_allocated);
    ("arenas_reused", s.arenas_reused);
    ("repair_traces", s.repair_traces);
    ("repair_edits", s.repair_edits);
    ("repair_rounds", s.repair_rounds);
    ("repair_ns", s.repair_ns);
    ("repair_verify_ns", s.repair_verify_ns);
    ("serve_sessions_opened", s.serve.sessions_opened);
    ("serve_sessions_closed", s.serve.sessions_closed);
    ("serve_sessions_hwm", s.serve.sessions_hwm);
    ("serve_frames_in", s.serve.frames_in);
    ("serve_frames_out", s.serve.frames_out);
    ("serve_frame_bytes_in", s.serve.frame_bytes_in);
    ("serve_frame_bytes_out", s.serve.frame_bytes_out);
    ("serve_frames_corrupt", s.serve.frames_corrupt);
    ("serve_sections_shed", s.serve.sections_shed);
    ("serve_inflight_hwm", s.serve.inflight_hwm);
    ("farm_workers", s.farm.farm_workers);
    ("farm_workers_lost", s.farm.farm_workers_lost);
    ("farm_jobs", s.farm.farm_jobs);
    ("farm_jobs_done", s.farm.farm_jobs_done);
    ("farm_offers", s.farm.farm_offers);
    ("farm_retries", s.farm.farm_retries);
    ("farm_steals", s.farm.farm_steals);
    ("farm_reassignments", s.farm.farm_reassignments);
    ("farm_findings", s.farm.farm_findings);
    ("farm_dup_findings", s.farm.farm_dup_findings);
    ("farm_nondet", s.farm.farm_nondet);
    ("farm_heartbeats", s.farm.farm_heartbeats);
    ("farm_checkpoints", s.farm.farm_checkpoints);
  ]

let to_tsv s =
  let b = Buffer.create 1024 in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string b l; Buffer.add_char b '\n') fmt in
  List.iter (fun (k, v) -> line "counter\t%s\t%d" k v) (counter_fields s);
  List.iter (fun w -> line "worker\t%d\t%d\t%d" w.id w.sections w.busy_ns) s.workers;
  List.iter
    (fun sh -> line "shard\t%d\t%d\t%d" sh.shard sh.shard_sessions sh.shard_sections)
    s.shards;
  List.iter
    (fun (name, h) ->
      line "hist\t%s\t%d\t%d\t%d\t%d" name h.total h.sum_ns h.min_ns h.max_ns;
      List.iter (fun (i, c) -> line "histbucket\t%s\t%d\t%d" name i c) h.buckets)
    [ ("check", s.check_hist); ("e2e", s.e2e_hist); ("serve", s.serve_hist) ];
  List.iter
    (fun sp ->
      line "span\t%d\t%d\t%d\t%d\t%d\t%d\t%d" sp.seq sp.worker sp.entries sp.sent_ns sp.start_ns
        sp.done_ns sp.merged_ns)
    s.spans;
  Buffer.contents b

let of_tsv text =
  let snap = ref empty_snapshot in
  let err = ref None in
  let fail fmt = Printf.ksprintf (fun m -> if !err = None then err := Some m) fmt in
  let set_counter k v =
    let s = !snap in
    match k with
    | "elapsed_ns" -> snap := { s with elapsed_ns = v }
    | "events_traced" -> snap := { s with events_traced = v }
    | "sections_sent" -> snap := { s with sections_sent = v }
    | "sections_checked" -> snap := { s with sections_checked = v }
    | "sections_merged" -> snap := { s with sections_merged = v }
    | "sections_dropped" -> snap := { s with sections_dropped = v }
    | "queue_hwm" -> snap := { s with queue_hwm = v }
    | "reorder_hwm" -> snap := { s with reorder_hwm = v }
    | "entries_checked" -> snap := { s with entries_checked = v }
    | "ops_checked" -> snap := { s with ops_checked = v }
    | "checkers_run" -> snap := { s with checkers_run = v }
    | "diagnostics" -> snap := { s with diagnostics = v }
    | "batches" -> snap := { s with batches = v }
    | "batch_sections_max" -> snap := { s with batch_sections_max = v }
    | "arenas_allocated" -> snap := { s with arenas_allocated = v }
    | "arenas_reused" -> snap := { s with arenas_reused = v }
    | "repair_traces" -> snap := { s with repair_traces = v }
    | "repair_edits" -> snap := { s with repair_edits = v }
    | "repair_rounds" -> snap := { s with repair_rounds = v }
    | "repair_ns" -> snap := { s with repair_ns = v }
    | "repair_verify_ns" -> snap := { s with repair_verify_ns = v }
    | "serve_sessions_opened" -> snap := { s with serve = { s.serve with sessions_opened = v } }
    | "serve_sessions_closed" -> snap := { s with serve = { s.serve with sessions_closed = v } }
    | "serve_sessions_hwm" -> snap := { s with serve = { s.serve with sessions_hwm = v } }
    | "serve_frames_in" -> snap := { s with serve = { s.serve with frames_in = v } }
    | "serve_frames_out" -> snap := { s with serve = { s.serve with frames_out = v } }
    | "serve_frame_bytes_in" -> snap := { s with serve = { s.serve with frame_bytes_in = v } }
    | "serve_frame_bytes_out" -> snap := { s with serve = { s.serve with frame_bytes_out = v } }
    | "serve_frames_corrupt" -> snap := { s with serve = { s.serve with frames_corrupt = v } }
    | "serve_sections_shed" -> snap := { s with serve = { s.serve with sections_shed = v } }
    | "serve_inflight_hwm" -> snap := { s with serve = { s.serve with inflight_hwm = v } }
    | "farm_workers" -> snap := { s with farm = { s.farm with farm_workers = v } }
    | "farm_workers_lost" -> snap := { s with farm = { s.farm with farm_workers_lost = v } }
    | "farm_jobs" -> snap := { s with farm = { s.farm with farm_jobs = v } }
    | "farm_jobs_done" -> snap := { s with farm = { s.farm with farm_jobs_done = v } }
    | "farm_offers" -> snap := { s with farm = { s.farm with farm_offers = v } }
    | "farm_retries" -> snap := { s with farm = { s.farm with farm_retries = v } }
    | "farm_steals" -> snap := { s with farm = { s.farm with farm_steals = v } }
    | "farm_reassignments" -> snap := { s with farm = { s.farm with farm_reassignments = v } }
    | "farm_findings" -> snap := { s with farm = { s.farm with farm_findings = v } }
    | "farm_dup_findings" -> snap := { s with farm = { s.farm with farm_dup_findings = v } }
    | "farm_nondet" -> snap := { s with farm = { s.farm with farm_nondet = v } }
    | "farm_heartbeats" -> snap := { s with farm = { s.farm with farm_heartbeats = v } }
    | "farm_checkpoints" -> snap := { s with farm = { s.farm with farm_checkpoints = v } }
    | other -> fail "unknown counter %S" other
  in
  let set_hist name f =
    let s = !snap in
    match name with
    | "check" -> snap := { s with check_hist = f s.check_hist }
    | "e2e" -> snap := { s with e2e_hist = f s.e2e_hist }
    | "serve" -> snap := { s with serve_hist = f s.serve_hist }
    | other -> fail "unknown histogram %S" other
  in
  let ints l = List.map int_of_string l in
  List.iter
    (fun l ->
      if !err = None && String.trim l <> "" then
        match String.split_on_char '\t' l with
        | [ "counter"; k; v ] -> (
          match int_of_string_opt v with
          | Some v -> set_counter k v
          | None -> fail "bad counter value in %S" l)
        | "worker" :: rest -> (
          match ints rest with
          | [ id; sections; busy_ns ] ->
            let s = !snap in
            snap := { s with workers = s.workers @ [ { id; sections; busy_ns } ] }
          | _ | (exception Failure _) -> fail "malformed worker line %S" l)
        | "shard" :: rest -> (
          match ints rest with
          | [ shard; shard_sessions; shard_sections ] ->
            let s = !snap in
            snap :=
              { s with shards = s.shards @ [ { shard; shard_sessions; shard_sections } ] }
          | _ | (exception Failure _) -> fail "malformed shard line %S" l)
        | "hist" :: name :: rest -> (
          match ints rest with
          | [ total; sum_ns; min_ns; max_ns ] ->
            set_hist name (fun _ -> { total; sum_ns; min_ns; max_ns; buckets = [] })
          | _ | (exception Failure _) -> fail "malformed hist line %S" l)
        | "histbucket" :: name :: rest -> (
          match ints rest with
          | [ i; c ] -> set_hist name (fun h -> { h with buckets = h.buckets @ [ (i, c) ] })
          | _ | (exception Failure _) -> fail "malformed histbucket line %S" l)
        | "span" :: rest -> (
          match ints rest with
          | [ seq; worker; entries; sent_ns; start_ns; done_ns; merged_ns ] ->
            let s = !snap in
            snap :=
              {
                s with
                spans =
                  s.spans @ [ { seq; worker; entries; sent_ns; start_ns; done_ns; merged_ns } ];
              }
          | _ | (exception Failure _) -> fail "malformed span line %S" l)
        | _ -> fail "unrecognized line %S" l)
    (String.split_on_char '\n' text);
  match !err with Some m -> Error m | None -> Ok !snap

(* --- JSON-lines sink --------------------------------------------------------- *)

let to_jsonl s =
  let b = Buffer.create 1024 in
  let obj fields =
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "%S:%s" k v))
      fields;
    Buffer.add_string b "}\n"
  in
  let i n = string_of_int n in
  obj
    ((("type", "\"counters\"") :: List.map (fun (k, v) -> (k, i v)) (counter_fields s)));
  List.iter
    (fun w ->
      obj
        [
          ("type", "\"worker\""); ("id", i w.id); ("sections", i w.sections);
          ("busy_ns", i w.busy_ns);
        ])
    s.workers;
  List.iter
    (fun sh ->
      obj
        [
          ("type", "\"shard\""); ("shard", i sh.shard); ("sessions", i sh.shard_sessions);
          ("sections", i sh.shard_sections);
        ])
    s.shards;
  List.iter
    (fun (name, h) ->
      obj
        [
          ("type", "\"hist\"");
          ("name", Printf.sprintf "%S" name);
          ("total", i h.total);
          ("sum_ns", i h.sum_ns);
          ("min_ns", i h.min_ns);
          ("max_ns", i h.max_ns);
          ( "buckets",
            "["
            ^ String.concat ","
                (List.map (fun (bi, c) -> Printf.sprintf "[%d,%d]" bi c) h.buckets)
            ^ "]" );
        ])
    [ ("check", s.check_hist); ("e2e", s.e2e_hist); ("serve", s.serve_hist) ];
  List.iter
    (fun sp ->
      obj
        [
          ("type", "\"span\""); ("seq", i sp.seq); ("worker", i sp.worker);
          ("entries", i sp.entries); ("sent_ns", i sp.sent_ns); ("start_ns", i sp.start_ns);
          ("done_ns", i sp.done_ns); ("merged_ns", i sp.merged_ns);
        ])
    s.spans;
  Buffer.contents b
