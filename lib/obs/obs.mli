(** Observability for the checking pipeline.

    One {!t} instruments a whole session: the tracer counts every entry
    it records, the runtime stamps each section's trip through dispatch,
    worker checking and in-order merge, and the engine reports what it
    examined. Everything is exposed as immutable {!snapshot} values that
    can be pretty-printed, serialized to TSV (machine-readable,
    round-trippable via {!of_tsv}) or to JSON lines.

    The disabled path is deliberately free: {!disabled} is a singleton
    whose [on] field is an immutable [false], every hook is guarded by
    callers with a single [if Obs.enabled obs] load-and-branch, and
    [Sink.observed] returns the {e unwrapped} sink when given
    {!disabled}, so the per-event hot path is byte-for-byte the
    uninstrumented one.

    Timestamps come from [Unix.gettimeofday] (the repo has no monotonic
    clock outside the bench harness); span stamps are clamped so that
    sent <= start <= done <= merged even if the wall clock steps
    backwards, which keeps the end-to-end >= check-latency invariant
    machine-checkable. *)

type t

val disabled : t
(** The shared no-op instance; every hook returns immediately. *)

val create : ?max_spans:int -> unit -> t
(** A live collector. At most [max_spans] (default 1024) of the most
    recent completed section spans are retained. *)

val enabled : t -> bool

val now_ns : unit -> int
(** Wall-clock nanoseconds since the Unix epoch. *)

(** {1 Hooks}

    All hooks are safe to call from any domain. [seq] is the runtime's
    dispatch sequence number; [worker] identifies the checking domain
    (the synchronous [workers:0] path uses worker 0). Calling any hook
    on {!disabled} is a no-op. *)

val event_traced : t -> unit
(** One trace entry recorded by an instrumentation sink or emitter. *)

val events_traced_add : t -> int -> unit
(** Bulk version of {!event_traced} for replay paths. *)

val section_dropped : t -> unit
(** [send_trace] found an empty section: nothing was dispatched. *)

val section_sent : t -> seq:int -> entries:int -> unit
(** Section [seq] ([entries] trace entries) handed to the runtime. *)

val queue_depth : t -> int -> unit
(** Sections dispatched but not yet merged, sampled at dispatch; the
    high-water mark is kept. *)

val check_started : t -> seq:int -> worker:int -> unit
val check_finished : t -> seq:int -> unit
(** Bracket the engine pass over section [seq] on a worker. On finish
    the per-worker section count and busy time and the check-latency
    histogram are updated. *)

val section_merged : t -> seq:int -> unit
(** Section [seq] merged into the aggregate in dispatch order; closes
    its span and feeds the end-to-end latency histogram. *)

val reorder_depth : t -> int -> unit
(** Occupancy of the reorder buffer (reports parked waiting for an
    earlier section), sampled after each parking; high-water kept. *)

val engine_counts : t -> entries:int -> ops:int -> checkers:int -> diags:int -> unit
(** Totals from one engine pass over a section. *)

val batch_drained : t -> sections:int -> unit
(** A worker drained its queue in one lock acquisition and got this many
    sections; the count and the per-batch high-water mark are kept. *)

val arena_alloc : t -> reused:bool -> unit
(** A packed trace arena was handed out — [reused] when it came from the
    freelist instead of a fresh allocation. *)

(** {2 Auto-repair hooks}

    Fired by the repair pass ({!Pmtest_repair.Repair}). *)

val repair_trace : t -> edits:int -> rounds:int -> ns:int -> unit
(** One trace ran to a repair fixed point: [edits] applied over
    [rounds] analysis passes in [ns] nanoseconds. *)

val repair_verify_ns : t -> int -> unit
(** Time spent verifying repair plans (engine and oracle
    differentials). *)

(** {2 Service hooks}

    Fired by the [pmtestd] daemon ({!Pmtest_server.Server}): session
    lifecycle, wire frames in either direction, corrupt frames, sections
    shed under backpressure, and per-session check latency. *)

val session_opened : t -> unit
(** A client session was accepted; the concurrent-session high-water
    mark is updated. *)

val session_closed : t -> unit

val frame_received : t -> bytes:int -> unit
(** One wire frame read from a client ([bytes] = header + payload). *)

val frame_sent : t -> bytes:int -> unit

val frame_corrupt : t -> unit
(** A frame failed CRC / version / decode validation and was rejected
    without killing the worker pool. *)

val section_shed : t -> unit
(** A decoded section was dropped by the [Shed] backpressure policy. *)

val inflight_depth : t -> int -> unit
(** Sections accepted from clients but not yet checked, sampled per
    arrival; high-water kept. *)

val serve_section_ns : t -> int -> unit
(** Receipt-to-checked latency of one client section (feeds the
    per-session latency histogram). *)

val shard_session : t -> shard:int -> unit
(** A session was admitted onto (pinned to) the given daemon shard. *)

val shard_section : t -> shard:int -> unit
(** One section dispatched by the given shard's runtime (shard 0 for
    every in-process runtime). *)

(** {2 Farm hooks}

    Fired by the pmfarm coordinator ({!Pmtest_farm.Farm}): campaign job
    accounting, worker lifecycle, offers (with their retry/steal
    provenance), reassignment after worker loss, finding dedup and
    nondeterminism flags. *)

val farm_campaign : t -> jobs:int -> unit
(** A campaign with this many jobs was opened (or resumed). *)

val farm_worker_joined : t -> unit
val farm_worker_lost : t -> unit
(** A worker handshake completed / a worker link died or timed out. *)

val farm_offer : t -> retry:bool -> steal:bool -> unit
(** One [Job_offer] sent; [retry] when the job was previously assigned
    to a lost worker, [steal] when it duplicates a slow in-flight
    attempt onto an idle worker. *)

val farm_job_done : t -> unit
val farm_reassigned : t -> jobs:int -> unit
(** Jobs returned to the pending set from a lost worker. *)

val farm_finding : t -> dup:bool -> unit
(** A reproducer reached the triage store ([dup] when digest-deduped). *)

val farm_nondet : t -> unit
(** Two attempts of one job produced different result digests. *)

val farm_heartbeat : t -> unit
val farm_checkpoint : t -> unit
(** One worker [Checkpoint] heartbeat frame / one on-disk campaign
    checkpoint write. *)

(** {1 Snapshots} *)

type hist = {
  total : int;  (** Samples recorded. *)
  sum_ns : int;
  min_ns : int;  (** 0 when [total = 0]. *)
  max_ns : int;
  buckets : (int * int) list;
      (** [(i, count)] with count > 0, ascending [i]: durations in
          [\[2{^i}, 2{^i+1}) ns] (bucket 0 also holds 0 and 1 ns). *)
}

type worker_stat = { id : int; sections : int; busy_ns : int }

type shard_stat = { shard : int; shard_sessions : int; shard_sections : int }
(** Sessions admitted onto / sections dispatched by one daemon shard. *)

type serve_stat = {
  sessions_opened : int;
  sessions_closed : int;
  sessions_hwm : int;  (** Peak concurrent sessions. *)
  frames_in : int;
  frames_out : int;
  frame_bytes_in : int;
  frame_bytes_out : int;
  frames_corrupt : int;  (** Rejected (CRC / version / decode). *)
  sections_shed : int;  (** Dropped by the [Shed] policy. *)
  inflight_hwm : int;  (** Peak accepted-but-unchecked sections. *)
}

type farm_stat = {
  farm_workers : int;  (** Workers that completed a handshake. *)
  farm_workers_lost : int;  (** Links dropped or heartbeat-timed-out. *)
  farm_jobs : int;  (** Jobs across the campaign(s). *)
  farm_jobs_done : int;
  farm_offers : int;  (** [Job_offer] frames sent. *)
  farm_retries : int;  (** Offers of a previously-lost job. *)
  farm_steals : int;  (** Duplicate offers onto idle workers. *)
  farm_reassignments : int;  (** Jobs moved off dead workers. *)
  farm_findings : int;  (** Distinct reproducers in the triage store. *)
  farm_dup_findings : int;  (** Digest-deduped duplicates. *)
  farm_nondet : int;  (** Attempt-digest mismatches flagged. *)
  farm_heartbeats : int;
  farm_checkpoints : int;  (** On-disk checkpoint writes. *)
}

type span = {
  seq : int;
  worker : int;
  entries : int;
  sent_ns : int;  (** Relative to collector creation. *)
  start_ns : int;
  done_ns : int;
  merged_ns : int;
}

type snapshot = {
  elapsed_ns : int;  (** Since collector creation. *)
  events_traced : int;
  sections_sent : int;
  sections_checked : int;
  sections_merged : int;
  sections_dropped : int;
  queue_hwm : int;
  reorder_hwm : int;
  entries_checked : int;
  ops_checked : int;
  checkers_run : int;
  diagnostics : int;
  batches : int;  (** Worker queue drains (batch hand-offs). *)
  batch_sections_max : int;  (** Largest single batch. *)
  arenas_allocated : int;  (** Packed arenas handed out. *)
  arenas_reused : int;  (** ... of which came from the freelist. *)
  repair_traces : int;  (** Traces run to a repair fixed point. *)
  repair_edits : int;  (** Edits applied across those traces. *)
  repair_rounds : int;  (** Analysis passes across those traces. *)
  repair_ns : int;  (** Time spent analysing and applying. *)
  repair_verify_ns : int;  (** Time spent verifying repair plans. *)
  serve : serve_stat;  (** Daemon-side counters (all zero in-process). *)
  farm : farm_stat;  (** pmfarm coordinator counters (all zero elsewhere). *)
  workers : worker_stat list;  (** Ascending worker id. *)
  shards : shard_stat list;  (** Ascending shard index; empty in-process. *)
  check_hist : hist;  (** Engine pass time per section. *)
  e2e_hist : hist;  (** Dispatch-to-merge time per section. *)
  serve_hist : hist;  (** Per-session receipt-to-checked latency. *)
  spans : span list;  (** Oldest retained first. *)
}

val snapshot : t -> snapshot
(** A consistent copy of the current state; {!disabled} yields all
    zeros. Counters are monotonic from one snapshot to the next. *)

(** {1 Sinks} *)

val pp : Format.formatter -> snapshot -> unit
(** Console profile: counters, per-worker utilization, histogram bars. *)

val to_tsv : snapshot -> string
(** Machine-readable: one [tag\tfield...] line per datum. *)

val of_tsv : string -> (snapshot, string) result
(** Inverse of {!to_tsv}: [of_tsv (to_tsv s) = Ok s]. *)

val to_jsonl : snapshot -> string
(** JSON-lines: one object per line ([counters], [worker], [hist],
    [span]), integer fields only. *)
