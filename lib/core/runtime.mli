(** Decoupled trace checking (paper §3.2, §4.4 Fig. 8).

    The program under test keeps executing while a master dispatches
    completed trace sections to the least-loaded worker in a pool, each
    of which drains its queue in batches, runs the {!Engine} on each
    section independently and merges the resulting report into the
    session aggregate. [get_result] implements
    [PMTest_GET_RESULT]: it blocks until every dispatched section has been
    tested.

    With [~workers:0] checking runs synchronously inside [send_trace] —
    used by deterministic tests and by the overhead-breakdown experiment
    (checking cost on the critical path vs. decoupled). *)

open Pmtest_model
open Pmtest_trace

type t

val create :
  ?workers:int ->
  ?model:Model.kind ->
  ?obs:Pmtest_obs.Obs.t ->
  ?shard:int ->
  ?arena_pool:Packed.pool ->
  unit ->
  t
(** [create ~workers ()] spawns that many checking domains (default 1).
    [obs] (default {!Pmtest_obs.Obs.disabled}) collects pipeline metrics:
    section dispatch/check/merge spans, queue depth and reorder-buffer
    occupancy high-water marks, per-worker busy time.  [shard] (unset
    for in-process runtimes) tags this runtime's obs records so several
    runtimes — the daemon's shards — can share one collector without
    their span keys colliding, and enables the per-shard dispatch
    counters.  [arena_pool] (default the process-wide
    {!Packed.default_pool}) is the freelist checked packed sections are
    recycled to; the daemon passes each shard's own pool so arenas cycle
    shard-locally. *)

val worker_count : t -> int
val model : t -> Model.kind
val obs : t -> Pmtest_obs.Obs.t

val send_trace : t -> Event.t array -> unit
(** Queue a section for checking. Raises [Invalid_argument] after
    {!shutdown}. Dispatch samples two workers at a rotating start index
    (O(1) per send, round-robin when idle) and posts with a lock-free
    CAS push — a loaded pipeline takes no mutex anywhere on the send
    path, so tracing threads never contend with the merge side or with
    each other. *)

val send_packed : ?prelude:Event.t array -> t -> Packed.t -> unit
(** Like {!send_trace} for a packed arena: the worker checks it with
    [Engine.check_packed] (no [Event.t array] is materialised) and then
    recycles the arena to the freelist. [prelude] (default empty) is a
    boxed prefix — the session's exclusion preamble — replayed before
    the arena, so sessions with active exclusion scopes stay on the
    packed path. Ownership transfers to the runtime — the caller must
    not touch the arena afterwards. *)

val send_packed_cb :
  ?model:Model.kind -> ?prelude:Event.t array -> t -> Packed.t -> (Report.t -> unit) -> unit
(** Like {!send_packed}, but the section's report is handed to the
    callback instead of entering the global aggregate — the building
    block for per-session aggregation in [pmtestd], where one worker
    pool serves many independent client sessions. Callbacks fire in
    dispatch order (from inside the in-order merge loop), so a consumer
    that merges callback reports as they arrive reproduces exactly the
    aggregate a dedicated synchronous runtime would have produced. The
    callback runs on a worker (or, with [workers:0], the sending)
    thread with the runtime's merge lock held: it must be brief and
    must not call back into the runtime. [model] overrides the
    runtime's persistency model for this section only. *)

val get_result : t -> Report.t
(** Block until all sections dispatched so far are checked; returns the
    aggregate report. Aggregation is deterministic: reports are merged in
    dispatch order regardless of which worker finished first, so the
    result is byte-identical to a [~workers:0] synchronous run over the
    same section stream. *)

val pending : t -> int
(** Sections dispatched but not yet checked (for tests and monitors).
    Lock-free: reads two atomic counters without touching the merge
    lock, so polling never contends with the pipeline. *)

val shutdown : t -> Report.t
(** Drain, stop the workers, join their domains, and return the final
    aggregate. Idempotent. *)
