open Pmtest_util
open Pmtest_model
open Pmtest_trace
open Pmtest_itree

module Obs = Pmtest_obs.Obs

type t = {
  runtime : Runtime.t;
  obs : Obs.t;
  packed : bool;
  builders : (int, Builder.t) Hashtbl.t;
  vars : (string, int * int) Hashtbl.t;
  mutex : Mutex.t;
  mutable tracking : bool;
  (* Exclusions outlive trace sections: the engine checks each section
     independently, so the active exclusion set is re-announced at the
     head of every section sent to the workers. *)
  mutable excluded : unit Interval_map.t;
  (* Called with every section handed to the runtime — how offline tools
     (the static lint, trace recorders) observe a live session. *)
  mutable observers : (Event.t array -> unit) list;
}

let init ?(model = Model.X86) ?(workers = 1) ?(obs = Obs.disabled) ?(packed = false) () =
  let t =
    {
      runtime = Runtime.create ~workers ~model ~obs ();
      obs;
      packed;
      builders = Hashtbl.create 8;
      vars = Hashtbl.create 16;
      mutex = Mutex.create ();
      tracking = true;
      excluded = Interval_map.empty;
      observers = [];
    }
  in
  Hashtbl.replace t.builders 0 (Builder.create ~thread:0 ~packed ~obs ());
  t

let model t = Runtime.model t.runtime
let worker_count t = Runtime.worker_count t.runtime
let obs t = t.obs
let packed t = t.packed

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let builder t thread =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.builders thread with
      | Some b -> b
      | None ->
        let b = Builder.create ~thread ~packed:t.packed ~obs:t.obs () in
        Builder.set_enabled b t.tracking;
        Hashtbl.replace t.builders thread b;
        b)

let thread_init t ~thread = ignore (builder t thread)

let start t =
  with_lock t (fun () ->
      t.tracking <- true;
      Hashtbl.iter (fun _ b -> Builder.set_enabled b true) t.builders)

let stop t =
  with_lock t (fun () ->
      t.tracking <- false;
      Hashtbl.iter (fun _ b -> Builder.set_enabled b false) t.builders)

let tracking t = t.tracking

let sink ?(thread = 0) t = Sink.observed t.obs (Builder.sink (builder t thread))

let emit ?(thread = 0) ?(loc = Loc.none) t kind =
  if Obs.enabled t.obs then Obs.event_traced t.obs;
  Builder.emit (builder t thread) kind loc

let exclude ?thread ?loc t ~addr ~size =
  emit ?thread ?loc t (Event.Control (Event.Exclude { addr; size }))

let include_ ?thread ?loc t ~addr ~size =
  emit ?thread ?loc t (Event.Control (Event.Include { addr; size }))

let lint_off ?thread ?loc ?(rule = "*") t =
  emit ?thread ?loc t (Event.Control (Event.Lint_off { rule }))

let lint_on ?thread ?loc ?(rule = "*") t =
  emit ?thread ?loc t (Event.Control (Event.Lint_on { rule }))

let on_section t f = with_lock t (fun () -> t.observers <- t.observers @ [ f ])

let reg_var t name ~addr ~size = with_lock t (fun () -> Hashtbl.replace t.vars name (addr, size))
let unreg_var t name = with_lock t (fun () -> Hashtbl.remove t.vars name)
let get_var t name = with_lock t (fun () -> Hashtbl.find_opt t.vars name)

let note_control t = function
  | Event.Exclude { addr; size } ->
    t.excluded <- Interval_map.set t.excluded ~lo:addr ~hi:(addr + size) ()
  | Event.Include { addr; size } ->
    t.excluded <- Interval_map.clear t.excluded ~lo:addr ~hi:(addr + size)
  | Event.Lint_off _ | Event.Lint_on _ -> ()

let send_boxed t section ~preamble =
  let section =
    if preamble = [] then section else Array.append (Array.of_list preamble) section
  in
  List.iter (fun f -> f section) t.observers;
  Runtime.send_trace t.runtime section

(* The exclusion preamble plus the live-scope update, shared by both
   representations. Returns (preamble, observers are present). *)
let section_prologue t ~thread ~note =
  with_lock t (fun () ->
      let preamble =
        List.rev
          (Interval_map.fold
             (fun lo hi () acc ->
               Event.make ~thread (Event.Control (Event.Exclude { addr = lo; size = hi - lo }))
               :: acc)
             t.excluded [])
      in
      (* Update the live exclusion set from this section's controls so
         the next section starts from the right scope. *)
      note ();
      (preamble, t.observers <> []))

let send_trace ?(thread = 0) t =
  let b = builder t thread in
  if Builder.is_packed b then begin
    let p = Builder.take_packed b in
    if Packed.count p > 0 then begin
      let note () =
        (* Only decode the section looking for scope controls when the
           builder actually recorded one — the common fast path skips
           the scan entirely. *)
        if Packed.has_scope_controls p then
          Packed.iter p (fun (v : Packed.view) ->
              match v.Packed.tag with
              | Packed.T_exclude ->
                t.excluded <-
                  Interval_map.set t.excluded ~lo:v.Packed.a ~hi:(v.Packed.a + v.Packed.b) ()
              | Packed.T_include ->
                t.excluded <-
                  Interval_map.clear t.excluded ~lo:v.Packed.a ~hi:(v.Packed.a + v.Packed.b)
              | _ -> ())
      in
      let preamble, have_observers = section_prologue t ~thread ~note in
      if not have_observers then
        (* An active exclusion scope rides along as a boxed prelude —
           the arena itself is never decoded. *)
        Runtime.send_packed t.runtime
          ~prelude:(if preamble = [] then [||] else Array.of_list preamble)
          p
      else begin
        (* Observers want the boxed shape; decode once and recycle the
           arena. *)
        let section = Packed.to_events p in
        Packed.free p;
        send_boxed t section ~preamble
      end
    end
    else begin
      Packed.free p;
      if Obs.enabled t.obs then Obs.section_dropped t.obs
    end
  end
  else begin
    let section = Builder.take b in
    if Array.length section > 0 then begin
      let preamble, _ =
        section_prologue t ~thread ~note:(fun () ->
            Array.iter
              (fun (e : Event.t) ->
                match e.Event.kind with Event.Control c -> note_control t c | _ -> ())
              section)
      in
      send_boxed t section ~preamble
    end
    else if Obs.enabled t.obs then Obs.section_dropped t.obs
  end

let get_result t = Runtime.get_result t.runtime
let section_length ?(thread = 0) t = Builder.length (builder t thread)

let is_persist ?thread ?loc t ~addr ~size =
  emit ?thread ?loc t (Event.Checker (Event.Is_persist { addr; size }))

let is_persist_var ?thread ?loc t name =
  match get_var t name with
  | None -> raise Not_found
  | Some (addr, size) -> is_persist ?thread ?loc t ~addr ~size

let is_ordered_before ?thread ?loc t ~a_addr ~a_size ~b_addr ~b_size =
  emit ?thread ?loc t (Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }))

let tx_checker_start ?thread ?loc t = emit ?thread ?loc t (Event.Tx Event.Tx_checker_start)
let tx_checker_end ?thread ?loc t = emit ?thread ?loc t (Event.Tx Event.Tx_checker_end)

let finish t =
  let threads = with_lock t (fun () -> Hashtbl.fold (fun k _ acc -> k :: acc) t.builders []) in
  List.iter (fun thread -> send_trace ~thread t) threads;
  Runtime.shutdown t.runtime
