open Pmtest_util
open Pmtest_itree
open Pmtest_model
open Pmtest_trace

(* Local status of a modified byte range (paper §4.4). The persist and
   flush intervals are not stored closed/open — they are derived lazily
   from these epochs and the current timestamp, so fences cost O(1)
   instead of a shadow-memory sweep. *)
type status = {
  write_epoch : int;
  write_loc : Loc.t;
  flush : (int * Loc.t) option;  (* first clwb since the last write *)
}

type range_status = { lo : int; hi : int; persist : Interval.t; flush : Interval.t option }
type snapshot = { timestamp : int; ranges : range_status list }

(* The checking core is written once against this shadow-memory
   signature and instantiated twice: the boxed path over the persistent
   {!Interval_map} (cheap snapshots, the historical representation) and
   the packed fast path over the mutable page-indexed {!Page_map}.  Both
   maps have identical observable semantics — same splitting, same
   non-merging of adjacent equal values — so the two engines produce
   byte-identical reports (pinned by the packed-vs-boxed fuzz pair). *)
module type SHADOW = sig
  type t

  val create : unit -> t
  val set : t -> lo:int -> hi:int -> status -> unit
  val update_range : t -> lo:int -> hi:int -> f:(status option -> status option) -> unit
  val overlapping : t -> lo:int -> hi:int -> (int * int * status) list
  val fold : (int -> int -> status -> 'a -> 'a) -> t -> 'a -> 'a
end

module Imap_shadow : SHADOW = struct
  type t = { mutable m : status Interval_map.t }

  let create () = { m = Interval_map.empty }
  let set t ~lo ~hi v = t.m <- Interval_map.set t.m ~lo ~hi v
  let update_range t ~lo ~hi ~f = t.m <- Interval_map.update_range t.m ~lo ~hi ~f
  let overlapping t ~lo ~hi = Interval_map.overlapping t.m ~lo ~hi
  let fold f t acc = Interval_map.fold f t.m acc
end

module Pmap_shadow : SHADOW = struct
  type t = status Page_map.t

  let create () = Page_map.create ()
  let set = Page_map.set
  let update_range = Page_map.update_range
  let overlapping = Page_map.overlapping
  let fold = Page_map.fold
end

(* Smallest recorded dfence timestamp strictly greater than [epoch]. *)
let first_dfence_after times epoch =
  let n = Vec.length times in
  let rec search lo hi =
    if lo >= hi then if lo < n then Some (Vec.get times lo) else None
    else
      let mid = (lo + hi) / 2 in
      if Vec.get times mid > epoch then search lo mid else search (mid + 1) hi
  in
  search 0 n

let effective_subranges ~excluded ~addr ~size =
  let lo = addr and hi = addr + size in
  let holes = Interval_map.overlapping excluded ~lo ~hi in
  let rec walk cursor = function
    | [] -> if cursor < hi then [ (cursor, hi) ] else []
    | (k, h, ()) :: rest ->
      let gap = if k > cursor then [ (cursor, k) ] else [] in
      gap @ walk (max cursor h) rest
  in
  walk lo holes

(* A diagnostic is recorded as kind/loc plus a rendering thunk; the
   message string is only materialised when the report is built, so the
   hot path never runs Format.  Thunks must capture values eagerly —
   [st.now] and the shadow mutate as checking proceeds. *)
type pending_diag = { kind : Report.kind; loc : Loc.t; render : unit -> string }

module Core (S : SHADOW) = struct
  type state = {
    model : Model.kind;
    mutable now : int;
    shadow : S.t;
    mutable excluded : unit Interval_map.t;
    dfence_times : int Vec.t;  (* HOPS dfence / CXL gpf drain timestamps *)
    mutable log_tree : Loc.t Interval_tree.t;
    mutable tx_depth : int;
    mutable scope_active : bool;
    mutable scope_writes : Loc.t Interval_map.t;
    diags : pending_diag Vec.t;
    mutable entries : int;
    mutable ops : int;
    mutable checkers : int;
  }

  let create_state model =
    {
      model;
      now = 0;
      shadow = S.create ();
      excluded = Interval_map.empty;
      dfence_times = Vec.create ();
      log_tree = Interval_tree.empty;
      tx_depth = 0;
      scope_active = false;
      scope_writes = Interval_map.empty;
      diags = Vec.create ();
      entries = 0;
      ops = 0;
      checkers = 0;
    }

  let diag st kind loc render = Vec.push st.diags { kind; loc; render }

  let persist_interval st (s : status) =
    match st.model with
    | Model.X86 -> begin
      match s.flush with
      | Some (fe, _) when st.now > fe -> Interval.make ~lo:s.write_epoch ~hi:(fe + 1)
      | Some _ | None -> Interval.make_open s.write_epoch
    end
    | Model.Hops | Model.Cxl -> begin
      (* CXL reuses the drain-time machinery: a store is durable once
         the first global persist barrier after its epoch completes. *)
      match first_dfence_after st.dfence_times s.write_epoch with
      | Some d -> Interval.make ~lo:s.write_epoch ~hi:d
      | None -> Interval.make_open s.write_epoch
    end
    | Model.Eadr ->
      (* The cache is persistent: a store is durable the instant it executes
         and stores persist in program order, so every write gets its own
         unit-width, already-closed interval (epochs advance per write). *)
      Interval.make ~lo:(s.write_epoch - 1) ~hi:s.write_epoch

  (* [Interval.ends_by (persist_interval st s) st.now] without building
     the interval — the clean path of every persistence check.  Closed
     bounds are always timestamps already reached ([fe + 1 <= now] when
     [now > fe]; dfence stamps and eADR epochs never exceed [now]), so
     only the open/closed distinction matters. *)
  let persisted_by_now st (s : status) =
    match st.model with
    | Model.X86 -> begin
      match s.flush with Some (fe, _) -> st.now > fe | None -> false
    end
    | Model.Hops | Model.Cxl ->
      (* [dfence_times] is ascending: a drain point after the write
         epoch exists iff the newest one is after it. *)
      let n = Vec.length st.dfence_times in
      n > 0 && Vec.get st.dfence_times (n - 1) > s.write_epoch
    | Model.Eadr -> true

  let flush_interval st (s : status) =
    match s.flush with
    | None -> None
    | Some (fe, _) ->
      Some (if st.now > fe then Interval.make ~lo:fe ~hi:(fe + 1) else Interval.make_open fe)

  let on_write st loc ~addr ~size =
    (* Under eADR each store is its own ordering point. *)
    if st.model = Model.Eadr then st.now <- st.now + 1;
    let subranges = effective_subranges ~excluded:st.excluded ~addr ~size in
    List.iter
      (fun (lo, hi) ->
        if st.tx_depth > 0 && st.scope_active && not (Interval_tree.covered st.log_tree ~lo ~hi) then
          diag st Report.Missing_log loc (fun () ->
              Format.asprintf
                "persistent object [0x%x,+%d) modified inside a transaction without a backup \
                 log entry"
                lo (hi - lo));
        if st.scope_active then st.scope_writes <- Interval_map.set st.scope_writes ~lo ~hi loc)
      subranges;
    (* The store hits memory whether or not checking is excluded, so the
       shadow must cover the whole range: exclusion suppresses diagnostics
       (checkers and writeback rules filter through [effective_subranges]),
       not history. Refreshing only the effective subranges would let a
       stale pre-exclusion status describe bytes a hole write has since
       overwritten — visible as wrong persist claims once re-included. *)
    S.set st.shadow ~lo:addr ~hi:(addr + size)
      { write_epoch = st.now; write_loc = loc; flush = None }

  let on_clwb st loc ~addr ~size =
    let unnecessary = ref false and duplicate = ref false in
    let subranges = effective_subranges ~excluded:st.excluded ~addr ~size in
    List.iter
      (fun (lo, hi) ->
        S.update_range st.shadow ~lo ~hi ~f:(function
          | None ->
            (* Writing back a location that was never modified. *)
            unnecessary := true;
            None
          | Some s -> begin
            match s.flush with
            | None -> Some { s with flush = Some (st.now, loc) }
            | Some _ ->
              (* A writeback is already pending or complete for this
                 write: the second clwb is redundant. *)
              duplicate := true;
              Some s
          end))
      subranges;
    if !unnecessary then
      diag st Report.Unnecessary_writeback loc (fun () ->
          Format.asprintf "writeback of unmodified data at [0x%x,+%d)" addr size);
    if !duplicate then
      diag st Report.Duplicate_writeback loc (fun () ->
          Format.asprintf "persistent object [0x%x,+%d) written back more than once" addr size)

  let statuses_in st ~addr ~size =
    List.concat_map
      (fun (lo, hi) -> S.overlapping st.shadow ~lo ~hi)
      (effective_subranges ~excluded:st.excluded ~addr ~size)

  let on_is_persist st loc ~addr ~size =
    let offending =
      List.find_opt (fun (_, _, s) -> not (persisted_by_now st s)) (statuses_in st ~addr ~size)
    in
    match offending with
    | None -> ()
    | Some (lo, hi, s) ->
      let iv = persist_interval st s and now = st.now and wloc = s.write_loc in
      diag st Report.Not_persisted loc (fun () ->
          Format.asprintf
            "isPersist(0x%x,%d): write at %s to [0x%x,+%d) has persist interval %a at \
             timestamp %d"
            addr size (Loc.to_string wloc) lo (hi - lo) Interval.pp iv now)

  let on_is_ordered_before st loc ~a_addr ~a_size ~b_addr ~b_size =
    let a_statuses = statuses_in st ~addr:a_addr ~size:a_size in
    let b_statuses = statuses_in st ~addr:b_addr ~size:b_size in
    let violation =
      List.find_map
        (fun (alo, ahi, sa) ->
          let ia = persist_interval st sa in
          List.find_map
            (fun (blo, bhi, sb) ->
              let ib = persist_interval st sb in
              let ordered =
                match st.model with
                | Model.X86 | Model.Eadr | Model.Cxl -> Interval.ordered_before ia ib
                | Model.Hops -> Interval.starts_before ia ib
              in
              if ordered then None else Some ((alo, ahi, sa, ia), (blo, bhi, sb, ib)))
            b_statuses)
        a_statuses
    in
    match violation with
    | None -> ()
    | Some ((alo, _, sa, ia), (blo, _, sb, ib)) ->
      let aloc = sa.write_loc and bloc = sb.write_loc in
      diag st Report.Not_ordered loc (fun () ->
          Format.asprintf
            "isOrderedBefore: write at %s to 0x%x %a may not persist before write at %s to \
             0x%x %a"
            (Loc.to_string aloc) alo Interval.pp ia (Loc.to_string bloc) blo Interval.pp ib)

  let on_tx_add st loc ~addr ~size =
    let lo = addr and hi = addr + size in
    if (not (Interval_tree.is_empty st.log_tree)) && Interval_tree.covered st.log_tree ~lo ~hi
    then
      diag st Report.Duplicate_log loc (fun () ->
          Format.asprintf "persistent object [0x%x,+%d) logged more than once" addr size);
    st.log_tree <- Interval_tree.add st.log_tree ~lo ~hi loc

  let on_tx_checker_end st loc =
    if st.tx_depth > 0 then
      diag st Report.Incomplete_tx loc (fun () -> "transaction still open at TX_CHECKER_END");
    Interval_map.iter
      (fun lo hi wloc ->
        List.iter
          (fun (slo, shi) ->
            List.iter
              (fun (_, _, s) ->
                if not (persisted_by_now st s) then begin
                  let iv = persist_interval st s and now = st.now in
                  diag st Report.Incomplete_tx loc (fun () ->
                      Format.asprintf
                        "transaction update at %s to [0x%x,+%d) not persisted when the \
                         transaction checker scope ends (persist interval %a, timestamp %d)"
                        (Loc.to_string wloc) slo (shi - slo) Interval.pp iv now)
                end)
              (S.overlapping st.shadow ~lo:slo ~hi:shi))
          (effective_subranges ~excluded:st.excluded ~addr:lo ~size:(hi - lo)))
      st.scope_writes;
    st.scope_active <- false;
    st.scope_writes <- Interval_map.empty

  let invalid_op st loc op =
    diag st Report.Invalid_op loc (fun () ->
        Format.asprintf "operation %a is not part of the %s persistency model" Model.pp_op op
          (Model.kind_name st.model))

  let eadr_clwb st loc ~addr ~size =
    (* The persistence domain includes the caches: any writeback is
       pure overhead on this platform. *)
    diag st Report.Unnecessary_writeback loc (fun () ->
        Format.asprintf "writeback of [0x%x,+%d) is redundant under eADR (caches are \
                         persistent)" addr size)

  let on_op st loc op =
    st.ops <- st.ops + 1;
    if not (Model.valid_op st.model op) then invalid_op st loc op
    else begin
      match op with
      | Model.Write { addr; size } -> on_write st loc ~addr ~size
      | Model.Clwb { addr; size } ->
        if st.model = Model.Eadr then eadr_clwb st loc ~addr ~size
        else on_clwb st loc ~addr ~size
      | Model.Sfence -> if st.model <> Model.Eadr then st.now <- st.now + 1
      | Model.Ofence -> st.now <- st.now + 1
      | Model.Dfence | Model.Gpf ->
        st.now <- st.now + 1;
        Vec.push st.dfence_times st.now
    end

  let on_entry st (e : Event.t) =
    st.entries <- st.entries + 1;
    let loc = e.loc in
    match e.kind with
    | Event.Op op -> on_op st loc op
    | Event.Checker c -> begin
      st.checkers <- st.checkers + 1;
      match c with
      | Event.Is_persist { addr; size } -> on_is_persist st loc ~addr ~size
      | Event.Is_ordered_before { a_addr; a_size; b_addr; b_size } ->
        on_is_ordered_before st loc ~a_addr ~a_size ~b_addr ~b_size
    end
    | Event.Tx tx -> begin
      match tx with
      | Event.Tx_begin ->
        if st.tx_depth = 0 then st.log_tree <- Interval_tree.empty;
        st.tx_depth <- st.tx_depth + 1
      | Event.Tx_add { addr; size } -> on_tx_add st loc ~addr ~size
      | Event.Tx_commit | Event.Tx_abort ->
        st.tx_depth <- max 0 (st.tx_depth - 1);
        if st.tx_depth = 0 then st.log_tree <- Interval_tree.empty
      | Event.Tx_checker_start ->
        st.scope_active <- true;
        st.scope_writes <- Interval_map.empty
      | Event.Tx_checker_end -> on_tx_checker_end st loc
    end
    | Event.Control c -> begin
      match c with
      | Event.Exclude { addr; size } ->
        st.excluded <- Interval_map.set st.excluded ~lo:addr ~hi:(addr + size) ()
      | Event.Include { addr; size } ->
        st.excluded <- Interval_map.clear st.excluded ~lo:addr ~hi:(addr + size)
      | Event.Lint_off _ | Event.Lint_on _ ->
        (* Static-lint suppression scopes mean nothing to the dynamic engine. *)
        ()
    end

  (* Packed dispatch: same transitions as [on_entry], decoded straight
     from the cursor view.  Op validity mirrors [Model.valid_op] without
     building an op value; the boxed value is only constructed on the
     (diagnosed, rare) invalid path. *)
  let on_view st (v : Packed.view) =
    st.entries <- st.entries + 1;
    let loc = v.Packed.loc in
    match v.Packed.tag with
    | Packed.T_write ->
      st.ops <- st.ops + 1;
      (* Write is valid under every model. *)
      on_write st loc ~addr:v.Packed.a ~size:v.Packed.b
    | Packed.T_clwb ->
      st.ops <- st.ops + 1;
      if st.model = Model.Hops || st.model = Model.Cxl then
        invalid_op st loc (Model.Clwb { addr = v.Packed.a; size = v.Packed.b })
      else if st.model = Model.Eadr then eadr_clwb st loc ~addr:v.Packed.a ~size:v.Packed.b
      else on_clwb st loc ~addr:v.Packed.a ~size:v.Packed.b
    | Packed.T_sfence ->
      st.ops <- st.ops + 1;
      if st.model = Model.Hops || st.model = Model.Cxl then invalid_op st loc Model.Sfence
      else if st.model <> Model.Eadr then st.now <- st.now + 1
    | Packed.T_ofence ->
      st.ops <- st.ops + 1;
      if st.model <> Model.Hops then invalid_op st loc Model.Ofence else st.now <- st.now + 1
    | Packed.T_dfence ->
      st.ops <- st.ops + 1;
      if st.model <> Model.Hops then invalid_op st loc Model.Dfence
      else begin
        st.now <- st.now + 1;
        Vec.push st.dfence_times st.now
      end
    | Packed.T_gpf ->
      st.ops <- st.ops + 1;
      if st.model <> Model.Cxl then invalid_op st loc Model.Gpf
      else begin
        st.now <- st.now + 1;
        Vec.push st.dfence_times st.now
      end
    | Packed.T_is_persist ->
      st.checkers <- st.checkers + 1;
      on_is_persist st loc ~addr:v.Packed.a ~size:v.Packed.b
    | Packed.T_is_ordered ->
      st.checkers <- st.checkers + 1;
      on_is_ordered_before st loc ~a_addr:v.Packed.a ~a_size:v.Packed.b ~b_addr:v.Packed.c
        ~b_size:v.Packed.d
    | Packed.T_tx_begin ->
      if st.tx_depth = 0 then st.log_tree <- Interval_tree.empty;
      st.tx_depth <- st.tx_depth + 1
    | Packed.T_tx_add -> on_tx_add st loc ~addr:v.Packed.a ~size:v.Packed.b
    | Packed.T_tx_commit | Packed.T_tx_abort ->
      st.tx_depth <- max 0 (st.tx_depth - 1);
      if st.tx_depth = 0 then st.log_tree <- Interval_tree.empty
    | Packed.T_tx_checker_start ->
      st.scope_active <- true;
      st.scope_writes <- Interval_map.empty
    | Packed.T_tx_checker_end -> on_tx_checker_end st loc
    | Packed.T_exclude ->
      st.excluded <-
        Interval_map.set st.excluded ~lo:v.Packed.a ~hi:(v.Packed.a + v.Packed.b) ()
    | Packed.T_include ->
      st.excluded <- Interval_map.clear st.excluded ~lo:v.Packed.a ~hi:(v.Packed.a + v.Packed.b)
    | Packed.T_lint_off | Packed.T_lint_on -> ()

  let report_of st =
    {
      Report.diagnostics =
        List.map
          (fun p -> { Report.kind = p.kind; loc = p.loc; message = p.render () })
          (Vec.to_list st.diags);
      entries = st.entries;
      ops = st.ops;
      checkers = st.checkers;
    }

  let note_obs obs st =
    if Pmtest_obs.Obs.enabled obs then
      Pmtest_obs.Obs.engine_counts obs ~entries:st.entries ~ops:st.ops ~checkers:st.checkers
        ~diags:(Vec.length st.diags)

  let ranges_of st =
    List.rev
      (S.fold
         (fun lo hi s acc ->
           { lo; hi; persist = persist_interval st s; flush = flush_interval st s } :: acc)
         st.shadow [])
end

module Boxed = Core (Imap_shadow)
module Flat = Core (Pmap_shadow)

let check ?(obs = Pmtest_obs.Obs.disabled) ?(model = Model.X86) entries =
  let st = Boxed.create_state model in
  Array.iter (Boxed.on_entry st) entries;
  Boxed.note_obs obs st;
  Boxed.report_of st

let check_packed ?(obs = Pmtest_obs.Obs.disabled) ?(model = Model.X86) ?(prelude = [||]) packed
    =
  let st = Flat.create_state model in
  (* The session's exclusion preamble arrives boxed (it is rebuilt from
     the live scope, never traced); replaying it through [on_entry]
     keeps the report identical to the boxed path, which prepends the
     same events to the section array. *)
  Array.iter (Flat.on_entry st) prelude;
  let v = Packed.make_view () in
  let n = Packed.byte_length packed in
  let pos = ref 0 in
  while !pos < n do
    pos := Packed.read packed ~pos:!pos v;
    Flat.on_view st v
  done;
  Flat.note_obs obs st;
  Flat.report_of st

let check_with_snapshot ?(model = Model.X86) entries =
  let st = Boxed.create_state model in
  Array.iter (Boxed.on_entry st) entries;
  (Boxed.report_of st, { timestamp = st.Boxed.now; ranges = Boxed.ranges_of st })

let shadow_cardinality_of snap = List.length snap.ranges
