open Pmtest_util
open Pmtest_itree
open Pmtest_model
open Pmtest_trace

(* Local status of a modified byte range (paper §4.4). The persist and
   flush intervals are not stored closed/open — they are derived lazily
   from these epochs and the current timestamp, so fences cost O(1)
   instead of a shadow-memory sweep. *)
type status = {
  write_epoch : int;
  write_loc : Loc.t;
  flush : (int * Loc.t) option;  (* first clwb since the last write *)
}

type state = {
  model : Model.kind;
  mutable now : int;
  mutable shadow : status Interval_map.t;
  mutable excluded : unit Interval_map.t;
  dfence_times : int Vec.t;  (* HOPS: timestamps produced by dfences *)
  mutable log_tree : Loc.t Interval_tree.t;
  mutable tx_depth : int;
  mutable scope_active : bool;
  mutable scope_writes : Loc.t Interval_map.t;
  diags : Report.diagnostic Vec.t;
  mutable entries : int;
  mutable ops : int;
  mutable checkers : int;
}

let create_state model =
  {
    model;
    now = 0;
    shadow = Interval_map.empty;
    excluded = Interval_map.empty;
    dfence_times = Vec.create ();
    log_tree = Interval_tree.empty;
    tx_depth = 0;
    scope_active = false;
    scope_writes = Interval_map.empty;
    diags = Vec.create ();
    entries = 0;
    ops = 0;
    checkers = 0;
  }

let diag st kind loc fmt =
  Format.kasprintf (fun message -> Vec.push st.diags { Report.kind; loc; message }) fmt

(* Smallest recorded dfence timestamp strictly greater than [epoch]. *)
let first_dfence_after times epoch =
  let n = Vec.length times in
  let rec search lo hi =
    if lo >= hi then if lo < n then Some (Vec.get times lo) else None
    else
      let mid = (lo + hi) / 2 in
      if Vec.get times mid > epoch then search lo mid else search (mid + 1) hi
  in
  search 0 n

let persist_interval st s =
  match st.model with
  | Model.X86 -> begin
    match s.flush with
    | Some (fe, _) when st.now > fe -> Interval.make ~lo:s.write_epoch ~hi:(fe + 1)
    | Some _ | None -> Interval.make_open s.write_epoch
  end
  | Model.Hops -> begin
    match first_dfence_after st.dfence_times s.write_epoch with
    | Some d -> Interval.make ~lo:s.write_epoch ~hi:d
    | None -> Interval.make_open s.write_epoch
  end
  | Model.Eadr ->
    (* The cache is persistent: a store is durable the instant it executes
       and stores persist in program order, so every write gets its own
       unit-width, already-closed interval (epochs advance per write). *)
    Interval.make ~lo:(s.write_epoch - 1) ~hi:s.write_epoch

let flush_interval st s =
  match s.flush with
  | None -> None
  | Some (fe, _) ->
    Some (if st.now > fe then Interval.make ~lo:fe ~hi:(fe + 1) else Interval.make_open fe)

let effective_subranges ~excluded ~addr ~size =
  let lo = addr and hi = addr + size in
  let holes = Interval_map.overlapping excluded ~lo ~hi in
  let rec walk cursor = function
    | [] -> if cursor < hi then [ (cursor, hi) ] else []
    | (k, h, ()) :: rest ->
      let gap = if k > cursor then [ (cursor, k) ] else [] in
      gap @ walk (max cursor h) rest
  in
  walk lo holes

let on_write st loc ~addr ~size =
  (* Under eADR each store is its own ordering point. *)
  if st.model = Model.Eadr then st.now <- st.now + 1;
  let subranges = effective_subranges ~excluded:st.excluded ~addr ~size in
  List.iter
    (fun (lo, hi) ->
      if st.tx_depth > 0 && st.scope_active && not (Interval_tree.covered st.log_tree ~lo ~hi)
      then
        diag st Report.Missing_log loc
          "persistent object [0x%x,+%d) modified inside a transaction without a backup log entry"
          lo (hi - lo);
      if st.scope_active then st.scope_writes <- Interval_map.set st.scope_writes ~lo ~hi loc)
    subranges;
  (* The store hits memory whether or not checking is excluded, so the
     shadow must cover the whole range: exclusion suppresses diagnostics
     (checkers and writeback rules filter through [effective_subranges]),
     not history. Refreshing only the effective subranges would let a
     stale pre-exclusion status describe bytes a hole write has since
     overwritten — visible as wrong persist claims once re-included. *)
  st.shadow <-
    Interval_map.set st.shadow ~lo:addr ~hi:(addr + size)
      { write_epoch = st.now; write_loc = loc; flush = None }

let on_clwb st loc ~addr ~size =
  let unnecessary = ref false and duplicate = ref false in
  let subranges = effective_subranges ~excluded:st.excluded ~addr ~size in
  List.iter
    (fun (lo, hi) ->
      st.shadow <-
        Interval_map.update_range st.shadow ~lo ~hi ~f:(function
          | None ->
            (* Writing back a location that was never modified. *)
            unnecessary := true;
            None
          | Some s -> begin
            match s.flush with
            | None -> Some { s with flush = Some (st.now, loc) }
            | Some _ ->
              (* A writeback is already pending or complete for this
                 write: the second clwb is redundant. *)
              duplicate := true;
              Some s
          end))
    subranges;
  if !unnecessary then
    diag st Report.Unnecessary_writeback loc "writeback of unmodified data at [0x%x,+%d)" addr
      size;
  if !duplicate then
    diag st Report.Duplicate_writeback loc
      "persistent object [0x%x,+%d) written back more than once" addr size

let statuses_in st ~addr ~size =
  List.concat_map
    (fun (lo, hi) -> Interval_map.overlapping st.shadow ~lo ~hi)
    (effective_subranges ~excluded:st.excluded ~addr ~size)

let on_is_persist st loc ~addr ~size =
  let offending =
    List.find_opt
      (fun (_, _, s) -> not (Interval.ends_by (persist_interval st s) st.now))
      (statuses_in st ~addr ~size)
  in
  match offending with
  | None -> ()
  | Some (lo, hi, s) ->
    diag st Report.Not_persisted loc
      "isPersist(0x%x,%d): write at %s to [0x%x,+%d) has persist interval %a at timestamp %d"
      addr size (Loc.to_string s.write_loc) lo (hi - lo) Interval.pp (persist_interval st s)
      st.now

let on_is_ordered_before st loc ~a_addr ~a_size ~b_addr ~b_size =
  let a_statuses = statuses_in st ~addr:a_addr ~size:a_size in
  let b_statuses = statuses_in st ~addr:b_addr ~size:b_size in
  let violation =
    List.find_map
      (fun (alo, ahi, sa) ->
        let ia = persist_interval st sa in
        List.find_map
          (fun (blo, bhi, sb) ->
            let ib = persist_interval st sb in
            let ordered =
              match st.model with
              | Model.X86 | Model.Eadr -> Interval.ordered_before ia ib
              | Model.Hops -> Interval.starts_before ia ib
            in
            if ordered then None else Some ((alo, ahi, sa, ia), (blo, bhi, sb, ib)))
          b_statuses)
      a_statuses
  in
  match violation with
  | None -> ()
  | Some ((alo, _, sa, ia), (blo, _, sb, ib)) ->
    diag st Report.Not_ordered loc
      "isOrderedBefore: write at %s to 0x%x %a may not persist before write at %s to 0x%x %a"
      (Loc.to_string sa.write_loc) alo Interval.pp ia (Loc.to_string sb.write_loc) blo
      Interval.pp ib

let on_tx_add st loc ~addr ~size =
  let lo = addr and hi = addr + size in
  if (not (Interval_tree.is_empty st.log_tree)) && Interval_tree.covered st.log_tree ~lo ~hi
  then
    diag st Report.Duplicate_log loc "persistent object [0x%x,+%d) logged more than once" addr
      size;
  st.log_tree <- Interval_tree.add st.log_tree ~lo ~hi loc

let on_tx_checker_end st loc =
  if st.tx_depth > 0 then
    diag st Report.Incomplete_tx loc "transaction still open at TX_CHECKER_END";
  Interval_map.iter
    (fun lo hi wloc ->
      List.iter
        (fun (slo, shi) ->
          List.iter
            (fun (_, _, s) ->
              if not (Interval.ends_by (persist_interval st s) st.now) then
                diag st Report.Incomplete_tx loc
                  "transaction update at %s to [0x%x,+%d) not persisted when the transaction \
                   checker scope ends (persist interval %a, timestamp %d)"
                  (Loc.to_string wloc) slo (shi - slo) Interval.pp (persist_interval st s)
                  st.now)
            (Interval_map.overlapping st.shadow ~lo:slo ~hi:shi))
        (effective_subranges ~excluded:st.excluded ~addr:lo ~size:(hi - lo)))
    st.scope_writes;
  st.scope_active <- false;
  st.scope_writes <- Interval_map.empty

let on_op st loc op =
  st.ops <- st.ops + 1;
  if not (Model.valid_op st.model op) then
    diag st Report.Invalid_op loc "operation %a is not part of the %s persistency model"
      Model.pp_op op (Model.kind_name st.model)
  else begin
    match op with
    | Model.Write { addr; size } -> on_write st loc ~addr ~size
    | Model.Clwb { addr; size } ->
      if st.model = Model.Eadr then
        (* The persistence domain includes the caches: any writeback is
           pure overhead on this platform. *)
        diag st Report.Unnecessary_writeback loc
          "writeback of [0x%x,+%d) is redundant under eADR (caches are persistent)" addr size
      else on_clwb st loc ~addr ~size
    | Model.Sfence -> if st.model <> Model.Eadr then st.now <- st.now + 1
    | Model.Ofence -> st.now <- st.now + 1
    | Model.Dfence ->
      st.now <- st.now + 1;
      Vec.push st.dfence_times st.now
  end

let on_entry st (e : Event.t) =
  st.entries <- st.entries + 1;
  let loc = e.loc in
  match e.kind with
  | Event.Op op -> on_op st loc op
  | Event.Checker c -> begin
    st.checkers <- st.checkers + 1;
    match c with
    | Event.Is_persist { addr; size } -> on_is_persist st loc ~addr ~size
    | Event.Is_ordered_before { a_addr; a_size; b_addr; b_size } ->
      on_is_ordered_before st loc ~a_addr ~a_size ~b_addr ~b_size
  end
  | Event.Tx tx -> begin
    match tx with
    | Event.Tx_begin ->
      if st.tx_depth = 0 then st.log_tree <- Interval_tree.empty;
      st.tx_depth <- st.tx_depth + 1
    | Event.Tx_add { addr; size } -> on_tx_add st loc ~addr ~size
    | Event.Tx_commit | Event.Tx_abort ->
      st.tx_depth <- max 0 (st.tx_depth - 1);
      if st.tx_depth = 0 then st.log_tree <- Interval_tree.empty
    | Event.Tx_checker_start ->
      st.scope_active <- true;
      st.scope_writes <- Interval_map.empty
    | Event.Tx_checker_end -> on_tx_checker_end st loc
  end
  | Event.Control c -> begin
    match c with
    | Event.Exclude { addr; size } ->
      st.excluded <- Interval_map.set st.excluded ~lo:addr ~hi:(addr + size) ()
    | Event.Include { addr; size } ->
      st.excluded <- Interval_map.clear st.excluded ~lo:addr ~hi:(addr + size)
    | Event.Lint_off _ | Event.Lint_on _ ->
      (* Static-lint suppression scopes mean nothing to the dynamic engine. *)
      ()
  end

let report_of st =
  {
    Report.diagnostics = Vec.to_list st.diags;
    entries = st.entries;
    ops = st.ops;
    checkers = st.checkers;
  }

let check ?(obs = Pmtest_obs.Obs.disabled) ?(model = Model.X86) entries =
  let st = create_state model in
  Array.iter (on_entry st) entries;
  if Pmtest_obs.Obs.enabled obs then
    Pmtest_obs.Obs.engine_counts obs ~entries:st.entries ~ops:st.ops ~checkers:st.checkers
      ~diags:(Vec.length st.diags);
  report_of st

type range_status = { lo : int; hi : int; persist : Interval.t; flush : Interval.t option }
type snapshot = { timestamp : int; ranges : range_status list }

let check_with_snapshot ?(model = Model.X86) entries =
  let st = create_state model in
  Array.iter (on_entry st) entries;
  let ranges =
    List.rev
      (Interval_map.fold
         (fun lo hi s acc ->
           { lo; hi; persist = persist_interval st s; flush = flush_interval st s } :: acc)
         st.shadow [])
  in
  (report_of st, { timestamp = st.now; ranges })

let shadow_cardinality_of snap = List.length snap.ranges
