open Pmtest_util

type severity = Warn | Fail

type kind =
  | Not_persisted
  | Not_ordered
  | Unnecessary_writeback
  | Duplicate_writeback
  | Missing_log
  | Duplicate_log
  | Incomplete_tx
  | Invalid_op
  | Lint_unflushed_write
  | Lint_unfenced_flush
  | Lint_redundant_fence
  | Lint_write_after_flush
  | Lint_unmatched_exclude

let kind_severity = function
  | Unnecessary_writeback | Duplicate_writeback | Duplicate_log -> Warn
  | Lint_redundant_fence | Lint_write_after_flush | Lint_unmatched_exclude -> Warn
  | Not_persisted | Not_ordered | Missing_log | Incomplete_tx | Invalid_op -> Fail
  | Lint_unflushed_write | Lint_unfenced_flush -> Fail

type diagnostic = { kind : kind; loc : Loc.t; message : string }
type t = { diagnostics : diagnostic list; entries : int; ops : int; checkers : int }

let empty = { diagnostics = []; entries = 0; ops = 0; checkers = 0 }

let merge a b =
  {
    diagnostics = a.diagnostics @ b.diagnostics;
    entries = a.entries + b.entries;
    ops = a.ops + b.ops;
    checkers = a.checkers + b.checkers;
  }

let is_clean t = t.diagnostics = []
let has_fail t = List.exists (fun d -> kind_severity d.kind = Fail) t.diagnostics
let has_warn t = List.exists (fun d -> kind_severity d.kind = Warn) t.diagnostics
let fails t = List.filter (fun d -> kind_severity d.kind = Fail) t.diagnostics
let warns t = List.filter (fun d -> kind_severity d.kind = Warn) t.diagnostics
let count kind t = List.length (List.filter (fun d -> d.kind = kind) t.diagnostics)
let find kind t = List.find_opt (fun d -> d.kind = kind) t.diagnostics

let summarize t =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun d ->
      let key = (d.kind, d.loc) in
      match Hashtbl.find_opt tbl key with
      | Some (msg, n) -> Hashtbl.replace tbl key (msg, n + 1)
      | None ->
        Hashtbl.replace tbl key (d.message, 1);
        order := key :: !order)
    t.diagnostics;
  List.stable_sort
    (fun (_, _, _, a) (_, _, _, b) -> Int.compare b a)
    (List.rev_map
       (fun (kind, loc) ->
         let msg, n = Hashtbl.find tbl (kind, loc) in
         (kind, loc, msg, n))
       !order)

let severity_string = function Warn -> "WARN" | Fail -> "FAIL"

let kind_string = function
  | Not_persisted -> "not-persisted"
  | Not_ordered -> "not-ordered"
  | Unnecessary_writeback -> "unnecessary-writeback"
  | Duplicate_writeback -> "duplicate-writeback"
  | Missing_log -> "missing-log"
  | Duplicate_log -> "duplicate-log"
  | Incomplete_tx -> "incomplete-transaction"
  | Invalid_op -> "invalid-operation"
  | Lint_unflushed_write -> "write-never-flushed"
  | Lint_unfenced_flush -> "flush-without-fence"
  | Lint_redundant_fence -> "redundant-fence"
  | Lint_write_after_flush -> "write-after-flush"
  | Lint_unmatched_exclude -> "unmatched-exclude"

let pp_diagnostic ppf d =
  Format.fprintf ppf "@[<h>%s [%s] %s @@ %a@]"
    (severity_string (kind_severity d.kind))
    (kind_string d.kind) d.message Loc.pp d.loc

let pp ppf t =
  if is_clean t then
    Format.fprintf ppf "clean (%d entries, %d PM ops, %d checkers)" t.entries t.ops t.checkers
  else begin
    Format.fprintf ppf "@[<v>%d diagnostic(s) over %d entries:" (List.length t.diagnostics)
      t.entries;
    List.iter (fun d -> Format.fprintf ppf "@,  %a" pp_diagnostic d) t.diagnostics;
    Format.fprintf ppf "@]"
  end

let pp_summary ppf t =
  if is_clean t then pp ppf t
  else begin
    let groups = summarize t in
    Format.fprintf ppf "@[<v>%d diagnostic(s) at %d site(s) over %d entries:"
      (List.length t.diagnostics) (List.length groups) t.entries;
    List.iter
      (fun (kind, loc, msg, n) ->
        Format.fprintf ppf "@,  %s [%s] (x%d) %s @@ %a"
          (severity_string (kind_severity kind))
          (kind_string kind) n msg Pmtest_util.Loc.pp loc)
      groups;
    Format.fprintf ppf "@]"
  end

let to_string t = Format.asprintf "%a" pp t
