(** The PMTest programmer interface (paper Table 2).

    A {e session} owns per-thread trace builders, the variable registry and
    the worker runtime. The function names map onto the paper's C API:

    {v
    PMTest_INIT          init          PMTest_EXCLUDE       exclude
    PMTest_EXIT          finish        PMTest_INCLUDE       include_
    PMTest_THREAD_INIT   thread_init   PMTest_REG_VAR       reg_var
    PMTest_START         start         PMTest_UNREG_VAR     unreg_var
    PMTest_END           stop          PMTest_GET_VAR       get_var
    PMTest_SEND_TRACE    send_trace    isPersist            is_persist
    PMTest_GET_RESULT    get_result    isOrderedBefore      is_ordered_before
    TX_CHECKER_START     tx_checker_start
    TX_CHECKER_END       tx_checker_end
    v}

    Typical use mirrors Fig. 6: create a session, hand {!sink} to the
    instrumented program (or call the emission functions directly), place
    checkers, send completed sections with {!send_trace}, and read the
    verdict with {!get_result} or {!finish}. *)

open Pmtest_util
open Pmtest_model
open Pmtest_trace

type t

val init : ?model:Model.kind -> ?workers:int -> ?obs:Pmtest_obs.Obs.t -> ?packed:bool -> unit -> t
(** Create a session. [workers] is the size of the checking pool
    (default 1; [0] checks synchronously inside [send_trace]). [obs]
    (default {!Pmtest_obs.Obs.disabled}) observes the whole pipeline:
    entries traced, sections sent/dropped, and — through the runtime —
    dispatch/check/merge spans and worker utilization.

    [packed] (default false) selects the flat-trace fast path: builders
    encode into reusable {!Pmtest_trace.Packed} arenas and sections are
    handed to the runtime without materialising an [Event.t array]. The
    verdict is identical either way; sections that carry an exclusion
    preamble or feed {!on_section} observers fall back to the boxed
    shape transparently. *)

val obs : t -> Pmtest_obs.Obs.t

val packed : t -> bool
(** Whether this session uses the packed fast path. *)

val finish : t -> Report.t
(** Send any unfinished sections, drain the workers, shut the runtime
    down and return the final report. *)

val model : t -> Model.kind
val worker_count : t -> int

(** {1 Threads and tracking scope} *)

val thread_init : t -> thread:int -> unit
(** Register a program thread; a builder is created for it. Thread 0 is
    pre-registered. *)

val start : t -> unit
(** Enable tracking ([PMTest_START]); tracking starts enabled. *)

val stop : t -> unit
(** Disable tracking ([PMTest_END]); entries emitted while disabled are
    dropped. *)

val tracking : t -> bool

val sink : ?thread:int -> t -> Sink.t
(** The session viewed as an instrumentation sink for the given thread.
    With observability off this is the thread's raw builder sink. *)

val emit : ?thread:int -> ?loc:Loc.t -> t -> Event.kind -> unit
(** Record one arbitrary trace entry — how replay tools (e.g.
    [pmtest-cli stat] on a recorded trace) feed a live session. *)

(** {1 Persistent objects} *)

val exclude : ?thread:int -> ?loc:Loc.t -> t -> addr:int -> size:int -> unit
val include_ : ?thread:int -> ?loc:Loc.t -> t -> addr:int -> size:int -> unit

val lint_off : ?thread:int -> ?loc:Loc.t -> ?rule:string -> t -> unit
(** Emit an inline suppression marker for the named static lint rule
    (default ["*"], every rule). The dynamic engine ignores it. *)

val lint_on : ?thread:int -> ?loc:Loc.t -> ?rule:string -> t -> unit
(** Undo one matching {!lint_off}. *)

val reg_var : t -> string -> addr:int -> size:int -> unit
(** Register a named persistent variable so its address can be recovered
    outside the scope where it was declared. *)

val unreg_var : t -> string -> unit
val get_var : t -> string -> (int * int) option

(** {1 Communication} *)

val send_trace : ?thread:int -> t -> unit
(** Hand the thread's current section to the checking pool and start a
    fresh one. *)

val get_result : t -> Report.t
(** Block until everything sent so far has been checked. Does {e not}
    send the current sections — call {!send_trace} or {!finish} first. *)

val on_section : t -> (Event.t array -> unit) -> unit
(** Register an observer called (synchronously, on the sending thread)
    with every section handed to the runtime, including the exclusion
    preamble. Used by trace recorders and the static lint. *)

val section_length : ?thread:int -> t -> int

(** {1 Checkers} *)

val is_persist : ?thread:int -> ?loc:Loc.t -> t -> addr:int -> size:int -> unit
val is_persist_var : ?thread:int -> ?loc:Loc.t -> t -> string -> unit
(** Checker on a variable registered with {!reg_var}; raises [Not_found]
    if the name is unknown. *)

val is_ordered_before :
  ?thread:int -> ?loc:Loc.t -> t -> a_addr:int -> a_size:int -> b_addr:int -> b_size:int -> unit

val tx_checker_start : ?thread:int -> ?loc:Loc.t -> t -> unit
val tx_checker_end : ?thread:int -> ?loc:Loc.t -> t -> unit
