(** Diagnostics produced by the checking engine.

    The engine reports [FAIL] for crash-consistency bugs and [WARN] for
    performance bugs, each with the source location of the offending
    checker or operation (paper §4.1). *)

open Pmtest_util

type severity = Warn | Fail

type kind =
  | Not_persisted  (** [isPersist] failed: the range may not be durable. *)
  | Not_ordered  (** [isOrderedBefore] failed: persist intervals overlap. *)
  | Unnecessary_writeback  (** [clwb] of a range with no pending write. *)
  | Duplicate_writeback  (** Second [clwb] of the same pending range. *)
  | Missing_log  (** In-transaction write without a prior [TX_ADD] backup. *)
  | Duplicate_log  (** [TX_ADD] of an already-logged range. *)
  | Incomplete_tx
      (** Transaction updates not durable at [TX_CHECKER_END], or the
          transaction never terminated. *)
  | Invalid_op  (** Operation outside the persistency model's ISA. *)
  | Lint_unflushed_write
      (** Static lint: a store still dirty (no writeback) at end of trace. *)
  | Lint_unfenced_flush
      (** Static lint: a writeback whose fence never arrives. *)
  | Lint_redundant_fence
      (** Static lint: a fence with no writeback pending since the last one. *)
  | Lint_write_after_flush
      (** Static lint: a store to a range with a flushed-but-unfenced
          writeback pending — the torn-update hazard. *)
  | Lint_unmatched_exclude
      (** Static lint: an [Exclude] never re-[Include]d by end of trace. *)

val kind_severity : kind -> severity
(** Performance bugs ({!Unnecessary_writeback}, {!Duplicate_writeback},
    {!Duplicate_log}) and the advisory lint kinds warn; everything else
    fails. *)

type diagnostic = { kind : kind; loc : Loc.t; message : string }

type t = {
  diagnostics : diagnostic list;  (** In trace order. *)
  entries : int;  (** Trace entries examined. *)
  ops : int;  (** PM operations among them. *)
  checkers : int;  (** Checker entries among them. *)
}

val empty : t
val merge : t -> t -> t

val is_clean : t -> bool
val has_fail : t -> bool
val has_warn : t -> bool
val fails : t -> diagnostic list
val warns : t -> diagnostic list
val count : kind -> t -> int
val find : kind -> t -> diagnostic option

val summarize : t -> (kind * Pmtest_util.Loc.t * string * int) list
(** Diagnostics grouped by (kind, location): representative message and
    occurrence count, ordered by decreasing count — how a workload-scale
    report stays readable when one buggy line fires thousands of times. *)

val pp_summary : Format.formatter -> t -> unit
(** Like {!pp} but prints the grouped summary. *)

val severity_string : severity -> string
val kind_string : kind -> string
val pp_diagnostic : Format.formatter -> diagnostic -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string
