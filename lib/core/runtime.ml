open Pmtest_model
open Pmtest_trace
module Obs = Pmtest_obs.Obs

(* A section travels either boxed (the historical Event.t array) or as a
   packed arena that the worker checks with the cursor engine and then
   recycles to the freelist.  A packed section may carry a small boxed
   prelude — the session's exclusion preamble — replayed before the
   arena so active scopes never force the decode-to-boxed fallback. *)
type section = Boxed of Event.t array | Packed of { p : Packed.t; prelude : Event.t array }

(* [model] overrides the runtime's default for this section (the daemon
   serves sessions with different persistency models off one pool);
   [k], when present, receives the section's report — in dispatch order,
   from inside the merge loop — instead of the report entering the
   global aggregate.  Per-session aggregation is built on it. *)
type task = { payload : section; model : Model.kind; k : (Report.t -> unit) option }

type msg = Task of int * task | Stop

type worker = {
  queue : msg Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;
  (* Sections posted but not yet drained; written under [mutex], read
     racily by the dispatcher's least-loaded scan (a stale value only
     costs a slightly worse pick, never correctness). *)
  mutable queued : int;
}

type t = {
  model : Model.kind;
  obs : Obs.t;
  workers : worker array;
  mutable domains : unit Domain.t array;
  (* The send path touches only these two atomics — no lock shared with
     the aggregation side. *)
  dispatched : int Atomic.t;
  stopped : bool Atomic.t;
  (* All fields below are guarded by [agg_mutex]. *)
  agg_mutex : Mutex.t;
  drained : Condition.t;
  mutable aggregate : Report.t;
  (* Sections finish out of order across workers; reports wait here until
     every earlier section has been merged, so the aggregate is always the
     one a synchronous run would have produced. *)
  parked : (int, Report.t * (Report.t -> unit) option) Hashtbl.t;
  mutable next_merge : int;
  mutable completed : int;
}

let post w msg =
  Mutex.lock w.mutex;
  Queue.push msg w.queue;
  (match msg with Task _ -> w.queued <- w.queued + 1 | Stop -> ());
  Condition.signal w.nonempty;
  Mutex.unlock w.mutex

(* Drain the whole queue in one lock acquisition — the batch hand-off:
   a worker that fell behind catches up without re-contending the mutex
   per section. *)
let drain_batch w =
  Mutex.lock w.mutex;
  while Queue.is_empty w.queue do
    Condition.wait w.nonempty w.mutex
  done;
  let batch = ref [] in
  while not (Queue.is_empty w.queue) do
    let msg = Queue.pop w.queue in
    (match msg with Task _ -> w.queued <- w.queued - 1 | Stop -> ());
    batch := msg :: !batch
  done;
  Mutex.unlock w.mutex;
  List.rev !batch

let drain_rest w =
  Mutex.lock w.mutex;
  let batch = ref [] in
  while not (Queue.is_empty w.queue) do
    let msg = Queue.pop w.queue in
    (match msg with Task _ -> w.queued <- w.queued - 1 | Stop -> ());
    batch := msg :: !batch
  done;
  Mutex.unlock w.mutex;
  List.rev !batch

let complete t seq report k =
  Mutex.lock t.agg_mutex;
  Hashtbl.replace t.parked seq (report, k);
  if Obs.enabled t.obs then Obs.reorder_depth t.obs (Hashtbl.length t.parked);
  while Hashtbl.mem t.parked t.next_merge do
    let r, k = Hashtbl.find t.parked t.next_merge in
    Hashtbl.remove t.parked t.next_merge;
    (* A callback section's report belongs to its own consumer (one
       daemon session), not the global aggregate; callbacks still fire
       here, in dispatch order, so per-consumer aggregation is as
       deterministic as the global one.  They run under [agg_mutex] and
       must be brief and must not re-enter the runtime. *)
    (match k with None -> t.aggregate <- Report.merge t.aggregate r | Some k -> k r);
    if Obs.enabled t.obs then Obs.section_merged t.obs ~seq:t.next_merge;
    t.next_merge <- t.next_merge + 1;
    t.completed <- t.completed + 1
  done;
  Condition.broadcast t.drained;
  Mutex.unlock t.agg_mutex

let check_payload t (task : task) =
  match task.payload with
  | Boxed entries -> Engine.check ~obs:t.obs ~model:task.model entries
  | Packed { p; prelude } ->
    let r = Engine.check_packed ~obs:t.obs ~model:task.model ~prelude p in
    Packed.free p;
    r

let check_section t ~seq ~worker task =
  if Obs.enabled t.obs then begin
    Obs.check_started t.obs ~seq ~worker;
    let r = check_payload t task in
    Obs.check_finished t.obs ~seq;
    r
  end
  else check_payload t task

(* Run every task in the batch; Stop only takes effect once the queue is
   exhausted, so a task that raced past the shutdown gate is still
   checked rather than stranded (get_result waits on its seq). *)
let rec worker_loop t idx w =
  let batch = drain_batch w in
  let stopping = ref false in
  let tasks = ref 0 in
  List.iter
    (fun msg ->
      match msg with
      | Stop -> stopping := true
      | Task (seq, task) ->
        incr tasks;
        complete t seq (check_section t ~seq ~worker:idx task) task.k)
    batch;
  if !tasks > 0 && Obs.enabled t.obs then Obs.batch_drained t.obs ~sections:!tasks;
  if not !stopping then worker_loop t idx w
  else
    List.iter
      (fun msg ->
        match msg with
        | Stop -> ()
        | Task (seq, task) -> complete t seq (check_section t ~seq ~worker:idx task) task.k)
      (drain_rest w)

let create ?(workers = 1) ?(model = Model.X86) ?(obs = Obs.disabled) () =
  if workers < 0 then invalid_arg "Runtime.create: negative worker count";
  let mk_worker () =
    { queue = Queue.create (); mutex = Mutex.create (); nonempty = Condition.create (); queued = 0 }
  in
  let pool = Array.init workers (fun _ -> mk_worker ()) in
  let t =
    {
      model;
      obs;
      workers = pool;
      domains = [||];
      dispatched = Atomic.make 0;
      stopped = Atomic.make false;
      agg_mutex = Mutex.create ();
      drained = Condition.create ();
      aggregate = Report.empty;
      parked = Hashtbl.create 16;
      next_merge = 0;
      completed = 0;
    }
  in
  t.domains <- Array.mapi (fun idx w -> Domain.spawn (fun () -> worker_loop t idx w)) pool;
  t

let worker_count t = Array.length t.workers
let model t = t.model
let obs t = t.obs

let section_entries = function
  | Boxed a -> Array.length a
  | Packed { p; prelude } -> Packed.count p + Array.length prelude

let send_section t task =
  if Atomic.get t.stopped then invalid_arg "Runtime.send_trace: runtime already shut down";
  let seq = Atomic.fetch_and_add t.dispatched 1 in
  if Obs.enabled t.obs then begin
    Obs.section_sent t.obs ~seq ~entries:(section_entries task.payload);
    (* [completed] is read without the lock: the queue-depth high-water
       mark is a sampled metric, an occasionally stale sample is fine. *)
    Obs.queue_depth t.obs (seq + 1 - t.completed)
  end;
  let n = Array.length t.workers in
  if n = 0 then complete t seq (check_section t ~seq ~worker:0 task) task.k
  else begin
    (* Least-loaded dispatch; ties break round-robin by seq so an idle
       pool still interleaves the way the paper's master thread does. *)
    let best = ref (seq mod n) in
    let best_load = ref t.workers.(!best).queued in
    for i = 0 to n - 1 do
      let load = t.workers.(i).queued in
      if load < !best_load then begin
        best := i;
        best_load := load
      end
    done;
    post t.workers.(!best) (Task (seq, task))
  end

let send_trace t entries = send_section t { payload = Boxed entries; model = t.model; k = None }

let send_packed ?(prelude = [||]) t p =
  send_section t { payload = Packed { p; prelude }; model = t.model; k = None }

let send_packed_cb ?model ?(prelude = [||]) t p k =
  let model = Option.value model ~default:t.model in
  send_section t { payload = Packed { p; prelude }; model; k = Some k }

let get_result t =
  Mutex.lock t.agg_mutex;
  while t.completed < Atomic.get t.dispatched do
    Condition.wait t.drained t.agg_mutex
  done;
  let r = t.aggregate in
  Mutex.unlock t.agg_mutex;
  r

let pending t =
  Mutex.lock t.agg_mutex;
  let n = Atomic.get t.dispatched - t.completed in
  Mutex.unlock t.agg_mutex;
  n

let shutdown t =
  let already_stopped = Atomic.exchange t.stopped true in
  let r = get_result t in
  if not already_stopped then begin
    Array.iter (fun w -> post w Stop) t.workers;
    Array.iter Domain.join t.domains
  end;
  r
