open Pmtest_model
open Pmtest_trace
module Obs = Pmtest_obs.Obs

type msg = Task of int * Event.t array | Stop

type worker = { queue : msg Queue.t; mutex : Mutex.t; nonempty : Condition.t }

type t = {
  model : Model.kind;
  obs : Obs.t;
  workers : worker array;
  mutable domains : unit Domain.t array;
  (* All fields below are guarded by [agg_mutex]. *)
  agg_mutex : Mutex.t;
  drained : Condition.t;
  mutable aggregate : Report.t;
  (* Sections finish out of order across workers; reports wait here until
     every earlier section has been merged, so the aggregate is always the
     one a synchronous run would have produced. *)
  parked : (int, Report.t) Hashtbl.t;
  mutable next_merge : int;
  mutable dispatched : int;
  mutable completed : int;
  mutable stopped : bool;
}

let post w msg =
  Mutex.lock w.mutex;
  Queue.push msg w.queue;
  Condition.signal w.nonempty;
  Mutex.unlock w.mutex

let take w =
  Mutex.lock w.mutex;
  while Queue.is_empty w.queue do
    Condition.wait w.nonempty w.mutex
  done;
  let msg = Queue.pop w.queue in
  Mutex.unlock w.mutex;
  msg

let complete t seq report =
  Mutex.lock t.agg_mutex;
  Hashtbl.replace t.parked seq report;
  if Obs.enabled t.obs then Obs.reorder_depth t.obs (Hashtbl.length t.parked);
  while Hashtbl.mem t.parked t.next_merge do
    let r = Hashtbl.find t.parked t.next_merge in
    Hashtbl.remove t.parked t.next_merge;
    t.aggregate <- Report.merge t.aggregate r;
    if Obs.enabled t.obs then Obs.section_merged t.obs ~seq:t.next_merge;
    t.next_merge <- t.next_merge + 1;
    t.completed <- t.completed + 1
  done;
  Condition.broadcast t.drained;
  Mutex.unlock t.agg_mutex

let check_section t ~seq ~worker entries =
  if Obs.enabled t.obs then begin
    Obs.check_started t.obs ~seq ~worker;
    let r = Engine.check ~obs:t.obs ~model:t.model entries in
    Obs.check_finished t.obs ~seq;
    r
  end
  else Engine.check ~model:t.model entries

let rec worker_loop t idx w =
  match take w with
  | Stop -> ()
  | Task (seq, entries) ->
    complete t seq (check_section t ~seq ~worker:idx entries);
    worker_loop t idx w

let create ?(workers = 1) ?(model = Model.X86) ?(obs = Obs.disabled) () =
  if workers < 0 then invalid_arg "Runtime.create: negative worker count";
  let mk_worker () = { queue = Queue.create (); mutex = Mutex.create (); nonempty = Condition.create () } in
  let pool = Array.init workers (fun _ -> mk_worker ()) in
  let t =
    {
      model;
      obs;
      workers = pool;
      domains = [||];
      agg_mutex = Mutex.create ();
      drained = Condition.create ();
      aggregate = Report.empty;
      parked = Hashtbl.create 16;
      next_merge = 0;
      dispatched = 0;
      completed = 0;
      stopped = false;
    }
  in
  t.domains <- Array.mapi (fun idx w -> Domain.spawn (fun () -> worker_loop t idx w)) pool;
  t

let worker_count t = Array.length t.workers
let model t = t.model
let obs t = t.obs

let send_trace t entries =
  Mutex.lock t.agg_mutex;
  if t.stopped then begin
    Mutex.unlock t.agg_mutex;
    invalid_arg "Runtime.send_trace: runtime already shut down"
  end;
  let seq = t.dispatched in
  t.dispatched <- t.dispatched + 1;
  if Obs.enabled t.obs then begin
    Obs.section_sent t.obs ~seq ~entries:(Array.length entries);
    Obs.queue_depth t.obs (t.dispatched - t.completed)
  end;
  Mutex.unlock t.agg_mutex;
  if Array.length t.workers = 0 then complete t seq (check_section t ~seq ~worker:0 entries)
  else begin
    (* Round-robin dispatch, as the paper's master thread does. *)
    let w = t.workers.(seq mod Array.length t.workers) in
    post w (Task (seq, entries))
  end

let get_result t =
  Mutex.lock t.agg_mutex;
  while t.completed < t.dispatched do
    Condition.wait t.drained t.agg_mutex
  done;
  let r = t.aggregate in
  Mutex.unlock t.agg_mutex;
  r

let pending t =
  Mutex.lock t.agg_mutex;
  let n = t.dispatched - t.completed in
  Mutex.unlock t.agg_mutex;
  n

let shutdown t =
  let already_stopped =
    Mutex.lock t.agg_mutex;
    let s = t.stopped in
    t.stopped <- true;
    Mutex.unlock t.agg_mutex;
    s
  in
  let r = get_result t in
  if not already_stopped then begin
    Array.iter (fun w -> post w Stop) t.workers;
    Array.iter Domain.join t.domains
  end;
  r
