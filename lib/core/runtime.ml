open Pmtest_model
open Pmtest_trace
module Obs = Pmtest_obs.Obs

(* A section travels either boxed (the historical Event.t array) or as a
   packed arena that the worker checks with the cursor engine and then
   recycles to the freelist.  A packed section may carry a small boxed
   prelude — the session's exclusion preamble — replayed before the
   arena so active scopes never force the decode-to-boxed fallback. *)
type section = Boxed of Event.t array | Packed of { p : Packed.t; prelude : Event.t array }

(* [model] overrides the runtime's default for this section (the daemon
   serves sessions with different persistency models off one pool);
   [k], when present, receives the section's report — in dispatch order,
   from inside the merge loop — instead of the report entering the
   global aggregate.  Per-session aggregation is built on it. *)
type task = { payload : section; model : Model.kind; k : (Report.t -> unit) option }

type msg = Task of int * task | Stop

(* MPSC lock-free inbox: producers CAS-push onto a Treiber stack, the
   worker batch-steals the whole stack with one [exchange] and reverses
   it back into FIFO order.  The mutex/condvar pair exists only for
   parking an idle worker: a producer takes it solely when its push was
   the empty→non-empty transition, so a loaded pipeline posts sections
   with a couple of atomic ops and no lock at all. *)
type worker = {
  inbox : msg list Atomic.t;
  (* Tasks posted but not yet stolen; read racily by the dispatcher's
     load sample (a stale value only costs a slightly worse pick). *)
  queued : int Atomic.t;
  park : Mutex.t;
  nonempty : Condition.t;
}

type t = {
  model : Model.kind;
  obs : Obs.t;
  (* Tags this runtime's obs records when several runtimes (the daemon's
     shards) share one collector; [None] (in-process) behaves as shard 0
     and records no per-shard counters. *)
  shard : int;
  shard_tagged : bool;
  arena_pool : Packed.pool option;
  workers : worker array;
  mutable domains : unit Domain.t array;
  (* The send path touches only atomics — no lock shared with the
     aggregation side. *)
  dispatched : int Atomic.t;
  stopped : bool Atomic.t;
  (* [completed] is written under [agg_mutex] (the merge loop) but read
     lock-free by [pending] and the queue-depth sample. *)
  completed : int Atomic.t;
  (* All fields below are guarded by [agg_mutex]. *)
  agg_mutex : Mutex.t;
  drained : Condition.t;
  mutable aggregate : Report.t;
  (* Sections finish out of order across workers; reports wait here until
     every earlier section has been merged, so the aggregate is always the
     one a synchronous run would have produced. *)
  parked : (int, Report.t * (Report.t -> unit) option) Hashtbl.t;
  mutable next_merge : int;
}

let post w msg =
  (match msg with Task _ -> Atomic.incr w.queued | Stop -> ());
  let rec push () =
    let old = Atomic.get w.inbox in
    if Atomic.compare_and_set w.inbox old (msg :: old) then old == []
    else push ()
  in
  if push () then begin
    (* Empty→non-empty: the worker may be parked (or about to park).
       Taking [park] here orders this signal against the worker's final
       inbox re-check under the same mutex, so the wakeup is never
       lost. *)
    Mutex.lock w.park;
    Condition.signal w.nonempty;
    Mutex.unlock w.park
  end

(* Steal the whole stack in one exchange — the batch hand-off: a worker
   that fell behind catches up without touching any shared state per
   section.  Blocks while the inbox is empty. *)
let drain_batch w =
  let stolen =
    match Atomic.exchange w.inbox [] with
    | _ :: _ as batch -> batch
    | [] ->
      Mutex.lock w.park;
      let rec wait () =
        match Atomic.exchange w.inbox [] with
        | [] ->
          Condition.wait w.nonempty w.park;
          wait ()
        | batch -> batch
      in
      let batch = wait () in
      Mutex.unlock w.park;
      batch
  in
  let ntasks =
    List.fold_left (fun n m -> match m with Task _ -> n + 1 | Stop -> n) 0 stolen
  in
  if ntasks > 0 then ignore (Atomic.fetch_and_add w.queued (-ntasks));
  (* The stack is newest-first; dispatch order is oldest-first. *)
  List.rev stolen

let drain_rest w =
  match Atomic.exchange w.inbox [] with
  | [] -> []
  | stolen ->
    let ntasks =
      List.fold_left (fun n m -> match m with Task _ -> n + 1 | Stop -> n) 0 stolen
    in
    if ntasks > 0 then ignore (Atomic.fetch_and_add w.queued (-ntasks));
    List.rev stolen

(* Obs spans are keyed by sequence number; when several shard runtimes
   share one collector, tagging the high bits keeps their spans from
   colliding (shard 0 — every in-process runtime — is unchanged). *)
let okey t seq = (t.shard lsl 48) lor seq

let complete t seq report k =
  Mutex.lock t.agg_mutex;
  Hashtbl.replace t.parked seq (report, k);
  if Obs.enabled t.obs then Obs.reorder_depth t.obs (Hashtbl.length t.parked);
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.parked t.next_merge with
    | None -> continue := false
    | Some (r, k) ->
      Hashtbl.remove t.parked t.next_merge;
      (* A callback section's report belongs to its own consumer (one
         daemon session), not the global aggregate; callbacks still fire
         here, in dispatch order, so per-consumer aggregation is as
         deterministic as the global one.  They run under [agg_mutex] and
         must be brief and must not re-enter the runtime. *)
      (match k with None -> t.aggregate <- Report.merge t.aggregate r | Some k -> k r);
      if Obs.enabled t.obs then Obs.section_merged t.obs ~seq:(okey t t.next_merge);
      t.next_merge <- t.next_merge + 1;
      Atomic.incr t.completed
  done;
  Condition.broadcast t.drained;
  Mutex.unlock t.agg_mutex

let check_payload t (task : task) =
  match task.payload with
  | Boxed entries -> Engine.check ~obs:t.obs ~model:task.model entries
  | Packed { p; prelude } ->
    let r = Engine.check_packed ~obs:t.obs ~model:task.model ~prelude p in
    (match t.arena_pool with
    | None -> Packed.free p
    | Some pool -> Packed.free ~pool p);
    r

let check_section t ~seq ~worker task =
  if Obs.enabled t.obs then begin
    Obs.check_started t.obs ~seq:(okey t seq) ~worker;
    let r = check_payload t task in
    Obs.check_finished t.obs ~seq:(okey t seq);
    r
  end
  else check_payload t task

(* Run every task in the batch; Stop only takes effect once the inbox is
   exhausted, so a task that raced past the shutdown gate is still
   checked rather than stranded (get_result waits on its seq). *)
let rec worker_loop t idx w =
  let batch = drain_batch w in
  let stopping = ref false in
  let tasks = ref 0 in
  List.iter
    (fun msg ->
      match msg with
      | Stop -> stopping := true
      | Task (seq, task) ->
        incr tasks;
        complete t seq (check_section t ~seq ~worker:idx task) task.k)
    batch;
  if !tasks > 0 && Obs.enabled t.obs then Obs.batch_drained t.obs ~sections:!tasks;
  if not !stopping then worker_loop t idx w
  else
    List.iter
      (fun msg ->
        match msg with
        | Stop -> ()
        | Task (seq, task) -> complete t seq (check_section t ~seq ~worker:idx task) task.k)
      (drain_rest w)

let create ?(workers = 1) ?(model = Model.X86) ?(obs = Obs.disabled) ?shard ?arena_pool () =
  if workers < 0 then invalid_arg "Runtime.create: negative worker count";
  let shard_tagged = shard <> None in
  let shard = Option.value shard ~default:0 in
  if shard < 0 then invalid_arg "Runtime.create: negative shard index";
  let mk_worker () =
    {
      inbox = Atomic.make [];
      queued = Atomic.make 0;
      park = Mutex.create ();
      nonempty = Condition.create ();
    }
  in
  let pool = Array.init workers (fun _ -> mk_worker ()) in
  let t =
    {
      model;
      obs;
      shard;
      shard_tagged;
      arena_pool;
      workers = pool;
      domains = [||];
      dispatched = Atomic.make 0;
      stopped = Atomic.make false;
      completed = Atomic.make 0;
      agg_mutex = Mutex.create ();
      drained = Condition.create ();
      aggregate = Report.empty;
      parked = Hashtbl.create 16;
      next_merge = 0;
    }
  in
  t.domains <- Array.mapi (fun idx w -> Domain.spawn (fun () -> worker_loop t idx w)) pool;
  t

let worker_count t = Array.length t.workers
let model t = t.model
let obs t = t.obs

let section_entries = function
  | Boxed a -> Array.length a
  | Packed { p; prelude } -> Packed.count p + Array.length prelude

let send_section t task =
  if Atomic.get t.stopped then invalid_arg "Runtime.send_trace: runtime already shut down";
  let seq = Atomic.fetch_and_add t.dispatched 1 in
  if Obs.enabled t.obs then begin
    Obs.section_sent t.obs ~seq:(okey t seq) ~entries:(section_entries task.payload);
    if t.shard_tagged then Obs.shard_section t.obs ~shard:t.shard;
    (* [completed] is a racy sample: the queue-depth high-water mark is
       a metric, an occasionally stale value is fine. *)
    Obs.queue_depth t.obs (seq + 1 - Atomic.get t.completed)
  end;
  let n = Array.length t.workers in
  if n = 0 then complete t seq (check_section t ~seq ~worker:0 task) task.k
  else begin
    (* Two-choice sampling with a rotating start: O(1) per send instead
       of a full pool scan, and the [seq]-driven rotation still
       interleaves an idle pool round-robin the way the paper's master
       thread does.  [queued] is read racily — a stale load only costs
       a slightly worse pick, never correctness. *)
    let i = seq mod n in
    let w =
      if n = 1 then t.workers.(i)
      else begin
        let j = if i = n - 1 then 0 else i + 1 in
        if Atomic.get t.workers.(j).queued < Atomic.get t.workers.(i).queued then t.workers.(j)
        else t.workers.(i)
      end
    in
    post w (Task (seq, task))
  end

let send_trace t entries = send_section t { payload = Boxed entries; model = t.model; k = None }

let send_packed ?(prelude = [||]) t p =
  send_section t { payload = Packed { p; prelude }; model = t.model; k = None }

let send_packed_cb ?model ?(prelude = [||]) t p k =
  let model = Option.value model ~default:t.model in
  send_section t { payload = Packed { p; prelude }; model; k = Some k }

let get_result t =
  Mutex.lock t.agg_mutex;
  while Atomic.get t.completed < Atomic.get t.dispatched do
    Condition.wait t.drained t.agg_mutex
  done;
  let r = t.aggregate in
  Mutex.unlock t.agg_mutex;
  r

(* Lock-free: both counters are atomics, so a monitoring thread can poll
   without contending the merge loop.  [completed] is read first so the
   difference never goes negative; sends racing between the two reads
   can only make the sample momentarily high. *)
let pending t =
  let c = Atomic.get t.completed in
  Atomic.get t.dispatched - c

let shutdown t =
  let already_stopped = Atomic.exchange t.stopped true in
  let r = get_result t in
  if not already_stopped then begin
    Array.iter (fun w -> post w Stop) t.workers;
    Array.iter Domain.join t.domains
  end;
  r
