(** The PMTest checking engine (paper §4.4).

    The engine walks a trace once, maintaining a shadow memory keyed by
    byte range. Each modified range carries the epoch of its last write
    and, under x86, the epoch of the first [clwb] since that write; from
    those and the global timestamp the {e persist interval} — the epoch
    range in which the write may become durable — is derived on demand:

    - x86 (§4.4): a write's interval opens at its epoch and closes at the
      first [sfence] that follows a covering [clwb];
    - HOPS (§5.2): it closes at the first [dfence] after the write
      ([ofence] advances the epoch without persisting anything).

    Checking rules: [isPersist] holds iff the interval ends by the current
    timestamp; [isOrderedBefore a b] holds iff (x86) no interval of [a]
    overlaps one of [b], or (HOPS) every interval of [a] starts strictly
    before every interval of [b].

    Trace sections sent via [PMTest_SEND_TRACE] are independent (§4.4):
    each {!check} call starts from fresh shadow state, which is what lets
    the runtime fan sections out to worker threads. *)

open Pmtest_itree
open Pmtest_model
open Pmtest_trace

val check : ?obs:Pmtest_obs.Obs.t -> ?model:Model.kind -> Event.t array -> Report.t
(** Validate one trace section. Defaults to the x86 persistency model.
    With an enabled [obs] the per-section entry/op/checker/diagnostic
    totals are added to the collector after the pass. *)

val check_packed :
  ?obs:Pmtest_obs.Obs.t -> ?model:Model.kind -> ?prelude:Event.t array -> Packed.t -> Report.t
(** The flat fast path: walk a packed arena with a cursor — no
    [Event.t array] is materialised — over the mutable page-indexed
    shadow memory.  [prelude] (default empty) is a boxed event prefix
    replayed before the arena — the session's exclusion preamble — so
    the report equals {!check} on [Array.append prelude (to_events p)].
    Produces a report byte-identical to {!check} on the boxed decoding
    of the same arena (pinned by the packed-vs-boxed fuzz contract and
    test_packed); diagnostics render their messages only here, at
    report-materialisation time. *)

(** {1 Introspection for tests and examples} *)

type range_status = {
  lo : int;
  hi : int;
  persist : Interval.t;  (** When the last write to this range may persist. *)
  flush : Interval.t option;  (** When its writeback may complete (x86). *)
}

type snapshot = { timestamp : int; ranges : range_status list }

val check_with_snapshot : ?model:Model.kind -> Event.t array -> Report.t * snapshot
(** Like {!check} but also returns the shadow-memory state after the last
    entry — the persist-interval table of the paper's Fig. 7. *)

val shadow_cardinality_of : snapshot -> int

(** {1 Re-exports used by the property tests} *)

val effective_subranges : excluded:unit Interval_map.t -> addr:int -> size:int -> (int * int) list
(** The sub-ranges of [\[addr, addr+size)] that are not excluded. *)
