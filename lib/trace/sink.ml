open Pmtest_util
module Model = Pmtest_model.Model

type t = { emit : Event.kind -> Loc.t -> unit }

let null = { emit = (fun _ _ -> ()) }

let tee a b = { emit = (fun k loc -> a.emit k loc; b.emit k loc) }

let observed obs t =
  (* Disabled observability must not cost an extra closure on the
     per-event hot path: hand the caller back the unwrapped sink. *)
  if not (Pmtest_obs.Obs.enabled obs) then t
  else { emit = (fun k loc -> Pmtest_obs.Obs.event_traced obs; t.emit k loc) }

let counting () =
  let n = ref 0 in
  ({ emit = (fun _ _ -> incr n) }, fun () -> !n)

let emit t ?(loc = Loc.none) kind = t.emit kind loc
let write t ?loc ~addr ~size () = emit t ?loc (Event.Op (Model.Write { addr; size }))
let clwb t ?loc ~addr ~size () = emit t ?loc (Event.Op (Model.Clwb { addr; size }))
let sfence t ?loc () = emit t ?loc (Event.Op Model.Sfence)
let ofence t ?loc () = emit t ?loc (Event.Op Model.Ofence)
let dfence t ?loc () = emit t ?loc (Event.Op Model.Dfence)
let gpf t ?loc () = emit t ?loc (Event.Op Model.Gpf)
