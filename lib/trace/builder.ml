open Pmtest_util
module Obs = Pmtest_obs.Obs

type store = Boxed of Event.t Vec.t | Arena of { mutable arena : Packed.t }

type t = { thread : int; store : store; obs : Obs.t; mutable enabled : bool }

let create ?(thread = 0) ?(packed = false) ?(obs = Obs.disabled) () =
  let store =
    if packed then Arena { arena = Packed.alloc ~obs () } else Boxed (Vec.create ())
  in
  { thread; store; obs; enabled = true }

let thread t = t.thread
let is_packed t = match t.store with Arena _ -> true | Boxed _ -> false
let enabled t = t.enabled
let set_enabled t b = t.enabled <- b

let emit t kind loc =
  if t.enabled then
    match t.store with
    | Boxed buf -> Vec.push buf { Event.kind; loc; thread = t.thread }
    | Arena a -> Packed.push a.arena ~thread:t.thread kind loc

let length t =
  match t.store with Boxed buf -> Vec.length buf | Arena a -> Packed.count a.arena

let take t =
  match t.store with
  | Boxed buf -> Vec.take_all buf
  | Arena a ->
    let evs = Packed.to_events a.arena in
    Packed.reset a.arena;
    evs

let take_packed t =
  match t.store with
  | Arena a ->
    let p = a.arena in
    a.arena <- Packed.alloc ~obs:t.obs ();
    p
  | Boxed buf ->
    let p = Packed.alloc ~obs:t.obs () in
    Vec.iter (Packed.push_event p) buf;
    Vec.clear buf;
    p

let sink t = { Sink.emit = (fun kind loc -> emit t kind loc) }
