(** Packed trace arenas: the flat, allocation-free twin of
    [Event.t array] sections.

    A builder encodes events into one growable byte buffer (1-byte tag +
    zigzag-LEB128 varints, locations interned per arena), the runtime
    hands whole arenas to workers, and [Engine.check_packed] walks them
    with a cursor — no [Event.t] is ever materialised on the fast path.
    The boxed representation stays available through {!to_events} /
    {!of_events}, and the packed↔boxed round trip is exact (pinned by
    test_packed and the fuzz packed-vs-boxed contract).

    An arena has a single internal read cursor, so concurrent decodes of
    the {e same} arena are not supported; arenas are owned by exactly one
    builder or worker at a time. *)

open Pmtest_util
module Model = Pmtest_model.Model

type t

val create : ?capacity:int -> unit -> t
(** Fresh arena with [capacity] bytes pre-reserved (default 256). *)

val reset : t -> unit
(** Forget all contents (buffer retained for reuse). *)

val count : t -> int
(** Events encoded. *)

val byte_length : t -> int
val is_empty : t -> bool

val has_scope_controls : t -> bool
(** Whether any [Exclude]/[Include] control was encoded — lets the
    session skip the control re-scan on the common (control-free)
    path. *)

(** {1 Encoding} *)

val push : t -> thread:int -> Event.kind -> Loc.t -> unit

val push_event : t -> Event.t -> unit

val push_write : t -> thread:int -> addr:int -> size:int -> Loc.t -> unit
val push_clwb : t -> thread:int -> addr:int -> size:int -> Loc.t -> unit

val push_fence : t -> thread:int -> Model.op -> Loc.t -> unit
(** [op] must be [Sfence], [Ofence], [Dfence] or [Gpf]. *)

val of_events : Event.t array -> t

(** {1 Decoding} *)

(** Wire tags, one per {!Event.kind} shape (18 in all, mirroring
    [Serial]'s line tags).  [T_gpf] was appended last so the 17 seeded
    codes keep their on-wire values. *)
type tag =
  | T_write
  | T_clwb
  | T_sfence
  | T_ofence
  | T_dfence
  | T_is_persist
  | T_is_ordered
  | T_tx_begin
  | T_tx_add
  | T_tx_commit
  | T_tx_abort
  | T_tx_checker_start
  | T_tx_checker_end
  | T_exclude
  | T_include
  | T_lint_off
  | T_lint_on
  | T_gpf

(** One decoded event, overwritten in place by each {!read} — callers
    must copy anything they keep.  [a]/[b] hold addr/size (or the A
    range of isOrderedBefore, whose B range is [c]/[d]); [rule] is only
    meaningful for lint tags. *)
type view = {
  mutable tag : tag;
  mutable thread : int;
  mutable loc : Loc.t;
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  mutable rule : string;
}

val make_view : unit -> view

val read : t -> pos:int -> view -> int
(** Decode the event at byte offset [pos] into the view; returns the
    offset of the next event.  Iterate from 0 while [< byte_length t].
    Raises [Invalid_argument] if [pos] is out of bounds. *)

val iter : t -> (view -> unit) -> unit

val kind_of_view : view -> Event.kind
val event_of_view : view -> Event.t
val to_events : t -> Event.t array

(** {1 Checked decoding and the wire form}

    The cursor above ([read]/[iter]) trusts its input — it only ever
    sees arenas encoded by this module in this process.  Arenas that
    cross a process boundary (the [pmtestd] framed protocol) are
    arbitrary bytes: the functions here verify every tag, varint, rule
    string and location id and return a typed error instead of raising,
    so a corrupt network frame is a recoverable session error, never a
    dead checking worker. *)

type decode_error = { offset : int; reason : string }

val decode_error_to_string : decode_error -> string

val read_checked : t -> pos:int -> view -> (int, decode_error) result
(** Like {!read} but every access is bounds-checked: a truncated or
    garbage tag, an overlong or unterminated varint, an out-of-range
    location id or an overrunning rule string yields [Error] with the
    byte offset of the malformed field. Does not disturb the internal
    cursor. *)

val validate : t -> (unit, decode_error) result
(** Walk the whole arena with {!read_checked}; also verifies the event
    count matches the encoded header. *)

val encode_wire : t -> string
(** Self-contained byte form: the arena's loc intern table followed by
    the event bytes, suitable for framing onto a socket.  Unlike the raw
    buffer, the result does not depend on this process's intern state. *)

type pool
(** An arena freelist (see the {e Arena freelists} section below). *)

val decode_wire : ?obs:Pmtest_obs.Obs.t -> ?pool:pool -> string -> (t, decode_error) result
(** Inverse of {!encode_wire}, fully validated ({!validate} has run, the
    loc table is in bounds, nothing trails the event bytes).  The
    resulting arena is safe to hand to the unchecked cursor / the
    engine.  With [pool] the arena is drawn from (and its buffer reused
    out of) that freelist instead of freshly allocated — free it back to
    the {e same} pool. *)

(** {1 Arena freelists}

    Bounded pools so steady-state sections recycle buffers instead of
    allocating.  [alloc]/[free] default to a process-wide shared pool;
    the daemon gives each shard its own so arenas cycle decode → check →
    free entirely within one shard, with no cross-shard mutex.  [obs]
    (default disabled) records pool hit/miss via [Obs.arena_alloc]. *)

val create_pool : ?cap:int -> unit -> pool
(** A fresh freelist holding at most [cap] (default 64) retired arenas. *)

val default_pool : pool

val alloc : ?obs:Pmtest_obs.Obs.t -> ?pool:pool -> unit -> t
val free : ?pool:pool -> t -> unit
(** Reset and return the arena to the pool (dropped if the pool is
    full).  The caller must not touch the arena afterwards. *)
