(** Trace entries (paper §4.3).

    A trace interleaves the PM operations executed by the program under
    test with the checkers and control annotations the programmer placed.
    Every entry carries the source location of the statement that produced
    it so diagnostics read [FAIL @ file:line]. *)

open Pmtest_util

type checker =
  | Is_persist of { addr : int; size : int }
      (** Assert the range has persisted since its last update. *)
  | Is_ordered_before of { a_addr : int; a_size : int; b_addr : int; b_size : int }
      (** Assert every write to the A range persists before any write to
          the B range. *)

type tx_event =
  | Tx_begin  (** Transaction body starts (PMDK [TX_BEGIN]). *)
  | Tx_add of { addr : int; size : int }
      (** The range was backed up in the undo log (PMDK [TX_ADD]). *)
  | Tx_commit  (** Transaction body ended normally (PMDK [TX_END]). *)
  | Tx_abort  (** Transaction terminated without committing. *)
  | Tx_checker_start  (** [TX_CHECKER_START] annotation. *)
  | Tx_checker_end  (** [TX_CHECKER_END] annotation. *)

type control =
  | Exclude of { addr : int; size : int }
      (** Remove the range from testing scope ([PMTest_EXCLUDE]). *)
  | Include of { addr : int; size : int }
      (** Put the range back in scope ([PMTest_INCLUDE]). *)
  | Lint_off of { rule : string }
      (** Suppress the named static lint rule (["*"] for all rules) from
          this point of the trace on. Ignored by the dynamic engine. *)
  | Lint_on of { rule : string }
      (** Undo one matching {!Lint_off}. Ignored by the dynamic engine. *)

type kind =
  | Op of Pmtest_model.Model.op
  | Checker of checker
  | Tx of tx_event
  | Control of control

type t = { kind : kind; loc : Loc.t; thread : int }

val make : ?thread:int -> ?loc:Loc.t -> kind -> t
val pp : Format.formatter -> t -> unit
val pp_kind : Format.formatter -> kind -> unit

val op_count : t array -> int
(** Number of PM operations (entries whose kind is [Op _]) in a trace. *)
