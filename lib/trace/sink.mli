(** Where instrumented programs send their trace entries.

    The simulated CCS substrates (PMDK, Mnemosyne, PMFS, …) are
    instrumented exactly once — every PM operation they execute is also
    reported to a sink. Plugging in different sinks yields the different
    test configurations of the paper's evaluation:

    - the {!null} sink for uninstrumented baseline runs,
    - PMTest's trace builder,
    - the Pmemcheck baseline's per-store state machine. *)

open Pmtest_util

type t = { emit : Event.kind -> Loc.t -> unit }

val null : t
(** Discards everything; its [emit] is a constant-time no-op so the
    "original program" timings are not polluted by tracking cost. *)

val tee : t -> t -> t
(** Sends every entry to both sinks (used by the overhead-breakdown
    experiment to trace and count simultaneously). *)

val counting : unit -> t * (unit -> int)
(** A sink that just counts entries; returns the sink and a reader. *)

val observed : Pmtest_obs.Obs.t -> t -> t
(** Counts every entry into the collector's events-traced counter before
    forwarding. With a disabled collector this returns the input sink
    itself, so the uninstrumented emit path is completely unchanged. *)

val emit : t -> ?loc:Loc.t -> Event.kind -> unit
val write : t -> ?loc:Loc.t -> addr:int -> size:int -> unit -> unit
val clwb : t -> ?loc:Loc.t -> addr:int -> size:int -> unit -> unit
val sfence : t -> ?loc:Loc.t -> unit -> unit
val ofence : t -> ?loc:Loc.t -> unit -> unit
val dfence : t -> ?loc:Loc.t -> unit -> unit
val gpf : t -> ?loc:Loc.t -> unit -> unit
