(** Per-thread trace accumulation (paper §4.3, §4.5).

    Each program thread owns a builder; entries are appended in program
    order. [PMTest_SEND_TRACE] corresponds to {!take} (or
    {!take_packed}): the accumulated section is handed off (to a worker
    thread) and a fresh section starts.  Tracking can be toggled
    ([PMTest_START] / [PMTest_END]) — while disabled, entries are
    dropped at the door.

    A builder created with [~packed:true] encodes straight into a
    {!Packed} arena: the per-event cost is byte stores into a reused
    buffer instead of one heap block per entry, and {!take_packed} hands
    the arena off whole. Either representation converts to the other on
    demand, so both [take] and [take_packed] work on every builder. *)

open Pmtest_util

type t

val create : ?thread:int -> ?packed:bool -> ?obs:Pmtest_obs.Obs.t -> unit -> t
(** [packed] (default false) selects the packed-arena store. [obs]
    (default disabled) accounts arena freelist traffic. *)

val thread : t -> int

val is_packed : t -> bool

val enabled : t -> bool
val set_enabled : t -> bool -> unit

val emit : t -> Event.kind -> Loc.t -> unit
(** Appends unless tracking is disabled. *)

val length : t -> int
(** Entries accumulated in the current section. *)

val take : t -> Event.t array
(** Current section as an array; the builder restarts empty. On a packed
    builder this decodes the arena (boxed interop path). *)

val take_packed : t -> Packed.t
(** Current section as a packed arena; the builder restarts empty with a
    fresh arena from the freelist. Ownership of the returned arena moves
    to the caller. On a boxed builder this encodes the pending events. *)

val sink : t -> Sink.t
(** The builder viewed as an instrumentation sink. *)
