open Pmtest_util
module Model = Pmtest_model.Model
module Obs = Pmtest_obs.Obs

(* Packed trace arena: events byte-encoded into one growable [Bytes]
   buffer instead of one heap block per entry.

   Wire layout per event: a 1-byte tag, then zigzag-LEB128 varints for
   the thread id, an arena-local location id, and the tag's arguments
   (lint controls carry a length-prefixed rule string).  Locations are
   interned per arena — the common case of a tight instrumentation loop
   re-emitting the same callsite is a single pointer comparison — so a
   steady-state op costs a handful of byte stores and no allocation.

   Decoding goes through a reusable mutable {!view}: the cursor loop in
   [Engine.check_packed] reads straight out of the buffer and never
   materialises an [Event.t].  Each arena has one internal read cursor
   ([rpos]), so interleaved decodes of the same arena from two threads
   are not supported (arenas are owned by one builder, then by one
   worker — never shared). *)

type tag =
  | T_write
  | T_clwb
  | T_sfence
  | T_ofence
  | T_dfence
  | T_is_persist
  | T_is_ordered
  | T_tx_begin
  | T_tx_add
  | T_tx_commit
  | T_tx_abort
  | T_tx_checker_start
  | T_tx_checker_end
  | T_exclude
  | T_include
  | T_lint_off
  | T_lint_on
  | T_gpf

let tag_of_code =
  [|
    T_write; T_clwb; T_sfence; T_ofence; T_dfence; T_is_persist; T_is_ordered; T_tx_begin;
    T_tx_add; T_tx_commit; T_tx_abort; T_tx_checker_start; T_tx_checker_end; T_exclude;
    T_include; T_lint_off; T_lint_on; T_gpf;
  |]

type t = {
  mutable buf : Bytes.t;
  mutable len : int;  (* bytes used *)
  mutable count : int;  (* events encoded *)
  mutable rpos : int;  (* internal read cursor (varint decoding) *)
  mutable scope_controls : int;  (* Exclude/Include events encoded *)
  locs : Loc.t Vec.t;  (* id -> location; id 0 is Loc.none *)
  (* line -> interned (loc, id) pairs with that line.  Keyed by the int
     so a miss never hashes the file string; the per-line list is almost
     always a singleton (different files sharing a line number). *)
  loc_ids : (int, (Loc.t * int) list) Hashtbl.t;
  (* Direct-mapped intern cache keyed by [line land (size-1)].  Call
     sites build a fresh [Loc.t] per event, so a single last-loc memo
     misses whenever two sites alternate; a per-line slot keeps the
     whole working set of an instrumentation loop hot without hashing
     the file string. *)
  memo_locs : Loc.t array;
  memo_ids : int array;
}

let memo_size = 32

let create ?(capacity = 256) () =
  let t =
    {
      buf = Bytes.create (max 16 capacity);
      len = 0;
      count = 0;
      rpos = 0;
      scope_controls = 0;
      locs = Vec.create ();
      loc_ids = Hashtbl.create 32;
      memo_locs = Array.make memo_size Loc.none;
      memo_ids = Array.make memo_size 0;
    }
  in
  Vec.push t.locs Loc.none;
  t

(* The loc intern table deliberately survives reset: ids stay valid
   because [locs] is kept, and a recycled arena keeps the program's
   callsite working set interned instead of re-paying the hash-miss
   path on the first occurrence of every site in every section.  The
   table is bounded by the number of distinct callsites, like any
   string intern pool. *)
let reset t =
  t.len <- 0;
  t.count <- 0;
  t.rpos <- 0;
  t.scope_controls <- 0

let count t = t.count
let byte_length t = t.len
let is_empty t = t.count = 0
let has_scope_controls t = t.scope_controls > 0

(* --- Encoding ---------------------------------------------------------- *)

let ensure t n =
  if t.len + n > Bytes.length t.buf then begin
    let cap = ref (max 64 (2 * Bytes.length t.buf)) in
    while t.len + n > !cap do
      cap := !cap * 2
    done;
    let b = Bytes.create !cap in
    Bytes.blit t.buf 0 b 0 t.len;
    t.buf <- b
  end

(* Zigzag so negative ints (legal in hand-built events) stay compact. *)
let[@inline] zigzag n = (n lsl 1) lxor (n asr 62)
let[@inline] unzigzag u = (u lsr 1) lxor (- (u land 1))

let rec put_u t u =
  if u < 0x80 then begin
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr u);
    t.len <- t.len + 1
  end
  else begin
    Bytes.unsafe_set t.buf t.len (Char.unsafe_chr (u land 0x7f lor 0x80));
    t.len <- t.len + 1;
    put_u t (u lsr 7)
  end

(* Callers run [ensure] for the whole event up front (see [hdr]), so the
   varint writer itself skips the bounds check. *)
let[@inline] put_varint_unsafe t n = put_u t (zigzag n)

let intern_slow t (loc : Loc.t) =
  let entries = match Hashtbl.find t.loc_ids loc.Loc.line with e -> e | exception Not_found -> [] in
  let rec find = function
    | [] ->
      let id = Vec.length t.locs in
      Vec.push t.locs loc;
      Hashtbl.replace t.loc_ids loc.Loc.line ((loc, id) :: entries);
      id
    | ((l : Loc.t), id) :: rest ->
      if l.Loc.file == loc.Loc.file || String.equal l.Loc.file loc.Loc.file then id
      else find rest
  in
  find entries

let intern t (loc : Loc.t) =
  let slot = loc.Loc.line land (memo_size - 1) in
  let m = Array.unsafe_get t.memo_locs slot in
  if loc == m || (loc.Loc.line = m.Loc.line && loc.Loc.file == m.Loc.file) then
    Array.unsafe_get t.memo_ids slot
  else begin
    let id = intern_slow t loc in
    Array.unsafe_set t.memo_locs slot loc;
    Array.unsafe_set t.memo_ids slot id;
    id
  end

(* Reserves room for the tag plus up to six varints (thread, loc and at
   most four args, 10 bytes each) so the per-event encode path does one
   bounds check total; arg writers below use the unsafe puts. *)
let hdr t code ~thread lid =
  ensure t 61;
  Bytes.unsafe_set t.buf t.len (Char.unsafe_chr code);
  t.len <- t.len + 1;
  put_varint_unsafe t thread;
  put_varint_unsafe t lid

let fin t = t.count <- t.count + 1

let push_write t ~thread ~addr ~size loc =
  hdr t 0 ~thread (intern t loc);
  put_varint_unsafe t addr;
  put_varint_unsafe t size;
  fin t

let push_clwb t ~thread ~addr ~size loc =
  hdr t 1 ~thread (intern t loc);
  put_varint_unsafe t addr;
  put_varint_unsafe t size;
  fin t

let push_fence t ~thread op loc =
  let code =
    match op with Model.Sfence -> 2 | Model.Ofence -> 3 | Model.Gpf -> 17 | _ -> 4
  in
  hdr t code ~thread (intern t loc);
  fin t

let put_rule t rule =
  put_varint_unsafe t (String.length rule);
  ensure t (String.length rule);
  Bytes.blit_string rule 0 t.buf t.len (String.length rule);
  t.len <- t.len + String.length rule

let push t ~thread (kind : Event.kind) loc =
  (match kind with
  | Event.Op (Model.Write { addr; size }) ->
    hdr t 0 ~thread (intern t loc);
    put_varint_unsafe t addr;
    put_varint_unsafe t size
  | Event.Op (Model.Clwb { addr; size }) ->
    hdr t 1 ~thread (intern t loc);
    put_varint_unsafe t addr;
    put_varint_unsafe t size
  | Event.Op Model.Sfence -> hdr t 2 ~thread (intern t loc)
  | Event.Op Model.Ofence -> hdr t 3 ~thread (intern t loc)
  | Event.Op Model.Dfence -> hdr t 4 ~thread (intern t loc)
  | Event.Op Model.Gpf -> hdr t 17 ~thread (intern t loc)
  | Event.Checker (Event.Is_persist { addr; size }) ->
    hdr t 5 ~thread (intern t loc);
    put_varint_unsafe t addr;
    put_varint_unsafe t size
  | Event.Checker (Event.Is_ordered_before { a_addr; a_size; b_addr; b_size }) ->
    hdr t 6 ~thread (intern t loc);
    put_varint_unsafe t a_addr;
    put_varint_unsafe t a_size;
    put_varint_unsafe t b_addr;
    put_varint_unsafe t b_size
  | Event.Tx Event.Tx_begin -> hdr t 7 ~thread (intern t loc)
  | Event.Tx (Event.Tx_add { addr; size }) ->
    hdr t 8 ~thread (intern t loc);
    put_varint_unsafe t addr;
    put_varint_unsafe t size
  | Event.Tx Event.Tx_commit -> hdr t 9 ~thread (intern t loc)
  | Event.Tx Event.Tx_abort -> hdr t 10 ~thread (intern t loc)
  | Event.Tx Event.Tx_checker_start -> hdr t 11 ~thread (intern t loc)
  | Event.Tx Event.Tx_checker_end -> hdr t 12 ~thread (intern t loc)
  | Event.Control (Event.Exclude { addr; size }) ->
    t.scope_controls <- t.scope_controls + 1;
    hdr t 13 ~thread (intern t loc);
    put_varint_unsafe t addr;
    put_varint_unsafe t size
  | Event.Control (Event.Include { addr; size }) ->
    t.scope_controls <- t.scope_controls + 1;
    hdr t 14 ~thread (intern t loc);
    put_varint_unsafe t addr;
    put_varint_unsafe t size
  | Event.Control (Event.Lint_off { rule }) ->
    hdr t 15 ~thread (intern t loc);
    put_rule t rule
  | Event.Control (Event.Lint_on { rule }) ->
    hdr t 16 ~thread (intern t loc);
    put_rule t rule);
  fin t

let push_event t (e : Event.t) = push t ~thread:e.Event.thread e.Event.kind e.Event.loc

(* --- Decoding ---------------------------------------------------------- *)

type view = {
  mutable tag : tag;
  mutable thread : int;
  mutable loc : Loc.t;
  mutable a : int;
  mutable b : int;
  mutable c : int;
  mutable d : int;
  mutable rule : string;
}

let make_view () =
  { tag = T_write; thread = 0; loc = Loc.none; a = 0; b = 0; c = 0; d = 0; rule = "" }

let rec read_u t p shift acc =
  let b = Char.code (Bytes.unsafe_get t.buf p) in
  let acc = acc lor ((b land 0x7f) lsl shift) in
  if b land 0x80 <> 0 then read_u t (p + 1) (shift + 7) acc
  else begin
    t.rpos <- p + 1;
    acc
  end

let read_int t =
  let u = read_u t t.rpos 0 0 in
  unzigzag u

let read t ~pos (v : view) =
  if pos >= t.len then invalid_arg "Packed.read: out of bounds";
  let code = Char.code (Bytes.unsafe_get t.buf pos) in
  t.rpos <- pos + 1;
  v.tag <- tag_of_code.(code);
  v.thread <- read_int t;
  v.loc <- Vec.get t.locs (read_int t);
  (match v.tag with
  | T_write | T_clwb | T_is_persist | T_tx_add | T_exclude | T_include ->
    v.a <- read_int t;
    v.b <- read_int t
  | T_is_ordered ->
    v.a <- read_int t;
    v.b <- read_int t;
    v.c <- read_int t;
    v.d <- read_int t
  | T_lint_off | T_lint_on ->
    let n = read_int t in
    v.rule <- Bytes.sub_string t.buf t.rpos n;
    t.rpos <- t.rpos + n
  | _ -> ());
  t.rpos

let kind_of_view v : Event.kind =
  match v.tag with
  | T_write -> Event.Op (Model.Write { addr = v.a; size = v.b })
  | T_clwb -> Event.Op (Model.Clwb { addr = v.a; size = v.b })
  | T_sfence -> Event.Op Model.Sfence
  | T_ofence -> Event.Op Model.Ofence
  | T_dfence -> Event.Op Model.Dfence
  | T_gpf -> Event.Op Model.Gpf
  | T_is_persist -> Event.Checker (Event.Is_persist { addr = v.a; size = v.b })
  | T_is_ordered ->
    Event.Checker
      (Event.Is_ordered_before { a_addr = v.a; a_size = v.b; b_addr = v.c; b_size = v.d })
  | T_tx_begin -> Event.Tx Event.Tx_begin
  | T_tx_add -> Event.Tx (Event.Tx_add { addr = v.a; size = v.b })
  | T_tx_commit -> Event.Tx Event.Tx_commit
  | T_tx_abort -> Event.Tx Event.Tx_abort
  | T_tx_checker_start -> Event.Tx Event.Tx_checker_start
  | T_tx_checker_end -> Event.Tx Event.Tx_checker_end
  | T_exclude -> Event.Control (Event.Exclude { addr = v.a; size = v.b })
  | T_include -> Event.Control (Event.Include { addr = v.a; size = v.b })
  | T_lint_off -> Event.Control (Event.Lint_off { rule = v.rule })
  | T_lint_on -> Event.Control (Event.Lint_on { rule = v.rule })

let event_of_view v : Event.t = { Event.kind = kind_of_view v; loc = v.loc; thread = v.thread }

let iter t f =
  let v = make_view () in
  let pos = ref 0 in
  while !pos < t.len do
    pos := read t ~pos:!pos v;
    f v
  done

let to_events t =
  if t.count = 0 then [||]
  else begin
    let out = Array.make t.count (event_of_view (make_view ())) in
    let v = make_view () in
    let pos = ref 0 and i = ref 0 in
    while !pos < t.len do
      pos := read t ~pos:!pos v;
      out.(!i) <- event_of_view v;
      incr i
    done;
    out
  end

let of_events evs =
  let t = create ~capacity:(16 * Array.length evs) () in
  Array.iter (push_event t) evs;
  t

(* --- Checked decoding and the wire form --------------------------------
   The hot cursor above trusts its input: it was encoded by this module
   in this process.  Arenas that arrive over a socket are hostile bytes;
   the checked reader walks the same layout with every bound verified
   and a typed error instead of an exception, so one corrupt frame is a
   session-level failure, never a dead worker. *)

type decode_error = { offset : int; reason : string }

let decode_error_to_string e = Printf.sprintf "byte %d: %s" e.offset e.reason

exception Bad of decode_error

let bad offset fmt = Printf.ksprintf (fun reason -> raise (Bad { offset; reason })) fmt

(* Bounds-checked varint: unlike [read_u] it never reads past [len] and
   rejects encodings longer than an OCaml int. *)
let read_u_checked t pos =
  let rec go p shift acc =
    if p >= t.len then bad pos "truncated varint"
    else if shift > 63 then bad pos "varint too long"
    else begin
      let b = Char.code (Bytes.get t.buf p) in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 <> 0 then go (p + 1) (shift + 7) acc else (acc, p + 1)
    end
  in
  go pos 0 0

let read_checked t ~pos (v : view) =
  try
    if pos < 0 || pos >= t.len then bad pos "event offset out of bounds";
    let code = Char.code (Bytes.get t.buf pos) in
    if code >= Array.length tag_of_code then bad pos "unknown tag 0x%02x" code;
    v.tag <- tag_of_code.(code);
    let arg p =
      let u, p = read_u_checked t p in
      (unzigzag u, p)
    in
    let thread, p = arg (pos + 1) in
    v.thread <- thread;
    let lid, p = arg p in
    if lid < 0 || lid >= Vec.length t.locs then bad p "location id %d out of range" lid;
    v.loc <- Vec.get t.locs lid;
    let p =
      match v.tag with
      | T_write | T_clwb | T_is_persist | T_tx_add | T_exclude | T_include ->
        let a, p = arg p in
        let b, p = arg p in
        v.a <- a;
        v.b <- b;
        p
      | T_is_ordered ->
        let a, p = arg p in
        let b, p = arg p in
        let c, p = arg p in
        let d, p = arg p in
        v.a <- a;
        v.b <- b;
        v.c <- c;
        v.d <- d;
        p
      | T_lint_off | T_lint_on ->
        let n, p = arg p in
        if n < 0 || n > t.len - p then bad p "rule string overruns the arena";
        v.rule <- Bytes.sub_string t.buf p n;
        p + n
      | T_sfence | T_ofence | T_dfence | T_gpf | T_tx_begin | T_tx_commit | T_tx_abort
      | T_tx_checker_start | T_tx_checker_end ->
        p
    in
    Ok p
  with Bad e -> Error e

let validate t =
  let v = make_view () in
  let rec go pos n =
    if pos >= t.len then
      if n = t.count then Ok ()
      else
        Error
          {
            offset = t.len;
            reason = Printf.sprintf "event count mismatch: header says %d, decoded %d" t.count n;
          }
    else
      match read_checked t ~pos v with Error _ as e -> e | Ok next -> go next (n + 1)
  in
  go 0 0

(* --- Arena freelists ----------------------------------------------------
   Sections retire at a steady rate (builder fills, worker drains), so a
   small pool keeps the hot loop at zero arena allocations.  Each pool is
   guarded by its own mutex: alloc runs on program threads, free on
   worker domains.  [default_pool] serves in-process sessions; the
   daemon gives every shard its own pool so arenas recycle shard-locally
   (decode on the shard's session readers, free on the shard's workers)
   with no cross-shard contention. *)

type pool = { mutable items : t list; mutable plen : int; pcap : int; pm : Mutex.t }

let create_pool ?(cap = 64) () = { items = []; plen = 0; pcap = max 0 cap; pm = Mutex.create () }
let default_pool = create_pool ()

let alloc ?(obs = Obs.disabled) ?(pool = default_pool) () =
  Mutex.lock pool.pm;
  let a =
    match pool.items with
    | p :: rest ->
      pool.items <- rest;
      pool.plen <- pool.plen - 1;
      Some p
    | [] -> None
  in
  Mutex.unlock pool.pm;
  match a with
  | Some p ->
    if Obs.enabled obs then Obs.arena_alloc obs ~reused:true;
    p
  | None ->
    if Obs.enabled obs then Obs.arena_alloc obs ~reused:false;
    create ()

let free ?(pool = default_pool) t =
  reset t;
  Mutex.lock pool.pm;
  if pool.plen < pool.pcap then begin
    pool.items <- t :: pool.items;
    pool.plen <- pool.plen + 1
  end;
  Mutex.unlock pool.pm

(* Builder-side recycling keeps the intern table (see [reset]); an arena
   reused for {e decoding} must not — decoded loc ids index the frame's
   own table, so the previous tenant's interned locations would alias
   them. *)
let reset_for_decode t =
  reset t;
  Vec.clear t.locs;
  Vec.push t.locs Loc.none;
  Hashtbl.reset t.loc_ids;
  Array.fill t.memo_locs 0 memo_size Loc.none;
  Array.fill t.memo_ids 0 memo_size 0


(* Self-contained byte form: the per-arena loc intern table travels in
   front of the event bytes, so the receiver can rebuild an equivalent
   arena without sharing this process's intern state.  Layout (unsigned
   LEB128 varints):

     nlocs, then for ids 1..nlocs-1: line, file length, file bytes
     event count, event byte length, event bytes (the arena buffer)

   Slot 0 is always [Loc.none] and is not transmitted. *)

let put_uv buf u =
  let rec go u =
    if u < 0x80 then Buffer.add_char buf (Char.unsafe_chr u)
    else begin
      Buffer.add_char buf (Char.unsafe_chr (u land 0x7f lor 0x80));
      go (u lsr 7)
    end
  in
  if u < 0 then invalid_arg "Packed.encode_wire: negative length field";
  go u

let encode_wire t =
  let b = Buffer.create (t.len + 64) in
  put_uv b (Vec.length t.locs);
  for i = 1 to Vec.length t.locs - 1 do
    let l = Vec.get t.locs i in
    put_uv b l.Loc.line;
    put_uv b (String.length l.Loc.file);
    Buffer.add_string b l.Loc.file
  done;
  put_uv b t.count;
  put_uv b t.len;
  Buffer.add_subbytes b t.buf 0 t.len;
  Buffer.contents b

let decode_wire ?obs ?pool s =
  let slen = String.length s in
  let uv pos =
    let rec go p shift acc =
      if p >= slen then bad pos "truncated varint"
      else if shift > 63 then bad pos "varint too long"
      else begin
        let b = Char.code (String.unsafe_get s p) in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 <> 0 then go (p + 1) (shift + 7) acc else (acc, p + 1)
      end
    in
    go pos 0 0
  in
  try
    let nlocs, p = uv 0 in
    if nlocs < 1 then bad 0 "location table must include slot 0";
    let t =
      match pool with
      | None -> create ~capacity:16 ()
      | Some pool ->
        (* On a decode error the arena is dropped to the GC rather than
           returned — malformed frames end the whole session anyway. *)
        let t = alloc ?obs ~pool () in
        reset_for_decode t;
        t
    in
    let p = ref p in
    for _ = 1 to nlocs - 1 do
      let line, q = uv !p in
      if line < 0 then bad !p "negative location line";
      let flen, q = uv q in
      if flen < 0 || flen > slen - q then bad q "file name overruns the frame";
      Vec.push t.locs (Loc.make ~file:(String.sub s q flen) ~line);
      p := q + flen
    done;
    let count, q = uv !p in
    if count < 0 then bad !p "negative event count";
    let blen, q = uv q in
    if blen < 0 || blen <> slen - q then bad q "event bytes do not fill the frame";
    if Bytes.length t.buf < blen then t.buf <- Bytes.create blen;
    Bytes.blit_string s q t.buf 0 blen;
    t.len <- blen;
    t.count <- count;
    (match validate t with Ok () -> () | Error e -> raise (Bad e));
    (* Recount scope controls (the counter normally accrues at encode
       time) so [has_scope_controls] holds on received arenas too. *)
    let v = make_view () in
    let pos = ref 0 in
    while !pos < t.len do
      pos := read t ~pos:!pos v;
      match v.tag with
      | T_exclude | T_include -> t.scope_controls <- t.scope_controls + 1
      | _ -> ()
    done;
    Ok t
  with Bad e -> Error e
